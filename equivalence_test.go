package repro

import (
	"reflect"
	"testing"

	"repro/internal/dbt"
	"repro/internal/interp"
	"repro/internal/spec"
)

// equivalenceScale keeps the full-suite cross-validation fast while
// still exercising millions of dynamic blocks per benchmark class.
const equivalenceScale = 0.02

// edgeKey identifies one control-flow edge between block entries.
type edgeKey struct{ from, to int }

// TestFastPathMatchesReferenceInterpreter runs every synthetic SPEC
// benchmark through the translator's pre-lowered fast path and through
// the reference interpreter, and asserts identical final architectural
// state, instruction/block counts, and per-block use/taken profiling
// counters (reconstructed from the interpreter's block-entry sequence).
func TestFastPathMatchesReferenceInterpreter(t *testing.T) {
	for _, b := range spec.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, input := range []string{"ref", "train"} {
				img, tape, err := b.Build(input, equivalenceScale)
				if err != nil {
					t.Fatalf("build %s: %v", input, err)
				}
				m, err := interp.NewMachine(img, tape)
				if err != nil {
					t.Fatalf("NewMachine: %v", err)
				}
				entries := make(map[int]uint64)
				edges := make(map[edgeKey]uint64)
				prev := -1
				m.BlockHook = func(pc int) {
					entries[pc]++
					if prev >= 0 {
						edges[edgeKey{prev, pc}]++
					}
					prev = pc
				}
				if err := m.Run(); err != nil {
					t.Fatalf("machine run (%s): %v", input, err)
				}

				img2, tape2, err := b.Build(input, equivalenceScale)
				if err != nil {
					t.Fatalf("rebuild %s: %v", input, err)
				}
				eng, err := dbt.New(img2, tape2, dbt.Config{Input: input})
				if err != nil {
					t.Fatalf("dbt.New: %v", err)
				}
				snap, stats, err := eng.Run()
				if err != nil {
					t.Fatalf("dbt run (%s): %v", input, err)
				}

				// Final architectural state must be bit-identical.
				mst, dst := m.State(), eng.State()
				if mst.Regs != dst.Regs {
					t.Fatalf("%s: registers diverge\ninterp: %v\n   dbt: %v", input, mst.Regs, dst.Regs)
				}
				if !reflect.DeepEqual(mst.Mem, dst.Mem) {
					t.Fatalf("%s: memory diverges", input)
				}
				if !reflect.DeepEqual(mst.Ret, dst.Ret) {
					t.Fatalf("%s: return stacks diverge: %v vs %v", input, mst.Ret, dst.Ret)
				}
				if m.Steps() != stats.Instructions {
					t.Fatalf("%s: instruction counts diverge: interp %d, dbt %d", input, m.Steps(), stats.Instructions)
				}
				if m.Blocks() != stats.BlocksExecuted {
					t.Fatalf("%s: block counts diverge: interp %d, dbt %d", input, m.Blocks(), stats.BlocksExecuted)
				}

				// Per-block profiling counters: the unoptimized run never
				// freezes, so every block's use count must equal the
				// interpreter's entry count at that address, and its
				// taken count the number of times the taken edge fired.
				for addr, blk := range snap.Blocks {
					if blk.Use != entries[addr] {
						t.Errorf("%s: block %d use=%d, interpreter entered it %d times", input, addr, blk.Use, entries[addr])
					}
					var wantTaken uint64
					if blk.HasBranch {
						wantTaken = edges[edgeKey{addr, blk.TakenTarget}]
					}
					if blk.Taken != wantTaken {
						t.Errorf("%s: block %d taken=%d, want %d", input, addr, blk.Taken, wantTaken)
					}
				}
				// And nothing entered by the interpreter is missing from
				// the profile.
				for addr, n := range entries {
					if snap.Blocks[addr] == nil {
						t.Errorf("%s: interpreter entered block %d (%d times) missing from snapshot", input, addr, n)
					}
				}
			}
		})
	}
}

// TestFastPathMatchesGenericDispatch re-runs the suite's reference
// input with the fast path disabled and asserts the generic interp.Exec
// dispatch produces the identical snapshot under a full optimizing
// configuration (thresholds, freezing, regions and the perf model all
// active).
func TestFastPathMatchesGenericDispatch(t *testing.T) {
	for _, b := range spec.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			run := func(disable bool) *struct {
				snap  interface{}
				stats dbt.RunStats
			} {
				img, tape, err := b.Build("ref", equivalenceScale)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				snap, stats, err := dbt.Run(img, tape, dbt.Config{
					Input:           "ref",
					Threshold:       100,
					Optimize:        true,
					RegisterTwice:   true,
					DisableFastPath: disable,
				})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return &struct {
					snap  interface{}
					stats dbt.RunStats
				}{snap, *stats}
			}
			fast, slow := run(false), run(true)
			if !reflect.DeepEqual(fast.snap, slow.snap) {
				t.Fatalf("fast-path snapshot differs from generic dispatch")
			}
			// The dispatch-split counters are the one pair that must
			// differ between the modes: all fast on one side, all generic
			// on the other, summing to the same execution volume.
			if fast.stats.GenericDispatches != 0 || slow.stats.FastDispatches != 0 ||
				fast.stats.FastDispatches != slow.stats.GenericDispatches ||
				fast.stats.FastDispatches != fast.stats.BlocksExecuted {
				t.Fatalf("dispatch split wrong: fast %d/%d, slow %d/%d, blocks %d",
					fast.stats.FastDispatches, fast.stats.GenericDispatches,
					slow.stats.FastDispatches, slow.stats.GenericDispatches,
					fast.stats.BlocksExecuted)
			}
			fast.stats.FastDispatches, fast.stats.GenericDispatches = 0, 0
			slow.stats.FastDispatches, slow.stats.GenericDispatches = 0, 0
			if !reflect.DeepEqual(fast.stats, slow.stats) {
				t.Fatalf("fast-path stats differ: %+v vs %+v", fast.stats, slow.stats)
			}
		})
	}
}
