// Regions: region formation and the probability computations of the
// paper's sections 3.2 and 3.3.
//
// The program builds the two worked examples of the paper — the
// non-loop region of Figure 6 (completion probability 0.86) and the
// loop region of Figure 7 (loop-back probability ~0.886) — and then
// shows the same computations on regions actually formed by the
// translator from a running program.
package main

import (
	"fmt"
	"log"

	"repro/internal/dbt"
	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/profile"
	"repro/internal/region"
)

func paperFigure6() {
	// b5 splits 0.4/0.6 into b6/b7; they rejoin at b8 with
	// probabilities 0.8 and 0.9.
	r := &profile.Region{
		Kind:  profile.RegionTrace,
		Entry: 5,
		Blocks: []profile.RegionBlock{
			{ID: 5, Addr: 5, HasBranch: true, Use: 1000, Taken: 400, TakenNext: 6, FallNext: 7},
			{ID: 6, Addr: 6, HasBranch: true, Use: 400, Taken: 320, TakenNext: 8, FallNext: -1},
			{ID: 7, Addr: 7, HasBranch: true, Use: 600, Taken: 540, TakenNext: 8, FallNext: -1},
			{ID: 8, Addr: 8, TakenNext: -1, FallNext: -1, TakenTarget: -1, FallTarget: -1},
		},
	}
	cp, err := region.CompletionProb(r, region.FrozenProb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper Figure 6: completion probability = %.2f (paper: 0.86)\n", cp)
}

func paperFigure7() {
	// Loop: b5 -> {b7 (0.6), b6 (0.4)}; b6 -> b8 (0.9625); b7 and b8
	// branch back to the entry with probability 0.9 each.
	r := &profile.Region{
		Kind:  profile.RegionLoop,
		Entry: 5,
		Blocks: []profile.RegionBlock{
			{ID: 5, Addr: 5, HasBranch: true, Use: 10000, Taken: 6000, TakenNext: 7, FallNext: 6},
			{ID: 6, Addr: 6, HasBranch: true, Use: 4000, Taken: 3850, TakenNext: 8, FallNext: -1},
			{ID: 7, Addr: 7, HasBranch: true, Use: 6000, Taken: 5400, TakenNext: 5, FallNext: -1},
			{ID: 8, Addr: 8, HasBranch: true, Use: 3850, Taken: 3465, TakenNext: 5, FallNext: -1},
		},
	}
	lp, err := region.LoopBackProb(r, region.FrozenProb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper Figure 7: loop-back probability = %.4f (paper: 0.886)\n", lp)
}

func liveRegions() {
	// A program with a hot biased diamond and a nested loop; run it
	// under the translator and inspect the regions it forms.
	src := `
.entry main
main:
	loadi r0, 0
	loadi r14, 0
	loadi r10, 60000
	loadi r6, 7372     ; p = 0.9
	loadi r7, 4096     ; p = 0.5
loop:
	in r1
	blt r1, r7, arm2   ; unbiased diamond
	nop
	nop
	jmp merge
arm2:
	nop
	nop
	jmp merge
merge:
	in r1
	blt r1, r6, inner  ; geometric inner loop, LP = 0.9
inner:
	in r2
	blt r2, r6, inner
	addi r14, r14, 1
	blt r14, r10, loop
	halt
`
	img, err := guest.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	img.Name = "regions-demo"
	snap, stats, err := dbt.Run(img, interp.NewUniformTape("regions/ref"), dbt.Config{
		Optimize: true, Threshold: 500, RegisterTwice: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive translator run: %d optimization waves, %d regions\n",
		stats.OptimizationWaves, len(snap.Regions))
	for _, r := range snap.Regions {
		fmt.Printf("  region %d (%s), %d blocks, entry at %d\n",
			r.ID, r.Kind, len(r.Blocks), r.EntryBlock().Addr)
		switch r.Kind {
		case profile.RegionTrace:
			cp, err := region.CompletionProb(r, region.FrozenProb)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    completion probability (frozen counters) = %.3f\n", cp)
		case profile.RegionLoop:
			lp, err := region.LoopBackProb(r, region.FrozenProb)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    loop-back probability (frozen counters) = %.3f\n", lp)
		}
	}
	fmt.Printf("  region execution: %d entries, %d completions, %d loop-backs, %d side exits\n",
		stats.RegionEntries, stats.RegionCompletions, stats.RegionLoopBacks, stats.RegionSideExits)
}

func main() {
	paperFigure6()
	paperFigure7()
	liveRegions()
}
