// Quickstart: build a small guest program, run it under the two-phase
// dynamic binary translator, and compare the initial profile INIP(T)
// with the average profile AVEP — the paper's core methodology on one
// page.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/isa"
)

func main() {
	// A guest program with a hot loop around a biased branch: each
	// iteration draws a word from the input tape and takes the branch
	// with probability 6144/8192 = 0.75.
	b := guest.NewBuilder("quickstart")
	main := b.Here("main")
	b.SetEntry(main)
	b.LoadImm(0, 0)        // r0 = 0
	b.LoadImm(14, 0)       // iteration counter
	b.LoadImm(10, 50000)   // iteration limit
	b.LoadImm(6, 6144)     // branch bias: p = 0.75
	loop := b.Here("loop") // driver loop
	b.In(1)
	taken := b.NewLabel("taken")
	next := b.NewLabel("next")
	b.Branch(isa.OpBlt, 1, 6, taken)
	b.Nops(2)
	b.Jump(next)
	b.Bind(taken)
	b.Nops(2)
	b.Bind(next)
	b.Addi(14, 14, 1)
	b.Branch(isa.OpBlt, 14, 10, loop)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	img, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// AVEP: run with optimization disabled; counters run to the end.
	avep, _, err := dbt.Run(img, interp.NewUniformTape("quickstart/ref"), dbt.Config{Optimize: false})
	if err != nil {
		log.Fatal(err)
	}

	// INIP(500): the profiling phase counts until a block reaches the
	// retranslation threshold 500; the optimization phase then forms
	// regions and freezes those counters.
	inip, stats, err := dbt.Run(img, interp.NewUniformTape("quickstart/ref"), dbt.Config{
		Optimize:      true,
		Threshold:     500,
		RegisterTwice: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program: %d guest instructions, %d blocks discovered\n",
		len(img.Code), stats.BlocksTranslated)
	fmt.Printf("optimization: %d waves, %d regions formed\n",
		stats.OptimizationWaves, stats.RegionsFormed)
	fmt.Printf("profiling ops: INIP(500)=%d vs AVEP=%d (%.2f%%)\n",
		inip.ProfilingOps, avep.ProfilingOps,
		100*float64(inip.ProfilingOps)/float64(avep.ProfilingOps))

	// Compare: how well does the 500-sample initial profile predict the
	// whole-run average behaviour?
	summary, _, err := core.Compare(inip, avep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sd.BP = %.4f (weighted SD of branch probabilities)\n", summary.SdBP)
	fmt.Printf("BP mismatch = %.2f%% (range-based, buckets [0,.3) [.3,.7] (.7,1])\n",
		summary.BPMismatch*100)
	if summary.HasRegions {
		fmt.Printf("Sd.CP = %.4f over %d traces, Sd.LP = %.4f over %d loops\n",
			summary.SdCP, summary.Traces, summary.SdLP, summary.Loops)
	}
	fmt.Println("\nThis program is stationary, so even a short initial profile")
	fmt.Println("predicts the average behaviour well; see examples/phases for")
	fmt.Println("a program where it cannot.")
}
