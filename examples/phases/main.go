// Phases: why a single profiling phase can mispredict a program.
//
// This example builds an Mcf-shaped program whose dominant branch flips
// its bias after an initial phase, then sweeps the retranslation
// threshold. Small thresholds freeze the profile inside the first phase
// and mispredict the run's average behaviour; only thresholds whose
// freeze window [T, 2T] reaches past the phase boundary predict well —
// the effect behind the Mcf curves in Figures 9 and 16 of the paper.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/guest"
	"repro/internal/interp"
)

// program returns an asm program of `iters` iterations whose branch
// takes with p=0.95 for the first `boundary` iterations and p=0.10
// afterwards.
func program(iters, boundary int) string {
	return `
.entry main
main:
	loadi r0, 0
	loadi r14, 0
	loadi r7, 7782      ; early bias: p = 0.95
	loadi r8, 819       ; late bias:  p = 0.10
	loadi r9, ` + strconv.Itoa(boundary) + `
	loadi r10, ` + strconv.Itoa(iters) + `
loop:
	blt r14, r9, early
	mov r6, r8
	jmp body
early:
	mov r6, r7
body:
	in r1
	blt r1, r6, taken
	addi r2, r2, 1
	jmp next
taken:
	addi r3, r3, 1
next:
	addi r14, r14, 1
	blt r14, r10, loop
	halt
`
}

func main() {
	const (
		iters    = 400000
		boundary = 20000 // the phase change
	)
	img, err := guest.Assemble(program(iters, boundary))
	if err != nil {
		log.Fatal(err)
	}
	img.Name = "phases"

	avep, _, err := dbt.Run(img, interp.NewUniformTape("phases/ref"), dbt.Config{Optimize: false})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("phase boundary at iteration %d of %d; average taken probability ~ %.2f\n\n",
		boundary, iters, 0.95*float64(boundary)/iters+0.10*(1-float64(boundary)/iters))
	fmt.Printf("%-12s %-10s %-12s %s\n", "threshold", "Sd.BP", "mismatch", "window vs boundary")
	for _, threshold := range []uint64{100, 1000, 5000, 10000, 20000, 50000} {
		img2, err := guest.Assemble(program(iters, boundary))
		if err != nil {
			log.Fatal(err)
		}
		img2.Name = "phases"
		inip, _, err := dbt.Run(img2, interp.NewUniformTape("phases/ref"), dbt.Config{
			Optimize: true, Threshold: threshold, RegisterTwice: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		summary, _, err := core.Compare(inip, avep)
		if err != nil {
			log.Fatal(err)
		}
		var where string
		switch {
		case 2*threshold <= boundary:
			where = "inside the early phase: mispredicts"
		case threshold >= 2*boundary:
			where = "late samples dominate the counters"
		default:
			where = "straddles the boundary (counters still carry the early phase)"
		}
		fmt.Printf("%-12d %-10.4f %-12s %s\n",
			threshold, summary.SdBP,
			fmt.Sprintf("%.1f%%", summary.BPMismatch*100), where)
	}
	fmt.Println("\n" + strings.TrimSpace(`
The initial profile is only representative when its freeze window
[T, 2T] samples the behaviour the program will actually exhibit; a
phase change after the window invalidates it (paper, sections 4.1/4.3).
`))
}
