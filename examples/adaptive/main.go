// Adaptive: the paper's section-5 proposals in action.
//
// A program changes behaviour mid-run. The fixed two-phase translator
// froze its regions during the first phase and keeps paying side exits
// forever; the adaptive translator notices the side-exit storm,
// dissolves the stale regions, re-profiles, and rebuilds regions that
// match the current phase. Continuous trip-count instrumentation
// likewise repairs the loop classification that the frozen initial
// profile gets wrong.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
)

const src = `
; A hot branch (p=0.95 -> 0.10) and a geometric loop (LP 0.95 -> 0.40)
; that both flip at iteration 30000 of 200000.
.entry main
main:
	loadi r0, 0
	loadi r14, 0
	loadi r7, 7782
	loadi r8, 819
	loadi r9, 30000
	loadi r10, 200000
loop:
	blt r14, r9, early
	mov r6, r8
	jmp body
early:
	mov r6, r7
body:
	in r1
	blt r1, r6, taken
	addi r2, r2, 1
	jmp inner
taken:
	addi r3, r3, 1
inner:
	in r4
	blt r4, r6, inner
	addi r14, r14, 1
	blt r14, r10, loop
	halt
`

func run(label string, mutate func(*dbt.Config)) {
	img, err := guest.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	img.Name = "adaptive-demo"
	avepImg, err := guest.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	avepImg.Name = "adaptive-demo"
	avep, _, err := dbt.Run(avepImg, interp.NewUniformTape("adaptive/ref"), dbt.Config{Optimize: false})
	if err != nil {
		log.Fatal(err)
	}

	cfg := dbt.Config{
		Optimize: true, Threshold: 500, RegisterTwice: true,
		Perf: perfmodel.NewAccumulator(perfmodel.DefaultParams()),
	}
	mutate(&cfg)
	snap, stats, err := dbt.Run(img, interp.NewUniformTape("adaptive/ref"), cfg)
	if err != nil {
		log.Fatal(err)
	}
	sum, norm, err := core.Compare(snap, avep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s cycles=%11.0f sideExits=%8d dissolved=%d  Sd.BP=%.3f lpMismatch=%.0f%%\n",
		label, stats.Cycles, stats.RegionSideExits, stats.RegionsDissolved,
		sum.SdBP, sum.LPMismatch*100)
	if len(norm.Loops) > 0 {
		li := norm.Loops[0]
		fmt.Printf("%-28s loop: predicted trips %.1f vs average %.1f\n",
			"", metrics.TripCount(li.LT), metrics.TripCount(li.LM))
	}
}

func main() {
	fmt.Println("phase flip at 15% of the run; fixed threshold T=500 freezes inside the early phase")
	fmt.Println()
	run("fixed two-phase", func(c *dbt.Config) {})
	fmt.Println()
	run("adaptive (side-exit watch)", func(c *dbt.Config) { c.Adaptive = true })
	fmt.Println()
	run("continuous trip counts", func(c *dbt.Config) { c.ContinuousTripCount = true })
	fmt.Println()
	fmt.Println("Adaptation trades re-optimization work for on-trace execution after the")
	fmt.Println("flip; continuous trip counting repairs the loop classification without")
	fmt.Println("re-optimizing (paper, section 5).")
}
