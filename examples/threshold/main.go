// Threshold: sweep the retranslation-threshold ladder on one synthetic
// SPEC2000 benchmark and print a miniature of the paper's Figures 8, 10
// and 18 for it: prediction accuracy and profiling cost per threshold.
//
// Usage: go run ./examples/threshold [benchmark]   (default: gzip)
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/study"
)

func main() {
	name := "gzip"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench := spec.ByName(name)
	if bench == nil {
		log.Fatalf("unknown benchmark %q (12 INT + 14 FP members; see internal/spec)", name)
	}

	ladder := []float64{100, 500, 2e3, 1e4, 8e4, 1e6}
	thresholds := make([]uint64, len(ladder))
	for i, t := range ladder {
		thresholds[i] = study.EffectiveThreshold(t, 1.0)
	}

	fmt.Printf("benchmark %s (%s), %g driver iterations\n", bench.Name, bench.Class, bench.Iters)
	res, err := core.RunBenchmark(bench.Target(1.0), core.Options{Thresholds: thresholds})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nINIP(train) reference: Sd.BP=%.4f, mismatch=%.1f%% (%d profiling ops)\n",
		res.Train.SdBP, res.Train.BPMismatch*100, res.TrainOps)
	fmt.Printf("\n%-10s %-9s %-10s %-9s %-9s %-11s %s\n",
		"T", "Sd.BP", "mismatch", "Sd.CP", "Sd.LP", "lpMismatch", "ops vs train")
	for i, tr := range res.Results {
		fmt.Printf("%-10.0f %-9.4f %-10s %-9.4f %-9.4f %-11s %.4f\n",
			ladder[i], tr.Summary.SdBP,
			fmt.Sprintf("%.1f%%", tr.Summary.BPMismatch*100),
			tr.Summary.SdCP, tr.Summary.SdLP,
			fmt.Sprintf("%.1f%%", tr.Summary.LPMismatch*100),
			float64(tr.ProfilingOps)/float64(res.TrainOps))
	}
	fmt.Println("\nReading the table: a threshold is 'good enough' when its Sd.BP")
	fmt.Println("approaches the train reference while its profiling-operation")
	fmt.Println("fraction stays tiny (the paper's 500-2000 sweet spot).")
}
