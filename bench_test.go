// Package repro's top-level benchmarks regenerate every evaluation
// figure of the paper (Figures 8-18) and run the ablation studies named
// in DESIGN.md.
//
// The figure benches share one study execution (a representative
// 8-benchmark subset at scale 0.05, cached across benches) and measure
// figure regeneration over its results; each bench also reports the
// figure's headline quantities as benchmark metrics so `go test
// -bench=.` output doubles as a results table. For full-resolution
// figures over the whole suite, run cmd/inipstudy.
package repro

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/interp"
	"repro/internal/linalg"
	"repro/internal/perfmodel"
	"repro/internal/region"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/study"
)

// benchScale keeps the shared study fast enough for `go test -bench`;
// thresholds and run lengths shrink together, so the figures keep their
// shapes at reduced resolution (see internal/study).
const benchScale = 0.05

var (
	studyOnce sync.Once
	studyRes  *study.Results
	studyErr  error
)

// sharedStudy runs the subset study once per test binary invocation.
func sharedStudy(b *testing.B) *study.Results {
	b.Helper()
	studyOnce.Do(func() {
		names := []string{"gzip", "mcf", "vpr", "vortex", "perlbmk", "swim", "wupwise", "lucas"}
		var benches []*spec.Benchmark
		for _, n := range names {
			benches = append(benches, spec.ByName(n))
		}
		studyRes, studyErr = study.Run(study.Config{
			Scale:      benchScale,
			Benchmarks: benches,
		})
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studyRes
}

// reportSeries attaches the first and last point of each series as
// benchmark metrics.
func reportSeries(b *testing.B, fig study.Figure) {
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			continue
		}
		label := strings.ReplaceAll(s.Label, " ", "_")
		b.ReportMetric(s.Y[0], label+"@lowT")
		b.ReportMetric(s.Y[len(s.Y)-1], label+"@highT")
	}
}

func benchFigure(b *testing.B, id string, gen func(*study.Results) study.Figure) {
	res := sharedStudy(b)
	var fig study.Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = gen(res)
	}
	b.StopTimer()
	if fig.ID != id {
		b.Fatalf("generated %s, want %s", fig.ID, id)
	}
	if len(fig.Series) == 0 || len(fig.X) == 0 {
		b.Fatalf("%s is empty", id)
	}
	reportSeries(b, fig)
}

// BenchmarkFigure08 regenerates "Standard deviations of branch
// probabilities" (suite averages + train references).
func BenchmarkFigure08(b *testing.B) {
	benchFigure(b, "fig8", (*study.Results).Figure8)
}

// BenchmarkFigure09 regenerates the per-benchmark INT Sd.BP curves.
func BenchmarkFigure09(b *testing.B) {
	benchFigure(b, "fig9", (*study.Results).Figure9)
}

// BenchmarkFigure10 regenerates "Branch probability mismatch rates".
func BenchmarkFigure10(b *testing.B) {
	benchFigure(b, "fig10", (*study.Results).Figure10)
}

// BenchmarkFigure11 regenerates the per-benchmark INT mismatch curves.
func BenchmarkFigure11(b *testing.B) {
	benchFigure(b, "fig11", (*study.Results).Figure11)
}

// BenchmarkFigure12 regenerates the per-benchmark FP mismatch curves.
func BenchmarkFigure12(b *testing.B) {
	benchFigure(b, "fig12", (*study.Results).Figure12)
}

// BenchmarkFigure13 regenerates "Standard deviation of completion
// probabilities".
func BenchmarkFigure13(b *testing.B) {
	benchFigure(b, "fig13", (*study.Results).Figure13)
}

// BenchmarkFigure14 regenerates "Standard deviation of loop-back
// probabilities".
func BenchmarkFigure14(b *testing.B) {
	benchFigure(b, "fig14", (*study.Results).Figure14)
}

// BenchmarkFigure15 regenerates "Loop-back probability mismatch rate".
func BenchmarkFigure15(b *testing.B) {
	benchFigure(b, "fig15", (*study.Results).Figure15)
}

// BenchmarkFigure16 regenerates the per-benchmark INT loop-back
// mismatch curves.
func BenchmarkFigure16(b *testing.B) {
	benchFigure(b, "fig16", (*study.Results).Figure16)
}

// BenchmarkFigure17 regenerates "Performance impact of initial
// profiles".
func BenchmarkFigure17(b *testing.B) {
	benchFigure(b, "fig17", (*study.Results).Figure17)
}

// BenchmarkFigure18 regenerates "Profiling operations required for
// training run and for initial profiles".
func BenchmarkFigure18(b *testing.B) {
	benchFigure(b, "fig18", (*study.Results).Figure18)
}

// --- Ablations (DESIGN.md section 5) ---

// ablationRun executes gzip once under the given translator config and
// returns the comparison summary and stats.
func ablationRun(b *testing.B, mutate func(*dbt.Config)) (float64, *dbt.RunStats) {
	b.Helper()
	bench := spec.ByName("gzip")
	img, tape, err := bench.Build("ref", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	avep, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		b.Fatal(err)
	}
	img2, tape2, err := bench.Build("ref", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dbt.Config{Optimize: true, Threshold: 100, RegisterTwice: true}
	mutate(&cfg)
	inip, stats, err := dbt.Run(img2, tape2, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sum, _, err := core.Compare(inip, avep)
	if err != nil {
		b.Fatal(err)
	}
	return sum.SdBP, stats
}

// BenchmarkAblationTrigger contrasts the paper's two optimization
// triggers: pool-size only vs register-twice.
func BenchmarkAblationTrigger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sdPool, statsPool := ablationRun(b, func(c *dbt.Config) { c.RegisterTwice = false; c.PoolTrigger = 8 })
		sdTwice, statsTwice := ablationRun(b, func(c *dbt.Config) { c.RegisterTwice = true; c.PoolTrigger = 1 << 30 })
		b.ReportMetric(sdPool, "SdBP/pool")
		b.ReportMetric(sdTwice, "SdBP/twice")
		b.ReportMetric(float64(statsPool.OptimizationWaves), "waves/pool")
		b.ReportMetric(float64(statsTwice.OptimizationWaves), "waves/twice")
	}
}

// BenchmarkAblationMinProb sweeps the region former's minimum branch
// probability (the paper's reference value is 0.7).
func BenchmarkAblationMinProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, minProb := range []float64{0.5, 0.7, 0.9} {
			_, stats := ablationRun(b, func(c *dbt.Config) {
				c.Region = region.Config{MinProb: minProb, MaxBlocks: 16, MinUse: c.Threshold / 2, Diamonds: true}
			})
			label := fmt.Sprintf("regions/minProb%.1f", minProb)
			b.ReportMetric(float64(stats.RegionsFormed), label)
			completions := float64(stats.RegionCompletions+stats.RegionLoopBacks) /
				float64(max64(stats.RegionEntries, 1))
			b.ReportMetric(completions, fmt.Sprintf("onTrace/minProb%.1f", minProb))
		}
	}
}

func max64(v uint64, floor uint64) uint64 {
	if v < floor {
		return floor
	}
	return v
}

// BenchmarkAblationDiamonds contrasts region formation with and without
// diamond (hyperblock) absorption at unbiased branches.
func BenchmarkAblationDiamonds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, diamonds := range []bool{true, false} {
			_, stats := ablationRun(b, func(c *dbt.Config) {
				c.Region = region.Config{MinProb: 0.7, MaxBlocks: 16, MinUse: c.Threshold / 2, Diamonds: diamonds}
			})
			label := "off"
			if diamonds {
				label = "on"
			}
			b.ReportMetric(float64(stats.RegionsFormed), "regions/diamonds-"+label)
			b.ReportMetric(float64(stats.RegionCompletions), "completions/diamonds-"+label)
		}
	}
}

// BenchmarkAblationFreeze contrasts counter freezing at optimization
// (IA32EL behaviour: all INIP counts land in [T,2T]) with continued
// counting.
func BenchmarkAblationFreeze(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sdFrozen, _ := ablationRun(b, func(c *dbt.Config) { c.DisableFreeze = false })
		sdLive, _ := ablationRun(b, func(c *dbt.Config) { c.DisableFreeze = true })
		b.ReportMetric(sdFrozen, "SdBP/frozen")
		b.ReportMetric(sdLive, "SdBP/live")
	}
}

// BenchmarkAblationSolver contrasts the NAVEP frequency-recovery
// solvers: Gauss-Seidel iteration vs dense LU, on flow systems of the
// size the normalizer produces.
func BenchmarkAblationSolver(b *testing.B) {
	r := rng.New(42)
	n := 120
	dense := linalg.NewMatrix(n, n)
	sp := linalg.NewSparse(n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			if i != j && r.Float64() < 0.05 {
				v := r.Float64()
				dense.Set(i, j, -v)
				sp.Add(i, j, -v)
				row += v
			}
		}
		dense.Set(i, i, row+1)
		sp.Add(i, i, row+1)
		rhs[i] = r.Float64() * 1000
	}
	b.Run("gauss-seidel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := linalg.SolveGaussSeidel(sp, rhs, linalg.GaussSeidelOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense-lu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := linalg.SolveDense(dense, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionAdaptive runs the section-5 extension experiment
// (adaptive retranslation + continuous trip counts) on the phased
// poster-child benchmark and its stationary control.
func BenchmarkExtensionAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := study.RunExtensions([]string{"mcf", "vortex"}, benchScale, 2000)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Name == "mcf" {
				b.ReportMetric(row.AdaptiveSpeedup, "mcfSpeedup")
				b.ReportMetric(float64(row.Dissolved), "mcfDissolved")
				b.ReportMetric(row.ContinuousLPMismatch, "mcfLpMisCont")
				b.ReportMetric(row.FrozenLPMismatch, "mcfLpMisFrozen")
			}
		}
	}
}

// BenchmarkExtensionConvergence evaluates the threshold-selection
// heuristic (register on estimate convergence) against fixed thresholds
// on a stationary benchmark: the metric pair to watch is accuracy
// (SdBP) per unit of profiling work (opsVsTrain).
func BenchmarkExtensionConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := study.RunConvergence([]string{"vortex"}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Policy {
			case "fixed T=10k":
				b.ReportMetric(row.SdBP, "sdBP/fixed10k")
				b.ReportMetric(row.OpsVsTrain, "ops/fixed10k")
			case "converge eps=0.03 cap=40k":
				b.ReportMetric(row.SdBP, "sdBP/converge")
				b.ReportMetric(row.OpsVsTrain, "ops/converge")
			}
		}
	}
}

// BenchmarkEndToEndBenchmark measures a complete three-way study of one
// benchmark (AVEP + train + one threshold), the unit of work behind
// every figure point.
func BenchmarkEndToEndBenchmark(b *testing.B) {
	bench := spec.ByName("vortex")
	for i := 0; i < b.N; i++ {
		if _, err := core.RunBenchmark(bench.Target(benchScale), core.Options{
			Thresholds: []uint64{study.EffectiveThreshold(2000, benchScale)},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslatorThroughput measures raw translator block execution
// speed (no optimization), the simulator substrate's cost driver, with
// the pre-lowered fast path on (the default) and off (every block
// dispatched through interp.Exec).
func BenchmarkTranslatorThroughput(b *testing.B) {
	bench := spec.ByName("swim")
	img, _, err := bench.Build("ref", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fast", false}, {"generic", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var instrs uint64
			for i := 0; i < b.N; i++ {
				_, stats, err := dbt.Run(img, interp.NewUniformTape("swim/ref"), dbt.Config{
					Optimize:        false,
					DisableFastPath: mode.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				instrs += stats.Instructions
			}
			b.StopTimer()
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
			}
		})
	}
}

// BenchmarkThresholdLadder measures a full reference sweep (AVEP plus a
// five-threshold INIP ladder) over one benchmark, comparing the
// shared-trace execution (one guest run feeding every profiling
// context) with independent per-threshold runs.
func BenchmarkThresholdLadder(b *testing.B) {
	bench := spec.ByName("vortex")
	thresholds := make([]uint64, 0, 5)
	for _, pt := range []float64{100, 1e3, 1e4, 1e5, 1e6} {
		thresholds = append(thresholds, study.EffectiveThreshold(pt, benchScale))
	}
	for _, mode := range []struct {
		name        string
		independent bool
	}{{"shared", false}, {"independent", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunBenchmark(bench.Target(benchScale), core.Options{
					Thresholds:      thresholds,
					Workers:         1,
					IndependentRuns: mode.independent,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPerfModel measures the cycle accumulator in isolation.
func BenchmarkPerfModel(b *testing.B) {
	acc := perfmodel.NewAccumulator(perfmodel.DefaultParams())
	for i := 0; i < b.N; i++ {
		acc.ChargeQuickBlock(7)
		acc.ChargeOptimizedBlock(7)
		acc.ChargeSideExit()
	}
}
