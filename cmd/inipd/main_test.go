package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonLifecycle boots the daemon in-process on a free port,
// performs a cold and a warm compare against it, and drains it with
// SIGTERM: exit 0, the address file published atomically, and the warm
// response served with zero guest blocks.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	sig := make(chan os.Signal, 1)
	var errBuf bytes.Buffer
	exited := make(chan int, 1)
	go func() {
		exited <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addrfile", addrFile,
			"-scale", "0.001",
			"-cache", filepath.Join(dir, "cache"),
			"-state", filepath.Join(dir, "state"),
			"-trace", filepath.Join(dir, "trace.jsonl"),
		}, io.Discard, &errBuf, sig)
	}()

	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never published its address\n%s", errBuf.String())
		}
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	base := "http://" + addr

	post := func() (*http.Response, []byte) {
		resp, err := http.Post(base+"/v1/compare", "application/json",
			strings.NewReader(`{"bench":"gzip","t":2000}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compare: %d %s", resp.StatusCode, body)
		}
		return resp, body
	}
	cold, coldBody := post()
	if cold.Header.Get("X-Inipd-Cache") != "miss" {
		t.Fatalf("cold cache header = %q", cold.Header.Get("X-Inipd-Cache"))
	}
	warm, warmBody := post()
	if warm.Header.Get("X-Inipd-Guest-Blocks") != "0" {
		t.Fatalf("warm compare executed %s blocks", warm.Header.Get("X-Inipd-Guest-Blocks"))
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("warm body differs from cold")
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("drained daemon exited %d\n%s", code, errBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain\n%s", errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "drained") {
		t.Fatalf("no drain confirmation:\n%s", errBuf.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "trace.jsonl")); err != nil {
		t.Fatalf("trace not published on drain: %v", err)
	}
}

// TestBadFlags: flag errors and inconsistent combinations exit 2.
func TestBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":         {"-nope"},
		"resume without state": {"-resume"},
	} {
		if code := run(args, io.Discard, io.Discard, nil); code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
	}
}

// TestListenFailure: an unusable address is a clean exit 1.
func TestListenFailure(t *testing.T) {
	var errBuf bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:1"}, io.Discard, &errBuf, nil); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, errBuf.String())
	}
	if errBuf.Len() == 0 {
		t.Fatal("listen failure reported nothing")
	}
}
