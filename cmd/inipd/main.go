// Command inipd serves the study pipeline as a long-running HTTP/JSON
// daemon: synchronous single-comparison requests, asynchronous
// full-ladder study jobs with polling and SSE progress, Prometheus
// metrics, and health/readiness probes (see internal/serve for the
// endpoint contract).
//
// Usage:
//
//	inipd -addr 127.0.0.1:8077 -scale 0.01 -cache results.cache
//	inipd -addr 127.0.0.1:0 -addrfile addr.txt    # pick a free port, publish it
//	inipd -state state.d -resume                  # resume interrupted jobs
//
// One daemon owns the machine's study resources: a shared bounded
// scheduler for comparisons, an optional content-addressed result
// cache (warm compares execute zero guest blocks), and a
// server-lifetime flight recorder. SIGTERM/SIGINT drains gracefully —
// running jobs stop cooperatively and flush their checkpoints, so a
// restart with -resume completes them with byte-identical figures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// run is main with its environment made explicit for the tests and the
// CI smoke: args, output streams, and the shutdown-signal channel.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("inipd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8077", "listen address (host:port; port 0 picks a free one)")
		addrFile = fs.String("addrfile", "", "write the bound address to this file once listening (for scripts using port 0)")
		scale    = fs.Float64("scale", 1.0, "default paper-unit scale for requests that do not set one")
		workers  = fs.Int("workers", 0, "shared worker-pool size (default: GOMAXPROCS)")
		inflight = fs.Int("maxinflight", 0, "max concurrently-executing compare requests (default: 2x workers)")
		queue    = fs.Int("maxqueue", 0, "max compare requests waiting for a slot before 429 (default: 8)")
		maxJobs  = fs.Int("maxjobs", 1, "max concurrently-running study jobs")
		timeout  = fs.Duration("timeout", 2*time.Minute, "default per-request deadline")
		cacheDir = fs.String("cache", "", "content-addressed result cache directory (warm compares execute zero guest blocks)")
		stateDir = fs.String("state", "", "job state directory (records, per-job checkpoints, results); enables -resume")
		resume   = fs.Bool("resume", false, "re-enqueue unfinished jobs found in -state at startup")
		trace    = fs.String("trace", "", "write a server-lifetime flight-recorder trace (JSONL) to this file on shutdown")
		drainFor = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight work")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *resume && *stateDir == "" {
		fmt.Fprintln(stderr, "inipd: -resume requires -state")
		return 2
	}

	cfg := serve.Config{
		Scale:          *scale,
		Workers:        *workers,
		MaxInflight:    *inflight,
		MaxQueue:       *queue,
		MaxJobs:        *maxJobs,
		DefaultTimeout: *timeout,
		StateDir:       *stateDir,
		Resume:         *resume,
	}
	if *cacheDir != "" {
		store, err := resultcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "inipd: %v\n", err)
			return 1
		}
		cfg.Cache = store
	}
	var traceOut *atomicio.File
	if *trace != "" {
		atomicio.SweepTempsFor(*trace)
		f, err := atomicio.Create(*trace)
		if err != nil {
			fmt.Fprintf(stderr, "inipd: %v\n", err)
			return 1
		}
		traceOut = f
		cfg.Trace = obs.NewRecorder(f)
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "inipd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "inipd: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		atomicio.SweepTempsFor(*addrFile)
		if err := atomicio.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "inipd: %v\n", err)
			ln.Close()
			return 1
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "inipd: listening on %s\n", bound)

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "inipd: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stderr, "inipd: %v — draining (in-flight work finishes, jobs checkpoint)\n", s)
	}

	// Drain order matters: stop admitting and checkpoint the jobs
	// first, then let the HTTP server wait out in-flight handlers, then
	// close the trace — late emitters after the recorder closes are the
	// counted no-ops the obs close gate guarantees.
	code := 0
	if err := srv.Drain(*drainFor); err != nil {
		fmt.Fprintf(stderr, "inipd: %v\n", err)
		code = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "inipd: shutdown: %v\n", err)
		code = 1
	}
	if cfg.Trace != nil {
		dropped, cerr := cfg.Trace.Close()
		if cerr == nil {
			cerr = traceOut.Commit()
		} else {
			traceOut.Close()
		}
		if cerr != nil {
			fmt.Fprintf(stderr, "inipd: trace: %v\n", cerr)
			code = 1
		} else {
			fmt.Fprintf(stderr, "inipd: wrote %s (%d events dropped)\n", *trace, dropped)
		}
	}
	fmt.Fprintln(stderr, "inipd: drained")
	_ = stdout
	return code
}
