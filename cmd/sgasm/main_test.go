package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loopSrc is a tiny program with one natural loop, enough to exercise
// the assembler, disassembler and CFG printer.
const loopSrc = `
.entry main
main:
	loadi r2, 0
loop:
	in r1
	addi r3, r3, 1
	bne r1, r2, loop
	halt
`

func assemble(t *testing.T, dir string) string {
	t.Helper()
	src := filepath.Join(dir, "loop.s")
	img := filepath.Join(dir, "loop.sg32")
	if err := os.WriteFile(src, []byte(loopSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{src, "-o", img}, &out, &errBuf); code != 0 {
		t.Fatalf("assemble exited %d:\n%s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "wrote "+img) {
		t.Fatalf("assemble did not report the output:\n%s", out.String())
	}
	return img
}

// TestAssembleDisassembleCFG round-trips a source file through the
// assembler and checks the inspection outputs.
func TestAssembleDisassembleCFG(t *testing.T) {
	img := assemble(t, t.TempDir())

	var dis bytes.Buffer
	if code := run([]string{"-d", img}, &dis, new(bytes.Buffer)); code != 0 {
		t.Fatalf("-d exited %d", code)
	}
	for _, want := range []string{"entry 0", "loadi", "bne", "halt"} {
		if !strings.Contains(dis.String(), want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis.String())
		}
	}

	var cfgOut bytes.Buffer
	if code := run([]string{"-cfg", img}, &cfgOut, new(bytes.Buffer)); code != 0 {
		t.Fatalf("-cfg exited %d", code)
	}
	for _, want := range []string{"entry: 0", "block", "<main>", "loop head 1"} {
		if !strings.Contains(cfgOut.String(), want) {
			t.Fatalf("CFG output missing %q:\n%s", want, cfgOut.String())
		}
	}

	// Inspection is deterministic: a second pass is byte-identical.
	var again bytes.Buffer
	run([]string{"-cfg", img}, &again, new(bytes.Buffer))
	if !bytes.Equal(cfgOut.Bytes(), again.Bytes()) {
		t.Fatal("-cfg output is not deterministic")
	}
}

// TestGenerateBenchmark: -gen emits a loadable synthetic benchmark
// image.
func TestGenerateBenchmark(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "gzip.sg32")
	var out, errBuf bytes.Buffer
	if code := run([]string{"-gen", "gzip", "-scale", "0.001", "-o", img}, &out, &errBuf); code != 0 {
		t.Fatalf("-gen exited %d:\n%s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "wrote "+img) {
		t.Fatalf("-gen did not report the output:\n%s", out.String())
	}
	var cfgOut bytes.Buffer
	if code := run([]string{"-cfg", img}, &cfgOut, new(bytes.Buffer)); code != 0 {
		t.Fatal("generated image does not load")
	}
	if !strings.Contains(cfgOut.String(), "loop head") {
		t.Fatal("generated benchmark has no loops")
	}
}

// TestMalformedInputs: every bad invocation exits non-zero with a
// diagnostic on stderr and publishes no output file.
func TestMalformedInputs(t *testing.T) {
	dir := t.TempDir()
	badSrc := filepath.Join(dir, "bad.s")
	if err := os.WriteFile(badSrc, []byte(".entry main\nmain:\n\tfrobnicate r1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	goodSrc := filepath.Join(dir, "good.s")
	if err := os.WriteFile(goodSrc, []byte(loopSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	notImage := filepath.Join(dir, "not-an-image")
	if err := os.WriteFile(notImage, []byte("plain text"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.sg32")

	cases := []struct {
		name string
		args []string
		code int
		want string
	}{
		{"no args", nil, 2, "usage"},
		{"bad source", []string{badSrc, "-o", out}, 1, "frobnicate"},
		{"missing -o", []string{goodSrc}, 1, "requires -o"},
		{"not an image", []string{"-d", notImage}, 1, "sgasm:"},
		{"missing file", []string{"-d", filepath.Join(dir, "nope.sg32")}, 1, "no such file"},
		{"unknown bench", []string{"-gen", "nosuch", "-o", out}, 1, "nosuch"},
		{"gen missing -o", []string{"-gen", "gzip", "-scale", "0.001"}, 1, "requires -o"},
		{"bad flag", []string{"-nosuch", notImage}, 2, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != tc.code {
			t.Fatalf("%s: exited %d, want %d (stderr: %s)", tc.name, code, tc.code, stderr.String())
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Fatalf("%s: diagnostic %q does not mention %q", tc.name, stderr.String(), tc.want)
		}
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatal("a failed invocation published an output file")
	}
}
