// Command sgasm assembles, disassembles and inspects SG32 guest images.
//
// Usage:
//
//	sgasm prog.s -o prog.sg32        assemble source to a binary image
//	sgasm -d prog.sg32               disassemble an image
//	sgasm -cfg prog.sg32             print basic blocks and natural loops
//	sgasm -gen mcf -o mcf.sg32       emit a synthetic benchmark image
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/atomicio"
	"repro/internal/cfg"
	"repro/internal/guest"
	"repro/internal/spec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive
// the tool in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgasm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("o", "", "output file for assembled/generated images")
		disasm   = fs.Bool("d", false, "disassemble an SG32 image")
		showCFG  = fs.Bool("cfg", false, "print the static CFG of an SG32 image")
		genBench = fs.String("gen", "", "generate a synthetic benchmark image")
		genInput = fs.String("input", "ref", "input for -gen: ref or train")
		genScale = fs.Float64("scale", 1.0, "scale for -gen")
	)
	// The stdlib flag package stops at the first positional argument,
	// which would reject the documented `sgasm prog.s -o prog.sg32`
	// form; collect positionals and re-parse the rest so flags may
	// appear on either side of the file.
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return 2
		}
		if fs.NArg() == 0 {
			break
		}
		pos = append(pos, fs.Arg(0))
		args = fs.Args()[1:]
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "sgasm: %v\n", err)
		return 1
	}

	if *genBench != "" {
		b := spec.ByName(*genBench)
		if b == nil {
			return fail(fmt.Errorf("unknown benchmark %q", *genBench))
		}
		img, _, err := b.Build(*genInput, *genScale)
		if err != nil {
			return fail(err)
		}
		if *out == "" {
			return fail(fmt.Errorf("-gen requires -o"))
		}
		if err := writeImage(img, *out); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote %s: %d instructions, %d data words\n", *out, len(img.Code), img.DataWords)
		return 0
	}

	if len(pos) != 1 {
		fmt.Fprintln(stderr, "usage: sgasm [-d|-cfg] <file> | sgasm <src.s> -o <img> | sgasm -gen <bench> -o <img>")
		return 2
	}
	path := pos[0]

	switch {
	case *disasm || *showCFG:
		f, err := os.Open(path)
		if err != nil {
			return fail(err)
		}
		img, err := guest.Load(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		if *disasm {
			fmt.Fprintf(stdout, "; %s: entry %d, %d instructions, %d data words\n", img.Name, img.Entry, len(img.Code), img.DataWords)
			fmt.Fprint(stdout, img.Disassemble())
		}
		if *showCFG {
			if err := printCFG(img, stdout); err != nil {
				return fail(err)
			}
		}
	default:
		src, err := os.ReadFile(path)
		if err != nil {
			return fail(err)
		}
		img, err := guest.Assemble(string(src))
		if err != nil {
			return fail(err)
		}
		if *out == "" {
			return fail(fmt.Errorf("assembling requires -o"))
		}
		if err := writeImage(img, *out); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote %s: %d instructions\n", *out, len(img.Code))
	}
	return 0
}

func printCFG(img *guest.Image, stdout io.Writer) error {
	g, err := cfg.Build(img)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "entry: %d\n", g.Entry)
	for _, s := range g.Starts() {
		b := g.Blocks[s]
		name := ""
		if sym, ok := img.SymbolAt(s); ok {
			name = " <" + sym + ">"
		}
		fmt.Fprintf(stdout, "block %4d..%-4d%s -> %v\n", b.Start, b.End, name, b.Succs)
	}
	loops := g.NaturalLoops()
	for _, l := range loops {
		body := make([]int, 0, len(l.Body))
		for s := range l.Body {
			body = append(body, s)
		}
		sort.Ints(body)
		fmt.Fprintf(stdout, "loop head %d body %v\n", l.Head, body)
	}
	if len(loops) == 0 {
		fmt.Fprintln(stdout, "no natural loops")
	}
	return nil
}

// writeImage publishes the image atomically: a crash mid-write must not
// leave a truncated .sg32 a later run would try to load.
func writeImage(img *guest.Image, path string) error {
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	if err := img.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Commit()
}
