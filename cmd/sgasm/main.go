// Command sgasm assembles, disassembles and inspects SG32 guest images.
//
// Usage:
//
//	sgasm prog.s -o prog.sg32        assemble source to a binary image
//	sgasm -d prog.sg32               disassemble an image
//	sgasm -cfg prog.sg32             print basic blocks and natural loops
//	sgasm -gen mcf -o mcf.sg32       emit a synthetic benchmark image
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cfg"
	"repro/internal/guest"
	"repro/internal/spec"
)

func main() {
	var (
		out      = flag.String("o", "", "output file for assembled/generated images")
		disasm   = flag.Bool("d", false, "disassemble an SG32 image")
		showCFG  = flag.Bool("cfg", false, "print the static CFG of an SG32 image")
		genBench = flag.String("gen", "", "generate a synthetic benchmark image")
		genInput = flag.String("input", "ref", "input for -gen: ref or train")
		genScale = flag.Float64("scale", 1.0, "scale for -gen")
	)
	flag.Parse()

	if *genBench != "" {
		b := spec.ByName(*genBench)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q", *genBench))
		}
		img, _, err := b.Build(*genInput, *genScale)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			fatal(fmt.Errorf("-gen requires -o"))
		}
		writeImage(img, *out)
		fmt.Printf("wrote %s: %d instructions, %d data words\n", *out, len(img.Code), img.DataWords)
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sgasm [-d|-cfg] <file> | sgasm <src.s> -o <img> | sgasm -gen <bench> -o <img>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	switch {
	case *disasm || *showCFG:
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		img, err := guest.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *disasm {
			fmt.Printf("; %s: entry %d, %d instructions, %d data words\n", img.Name, img.Entry, len(img.Code), img.DataWords)
			fmt.Print(img.Disassemble())
		}
		if *showCFG {
			printCFG(img)
		}
	default:
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		img, err := guest.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			fatal(fmt.Errorf("assembling requires -o"))
		}
		writeImage(img, *out)
		fmt.Printf("wrote %s: %d instructions\n", *out, len(img.Code))
	}
}

func printCFG(img *guest.Image) {
	g, err := cfg.Build(img)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("entry: %d\n", g.Entry)
	for _, s := range g.Starts() {
		b := g.Blocks[s]
		name := ""
		if sym, ok := img.SymbolAt(s); ok {
			name = " <" + sym + ">"
		}
		fmt.Printf("block %4d..%-4d%s -> %v\n", b.Start, b.End, name, b.Succs)
	}
	loops := g.NaturalLoops()
	for _, l := range loops {
		body := make([]int, 0, len(l.Body))
		for s := range l.Body {
			body = append(body, s)
		}
		sort.Ints(body)
		fmt.Printf("loop head %d body %v\n", l.Head, body)
	}
	if len(loops) == 0 {
		fmt.Println("no natural loops")
	}
}

func writeImage(img *guest.Image, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := img.Save(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sgasm: %v\n", err)
	os.Exit(1)
}
