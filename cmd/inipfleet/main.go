// Command inipfleet runs the distributed study fleet: one coordinator
// that shards the benchmark suite as revocable leases, and N workers
// that execute units and publish results (see internal/fleet for the
// protocol and its failure semantics).
//
// Usage:
//
//	inipfleet -mode coordinator -addr 127.0.0.1:0 -addrfile addr.txt \
//	          -scale 0.01 -state fleet.d -figjson figures.json
//	inipfleet -mode worker -coordinator http://127.0.0.1:9090 \
//	          -id w1 -cache results.cache -scratch w1.d
//
// The fleet tolerates the failures a real deployment meets: a killed
// worker's lease expires and its unit is reassigned; a slow worker
// keeps its lease by heartbeating; a killed coordinator restarts with
// -resume and re-executes nothing its checkpoint already holds; lost
// benchmarks under -failpolicy degrade surface as structured failures
// while the rest of the suite completes. Figures are byte-identical
// across fleet sizes and across any of those interruptions.
//
// SIGINT/SIGTERM on the coordinator drains gracefully (checkpoint
// flushed, exit 130); on a worker it abandons the current lease and
// exits 0 — worker loss is an expected fleet event.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/spec"
	"repro/internal/study"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// run is main with its environment made explicit for the tests and the
// CI smoke: args, output streams, and the shutdown-signal channel.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("inipfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode = fs.String("mode", "", "'coordinator' or 'worker'")

		// Coordinator flags.
		addr       = fs.String("addr", "127.0.0.1:9090", "coordinator listen address (host:port; port 0 picks a free one)")
		addrFile   = fs.String("addrfile", "", "write the bound address to this file once listening (for scripts using port 0)")
		scale      = fs.Float64("scale", 1.0, "paper-unit scale factor")
		benches    = fs.String("bench", "", "comma-separated benchmark subset (default: full suite)")
		stateDir   = fs.String("state", "", "coordinator state directory (study checkpoint + lease journal); enables -resume")
		resume     = fs.Bool("resume", false, "restore settled benchmarks from the -state checkpoint and lease only the remainder")
		stopAfter  = fs.Int("stopafter", 0, "stop gracefully after this many settled benchmarks (testing hook for resume)")
		leaseTTL   = fs.Duration("leasettl", 10*time.Second, "lease deadline; a worker that neither completes nor heartbeats within it loses the unit")
		maxAtt     = fs.Int("maxattempts", 3, "max leases per unit before its loss is permanent")
		backoff    = fs.Duration("retrybackoff", 0, "wait before re-leasing a lost unit, doubling per attempt")
		figJSON    = fs.String("figjson", "", "write the figure corpus as indented JSON to this file on completion")
		linger     = fs.Duration("linger", 3*time.Second, "keep serving done to workers for this long after completion, so they exit instead of timing out")
		coordTrace = fs.String("trace", "", "write coordinator lease-lifecycle events (JSONL) to this file on exit")

		// Worker flags.
		coordinator = fs.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:9090 (worker mode)")
		id          = fs.String("id", "", "worker id (default: w-<pid>)")
		workers     = fs.Int("workers", 0, "worker-local execution pool size (default: GOMAXPROCS)")
		cacheDir    = fs.String("cache", "", "content-addressed result cache directory; point every worker on a host at the same one")
		scratch     = fs.String("scratch", "", "worker scratch/state directory (swept for orphaned temps on open)")
		inject      = fs.String("inject", "", "deterministic fault-injection spec: unit faults perturb execution, net:* faults perturb this worker's protocol calls (see internal/faultinject)")
		poll        = fs.Duration("poll", 200*time.Millisecond, "lease poll interval when idle")
		maxOffline  = fs.Duration("maxoffline", 2*time.Minute, "give up after the coordinator has been unreachable this long (spans coordinator restarts)")

		// Shared.
		failPolicy = fs.String("failpolicy", "degrade", "on permanent unit loss: 'degrade' records a structured failure and completes the rest, 'failfast' cancels")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pol, perr := core.ParseFailurePolicy(*failPolicy)
	if perr != nil {
		fmt.Fprintf(stderr, "inipfleet: %v\n", perr)
		return 2
	}

	switch *mode {
	case "coordinator":
		cfg := fleet.Config{
			LeaseTTL:     *leaseTTL,
			MaxAttempts:  *maxAtt,
			RetryBackoff: *backoff,
			StateDir:     *stateDir,
			Study: study.Config{
				Scale:     *scale,
				Policy:    pol,
				Resume:    *resume,
				StopAfter: *stopAfter,
			},
		}
		if *benches != "" {
			for _, name := range strings.Split(*benches, ",") {
				b := spec.ByName(strings.TrimSpace(name))
				if b == nil {
					fmt.Fprintf(stderr, "inipfleet: unknown benchmark %q\n", name)
					return 2
				}
				cfg.Study.Benchmarks = append(cfg.Study.Benchmarks, b)
			}
		}
		return runCoordinator(cfg, *addr, *addrFile, *figJSON, *coordTrace, *linger, stdout, stderr, sig)

	case "worker":
		wcfg := fleet.WorkerConfig{
			ID:           *id,
			Coordinator:  *coordinator,
			Workers:      *workers,
			Policy:       pol,
			PollInterval: *poll,
			MaxOffline:   *maxOffline,
			ScratchDir:   *scratch,
		}
		if *cacheDir != "" {
			store, err := resultcache.Open(*cacheDir)
			if err != nil {
				fmt.Fprintf(stderr, "inipfleet: %v\n", err)
				return 1
			}
			wcfg.Cache = store
		}
		if *inject != "" {
			plan, err := faultinject.Parse(*inject)
			if err != nil {
				fmt.Fprintf(stderr, "inipfleet: %v\n", err)
				return 2
			}
			wcfg.Faults = plan
		}
		return runWorker(wcfg, stderr, sig)

	default:
		fmt.Fprintf(stderr, "inipfleet: -mode must be 'coordinator' or 'worker' (got %q)\n", *mode)
		return 2
	}
}

// runCoordinator serves the fleet protocol while the distributed study
// runs, then lingers briefly so workers observe done and exit. A
// graceful stop (signal or -stopafter) flushes the checkpoint and
// exits 130, mirroring inipstudy.
func runCoordinator(cfg fleet.Config, addr, addrFile, figJSON, traceFile string, linger time.Duration, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	var traceOut *atomicio.File
	if traceFile != "" {
		atomicio.SweepTempsFor(traceFile)
		f, err := atomicio.Create(traceFile)
		if err != nil {
			fmt.Fprintf(stderr, "inipfleet: %v\n", err)
			return 1
		}
		traceOut = f
		cfg.Trace = obs.NewRecorder(f)
	}
	stop := make(chan struct{})
	cfg.Study.Stop = stop

	c, err := fleet.NewCoordinator(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "inipfleet: %v\n", err)
		return 1
	}
	defer c.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "inipfleet: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		atomicio.SweepTempsFor(addrFile)
		if err := atomicio.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "inipfleet: %v\n", err)
			ln.Close()
			return 1
		}
	}
	httpSrv := &http.Server{Handler: c.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "inipfleet: coordinator listening on %s\n", bound)

	finished := make(chan struct{})
	defer close(finished)
	go func() {
		select {
		case s := <-sig:
			fmt.Fprintf(stderr, "inipfleet: %v — draining (in-flight leases settle, checkpoint flushes)\n", s)
			close(stop)
		case <-finished:
		}
	}()

	res, err := c.Run()
	stopped := errors.Is(err, study.ErrStopped)
	if cfg.Trace != nil {
		dropped, cerr := cfg.Trace.Close()
		if cerr == nil {
			cerr = traceOut.Commit()
		} else {
			traceOut.Close()
		}
		if cerr != nil {
			fmt.Fprintf(stderr, "inipfleet: trace: %v\n", cerr)
		} else {
			fmt.Fprintf(stderr, "inipfleet: wrote %s (%d events dropped)\n", traceFile, dropped)
		}
	}
	if err != nil && !stopped {
		fmt.Fprintf(stderr, "inipfleet: %v\n", err)
		httpSrv.Close()
		return 1
	}

	m := c.Counters()
	fmt.Fprintf(stderr, "inipfleet: %d completions (%d late, %d duplicates), %d grants, %d expiries, %d reassignments, %d units failed\n",
		m.Completions, m.Late, m.Duplicates, m.Grants, m.Expiries, m.Reassignments, m.UnitsFailed)
	for _, f := range res.Failures {
		fmt.Fprintf(stderr, "inipfleet: %s: failed after %d attempt(s): %s\n", f.Bench, f.Attempts, f.Err)
	}

	if stopped {
		fmt.Fprintln(stderr, "inipfleet: stopped; resume with the same -state and -resume")
		httpSrv.Close()
		return 130
	}

	if figJSON != "" {
		atomicio.SweepTempsFor(figJSON)
		data, err := json.MarshalIndent(res.Figures(), "", "  ")
		if err == nil {
			err = atomicio.WriteFile(figJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "inipfleet: figjson: %v\n", err)
			httpSrv.Close()
			return 1
		}
		fmt.Fprintf(stderr, "inipfleet: wrote %s\n", figJSON)
	}

	// Keep answering done:true so polling workers exit cleanly instead
	// of burning their offline budget against a closed port.
	if linger > 0 {
		time.Sleep(linger)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	_ = stdout
	return 0
}

// runWorker polls and executes leases until the coordinator reports the
// study done, a signal arrives, or the coordinator stays unreachable
// past -maxoffline.
func runWorker(cfg fleet.WorkerConfig, stderr io.Writer, sig <-chan os.Signal) int {
	w, err := fleet.NewWorker(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "inipfleet: %v\n", err)
		return 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case s := <-sig:
			fmt.Fprintf(stderr, "inipfleet: %v — abandoning current lease\n", s)
			cancel()
		case <-ctx.Done():
		}
	}()
	err = w.Run(ctx)
	st := w.Stats()
	fmt.Fprintf(stderr, "inipfleet: worker done: %d settled, %d abandoned, %d attempt errors, %d heartbeats\n",
		st.UnitsSettled, st.UnitsAbandoned, st.AttemptErrors, st.Heartbeats)
	if err != nil {
		fmt.Fprintf(stderr, "inipfleet: %v\n", err)
		return 1
	}
	return 0
}
