package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFleetSmoke drives a 2-worker fleet through run() in-process:
// the coordinator binds port 0 and publishes its address, the workers
// find it through the address file, and the figure corpus lands.
func TestFleetSmoke(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr.txt")
	figFile := filepath.Join(dir, "figures.json")

	var coordErr bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	coordCode := -1
	go func() {
		defer wg.Done()
		coordCode = run([]string{
			"-mode", "coordinator",
			"-addr", "127.0.0.1:0", "-addrfile", addrFile,
			"-scale", "0.001", "-bench", "gzip,swim",
			"-state", filepath.Join(dir, "coord.d"),
			"-figjson", figFile,
			"-linger", "500ms",
		}, &bytes.Buffer{}, &coordErr, nil)
	}()

	// Wait for the published address.
	var coordURL string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if data, err := os.ReadFile(addrFile); err == nil {
			coordURL = "http://" + strings.TrimSpace(string(data))
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if coordURL == "" {
		t.Fatalf("coordinator never published its address; stderr:\n%s", coordErr.String())
	}

	workerCodes := make([]int, 2)
	for i := range workerCodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerCodes[i] = run([]string{
				"-mode", "worker",
				"-coordinator", coordURL,
				"-id", []string{"w1", "w2"}[i],
				"-scratch", filepath.Join(dir, "w", []string{"w1", "w2"}[i]),
				"-poll", "10ms", "-maxoffline", "30s",
			}, &bytes.Buffer{}, &bytes.Buffer{}, nil)
		}(i)
	}
	wg.Wait()

	if coordCode != 0 {
		t.Fatalf("coordinator exit = %d; stderr:\n%s", coordCode, coordErr.String())
	}
	for i, code := range workerCodes {
		if code != 0 {
			t.Fatalf("worker %d exit = %d", i, code)
		}
	}
	data, err := os.ReadFile(figFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{`"fig8"`, `"gzip"`} {
		if !bytes.Contains(data, []byte(needle)) {
			t.Fatalf("figure corpus missing %q", needle)
		}
	}
	if !strings.Contains(coordErr.String(), "2 completions") {
		t.Fatalf("coordinator summary missing completions:\n%s", coordErr.String())
	}
	// The worker scratch dirs carry their markers.
	for _, id := range []string{"w1", "w2"} {
		if _, err := os.Stat(filepath.Join(dir, "w", id, "worker.json")); err != nil {
			t.Fatalf("scratch marker: %v", err)
		}
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-mode", "conductor"},
		{},
		{"-mode", "coordinator", "-bench", "nonesuch"},
		{"-mode", "coordinator", "-failpolicy", "shrug"},
		{"-mode", "worker", "-inject", "net:jam:lease"},
	}
	for _, args := range cases {
		var errOut bytes.Buffer
		if code := run(args, &bytes.Buffer{}, &errOut, nil); code != 2 {
			t.Fatalf("run(%v) = %d, want 2; stderr: %s", args, code, errOut.String())
		}
	}
	// A worker without a coordinator URL is a runtime error, not usage.
	if code := run([]string{"-mode", "worker"}, &bytes.Buffer{}, &bytes.Buffer{}, nil); code != 1 {
		t.Fatalf("worker without coordinator = %d, want 1", code)
	}
}
