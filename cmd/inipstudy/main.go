// Command inipstudy regenerates the paper's evaluation figures (8-18)
// over the synthetic SPEC2000 suite.
//
// Usage:
//
//	inipstudy [-scale 0.01] [-fig all|fig8,fig17] [-bench mcf,gzip]
//	          [-chart] [-json] [-v]
//	inipstudy -trace t.jsonl -benchjson b.json   # observability outputs
//	                                             # (-benchjson appends a dated entry
//	                                             # to the trajectory array in b.json)
//	inipstudy -benchjson b.json -benchbase prior.json  # speedup vs a prior record
//	                                             # (prior.json: trajectory or old
//	                                             # single-record format)
//	                                             # (or -benchbase 12.5 for raw seconds;
//	                                             # a degenerate baseline exits 3)
//	inipstudy -tracesum t.jsonl                  # summarize a recorded trace
//	inipstudy -checkpoint state.jsonl            # persist finished benchmarks
//	inipstudy -checkpoint state.jsonl -resume    # continue an interrupted run
//	inipstudy -failpolicy degrade -retry 3       # survive benchmark failures
//	inipstudy -cache results.cache               # memoize unit results on disk
//	inipstudy -cache results.cache -cacheverify  # differential cache self-check
//	inipstudy -predictors all                    # dynamic-predictor zoo (figp1/figp2)
//	inipstudy -sampleperiods 1,4,16,64           # sampled-profiling frontier (figs1/figs2)
//	inipstudy -learned logreg                    # profile-free learned model (figl1/figl2)
//	inipstudy -learned tree -learnedjson m.json  # dump cross-validated weights/importances
//
// The default scale of 1.0 runs the paper's actual threshold ladder
// 100..4M (a few minutes); -scale 0.1 gives a quick low-resolution pass.
//
// SIGINT drains in-flight work, flushes the checkpoint and trace, and
// exits 130; a second SIGINT aborts immediately.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/learned"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/resultcache"
	"repro/internal/spec"
	"repro/internal/study"
	"repro/internal/textplot"
)

// benchReport is the schema of one -benchjson perf entry. The file
// itself is an append-only trajectory — a JSON array of these, one per
// measured optimization step — kept in the repository
// (BENCH_study.json) so successive changes have a measured history to
// compare against. writeBenchJSON appends; it also accepts a file in
// the prior single-object format, which becomes the trajectory's first
// entry.
type benchReport struct {
	Date       string  `json:"date"`
	Scale      float64 `json:"scale"`
	Benchmarks int     `json:"benchmarks"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	study.Perf
	// BaselineWallSeconds/Speedup are filled when -benchbase supplies
	// the wall-clock of a reference binary over the same invocation.
	// When a baseline was requested but is degenerate (zero or absent),
	// SpeedupNote records why no ratio was computed instead of the
	// record silently carrying a division by zero or no field at all.
	BaselineWallSeconds float64 `json:"baseline_wall_seconds,omitempty"`
	Speedup             float64 `json:"speedup_vs_baseline,omitempty"`
	SpeedupNote         string  `json:"speedup_note,omitempty"`
}

// parseBenchBase interprets the -benchbase value: a number is the
// baseline wall-clock in seconds verbatim; anything else is the path of
// a prior -benchjson file whose wall_seconds supplies it — either
// format: a trajectory array (the latest entry is the baseline) or the
// prior single-object record. A degenerate baseline (zero, negative, or
// a record without the field) is not an error here — writeBenchJSON
// reports it as "n/a" — but an unreadable or unparsable file is.
func parseBenchBase(v string) (float64, error) {
	if v == "" {
		return 0, nil
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		return secs, nil
	}
	data, err := os.ReadFile(v)
	if err != nil {
		return 0, err
	}
	var rec struct {
		WallSeconds float64 `json:"wall_seconds"`
	}
	var arr []json.RawMessage
	if json.Unmarshal(data, &arr) == nil {
		if len(arr) == 0 {
			return 0, nil
		}
		data = arr[len(arr)-1]
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return 0, fmt.Errorf("%s: %w", v, err)
	}
	return rec.WallSeconds, nil
}

// readBenchTrajectory loads an existing -benchjson file as a list of
// verbatim entries. Both formats load: the trajectory array, and the
// prior single-object snapshot, which becomes a one-entry trajectory
// (so the first append after the format change preserves the historic
// baseline as entry zero). A missing file is an empty trajectory.
func readBenchTrajectory(path string) ([]json.RawMessage, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var arr []json.RawMessage
	if json.Unmarshal(data, &arr) == nil {
		return arr, nil
	}
	var obj map[string]json.RawMessage
	if json.Unmarshal(data, &obj) == nil {
		return []json.RawMessage{json.RawMessage(data)}, nil
	}
	return nil, fmt.Errorf("%s: neither a bench trajectory array nor a prior single-record file", path)
}

// writeBenchJSON appends the run's perf record to the trajectory file.
// It reports na=true when a baseline was requested but no meaningful
// speedup could be computed — the entry then carries a speedup_note
// instead of a ratio.
func writeBenchJSON(path string, res *study.Results, nbench int, base float64, haveBase bool) (na bool, err error) {
	rep := benchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Scale:      res.Scale,
		Benchmarks: nbench,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Perf:       res.Perf,
	}
	switch {
	case !haveBase:
	case base > 0 && rep.WallSeconds > 0:
		rep.BaselineWallSeconds = base
		rep.Speedup = base / rep.WallSeconds
	default:
		na = true
		if base > 0 {
			rep.BaselineWallSeconds = base
		}
		rep.SpeedupNote = "n/a: baseline or measured wall-clock is zero or absent"
	}
	entry, err := json.Marshal(rep)
	if err != nil {
		return na, err
	}
	traj, err := readBenchTrajectory(path)
	if err != nil {
		return na, err
	}
	traj = append(traj, entry)
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return na, err
	}
	return na, atomicio.WriteFile(path, append(data, '\n'), 0o644)
}

// parseSamplePeriods parses the -sampleperiods flag: a comma-separated
// list of positive integers. study.Config.Validate rejects duplicates
// and zeros again, but parsing here gives flag-shaped errors up front.
func parseSamplePeriods(v string) ([]uint64, error) {
	if v == "" {
		return nil, nil
	}
	var out []uint64
	for _, s := range strings.Split(v, ",") {
		p, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("invalid sample period %q (want a positive integer)", strings.TrimSpace(s))
		}
		out = append(out, p)
	}
	return out, nil
}

// summarizeTrace renders a recorded flight-recorder file (-tracesum).
func summarizeTrace(path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	evs, err := obs.ReadEvents(f)
	if err != nil {
		return err
	}
	_, err = io.WriteString(stdout, obs.Render(evs))
	return err
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so the smoke tests
// drive the full figure pipeline in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inipstudy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale   = fs.Float64("scale", 1.0, "paper-unit scale factor")
		figSel  = fs.String("fig", "all", "comma-separated figure ids (fig8..fig18) or 'all'")
		benches = fs.String("bench", "", "comma-separated benchmark subset (default: full suite)")
		chart   = fs.Bool("chart", false, "render ASCII charts in addition to tables")
		asJSON  = fs.Bool("json", false, "emit figure data as JSON")
		asMD    = fs.String("md", "", "write all figures as a markdown report to this file")
		verbose = fs.Bool("v", false, "print per-benchmark progress")
		ext     = fs.Bool("ext", false, "run the section-5 extension experiment instead of the figures")
		extT    = fs.Float64("extT", 2000, "paper-unit threshold for -ext")
		conv    = fs.Bool("conv", false, "run the threshold-selection (convergence) experiment instead of the figures")

		benchJSON = fs.String("benchjson", "", "append suite wall-clock, blocks/sec, per-phase timing and engine counters as a dated entry to the trajectory array in this file")
		benchBase = fs.String("benchbase", "", "baseline for the -benchjson speedup: wall-clock seconds, or the path of a prior -benchjson record (its wall_seconds is used)")
		indep     = fs.Bool("indep", false, "run each INIP(T) independently instead of replaying the shared reference trace")
		par       = fs.Int("par", 0, "worker-pool size for run units (default: GOMAXPROCS)")

		traceFile  = fs.String("trace", "", "write a flight-recorder event per pipeline unit as JSONL to this file")
		traceSum   = fs.String("tracesum", "", "summarize a recorded -trace file (phases, benchmarks, worker occupancy) and exit")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the study to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile taken after the study to this file")

		failPolicy    = fs.String("failpolicy", "failfast", "on unit failure: 'failfast' cancels the study, 'degrade' drops the failing benchmark and completes the rest")
		retry         = fs.Int("retry", 0, "max attempts per pipeline unit before its failure is permanent (0 or 1 = no retry)")
		retryBackoff  = fs.Duration("retrybackoff", 0, "wait before the second attempt of a failed unit, doubling each further attempt")
		inject        = fs.String("inject", "", "deterministic fault-injection spec for robustness testing, e.g. 'build:gzip/ref' or 'trap:mcf/train@1000' (see internal/faultinject)")
		checkpoint    = fs.String("checkpoint", "", "persist completed benchmarks to this JSONL file as they finish")
		resume        = fs.Bool("resume", false, "restore completed benchmarks from -checkpoint and run only the remainder")
		stopAfter     = fs.Int("stopafter", 0, "stop gracefully after this many benchmark completions (testing hook for resume)")
		cacheDir      = fs.String("cache", "", "memoize unit results in this content-addressed directory; a warm rerun of an unchanged study executes zero guest blocks")
		cacheVerify   = fs.Bool("cacheverify", false, "execute every unit despite cache hits and hard-error if a cached value diverges (requires -cache)")
		predictors    = fs.String("predictors", "", "comma-separated dynamic branch predictors to run over each reference trace (taken,nottaken,1bit,2bit,gshare,perceptron, 'learned', or 'all'); adds figp1/figp2 without touching the paper figures")
		samplePeriods = fs.String("sampleperiods", "", "comma-separated sampled-profiling periods to sweep (e.g. 1,4,16,64); adds figs1/figs2 without touching the paper figures")
		learnedModel  = fs.String("learned", "", "train the profile-free learned static branch model over the suite ('logreg' or 'tree'); adds figl1/figl2 without touching the paper figures")
		learnedJSON   = fs.String("learnedjson", "", "write the cross-validated learned model (weights, per-feature importances, per-fold held-out rates) as JSON to this file; implies -learned logreg unless -learned is set")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Resolve the baseline up front so a bad -benchbase file fails
	// before the study runs, not after minutes of work.
	baseSecs, baseErr := parseBenchBase(*benchBase)
	if baseErr != nil {
		fmt.Fprintf(stderr, "inipstudy: -benchbase: %v\n", baseErr)
		return 1
	}

	// Sweep atomic-write temporaries a killed previous invocation may
	// have orphaned next to our output targets (the checkpoint's are
	// swept when it is opened). Startup is the one moment no write of
	// this process can be in flight.
	for _, p := range []string{*benchJSON, *asMD, *traceFile, *learnedJSON} {
		if p != "" {
			atomicio.SweepTempsFor(p)
		}
	}

	if *traceSum != "" {
		if err := summarizeTrace(*traceSum, stdout); err != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", err)
			return 1
		}
		return 0
	}

	if *conv {
		var names []string
		if *benches != "" {
			names = strings.Split(*benches, ",")
		}
		res, err := study.RunConvergence(names, *scale)
		if err != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, res.Render())
		return 0
	}

	if *ext {
		var names []string
		if *benches != "" {
			names = strings.Split(*benches, ",")
		}
		res, err := study.RunExtensions(names, *scale, *extT)
		if err != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, res.Render())
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	cfg := study.Config{
		Scale:           *scale,
		IndependentRuns: *indep,
		Parallelism:     *par,
		MaxAttempts:     *retry,
		RetryBackoff:    *retryBackoff,
		Checkpoint:      *checkpoint,
		Resume:          *resume,
		StopAfter:       *stopAfter,
	}
	pol, perr := core.ParseFailurePolicy(*failPolicy)
	if perr != nil {
		fmt.Fprintf(stderr, "inipstudy: %v\n", perr)
		return 2
	}
	cfg.Policy = pol
	// 'learned' rides the -predictors selection but is a separate class
	// (a static model, not a dynamic predictor): strip the token before
	// the dynamic-predictor parse and map it to the study's learned
	// config. Note 'all' selects the dynamic zoo only.
	predList := *predictors
	learnedSel := *learnedModel
	if predList != "" {
		var kept []string
		for _, tok := range strings.Split(predList, ",") {
			if strings.TrimSpace(tok) == "learned" {
				if learnedSel == "" {
					learnedSel = learned.ModelLogReg
				}
				continue
			}
			kept = append(kept, tok)
		}
		predList = strings.Join(kept, ",")
	}
	preds, perr := predict.ParseList(predList)
	if perr != nil {
		fmt.Fprintf(stderr, "inipstudy: %v\n", perr)
		return 2
	}
	cfg.Predictors = preds
	if *learnedJSON != "" && learnedSel == "" {
		learnedSel = learned.ModelLogReg
	}
	if learnedSel != "" {
		cfg.Learned = &learned.Config{Model: learnedSel}
	}
	periods, perr := parseSamplePeriods(*samplePeriods)
	if perr != nil {
		fmt.Fprintf(stderr, "inipstudy: %v\n", perr)
		return 2
	}
	cfg.SamplePeriods = periods
	if *cacheVerify && *cacheDir == "" {
		fmt.Fprintln(stderr, "inipstudy: -cacheverify requires -cache")
		return 2
	}
	if *cacheDir != "" {
		store, serr := resultcache.Open(*cacheDir)
		if serr != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", serr)
			return 1
		}
		cfg.Cache = store
		cfg.CacheVerify = *cacheVerify
	}
	if *inject != "" {
		plan, ferr := faultinject.Parse(*inject)
		if ferr != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", ferr)
			return 2
		}
		cfg.Faults = plan
	}
	if *verbose {
		cfg.Progress = stderr
	}
	if *benches != "" {
		for _, name := range strings.Split(*benches, ",") {
			b := spec.ByName(strings.TrimSpace(name))
			if b == nil {
				fmt.Fprintf(stderr, "inipstudy: unknown benchmark %q\n", name)
				return 2
			}
			cfg.Benchmarks = append(cfg.Benchmarks, b)
		}
	}

	// SIGINT requests a graceful drain: in-flight units finish, the
	// checkpoint and trace are flushed, and the run reports ErrStopped.
	// A second SIGINT aborts on the spot.
	stop := make(chan struct{})
	cfg.Stop = stop
	finished := make(chan struct{})
	defer close(finished)
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		select {
		case <-sig:
			fmt.Fprintln(stderr, "inipstudy: interrupt — draining in-flight work (^C again to abort)")
			close(stop)
		case <-finished:
			return
		}
		select {
		case <-sig:
			os.Exit(130)
		case <-finished:
		}
	}()

	var traceOut *atomicio.File
	if *traceFile != "" {
		f, err := atomicio.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", err)
			return 1
		}
		traceOut = f
		cfg.Trace = obs.NewRecorder(f)
	}

	res, err := study.Run(cfg)
	stopped := errors.Is(err, study.ErrStopped)
	if cfg.Trace != nil {
		// The trace is published even when the study stopped or failed:
		// the recorder closed cleanly, so the file is complete JSONL and
		// exactly what a post-mortem wants. Only a write error discards.
		dropped, cerr := cfg.Trace.Close()
		if cerr == nil {
			cerr = traceOut.Commit()
		} else {
			traceOut.Close()
		}
		if cerr != nil {
			fmt.Fprintf(stderr, "inipstudy: trace: %v\n", cerr)
			if err == nil {
				return 1
			}
		} else {
			fmt.Fprintf(stderr, "wrote %s (%d events dropped)\n", *traceFile, dropped)
		}
	}
	if err != nil && !stopped {
		fmt.Fprintf(stderr, "inipstudy: %v\n", err)
		return 1
	}

	if len(res.Failures) > 0 {
		fmt.Fprintf(stderr, "inipstudy: %d unit failure(s); the affected benchmarks are excluded from every figure:\n", len(res.Failures))
		for _, f := range res.Failures {
			site := f.Unit
			if f.T > 0 {
				site = fmt.Sprintf("%s@T=%d", f.Unit, f.T)
			}
			fmt.Fprintf(stderr, "  %s: %s failed after %d attempt(s): %s\n", f.Bench, site, f.Attempts, f.Err)
		}
	}

	if cfg.Cache != nil {
		c := cfg.Cache.Counters()
		line := fmt.Sprintf("cache %s: %d hits, %d misses, %d stores, %d errors",
			*cacheDir, c.Hits, c.Misses, c.Stores, c.Errors)
		if c.HealFailures > 0 {
			line += fmt.Sprintf(", %d heal failures (cache is read-only)", c.HealFailures)
		}
		fmt.Fprintln(stderr, line)
	}

	if stopped {
		done := 0
		for _, s := range res.Series {
			if s.Name != "" && len(s.Failures) == 0 {
				done++
			}
		}
		fmt.Fprintf(stderr, "inipstudy: stopped with %d of %d benchmarks finished\n", done, len(res.Series))
		if *checkpoint != "" {
			fmt.Fprintf(stderr, "inipstudy: resume with: -checkpoint %s -resume\n", *checkpoint)
		}
		return 130
	}

	if *memProfile != "" {
		f, cerr := os.Create(*memProfile)
		if cerr == nil {
			runtime.GC()
			cerr = pprof.WriteHeapProfile(f)
			if ferr := f.Close(); cerr == nil {
				cerr = ferr
			}
		}
		if cerr != nil {
			fmt.Fprintf(stderr, "inipstudy: memprofile: %v\n", cerr)
			return 1
		}
	}

	// okExit is what success paths below return: 0, or 3 when the run
	// completed but the requested speedup-vs-baseline was degenerate.
	okExit := 0
	if *benchJSON != "" {
		nbench := len(cfg.Benchmarks)
		if nbench == 0 {
			nbench = len(spec.Suite())
		}
		na, err := writeBenchJSON(*benchJSON, res, nbench, baseSecs, *benchBase != "")
		if err != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", err)
			return 1
		}
		if na {
			fmt.Fprintf(stderr, "inipstudy: warning: speedup vs baseline is n/a (-benchbase %q gives %g s against %g s measured)\n",
				*benchBase, baseSecs, res.Perf.WallSeconds)
			okExit = 3
		}
		fmt.Fprintf(stderr, "wrote %s (wall %.1fs, %.2fM blocks/s)\n",
			*benchJSON, res.Perf.WallSeconds, res.Perf.BlocksPerSec/1e6)
	}

	if *learnedJSON != "" {
		if res.Learned == nil {
			fmt.Fprintln(stderr, "inipstudy: -learnedjson: no learned fit was produced (a leave-one-out fit needs at least two cleanly completed benchmarks)")
			return 1
		}
		data, jerr := json.MarshalIndent(res.Learned, "", " ")
		if jerr == nil {
			jerr = atomicio.WriteFile(*learnedJSON, append(data, '\n'), 0o644)
		}
		if jerr != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", jerr)
			return 1
		}
		branches, mis, _ := res.Learned.Totals()
		fmt.Fprintf(stderr, "wrote %s (%s, held-out %d/%d mispredicted = %.4f vs always-taken %.4f)\n",
			*learnedJSON, res.Learned.Fingerprint, mis, branches, res.Learned.Rate(), res.Learned.TakenRate())
	}

	if *asMD != "" {
		if err := atomicio.WriteFile(*asMD, []byte(res.MarkdownReport()), 0o644); err != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s\n", *asMD)
		return okExit
	}

	want := map[string]bool{}
	if *figSel != "all" {
		for _, id := range strings.Split(*figSel, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	var out []study.Figure
	for _, f := range res.Figures() {
		if len(want) == 0 || want[f.ID] {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(stderr, "inipstudy: no figures match %q\n", *figSel)
		return 2
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "inipstudy: %v\n", err)
			return 1
		}
		return okExit
	}

	for _, f := range out {
		fmt.Fprintf(stdout, "== %s: %s ==\n", f.ID, f.Title)
		series := make([]textplot.Series, len(f.Series))
		for i, s := range f.Series {
			series[i] = textplot.Series{Label: s.Label, Y: s.Y}
		}
		fmt.Fprint(stdout, textplot.Table("T", f.X, series))
		if *chart {
			fmt.Fprint(stdout, textplot.Chart(f.X, series, 72, 18))
		}
		for _, n := range f.Notes {
			fmt.Fprintf(stdout, "note: %s\n", n)
		}
		for _, g := range f.Gaps {
			fmt.Fprintf(stdout, "%s\n", g)
		}
		fmt.Fprintln(stdout)
	}
	return okExit
}
