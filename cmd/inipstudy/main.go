// Command inipstudy regenerates the paper's evaluation figures (8-18)
// over the synthetic SPEC2000 suite.
//
// Usage:
//
//	inipstudy [-scale 0.01] [-fig all|fig8,fig17] [-bench mcf,gzip]
//	          [-chart] [-json] [-v]
//
// The default scale of 1.0 runs the paper's actual threshold ladder
// 100..4M (a few minutes); -scale 0.1 gives a quick low-resolution pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/spec"
	"repro/internal/study"
	"repro/internal/textplot"
)

// benchReport is the schema of the -benchjson perf record, kept in the
// repository (BENCH_study.json) so successive changes have a measured
// trajectory to compare against.
type benchReport struct {
	Date       string  `json:"date"`
	Scale      float64 `json:"scale"`
	Benchmarks int     `json:"benchmarks"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	study.Perf
	// BaselineWallSeconds/Speedup are filled when -benchbase supplies
	// the wall-clock of a reference binary over the same invocation.
	BaselineWallSeconds float64 `json:"baseline_wall_seconds,omitempty"`
	Speedup             float64 `json:"speedup_vs_baseline,omitempty"`
}

func writeBenchJSON(path string, res *study.Results, nbench int, base float64) error {
	rep := benchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Scale:      res.Scale,
		Benchmarks: nbench,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Perf:       res.Perf,
	}
	if base > 0 && rep.WallSeconds > 0 {
		rep.BaselineWallSeconds = base
		rep.Speedup = base / rep.WallSeconds
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		scale   = flag.Float64("scale", 1.0, "paper-unit scale factor")
		figSel  = flag.String("fig", "all", "comma-separated figure ids (fig8..fig18) or 'all'")
		benches = flag.String("bench", "", "comma-separated benchmark subset (default: full suite)")
		chart   = flag.Bool("chart", false, "render ASCII charts in addition to tables")
		asJSON  = flag.Bool("json", false, "emit figure data as JSON")
		asMD    = flag.String("md", "", "write all figures as a markdown report to this file")
		verbose = flag.Bool("v", false, "print per-benchmark progress")
		ext     = flag.Bool("ext", false, "run the section-5 extension experiment instead of the figures")
		extT    = flag.Float64("extT", 2000, "paper-unit threshold for -ext")
		conv    = flag.Bool("conv", false, "run the threshold-selection (convergence) experiment instead of the figures")

		benchJSON = flag.String("benchjson", "", "write suite wall-clock, blocks/sec and per-phase timing to this file")
		benchBase = flag.Float64("benchbase", 0, "baseline wall-clock seconds to compute speedup against in -benchjson")
		indep     = flag.Bool("indep", false, "run each INIP(T) independently instead of replaying the shared reference trace")
		par       = flag.Int("par", 0, "worker-pool size for run units (default: NumCPU)")
	)
	flag.Parse()

	if *conv {
		var names []string
		if *benches != "" {
			names = strings.Split(*benches, ",")
		}
		res, err := study.RunConvergence(names, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inipstudy: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		return
	}

	if *ext {
		var names []string
		if *benches != "" {
			names = strings.Split(*benches, ",")
		}
		res, err := study.RunExtensions(names, *scale, *extT)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inipstudy: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		return
	}

	cfg := study.Config{Scale: *scale, IndependentRuns: *indep, Parallelism: *par}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if *benches != "" {
		for _, name := range strings.Split(*benches, ",") {
			b := spec.ByName(strings.TrimSpace(name))
			if b == nil {
				fmt.Fprintf(os.Stderr, "inipstudy: unknown benchmark %q\n", name)
				os.Exit(2)
			}
			cfg.Benchmarks = append(cfg.Benchmarks, b)
		}
	}

	res, err := study.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "inipstudy: %v\n", err)
		os.Exit(1)
	}

	if *benchJSON != "" {
		nbench := len(cfg.Benchmarks)
		if nbench == 0 {
			nbench = len(spec.Suite())
		}
		if err := writeBenchJSON(*benchJSON, res, nbench, *benchBase); err != nil {
			fmt.Fprintf(os.Stderr, "inipstudy: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (wall %.1fs, %.2fM blocks/s)\n",
			*benchJSON, res.Perf.WallSeconds, res.Perf.BlocksPerSec/1e6)
	}

	if *asMD != "" {
		if err := os.WriteFile(*asMD, []byte(res.MarkdownReport()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "inipstudy: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *asMD)
		return
	}

	want := map[string]bool{}
	if *figSel != "all" {
		for _, id := range strings.Split(*figSel, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	var out []study.Figure
	for _, f := range res.Figures() {
		if len(want) == 0 || want[f.ID] {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "inipstudy: no figures match %q\n", *figSel)
		os.Exit(2)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "inipstudy: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for _, f := range out {
		fmt.Printf("== %s: %s ==\n", f.ID, f.Title)
		series := make([]textplot.Series, len(f.Series))
		for i, s := range f.Series {
			series[i] = textplot.Series{Label: s.Label, Y: s.Y}
		}
		fmt.Print(textplot.Table("T", f.X, series))
		if *chart {
			fmt.Print(textplot.Chart(f.X, series, 72, 18))
		}
		for _, n := range f.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Println()
	}
}
