package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// readBenchFile strict-decodes a -benchjson trajectory file and returns
// its entries; schema drift in any entry fails the test.
func readBenchFile(t *testing.T, path string) []benchReport {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var traj []benchReport
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&traj); err != nil {
		t.Fatalf("benchjson schema: %v\n%s", err, raw)
	}
	if len(traj) == 0 {
		t.Fatalf("benchjson trajectory is empty:\n%s", raw)
	}
	return traj
}

// TestSmokeFigurePipeline runs the real figure pipeline at tiny scale on
// a two-benchmark subset and validates the observability outputs: the
// -benchjson record parses against its schema with live counters, the
// -trace file parses against the flight-recorder schema, per-phase event
// durations reconcile with the Perf phase totals, and tracing leaves the
// figure output byte-identical.
func TestSmokeFigurePipeline(t *testing.T) {
	dir := t.TempDir()
	benchJSON := filepath.Join(dir, "bench.json")
	traceFile := filepath.Join(dir, "trace.jsonl")

	base := []string{"-scale", "0.001", "-bench", "gzip,swim", "-fig", "fig8"}

	var plain bytes.Buffer
	if code := run(base, &plain, new(bytes.Buffer)); code != 0 {
		t.Fatalf("plain run exited %d", code)
	}
	if !strings.Contains(plain.String(), "fig8") {
		t.Fatalf("figure output missing fig8:\n%s", plain.String())
	}

	var traced bytes.Buffer
	args := append([]string{"-trace", traceFile, "-benchjson", benchJSON}, base...)
	if code := run(args, &traced, new(bytes.Buffer)); code != 0 {
		t.Fatalf("traced run exited %d", code)
	}
	if !bytes.Equal(plain.Bytes(), traced.Bytes()) {
		t.Fatal("figure output differs with tracing enabled")
	}

	// -benchjson schema: strict-decode into the writer's own struct, then
	// sanity-check the counters a real run cannot leave at zero.
	rep := readBenchFile(t, benchJSON)[0]
	if rep.Scale != 0.001 || rep.Benchmarks != 2 || rep.Workers < 1 {
		t.Fatalf("benchjson header wrong: %+v", rep)
	}
	if rep.BlocksExecuted == 0 || rep.Translations == 0 || rep.CacheLookups == 0 ||
		rep.FastDispatches == 0 || rep.InterruptPolls == 0 {
		t.Fatalf("benchjson counters empty: %+v", rep)
	}
	if rep.FastDispatches+rep.GenericDispatches != rep.BlocksExecuted {
		t.Fatalf("dispatch split %d+%d != %d blocks",
			rep.FastDispatches, rep.GenericDispatches, rep.BlocksExecuted)
	}
	if rep.TraceEventsDropped != 0 {
		t.Fatalf("tiny-scale run dropped %d trace events", rep.TraceEventsDropped)
	}

	// -trace schema: the strict reader rejects unknown fields and invalid
	// units, so a clean parse is the schema check.
	tf, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(tf)
	tf.Close()
	if err != nil {
		t.Fatalf("trace schema: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace file has no events")
	}

	// Per-phase event durations must reconcile with the Perf totals: both
	// are fed from the same measured spans, so 5% is generous slack for
	// clock granularity.
	sums := map[string]float64{}
	benches := map[string]bool{}
	for _, ev := range events {
		sums[ev.Unit] += float64(ev.DurNS) / 1e9
		benches[ev.Bench] = true
	}
	if !benches["gzip"] || !benches["swim"] {
		t.Fatalf("trace missing benchmarks: %v", benches)
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"build", sums[obs.UnitBuild], rep.BuildSeconds},
		{"ref", sums[obs.UnitRef], rep.RefRunSeconds},
		{"train", sums[obs.UnitTrain], rep.TrainSeconds},
		{"compare", sums[obs.UnitCompare] + sums[obs.UnitTrainCompare], rep.CompareSeconds},
	}
	for _, c := range checks {
		if c.want == 0 {
			t.Fatalf("Perf phase %s is zero", c.name)
		}
		if math.Abs(c.got-c.want) > 0.05*c.want {
			t.Fatalf("phase %s: trace sum %.6fs vs Perf %.6fs (>5%%)", c.name, c.got, c.want)
		}
	}

	// -tracesum renders the recorded file.
	var sum bytes.Buffer
	if code := run([]string{"-tracesum", traceFile}, &sum, new(bytes.Buffer)); code != 0 {
		t.Fatalf("-tracesum exited %d", code)
	}
	for _, want := range []string{"phase", "build", "compare", "worker occupancy",
		"hot loop", "blocks/s", "dispatch", "cache lookups"} {
		if !strings.Contains(sum.String(), want) {
			t.Fatalf("-tracesum output missing %q:\n%s", want, sum.String())
		}
	}
}

// TestSmokeProfiles: the pprof hooks must produce non-empty profile
// files without disturbing the run.
func TestSmokeProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	args := []string{"-scale", "0.001", "-bench", "gzip", "-fig", "fig8",
		"-cpuprofile", cpu, "-memprofile", mem}
	if code := run(args, new(bytes.Buffer), new(bytes.Buffer)); code != 0 {
		t.Fatalf("profiled run exited %d", code)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestBadFlags: unknown benchmarks, figures, policies and fault specs
// are usage errors.
func TestBadFlags(t *testing.T) {
	if code := run([]string{"-bench", "nosuch"}, new(bytes.Buffer), new(bytes.Buffer)); code != 2 {
		t.Fatalf("unknown benchmark exited %d, want 2", code)
	}
	if code := run([]string{"-scale", "0.001", "-bench", "gzip", "-fig", "fig99"},
		new(bytes.Buffer), new(bytes.Buffer)); code != 2 {
		t.Fatalf("unknown figure exited %d, want 2", code)
	}
	var errBuf bytes.Buffer
	if code := run([]string{"-failpolicy", "nosuch"}, new(bytes.Buffer), &errBuf); code != 2 {
		t.Fatalf("unknown policy exited %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "nosuch") {
		t.Fatalf("policy error does not name the value:\n%s", errBuf.String())
	}
	errBuf.Reset()
	if code := run([]string{"-inject", "meteor:gzip/ref"}, new(bytes.Buffer), &errBuf); code != 2 {
		t.Fatalf("bad fault spec exited %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "faultinject") {
		t.Fatalf("fault-spec error lost its diagnostic:\n%s", errBuf.String())
	}
	errBuf.Reset()
	if code := run([]string{"-scale", "-1", "-bench", "gzip"}, new(bytes.Buffer), &errBuf); code != 1 {
		t.Fatalf("negative scale exited %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "-1") {
		t.Fatalf("scale error does not name the value:\n%s", errBuf.String())
	}
}

// TestDegradeCLI: with -failpolicy degrade and one injected failure the
// command succeeds, prints the failure on stderr, annotates the gap in
// the figure output, and the surviving rows match a fault-free run.
func TestDegradeCLI(t *testing.T) {
	var clean bytes.Buffer
	args := []string{"-scale", "0.001", "-bench", "swim", "-fig", "fig8"}
	if code := run(args, &clean, new(bytes.Buffer)); code != 0 {
		t.Fatalf("clean run exited %d", code)
	}

	var out, errBuf bytes.Buffer
	args = []string{"-scale", "0.001", "-bench", "gzip,swim", "-fig", "fig8",
		"-failpolicy", "degrade", "-inject", "build:gzip/ref"}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("degraded run exited %d:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "1 unit failure") ||
		!strings.Contains(errBuf.String(), "gzip") {
		t.Fatalf("stderr does not summarize the failure:\n%s", errBuf.String())
	}
	if !strings.Contains(out.String(), "gzip excluded") {
		t.Fatalf("figure output does not annotate the gap:\n%s", out.String())
	}

	// The surviving benchmark's table must be present verbatim.
	table := strings.TrimRight(strings.SplitN(clean.String(), "\n", 2)[1], "\n")
	if !strings.Contains(out.String(), table) {
		t.Fatalf("survivor rows differ from the fault-free run:\nclean:\n%s\ndegraded:\n%s",
			clean.String(), out.String())
	}

	// The same failure under the default fail-fast policy kills the run.
	args = []string{"-scale", "0.001", "-bench", "gzip,swim", "-fig", "fig8",
		"-inject", "build:gzip/ref"}
	if code := run(args, new(bytes.Buffer), new(bytes.Buffer)); code != 1 {
		t.Fatalf("fail-fast run exited %d, want 1", code)
	}
}

// TestCheckpointResumeCLI: -stopafter ends the run with exit 130 and a
// resume hint; a -resume rerun restores the finished benchmark and its
// output is byte-identical to an uninterrupted run.
func TestCheckpointResumeCLI(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.jsonl")
	base := []string{"-scale", "0.001", "-bench", "gzip,swim", "-fig", "fig8"}

	var full bytes.Buffer
	if code := run(base, &full, new(bytes.Buffer)); code != 0 {
		t.Fatalf("uninterrupted run exited %d", code)
	}

	var errBuf bytes.Buffer
	args := append([]string{"-checkpoint", ckpt, "-stopafter", "1"}, base...)
	if code := run(args, new(bytes.Buffer), &errBuf); code != 130 {
		t.Fatalf("stopped run exited %d, want 130:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "-resume") {
		t.Fatalf("stop message has no resume hint:\n%s", errBuf.String())
	}

	var resumed bytes.Buffer
	args = append([]string{"-checkpoint", ckpt, "-resume"}, base...)
	if code := run(args, &resumed, new(bytes.Buffer)); code != 0 {
		t.Fatalf("resumed run exited %d", code)
	}
	if !bytes.Equal(full.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed output differs from the uninterrupted run:\nfull:\n%s\nresumed:\n%s",
			full.String(), resumed.String())
	}
}

// TestCacheCLI: a cold -cache run stores entries, a warm rerun serves
// the whole study from the cache — zero guest blocks executed, nonzero
// hits, byte-identical figures — and -cacheverify re-executes the suite
// against the cached values and passes.
func TestCacheCLI(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	base := []string{"-scale", "0.001", "-bench", "gzip,swim", "-fig", "fig8", "-cache", cacheDir}

	var cold, coldErr bytes.Buffer
	args := append([]string{"-benchjson", filepath.Join(dir, "cold.json")}, base...)
	if code := run(args, &cold, &coldErr); code != 0 {
		t.Fatalf("cold run exited %d:\n%s", code, coldErr.String())
	}
	if !strings.Contains(coldErr.String(), "0 hits") {
		t.Fatalf("cold run stderr lacks the cache summary:\n%s", coldErr.String())
	}

	var warm, warmErr bytes.Buffer
	warmJSON := filepath.Join(dir, "warm.json")
	args = append([]string{"-benchjson", warmJSON}, base...)
	if code := run(args, &warm, &warmErr); code != 0 {
		t.Fatalf("warm run exited %d:\n%s", code, warmErr.String())
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatalf("warm figure output differs from cold:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}

	rep := readBenchFile(t, warmJSON)[0]
	if rep.BlocksExecuted != 0 {
		t.Fatalf("warm run executed %d guest blocks, want 0", rep.BlocksExecuted)
	}
	if rep.ResultCacheHits == 0 || rep.ResultCacheMisses != 0 || rep.ResultCacheStores != 0 {
		t.Fatalf("warm cache counters wrong: hits=%d misses=%d stores=%d",
			rep.ResultCacheHits, rep.ResultCacheMisses, rep.ResultCacheStores)
	}

	var verify, verifyErr bytes.Buffer
	args = append([]string{"-cacheverify"}, base...)
	if code := run(args, &verify, &verifyErr); code != 0 {
		t.Fatalf("-cacheverify run exited %d:\n%s", code, verifyErr.String())
	}
	if !bytes.Equal(cold.Bytes(), verify.Bytes()) {
		t.Fatal("verify figure output differs from cold")
	}
}

func TestCacheVerifyRequiresCache(t *testing.T) {
	var errBuf bytes.Buffer
	if code := run([]string{"-cacheverify", "-scale", "0.001", "-bench", "gzip"},
		new(bytes.Buffer), &errBuf); code != 2 {
		t.Fatalf("-cacheverify without -cache exited %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "-cache") {
		t.Fatalf("error does not mention -cache:\n%s", errBuf.String())
	}
}

// TestBenchBaseSpeedup covers the -benchbase ladder: a numeric baseline
// and a prior -benchjson record both yield a positive speedup ratio; a
// degenerate baseline (zero seconds, or a record without wall_seconds)
// yields a speedup_note of "n/a" plus exit 3 instead of a silent or
// divided-by-zero record; an unreadable baseline file fails before the
// study runs.
func TestBenchBaseSpeedup(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-scale", "0.001", "-bench", "gzip", "-fig", "fig8"}

	record := func(t *testing.T, path string) benchReport {
		t.Helper()
		traj := readBenchFile(t, path)
		return traj[len(traj)-1]
	}

	// Numeric seconds, the long-standing form.
	numJSON := filepath.Join(dir, "num.json")
	args := append([]string{"-benchjson", numJSON, "-benchbase", "1000"}, base...)
	if code := run(args, new(bytes.Buffer), new(bytes.Buffer)); code != 0 {
		t.Fatalf("numeric -benchbase exited %d", code)
	}
	if rep := record(t, numJSON); rep.BaselineWallSeconds != 1000 || rep.Speedup <= 0 || rep.SpeedupNote != "" {
		t.Fatalf("numeric baseline record wrong: %+v", rep)
	}

	// A prior -benchjson record as the baseline.
	fileJSON := filepath.Join(dir, "file.json")
	args = append([]string{"-benchjson", fileJSON, "-benchbase", numJSON}, base...)
	if code := run(args, new(bytes.Buffer), new(bytes.Buffer)); code != 0 {
		t.Fatalf("file -benchbase exited %d", code)
	}
	if rep := record(t, fileJSON); rep.BaselineWallSeconds <= 0 || rep.Speedup <= 0 || rep.SpeedupNote == "n/a" {
		t.Fatalf("file baseline record wrong: %+v", rep)
	}

	// Degenerate: a baseline record without a usable wall_seconds.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	naJSON := filepath.Join(dir, "na.json")
	var errBuf bytes.Buffer
	args = append([]string{"-benchjson", naJSON, "-benchbase", empty}, base...)
	if code := run(args, new(bytes.Buffer), &errBuf); code != 3 {
		t.Fatalf("absent baseline exited %d, want 3\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "n/a") {
		t.Fatalf("no n/a warning on stderr:\n%s", errBuf.String())
	}
	rep := record(t, naJSON)
	if rep.Speedup != 0 || rep.BaselineWallSeconds != 0 || !strings.Contains(rep.SpeedupNote, "n/a") {
		t.Fatalf("degenerate baseline record wrong: %+v", rep)
	}

	// Degenerate: an explicit zero-seconds baseline.
	zeroJSON := filepath.Join(dir, "zero.json")
	args = append([]string{"-benchjson", zeroJSON, "-benchbase", "0"}, base...)
	if code := run(args, new(bytes.Buffer), new(bytes.Buffer)); code != 3 {
		t.Fatalf("zero baseline exited %d, want 3", code)
	}
	if rep := record(t, zeroJSON); !strings.Contains(rep.SpeedupNote, "n/a") {
		t.Fatalf("zero baseline record wrong: %+v", rep)
	}

	// Unreadable baseline file: fail fast, before any benchmark runs.
	var fastErr bytes.Buffer
	args = append([]string{"-benchjson", filepath.Join(dir, "x.json"), "-benchbase", filepath.Join(dir, "missing.json")}, base...)
	if code := run(args, new(bytes.Buffer), &fastErr); code != 1 {
		t.Fatalf("missing baseline file exited %d, want 1", code)
	}
	if !strings.Contains(fastErr.String(), "-benchbase") {
		t.Fatalf("error does not name the flag:\n%s", fastErr.String())
	}
}

// TestBenchTrajectory covers the append-only -benchjson format: each
// run appends a dated entry; a file in the prior single-object format
// is absorbed as the trajectory's first entry, stays byte-identical
// through the conversion, and still works as a -benchbase baseline.
func TestBenchTrajectory(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-scale", "0.001", "-bench", "gzip", "-fig", "fig8"}
	traj := filepath.Join(dir, "traj.json")

	for i := 1; i <= 2; i++ {
		args := append([]string{"-benchjson", traj}, base...)
		if code := run(args, new(bytes.Buffer), new(bytes.Buffer)); code != 0 {
			t.Fatalf("run %d exited %d", i, code)
		}
		if got := len(readBenchFile(t, traj)); got != i {
			t.Fatalf("after %d runs the trajectory has %d entries", i, got)
		}
	}

	// Legacy single-object file: entry zero survives verbatim (modulo
	// re-indentation), the new entry lands behind it.
	legacy := filepath.Join(dir, "legacy.json")
	seed := benchReport{Date: "2026-01-01", Scale: 0.5, Benchmarks: 26}
	seed.WallSeconds = 123.5
	seed.BlocksExecuted = 42
	raw, err := json.MarshalIndent(seed, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-benchjson", legacy, "-benchbase", legacy}, base...)
	if code := run(args, new(bytes.Buffer), new(bytes.Buffer)); code != 0 {
		t.Fatalf("legacy-append run exited %d", code)
	}
	entries := readBenchFile(t, legacy)
	if len(entries) != 2 {
		t.Fatalf("legacy file has %d entries after append, want 2", len(entries))
	}
	if entries[0].Date != "2026-01-01" || entries[0].WallSeconds != 123.5 || entries[0].BlocksExecuted != 42 {
		t.Fatalf("legacy entry not preserved: %+v", entries[0])
	}
	// The baseline came from the legacy record's wall_seconds, so the
	// appended entry carries a speedup against it.
	if got := entries[1]; got.BaselineWallSeconds != 123.5 || got.Speedup <= 0 {
		t.Fatalf("appended entry has no speedup vs the legacy baseline: %+v", got)
	}

	// A trajectory file as -benchbase uses its latest entry.
	args = append([]string{"-benchjson", filepath.Join(dir, "next.json"), "-benchbase", legacy}, base...)
	if code := run(args, new(bytes.Buffer), new(bytes.Buffer)); code != 0 {
		t.Fatalf("trajectory-baseline run exited %d", code)
	}
	next := readBenchFile(t, filepath.Join(dir, "next.json"))
	if next[0].BaselineWallSeconds != entries[1].WallSeconds {
		t.Fatalf("baseline %.6f is not the trajectory's latest wall_seconds %.6f",
			next[0].BaselineWallSeconds, entries[1].WallSeconds)
	}
}
