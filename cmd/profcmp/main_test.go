package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dbt"
	"repro/internal/profile"
	"repro/internal/spec"
)

// buildSnapshots produces a real INIP(100)/AVEP snapshot pair for gzip
// at tiny scale, the fixture every comparison test loads. Tapes are
// single-use, so each run rebuilds the benchmark.
func buildSnapshots(t *testing.T, dir string) (inipPath, avepPath string) {
	t.Helper()
	b := spec.ByName("gzip")
	runOnce := func(cfg dbt.Config, name string) string {
		img, tape, err := b.Build("ref", 0.001)
		if err != nil {
			t.Fatal(err)
		}
		snap, _, err := dbt.Run(img, tape, cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := snap.Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	inipPath = runOnce(dbt.Config{Input: "ref", Optimize: true, Threshold: 100}, "inip.json")
	avepPath = runOnce(dbt.Config{Input: "ref"}, "avep.json")
	return inipPath, avepPath
}

// TestCompareSmoke drives the full comparison pipeline on a real
// snapshot pair and checks the report's structure: the run identities,
// every accuracy measure, and the normalization tallies.
func TestCompareSmoke(t *testing.T) {
	inip, avep := buildSnapshots(t, t.TempDir())

	var out, errBuf bytes.Buffer
	if code := run([]string{inip, avep}, &out, &errBuf); code != 0 {
		t.Fatalf("profcmp exited %d:\n%s", code, errBuf.String())
	}
	for _, want := range []string{
		"initial: gzip/ref T=100",
		"average: gzip/ref",
		"Sd.BP",
		"BP mismatch",
		"normalization:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}

	// The tool is deterministic: the same snapshots must compare to the
	// same report, byte for byte.
	var again bytes.Buffer
	if code := run([]string{inip, avep}, &again, new(bytes.Buffer)); code != 0 {
		t.Fatal("second run failed")
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatal("report is not deterministic")
	}

	// -detail, -characterize and -classic extend the report.
	var full bytes.Buffer
	if code := run([]string{"-detail", "-classic", "-characterize", inip, avep}, &full, new(bytes.Buffer)); code != 0 {
		t.Fatal("flagged run failed")
	}
	for _, want := range []string{"per-block items", "classical comparators", "key match"} {
		if !strings.Contains(full.String(), want) {
			t.Fatalf("flagged report missing %q:\n%s", want, full.String())
		}
	}
}

// TestMalformedInputs: unreadable and syntactically broken snapshots
// exit non-zero with a diagnostic naming the problem, never a panic or
// a silent zero report.
func TestMalformedInputs(t *testing.T) {
	dir := t.TempDir()
	inip, avep := buildSnapshots(t, dir)
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		code int
		want string
	}{
		{"no args", nil, 2, "usage"},
		{"one arg", []string{inip}, 2, "usage"},
		{"missing file", []string{filepath.Join(dir, "nope.json"), avep}, 1, "no such file"},
		{"garbage inip", []string{garbage, avep}, 1, "decode snapshot"},
		{"garbage avep", []string{inip, garbage}, 1, "decode snapshot"},
		{"bad flag", []string{"-nosuch", inip, avep}, 2, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var out, errBuf bytes.Buffer
		if code := run(tc.args, &out, &errBuf); code != tc.code {
			t.Fatalf("%s: exited %d, want %d (stderr: %s)", tc.name, code, tc.code, errBuf.String())
		}
		if !strings.Contains(errBuf.String(), tc.want) {
			t.Fatalf("%s: diagnostic %q does not mention %q", tc.name, errBuf.String(), tc.want)
		}
	}
}

// TestMismatchedPrograms: comparing snapshots of different programs is
// an input error, not a bogus report.
func TestMismatchedPrograms(t *testing.T) {
	dir := t.TempDir()
	inip, _ := buildSnapshots(t, dir)

	other := profile.NewSnapshot("mcf", "ref", 0, false)
	otherPath := filepath.Join(dir, "other.json")
	f, err := os.Create(otherPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var errBuf bytes.Buffer
	if code := run([]string{inip, otherPath}, new(bytes.Buffer), &errBuf); code != 1 {
		t.Fatalf("mismatched programs exited %d, want 1:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "gzip") || !strings.Contains(errBuf.String(), "mcf") {
		t.Fatalf("diagnostic does not name both programs: %s", errBuf.String())
	}
}
