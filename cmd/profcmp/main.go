// Command profcmp is the off-line analysis tool of the paper's
// methodology: it loads an initial-profile snapshot (INIP(T) or
// INIP(train)) and an average-profile snapshot (AVEP), normalizes the
// average profile to the initial profile's CFG (NAVEP), and reports the
// accuracy measures Sd.BP, Sd.CP, Sd.LP and the range-based mismatch
// rates.
//
// Usage:
//
//	profcmp inip.json avep.json [-detail] [-classic]
//
// -detail lists the per-block and per-region comparison items;
// -classic additionally reports Wall's weight/key match and the overlap
// percentage, the comparators the paper argues are inapplicable to
// initial profiles.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/profile"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive
// the tool in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("profcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		detail       = fs.Bool("detail", false, "print per-block and per-region items")
		classic      = fs.Bool("classic", false, "also report classical profile comparators")
		characterize = fs.Bool("characterize", false, "classify mispredicted branches as systematic (phase-like) vs sampling noise")
		topN         = fs.Int("topn", 10, "top-N for the classical key/weight match")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: profcmp [-detail] [-classic] <inip.json> <avep.json>")
		return 2
	}
	inip, err := loadSnapshot(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "profcmp: %v\n", err)
		return 1
	}
	avep, err := loadSnapshot(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "profcmp: %v\n", err)
		return 1
	}
	if inip.Program != avep.Program {
		fmt.Fprintf(stderr, "profcmp: snapshots disagree: initial profile is for %q, average profile is for %q\n",
			inip.Program, avep.Program)
		return 1
	}
	if avep.Optimized {
		fmt.Fprintf(stderr, "profcmp: %s is an optimized run; the average profile must come from an unoptimized run\n", fs.Arg(1))
		return 1
	}

	summary, norm, err := core.Compare(inip, avep)
	if err != nil {
		fmt.Fprintf(stderr, "profcmp: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "initial: %s/%s T=%d (%d regions)\n", inip.Program, inip.Input, inip.Threshold, len(inip.Regions))
	fmt.Fprintf(stdout, "average: %s/%s (%d blocks)\n", avep.Program, avep.Input, len(avep.Blocks))
	fmt.Fprintf(stdout, "Sd.BP       = %.4f\n", summary.SdBP)
	fmt.Fprintf(stdout, "BP mismatch = %.2f%%\n", summary.BPMismatch*100)
	if summary.HasRegions {
		fmt.Fprintf(stdout, "Sd.CP       = %.4f  (%d non-loop regions)\n", summary.SdCP, summary.Traces)
		fmt.Fprintf(stdout, "Sd.LP       = %.4f  (%d loop regions)\n", summary.SdLP, summary.Loops)
		fmt.Fprintf(stdout, "LP mismatch = %.2f%%\n", summary.LPMismatch*100)
	} else {
		fmt.Fprintln(stdout, "no regions: Sd.CP / Sd.LP not applicable (unoptimized initial profile)")
	}
	fmt.Fprintf(stdout, "normalization: %d duplicated blocks, %d solved frequencies, %d missing in AVEP\n",
		norm.DuplicatedAddrs, norm.Unknowns, norm.MissingInAVEP)

	if *detail {
		fmt.Fprintln(stdout, "\nper-block items (addr/copy: predicted vs average, weight):")
		blocks := norm.Blocks
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].W > blocks[j].W })
		for _, b := range blocks {
			marker := ""
			if metrics.BPBucket(b.BT) != metrics.BPBucket(b.BM) {
				marker = "  MISMATCH"
			}
			fmt.Fprintf(stdout, "  block %6d copy %4d  BT=%.3f BM=%.3f W=%.0f%s\n", b.Addr, b.CopyID, b.BT, b.BM, b.W, marker)
		}
		for _, r := range norm.Traces {
			fmt.Fprintf(stdout, "  trace region %d: CT=%.3f CM=%.3f W=%.0f\n", r.Region.ID, r.CT, r.CM, r.W)
		}
		for _, r := range norm.Loops {
			marker := ""
			if metrics.LPBucket(r.LT) != metrics.LPBucket(r.LM) {
				marker = "  CLASS MISMATCH"
			}
			fmt.Fprintf(stdout, "  loop region %d: LT=%.3f LM=%.3f (trips %.1f vs %.1f) W=%.0f%s\n",
				r.Region.ID, r.LT, r.LM, metrics.TripCount(r.LT), metrics.TripCount(r.LM), r.W, marker)
		}
	}

	if *characterize {
		t := inip.Threshold
		if t == 0 {
			t = 1
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, core.Characterize(norm, t).Render(20))
	}

	if *classic {
		pred := make(map[int]float64, len(inip.Blocks))
		act := make(map[int]float64, len(avep.Blocks))
		for addr, b := range inip.Blocks {
			pred[addr] = float64(b.Use)
		}
		for _, r := range inip.Regions {
			for i := range r.Blocks {
				pred[r.Blocks[i].Addr] += float64(r.Blocks[i].Use)
			}
		}
		for addr, b := range avep.Blocks {
			act[addr] = float64(b.Use)
		}
		fmt.Fprintln(stdout, "\nclassical comparators (unreliable for INIP: all frozen counts sit in [T,2T]):")
		fmt.Fprintf(stdout, "  key match (top %d)    = %.3f\n", *topN, metrics.KeyMatch(pred, act, *topN))
		fmt.Fprintf(stdout, "  weight match (top %d) = %.3f\n", *topN, metrics.WeightMatch(pred, act, *topN))
		fmt.Fprintf(stdout, "  overlap percentage     = %.3f\n", metrics.OverlapPercentage(pred, act))
	}
	return 0
}

func loadSnapshot(path string) (*profile.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return profile.LoadSnapshot(f)
}
