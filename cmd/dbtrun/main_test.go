package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestSmokeRunWithTrace: a traced single run emits exactly one valid
// flight-recorder event whose block count matches the -stats output.
func TestSmokeRunWithTrace(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "run.jsonl")
	var stdout bytes.Buffer
	args := []string{"-bench", "gzip", "-scale", "0.001", "-T", "5", "-stats", "-trace", traceFile}
	if code := run(args, &stdout, new(bytes.Buffer)); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, stdout.String())
	}
	for _, want := range []string{"blocks executed:", "retranslations:", "dispatches:", "interrupt polls:"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("-stats output missing %q:\n%s", want, stdout.String())
		}
	}

	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatalf("trace schema: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Unit != obs.UnitRun || ev.Bench != "gzip" || ev.T != 5 || ev.Err != "" {
		t.Fatalf("unexpected event: %+v", ev)
	}
	if ev.Blocks == 0 || ev.DurNS <= 0 {
		t.Fatalf("empty measurement: %+v", ev)
	}
}

// TestBadSource: source-selection misuse is a usage error.
func TestBadSource(t *testing.T) {
	if code := run(nil, new(bytes.Buffer), new(bytes.Buffer)); code != 2 {
		t.Fatalf("no source exited %d, want 2", code)
	}
	if code := run([]string{"-bench", "gzip", "-image", "x.sg32"},
		new(bytes.Buffer), new(bytes.Buffer)); code != 2 {
		t.Fatalf("two sources exited %d, want 2", code)
	}
}
