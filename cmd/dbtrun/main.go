// Command dbtrun executes one guest program under the two-phase dynamic
// binary translator and dumps the resulting profile snapshot — the
// on-line half of the paper's methodology. The snapshots it writes are
// consumed by cmd/profcmp, the off-line analysis tool.
//
// Usage:
//
//	dbtrun -bench mcf [-input ref] [-scale 1] [-T 2000] [-o inip.json]
//	dbtrun -image prog.sg32 -T 0            # AVEP (no optimization)
//	dbtrun -asm prog.s -T 500 -stats -dump
//	dbtrun -bench gzip -T 500 -trace run.jsonl
//	dbtrun -bench mcf -T 500 -sampleperiod 16   # LBR-style sampled profiling
//	dbtrun -bench mcf -T 500 -learned           # learned-model per-site features + tallies
//
// -T 0 disables the optimization phase (an AVEP/average-profile run);
// any other value is the retranslation threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/dbt"
	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/learned"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/profile"
	"repro/internal/spec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dbtrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName    = fs.String("bench", "", "synthetic SPEC2000 benchmark name")
		imageFile    = fs.String("image", "", "SG32 binary image to run")
		asmFile      = fs.String("asm", "", "SG32 assembler source to run")
		input        = fs.String("input", "ref", "input name: ref or train")
		scale        = fs.Float64("scale", 1.0, "benchmark scale factor (with -bench)")
		threshold    = fs.Uint64("T", 0, "retranslation threshold; 0 = no optimization (AVEP)")
		seed         = fs.String("seed", "", "tape seed override (defaults to <name>/<input>)")
		outFile      = fs.String("o", "", "write the profile snapshot as JSON to this file")
		dump         = fs.Bool("dump", false, "print a human-readable profile dump")
		stats        = fs.Bool("stats", false, "print run statistics")
		perf         = fs.Bool("perf", false, "enable the cycle model and report simulated cycles")
		adaptive     = fs.Bool("adaptive", false, "dissolve and rebuild regions whose side-exit rate shows a behaviour change")
		contTrip     = fs.Bool("continuous-trips", false, "keep loop-back instrumentation alive in optimized loop regions")
		converge     = fs.Float64("converge", 0, "register blocks on probability convergence with this epsilon (0 = fixed threshold)")
		traceFile    = fs.String("trace", "", "append a flight-recorder event for this run as JSONL to this file")
		samplePeriod = fs.Uint64("sampleperiod", 0, "sampled-profiling period: update profiling counters only every Nth block event (0 or 1 = full instrumentation)")
		sampleSeed   = fs.Uint64("sampleseed", 0, "seed of the sampled-profiling stride phase (with -sampleperiod)")
		learnedDump  = fs.Bool("learned", false, "dump the learned-model static feature vector and observed taken tally of every conditional-branch site")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	img, tape, err := load(*benchName, *imageFile, *asmFile, *input, *scale, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "dbtrun: %v\n", err)
		return 2
	}

	cfg := dbt.Config{
		Input:               *input,
		Threshold:           *threshold,
		Optimize:            *threshold > 0,
		RegisterTwice:       true,
		Adaptive:            *adaptive,
		ContinuousTripCount: *contTrip,
		SamplePeriod:        *samplePeriod,
		SampleSeed:          *sampleSeed,
	}
	if *converge > 0 {
		cfg.ConvergeRegister = true
		cfg.ConvergeEpsilon = *converge
	}
	if *perf {
		cfg.Perf = perfmodel.NewAccumulator(perfmodel.DefaultParams())
	}

	var rec *obs.Recorder
	var traceOut *os.File
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "dbtrun: %v\n", err)
			return 1
		}
		traceOut = f
		rec = obs.NewRecorder(f)
	}

	// The learned dump rides the read-only observer rail of the same
	// run: the snapshot, stats and any -o/-dump output are identical to
	// a run without it.
	var collector *learned.Collector
	if *learnedDump {
		sites, lerr := learned.ExtractSites(img)
		if lerr != nil {
			fmt.Fprintf(stderr, "dbtrun: %v\n", lerr)
			return 1
		}
		collector = learned.NewCollector(sites)
	}

	start := time.Now()
	var snap *profile.Snapshot
	var runStats *dbt.RunStats
	if collector != nil {
		snaps, allStats, rerr := dbt.RunMultiObserved(img, tape, []dbt.Config{cfg}, []dbt.TraceObserver{collector})
		if rerr == nil {
			snap, runStats = snaps[0], allStats[0]
		}
		err = rerr
	} else {
		snap, runStats, err = dbt.Run(img, tape, cfg)
	}
	if rec != nil {
		ev := obs.Event{Bench: img.Name, Unit: obs.UnitRun, T: *threshold}
		if err == nil {
			ev.Blocks = runStats.BlocksExecuted
			ev.Fast = runStats.FastDispatches
			ev.Generic = runStats.GenericDispatches
			ev.Lookups = runStats.CacheLookups
		}
		rec.RecordEvent(ev, start, time.Since(start), err)
		dropped, cerr := rec.Close()
		if ferr := traceOut.Close(); cerr == nil {
			cerr = ferr
		}
		if cerr != nil {
			fmt.Fprintf(stderr, "dbtrun: trace: %v\n", cerr)
			if err == nil {
				return 1
			}
		} else if dropped > 0 {
			fmt.Fprintf(stderr, "dbtrun: trace: %d events dropped\n", dropped)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "dbtrun: %v\n", err)
		return 1
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(stderr, "dbtrun: %v\n", err)
			return 1
		}
		if err := snap.Save(f); err != nil {
			fmt.Fprintf(stderr, "dbtrun: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "dbtrun: %v\n", err)
			return 1
		}
	}
	if *dump {
		fmt.Fprint(stdout, snap.Dump())
	}
	if *stats {
		fmt.Fprintf(stdout, "blocks executed:    %d\n", runStats.BlocksExecuted)
		fmt.Fprintf(stdout, "instructions:       %d\n", runStats.Instructions)
		fmt.Fprintf(stdout, "blocks translated:  %d\n", runStats.BlocksTranslated)
		fmt.Fprintf(stdout, "retranslations:     %d\n", runStats.Retranslations)
		fmt.Fprintf(stdout, "optimization waves: %d\n", runStats.OptimizationWaves)
		fmt.Fprintf(stdout, "regions formed:     %d\n", runStats.RegionsFormed)
		if runStats.RegionsDissolved > 0 {
			fmt.Fprintf(stdout, "regions dissolved:  %d\n", runStats.RegionsDissolved)
		}
		fmt.Fprintf(stdout, "region entries:     %d (completions %d, loop-backs %d, side exits %d)\n",
			runStats.RegionEntries, runStats.RegionCompletions, runStats.RegionLoopBacks, runStats.RegionSideExits)
		fmt.Fprintf(stdout, "dispatches:         %d fast, %d generic (%d cache lookups)\n",
			runStats.FastDispatches, runStats.GenericDispatches, runStats.CacheLookups)
		fmt.Fprintf(stdout, "interrupt polls:    %d\n", runStats.InterruptPolls)
		if runStats.FreezeEvents > 0 {
			fmt.Fprintf(stdout, "freeze events:      %d\n", runStats.FreezeEvents)
		}
		fmt.Fprintf(stdout, "profiling ops:      %d\n", snap.ProfilingOps)
		if *perf {
			fmt.Fprintf(stdout, "simulated cycles:   %.0f\n", runStats.Cycles)
		}
	}
	if collector != nil {
		data := collector.BenchData(img.Name)
		if data.Unknown > 0 {
			fmt.Fprintf(stderr, "dbtrun: warning: %d branch events at sites the static extractor missed\n", data.Unknown)
		}
		out := struct {
			FeatureNames []string `json:"feature_names"`
			learned.BenchData
		}{learned.FeatureNames(), data}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "dbtrun: %v\n", err)
			return 1
		}
	}
	if *outFile == "" && !*dump && !*stats && collector == nil {
		fmt.Fprintf(stdout, "%s/%s T=%d: %d blocks, %d regions, %d profiling ops\n",
			snap.Program, snap.Input, snap.Threshold, len(snap.Blocks), len(snap.Regions), snap.ProfilingOps)
	}
	return 0
}

func load(bench, image, asm, input string, scale float64, seed string) (*guest.Image, interp.Tape, error) {
	sources := 0
	for _, s := range []string{bench, image, asm} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, nil, fmt.Errorf("exactly one of -bench, -image, -asm is required")
	}
	switch {
	case bench != "":
		b := spec.ByName(bench)
		if b == nil {
			return nil, nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return b.Build(input, scale)
	case image != "":
		f, err := os.Open(image)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		img, err := guest.Load(f)
		if err != nil {
			return nil, nil, err
		}
		if seed == "" {
			seed = img.Name + "/" + input
		}
		return img, interp.NewUniformTape(seed), nil
	default:
		src, err := os.ReadFile(asm)
		if err != nil {
			return nil, nil, err
		}
		img, err := guest.Assemble(string(src))
		if err != nil {
			return nil, nil, err
		}
		if seed == "" {
			seed = img.Name + "/" + input
		}
		return img, interp.NewUniformTape(seed), nil
	}
}
