// Command dbtrun executes one guest program under the two-phase dynamic
// binary translator and dumps the resulting profile snapshot — the
// on-line half of the paper's methodology. The snapshots it writes are
// consumed by cmd/profcmp, the off-line analysis tool.
//
// Usage:
//
//	dbtrun -bench mcf [-input ref] [-scale 1] [-T 2000] [-o inip.json]
//	dbtrun -image prog.sg32 -T 0            # AVEP (no optimization)
//	dbtrun -asm prog.s -T 500 -stats -dump
//
// -T 0 disables the optimization phase (an AVEP/average-profile run);
// any other value is the retranslation threshold.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dbt"
	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/perfmodel"
	"repro/internal/spec"
)

func main() {
	var (
		benchName = flag.String("bench", "", "synthetic SPEC2000 benchmark name")
		imageFile = flag.String("image", "", "SG32 binary image to run")
		asmFile   = flag.String("asm", "", "SG32 assembler source to run")
		input     = flag.String("input", "ref", "input name: ref or train")
		scale     = flag.Float64("scale", 1.0, "benchmark scale factor (with -bench)")
		threshold = flag.Uint64("T", 0, "retranslation threshold; 0 = no optimization (AVEP)")
		seed      = flag.String("seed", "", "tape seed override (defaults to <name>/<input>)")
		outFile   = flag.String("o", "", "write the profile snapshot as JSON to this file")
		dump      = flag.Bool("dump", false, "print a human-readable profile dump")
		stats     = flag.Bool("stats", false, "print run statistics")
		perf      = flag.Bool("perf", false, "enable the cycle model and report simulated cycles")
		adaptive  = flag.Bool("adaptive", false, "dissolve and rebuild regions whose side-exit rate shows a behaviour change")
		contTrip  = flag.Bool("continuous-trips", false, "keep loop-back instrumentation alive in optimized loop regions")
		converge  = flag.Float64("converge", 0, "register blocks on probability convergence with this epsilon (0 = fixed threshold)")
	)
	flag.Parse()

	img, tape, err := load(*benchName, *imageFile, *asmFile, *input, *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbtrun: %v\n", err)
		os.Exit(2)
	}

	cfg := dbt.Config{
		Input:               *input,
		Threshold:           *threshold,
		Optimize:            *threshold > 0,
		RegisterTwice:       true,
		Adaptive:            *adaptive,
		ContinuousTripCount: *contTrip,
	}
	if *converge > 0 {
		cfg.ConvergeRegister = true
		cfg.ConvergeEpsilon = *converge
	}
	if *perf {
		cfg.Perf = perfmodel.NewAccumulator(perfmodel.DefaultParams())
	}
	snap, runStats, err := dbt.Run(img, tape, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbtrun: %v\n", err)
		os.Exit(1)
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbtrun: %v\n", err)
			os.Exit(1)
		}
		if err := snap.Save(f); err != nil {
			fmt.Fprintf(os.Stderr, "dbtrun: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dbtrun: %v\n", err)
			os.Exit(1)
		}
	}
	if *dump {
		fmt.Print(snap.Dump())
	}
	if *stats {
		fmt.Printf("blocks executed:    %d\n", runStats.BlocksExecuted)
		fmt.Printf("instructions:       %d\n", runStats.Instructions)
		fmt.Printf("blocks translated:  %d\n", runStats.BlocksTranslated)
		fmt.Printf("optimization waves: %d\n", runStats.OptimizationWaves)
		fmt.Printf("regions formed:     %d\n", runStats.RegionsFormed)
		if runStats.RegionsDissolved > 0 {
			fmt.Printf("regions dissolved:  %d\n", runStats.RegionsDissolved)
		}
		fmt.Printf("region entries:     %d (completions %d, loop-backs %d, side exits %d)\n",
			runStats.RegionEntries, runStats.RegionCompletions, runStats.RegionLoopBacks, runStats.RegionSideExits)
		fmt.Printf("profiling ops:      %d\n", snap.ProfilingOps)
		if *perf {
			fmt.Printf("simulated cycles:   %.0f\n", runStats.Cycles)
		}
	}
	if *outFile == "" && !*dump && !*stats {
		fmt.Printf("%s/%s T=%d: %d blocks, %d regions, %d profiling ops\n",
			snap.Program, snap.Input, snap.Threshold, len(snap.Blocks), len(snap.Regions), snap.ProfilingOps)
	}
}

func load(bench, image, asm, input string, scale float64, seed string) (*guest.Image, interp.Tape, error) {
	sources := 0
	for _, s := range []string{bench, image, asm} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, nil, fmt.Errorf("exactly one of -bench, -image, -asm is required")
	}
	switch {
	case bench != "":
		b := spec.ByName(bench)
		if b == nil {
			return nil, nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return b.Build(input, scale)
	case image != "":
		f, err := os.Open(image)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		img, err := guest.Load(f)
		if err != nil {
			return nil, nil, err
		}
		if seed == "" {
			seed = img.Name + "/" + input
		}
		return img, interp.NewUniformTape(seed), nil
	default:
		src, err := os.ReadFile(asm)
		if err != nil {
			return nil, nil, err
		}
		img, err := guest.Assemble(string(src))
		if err != nil {
			return nil, nil, err
		}
		if seed == "" {
			seed = img.Name + "/" + input
		}
		return img, interp.NewUniformTape(seed), nil
	}
}
