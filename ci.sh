#!/bin/sh
# CI gate: formatting, vet, build, and the full test suite under the
# race detector. Run from the repository root.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== trace smoke (-race) =="
# The flight recorder must survive full pool parallelism: record a
# tiny-scale study under the race detector, then parse and summarize
# the trace it produced (the strict reader is the schema check).
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
# Build the race-instrumented binary once and run it directly: `go run`
# collapses every non-zero child exit to 1, which would hide the exit
# codes the smokes below assert.
go build -race -o "$tmpdir/inipstudy" ./cmd/inipstudy
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -trace "$tmpdir/trace.jsonl" -benchjson "$tmpdir/bench.json" > /dev/null
"$tmpdir/inipstudy" -tracesum "$tmpdir/trace.jsonl" > /dev/null

echo "== fault-injection smoke (-race) =="
# One injected failure under each policy. Fail-fast must refuse to
# produce figures; degrade must complete with the surviving benchmark's
# figures byte-identical to a clean run over that subset (the gap
# annotation names the drop, so strip it before comparing).
"$tmpdir/inipstudy" -scale 0.001 -bench swim -fig fig8 \
    > "$tmpdir/clean.txt"
code=0
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -inject trap:gzip/ref@500 > /dev/null 2> "$tmpdir/failfast.err" || code=$?
if [ "$code" -ne 1 ]; then
    echo "fail-fast run with an injected fault exited $code, want 1" >&2
    exit 1
fi
grep -q "injected guest trap at block 500" "$tmpdir/failfast.err"
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -failpolicy degrade -inject trap:gzip/ref@500 \
    > "$tmpdir/degrade.txt" 2> "$tmpdir/degrade.err"
grep -q "gzip" "$tmpdir/degrade.err"
grep -v "^gap: " "$tmpdir/degrade.txt" > "$tmpdir/degrade-stripped.txt"
cmp "$tmpdir/clean.txt" "$tmpdir/degrade-stripped.txt"

echo "== kill-and-resume smoke (-race) =="
# Stop the study after one benchmark, then resume from the checkpoint:
# the resumed run restores the finished benchmark and its figure output
# is byte-identical to an uninterrupted run.
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    > "$tmpdir/full.txt"
code=0
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -checkpoint "$tmpdir/state.jsonl" -stopafter 1 \
    > /dev/null 2> "$tmpdir/stop.err" || code=$?
if [ "$code" -ne 130 ]; then
    echo "stopped run exited $code, want 130" >&2
    cat "$tmpdir/stop.err" >&2
    exit 1
fi
test -s "$tmpdir/state.jsonl"
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -checkpoint "$tmpdir/state.jsonl" -resume > "$tmpdir/resumed.txt"
cmp "$tmpdir/full.txt" "$tmpdir/resumed.txt"
# Atomic-write temporaries (".<base>.tmp*") never outlive the cycle:
# anything a killed run left behind is swept on the next startup.
leftovers=$(find "$tmpdir" -name '.*.tmp*')
if [ -n "$leftovers" ]; then
    echo "orphaned atomic-write temporaries after stop/resume:" >&2
    echo "$leftovers" >&2
    exit 1
fi

echo "== cold/warm result-cache smoke (-race) =="
# A cold full-suite run populates the cache; the warm rerun must serve
# everything from it — zero guest blocks executed, nonzero hits — and
# its figure output must be byte-identical to the cold run's. The
# differential verify pass then re-executes everything against the
# warmed store.
"$tmpdir/inipstudy" -scale 0.001 -fig all -cache "$tmpdir/cache" \
    -benchjson "$tmpdir/cold.json" > "$tmpdir/cold-figs.txt" 2> /dev/null
"$tmpdir/inipstudy" -scale 0.001 -fig all -cache "$tmpdir/cache" \
    -benchjson "$tmpdir/warm.json" > "$tmpdir/warm-figs.txt" 2> "$tmpdir/warm.err"
cmp "$tmpdir/cold-figs.txt" "$tmpdir/warm-figs.txt"
grep -q '"blocks_executed": 0' "$tmpdir/warm.json"
# result_cache_hits is omitted from the JSON when zero, so its presence
# asserts the warm run actually hit the cache.
grep -q '"result_cache_hits"' "$tmpdir/warm.json"
grep -q ' 0 misses, 0 stores, 0 errors$' "$tmpdir/warm.err"
"$tmpdir/inipstudy" -scale 0.001 -fig all -cache "$tmpdir/cache" \
    -cacheverify > "$tmpdir/verify-figs.txt" 2> /dev/null
cmp "$tmpdir/cold-figs.txt" "$tmpdir/verify-figs.txt"

echo "== predictor smoke (-race) =="
# The predictor zoo rides the replayed reference trace as a read-only
# observer: two identical runs must report identical mispredict rates
# (figp1/figp2 byte-for-byte), and enabling predictors must not move a
# single byte of the paper figures.
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -predictors all \
    -fig figp1,figp2 > "$tmpdir/pred1.txt"
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -predictors all \
    -fig figp1,figp2 > "$tmpdir/pred2.txt"
cmp "$tmpdir/pred1.txt" "$tmpdir/pred2.txt"
grep -q "perceptron" "$tmpdir/pred1.txt"
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -predictors all \
    -fig fig8 > "$tmpdir/fig8-pred.txt"
# full.txt is the kill-and-resume smoke's uninterrupted fig8 run of the
# same configuration without predictors.
cmp "$tmpdir/full.txt" "$tmpdir/fig8-pred.txt"

echo "== sampling smoke (-race) =="
# Sampled-profiling frontier (DESIGN §3i): a cold sweep populates the
# cache and the warm rerun must replay it byte-identically at zero
# guest blocks; the measured cost ratio must fall monotonically with
# the period from exactly 1 at period 1; and enabling the sweep must
# not move a byte of the paper figures.
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -sampleperiods 1,4,16 \
    -fig figs1,figs2 -cache "$tmpdir/spcache" \
    -benchjson "$tmpdir/sp-cold.json" > "$tmpdir/sp-cold.txt" 2> /dev/null
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -sampleperiods 1,4,16 \
    -fig figs1,figs2 -cache "$tmpdir/spcache" \
    -benchjson "$tmpdir/sp-warm.json" > "$tmpdir/sp-warm.txt" 2> /dev/null
cmp "$tmpdir/sp-cold.txt" "$tmpdir/sp-warm.txt"
# The cold run executed sampled units; the warm rerun replayed
# everything — zero guest blocks, zero sampled units (sampled_units is
# omitted from the JSON when zero, so its absence is the assertion).
grep -q '"sampled_units"' "$tmpdir/sp-cold.json"
grep -q '"blocks_executed": 0' "$tmpdir/sp-warm.json"
if grep -q '"sampled_units"' "$tmpdir/sp-warm.json"; then
    echo "warm sampling rerun reports sampled execution" >&2
    exit 1
fi
# Monotone cost: in the figs2 table both classes' measured cost ratios
# (columns 3 and 5) strictly fall as the period grows.
awk '/^== figs2/ { infig = 1; next }
    infig && /^T / { next }
    infig && /^note/ { infig = 0; next }
    infig && /^[0-9]/ {
        if (n == 0 && ($3 != "1.0000" || $5 != "1.0000")) {
            print "period-1 cost ratio is not 1.0000: " $0 > "/dev/stderr"
            bad = 1; exit 1
        }
        if (n > 0 && ($3 + 0 >= prev3 || $5 + 0 >= prev5)) {
            print "cost ratio not monotone at period " $1 ": " $0 > "/dev/stderr"
            bad = 1; exit 1
        }
        prev3 = $3 + 0; prev5 = $5 + 0; n++
    }
    END {
        if (!bad && n < 3) {
            print "figs2 table rows missing (saw " n ")" > "/dev/stderr"
            exit 1
        }
    }' "$tmpdir/sp-cold.txt"
# full.txt is the kill-and-resume smoke's uninterrupted fig8 run of
# the same configuration without sampling.
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -sampleperiods 1,4,16 \
    -fig fig8 > "$tmpdir/fig8-sp.txt"
cmp "$tmpdir/full.txt" "$tmpdir/fig8-sp.txt"
# No orphaned atomic-write temporaries in the sampling cache.
leftovers=$(find "$tmpdir/spcache" -name '.*.tmp*')
if [ -n "$leftovers" ]; then
    echo "orphaned atomic-write temporaries after sampling smoke:" >&2
    echo "$leftovers" >&2
    exit 1
fi

echo "== learned smoke (-race) =="
# Profile-free learned model (DESIGN §3j): the cold full-suite run
# collects branch-site data (the legacy units come warm out of the
# cache above, only the `ls` entries are new) and fits the
# cross-validated model; the warm rerun must replay everything
# byte-identically — figures and dumped model — at zero guest blocks.
"$tmpdir/inipstudy" -scale 0.001 -learned logreg -fig figl1,figl2 \
    -cache "$tmpdir/cache" -learnedjson "$tmpdir/lm-cold.json" \
    > "$tmpdir/lm-cold.txt" 2> "$tmpdir/lm-cold.err"
"$tmpdir/inipstudy" -scale 0.001 -learned logreg -fig figl1,figl2 \
    -cache "$tmpdir/cache" -learnedjson "$tmpdir/lm-warm.json" \
    -benchjson "$tmpdir/lm-warm-perf.json" > "$tmpdir/lm-warm.txt" 2> /dev/null
cmp "$tmpdir/lm-cold.txt" "$tmpdir/lm-warm.txt"
cmp "$tmpdir/lm-cold.json" "$tmpdir/lm-warm.json"
grep -q '"blocks_executed": 0' "$tmpdir/lm-warm-perf.json"
grep -q "^== figl1" "$tmpdir/lm-cold.txt"
grep -q "^== figl2" "$tmpdir/lm-cold.txt"
# Held-out accuracy gate: over the full suite the leave-one-benchmark-
# out mispredict rate must be strictly below the always-taken baseline
# (the rates are in the -learnedjson summary line on stderr).
lrate=$(sed -n 's/.*mispredicted = \([0-9.]*\) vs always-taken.*/\1/p' "$tmpdir/lm-cold.err")
trate=$(sed -n 's/.*vs always-taken \([0-9.]*\).*/\1/p' "$tmpdir/lm-cold.err")
awk -v l="$lrate" -v t="$trate" 'BEGIN {
    if (l == "" || t == "" || l + 0 >= t + 0) {
        print "held-out learned rate " l " does not beat always-taken " t > "/dev/stderr"
        exit 1
    }
}'
# full.txt is the kill-and-resume smoke's uninterrupted fig8 run of
# the same configuration without the learned class.
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -learned logreg \
    -fig fig8 > "$tmpdir/fig8-lm.txt"
cmp "$tmpdir/full.txt" "$tmpdir/fig8-lm.txt"
# No orphaned atomic-write temporaries in the now learned-warm cache.
leftovers=$(find "$tmpdir/cache" -name '.*.tmp*')
if [ -n "$leftovers" ]; then
    echo "orphaned atomic-write temporaries after learned smoke:" >&2
    echo "$leftovers" >&2
    exit 1
fi

echo "== coverage floors =="
# Statement-coverage floors for the two packages the sampling test net
# leans on hardest: comfortably below the measured values (79%/90% at
# the time the floors were set) so flaky skips cannot trip them, high
# enough that deleting a test suite does.
go test -cover ./internal/dbt/ ./internal/study/ > "$tmpdir/cover.txt"
awk '{
    for (i = 1; i <= NF; i++) if ($i == "coverage:") {
        split($(i + 1), a, "%"); cov = a[1] + 0
        floor = ($2 ~ /internal\/dbt$/) ? 75 : 85
        if (cov < floor) {
            printf "%s coverage %.1f%% below floor %d%%\n", $2, cov, floor > "/dev/stderr"
            exit 1
        }
    }
}' "$tmpdir/cover.txt"

echo "== perf smoke =="
# Hot-loop throughput gate against the committed floors in
# BENCH_floor.json (see its comment for how the baselines were chosen:
# far enough under a healthy measurement to absorb machine variance,
# far enough over the generic-dispatch fallback that losing the arena
# fast path trips the gate). The microbenchmarks run without -race —
# race instrumentation would measure the instrumentation, not the loop.
frac=$(sed -n 's/.*"max_regression_frac": *\([0-9.]*\).*/\1/p' BENCH_floor.json)
micro_base=$(sed -n 's/.*"exec_block_loop_heavy_blocks_per_sec": *\([0-9.]*\).*/\1/p' BENCH_floor.json)
study_base=$(sed -n 's/.*"study_race_scale001_blocks_per_sec": *\([0-9.]*\).*/\1/p' BENCH_floor.json)
go test -run='^$' -bench 'BenchmarkExecBlock|BenchmarkExecGeneric|BenchmarkRunMulti' \
    -benchtime=0.3s ./internal/dbt/ > "$tmpdir/bench.txt"
micro=$(awk '/^BenchmarkExecBlock\/loop_heavy/ {
    for (i = 2; i <= NF; i++) if ($i == "blocks/s") print $(i - 1) }' "$tmpdir/bench.txt")
awk -v got="$micro" -v base="$micro_base" -v frac="$frac" 'BEGIN {
    floor = base * (1 - frac)
    if (got == "" || got + 0 < floor) {
        printf "BenchmarkExecBlock/loop_heavy: %s blocks/s, floor %.0f (baseline %.0f - %.0f%%)\n",
            got, floor, base, frac * 100 > "/dev/stderr"
        exit 1
    }
}'
# Full-suite Scale 0.01 study under the race detector: the hot loop at
# study scale, gated against the race-instrumented baseline. Figure
# bytes are pinned by the golden corpus — assert that explicitly here
# so a perf-motivated engine change cannot pass this section while
# drifting results.
go test -race -run '^TestGoldenFigures$' ./internal/study/
"$tmpdir/inipstudy" -scale 0.01 -fig all -benchjson "$tmpdir/perf.json" > /dev/null
studybps=$(sed -n 's/.*"blocks_per_sec": *\([0-9.]*\).*/\1/p' "$tmpdir/perf.json" | head -n 1)
awk -v got="$studybps" -v base="$study_base" -v frac="$frac" 'BEGIN {
    floor = base * (1 - frac)
    if (got == "" || got + 0 < floor) {
        printf "scale 0.01 study: %s blocks/s, floor %.0f (baseline %.0f - %.0f%%)\n",
            got, floor, base, frac * 100 > "/dev/stderr"
        exit 1
    }
}'

echo "== serve smoke (-race) =="
# Boot the daemon, hit it cold and warm (byte-identical bodies, zero
# guest blocks warm), overload it (429 + Retry-After), stop a study job
# mid-run, drain with SIGTERM, and resume the job on a fresh daemon to
# byte-identical figures.
go build -race -o "$tmpdir/inipd" ./cmd/inipd
servedir="$tmpdir/serve"
mkdir -p "$servedir"
dpid=""
trap '[ -n "$dpid" ] && kill "$dpid" 2> /dev/null; rm -rf "$tmpdir"' EXIT

wait_file() { # path tries
    _i=0
    while [ ! -s "$1" ]; do
        _i=$((_i + 1))
        if [ "$_i" -gt "$2" ]; then
            echo "daemon never published $1" >&2
            cat "$servedir"/d*.err >&2 || true
            return 1
        fi
        sleep 0.05
    done
}
poll_job() { # base id want tries
    _i=0
    while :; do
        _state=$(curl -s "$1/v1/jobs/$2" | grep -o '"state":"[a-z]*"' | head -n 1)
        [ "$_state" = "\"state\":\"$3\"" ] && return 0
        _i=$((_i + 1))
        if [ "$_i" -gt "$4" ]; then
            echo "job $2 never reached $3 (last: $_state)" >&2
            cat "$servedir"/d*.err >&2 || true
            return 1
        fi
        sleep 0.05
    done
}

"$tmpdir/inipd" -addr 127.0.0.1:0 -addrfile "$servedir/addr" \
    -scale 0.001 -maxinflight 1 -maxqueue -1 \
    -cache "$servedir/cache" -state "$servedir/state" \
    -trace "$servedir/trace.jsonl" 2> "$servedir/d1.err" &
dpid=$!
wait_file "$servedir/addr" 200
base="http://$(cat "$servedir/addr")"

# Cold compare populates the shared cache; the identical repeat must be
# served warm — zero guest blocks — with a byte-identical body (the
# volatile data lives in X-Inipd-* headers, not the body).
curl -sf -D "$servedir/cold.hdr" -o "$servedir/cold.json" \
    -d '{"bench":"gzip","t":2000}' "$base/v1/compare"
grep -qi '^x-inipd-cache: miss' "$servedir/cold.hdr"
curl -sf -D "$servedir/warm.hdr" -o "$servedir/warm.json" \
    -d '{"bench":"gzip","t":2000}' "$base/v1/compare"
grep -qi '^x-inipd-cache: hit' "$servedir/warm.hdr"
grep -qi '^x-inipd-guest-blocks: 0' "$servedir/warm.hdr"
cmp "$servedir/cold.json" "$servedir/warm.json"

# Overload: a slow compare holds the single execution slot
# (-maxinflight 1, waiting disabled); a differently-keyed request
# arriving meanwhile is answered 429 with Retry-After, not queued.
curl -sf -o "$servedir/slow.json" \
    -d '{"bench":"gzip","t":100,"scale":0.05}' "$base/v1/compare" &
slowpid=$!
saw429=0
_i=0
while [ "$_i" -lt 100 ]; do
    _i=$((_i + 1))
    code=$(curl -s -o /dev/null -D "$servedir/burst.hdr" \
        -w '%{http_code}' -d '{"bench":"swim","t":100}' "$base/v1/compare")
    if [ "$code" = "429" ]; then
        saw429=1
        grep -qi '^retry-after:' "$servedir/burst.hdr"
        break
    fi
    sleep 0.02
done
if [ "$saw429" -ne 1 ]; then
    echo "overload burst never answered 429" >&2
    exit 1
fi
wait "$slowpid"

# A study job stopped after one benchmark survives a SIGTERM drain and
# a daemon restart: -resume re-enqueues it, and the finished job's
# figures are byte-identical to an uninterrupted job's.
curl -sf -o "$servedir/job.json" \
    -d '{"scale":0.001,"benches":["gzip","swim"],"stop_after":1}' \
    "$base/v1/study"
grep -q '"id":"job-1"' "$servedir/job.json"
poll_job "$base" job-1 stopped 600
kill -TERM "$dpid"
if ! wait "$dpid"; then
    echo "daemon drain exited nonzero" >&2
    cat "$servedir/d1.err" >&2
    exit 1
fi
dpid=""
grep -q "drained" "$servedir/d1.err"

"$tmpdir/inipd" -addr 127.0.0.1:0 -addrfile "$servedir/addr2" \
    -scale 0.001 -cache "$servedir/cache" -state "$servedir/state" \
    -resume 2> "$servedir/d2.err" &
dpid=$!
wait_file "$servedir/addr2" 200
base="http://$(cat "$servedir/addr2")"
poll_job "$base" job-1 done 1200
curl -sf -o "$servedir/resumed-figs.json" "$base/v1/jobs/job-1/figures"
curl -sf -o /dev/null -d '{"scale":0.001,"benches":["gzip","swim"]}' \
    "$base/v1/study"
poll_job "$base" job-2 done 1200
curl -sf -o "$servedir/fresh-figs.json" "$base/v1/jobs/job-2/figures"
cmp "$servedir/resumed-figs.json" "$servedir/fresh-figs.json"
curl -sf "$base/v1/metrics" | grep -q 'inipd_jobs{state="done"} 2'

kill -TERM "$dpid"
if ! wait "$dpid"; then
    echo "resumed daemon drain exited nonzero" >&2
    cat "$servedir/d2.err" >&2
    exit 1
fi
dpid=""
# The kill/resume cycle must leave no orphaned atomic-write
# temporaries in the daemon's state or cache directories.
leftovers=$(find "$servedir" -name '.*.tmp*')
if [ -n "$leftovers" ]; then
    echo "orphaned atomic-write temporaries after daemon resume:" >&2
    echo "$leftovers" >&2
    exit 1
fi

echo "== fleet smoke (-race) =="
# Distributed study fleet (DESIGN §3h): figures must be byte-identical
# whether one worker or three execute the suite, survive a worker
# killed -9 mid-study (lease expiry → reassignment), and survive a
# coordinator kill-and-resume from its state directory.
go build -race -o "$tmpdir/inipfleet" ./cmd/inipfleet
fleetdir="$tmpdir/fleet"
mkdir -p "$fleetdir"
fleetpids=""
trap 'kill $fleetpids 2> /dev/null || true; rm -rf "$tmpdir"' EXIT

start_coord() { # suffix extra-args...
    _sfx=$1
    shift
    "$tmpdir/inipfleet" -mode coordinator -addr 127.0.0.1:0 \
        -addrfile "$fleetdir/addr$_sfx" -scale 0.001 -bench gzip,swim,mcf \
        -figjson "$fleetdir/figs$_sfx.json" -linger 1s "$@" \
        2> "$fleetdir/c$_sfx.err" &
    cpid=$!
    fleetpids="$fleetpids $cpid"
    wait_file "$fleetdir/addr$_sfx" 200
    base="http://$(cat "$fleetdir/addr$_sfx")"
}
start_worker() { # id extra-args...
    _wid=$1
    shift
    "$tmpdir/inipfleet" -mode worker -coordinator "$base" -id "$_wid" \
        -cache "$fleetdir/cache" -scratch "$fleetdir/$_wid" \
        -poll 10ms -maxoffline 60s "$@" 2> "$fleetdir/$_wid.err" &
    wpid=$!
    fleetpids="$fleetpids $wpid"
}
wait_ok() { # pid what
    if ! wait "$1"; then
        echo "$2 exited nonzero" >&2
        cat "$fleetdir"/*.err >&2
        exit 1
    fi
}

# One worker, cold shared cache: the reference figures.
start_coord 1
start_worker w1
wait_ok "$wpid" "worker w1"
wait_ok "$cpid" "coordinator 1"
grep -q "3 completions" "$fleetdir/c1.err"

# Three workers over the same (now warm) cache: byte-identical figures.
start_coord 2
start_worker w2a
w2apid=$wpid
start_worker w2b
w2bpid=$wpid
start_worker w2c
wait_ok "$wpid" "worker w2c"
wait_ok "$w2bpid" "worker w2b"
wait_ok "$w2apid" "worker w2a"
wait_ok "$cpid" "coordinator 2"
cmp "$fleetdir/figs1.json" "$fleetdir/figs2.json"

# Kill -9 a worker mid-study: its injected fault stalls every ref unit
# for an hour while heartbeats keep the lease alive; SIGKILL silences
# the heartbeats, the lease expires, and a healthy worker started after
# the kill finishes the suite. Figures still byte-identical.
start_coord 3 -leasettl 500ms -maxattempts 5
start_worker w3stall -inject 'slow:*/ref:1h'
stallpid=$wpid
_i=0
while ! curl -s "$base/v1/fleet/metrics" \
    | grep -q '^fleet_lease_grants_total [1-9]'; do
    _i=$((_i + 1))
    if [ "$_i" -gt 200 ]; then
        echo "stalled worker never took a lease" >&2
        cat "$fleetdir/c3.err" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$stallpid"
start_worker w3ok
wait_ok "$wpid" "worker w3ok"
wait_ok "$cpid" "coordinator 3"
cmp "$fleetdir/figs1.json" "$fleetdir/figs3.json"
# The coordinator's exit summary carries the lease counters.
expiries=$(sed -n 's/.*, \([0-9]*\) expiries.*/\1/p' "$fleetdir/c3.err")
reassigns=$(sed -n 's/.*, \([0-9]*\) reassignments.*/\1/p' "$fleetdir/c3.err")
if [ -z "$expiries" ] || [ "$expiries" -lt 1 ] \
    || [ -z "$reassigns" ] || [ "$reassigns" -lt 1 ]; then
    echo "killed worker produced no expiry/reassignment (got '$expiries'/'$reassigns')" >&2
    cat "$fleetdir/c3.err" >&2
    exit 1
fi

# Coordinator kill-and-resume: stop after one settled benchmark (exit
# 130, checkpoint flushed), then a fresh coordinator with -resume
# restores it and leases only the remainder.
start_coord 4 -state "$fleetdir/state" -stopafter 1
start_worker w4a
code=0
wait "$cpid" || code=$?
if [ "$code" -ne 130 ]; then
    echo "stopped coordinator exited $code, want 130" >&2
    cat "$fleetdir/c4.err" >&2
    exit 1
fi
test -s "$fleetdir/state/study.ckpt.jsonl"
kill "$wpid" 2> /dev/null
wait "$wpid" || true
start_coord 5 -state "$fleetdir/state" -resume
start_worker w5a
wait_ok "$wpid" "worker w5a"
wait_ok "$cpid" "coordinator 5"
cmp "$fleetdir/figs1.json" "$fleetdir/figs5.json"
# The resumed run restored at least one benchmark from the checkpoint,
# so it settled strictly fewer than the suite's three.
grep -Eq '^inipfleet: [0-2] completions' "$fleetdir/c5.err"

# No orphaned atomic-write temporaries anywhere in the fleet's state,
# cache, scratch, or figure files after all the kills above.
leftovers=$(find "$fleetdir" -name '.*.tmp*')
if [ -n "$leftovers" ]; then
    echo "orphaned atomic-write temporaries after fleet smoke:" >&2
    echo "$leftovers" >&2
    exit 1
fi

echo "== fuzz smoke (10s per target) =="
go test -run='^$' -fuzz='^FuzzISADecode$' -fuzztime=10s ./internal/isa/
go test -run='^$' -fuzz='^FuzzImageLoad$' -fuzztime=10s ./internal/guest/
go test -run='^$' -fuzz='^FuzzFaultSpec$' -fuzztime=10s ./internal/faultinject/
go test -run='^$' -fuzz='^FuzzCheckpointDecode$' -fuzztime=10s ./internal/study/
go test -run='^$' -fuzz='^FuzzExecPaths$' -fuzztime=10s ./internal/dbt/
go test -run='^$' -fuzz='^FuzzPredictReplay$' -fuzztime=10s ./internal/dbt/
go test -run='^$' -fuzz='^FuzzSampledReplay$' -fuzztime=10s ./internal/dbt/

echo "CI OK"
