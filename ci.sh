#!/bin/sh
# CI gate: formatting, vet, build, and the full test suite under the
# race detector. Run from the repository root.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== trace smoke (-race) =="
# The flight recorder must survive full pool parallelism: record a
# tiny-scale study under the race detector, then parse and summarize
# the trace it produced (the strict reader is the schema check).
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
# Build the race-instrumented binary once and run it directly: `go run`
# collapses every non-zero child exit to 1, which would hide the exit
# codes the smokes below assert.
go build -race -o "$tmpdir/inipstudy" ./cmd/inipstudy
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -trace "$tmpdir/trace.jsonl" -benchjson "$tmpdir/bench.json" > /dev/null
"$tmpdir/inipstudy" -tracesum "$tmpdir/trace.jsonl" > /dev/null

echo "== fault-injection smoke (-race) =="
# One injected failure under each policy. Fail-fast must refuse to
# produce figures; degrade must complete with the surviving benchmark's
# figures byte-identical to a clean run over that subset (the gap
# annotation names the drop, so strip it before comparing).
"$tmpdir/inipstudy" -scale 0.001 -bench swim -fig fig8 \
    > "$tmpdir/clean.txt"
code=0
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -inject trap:gzip/ref@500 > /dev/null 2> "$tmpdir/failfast.err" || code=$?
if [ "$code" -ne 1 ]; then
    echo "fail-fast run with an injected fault exited $code, want 1" >&2
    exit 1
fi
grep -q "injected guest trap at block 500" "$tmpdir/failfast.err"
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -failpolicy degrade -inject trap:gzip/ref@500 \
    > "$tmpdir/degrade.txt" 2> "$tmpdir/degrade.err"
grep -q "gzip" "$tmpdir/degrade.err"
grep -v "^gap: " "$tmpdir/degrade.txt" > "$tmpdir/degrade-stripped.txt"
cmp "$tmpdir/clean.txt" "$tmpdir/degrade-stripped.txt"

echo "== kill-and-resume smoke (-race) =="
# Stop the study after one benchmark, then resume from the checkpoint:
# the resumed run restores the finished benchmark and its figure output
# is byte-identical to an uninterrupted run.
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    > "$tmpdir/full.txt"
code=0
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -checkpoint "$tmpdir/state.jsonl" -stopafter 1 \
    > /dev/null 2> "$tmpdir/stop.err" || code=$?
if [ "$code" -ne 130 ]; then
    echo "stopped run exited $code, want 130" >&2
    cat "$tmpdir/stop.err" >&2
    exit 1
fi
test -s "$tmpdir/state.jsonl"
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -checkpoint "$tmpdir/state.jsonl" -resume > "$tmpdir/resumed.txt"
cmp "$tmpdir/full.txt" "$tmpdir/resumed.txt"

echo "CI OK"
