#!/bin/sh
# CI gate: formatting, vet, build, and the full test suite under the
# race detector. Run from the repository root.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== trace smoke (-race) =="
# The flight recorder must survive full pool parallelism: record a
# tiny-scale study under the race detector, then parse and summarize
# the trace it produced (the strict reader is the schema check).
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
# Build the race-instrumented binary once and run it directly: `go run`
# collapses every non-zero child exit to 1, which would hide the exit
# codes the smokes below assert.
go build -race -o "$tmpdir/inipstudy" ./cmd/inipstudy
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -trace "$tmpdir/trace.jsonl" -benchjson "$tmpdir/bench.json" > /dev/null
"$tmpdir/inipstudy" -tracesum "$tmpdir/trace.jsonl" > /dev/null

echo "== fault-injection smoke (-race) =="
# One injected failure under each policy. Fail-fast must refuse to
# produce figures; degrade must complete with the surviving benchmark's
# figures byte-identical to a clean run over that subset (the gap
# annotation names the drop, so strip it before comparing).
"$tmpdir/inipstudy" -scale 0.001 -bench swim -fig fig8 \
    > "$tmpdir/clean.txt"
code=0
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -inject trap:gzip/ref@500 > /dev/null 2> "$tmpdir/failfast.err" || code=$?
if [ "$code" -ne 1 ]; then
    echo "fail-fast run with an injected fault exited $code, want 1" >&2
    exit 1
fi
grep -q "injected guest trap at block 500" "$tmpdir/failfast.err"
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -failpolicy degrade -inject trap:gzip/ref@500 \
    > "$tmpdir/degrade.txt" 2> "$tmpdir/degrade.err"
grep -q "gzip" "$tmpdir/degrade.err"
grep -v "^gap: " "$tmpdir/degrade.txt" > "$tmpdir/degrade-stripped.txt"
cmp "$tmpdir/clean.txt" "$tmpdir/degrade-stripped.txt"

echo "== kill-and-resume smoke (-race) =="
# Stop the study after one benchmark, then resume from the checkpoint:
# the resumed run restores the finished benchmark and its figure output
# is byte-identical to an uninterrupted run.
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    > "$tmpdir/full.txt"
code=0
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -checkpoint "$tmpdir/state.jsonl" -stopafter 1 \
    > /dev/null 2> "$tmpdir/stop.err" || code=$?
if [ "$code" -ne 130 ]; then
    echo "stopped run exited $code, want 130" >&2
    cat "$tmpdir/stop.err" >&2
    exit 1
fi
test -s "$tmpdir/state.jsonl"
"$tmpdir/inipstudy" -scale 0.001 -bench gzip,swim -fig fig8 \
    -checkpoint "$tmpdir/state.jsonl" -resume > "$tmpdir/resumed.txt"
cmp "$tmpdir/full.txt" "$tmpdir/resumed.txt"

echo "== cold/warm result-cache smoke (-race) =="
# A cold full-suite run populates the cache; the warm rerun must serve
# everything from it — zero guest blocks executed, nonzero hits — and
# its figure output must be byte-identical to the cold run's. The
# differential verify pass then re-executes everything against the
# warmed store.
"$tmpdir/inipstudy" -scale 0.001 -fig all -cache "$tmpdir/cache" \
    -benchjson "$tmpdir/cold.json" > "$tmpdir/cold-figs.txt" 2> /dev/null
"$tmpdir/inipstudy" -scale 0.001 -fig all -cache "$tmpdir/cache" \
    -benchjson "$tmpdir/warm.json" > "$tmpdir/warm-figs.txt" 2> "$tmpdir/warm.err"
cmp "$tmpdir/cold-figs.txt" "$tmpdir/warm-figs.txt"
grep -q '"blocks_executed": 0' "$tmpdir/warm.json"
# result_cache_hits is omitted from the JSON when zero, so its presence
# asserts the warm run actually hit the cache.
grep -q '"result_cache_hits"' "$tmpdir/warm.json"
grep -q ' 0 misses, 0 stores, 0 errors$' "$tmpdir/warm.err"
"$tmpdir/inipstudy" -scale 0.001 -fig all -cache "$tmpdir/cache" \
    -cacheverify > "$tmpdir/verify-figs.txt" 2> /dev/null
cmp "$tmpdir/cold-figs.txt" "$tmpdir/verify-figs.txt"

echo "== fuzz smoke (10s per target) =="
go test -run='^$' -fuzz='^FuzzISADecode$' -fuzztime=10s ./internal/isa/
go test -run='^$' -fuzz='^FuzzImageLoad$' -fuzztime=10s ./internal/guest/
go test -run='^$' -fuzz='^FuzzFaultSpec$' -fuzztime=10s ./internal/faultinject/
go test -run='^$' -fuzz='^FuzzCheckpointDecode$' -fuzztime=10s ./internal/study/

echo "CI OK"
