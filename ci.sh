#!/bin/sh
# CI gate: formatting, vet, build, and the full test suite under the
# race detector. Run from the repository root.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== trace smoke (-race) =="
# The flight recorder must survive full pool parallelism: record a
# tiny-scale study under the race detector, then parse and summarize
# the trace it produced (the strict reader is the schema check).
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run -race ./cmd/inipstudy -scale 0.001 -bench gzip,swim -fig fig8 \
    -trace "$tmpdir/trace.jsonl" -benchjson "$tmpdir/bench.json" > /dev/null
go run ./cmd/inipstudy -tracesum "$tmpdir/trace.jsonl" > /dev/null

echo "CI OK"
