package region

import (
	"math"
	"testing"

	"repro/internal/profile"
)

// mapProvider is a Provider over a fixed block table.
type mapProvider map[int]BlockInfo

func (m mapProvider) Info(addr int) (BlockInfo, bool) {
	b, ok := m[addr]
	return b, ok
}

// branch constructs a hot conditional-branch block.
func branch(addr int, use, taken uint64, takenTgt, fallTgt int) BlockInfo {
	return BlockInfo{Addr: addr, End: addr + 2, Use: use, Taken: taken, Term: TermBranch, TakenTarget: takenTgt, FallTarget: fallTgt}
}

func jump(addr int, use uint64, tgt int) BlockInfo {
	return BlockInfo{Addr: addr, End: addr + 1, Use: use, Term: TermJump, TakenTarget: tgt, FallTarget: -1}
}

func other(addr int, use uint64) BlockInfo {
	return BlockInfo{Addr: addr, End: addr, Use: use, Term: TermOther, TakenTarget: -1, FallTarget: -1}
}

func TestFormLinearTrace(t *testing.T) {
	// 10 -(0.9 taken)-> 20 -(0.8 not taken)-> 23 -> call (stop).
	p := mapProvider{
		10: branch(10, 1000, 900, 20, 13),
		20: branch(20, 950, 190, 50, 23), // taken prob 0.2 -> follow fall
		23: other(23, 900),
		50: other(50, 10),
	}
	f := NewFormer(Config{MinProb: 0.7, MaxBlocks: 16, MinUse: 500})
	regions := f.Form(p, []int{10})
	if len(regions) != 1 {
		t.Fatalf("formed %d regions, want 1", len(regions))
	}
	r := regions[0]
	if r.Kind != profile.RegionTrace {
		t.Fatalf("kind = %v, want trace", r.Kind)
	}
	if len(r.Blocks) != 3 {
		t.Fatalf("blocks = %+v, want 3", r.Blocks)
	}
	if r.Blocks[0].Addr != 10 || r.Blocks[1].Addr != 20 || r.Blocks[2].Addr != 23 {
		t.Fatalf("trace path wrong: %+v", r.Blocks)
	}
	if r.Blocks[0].TakenNext != r.Blocks[1].ID || r.Blocks[0].FallNext != -1 {
		t.Fatalf("edge 10->20 wrong: %+v", r.Blocks[0])
	}
	if r.Blocks[1].FallNext != r.Blocks[2].ID || r.Blocks[1].TakenNext != -1 {
		t.Fatalf("edge 20->23 wrong: %+v", r.Blocks[1])
	}
	// Frozen counters copied.
	if r.Blocks[0].Use != 1000 || r.Blocks[0].Taken != 900 {
		t.Fatalf("frozen counters wrong: %+v", r.Blocks[0])
	}
}

func TestFormLoopRegion(t *testing.T) {
	// 10 -(taken 0.95)-> 10: a self loop.
	p := mapProvider{10: branch(10, 1000, 950, 10, 13), 13: other(13, 50)}
	f := NewFormer(DefaultConfig(1000))
	regions := f.Form(p, []int{10})
	if len(regions) != 1 {
		t.Fatalf("formed %d regions, want 1", len(regions))
	}
	r := regions[0]
	if r.Kind != profile.RegionLoop {
		t.Fatalf("kind = %v, want loop", r.Kind)
	}
	if len(r.Blocks) != 1 || r.Blocks[0].TakenNext != r.Entry {
		t.Fatalf("self loop shape wrong: %+v", r.Blocks)
	}
	lp, err := LoopBackProb(r, FrozenProb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lp-0.95) > 1e-12 {
		t.Fatalf("LP = %v, want 0.95", lp)
	}
}

func TestFormMultiBlockLoop(t *testing.T) {
	// 10 -> 20 -> back to 10 (both biased).
	p := mapProvider{
		10: branch(10, 1000, 900, 20, 13),
		20: branch(20, 900, 855, 10, 23),
		13: other(13, 10),
		23: other(23, 10),
	}
	f := NewFormer(Config{MinProb: 0.7, MaxBlocks: 16, MinUse: 400})
	regions := f.Form(p, []int{10, 20})
	if len(regions) != 1 {
		t.Fatalf("formed %d regions (%+v), want 1: block 20 should be consumed", len(regions), regions)
	}
	r := regions[0]
	if r.Kind != profile.RegionLoop || len(r.Blocks) != 2 {
		t.Fatalf("loop shape wrong: %+v", r)
	}
	if r.Blocks[1].TakenNext != r.Entry {
		t.Fatalf("back edge wrong: %+v", r.Blocks[1])
	}
	// LP = 0.9 * 0.95.
	lp, err := LoopBackProb(r, FrozenProb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lp-0.9*0.95) > 1e-12 {
		t.Fatalf("LP = %v, want 0.855", lp)
	}
}

func TestFormStopsAtUnbiasedBranchWithoutDiamond(t *testing.T) {
	p := mapProvider{
		10: branch(10, 1000, 500, 20, 30), // 0.5/0.5
		20: other(20, 600),
		30: other(30, 400),
	}
	f := NewFormer(Config{MinProb: 0.7, MaxBlocks: 16, MinUse: 100, Diamonds: false})
	regions := f.Form(p, []int{10})
	if len(regions) != 0 {
		t.Fatalf("formed %d regions from a lone unbiased branch, want 0", len(regions))
	}
}

func TestFormAbsorbsDiamond(t *testing.T) {
	// 10 branches 50/50 to 20 and 30, both jump to 40, which jumps on.
	p := mapProvider{
		10: branch(10, 1000, 500, 20, 30),
		20: jump(20, 500, 40),
		30: jump(30, 500, 40),
		40: branch(40, 1000, 50, 90, 43), // biased fall-through
		43: other(43, 950),
		90: other(90, 50),
	}
	f := NewFormer(Config{MinProb: 0.7, MaxBlocks: 16, MinUse: 300, Diamonds: true})
	regions := f.Form(p, []int{10})
	if len(regions) != 1 {
		t.Fatalf("formed %d regions, want 1", len(regions))
	}
	r := regions[0]
	// Expect 10, 20, 30, 40, 43.
	if len(r.Blocks) != 5 {
		t.Fatalf("diamond region has %d blocks: %+v", len(r.Blocks), r.Blocks)
	}
	b10 := r.Blocks[0]
	if b10.TakenNext == -1 || b10.FallNext == -1 {
		t.Fatalf("diamond split edges missing: %+v", b10)
	}
	// CP with symmetric 0.5 probabilities and no side exits before 43:
	// all mass reaches the last block except block 40's taken side exit
	// (p=0.05): CP = 0.95.
	cp, err := CompletionProb(r, FrozenProb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cp-0.95) > 1e-12 {
		t.Fatalf("CP = %v, want 0.95", cp)
	}
}

func TestFormRespectsMaxBlocks(t *testing.T) {
	// A long chain of biased branches.
	p := mapProvider{}
	for i := 0; i < 40; i++ {
		p[i*10] = branch(i*10, 1000, 950, (i+1)*10, i*10+5)
		p[i*10+5] = other(i*10+5, 10)
	}
	p[400] = other(400, 1000)
	f := NewFormer(Config{MinProb: 0.7, MaxBlocks: 8, MinUse: 500})
	regions := f.Form(p, []int{0})
	if len(regions) != 1 || len(regions[0].Blocks) != 8 {
		t.Fatalf("MaxBlocks not honoured: %d blocks", len(regions[0].Blocks))
	}
}

func TestFormSkipsColdSuccessors(t *testing.T) {
	p := mapProvider{
		10: branch(10, 1000, 900, 20, 13),
		20: other(20, 5), // cold
		13: other(13, 100),
	}
	f := NewFormer(Config{MinProb: 0.7, MaxBlocks: 16, MinUse: 500})
	regions := f.Form(p, []int{10})
	if len(regions) != 0 {
		t.Fatalf("formed %d regions through a cold successor, want 0", len(regions))
	}
}

func TestFormDuplicationAcrossRegions(t *testing.T) {
	// The Mcf shape: block 30 is shared by an inner loop (20->30->20)
	// and an outer path (10->...); once placed in the inner loop it must
	// be duplicated, not stolen, when the outer region forms.
	p := mapProvider{
		20: branch(20, 50000, 47500, 30, 25),
		30: branch(30, 50600, 44000, 20, 35), // taken 0.87 -> back to 20
		10: branch(10, 6000, 5700, 30, 15),   // outer path enters 30 too
		25: other(25, 100),
		35: other(35, 100),
		15: other(15, 100),
	}
	f := NewFormer(Config{MinProb: 0.7, MaxBlocks: 16, MinUse: 3000})
	// Hottest-first ordering forms the inner loop first.
	regions := f.Form(p, []int{20, 30, 10})
	if len(regions) != 2 {
		t.Fatalf("formed %d regions, want 2 (inner loop + outer trace)", len(regions))
	}
	inner, outer := regions[0], regions[1]
	if inner.Kind != profile.RegionLoop {
		t.Fatalf("inner kind = %v", inner.Kind)
	}
	// 30 appears in both regions with distinct copy IDs.
	var copies []int
	for _, r := range regions {
		for i := range r.Blocks {
			if r.Blocks[i].Addr == 30 {
				copies = append(copies, r.Blocks[i].ID)
			}
		}
	}
	if len(copies) != 2 || copies[0] == copies[1] {
		t.Fatalf("block 30 copies = %v, want two distinct", copies)
	}
	if outer.EntryBlock().Addr != 10 {
		t.Fatalf("outer entry = %+v", outer.EntryBlock())
	}
}

func TestFormSeedsHottestFirst(t *testing.T) {
	p := mapProvider{
		10: branch(10, 100, 90, 20, 13),
		20: branch(20, 5000, 4500, 10, 23), // hotter: seeds first, loops back through 10
		13: other(13, 1),
		23: other(23, 1),
	}
	f := NewFormer(Config{MinProb: 0.7, MaxBlocks: 16, MinUse: 50})
	regions := f.Form(p, []int{10, 20})
	if len(regions) == 0 {
		t.Fatal("no regions formed")
	}
	if regions[0].EntryBlock().Addr != 20 {
		t.Fatalf("first region entry %d, want 20 (hottest)", regions[0].EntryBlock().Addr)
	}
}

func TestPaperFigure6CompletionProbability(t *testing.T) {
	// Figure 6: b5 splits 0.4/0.6 to b6/b7, which rejoin at b8 with
	// probabilities 0.8 and 0.9; CP = 0.4*0.8 + 0.6*0.9 = 0.86.
	r := &profile.Region{
		ID:    0,
		Kind:  profile.RegionTrace,
		Entry: 5,
		Blocks: []profile.RegionBlock{
			{ID: 5, Addr: 5, HasBranch: true, Use: 100, Taken: 40, TakenNext: 6, FallNext: 7},
			{ID: 6, Addr: 6, HasBranch: true, Use: 40, Taken: 32, TakenNext: 8, FallNext: -1},
			{ID: 7, Addr: 7, HasBranch: true, Use: 60, Taken: 54, TakenNext: 8, FallNext: -1},
			{ID: 8, Addr: 8, HasBranch: false, TakenNext: -1, FallNext: -1, TakenTarget: -1, FallTarget: -1},
		},
	}
	cp, err := CompletionProb(r, FrozenProb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cp-0.86) > 1e-12 {
		t.Fatalf("CP = %v, want 0.86 (paper Figure 6)", cp)
	}
}

func TestPaperFigure7LoopBackProbability(t *testing.T) {
	// Figure 7: entry b5 splits 0.6 to b7 and 0.4 to b6; b6 reaches b8
	// with 0.9625 (so b8 carries ~0.385); b7 and b8 branch back to the
	// entry with probability 0.9 each. The dummy node receives
	// 0.6*0.9 + 0.385*0.9 = 0.8865 ~= the paper's 0.886.
	r := &profile.Region{
		ID:    1,
		Kind:  profile.RegionLoop,
		Entry: 5,
		Blocks: []profile.RegionBlock{
			{ID: 5, Addr: 5, HasBranch: true, Use: 10000, Taken: 6000, TakenNext: 7, FallNext: 6},
			{ID: 6, Addr: 6, HasBranch: true, Use: 4000, Taken: 3850, TakenNext: 8, FallNext: -1},
			{ID: 7, Addr: 7, HasBranch: true, Use: 6000, Taken: 5400, TakenNext: 5, FallNext: -1},
			{ID: 8, Addr: 8, HasBranch: true, Use: 3850, Taken: 3465, TakenNext: 5, FallNext: -1},
		},
	}
	lp, err := LoopBackProb(r, FrozenProb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lp-0.8865) > 1e-9 {
		t.Fatalf("LP = %v, want 0.8865 (paper Figure 7, unrounded)", lp)
	}
}

func TestCompletionProbRejectsLoop(t *testing.T) {
	r := &profile.Region{Kind: profile.RegionLoop, Entry: 0, Blocks: []profile.RegionBlock{{ID: 0, TakenNext: 0, FallNext: -1, HasBranch: true, Use: 1, Taken: 1}}}
	if _, err := CompletionProb(r, FrozenProb); err == nil {
		t.Fatal("CompletionProb accepted a loop region")
	}
}

func TestLoopBackProbRejectsTrace(t *testing.T) {
	r := &profile.Region{Kind: profile.RegionTrace, Entry: 0, Blocks: []profile.RegionBlock{{ID: 0, TakenNext: -1, FallNext: -1}}}
	if _, err := LoopBackProb(r, FrozenProb); err == nil {
		t.Fatal("LoopBackProb accepted a trace region")
	}
}

func TestProbFuncSubstitution(t *testing.T) {
	// The same region evaluated under frozen vs substituted
	// probabilities (the NAVEP view) must differ accordingly.
	r := &profile.Region{
		Kind:  profile.RegionLoop,
		Entry: 0,
		Blocks: []profile.RegionBlock{
			{ID: 0, Addr: 100, HasBranch: true, Use: 1000, Taken: 900, TakenNext: 0, FallNext: -1},
		},
	}
	lpFrozen, err := LoopBackProb(r, FrozenProb)
	if err != nil {
		t.Fatal(err)
	}
	if lpFrozen != 0.9 {
		t.Fatalf("frozen LP = %v", lpFrozen)
	}
	lpAvg, err := LoopBackProb(r, func(rb *profile.RegionBlock) float64 { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	if lpAvg != 0.5 {
		t.Fatalf("substituted LP = %v", lpAvg)
	}
}

func TestFlowRejectsForwardOrderViolation(t *testing.T) {
	// An edge pointing backward (not to the entry) must be rejected.
	r := &profile.Region{
		Kind:  profile.RegionTrace,
		Entry: 0,
		Blocks: []profile.RegionBlock{
			{ID: 0, HasBranch: true, Use: 10, Taken: 5, TakenNext: 1, FallNext: -1},
			{ID: 1, HasBranch: true, Use: 10, Taken: 5, TakenNext: 2, FallNext: -1},
			{ID: 2, HasBranch: true, Use: 10, Taken: 5, TakenNext: 1, FallNext: -1},
		},
	}
	if _, err := CompletionProb(r, FrozenProb); err == nil {
		t.Fatal("flow accepted a backward edge")
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(1000)
	if c.MinProb != 0.7 || c.MaxBlocks != 16 || c.MinUse != 500 || !c.Diamonds {
		t.Fatalf("DefaultConfig = %+v", c)
	}
}
