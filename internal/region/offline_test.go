package region

import (
	"testing"

	"repro/internal/profile"
)

// avepLike builds an unoptimized snapshot shaped like a hot loop
// feeding a biased trace.
func avepLike() *profile.Snapshot {
	s := profile.NewSnapshot("p", "train", 0, false)
	add := func(addr, end int, use, taken uint64, branch bool, tt, ft int) {
		s.Blocks[addr] = &profile.Block{Addr: addr, End: end, Use: use, Taken: taken, HasBranch: branch, TakenTarget: tt, FallTarget: ft}
	}
	// Loop: 10 -> 10 with p 0.95; exit falls to 13.
	add(10, 12, 100000, 95000, true, 10, 13)
	// Trace: 13 -(0.9)-> 20 -> jmp 30; 30 ends in halt-like Other.
	add(13, 14, 5000, 4500, true, 20, 15)
	add(20, 21, 4500, 0, false, 30, -1)
	add(30, 31, 4600, 0, false, -1, -1)
	add(15, 16, 500, 0, false, -1, -1)
	return s
}

func TestFormOfflineFindsLoopAndTrace(t *testing.T) {
	snap := avepLike()
	regions := FormOffline(snap, 1000, Config{})
	if len(regions) < 2 {
		t.Fatalf("formed %d regions, want loop + trace", len(regions))
	}
	var loops, traces int
	for _, r := range regions {
		switch r.Kind {
		case profile.RegionLoop:
			loops++
			lp, err := LoopBackProb(r, FrozenProb)
			if err != nil {
				t.Fatal(err)
			}
			if lp < 0.94 || lp > 0.96 {
				t.Fatalf("offline loop LP = %v, want ~0.95", lp)
			}
		case profile.RegionTrace:
			traces++
		}
	}
	if loops == 0 || traces == 0 {
		t.Fatalf("loops=%d traces=%d", loops, traces)
	}
}

func TestFormOfflineRespectsThreshold(t *testing.T) {
	snap := avepLike()
	regions := FormOffline(snap, 1<<40, Config{})
	if len(regions) != 0 {
		t.Fatalf("cold snapshot formed %d regions", len(regions))
	}
}

func TestFormOfflineDeterministic(t *testing.T) {
	snap := avepLike()
	a := FormOffline(snap, 1000, Config{})
	b := FormOffline(snap, 1000, Config{})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic region count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || len(a[i].Blocks) != len(b[i].Blocks) {
			t.Fatalf("region %d differs between runs", i)
		}
		for j := range a[i].Blocks {
			if a[i].Blocks[j].Addr != b[i].Blocks[j].Addr {
				t.Fatalf("region %d block %d differs", i, j)
			}
		}
	}
}

func TestWithOfflineRegionsMovesBlocks(t *testing.T) {
	snap := avepLike()
	orig := len(snap.Blocks)
	out := WithOfflineRegions(snap, 1000, Config{})
	if !out.Optimized || out.Threshold != 1000 {
		t.Fatalf("output flags wrong: %+v", out)
	}
	if len(out.Regions) == 0 {
		t.Fatal("no regions attached")
	}
	placed := 0
	for _, r := range out.Regions {
		seen := map[int]bool{}
		for i := range r.Blocks {
			if !seen[r.Blocks[i].Addr] {
				seen[r.Blocks[i].Addr] = true
				placed++
			}
		}
	}
	if len(out.Blocks) >= orig {
		t.Fatalf("no blocks consumed: %d of %d remain", len(out.Blocks), orig)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// The input snapshot must be untouched.
	if len(snap.Blocks) != orig || snap.Optimized || len(snap.Regions) != 0 {
		t.Fatal("input snapshot mutated")
	}
}
