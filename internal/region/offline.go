package region

import (
	"sort"

	"repro/internal/profile"
)

// snapshotProvider adapts an unoptimized profile snapshot (end-of-run
// counters for every block) to the Provider interface, letting the
// region former run offline over a finished profile instead of a live
// translation cache.
type snapshotProvider struct {
	blocks map[int]*profile.Block
}

func (p snapshotProvider) Info(addr int) (BlockInfo, bool) {
	b, ok := p.blocks[addr]
	if !ok {
		return BlockInfo{}, false
	}
	term := TermOther
	switch {
	case b.HasBranch:
		term = TermBranch
	case b.TakenTarget >= 0 && b.FallTarget < 0:
		term = TermJump
	}
	return BlockInfo{
		Addr:        b.Addr,
		End:         b.End,
		Use:         b.Use,
		Taken:       b.Taken,
		Term:        term,
		TakenTarget: b.TakenTarget,
		FallTarget:  b.FallTarget,
	}, true
}

// FormOffline applies the optimization phase's region former to an
// unoptimized snapshot, seeding from every block whose use count
// reaches the given threshold. This implements the future-work item of
// the paper's section 5: constructing regions in INIP(train) so that
// Sd.CP(train) and Sd.LP(train) can be computed against AVEP.
//
// The returned regions carry the snapshot's end-of-run counters as
// their (pseudo-frozen) probabilities. The input snapshot is not
// modified.
func FormOffline(snap *profile.Snapshot, threshold uint64, cfg Config) []*profile.Region {
	p := snapshotProvider{blocks: snap.Blocks}
	if cfg == (Config{}) {
		cfg = DefaultConfig(threshold)
	}
	var candidates []int
	for addr, b := range snap.Blocks {
		if b.Use >= threshold {
			candidates = append(candidates, addr)
		}
	}
	sort.Ints(candidates) // deterministic seed order before hotness sort
	f := NewFormer(cfg)
	return f.Form(p, candidates)
}

// WithOfflineRegions returns a shallow copy of an unoptimized snapshot
// with offline-formed regions attached and the consumed blocks removed
// from the plain-block table (mirroring what a real optimized snapshot
// looks like, so the normalizer treats it identically).
func WithOfflineRegions(snap *profile.Snapshot, threshold uint64, cfg Config) *profile.Snapshot {
	regions := FormOffline(snap, threshold, cfg)
	placed := make(map[int]bool)
	for _, r := range regions {
		for i := range r.Blocks {
			placed[r.Blocks[i].Addr] = true
		}
	}
	out := &profile.Snapshot{
		Program:        snap.Program,
		Input:          snap.Input,
		Threshold:      threshold,
		Optimized:      true,
		Blocks:         make(map[int]*profile.Block, len(snap.Blocks)),
		Regions:        regions,
		ProfilingOps:   snap.ProfilingOps,
		BlocksExecuted: snap.BlocksExecuted,
		Instructions:   snap.Instructions,
		Cycles:         snap.Cycles,
	}
	for addr, b := range snap.Blocks {
		if !placed[addr] {
			out.Blocks[addr] = b
		}
	}
	return out
}
