// Package region implements the optimization phase's region former and
// the probability computations defined in sections 3.2 and 3.3 of the
// paper.
//
// The former groups hot blocks into two region shapes:
//
//   - traces (non-loop regions): grown from a seed by repeatedly
//     following the dominant branch direction while it is biased at
//     least MinProb (the classic "minimum branch probability" rule of
//     Chang & Hwu trace selection). An if/else diamond whose branch is
//     unbiased may be absorbed whole when both arms rejoin immediately,
//     which yields hyperblock-shaped regions.
//
//   - loop regions: a growth path that branches back to its seed closes
//     into a loop region whose back edges target the region entry.
//
// Blocks already placed in an earlier region may be absorbed again into
// a later one; each placement is a fresh copy (tail duplication), which
// is exactly the duplication the paper's NAVEP normalization exists to
// handle.
package region

import (
	"fmt"
	"sort"

	"repro/internal/profile"
)

// TermKind classifies how a block ends, as needed by the former.
type TermKind int

const (
	// TermBranch is a two-way conditional branch.
	TermBranch TermKind = iota
	// TermJump is a direct unconditional jump.
	TermJump
	// TermOther is anything the former will not grow through: calls,
	// returns, indirect jumps, halt.
	TermOther
)

// BlockInfo is the former's view of one translated block.
type BlockInfo struct {
	Addr int
	End  int
	// Use and Taken are the live profiling counters at formation time;
	// they become the region copy's frozen counters.
	Use   uint64
	Taken uint64
	Term  TermKind
	// TakenTarget is the branch/jump target (-1 if none); FallTarget is
	// the fall-through successor (-1 if none).
	TakenTarget int
	FallTarget  int
}

// HasBranch reports whether the block ends in a conditional branch.
func (b *BlockInfo) HasBranch() bool { return b.Term == TermBranch }

// BranchProb returns the live taken probability.
func (b *BlockInfo) BranchProb() float64 {
	if b.Term != TermBranch || b.Use == 0 {
		return 0
	}
	return float64(b.Taken) / float64(b.Use)
}

// Provider resolves block addresses to formation-time info. The DBT's
// translation cache implements this.
type Provider interface {
	// Info returns the block at addr, or ok=false if the address has
	// never been translated.
	Info(addr int) (BlockInfo, bool)
}

// Config tunes region formation.
type Config struct {
	// MinProb is the minimum branch probability for following a branch
	// direction (default 0.7, the paper's reference value).
	MinProb float64
	// MaxBlocks caps region size in block copies (default 16).
	MaxBlocks int
	// MinUse is the hotness floor for absorbing successor blocks;
	// typically half the retranslation threshold.
	MinUse uint64
	// Diamonds enables absorbing unbiased if/else diamonds
	// (default true via DefaultConfig).
	Diamonds bool
}

// DefaultConfig returns the paper-reference configuration for a given
// retranslation threshold.
func DefaultConfig(threshold uint64) Config {
	return Config{
		MinProb:   0.7,
		MaxBlocks: 16,
		MinUse:    threshold / 2,
		Diamonds:  true,
	}
}

func (c *Config) normalize() {
	if c.MinProb <= 0 || c.MinProb > 1 {
		c.MinProb = 0.7
	}
	if c.MaxBlocks <= 0 {
		c.MaxBlocks = 16
	}
}

// Former builds regions from candidate seeds. It owns the running ID
// counters so that region and block-copy IDs stay unique across the
// multiple optimization waves of a run.
type Former struct {
	cfg        Config
	nextRegion int
	nextCopy   int
	// placed marks addresses that are already a member of some region;
	// such blocks are skipped as seeds but remain eligible for
	// duplication into later regions.
	placed map[int]bool
}

// NewFormer returns a Former with the given configuration.
func NewFormer(cfg Config) *Former {
	cfg.normalize()
	return &Former{cfg: cfg, placed: make(map[int]bool)}
}

// Placed reports whether addr is already a member of a formed region.
func (f *Former) Placed(addr int) bool { return f.placed[addr] }

// Unplace releases an address from region membership, making it
// eligible to seed or join future regions. The adaptive translator uses
// this when it dissolves a misbehaving region.
func (f *Former) Unplace(addr int) { delete(f.placed, addr) }

// Form runs one optimization wave over the candidate addresses and
// returns the regions formed, in formation order. Candidates are
// processed hottest-first; candidates that have already been placed are
// skipped as seeds.
func (f *Former) Form(p Provider, candidates []int) []*profile.Region {
	seeds := make([]int, 0, len(candidates))
	seen := make(map[int]bool, len(candidates))
	for _, addr := range candidates {
		if !seen[addr] {
			seen[addr] = true
			seeds = append(seeds, addr)
		}
	}
	sort.Slice(seeds, func(i, j int) bool {
		bi, _ := p.Info(seeds[i])
		bj, _ := p.Info(seeds[j])
		if bi.Use != bj.Use {
			return bi.Use > bj.Use
		}
		return seeds[i] < seeds[j]
	})
	var out []*profile.Region
	for _, seed := range seeds {
		if f.placed[seed] {
			continue
		}
		info, ok := p.Info(seed)
		if !ok {
			continue
		}
		r := f.grow(p, info)
		if r == nil {
			continue
		}
		for i := range r.Blocks {
			f.placed[r.Blocks[i].Addr] = true
		}
		out = append(out, r)
	}
	return out
}

// growth accumulates the copies of a region under construction. Copies
// are held by pointer so that edge patches survive later appends.
type growth struct {
	kind   profile.RegionKind
	id     int
	entry  int
	blocks []*profile.RegionBlock
	inPath map[int]int // addr -> copy ID, for cycle detection
}

func (g *growth) appendCopy(f *Former, info BlockInfo) *profile.RegionBlock {
	rb := &profile.RegionBlock{
		ID:          f.nextCopy,
		Addr:        info.Addr,
		Use:         info.Use,
		Taken:       info.Taken,
		HasBranch:   info.Term == TermBranch,
		TakenNext:   -1,
		FallNext:    -1,
		TakenTarget: info.TakenTarget,
		FallTarget:  info.FallTarget,
	}
	f.nextCopy++
	g.blocks = append(g.blocks, rb)
	g.inPath[info.Addr] = rb.ID
	return rb
}

func (g *growth) region() *profile.Region {
	r := &profile.Region{ID: g.id, Kind: g.kind, Entry: g.entry}
	r.Blocks = make([]profile.RegionBlock, len(g.blocks))
	for i, rb := range g.blocks {
		r.Blocks[i] = *rb
	}
	return r
}

// grow builds a single region from the seed block.
func (f *Former) grow(p Provider, seed BlockInfo) *profile.Region {
	g := &growth{kind: profile.RegionTrace, id: f.nextRegion, inPath: make(map[int]int)}
	f.nextRegion++
	cur := g.appendCopy(f, seed)
	g.entry = cur.ID
	curInfo := seed

	for len(g.blocks) < f.cfg.MaxBlocks {
		// Pick the edge to extend along.
		var succAddr int
		var viaTaken bool
		switch curInfo.Term {
		case TermJump:
			succAddr, viaTaken = curInfo.TakenTarget, true
		case TermBranch:
			prob := curInfo.BranchProb()
			switch {
			case prob >= f.cfg.MinProb:
				succAddr, viaTaken = curInfo.TakenTarget, true
			case 1-prob >= f.cfg.MinProb:
				succAddr, viaTaken = curInfo.FallTarget, false
			default:
				// Unbiased branch: try to absorb a diamond.
				if f.cfg.Diamonds {
					if next, ok := f.absorbDiamond(p, g, cur, curInfo); ok {
						cur = next
						var found bool
						curInfo, found = p.Info(cur.Addr)
						if !found {
							return finishRegion(g)
						}
						continue
					}
				}
				return finishRegion(g)
			}
		default:
			return finishRegion(g)
		}
		if succAddr < 0 {
			return finishRegion(g)
		}
		if succAddr == seed.Addr {
			// Closing the cycle back to the entry: a loop region.
			g.kind = profile.RegionLoop
			if viaTaken {
				cur.TakenNext = g.entry
			} else {
				cur.FallNext = g.entry
			}
			return finishRegion(g)
		}
		if _, cyc := g.inPath[succAddr]; cyc {
			// A cycle not through the entry; stop rather than form an
			// irreducible region.
			return finishRegion(g)
		}
		succInfo, ok := p.Info(succAddr)
		if !ok || succInfo.Use < f.cfg.MinUse {
			return finishRegion(g)
		}
		next := g.appendCopy(f, succInfo)
		if viaTaken {
			cur.TakenNext = next.ID
		} else {
			cur.FallNext = next.ID
		}
		cur = next
		curInfo = succInfo
	}
	return finishRegion(g)
}

// absorbDiamond tries to extend the region through an unbiased branch at
// cur by absorbing both arms of an if/else diamond. It succeeds only
// when both successor blocks end with a direct jump to one common merge
// block that is hot enough to include. It returns the merge copy to
// continue growing from.
func (f *Former) absorbDiamond(p Provider, g *growth, cur *profile.RegionBlock, curInfo BlockInfo) (*profile.RegionBlock, bool) {
	if len(g.blocks)+3 > f.cfg.MaxBlocks {
		return nil, false
	}
	tAddr, fAddr := curInfo.TakenTarget, curInfo.FallTarget
	if tAddr < 0 || fAddr < 0 || tAddr == fAddr {
		return nil, false
	}
	tInfo, okT := p.Info(tAddr)
	fInfo, okF := p.Info(fAddr)
	if !okT || !okF || tInfo.Use < f.cfg.MinUse || fInfo.Use < f.cfg.MinUse {
		return nil, false
	}
	if tInfo.Term != TermJump || fInfo.Term != TermJump {
		return nil, false
	}
	merge := tInfo.TakenTarget
	if merge < 0 || merge != fInfo.TakenTarget {
		return nil, false
	}
	if _, cyc := g.inPath[tAddr]; cyc {
		return nil, false
	}
	if _, cyc := g.inPath[fAddr]; cyc {
		return nil, false
	}
	if _, cyc := g.inPath[merge]; cyc {
		return nil, false
	}
	mInfo, okM := p.Info(merge)
	if !okM || mInfo.Use < f.cfg.MinUse {
		return nil, false
	}
	tCopy := g.appendCopy(f, tInfo)
	fCopy := g.appendCopy(f, fInfo)
	mCopy := g.appendCopy(f, mInfo)
	cur.TakenNext = tCopy.ID
	cur.FallNext = fCopy.ID
	tCopy.TakenNext = mCopy.ID
	fCopy.TakenNext = mCopy.ID
	return mCopy, true
}

// finishRegion discards degenerate regions (a single block with no
// internal edges conveys nothing to optimize) and materializes the
// region otherwise. Single-block loop regions are kept: a block
// branching back to itself is a legitimate loop.
func finishRegion(g *growth) *profile.Region {
	if len(g.blocks) <= 1 && g.kind != profile.RegionLoop {
		return nil
	}
	return g.region()
}

// ProbFunc supplies the taken-edge probability for a region block copy.
// Frozen-counter probabilities (the INIP view) come from
// RegionBlock.BranchProb; the NAVEP view substitutes AVEP probabilities
// for the same copies.
type ProbFunc func(rb *profile.RegionBlock) float64

// FrozenProb is the ProbFunc for the INIP view.
func FrozenProb(rb *profile.RegionBlock) float64 { return rb.BranchProb() }

// flow propagates entry frequency 1 through the region's internal edges
// in formation order (which is topological for regions built by Former:
// edges, except loop back edges, always point forward). It returns the
// frequency that arrived at each block and the mass that flowed along
// back edges into the entry (the dummy node of section 3.3).
func flow(r *profile.Region, prob ProbFunc) (freq map[int]float64, backMass float64, err error) {
	freq = make(map[int]float64, len(r.Blocks))
	index := make(map[int]int, len(r.Blocks))
	for i := range r.Blocks {
		index[r.Blocks[i].ID] = i
	}
	if _, ok := index[r.Entry]; !ok {
		return nil, 0, fmt.Errorf("region: entry %d not a member", r.Entry)
	}
	freq[r.Entry] = 1
	for i := range r.Blocks {
		rb := &r.Blocks[i]
		fq := freq[rb.ID]
		if fq == 0 {
			continue
		}
		var pTaken float64
		switch {
		case rb.HasBranch:
			pTaken = prob(rb)
		case rb.TakenNext != -1 || (rb.TakenTarget >= 0 && rb.FallTarget < 0):
			pTaken = 1 // unconditional jump edge
		default:
			pTaken = 0
		}
		route := func(next int, mass float64) error {
			if mass == 0 {
				return nil
			}
			if next == -1 {
				return nil // side exit or region end: mass leaves
			}
			if next == r.Entry {
				backMass += mass
				return nil
			}
			j, ok := index[next]
			if !ok {
				return fmt.Errorf("region %d: successor %d not a member", r.ID, next)
			}
			if j <= i {
				return fmt.Errorf("region %d: edge %d->%d violates formation order", r.ID, rb.ID, next)
			}
			freq[next] += mass
			return nil
		}
		if err := route(rb.TakenNext, fq*pTaken); err != nil {
			return nil, 0, err
		}
		if err := route(rb.FallNext, fq*(1-pTaken)); err != nil {
			return nil, 0, err
		}
	}
	return freq, backMass, nil
}

// CompletionProb computes the completion probability of a non-loop
// region under the given edge probabilities: the frequency reaching the
// region's last block when the entry executes once (section 3.2).
func CompletionProb(r *profile.Region, prob ProbFunc) (float64, error) {
	if r.Kind != profile.RegionTrace {
		return 0, fmt.Errorf("region: CompletionProb on %s region %d", r.Kind, r.ID)
	}
	if len(r.Blocks) == 0 {
		return 0, fmt.Errorf("region: empty region %d", r.ID)
	}
	freq, _, err := flow(r, prob)
	if err != nil {
		return 0, err
	}
	last := r.Blocks[len(r.Blocks)-1].ID
	return freq[last], nil
}

// LoopBackProb computes the loop-back probability of a loop region under
// the given edge probabilities: the mass flowing along back edges into a
// dummy node when the entry executes once (section 3.3).
func LoopBackProb(r *profile.Region, prob ProbFunc) (float64, error) {
	if r.Kind != profile.RegionLoop {
		return 0, fmt.Errorf("region: LoopBackProb on %s region %d", r.Kind, r.ID)
	}
	_, back, err := flow(r, prob)
	if err != nil {
		return 0, err
	}
	return back, nil
}
