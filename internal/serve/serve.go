// Package serve exposes the study pipeline as a long-running HTTP/JSON
// service ("study as a service"). One daemon process owns the expensive
// shared state — a bounded core.Scheduler for comparison units, the
// content-addressed result cache, a server-lifetime flight recorder —
// and requests from many clients are admitted into it instead of each
// invocation paying cold-start and fighting for the machine.
//
// Endpoints:
//
//	POST /v1/compare       one benchmark × threshold, synchronous
//	POST /v1/study         full-ladder study as an async job (202 + id)
//	GET  /v1/jobs          job listing
//	GET  /v1/jobs/{id}     job status (+ result when done)
//	GET  /v1/jobs/{id}/figures  figure JSON, byte-stable across resumes
//	GET  /v1/jobs/{id}/events   SSE progress stream
//	GET  /v1/metrics       Prometheus text exposition
//	GET  /healthz          process liveness
//	GET  /readyz           admission readiness (503 while draining)
//
// Admission control is deliberate and layered: at most MaxInflight
// compare requests execute concurrently, at most MaxQueue more may wait
// for a slot, and anything beyond that is rejected immediately with 429
// and a Retry-After hint rather than queued unboundedly. Every admitted
// request carries a deadline (its own timeout_ms or the server default)
// and times out with 504. Identical in-flight compares — same
// benchmark, threshold and scale, hence the same image, tape and engine
// fingerprint — are coalesced into one scheduler unit whose result
// every caller shares; with a result cache configured, a repeated
// compare is served warm, executing zero guest blocks.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/learned"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/resultcache"
	"repro/internal/spec"
	"repro/internal/study"
)

// Config configures a Server. The zero value of every field has a
// usable default.
type Config struct {
	// Scale is the default paper-unit scale for requests that do not
	// carry their own (default 1.0).
	Scale float64
	// Workers bounds the shared comparison scheduler and each study
	// job's pool (default GOMAXPROCS).
	Workers int
	// MaxInflight bounds concurrently-executing compare requests
	// (default 2×Workers).
	MaxInflight int
	// MaxQueue bounds compare requests waiting for an inflight slot;
	// arrivals beyond it get 429 (default 8; negative disables waiting
	// entirely, so anything beyond MaxInflight is rejected on arrival).
	MaxQueue int
	// MaxJobs bounds concurrently-running study jobs (default 1): a
	// full-ladder study saturates the machine on its own, so extra jobs
	// queue rather than thrash.
	MaxJobs int
	// DefaultTimeout is the per-request deadline when the request does
	// not set timeout_ms (default 2 minutes).
	DefaultTimeout time.Duration
	// StateDir, when non-empty, persists job records, per-job
	// checkpoints and finished results, making jobs resumable across
	// daemon restarts. Empty means jobs live and die with the process.
	StateDir string
	// Resume re-enqueues the non-terminal jobs found in StateDir at
	// startup; each resumed study restores its checkpoint and runs only
	// the missing benchmarks.
	Resume bool
	// Cache, when non-nil, memoizes unit results; warm compares execute
	// zero guest blocks.
	Cache *resultcache.Store
	// Trace, when non-nil, receives one flight-recorder event per
	// pipeline span across the server's whole lifetime — every compare
	// and every job shares it, which is exactly the Emit-after-Close
	// exposure the recorder's close gate exists for.
	Trace *obs.Recorder
}

func (c *Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Workers <= 0 {
		c.Workers = 0 // scheduler resolves to GOMAXPROCS
	}
	if c.MaxInflight <= 0 {
		w := c.Workers
		if w <= 0 {
			w = 1
		}
		c.MaxInflight = 2 * w
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 8
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
}

// Server is the study-as-a-service daemon state.
type Server struct {
	cfg   Config
	sched *core.Scheduler
	mux   *http.ServeMux
	start time.Time

	// Admission: inflight tokens plus a bounded wait counter.
	inflight chan struct{}
	queued   atomic.Int64

	// Coalescing: one flight per identical in-progress compare.
	flightMu sync.Mutex
	flights  map[string]*flight

	// exec performs one comparison; tests swap it to count and gate
	// executions without running the pipeline.
	exec func(key string, bench *spec.Benchmark, paperT, scale float64, predictors []string, samplePeriod uint64, learnedModel string) *compareOut

	// Mean compare duration, the Retry-After estimator's numerator.
	// Tests seed these directly to make the hint deterministic.
	compareDurNS    atomic.Int64
	compareDurCount atomic.Int64

	// Per-predictor accuracy totals across every compare this process
	// answered (cold or warm), exposed at /v1/metrics.
	predMu     sync.Mutex
	predTotals map[string]*predictTotals

	draining atomic.Bool
	jobs     *jobTable
	m        serverMetrics
	perf     perfTotals
}

// predictTotals accumulates one predictor's branch stream across
// compare requests.
type predictTotals struct {
	branches    uint64
	mispredicts uint64
}

// serverMetrics is the server's own accounting, exposed at /v1/metrics.
type serverMetrics struct {
	compareRequests  atomic.Uint64
	compareOK        atomic.Uint64
	compareOverload  atomic.Uint64 // 429s
	compareDeadline  atomic.Uint64 // 504s
	compareCoalesced atomic.Uint64 // served from another caller's flight
	compareWarm      atomic.Uint64 // zero guest blocks executed
	compareErrors    atomic.Uint64 // 5xx other than deadline
	studyRequests    atomic.Uint64
	guestBlocks      atomic.Uint64 // compare-side block executions

	// Sampled-profiling compare accounting (requests with sample_period):
	// how many ran, and their aggregate sampled vs full-instrumentation
	// counter-update volume — the numerator and denominator of the
	// exported cost-ratio gauge.
	sampledCompares atomic.Uint64
	sampledOps      atomic.Uint64
	sampledFullOps  atomic.Uint64

	// Learned-model compare accounting (requests with learned): how
	// many ran, and the aggregate held-out branch stream with its
	// learned and always-taken mispredict volumes.
	learnedCompares         atomic.Uint64
	learnedBranches         atomic.Uint64
	learnedMispredicts      atomic.Uint64
	learnedTakenMispredicts atomic.Uint64
}

// New builds a Server: opens (and, with Resume, re-enqueues) the job
// table and starts the shared scheduler. The caller serves
// s.Handler() and must call Drain before exit.
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	s := &Server{
		cfg:   cfg,
		sched: core.NewSchedulerPolicy(cfg.Workers, core.Degrade),
		start: time.Now(),

		inflight: make(chan struct{}, cfg.MaxInflight),
		flights:  make(map[string]*flight),

		predTotals: make(map[string]*predictTotals),
	}
	s.exec = s.runCompare
	jobs, err := openJobTable(cfg.StateDir, cfg.MaxJobs)
	if err != nil {
		return nil, err
	}
	s.jobs = jobs
	s.mux = http.NewServeMux()
	s.routes()
	if cfg.Resume {
		s.resumeJobs()
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/compare", s.handleCompare)
	s.mux.HandleFunc("POST /v1/study", s.handleStudy)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/figures", s.handleJobFigures)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() || s.sched.Stopped() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
}

// Drain begins a graceful shutdown: readiness drops, new work is
// rejected, running study jobs are stopped through their cooperative
// Stop channels (flushing their checkpoints), and Drain blocks until
// every job goroutine has retired or the deadline passes. In-flight
// compare requests are left to finish; the HTTP server's own Shutdown
// waits for those handlers.
func (s *Server) Drain(timeout time.Duration) error {
	s.draining.Store(true)
	s.jobs.stopAll()
	done := make(chan struct{})
	go func() {
		s.jobs.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("serve: drain timed out after %v", timeout)
	}
}

// errorJSON writes a {"error": ...} body with the given status.
func errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// admit applies the admission layer: an immediate inflight slot if one
// is free, a bounded wait otherwise, 429 when the wait line is full,
// 504 when the request's deadline expires first. On success the
// returned release must be called exactly once.
func (s *Server) admit(r *http.Request) (release func(), status int) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable
	}
	select {
	case s.inflight <- struct{}{}:
		return func() { <-s.inflight }, 0
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, http.StatusTooManyRequests
	}
	defer s.queued.Add(-1)
	select {
	case s.inflight <- struct{}{}:
		return func() { <-s.inflight }, 0
	case <-r.Context().Done():
		return nil, http.StatusGatewayTimeout
	}
}

// retryAfterSeconds estimates when a rejected caller should come back:
// the current backlog (occupied inflight slots plus the wait line)
// times the mean compare duration, spread over the parallel slots,
// rounded up to whole seconds and clamped to [1, 60]. The estimate is
// always inside that documented interval — never 0, even on a fresh
// server that has completed no compare (the mean defaults to one
// second, reproducing the old fixed hint) or a server whose config
// bypassed defaults() with zero inflight slots (the divisor is clamped
// to 1, not divided through). Deterministic given the duration totals,
// which tests seed directly.
func (s *Server) retryAfterSeconds() int {
	mean := time.Second
	if n := s.compareDurCount.Load(); n > 0 {
		mean = time.Duration(s.compareDurNS.Load() / n)
	}
	backlog := int64(len(s.inflight)) + s.queued.Load()
	if backlog < 1 {
		backlog = 1
	}
	slots := s.cfg.MaxInflight
	if slots < 1 {
		slots = 1
	}
	est := time.Duration(backlog) * mean / time.Duration(slots)
	secs := int64((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return int(secs)
}

// compareRequest is the POST /v1/compare body.
type compareRequest struct {
	// Bench is the benchmark name (spec suite).
	Bench string `json:"bench"`
	// T is the retranslation threshold in paper units.
	T float64 `json:"t"`
	// Scale overrides the server's default paper-unit scale.
	Scale float64 `json:"scale,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Predictors selects dynamic branch predictors to run over the
	// benchmark's reference trace (see internal/predict). Empty keeps
	// the response byte-identical to requests made before the field
	// existed.
	Predictors []string `json:"predictors,omitempty"`
	// SamplePeriod, when > 0, additionally reruns the comparison with
	// sampled profiling at that period (dbt.Config.SamplePeriod) and
	// reports the sampled summary plus its measured profiling-cost ratio.
	// Zero (the default) keeps the response byte-identical to requests
	// made before the field existed.
	SamplePeriod uint64 `json:"sample_period,omitempty"`
	// Learned, when non-empty, selects the profile-free learned static
	// branch model family ("logreg" or "tree") to score on this
	// benchmark held-out: the model trains on the rest of the suite's
	// reference collections (warmed through the shared result cache)
	// and never sees any profile of the requested benchmark. Empty (the
	// default) keeps the response byte-identical to requests made
	// before the field existed.
	Learned string `json:"learned,omitempty"`
}

// summaryWire is metrics.Summary with JSON names pinned: the struct in
// internal/metrics is a computation type without tags, and the wire
// shape must not drift when it grows fields.
type summaryWire struct {
	SdBP       float64 `json:"sd_bp"`
	BPMismatch float64 `json:"bp_mismatch"`
	HasRegions bool    `json:"has_regions"`
	SdCP       float64 `json:"sd_cp,omitempty"`
	SdLP       float64 `json:"sd_lp,omitempty"`
	LPMismatch float64 `json:"lp_mismatch,omitempty"`
	Blocks     int     `json:"blocks"`
	Traces     int     `json:"traces,omitempty"`
	Loops      int     `json:"loops,omitempty"`
}

func toWire(m metrics.Summary) summaryWire {
	return summaryWire{
		SdBP:       m.SdBP,
		BPMismatch: m.BPMismatch,
		HasRegions: m.HasRegions,
		SdCP:       m.SdCP,
		SdLP:       m.SdLP,
		LPMismatch: m.LPMismatch,
		Blocks:     m.Blocks,
		Traces:     m.Traces,
		Loops:      m.Loops,
	}
}

// compareResponse is the POST /v1/compare body on success. It contains
// only result data — everything volatile per-invocation (guest blocks
// executed, cache temperature, coalescing role) travels in X-Inipd-*
// headers — so a warm response is byte-identical to the cold one that
// seeded the cache.
type compareResponse struct {
	Bench      string             `json:"bench"`
	Class      string             `json:"class"`
	Scale      float64            `json:"scale"`
	TPaper     float64            `json:"t_paper"`
	TEffective uint64             `json:"t_effective"`
	Summary    summaryWire        `json:"summary"`
	Train      summaryWire        `json:"train"`
	Failures   []core.UnitFailure `json:"failures,omitempty"`
	// Predictors carries the dynamic-predictor tallies in request
	// order; omitted entirely without a predictor selection, keeping
	// legacy responses byte-identical.
	Predictors []predictorWire `json:"predictors,omitempty"`
	// SamplePeriod echoes the request's sampled-profiling period and
	// Sampled carries the sampled rerun; both are omitted entirely
	// without the request field, keeping legacy responses byte-identical.
	SamplePeriod uint64       `json:"sample_period,omitempty"`
	Sampled      *sampledWire `json:"sampled,omitempty"`
	// Learned carries the held-out learned-model evaluation; omitted
	// entirely without the request field, keeping legacy responses
	// byte-identical.
	Learned *learnedWire `json:"learned,omitempty"`
}

// learnedWire is the held-out learned-model evaluation on the wire:
// the requested benchmark's branch stream scored by a model trained on
// every other suite benchmark's reference collection.
type learnedWire struct {
	Fingerprint      string  `json:"fingerprint"`
	Branches         uint64  `json:"branches"`
	Mispredicts      uint64  `json:"mispredicts"`
	MispredictRate   float64 `json:"mispredict_rate"`
	TakenMispredicts uint64  `json:"taken_mispredicts"`
	// TrainBenchmarks counts the corpus the model trained on (the suite
	// minus the requested benchmark).
	TrainBenchmarks int `json:"train_benchmarks"`
}

// sampledWire is the sampled-profiling rerun on the wire: the same
// comparison re-measured with counters updated only every Nth block
// event, plus its measured profiling cost against the
// full-instrumentation run.
type sampledWire struct {
	Summary summaryWire `json:"summary"`
	// ProfilingOps counts the sampled run's actual counter updates and
	// FullProfilingOps the full-instrumentation run's; CostRatio is
	// their quotient (0 when the full run performed none, never NaN) and
	// SdBPDelta the accuracy price (sampled minus full Sd.BP).
	ProfilingOps     uint64  `json:"profiling_ops"`
	FullProfilingOps uint64  `json:"full_profiling_ops"`
	CostRatio        float64 `json:"cost_ratio"`
	SdBPDelta        float64 `json:"sd_bp_delta"`
}

// predictorWire is one predictor tally on the wire.
type predictorWire struct {
	Predictor      string  `json:"predictor"`
	Branches       uint64  `json:"branches"`
	Mispredicts    uint64  `json:"mispredicts"`
	MispredictRate float64 `json:"mispredict_rate"`
}

// compareOut is one flight's outcome, shared by every coalesced caller.
type compareOut struct {
	status int
	errMsg string
	body   []byte
	blocks uint64
}

// flight is one in-progress comparison; followers wait on done and
// share out.
type flight struct {
	done chan struct{}
	out  *compareOut
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	s.m.compareRequests.Add(1)
	var req compareRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	bench := spec.ByName(strings.TrimSpace(req.Bench))
	if bench == nil {
		errorJSON(w, http.StatusBadRequest, "unknown benchmark %q", req.Bench)
		return
	}
	if req.T <= 0 {
		errorJSON(w, http.StatusBadRequest, "threshold t must be positive, got %v", req.T)
		return
	}
	if len(req.Predictors) > 0 {
		if _, err := predict.NewSuite(req.Predictors); err != nil {
			errorJSON(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if req.Learned != "" {
		if err := (learned.Config{Model: req.Learned}).Validate(); err != nil {
			errorJSON(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	scale := req.Scale
	if scale <= 0 {
		scale = s.cfg.Scale
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	r = r.WithContext(ctx)

	release, status := s.admit(r)
	switch status {
	case 0:
		defer release()
	case http.StatusTooManyRequests:
		s.m.compareOverload.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		errorJSON(w, status, "server at capacity (%d inflight, %d queued)", s.cfg.MaxInflight, s.cfg.MaxQueue)
		return
	case http.StatusGatewayTimeout:
		s.m.compareDeadline.Add(1)
		errorJSON(w, status, "deadline expired while queued for admission")
		return
	default:
		errorJSON(w, status, "draining")
		return
	}

	// Coalesce identical in-flight work: the key pins everything that
	// determines the result (benchmark → image+tape, threshold →
	// engine config, scale → ladder clamp, predictor list → response
	// tail), so sharing is safe. Predictor-less requests keep the
	// legacy key shape.
	key := fmt.Sprintf("%s|t=%g|scale=%g", bench.Name, req.T, scale)
	if len(req.Predictors) > 0 {
		key += "|bp=" + strings.Join(req.Predictors, ",")
	}
	if req.SamplePeriod > 0 {
		key += fmt.Sprintf("|sp=%d", req.SamplePeriod)
	}
	if req.Learned != "" {
		key += "|ls=" + (learned.Config{Model: req.Learned}).Fingerprint()
	}
	s.flightMu.Lock()
	f, follower := s.flights[key]
	if !follower {
		f = &flight{done: make(chan struct{})}
		s.flights[key] = f
	}
	s.flightMu.Unlock()

	if follower {
		s.m.compareCoalesced.Add(1)
	} else {
		go func() {
			execStart := time.Now()
			f.out = s.exec(key, bench, req.T, scale, req.Predictors, req.SamplePeriod, req.Learned)
			s.compareDurNS.Add(int64(time.Since(execStart)))
			s.compareDurCount.Add(1)
			s.flightMu.Lock()
			delete(s.flights, key)
			s.flightMu.Unlock()
			close(f.done)
		}()
	}

	select {
	case <-f.done:
	case <-r.Context().Done():
		// The flight keeps running: its result still lands in the
		// cache and serves any follower with a longer deadline.
		s.m.compareDeadline.Add(1)
		errorJSON(w, http.StatusGatewayTimeout, "deadline expired after %v", timeout)
		return
	}
	out := f.out

	role := "leader"
	if follower {
		role = "follower"
	}
	w.Header().Set("X-Inipd-Coalesced", role)
	w.Header().Set("X-Inipd-Guest-Blocks", fmt.Sprintf("%d", out.blocks))
	switch {
	case s.cfg.Cache == nil:
		w.Header().Set("X-Inipd-Cache", "off")
	case out.blocks == 0:
		w.Header().Set("X-Inipd-Cache", "hit")
		s.m.compareWarm.Add(1)
	default:
		w.Header().Set("X-Inipd-Cache", "miss")
	}
	if out.status != http.StatusOK {
		s.m.compareErrors.Add(1)
		errorJSON(w, out.status, "%s", out.errMsg)
		return
	}
	s.m.compareOK.Add(1)
	s.m.guestBlocks.Add(out.blocks)
	w.Header().Set("Content-Type", "application/json")
	w.Write(out.body)
}

// runCompare executes one benchmark × threshold comparison on the
// shared scheduler and renders the canonical response body. It runs to
// completion regardless of any caller's deadline — abandoning it would
// waste the work the cache is about to keep.
func (s *Server) runCompare(_ string, bench *spec.Benchmark, paperT, scale float64, predictors []string, samplePeriod uint64, learnedModel string) *compareOut {
	eff := study.EffectiveThreshold(paperT, scale)
	var timing core.Timing
	opts := core.Options{
		Thresholds: []uint64{eff},
		Perf:       true,
		Timing:     &timing,
		Trace:      s.cfg.Trace,
		Cache:      s.cfg.Cache,
		Predictors: predictors,
		// Must match the study's context format exactly, so the daemon
		// and the CLI share cache entries for the same work.
		CacheContext: fmt.Sprintf("scale=%g", scale),
	}
	if samplePeriod > 0 {
		opts.SamplePeriods = []uint64{samplePeriod}
	}
	var learnedCfg *learned.Config
	if learnedModel != "" {
		learnedCfg = &learned.Config{Model: learnedModel}
		opts.Learned = learnedCfg
	}
	done := make(chan *core.BenchmarkResult, 1)
	core.ScheduleBenchmark(s.sched, bench.Target(scale), opts, func(r *core.BenchmarkResult) {
		done <- r
	})
	var res *core.BenchmarkResult
	select {
	case res = <-done:
	case <-s.sched.Done():
		// The shared pool is gone (a defect escaped a unit wrapper);
		// nothing will complete this flight.
		return &compareOut{status: http.StatusServiceUnavailable, errMsg: "comparison scheduler stopped"}
	}
	resp := compareResponse{
		Bench:      bench.Name,
		Class:      bench.Class.String(),
		Scale:      scale,
		TPaper:     paperT,
		TEffective: eff,
		Train:      toWire(res.Train),
		Failures:   res.Failures,
	}
	if len(res.Results) == 1 {
		resp.Summary = toWire(res.Results[0].Summary)
	}
	if len(res.Predictors) > 0 {
		resp.Predictors = make([]predictorWire, len(res.Predictors))
		for i, p := range res.Predictors {
			resp.Predictors[i] = predictorWire{
				Predictor:      p.Predictor,
				Branches:       p.Branches,
				Mispredicts:    p.Mispredicts,
				MispredictRate: p.MispredictRate(),
			}
		}
		s.recordPredictors(res.Predictors)
	}
	if samplePeriod > 0 && len(res.Sampling) == 1 && len(res.Sampling[0].PerT) == 1 && len(res.Results) == 1 {
		sp := res.Sampling[0].PerT[0]
		sw := &sampledWire{
			Summary:          toWire(sp.Summary),
			ProfilingOps:     sp.ProfilingOps,
			FullProfilingOps: res.Results[0].ProfilingOps,
			SdBPDelta:        sp.Summary.SdBP - res.Results[0].Summary.SdBP,
		}
		if sw.FullProfilingOps > 0 {
			sw.CostRatio = float64(sw.ProfilingOps) / float64(sw.FullProfilingOps)
		}
		resp.SamplePeriod = samplePeriod
		resp.Sampled = sw
		s.recordSampled(sw)
	}
	if learnedCfg != nil && res.Learned != nil {
		lw, err := s.learnedCompare(bench, scale, *learnedCfg, res.Learned, &timing)
		if err != nil {
			return &compareOut{status: http.StatusInternalServerError, errMsg: err.Error()}
		}
		resp.Learned = lw
		s.recordLearned(lw)
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return &compareOut{status: http.StatusInternalServerError, errMsg: err.Error()}
	}
	return &compareOut{
		status: http.StatusOK,
		body:   append(body, '\n'),
		blocks: timing.BlocksExecuted.Load(),
	}
}

// learnedCompare scores the requested benchmark's reference collection
// with a model trained on every other suite benchmark at the same
// scale — strictly held-out, exactly the study's leave-one-out fold for
// this benchmark. Corpus collections go through core.CollectLearnedData,
// which shares the study pipeline's `ls` cache entries, so a warm
// corpus executes zero guest blocks; timing accumulates any cold
// collection's block count into the response's guest-block header.
func (s *Server) learnedCompare(bench *spec.Benchmark, scale float64, lcfg learned.Config, data *learned.BenchData, timing *core.Timing) (*learnedWire, error) {
	opts := core.Options{
		Timing:       timing,
		Trace:        s.cfg.Trace,
		Cache:        s.cfg.Cache,
		CacheContext: fmt.Sprintf("scale=%g", scale),
	}
	var corpus []learned.BenchData
	for _, b := range spec.Suite() {
		if b.Name == bench.Name {
			continue
		}
		d, err := core.CollectLearnedData(b.Target(scale), lcfg, opts)
		if err != nil {
			return nil, fmt.Errorf("learned corpus %s: %w", b.Name, err)
		}
		corpus = append(corpus, *d)
	}
	m, err := learned.Train(lcfg, corpus)
	if err != nil {
		return nil, fmt.Errorf("learned fit: %w", err)
	}
	ev := learned.Eval(m, data)
	return &learnedWire{
		Fingerprint:      lcfg.Fingerprint(),
		Branches:         ev.Branches,
		Mispredicts:      ev.Mispredicts,
		MispredictRate:   ev.Rate(),
		TakenMispredicts: ev.TakenMispredicts,
		TrainBenchmarks:  len(corpus),
	}, nil
}

// recordLearned folds one held-out learned compare into the
// process-lifetime totals behind /v1/metrics. Warm compares count too:
// their collections come out of the result cache fully populated.
func (s *Server) recordLearned(lw *learnedWire) {
	s.m.learnedCompares.Add(1)
	s.m.learnedBranches.Add(lw.Branches)
	s.m.learnedMispredicts.Add(lw.Mispredicts)
	s.m.learnedTakenMispredicts.Add(lw.TakenMispredicts)
}

// recordSampled folds one sampled compare into the process-lifetime
// totals behind /v1/metrics. Warm compares count too: their sampled
// ladders come out of the result cache fully populated.
func (s *Server) recordSampled(sw *sampledWire) {
	s.m.sampledCompares.Add(1)
	s.m.sampledOps.Add(sw.ProfilingOps)
	s.m.sampledFullOps.Add(sw.FullProfilingOps)
}

// recordPredictors folds one compare's predictor tallies into the
// process-lifetime totals behind /v1/metrics. Warm compares count too:
// their tallies come out of the result cache fully populated.
func (s *Server) recordPredictors(results []predict.Result) {
	s.predMu.Lock()
	for _, p := range results {
		t := s.predTotals[p.Predictor]
		if t == nil {
			t = &predictTotals{}
			s.predTotals[p.Predictor] = t
		}
		t.branches += p.Branches
		t.mispredicts += p.Mispredicts
	}
	s.predMu.Unlock()
}
