package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// writeJobs renders records the way persist does, then lets the caller
// mangle the bytes before they land in dir/jobs.json.
func writeJobs(t *testing.T, dir string, recs []jobRecord, mangle func([]byte) []byte) {
	t.Helper()
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if mangle != nil {
		data = mangle(data)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func threeRecords() []jobRecord {
	return []jobRecord{
		{ID: "job-1", State: JobDone, CreatedUnix: 100, FinishedUnix: 110},
		{ID: "job-2", State: JobStopped, CreatedUnix: 120},
		{ID: "job-3", State: JobQueued, CreatedUnix: 130},
	}
}

// TestJobTableSalvagesCorruptTail is the crash-mid-write regression:
// jobs.json truncated inside its last record (the shape a non-atomic
// copy or disk fault produces) must not fail startup — the leading
// records load, the damage is counted, and the table keeps working.
func TestJobTableSalvagesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	writeJobs(t, dir, threeRecords(), func(data []byte) []byte {
		// Cut mid-way through the third record.
		cut := strings.LastIndex(string(data), `"job-3"`) + len(`"job-3"`) + 3
		return data[:cut]
	})
	tbl, err := openJobTable(dir, 1)
	if err != nil {
		t.Fatalf("truncated jobs.json failed startup: %v", err)
	}
	if tbl.recordsDropped != 1 {
		t.Fatalf("recordsDropped = %d, want 1", tbl.recordsDropped)
	}
	recs := tbl.list()
	if len(recs) != 2 || recs[0].ID != "job-1" || recs[1].ID != "job-2" {
		t.Fatalf("salvaged records = %+v, want job-1 and job-2", recs)
	}
	// The salvaged stopped job is still resumable, and new IDs continue
	// past the survivors.
	if !recs[1].State.resumable() {
		t.Fatalf("job-2 state %s lost resumability", recs[1].State)
	}
	if j := tbl.create(studyRequest{}); j.rec.ID != "job-3" {
		t.Fatalf("next id = %s, want job-3 (sequence continues from survivors)", j.rec.ID)
	}
}

// TestJobTableCorruptVariants covers the rest of the damage matrix:
// clean files and empty files drop nothing; total garbage and a
// non-array document salvage to an empty table instead of failing.
func TestJobTableCorruptVariants(t *testing.T) {
	cases := []struct {
		name    string
		data    string
		recs    int
		dropped uint64
	}{
		{"empty", "", 0, 0},
		{"whitespace", "\n  \n", 0, 0},
		{"garbage", "not json at all", 0, 1},
		{"non-array", `{"id":"job-1"}`, 0, 1},
		{"empty-array", "[]\n", 0, 0},
		{"first-record-corrupt", `[{"id":`, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "jobs.json"), []byte(tc.data), 0o644); err != nil {
				t.Fatal(err)
			}
			tbl, err := openJobTable(dir, 1)
			if err != nil {
				t.Fatalf("startup failed: %v", err)
			}
			if got := len(tbl.list()); got != tc.recs {
				t.Fatalf("records = %d, want %d", got, tc.recs)
			}
			if tbl.recordsDropped != tc.dropped {
				t.Fatalf("recordsDropped = %d, want %d", tbl.recordsDropped, tc.dropped)
			}
		})
	}

	// An intact file stays lossless.
	dir := t.TempDir()
	writeJobs(t, dir, threeRecords(), nil)
	tbl, err := openJobTable(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.list()) != 3 || tbl.recordsDropped != 0 {
		t.Fatalf("clean load: %d records, %d dropped", len(tbl.list()), tbl.recordsDropped)
	}
}

// TestJobRecordsDroppedMetric: the salvage count reaches /v1/metrics.
func TestJobRecordsDroppedMetric(t *testing.T) {
	dir := t.TempDir()
	writeJobs(t, dir, threeRecords(), func(data []byte) []byte {
		return data[:len(data)-20]
	})
	s, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(0)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := httpGetBody(t, srv.URL+"/v1/metrics")
	if !strings.Contains(body, "inipd_job_records_dropped_total 1") {
		t.Fatalf("metrics missing dropped-records counter:\n%s", body)
	}
}
