package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/study"
)

// perfTotals accumulates study.Perf aggregates over every job this
// process finished; /v1/metrics exposes them as monotonic counters.
type perfTotals struct {
	mu             sync.Mutex
	jobs           uint64
	wallSeconds    float64
	blocksExecuted uint64
	unitFailures   uint64
	unitRetries    uint64
	resumedSeries  uint64
	// Hot-loop engine counters (see dbt.RunStats): the fast/generic
	// dispatch split, translation-cache probes, and the wall-clock the
	// jobs spent inside run units — the denominator of the exported
	// blocks-per-second gauge.
	fastDispatches    uint64
	genericDispatches uint64
	cacheLookups      uint64
	runSeconds        float64
	// Sampled-profiling accounting: sampled ladder units executed and
	// their actual (sampled, unscaled) counter updates across finished
	// jobs. Zero — and absent from the exposition — unless some job ran
	// with sample_periods.
	sampledUnits        uint64
	sampledProfilingOps uint64
}

// recordJobPerf folds one finished job's Perf into the totals.
func (s *Server) recordJobPerf(p study.Perf) {
	t := &s.perf
	t.mu.Lock()
	t.jobs++
	t.wallSeconds += p.WallSeconds
	t.blocksExecuted += p.BlocksExecuted
	t.unitFailures += uint64(p.UnitFailures)
	t.unitRetries += uint64(p.UnitRetries)
	t.resumedSeries += uint64(p.ResumedSeries)
	t.fastDispatches += p.FastDispatches
	t.genericDispatches += p.GenericDispatches
	t.cacheLookups += p.CacheLookups
	t.runSeconds += p.RefRunSeconds + p.TrainSeconds
	t.sampledUnits += uint64(p.SampledUnits)
	t.sampledProfilingOps += p.SampledProfilingOps
	t.mu.Unlock()
}

// handleMetrics renders the Prometheus text exposition format (0.0.4):
// the server's own admission/coalescing counters, the aggregated
// study.Perf of finished jobs, result-cache and flight-recorder
// accounting, and job-state gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder

	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	ready := 1
	if s.draining.Load() || s.sched.Stopped() {
		ready = 0
	}
	gauge("inipd_ready", "1 while the daemon admits new work", ready)
	gauge("inipd_uptime_seconds", "seconds since the daemon started", fmt.Sprintf("%.3f", time.Since(s.start).Seconds()))
	gauge("inipd_scheduler_workers", "size of the shared comparison worker pool", s.sched.Workers())

	counter("inipd_compare_requests_total", "POST /v1/compare requests received", s.m.compareRequests.Load())
	counter("inipd_compare_ok_total", "compare requests answered 200", s.m.compareOK.Load())
	counter("inipd_compare_overload_total", "compare requests rejected 429 at admission", s.m.compareOverload.Load())
	counter("inipd_compare_deadline_total", "compare requests expired 504", s.m.compareDeadline.Load())
	counter("inipd_compare_coalesced_total", "compare requests served from another caller's in-flight work", s.m.compareCoalesced.Load())
	counter("inipd_compare_warm_total", "compare responses served with zero guest blocks executed", s.m.compareWarm.Load())
	counter("inipd_compare_errors_total", "compare requests answered 5xx (excluding deadlines)", s.m.compareErrors.Load())
	counter("inipd_compare_guest_blocks_total", "guest blocks executed by compare requests", s.m.guestBlocks.Load())
	counter("inipd_study_requests_total", "POST /v1/study requests received", s.m.studyRequests.Load())
	counter("inipd_job_records_dropped_total", "corrupt jobs.json tails salvaged at startup (leading records kept)", s.jobs.recordsDropped)

	s.perf.mu.Lock()
	jobs, wall, blocks := s.perf.jobs, s.perf.wallSeconds, s.perf.blocksExecuted
	fails, retries, resumed := s.perf.unitFailures, s.perf.unitRetries, s.perf.resumedSeries
	fast, generic, lookups := s.perf.fastDispatches, s.perf.genericDispatches, s.perf.cacheLookups
	runSecs := s.perf.runSeconds
	sampledUnits, sampledStudyOps := s.perf.sampledUnits, s.perf.sampledProfilingOps
	s.perf.mu.Unlock()
	counter("inipd_study_jobs_finished_total", "study jobs completed by this process", jobs)
	counter("inipd_study_wall_seconds_total", "summed wall-clock of finished study jobs", fmt.Sprintf("%.3f", wall))
	counter("inipd_study_guest_blocks_total", "guest blocks executed by finished study jobs", blocks)
	counter("inipd_study_unit_failures_total", "absorbed unit failures across finished jobs", fails)
	counter("inipd_study_unit_retries_total", "unit retry attempts across finished jobs", retries)
	counter("inipd_study_resumed_series_total", "benchmark series restored from checkpoints instead of re-executed", resumed)
	counter("inipd_study_fast_dispatches_total", "blocks executed through the pre-lowered arena fast path", fast)
	counter("inipd_study_generic_dispatches_total", "blocks executed through the generic interp dispatch", generic)
	counter("inipd_study_cache_lookups_total", "translation-cache probes (successor threading keeps this below the block count)", lookups)
	bps := 0.0
	if runSecs > 0 {
		bps = float64(blocks) / runSecs
	}
	gauge("inipd_study_blocks_per_second", "hot-loop throughput: guest blocks over run-unit wall-clock of finished jobs", fmt.Sprintf("%.1f", bps))

	s.predMu.Lock()
	predNames := make([]string, 0, len(s.predTotals))
	for name := range s.predTotals {
		predNames = append(predNames, name)
	}
	sort.Strings(predNames)
	type predRow struct {
		name                  string
		branches, mispredicts uint64
	}
	predRows := make([]predRow, len(predNames))
	for i, name := range predNames {
		t := s.predTotals[name]
		predRows[i] = predRow{name, t.branches, t.mispredicts}
	}
	s.predMu.Unlock()
	if len(predRows) > 0 {
		fmt.Fprintf(&b, "# HELP inipd_predictor_branches_total branches observed per dynamic predictor across compare requests\n# TYPE inipd_predictor_branches_total counter\n")
		for _, row := range predRows {
			fmt.Fprintf(&b, "inipd_predictor_branches_total{predictor=%q} %d\n", row.name, row.branches)
		}
		fmt.Fprintf(&b, "# HELP inipd_predictor_mispredicts_total mispredictions per dynamic predictor across compare requests\n# TYPE inipd_predictor_mispredicts_total counter\n")
		for _, row := range predRows {
			fmt.Fprintf(&b, "inipd_predictor_mispredicts_total{predictor=%q} %d\n", row.name, row.mispredicts)
		}
		// Guarded like blocks-per-second: an empty branch stream (a
		// degenerate benchmark, never a warm hit — tallies replay fully
		// populated) exports 0, not NaN.
		fmt.Fprintf(&b, "# HELP inipd_predictor_mispredict_rate mispredict rate per dynamic predictor across compare requests\n# TYPE inipd_predictor_mispredict_rate gauge\n")
		for _, row := range predRows {
			rate := 0.0
			if row.branches > 0 {
				rate = float64(row.mispredicts) / float64(row.branches)
			}
			fmt.Fprintf(&b, "inipd_predictor_mispredict_rate{predictor=%q} %.6f\n", row.name, rate)
		}
	}

	// Sampled-profiling accounting, emitted only once some sampled work
	// ran — a sampling-less process keeps the legacy exposition
	// byte-identical.
	if sc := s.m.sampledCompares.Load(); sc > 0 {
		counter("inipd_compare_sampled_total", "compare requests that ran a sampled-profiling rerun", sc)
		sOps, fOps := s.m.sampledOps.Load(), s.m.sampledFullOps.Load()
		counter("inipd_sampled_profiling_ops_total", "counter updates performed by sampled compare reruns", sOps)
		counter("inipd_sampled_full_profiling_ops_total", "counter updates performed by the matching full-instrumentation runs", fOps)
		// Guarded like blocks-per-second: a full ladder with zero
		// profiling operations exports 0, not NaN.
		ratio := 0.0
		if fOps > 0 {
			ratio = float64(sOps) / float64(fOps)
		}
		gauge("inipd_sampled_cost_ratio", "aggregate sampled over full-instrumentation counter-update ratio of compare reruns", fmt.Sprintf("%.6f", ratio))
	}
	// Learned-model accounting, same emit-only-when-used contract.
	if lc := s.m.learnedCompares.Load(); lc > 0 {
		counter("inipd_learned_compares_total", "compare requests that scored the held-out learned static model", lc)
		branches := s.m.learnedBranches.Load()
		mis := s.m.learnedMispredicts.Load()
		takenMis := s.m.learnedTakenMispredicts.Load()
		counter("inipd_learned_branches_total", "held-out branches scored by the learned model across compare requests", branches)
		counter("inipd_learned_mispredicts_total", "held-out learned-model mispredictions across compare requests", mis)
		counter("inipd_learned_taken_mispredicts_total", "always-taken baseline mispredictions on the same held-out streams", takenMis)
		// Guarded like blocks-per-second: an empty stream exports 0, not NaN.
		rate := 0.0
		if branches > 0 {
			rate = float64(mis) / float64(branches)
		}
		gauge("inipd_learned_mispredict_rate", "aggregate held-out learned-model mispredict rate", fmt.Sprintf("%.6f", rate))
	}
	if sampledUnits > 0 {
		counter("inipd_study_sampled_units_total", "sampled-profiling ladder units executed by finished study jobs", sampledUnits)
		counter("inipd_study_sampled_profiling_ops_total", "counter updates performed by sampled study units (actual sampled events, not scaled)", sampledStudyOps)
	}

	states := map[JobState]int{}
	for _, rec := range s.jobs.list() {
		states[rec.State]++
	}
	fmt.Fprintf(&b, "# HELP inipd_jobs current jobs by state\n# TYPE inipd_jobs gauge\n")
	keys := make([]string, 0, len(states))
	for st := range states {
		keys = append(keys, string(st))
	}
	sort.Strings(keys)
	for _, st := range keys {
		fmt.Fprintf(&b, "inipd_jobs{state=%q} %d\n", st, states[JobState(st)])
	}

	if s.cfg.Cache != nil {
		c := s.cfg.Cache.Counters()
		counter("inipd_result_cache_hits_total", "validated result-cache hits", c.Hits)
		counter("inipd_result_cache_misses_total", "result-cache misses", c.Misses)
		counter("inipd_result_cache_stores_total", "result-cache entry writes", c.Stores)
		counter("inipd_result_cache_errors_total", "rejected entries and surfaced write failures", c.Errors)
		counter("inipd_result_cache_heal_failures_total", "writes demoted after the cache latched read-only", c.HealFailures)
		ro := 0
		if s.cfg.Cache.ReadOnly() {
			ro = 1
		}
		gauge("inipd_result_cache_read_only", "1 after the cache demoted itself to read-only", ro)
	}
	if s.cfg.Trace != nil {
		counter("inipd_trace_dropped_events_total", "flight-recorder events dropped (overflow or post-close)", s.cfg.Trace.Dropped())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
