package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/study"
)

// JobState is the lifecycle of one async study job.
type JobState string

const (
	// JobQueued: accepted, waiting for a job slot.
	JobQueued JobState = "queued"
	// JobRunning: study.Run is executing.
	JobRunning JobState = "running"
	// JobDone: completed; figures and perf are available.
	JobDone JobState = "done"
	// JobStopped: drained cooperatively mid-run (stop_after); the
	// checkpoint holds the finished benchmarks and a -resume restart
	// re-enqueues it.
	JobStopped JobState = "stopped"
	// JobInterrupted: the daemon went down (drain or kill) before the
	// job finished; resumable like JobStopped.
	JobInterrupted JobState = "interrupted"
	// JobFailed: study.Run returned a hard error.
	JobFailed JobState = "failed"
)

// terminal reports whether the state is final for this daemon process.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobStopped || s == JobInterrupted || s == JobFailed
}

// resumable reports whether a -resume restart should re-enqueue the
// job: anything not finished and not failed, including records left in
// queued/running by an uncontrolled kill.
func (s JobState) resumable() bool {
	return s == JobQueued || s == JobRunning || s == JobStopped || s == JobInterrupted
}

// studyRequest is the POST /v1/study body.
type studyRequest struct {
	// Scale overrides the server default.
	Scale float64 `json:"scale,omitempty"`
	// Benches selects a suite subset (default: full suite).
	Benches []string `json:"benches,omitempty"`
	// StopAfter stops the study gracefully after that many benchmark
	// completions — the deterministic drain hook tests and the CI
	// kill-and-resume smoke use. It is a one-shot interruption aid:
	// a resumed job ignores it and runs to completion.
	StopAfter int `json:"stop_after,omitempty"`
	// IndependentRuns disables the shared-trace reference execution.
	IndependentRuns bool `json:"independent_runs,omitempty"`
}

// jobRecord is the persisted job state (StateDir/jobs.json).
type jobRecord struct {
	ID      string       `json:"id"`
	State   JobState     `json:"state"`
	Request studyRequest `json:"request"`
	Error   string       `json:"error,omitempty"`
	// Resumed marks a job re-enqueued from a previous daemon's state.
	Resumed bool `json:"resumed,omitempty"`
	// Benchmarks restored from the checkpoint instead of re-executed
	// (filled on completion of a resumed job).
	ResumedSeries int   `json:"resumed_series,omitempty"`
	CreatedUnix   int64 `json:"created_unix"`
	FinishedUnix  int64 `json:"finished_unix,omitempty"`
}

// jobResult is the persisted outcome of a finished job
// (StateDir/<id>.result.json). Figures are deterministic data — a
// resumed job's figures are byte-identical to an uninterrupted run's.
type jobResult struct {
	Figures  []study.Figure     `json:"figures"`
	Perf     study.Perf         `json:"perf"`
	Failures []core.UnitFailure `json:"failures,omitempty"`
}

// job is the in-memory job state: the record plus the live machinery —
// stop channel, progress lines, SSE subscribers.
type job struct {
	mu     sync.Mutex
	rec    jobRecord
	stop   chan struct{}
	closed bool // stop already closed
	lines  []string
	subs   map[chan string]struct{}
	result *jobResult
}

// requestStop closes the job's cooperative stop channel once.
func (j *job) requestStop() {
	j.mu.Lock()
	if !j.closed {
		j.closed = true
		close(j.stop)
	}
	j.mu.Unlock()
}

// Write implements io.Writer for study.Config.Progress: complete lines
// are appended to the job's log and fanned out to SSE subscribers.
// Partial trailing data is carried until its newline arrives.
func (j *job) Write(p []byte) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, line := range strings.Split(strings.TrimRight(string(p), "\n"), "\n") {
		if line == "" {
			continue
		}
		j.lines = append(j.lines, line)
		for ch := range j.subs {
			select {
			case ch <- line:
			default: // a stalled subscriber drops lines, never blocks the study
			}
		}
	}
	return len(p), nil
}

// subscribe returns a snapshot of the lines so far plus a live channel;
// the channel is closed when the job reaches a terminal state.
func (j *job) subscribe() ([]string, chan string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan string, 64)
	if j.rec.State.terminal() {
		close(ch)
		return append([]string(nil), j.lines...), ch
	}
	if j.subs == nil {
		j.subs = make(map[chan string]struct{})
	}
	j.subs[ch] = struct{}{}
	return append([]string(nil), j.lines...), ch
}

func (j *job) unsubscribe(ch chan string) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// snapshot returns a copy of the record under the lock.
func (j *job) snapshot() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec
}

// jobTable owns every job: registry, ordering, persistence, the job
// concurrency gate and the drain WaitGroup.
type jobTable struct {
	mu    sync.Mutex
	byID  map[string]*job
	order []string
	seq   int

	dir   string // "" = memory-only
	slots chan struct{}
	wg    sync.WaitGroup

	// recordsDropped counts corrupt jobs.json tails salvaged at open
	// (set once at startup; exported as inipd_job_records_dropped_total).
	recordsDropped uint64
}

// openJobTable loads (or initializes) the job table. Startup is the
// safe moment to sweep stale atomic-write temporaries out of the state
// directory: a previous daemon killed mid-publication of jobs.json, a
// checkpoint or a result file leaves exactly such orphans behind.
func openJobTable(dir string, maxJobs int) (*jobTable, error) {
	t := &jobTable{
		byID:  make(map[string]*job),
		dir:   dir,
		slots: make(chan struct{}, maxJobs),
	}
	if dir == "" {
		return t, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	if _, err := atomicio.SweepTemps(dir); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs.json"))
	if os.IsNotExist(err) {
		return t, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: job table: %w", err)
	}
	recs, dropped := decodeJobRecords(data)
	t.recordsDropped = dropped
	for _, rec := range recs {
		// A record still queued/running belongs to a daemon that was
		// killed without a drain; it is interrupted until resumed.
		if rec.State == JobQueued || rec.State == JobRunning {
			rec.State = JobInterrupted
		}
		j := &job{rec: rec, stop: make(chan struct{})}
		t.byID[rec.ID] = j
		t.order = append(t.order, rec.ID)
		if n := numericSuffix(rec.ID); n > t.seq {
			t.seq = n
		}
	}
	return t, nil
}

// decodeJobRecords parses jobs.json, tolerating a corrupt tail. The
// file is rewritten atomically, so a damaged one means outside
// interference (disk fault, manual edit, a copy taken mid-write by a
// non-atomic tool) — the daemon salvages every leading record that
// still parses rather than refusing to start: losing resumability for
// one trailing job must not take the whole job history down with it.
// dropped counts the salvage (1 per corrupt tail; the exact number of
// records lost in unparsable bytes is unknowable).
func decodeJobRecords(data []byte) (recs []jobRecord, dropped uint64) {
	if err := json.Unmarshal(data, &recs); err == nil {
		return recs, 0
	}
	if len(bytes.TrimSpace(data)) == 0 {
		// An empty file is an empty table, not a corrupt one.
		return nil, 0
	}
	recs = nil
	dec := json.NewDecoder(bytes.NewReader(data))
	if tok, err := dec.Token(); err != nil || tok != json.Delim('[') {
		return nil, 1
	}
	for dec.More() {
		var rec jobRecord
		if err := dec.Decode(&rec); err != nil {
			break
		}
		recs = append(recs, rec)
	}
	return recs, 1
}

func numericSuffix(id string) int {
	n := 0
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// create registers a new queued job and persists the table.
func (t *jobTable) create(req studyRequest) *job {
	t.mu.Lock()
	t.seq++
	j := &job{
		rec: jobRecord{
			ID:          fmt.Sprintf("job-%d", t.seq),
			State:       JobQueued,
			Request:     req,
			CreatedUnix: time.Now().Unix(),
		},
		stop: make(chan struct{}),
	}
	t.byID[j.rec.ID] = j
	t.order = append(t.order, j.rec.ID)
	t.mu.Unlock()
	t.persist()
	return j
}

func (t *jobTable) get(id string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

func (t *jobTable) list() []jobRecord {
	t.mu.Lock()
	ids := append([]string(nil), t.order...)
	t.mu.Unlock()
	out := make([]jobRecord, 0, len(ids))
	for _, id := range ids {
		if j := t.get(id); j != nil {
			out = append(out, j.snapshot())
		}
	}
	return out
}

// transition moves a job to a new state and persists the table. On a
// terminal state every SSE subscriber channel is closed.
func (t *jobTable) transition(j *job, state JobState, errMsg string) {
	j.mu.Lock()
	j.rec.State = state
	j.rec.Error = errMsg
	if state.terminal() {
		j.rec.FinishedUnix = time.Now().Unix()
		for ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
	j.mu.Unlock()
	t.persist()
}

// persist atomically rewrites jobs.json (no-op for a memory-only
// table). A write failure must not take a job down with it — the job's
// in-memory state is authoritative for this process — so it is
// deliberately dropped here; resumability degrades, correctness does
// not.
func (t *jobTable) persist() {
	if t.dir == "" {
		return
	}
	t.mu.Lock()
	recs := make([]jobRecord, 0, len(t.order))
	for _, id := range t.order {
		if j := t.byID[id]; j != nil {
			recs = append(recs, j.snapshot())
		}
	}
	t.mu.Unlock()
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return
	}
	atomicio.WriteFile(filepath.Join(t.dir, "jobs.json"), append(data, '\n'), 0o644)
}

// stopAll requests a cooperative stop of every live job.
func (t *jobTable) stopAll() {
	t.mu.Lock()
	jobs := make([]*job, 0, len(t.byID))
	for _, j := range t.byID {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	for _, j := range jobs {
		j.requestStop()
	}
}

func (t *jobTable) checkpointPath(id string) string {
	if t.dir == "" {
		return ""
	}
	return filepath.Join(t.dir, id+".ckpt.jsonl")
}

func (t *jobTable) resultPath(id string) string {
	if t.dir == "" {
		return ""
	}
	return filepath.Join(t.dir, id+".result.json")
}

// loadResult returns a finished job's result, reading it back from the
// state directory when this process did not produce it itself.
func (t *jobTable) loadResult(j *job) (*jobResult, error) {
	j.mu.Lock()
	res := j.result
	id := j.rec.ID
	j.mu.Unlock()
	if res != nil {
		return res, nil
	}
	p := t.resultPath(id)
	if p == "" {
		return nil, fmt.Errorf("serve: job %s has no stored result", id)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, err
	}
	var out jobResult
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("serve: job %s result: %w", id, err)
	}
	j.mu.Lock()
	j.result = &out
	j.mu.Unlock()
	return &out, nil
}

// resumeJobs re-enqueues every resumable job found at startup.
func (s *Server) resumeJobs() {
	for _, rec := range s.jobs.list() {
		if !rec.State.resumable() {
			continue
		}
		j := s.jobs.get(rec.ID)
		j.mu.Lock()
		j.rec.State = JobQueued
		j.rec.Error = ""
		j.rec.Resumed = true
		j.rec.FinishedUnix = 0
		j.mu.Unlock()
		s.jobs.persist()
		s.spawnJob(j)
	}
}

// spawnJob launches the job goroutine (tracked for drain).
func (s *Server) spawnJob(j *job) {
	s.jobs.wg.Add(1)
	go s.runJob(j)
}

// runJob takes a job through its lifecycle: wait for a slot, run the
// study with the server's shared cache/trace and a per-job checkpoint,
// classify the outcome. A cooperative stop during drain leaves the job
// interrupted-but-resumable with its checkpoint flushed.
func (s *Server) runJob(j *job) {
	defer s.jobs.wg.Done()
	select {
	case s.jobs.slots <- struct{}{}:
	case <-j.stop:
		s.jobs.transition(j, JobInterrupted, "")
		return
	}
	defer func() { <-s.jobs.slots }()
	s.jobs.transition(j, JobRunning, "")

	rec := j.snapshot()
	req := rec.Request
	if rec.Resumed {
		// stop_after already did its job in the interrupted run; the
		// resumed one completes the remainder.
		req.StopAfter = 0
	}
	scale := req.Scale
	if scale <= 0 {
		scale = s.cfg.Scale
	}
	cfg := study.Config{
		Scale:           scale,
		Parallelism:     s.cfg.Workers,
		Policy:          core.Degrade,
		IndependentRuns: req.IndependentRuns,
		StopAfter:       req.StopAfter,
		Stop:            j.stop,
		Progress:        j,
		Cache:           s.cfg.Cache,
		Trace:           s.cfg.Trace,
		Checkpoint:      s.jobs.checkpointPath(rec.ID),
		Resume:          rec.Resumed && s.jobs.dir != "",
	}
	for _, name := range req.Benches {
		b := spec.ByName(strings.TrimSpace(name))
		if b == nil {
			s.jobs.transition(j, JobFailed, fmt.Sprintf("unknown benchmark %q", name))
			return
		}
		cfg.Benchmarks = append(cfg.Benchmarks, b)
	}

	res, err := study.Run(cfg)
	switch {
	case err == nil:
		out := &jobResult{Figures: res.Figures(), Perf: res.Perf, Failures: res.Failures}
		if p := s.jobs.resultPath(rec.ID); p != "" {
			if data, merr := json.MarshalIndent(out, "", "  "); merr == nil {
				atomicio.WriteFile(p, append(data, '\n'), 0o644)
			}
		}
		j.mu.Lock()
		j.result = out
		j.rec.ResumedSeries = res.Perf.ResumedSeries
		j.mu.Unlock()
		s.recordJobPerf(res.Perf)
		s.jobs.transition(j, JobDone, "")
	case isStopped(err) && s.draining.Load():
		s.jobs.transition(j, JobInterrupted, "")
	case isStopped(err):
		s.jobs.transition(j, JobStopped, "")
	default:
		s.jobs.transition(j, JobFailed, err.Error())
	}
}

func isStopped(err error) bool {
	return errors.Is(err, study.ErrStopped)
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	s.m.studyRequests.Add(1)
	if s.draining.Load() {
		errorJSON(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req studyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	for _, name := range req.Benches {
		if spec.ByName(strings.TrimSpace(name)) == nil {
			errorJSON(w, http.StatusBadRequest, "unknown benchmark %q", name)
			return
		}
	}
	if req.Scale < 0 || req.StopAfter < 0 {
		errorJSON(w, http.StatusBadRequest, "scale and stop_after must be non-negative")
		return
	}
	j := s.jobs.create(req)
	s.spawnJob(j)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(j.snapshot())
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"jobs": s.jobs.list()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		errorJSON(w, http.StatusNotFound, "no such job")
		return
	}
	rec := j.snapshot()
	out := map[string]any{"job": rec}
	if rec.State == JobDone {
		if res, err := s.jobs.loadResult(j); err == nil {
			out["result"] = res
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleJobFigures serves exactly the figure JSON of a finished job —
// deterministic data with no timestamps, so two runs of the same study
// (including an interrupted-then-resumed one) compare byte-equal.
func (s *Server) handleJobFigures(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		errorJSON(w, http.StatusNotFound, "no such job")
		return
	}
	if st := j.snapshot().State; st != JobDone {
		errorJSON(w, http.StatusConflict, "job is %s, figures exist only for done jobs", st)
		return
	}
	res, err := s.jobs.loadResult(j)
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	data, err := json.MarshalIndent(res.Figures, "", " ")
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// handleJobEvents streams job progress as Server-Sent Events: a replay
// of everything logged so far, then live lines, then a terminal "state"
// event naming how the job ended.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		errorJSON(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		errorJSON(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	replay, ch := j.subscribe()
	defer j.unsubscribe(ch)
	for _, line := range replay {
		fmt.Fprintf(w, "data: %s\n\n", line)
	}
	fl.Flush()
	for {
		select {
		case line, open := <-ch:
			if !open {
				fmt.Fprintf(w, "event: state\ndata: %s\n\n", j.snapshot().State)
				fl.Flush()
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", line)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
