package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resultcache"
	"repro/internal/spec"
	"repro/internal/study"
)

// newTestServer builds a Server with small admission limits and, when
// gate is non-nil, a fake exec that blocks on it and counts calls.
func newTestServer(t *testing.T, cfg Config, gate chan struct{}, calls *atomic.Int64) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gate != nil {
		s.exec = func(key string, _ *spec.Benchmark, _, _ float64, _ []string, _ uint64, _ string) *compareOut {
			calls.Add(1)
			<-gate
			return &compareOut{
				status: http.StatusOK,
				body:   []byte(fmt.Sprintf("{\"key\":%q}\n", key)),
				blocks: 7,
			}
		}
	}
	return s
}

func postCompare(s *Server, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/compare", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCompareValidation: malformed requests are rejected up front.
func TestCompareValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1}, nil, nil)
	for name, body := range map[string]string{
		"bad json":      "{",
		"unknown bench": `{"bench":"nope","t":2000}`,
		"bad threshold": `{"bench":"gzip","t":-1}`,
	} {
		if w := postCompare(s, body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, w.Code)
		}
	}
}

// TestAdmissionOverload: with one inflight slot and no wait queue, a
// second concurrent request is rejected immediately with 429 and a
// Retry-After hint, and the first still completes.
func TestAdmissionOverload(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	s := newTestServer(t, Config{Workers: 1, MaxInflight: 1, MaxQueue: -1}, gate, &calls)

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postCompare(s, `{"bench":"gzip","t":2000}`) }()
	waitFor(t, "leader to start executing", func() bool { return calls.Load() == 1 })

	// A different benchmark, so coalescing cannot absorb it: it must
	// fall to admission, which has no free slot and no queue.
	w := postCompare(s, `{"bench":"mcf","t":2000}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429\n%s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(gate)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("admitted request failed: %d %s", w.Code, w.Body.String())
	}
	if got := s.m.compareOverload.Load(); got != 1 {
		t.Fatalf("overload counter = %d, want 1", got)
	}
}

// TestAdmissionDeadline: a queued request whose deadline expires before
// a slot frees gets 504, not an indefinite wait.
func TestAdmissionDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	var calls atomic.Int64
	s := newTestServer(t, Config{Workers: 1, MaxInflight: 1, MaxQueue: 4}, gate, &calls)

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postCompare(s, `{"bench":"gzip","t":2000}`) }()
	waitFor(t, "leader to start executing", func() bool { return calls.Load() == 1 })

	w := postCompare(s, `{"bench":"mcf","t":2000,"timeout_ms":30}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline status %d, want 504\n%s", w.Code, w.Body.String())
	}
	if got := s.m.compareDeadline.Load(); got != 1 {
		t.Fatalf("deadline counter = %d, want 1", got)
	}
}

// TestExecutionDeadline: an admitted request whose work outlives its
// deadline gets 504 while the flight keeps running to completion (its
// result must still land for followers and the cache).
func TestExecutionDeadline(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	s := newTestServer(t, Config{Workers: 1, MaxInflight: 2, MaxQueue: 4}, gate, &calls)

	w := postCompare(s, `{"bench":"gzip","t":2000,"timeout_ms":30}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504\n%s", w.Code, w.Body.String())
	}
	close(gate)
	// The abandoned flight still completes and unregisters.
	waitFor(t, "flight cleanup", func() bool {
		s.flightMu.Lock()
		defer s.flightMu.Unlock()
		return len(s.flights) == 0
	})
}

// TestCoalesceIdenticalRequests: concurrent identical compares execute
// once; every caller gets the same 200 body, and the extras are counted
// and labelled as followers.
func TestCoalesceIdenticalRequests(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	s := newTestServer(t, Config{Workers: 1, MaxInflight: 8, MaxQueue: 8}, gate, &calls)

	const n = 3
	results := make(chan *httptest.ResponseRecorder, n)
	body := `{"bench":"gzip","t":2000}`
	go func() { results <- postCompare(s, body) }()
	waitFor(t, "leader to start executing", func() bool { return calls.Load() == 1 })
	for i := 1; i < n; i++ {
		go func() { results <- postCompare(s, body) }()
	}
	waitFor(t, "followers to join the flight", func() bool { return s.m.compareCoalesced.Load() == n-1 })
	close(gate)

	var bodies []string
	roles := map[string]int{}
	for i := 0; i < n; i++ {
		w := <-results
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		bodies = append(bodies, w.Body.String())
		roles[w.Header().Get("X-Inipd-Coalesced")]++
	}
	if calls.Load() != 1 {
		t.Fatalf("executed %d scheduler units for %d identical requests, want 1", calls.Load(), n)
	}
	for _, b := range bodies[1:] {
		if b != bodies[0] {
			t.Fatalf("coalesced bodies differ:\n%s\n%s", bodies[0], b)
		}
	}
	if roles["leader"] != 1 || roles["follower"] != n-1 {
		t.Fatalf("roles = %v, want 1 leader / %d followers", roles, n-1)
	}
}

// TestCompareWarmColdE2E drives the real pipeline through a real HTTP
// server twice with a result cache: the warm response must be
// byte-identical to the cold one and report zero guest blocks executed.
func TestCompareWarmColdE2E(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Scale: 0.001, Workers: 1, Cache: cache}, nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/v1/compare", "application/json",
			strings.NewReader(`{"bench":"gzip","t":2000}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	cold, coldBody := post()
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold compare: %d %s", cold.StatusCode, coldBody)
	}
	if cold.Header.Get("X-Inipd-Cache") != "miss" || cold.Header.Get("X-Inipd-Guest-Blocks") == "0" {
		t.Fatalf("cold headers wrong: cache=%q blocks=%q",
			cold.Header.Get("X-Inipd-Cache"), cold.Header.Get("X-Inipd-Guest-Blocks"))
	}
	var resp compareResponse
	if err := json.Unmarshal(coldBody, &resp); err != nil {
		t.Fatalf("cold body: %v", err)
	}
	if resp.Bench != "gzip" || resp.TEffective != 2 || resp.Summary.Blocks == 0 {
		t.Fatalf("cold response wrong: %+v", resp)
	}

	warm, warmBody := post()
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm compare: %d %s", warm.StatusCode, warmBody)
	}
	if got := warm.Header.Get("X-Inipd-Guest-Blocks"); got != "0" {
		t.Fatalf("warm compare executed %s guest blocks, want 0", got)
	}
	if warm.Header.Get("X-Inipd-Cache") != "hit" {
		t.Fatalf("warm cache header = %q", warm.Header.Get("X-Inipd-Cache"))
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("warm body differs from cold:\n%s\n%s", coldBody, warmBody)
	}
	if s.m.compareWarm.Load() != 1 {
		t.Fatalf("warm counter = %d, want 1", s.m.compareWarm.Load())
	}
}

// jobStatus fetches one job's record (and result when done).
func jobStatus(t *testing.T, base, id string) (jobRecord, *jobResult) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Job    jobRecord  `json:"job"`
		Result *jobResult `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Job, out.Result
}

func startJob(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/study", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("study submit: %d %s", resp.StatusCode, raw)
	}
	var rec jobRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID == "" {
		t.Fatal("job accepted without an id")
	}
	return rec.ID
}

func waitJob(t *testing.T, base, id string, want JobState) jobRecord {
	t.Helper()
	var rec jobRecord
	waitFor(t, fmt.Sprintf("job %s to reach %s", id, want), func() bool {
		rec, _ = jobStatus(t, base, id)
		if rec.State.terminal() && rec.State != want {
			t.Fatalf("job %s ended %s (err %q), want %s", id, rec.State, rec.Error, want)
		}
		return rec.State == want
	})
	return rec
}

func getFigures(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/figures")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figures: %d %s", resp.StatusCode, data)
	}
	return data
}

// TestStudyJobLifecycle: an async study job runs to done; its status,
// result, figure JSON, SSE progress stream and the metrics endpoint all
// reflect it.
func TestStudyJobLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Scale: 0.001, Workers: 1, StateDir: t.TempDir()}, nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, err := http.Post(ts.URL+"/v1/study", "application/json",
		strings.NewReader(`{"benches":["nope"]}`)); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown bench accepted: %v %v", err, resp.Status)
	}

	id := startJob(t, ts.URL, `{"benches":["gzip","swim"]}`)
	rec := waitJob(t, ts.URL, id, JobDone)
	if rec.Error != "" {
		t.Fatalf("done job carries error %q", rec.Error)
	}
	_, res := jobStatus(t, ts.URL, id)
	if res == nil || len(res.Figures) == 0 || res.Perf.BlocksExecuted == 0 {
		t.Fatalf("done job result missing: %+v", res)
	}

	var figs []json.RawMessage
	if err := json.Unmarshal(getFigures(t, ts.URL, id), &figs); err != nil || len(figs) == 0 {
		t.Fatalf("figures endpoint: %v (%d figures)", err, len(figs))
	}

	// SSE on a finished job: replay then the terminal state event.
	sse, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, err := io.ReadAll(sse.Body)
	sse.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), "data: done gzip") &&
		!strings.Contains(string(events), "data: done swim") {
		t.Fatalf("SSE replay carries no progress lines:\n%s", events)
	}
	if !strings.Contains(string(events), "event: state\ndata: done") {
		t.Fatalf("SSE stream missing terminal state event:\n%s", events)
	}

	metricsResp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext, _ := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	for _, want := range []string{
		"inipd_ready 1",
		"inipd_study_jobs_finished_total 1",
		`inipd_jobs{state="done"} 1`,
		"inipd_study_guest_blocks_total",
		"inipd_study_fast_dispatches_total",
		"inipd_study_generic_dispatches_total",
		"inipd_study_cache_lookups_total",
		"inipd_study_blocks_per_second",
	} {
		if !strings.Contains(string(mtext), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mtext)
		}
	}
	// A finished study executed real blocks, so the hot-loop exports
	// must be live, not zero.
	for _, line := range strings.Split(string(mtext), "\n") {
		if v, ok := strings.CutPrefix(line, "inipd_study_fast_dispatches_total "); ok && v == "0" {
			t.Fatalf("fast dispatches exported as zero after a finished job:\n%s", mtext)
		}
		if v, ok := strings.CutPrefix(line, "inipd_study_blocks_per_second "); ok && v == "0.0" {
			t.Fatalf("blocks/s exported as zero after a finished job:\n%s", mtext)
		}
	}

	// Probes: alive and ready.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %v %v", path, err, resp.Status)
		}
		resp.Body.Close()
	}
}

// TestJobInterruptResume: a job stopped mid-run (stop_after) is
// re-enqueued by a second server over the same state directory and
// completes with figures byte-identical to an uninterrupted run of the
// same study.
func TestJobInterruptResume(t *testing.T) {
	state := t.TempDir()
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	s1 := newTestServer(t, Config{Scale: 0.001, Workers: 1, StateDir: state, Cache: cache}, nil, nil)
	ts1 := httptest.NewServer(s1.Handler())
	id := startJob(t, ts1.URL, `{"benches":["gzip","swim"],"stop_after":1}`)
	rec := waitJob(t, ts1.URL, id, JobStopped)
	if rec.State != JobStopped {
		t.Fatalf("job state %s, want stopped", rec.State)
	}
	if err := s1.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Second daemon generation: resume over the same state dir.
	s2 := newTestServer(t, Config{Scale: 0.001, Workers: 1, StateDir: state, Cache: cache, Resume: true}, nil, nil)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	rec = waitJob(t, ts2.URL, id, JobDone)
	if !rec.Resumed {
		t.Fatalf("completed job not marked resumed: %+v", rec)
	}
	if rec.ResumedSeries != 1 {
		t.Fatalf("resumed job restored %d series from its checkpoint, want 1", rec.ResumedSeries)
	}
	resumedFigs := getFigures(t, ts2.URL, id)

	// An uninterrupted run of the same study must agree byte-for-byte.
	fresh := startJob(t, ts2.URL, `{"benches":["gzip","swim"]}`)
	waitJob(t, ts2.URL, fresh, JobDone)
	if freshFigs := getFigures(t, ts2.URL, fresh); !bytes.Equal(resumedFigs, freshFigs) {
		t.Fatalf("resumed figures differ from a fresh run's:\n%s\n%s", resumedFigs, freshFigs)
	}

	if err := s2.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestDrainRejectsNewWork: a draining server answers 503 on readyz,
// compare and study, while health stays 200.
func TestDrainRejectsNewWork(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1}, nil, nil)
	if err := s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if w := postCompare(s, `{"bench":"gzip","t":2000}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("compare while draining: %d", w.Code)
	}
	resp, err := http.Post(ts.URL+"/v1/study", "application/json", strings.NewReader(`{}`))
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("study while draining: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	if resp, err = http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %v %v", err, resp.Status)
	}
	resp.Body.Close()
}

// TestConcurrentMixedLoad exercises admission, coalescing and the
// shared scheduler together under -race: a burst of identical and
// distinct compares with a tight admission window must neither race nor
// deadlock, and every response must be a well-formed 200/429/504.
func TestConcurrentMixedLoad(t *testing.T) {
	s := newTestServer(t, Config{Scale: 0.001, Workers: 1, MaxInflight: 2, MaxQueue: 2}, nil, nil)
	benches := []string{"gzip", "mcf", "gzip", "swim", "gzip", "mcf"}
	var wg sync.WaitGroup
	codes := make([]int, len(benches))
	for i, b := range benches {
		i, b := i, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := postCompare(s, fmt.Sprintf(`{"bench":%q,"t":2000}`, b))
			codes[i] = w.Code
		}()
	}
	wg.Wait()
	ok := 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests, http.StatusGatewayTimeout:
		default:
			t.Fatalf("request %d (%s): unexpected status %d", i, benches[i], c)
		}
	}
	if ok == 0 {
		t.Fatal("no request in the burst succeeded")
	}
}

// TestRetryAfterScalesWithBacklog pins the satellite-2 estimator: the
// Retry-After hint is backlog times mean compare duration over the
// parallel slots, ceiling-rounded and clamped to [1, 60]. The duration
// totals are seeded directly, so every row is deterministic.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxInflight: 2, MaxQueue: -1}, nil, nil)

	// No history, no backlog: the estimator reproduces the old fixed 1s.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle hint = %d, want 1", got)
	}

	// Mean compare duration: 4 compares totalling 24s → 6s each.
	s.compareDurNS.Store(int64(24 * time.Second))
	s.compareDurCount.Store(4)

	// One occupied slot of two: 1 * 6s / 2 = 3s.
	s.inflight <- struct{}{}
	if got := s.retryAfterSeconds(); got != 3 {
		t.Fatalf("1-slot hint = %d, want 3", got)
	}
	// Second slot plus four queued waiters: 6 * 6s / 2 = 18s — the hint
	// grows with the backlog.
	s.inflight <- struct{}{}
	s.queued.Add(4)
	if got := s.retryAfterSeconds(); got != 18 {
		t.Fatalf("backlogged hint = %d, want 18", got)
	}
	// A huge backlog clamps at the 60s ceiling.
	s.queued.Add(100)
	if got := s.retryAfterSeconds(); got != 60 {
		t.Fatalf("clamped hint = %d, want 60", got)
	}
	// Sub-second estimates round up to the 1s floor.
	s.queued.Store(0)
	<-s.inflight
	<-s.inflight
	s.compareDurNS.Store(int64(10 * time.Millisecond))
	s.compareDurCount.Store(1)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("floor hint = %d, want 1", got)
	}
}

// TestRetryAfterHeaderReflectsEstimate: the 429 path serves the live
// estimate, not a constant — with a seeded 30s mean and one busy slot
// the rejected caller is told to come back in 30 seconds.
func TestRetryAfterHeaderReflectsEstimate(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	s := newTestServer(t, Config{Workers: 1, MaxInflight: 1, MaxQueue: -1}, gate, &calls)
	s.compareDurNS.Store(int64(30 * time.Second))
	s.compareDurCount.Store(1)

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postCompare(s, `{"bench":"gzip","t":2000}`) }()
	waitFor(t, "leader to start executing", func() bool { return calls.Load() == 1 })

	w := postCompare(s, `{"bench":"mcf","t":2000}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After = %q, want \"30\" (1 busy slot x 30s mean)", got)
	}

	close(gate)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("admitted request failed: %d", w.Code)
	}
}

// TestRetryAfterColdStart pins the cold-start regression: a fresh
// server that has never completed a compare must still emit a
// Retry-After inside the documented [1, 60] interval on its very first
// 429 — not 0, and never a divide-by-zero even if the config reached
// the estimator with zero inflight slots.
func TestRetryAfterColdStart(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	s := newTestServer(t, Config{Workers: 1, MaxInflight: 1, MaxQueue: -1}, gate, &calls)

	// First-ever request occupies the only slot; no duration history
	// exists yet.
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postCompare(s, `{"bench":"gzip","t":2000}`) }()
	waitFor(t, "leader to start executing", func() bool { return calls.Load() == 1 })

	w := postCompare(s, `{"bench":"mcf","t":2000}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", w.Code)
	}
	secs, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", w.Header().Get("Retry-After"), err)
	}
	if secs < 1 || secs > 60 {
		t.Fatalf("cold-start Retry-After = %d, want within [1, 60]", secs)
	}

	close(gate)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("admitted request failed: %d", w.Code)
	}

	// Degenerate config: an estimator reached with zero slots (defaults
	// bypassed) must clamp the divisor, not divide by zero.
	s.cfg.MaxInflight = 0
	if got := s.retryAfterSeconds(); got < 1 || got > 60 {
		t.Fatalf("zero-slot hint = %d, want within [1, 60]", got)
	}
}

// TestMetricsWarmStudyThroughputZero pins the satellite-3 guard: a
// fully cache-warm study finishes with guest blocks recorded but zero
// run-unit wall-clock, and the blocks-per-second gauge must expose 0
// — not NaN or Inf — in the Prometheus text.
func TestMetricsWarmStudyThroughputZero(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1}, nil, nil)
	s.recordJobPerf(study.Perf{BlocksExecuted: 123456})

	req := httptest.NewRequest("GET", "/v1/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	body := w.Body.String()
	if !strings.Contains(body, "inipd_study_blocks_per_second 0.0\n") {
		t.Fatalf("warm-study gauge not pinned to 0.0:\n%s", body)
	}
	if !strings.Contains(body, "inipd_study_guest_blocks_total 123456\n") {
		t.Fatalf("block counter missing:\n%s", body)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(body, bad) {
			t.Fatalf("metrics exposition leaked %q:\n%s", bad, body)
		}
	}
}

// TestComparePredictorsE2E drives the real pipeline with a predictor
// selection: the response carries per-predictor tallies, the warm
// rerun is byte-identical at zero guest blocks, the mispredict
// counters reach /v1/metrics, and requests without predictors keep the
// legacy wire format.
func TestComparePredictorsE2E(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Scale: 0.001, Workers: 1, Cache: cache}, nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/v1/compare", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, raw
	}

	if resp, raw := post(`{"bench":"gzip","t":2000,"predictors":["oracle"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown predictor: %d %s, want 400", resp.StatusCode, raw)
	}

	const reqBody = `{"bench":"gzip","t":2000,"predictors":["2bit","gshare"]}`
	cold, coldBody := post(reqBody)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold compare: %d %s", cold.StatusCode, coldBody)
	}
	var resp compareResponse
	if err := json.Unmarshal(coldBody, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictors) != 2 || resp.Predictors[0].Predictor != "2bit" || resp.Predictors[1].Predictor != "gshare" {
		t.Fatalf("predictor tallies wrong: %+v", resp.Predictors)
	}
	for _, p := range resp.Predictors {
		if p.Branches == 0 {
			t.Fatalf("%s observed no branches: %+v", p.Predictor, p)
		}
		if want := float64(p.Mispredicts) / float64(p.Branches); p.MispredictRate != want {
			t.Fatalf("%s rate %v, want %v", p.Predictor, p.MispredictRate, want)
		}
	}

	warm, warmBody := post(reqBody)
	if got := warm.Header.Get("X-Inipd-Guest-Blocks"); got != "0" {
		t.Fatalf("warm predictor compare executed %s guest blocks, want 0", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("warm predictor body differs from cold:\n%s\n%s", coldBody, warmBody)
	}

	// Warm compares still fold tallies into the exported totals: two
	// runs, so each predictor's branch counter is twice one run's.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mraw)
	wantLine := fmt.Sprintf("inipd_predictor_branches_total{predictor=\"2bit\"} %d\n", 2*resp.Predictors[0].Branches)
	if !strings.Contains(metrics, wantLine) {
		t.Fatalf("metrics missing %q:\n%s", wantLine, metrics)
	}
	if !strings.Contains(metrics, `inipd_predictor_mispredict_rate{predictor="gshare"}`) {
		t.Fatalf("gshare rate gauge missing:\n%s", metrics)
	}

	// A request without predictors keeps the legacy wire format: no
	// predictors key at all, so existing clients see identical bytes.
	_, legacyBody := post(`{"bench":"gzip","t":2000}`)
	if bytes.Contains(legacyBody, []byte("predictors")) {
		t.Fatalf("legacy response leaked a predictors field:\n%s", legacyBody)
	}
}

// TestCompareSampledE2E drives the sampled-profiling wiring end to end:
// a compare with sample_period reports the sampled rerun and its cost
// ratio, replays byte-identically warm with zero guest blocks, feeds
// the sampled metrics — and a request without the field keeps the
// legacy wire format and the legacy metrics exposition untouched.
func TestCompareSampledE2E(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Scale: 0.001, Workers: 1, Cache: cache}, nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/v1/compare", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, raw
	}

	const reqBody = `{"bench":"gzip","t":2000,"sample_period":16}`
	cold, coldBody := post(reqBody)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold compare: %d %s", cold.StatusCode, coldBody)
	}
	var resp compareResponse
	if err := json.Unmarshal(coldBody, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SamplePeriod != 16 || resp.Sampled == nil {
		t.Fatalf("sampled fields missing: %+v", resp)
	}
	sw := resp.Sampled
	if sw.FullProfilingOps == 0 || sw.ProfilingOps >= sw.FullProfilingOps {
		t.Fatalf("sampled ops %d not below full ops %d", sw.ProfilingOps, sw.FullProfilingOps)
	}
	if want := float64(sw.ProfilingOps) / float64(sw.FullProfilingOps); sw.CostRatio != want {
		t.Fatalf("cost ratio %v, want %v", sw.CostRatio, want)
	}
	if sw.Summary.Blocks == 0 {
		t.Fatalf("sampled summary empty: %+v", sw)
	}

	warm, warmBody := post(reqBody)
	if got := warm.Header.Get("X-Inipd-Guest-Blocks"); got != "0" {
		t.Fatalf("warm sampled compare executed %s guest blocks, want 0", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("warm sampled body differs from cold:\n%s\n%s", coldBody, warmBody)
	}

	// Warm compares still fold into the exported totals: two runs.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mraw)
	if !strings.Contains(metrics, "inipd_compare_sampled_total 2\n") {
		t.Fatalf("metrics missing sampled compare counter:\n%s", metrics)
	}
	wantOps := fmt.Sprintf("inipd_sampled_profiling_ops_total %d\n", 2*sw.ProfilingOps)
	if !strings.Contains(metrics, wantOps) {
		t.Fatalf("metrics missing %q:\n%s", wantOps, metrics)
	}
	if !strings.Contains(metrics, "inipd_sampled_cost_ratio ") {
		t.Fatalf("cost ratio gauge missing:\n%s", metrics)
	}

	// A request without sample_period keeps the legacy wire format.
	_, legacyBody := post(`{"bench":"gzip","t":2000}`)
	if bytes.Contains(legacyBody, []byte("sample")) {
		t.Fatalf("legacy response leaked a sampled field:\n%s", legacyBody)
	}

	// A process that never ran sampled work keeps the legacy metrics
	// exposition byte-for-byte free of sampled families.
	plain := newTestServer(t, Config{Scale: 0.001, Workers: 1}, nil, nil)
	pts := httptest.NewServer(plain.Handler())
	defer pts.Close()
	presp, err := http.Get(pts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	praw, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if strings.Contains(string(praw), "sampled") {
		t.Fatalf("sampling-less exposition mentions sampled families:\n%s", praw)
	}
}

// TestCompareLearnedE2E drives the learned-model selection end to end:
// a compare with learned reports the strictly held-out evaluation
// (trained on every other suite benchmark), replays byte-identically
// warm with zero guest blocks, feeds the learned metrics — and a
// request without the field keeps the legacy wire format and the legacy
// metrics exposition untouched.
func TestCompareLearnedE2E(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Scale: 0.001, Workers: 1, Cache: cache}, nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/v1/compare", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, raw
	}

	if resp, raw := post(`{"bench":"gzip","t":2000,"learned":"oracle"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown learned model: %d %s, want 400", resp.StatusCode, raw)
	}

	const reqBody = `{"bench":"gzip","t":2000,"learned":"logreg"}`
	cold, coldBody := post(reqBody)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold compare: %d %s", cold.StatusCode, coldBody)
	}
	var resp compareResponse
	if err := json.Unmarshal(coldBody, &resp); err != nil {
		t.Fatal(err)
	}
	lw := resp.Learned
	if lw == nil {
		t.Fatalf("learned field missing: %s", coldBody)
	}
	if lw.Branches == 0 {
		t.Fatalf("learned eval saw no branches: %+v", lw)
	}
	if want := float64(lw.Mispredicts) / float64(lw.Branches); lw.MispredictRate != want {
		t.Fatalf("learned rate %v, want %v", lw.MispredictRate, want)
	}
	if want := len(spec.Suite()) - 1; lw.TrainBenchmarks != want {
		t.Fatalf("trained on %d benchmarks, want %d (held-out fold)", lw.TrainBenchmarks, want)
	}
	if !strings.HasPrefix(lw.Fingerprint, "learned-") {
		t.Fatalf("fingerprint %q", lw.Fingerprint)
	}

	warm, warmBody := post(reqBody)
	if got := warm.Header.Get("X-Inipd-Guest-Blocks"); got != "0" {
		t.Fatalf("warm learned compare executed %s guest blocks, want 0", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("warm learned body differs from cold:\n%s\n%s", coldBody, warmBody)
	}

	// Warm compares still fold into the exported totals: two runs.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mraw)
	if !strings.Contains(metrics, "inipd_learned_compares_total 2\n") {
		t.Fatalf("metrics missing learned compare counter:\n%s", metrics)
	}
	wantBranches := fmt.Sprintf("inipd_learned_branches_total %d\n", 2*lw.Branches)
	if !strings.Contains(metrics, wantBranches) {
		t.Fatalf("metrics missing %q:\n%s", wantBranches, metrics)
	}
	if !strings.Contains(metrics, "inipd_learned_mispredict_rate ") {
		t.Fatalf("learned rate gauge missing:\n%s", metrics)
	}

	// A request without learned keeps the legacy wire format.
	_, legacyBody := post(`{"bench":"gzip","t":2000}`)
	if bytes.Contains(legacyBody, []byte("learned")) {
		t.Fatalf("legacy response leaked a learned field:\n%s", legacyBody)
	}

	// A process that never ran learned work keeps the legacy metrics
	// exposition byte-for-byte free of learned families.
	plain := newTestServer(t, Config{Scale: 0.001, Workers: 1}, nil, nil)
	pts := httptest.NewServer(plain.Handler())
	defer pts.Close()
	presp, err := http.Get(pts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	praw, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if strings.Contains(string(praw), "learned") {
		t.Fatalf("learned-less exposition mentions learned families:\n%s", praw)
	}
}
