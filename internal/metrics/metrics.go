// Package metrics implements the paper's profile-comparison measures:
// frequency-weighted standard deviations of branch, completion and
// loop-back probabilities (sections 2.1-2.3), the range-based mismatch
// rates of sections 4.1 and 4.3, and — for contrast — the classical
// profile comparators (Wall's weight/key match, overlap percentage) that
// the paper argues cannot be applied to initial profiles because all
// INIP(T) blocks have use counts in [T, 2T] and therefore carry no
// meaningful relative order.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Item is one weighted prediction/average pair: a block's branch
// probability, a region's completion probability, or a loop's loop-back
// probability, in the initial profile (Pred) and the average profile
// (Avg), weighted by the AVEP-derived frequency W.
type Item struct {
	Pred float64
	Avg  float64
	W    float64
}

// WeightedSD computes sqrt(sum((Pred-Avg)^2 * W) / sum(W)), the paper's
// Sd.BP / Sd.CP / Sd.LP depending on what the items hold. It returns 0
// for an empty or zero-weight item set.
func WeightedSD(items []Item) float64 {
	var num, den float64
	for _, it := range items {
		d := it.Pred - it.Avg
		num += d * d * it.W
		den += it.W
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// BPBucket classifies a branch probability into the paper's three
// optimizer-relevant ranges: [0, .3) -> 0, [.3, .7] -> 1, (.7, 1] -> 2.
func BPBucket(p float64) int {
	switch {
	case p < 0.3:
		return 0
	case p <= 0.7:
		return 1
	default:
		return 2
	}
}

// Trip-count classes of section 4.3, expressed over loop-back
// probability via LP = (T-1)/T.
const (
	// TripLow marks loops with trip count < 10 (LP in [0, 0.9)):
	// peeling candidates, no software pipelining or prefetching.
	TripLow = iota
	// TripMedian marks trip counts in [10, 50] (LP in [0.9, 0.98]):
	// software pipelining but not prefetching.
	TripMedian
	// TripHigh marks trip counts > 50 (LP in (0.98, 1]): both
	// software pipelining and data prefetching apply.
	TripHigh
)

// LPBucket classifies a loop-back probability into the trip-count
// classes above.
func LPBucket(p float64) int {
	switch {
	case p < 0.9:
		return TripLow
	case p <= 0.98:
		return TripMedian
	default:
		return TripHigh
	}
}

// MismatchRate returns the weighted fraction of items whose Pred and Avg
// fall into different buckets. It returns 0 for an empty set.
func MismatchRate(items []Item, bucket func(float64) int) float64 {
	var bad, den float64
	for _, it := range items {
		den += it.W
		if bucket(it.Pred) != bucket(it.Avg) {
			bad += it.W
		}
	}
	if den == 0 {
		return 0
	}
	return bad / den
}

// TripCount converts a loop-back probability to the implied average trip
// count T = 1/(1-LP), capped to avoid infinities for LP ~ 1.
func TripCount(lp float64) float64 {
	if lp >= 1 {
		return math.Inf(1)
	}
	if lp < 0 {
		lp = 0
	}
	return 1 / (1 - lp)
}

// --- Classical comparators (for contrast; see package comment) ---

// topN returns the n keys with the largest weights, ties broken by key
// for determinism.
func topN(w map[int]float64, n int) []int {
	keys := make([]int, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if w[keys[i]] != w[keys[j]] {
			return w[keys[i]] > w[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if n > len(keys) {
		n = len(keys)
	}
	return keys[:n]
}

// KeyMatch implements Wall's "key match": the fraction of the actual
// top-n blocks that also appear in the predicted top-n.
func KeyMatch(predicted, actual map[int]float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	pt := topN(predicted, n)
	at := topN(actual, n)
	if len(at) == 0 {
		return 0
	}
	inPred := make(map[int]bool, len(pt))
	for _, k := range pt {
		inPred[k] = true
	}
	hit := 0
	for _, k := range at {
		if inPred[k] {
			hit++
		}
	}
	return float64(hit) / float64(len(at))
}

// WeightMatch implements Wall's "weight match": the actual weight
// covered by the predicted top-n, relative to the weight of the actual
// top-n. 1.0 means the prediction picked blocks exactly as heavy as the
// true hottest set.
func WeightMatch(predicted, actual map[int]float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	var denom float64
	for _, k := range topN(actual, n) {
		denom += actual[k]
	}
	if denom == 0 {
		return 0
	}
	var num float64
	for _, k := range topN(predicted, n) {
		num += actual[k]
	}
	return num / denom
}

// OverlapPercentage implements the overlapping percentage of Feller: the
// mass shared by the two weight distributions after normalization,
// sum_i min(a_i/sum(a), b_i/sum(b)). 1.0 means identical distributions.
func OverlapPercentage(a, b map[int]float64) float64 {
	var sa, sb float64
	for _, v := range a {
		sa += v
	}
	for _, v := range b {
		sb += v
	}
	if sa == 0 || sb == 0 {
		return 0
	}
	var overlap float64
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			continue
		}
		overlap += math.Min(va/sa, vb/sb)
	}
	return overlap
}

// Summary bundles the paper's per-benchmark measurements for one
// INIP/AVEP (or train/AVEP) comparison.
type Summary struct {
	SdBP       float64
	BPMismatch float64
	// Region measures; valid only when HasRegions.
	HasRegions bool
	SdCP       float64
	SdLP       float64
	LPMismatch float64
	// Population sizes, for reporting.
	Blocks int
	Traces int
	Loops  int
}

func (s Summary) String() string {
	if !s.HasRegions {
		return fmt.Sprintf("Sd.BP=%.4f mismatch=%.1f%% (%d blocks)", s.SdBP, s.BPMismatch*100, s.Blocks)
	}
	return fmt.Sprintf("Sd.BP=%.4f mismatch=%.1f%% Sd.CP=%.4f Sd.LP=%.4f lpMismatch=%.1f%% (%d blocks, %d traces, %d loops)",
		s.SdBP, s.BPMismatch*100, s.SdCP, s.SdLP, s.LPMismatch*100, s.Blocks, s.Traces, s.Loops)
}
