package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperFigure5SdBP(t *testing.T) {
	// The worked example of Figure 5: four deviating blocks plus two
	// matching ones; the paper computes sqrt(0.045) = 0.21.
	items := []Item{
		{Pred: 0.88, Avg: 0.65, W: 1000},
		{Pred: 0.977, Avg: 0.90, W: 44000},
		{Pred: 0.88, Avg: 0.70, W: 43000},
		{Pred: 0.88, Avg: 0.20, W: 6000},
		// Two blocks that matched exactly contribute only weight
		// (the figure's denominator is 101000).
		{Pred: 0.5, Avg: 0.5, W: 1000},
		{Pred: 0.5, Avg: 0.5, W: 6000},
	}
	got := WeightedSD(items)
	if math.Abs(got-0.21) > 0.005 {
		t.Fatalf("Sd.BP = %v, want ~0.21 (paper Figure 5)", got)
	}
}

func TestPaperFigure5SdCP(t *testing.T) {
	items := []Item{{Pred: 1.0, Avg: 1.0, W: 1000}}
	if got := WeightedSD(items); got != 0 {
		t.Fatalf("Sd.CP = %v, want 0 (paper Figure 5)", got)
	}
}

func TestPaperFigure5SdLP(t *testing.T) {
	// Figure 5's loop items: LT = 0.977*0.88 vs LM = 0.90*0.70 at
	// weight 44000, and LT = 0.12 vs LM = 0.80 at weight 6000.
	// Evaluating the paper's own formula with these numbers yields
	// sqrt(0.102) = 0.319; the figure's printed intermediate (0.076,
	// 0.27) does not reproduce from its inputs, so we pin the exact
	// formula value and record the discrepancy in EXPERIMENTS.md.
	items := []Item{
		{Pred: 0.977 * 0.88, Avg: 0.90 * 0.70, W: 44000},
		{Pred: 0.12, Avg: 0.80, W: 6000},
	}
	got := WeightedSD(items)
	want := math.Sqrt(((0.977*0.88-0.63)*(0.977*0.88-0.63)*44000 + (0.12-0.80)*(0.12-0.80)*6000) / 50000)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sd.LP = %v, want %v", got, want)
	}
	if got < 0.31 || got > 0.33 {
		t.Fatalf("Sd.LP = %v, expected ~0.319 from the paper's inputs", got)
	}
}

func TestWeightedSDEmptyAndZeroWeight(t *testing.T) {
	if WeightedSD(nil) != 0 {
		t.Fatal("empty items must give 0")
	}
	if WeightedSD([]Item{{Pred: 1, Avg: 0, W: 0}}) != 0 {
		t.Fatal("zero-weight items must give 0")
	}
}

func TestWeightedSDIgnoresZeroDeviation(t *testing.T) {
	base := []Item{{Pred: 0.9, Avg: 0.5, W: 10}}
	with := append(base, Item{Pred: 0.7, Avg: 0.7, W: 0})
	if WeightedSD(base) != WeightedSD(with) {
		t.Fatal("zero-weight item changed the SD")
	}
}

// Property: SD is bounded by the largest absolute deviation.
func TestQuickSDBounded(t *testing.T) {
	f := func(raw []struct{ P, A, W uint16 }) bool {
		items := make([]Item, 0, len(raw))
		maxDev := 0.0
		for _, r := range raw {
			it := Item{
				Pred: float64(r.P%1000) / 999,
				Avg:  float64(r.A%1000) / 999,
				W:    float64(r.W % 100),
			}
			items = append(items, it)
			if d := math.Abs(it.Pred - it.Avg); it.W > 0 && d > maxDev {
				maxDev = d
			}
		}
		sd := WeightedSD(items)
		return sd <= maxDev+1e-12 && sd >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBPBucketBoundaries(t *testing.T) {
	cases := map[float64]int{
		0: 0, 0.29999: 0,
		0.3: 1, 0.5: 1, 0.7: 1,
		0.70001: 2, 0.99: 2, 1: 2,
	}
	for p, want := range cases {
		if got := BPBucket(p); got != want {
			t.Errorf("BPBucket(%v) = %d, want %d", p, got, want)
		}
	}
	// The paper's examples: 0.99 and 0.76 match; 0.68 and 0.78 do not.
	if BPBucket(0.99) != BPBucket(0.76) {
		t.Error("0.99 and 0.76 must match (both > .7)")
	}
	if BPBucket(0.68) == BPBucket(0.78) {
		t.Error("0.68 and 0.78 must mismatch (straddle .7)")
	}
}

func TestLPBucketBoundaries(t *testing.T) {
	cases := map[float64]int{
		0: TripLow, 0.89: TripLow,
		0.9: TripMedian, 0.95: TripMedian, 0.98: TripMedian,
		0.981: TripHigh, 1: TripHigh,
	}
	for p, want := range cases {
		if got := LPBucket(p); got != want {
			t.Errorf("LPBucket(%v) = %d, want %d", p, got, want)
		}
	}
}

// TestBucketEdgesExact pins every interval edge of the paper at machine
// precision: the exact edge values .3 and .7 (BP) and .9 and .98 (LP)
// land in the closed middle bucket, and the adjacent representable
// float64 on the open side lands outside it. This is the audited
// contract of the paper's intervals [0,.3) [.3,.7] (.7,1] and
// [0,.9) [.9,.98] (.98,1] — any off-by-one in the comparisons flips
// one of these rows.
func TestBucketEdgesExact(t *testing.T) {
	type edge struct {
		name   string
		bucket func(float64) int
		p      float64
		want   int
	}
	cases := []edge{
		{"BP just below .3", BPBucket, math.Nextafter(0.3, 0), 0},
		{"BP exactly .3", BPBucket, 0.3, 1},
		{"BP exactly .7", BPBucket, 0.7, 1},
		{"BP just above .7", BPBucket, math.Nextafter(0.7, 1), 2},
		{"LP just below .9", LPBucket, math.Nextafter(0.9, 0), TripLow},
		{"LP exactly .9", LPBucket, 0.9, TripMedian},
		{"LP exactly .98", LPBucket, 0.98, TripMedian},
		{"LP just above .98", LPBucket, math.Nextafter(0.98, 1), TripHigh},
	}
	for _, c := range cases {
		if got := c.bucket(c.p); got != c.want {
			t.Errorf("%s: bucket(%v) = %d, want %d", c.name, c.p, got, c.want)
		}
	}
	// An item sitting exactly on an edge must not mismatch against a
	// partner in the same closed bucket.
	items := []Item{{Pred: 0.3, Avg: 0.7, W: 1}}
	if got := MismatchRate(items, BPBucket); got != 0 {
		t.Errorf("0.3 vs 0.7 mismatch rate = %v, want 0 (both in the closed middle bucket)", got)
	}
	items = []Item{{Pred: 0.9, Avg: 0.98, W: 1}}
	if got := MismatchRate(items, LPBucket); got != 0 {
		t.Errorf("0.9 vs 0.98 mismatch rate = %v, want 0 (both TripMedian)", got)
	}
}

func TestTripCountRelation(t *testing.T) {
	// LP = (T-1)/T as cited from [20]: trip count 10 -> LP 0.9 sits at
	// the low/median boundary; trip 50 -> LP 0.98 at median/high.
	if got := TripCount(0.9); math.Abs(got-10) > 1e-9 {
		t.Fatalf("TripCount(0.9) = %v, want 10", got)
	}
	if got := TripCount(0.98); math.Abs(got-50) > 1e-6 {
		t.Fatalf("TripCount(0.98) = %v, want 50", got)
	}
	if !math.IsInf(TripCount(1), 1) {
		t.Fatal("TripCount(1) must be +Inf")
	}
	if TripCount(-0.5) != 1 {
		t.Fatalf("TripCount clamps negative LP to trip 1, got %v", TripCount(-0.5))
	}
}

func TestMismatchRateWeighted(t *testing.T) {
	items := []Item{
		{Pred: 0.9, Avg: 0.95, W: 70},  // both high: match
		{Pred: 0.68, Avg: 0.78, W: 30}, // straddle: mismatch
	}
	got := MismatchRate(items, BPBucket)
	if math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("mismatch = %v, want 0.3", got)
	}
	if MismatchRate(nil, BPBucket) != 0 {
		t.Fatal("empty mismatch must be 0")
	}
}

func TestKeyMatch(t *testing.T) {
	pred := map[int]float64{1: 100, 2: 90, 3: 80, 4: 1}
	act := map[int]float64{1: 50, 2: 60, 5: 70, 4: 2}
	// Top-3 predicted {1,2,3}; top-3 actual {5,2,1}: hits 2 of 3.
	if got := KeyMatch(pred, act, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("KeyMatch = %v, want 2/3", got)
	}
	if KeyMatch(pred, act, 0) != 0 {
		t.Fatal("KeyMatch(n=0) must be 0")
	}
	if got := KeyMatch(pred, pred, 3); got != 1 {
		t.Fatalf("self KeyMatch = %v, want 1", got)
	}
}

func TestWeightMatch(t *testing.T) {
	pred := map[int]float64{1: 100, 2: 90}
	act := map[int]float64{1: 10, 2: 20, 3: 70}
	// Predicted top-2 {1,2} covers 30 of the actual top-2 weight
	// {3,2} = 90.
	if got := WeightMatch(pred, act, 2); math.Abs(got-30.0/90) > 1e-12 {
		t.Fatalf("WeightMatch = %v, want 1/3", got)
	}
	if got := WeightMatch(act, act, 2); got != 1 {
		t.Fatalf("self WeightMatch = %v, want 1", got)
	}
	if WeightMatch(pred, map[int]float64{}, 2) != 0 {
		t.Fatal("empty actual must give 0")
	}
}

func TestOverlapPercentage(t *testing.T) {
	a := map[int]float64{1: 50, 2: 50}
	if got := OverlapPercentage(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self overlap = %v, want 1", got)
	}
	b := map[int]float64{3: 100}
	if got := OverlapPercentage(a, b); got != 0 {
		t.Fatalf("disjoint overlap = %v, want 0", got)
	}
	c := map[int]float64{1: 100}
	if got := OverlapPercentage(a, c); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("half overlap = %v, want 0.5", got)
	}
	if OverlapPercentage(a, map[int]float64{}) != 0 {
		t.Fatal("empty distribution must give 0")
	}
}

// Property: overlap is symmetric and within [0, 1].
func TestQuickOverlapSymmetric(t *testing.T) {
	f := func(aw, bw []uint8) bool {
		a := make(map[int]float64)
		b := make(map[int]float64)
		for i, v := range aw {
			a[i%16] += float64(v)
		}
		for i, v := range bw {
			b[i%16] += float64(v)
		}
		x, y := OverlapPercentage(a, b), OverlapPercentage(b, a)
		return math.Abs(x-y) < 1e-9 && x >= 0 && x <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{SdBP: 0.1, BPMismatch: 0.09, Blocks: 10}
	if got := s.String(); got == "" {
		t.Fatal("empty summary string")
	}
	s.HasRegions = true
	if got := s.String(); got == "" {
		t.Fatal("empty region summary string")
	}
}
