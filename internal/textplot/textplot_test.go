package textplot

import (
	"strings"
	"testing"
)

func TestTableLayout(t *testing.T) {
	out := Table("T", []float64{100, 1000, 4e6}, []Series{
		{Label: "int", Y: []float64{0.17, 0.14, 0.01}},
		{Label: "fp", Y: []float64{0.05, 0.04, 0.001}},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "int") || !strings.Contains(lines[0], "fp") {
		t.Fatalf("header missing labels: %q", lines[0])
	}
	for _, want := range []string{"100", "1k", "4M"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing x value %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "0.1700") {
		t.Fatalf("table missing formatted value:\n%s", out)
	}
}

func TestTableShortSeries(t *testing.T) {
	out := Table("T", []float64{1, 2}, []Series{{Label: "s", Y: []float64{0.5}}})
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for short series:\n%s", out)
	}
}

func TestFormatX(t *testing.T) {
	cases := map[float64]string{
		1:       "1",
		50:      "50",
		100:     "100",
		1000:    "1k",
		2000:    "2k",
		160000:  "160k",
		1e6:     "1M",
		4e6:     "4M",
		1234:    "1234",
		2500000: "2500k",
	}
	for x, want := range cases {
		if got := formatX(x); got != want {
			t.Errorf("formatX(%v) = %q, want %q", x, got, want)
		}
	}
}

func TestChartContainsGlyphsAndLegend(t *testing.T) {
	out := Chart([]float64{100, 1000, 10000}, []Series{
		{Label: "alpha", Y: []float64{0.1, 0.5, 0.9}},
		{Label: "beta", Y: []float64{0.9, 0.5, 0.1}},
	}, 40, 10)
	if !strings.Contains(out, "* = alpha") || !strings.Contains(out, "o = beta") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "0.9000") || !strings.Contains(out, "0.1000") {
		t.Fatalf("y-axis bounds missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	if out := Chart(nil, nil, 40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output: %q", out)
	}
	if out := Chart([]float64{1}, []Series{{Label: "x", Y: nil}}, 40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty series output: %q", out)
	}
}

func TestChartFlatSeries(t *testing.T) {
	// A constant series must not divide by zero.
	out := Chart([]float64{1, 2}, []Series{{Label: "c", Y: []float64{0.5, 0.5}}}, 40, 8)
	if !strings.Contains(out, "c") {
		t.Fatalf("flat chart broken:\n%s", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	out := Chart([]float64{100}, []Series{{Label: "p", Y: []float64{0.7}}}, 40, 8)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestChartTinyDimensionsClamped(t *testing.T) {
	out := Chart([]float64{1, 2, 3}, []Series{{Label: "s", Y: []float64{1, 2, 3}}}, 1, 1)
	if len(out) == 0 {
		t.Fatal("clamped chart empty")
	}
}
