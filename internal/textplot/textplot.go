// Package textplot renders threshold-sweep series as text tables and
// ASCII line charts for the study binaries. It is deliberately generic:
// callers pass x values and labelled y series.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled line.
type Series struct {
	Label string
	Y     []float64
}

// formatX renders a paper-unit threshold compactly (1k, 4M, ...).
func formatX(x float64) string {
	switch {
	case x >= 1e6 && math.Mod(x, 1e6) == 0:
		return fmt.Sprintf("%gM", x/1e6)
	case x >= 1e3 && math.Mod(x, 1e3) == 0:
		return fmt.Sprintf("%gk", x/1e3)
	default:
		return fmt.Sprintf("%g", x)
	}
}

// Table renders the series as a fixed-width table with one row per x
// value and one column per series.
func Table(xLabel string, x []float64, series []Series) string {
	var b strings.Builder
	colW := 12
	for _, s := range series {
		if len(s.Label)+2 > colW {
			colW = len(s.Label) + 2
		}
	}
	fmt.Fprintf(&b, "%-10s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%*s", colW, s.Label)
	}
	b.WriteByte('\n')
	for i := range x {
		fmt.Fprintf(&b, "%-10s", formatX(x[i]))
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%*.4f", colW, s.Y[i])
			} else {
				fmt.Fprintf(&b, "%*s", colW, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Chart renders an ASCII line chart: the x axis indexes the thresholds
// (log-like spacing comes for free since ladders are geometric), the y
// axis spans [min, max] of the data. Each series plots with its own
// glyph; a legend follows.
func Chart(x []float64, series []Series, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	if len(x) == 0 || len(series) == 0 {
		return "(no data)\n"
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			if v < minY {
				minY = v
			}
			if v > maxY {
				maxY = v
			}
		}
	}
	if math.IsInf(minY, 1) {
		return "(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '=', '~', '^', '$'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plotCol := func(i int) int {
		if len(x) == 1 {
			return 0
		}
		return i * (width - 1) / (len(x) - 1)
	}
	plotRow := func(v float64) int {
		frac := (v - minY) / (maxY - minY)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		prevCol, prevRow := -1, -1
		for i, v := range s.Y {
			if i >= len(x) {
				break
			}
			c, r := plotCol(i), plotRow(v)
			// Connect to the previous point with a sparse line.
			if prevCol >= 0 && c > prevCol+1 {
				for cc := prevCol + 1; cc < c; cc++ {
					rr := prevRow + (r-prevRow)*(cc-prevCol)/(c-prevCol)
					if grid[rr][cc] == ' ' {
						grid[rr][cc] = '.'
					}
				}
			}
			grid[r][c] = g
			prevCol, prevRow = c, r
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.4f |%s|\n", maxY, strings.Repeat("-", width))
	for r := 0; r < height; r++ {
		fmt.Fprintf(&b, "%8s |%s|\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%8.4f |%s|\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s%s .. %s\n", "x: ", formatX(x[0]), formatX(x[len(x)-1]))
	for si, s := range series {
		fmt.Fprintf(&b, "%10s%c = %s\n", "", glyphs[si%len(glyphs)], s.Label)
	}
	return b.String()
}
