package spec

import (
	"math"
	"testing"

	"repro/internal/dbt"
	"repro/internal/interp"
)

func TestSuiteComposition(t *testing.T) {
	all := Suite()
	if len(all) != 26 {
		t.Fatalf("suite has %d members, want 26", len(all))
	}
	ints, fps := 0, 0
	names := make(map[string]bool)
	for _, b := range all {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
		switch b.Class {
		case INT:
			ints++
		case FP:
			fps++
		}
	}
	if ints != 12 || fps != 14 {
		t.Fatalf("suite split %d INT / %d FP, want 12/14", ints, fps)
	}
	for _, want := range []string{"gzip", "mcf", "perlbmk", "wupwise", "lucas", "apsi"} {
		if ByName(want) == nil {
			t.Fatalf("missing benchmark %q", want)
		}
	}
	if ByName("nonexistent") != nil {
		t.Fatal("ByName invented a benchmark")
	}
}

func TestAllBenchmarksValidateAndBuild(t *testing.T) {
	for _, b := range Suite() {
		if err := b.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, input := range []string{"ref", "train"} {
			img, tape, err := b.Build(input, 0.0002)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, input, err)
			}
			if tape == nil {
				t.Fatalf("%s/%s: nil tape", b.Name, input)
			}
			if err := img.Validate(); err != nil {
				t.Fatalf("%s/%s image: %v", b.Name, input, err)
			}
		}
	}
}

func TestCodeIdenticalAcrossInputs(t *testing.T) {
	// The code layout must not depend on the input: only the data
	// segment (behaviour parameters) may differ. This is what makes
	// block addresses comparable between AVEP and INIP(train).
	for _, b := range Suite() {
		ref, _, err := b.Build("ref", 0.001)
		if err != nil {
			t.Fatal(err)
		}
		train, _, err := b.Build("train", 0.001)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Code) != len(train.Code) {
			t.Fatalf("%s: code lengths differ: %d vs %d", b.Name, len(ref.Code), len(train.Code))
		}
		for i := range ref.Code {
			if ref.Code[i] != train.Code[i] {
				t.Fatalf("%s: code word %d differs between inputs", b.Name, i)
			}
		}
	}
}

func TestBuildRejectsUnknownInput(t *testing.T) {
	if _, _, err := Suite()[0].Build("bogus", 0.01); err == nil {
		t.Fatal("unknown input accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	b := ByName("mcf")
	img1, _, err := b.Build("ref", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	img2, _, err := b.Build("ref", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img1.Code {
		if img1.Code[i] != img2.Code[i] {
			t.Fatal("builds not deterministic")
		}
	}
	for i := range img1.InitData {
		if img1.InitData[i] != img2.InitData[i] {
			t.Fatal("init data not deterministic")
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := ByName("vortex")
	bad := *good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("accepted empty name")
	}
	bad = *good
	bad.Ref.Params = [][]float64{{0.5}}
	if bad.Validate() == nil {
		t.Fatal("accepted short param row")
	}
	bad = *good
	bad.Ref = phased([]float64{5, 4},
		good.Ref.Params[0], good.Ref.Params[0], good.Ref.Params[0])
	if bad.Validate() == nil {
		t.Fatal("accepted non-ascending bounds")
	}
	bad = *good
	row := append([]float64(nil), good.Ref.Params[0]...)
	row[0] = 1.5
	bad.Ref = stationary(row)
	if bad.Validate() == nil {
		t.Fatal("accepted probability > 1")
	}
}

// runAVEP executes a benchmark without optimization and returns the
// snapshot.
func runAVEP(t *testing.T, b *Benchmark, scale float64) map[int]struct {
	use   uint64
	taken uint64
	bp    float64
	tgt   int
} {
	t.Helper()
	img, tape, err := b.Build("ref", scale)
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]struct {
		use   uint64
		taken uint64
		bp    float64
		tgt   int
	})
	for addr, blk := range snap.Blocks {
		if blk.HasBranch {
			out[addr] = struct {
				use   uint64
				taken uint64
				bp    float64
				tgt   int
			}{blk.Use, blk.Taken, blk.BranchProb(), blk.TakenTarget}
		}
	}
	return out
}

func TestStationaryBranchRealizesParameter(t *testing.T) {
	// A custom single-site benchmark: the branch's AVEP probability
	// must approximate the configured bias.
	b := &Benchmark{
		Name: "probe", Class: INT, Iters: 20000,
		Sites: []Site{{Kind: SiteBranch, Body: 2}},
		Ref:   stationary([]float64{0.3}),
		Train: stationary([]float64{0.3}),
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	img, tape, err := b.Build("ref", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	takenAddr := img.Symbols["s0_taken"]
	var bp float64
	var best uint64
	for _, blk := range snap.Blocks {
		if blk.HasBranch && blk.TakenTarget == takenAddr && blk.Use > best {
			best = blk.Use
			bp = blk.BranchProb()
		}
	}
	if best == 0 {
		t.Fatal("site branch not found")
	}
	if math.Abs(bp-0.3) > 0.02 {
		t.Fatalf("site branch probability %v, want ~0.3", bp)
	}
}

func TestGeoLoopRealizesLoopBack(t *testing.T) {
	b := &Benchmark{
		Name: "geoprobe", Class: FP, Iters: 20000,
		Sites: []Site{{Kind: SiteGeoLoop, Body: 2}},
		Ref:   stationary([]float64{0.9}),
		Train: stationary([]float64{0.9}),
	}
	img, tape, err := b.Build("ref", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	top := img.Symbols["s0_top"]
	var bp float64
	var found bool
	for _, blk := range snap.Blocks {
		if blk.HasBranch && blk.TakenTarget == top && blk.Addr == top {
			bp = blk.BranchProb()
			found = true
		}
	}
	if !found {
		t.Fatal("loop back branch not found")
	}
	if math.Abs(bp-0.9) > 0.02 {
		t.Fatalf("loop-back probability %v, want ~0.9", bp)
	}
}

func TestCountedLoopRealizesTrip(t *testing.T) {
	b := &Benchmark{
		Name: "tripprobe", Class: FP, Iters: 5000,
		Sites: []Site{{Kind: SiteCountedLoop, Body: 1}},
		Ref:   stationary([]float64{20}),
		Train: stationary([]float64{20}),
	}
	img, tape, err := b.Build("ref", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	// The back branch of the counted loop: trip = 20 + E[in&7] = 23.5,
	// so LP = (trip-1)/trip ~ 0.957.
	top := img.Symbols["s0_top"]
	var bp float64
	var best uint64
	for _, blk := range snap.Blocks {
		if blk.HasBranch && blk.TakenTarget == top && blk.Use > best {
			best = blk.Use
			bp = blk.BranchProb()
		}
	}
	if best == 0 {
		t.Fatal("counted loop back branch not found")
	}
	want := 22.5 / 23.5
	if math.Abs(bp-want) > 0.01 {
		t.Fatalf("counted loop LP %v, want ~%v", bp, want)
	}
}

func TestPhasedBenchmarkMixesPhases(t *testing.T) {
	// Two equal phases with biases 0.2 and 0.8: the AVEP probability of
	// the site branch must land near 0.5, while a short prefix sees 0.2.
	b := &Benchmark{
		Name: "phaseprobe", Class: INT, Iters: 20000,
		Sites: []Site{{Kind: SiteBranch, Body: 1}},
		Ref: phased([]float64{10000},
			[]float64{0.2},
			[]float64{0.8}),
		Train: stationary([]float64{0.5}),
	}
	img, tape, err := b.Build("ref", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	takenAddr := img.Symbols["s0_taken"]
	var bp float64
	var best uint64
	for _, blk := range snap.Blocks {
		if blk.HasBranch && blk.TakenTarget == takenAddr && blk.Use > best {
			best = blk.Use
			bp = blk.BranchProb()
		}
	}
	if math.Abs(bp-0.5) > 0.03 {
		t.Fatalf("phased average probability %v, want ~0.5", bp)
	}
}

func TestSwitchSiteExecutes(t *testing.T) {
	b := &Benchmark{
		Name: "swprobe", Class: INT, Iters: 5000,
		Sites: []Site{{Kind: SiteSwitch, Body: 2}},
		Ref:   stationary([]float64{0.7}),
		Train: stationary([]float64{0.7}),
	}
	img, tape, err := b.Build("ref", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Jump table patched to real code addresses. Data layout: 4 phases
	// x 1 site of params, 3 boundary words, then the table.
	tbl := 4*1 + 3
	for i := 0; i < 3; i++ {
		addr := img.InitData[tbl+i]
		if int(addr) >= len(img.Code) {
			t.Fatalf("jump table entry %d = %d outside code", i, addr)
		}
	}
	snap, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	// All three case blocks must have executed, the hot one most.
	var hotUse, coldUse uint64
	for i := 0; i < 3; i++ {
		sym := img.Symbols["s0_case0"]
		if i > 0 {
			sym = img.Symbols[map[int]string{1: "s0_case1", 2: "s0_case2"}[i]]
		}
		blk, ok := snap.Blocks[sym]
		if !ok || blk.Use == 0 {
			t.Fatalf("case %d never executed", i)
		}
		if i == 0 {
			hotUse = blk.Use
		} else {
			coldUse += blk.Use
		}
	}
	if hotUse < coldUse {
		t.Fatalf("hot case use %d below cold total %d despite p=0.7", hotUse, coldUse)
	}
}

func TestCallSiteExecutesHelper(t *testing.T) {
	b := &Benchmark{
		Name: "callprobe", Class: INT, Iters: 2000,
		Sites: []Site{{Kind: SiteCall}},
		Ref:   stationary([]float64{0}),
		Train: stationary([]float64{0}),
	}
	img, tape, err := b.Build("ref", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	helper := img.Symbols["helper"]
	blk, ok := snap.Blocks[helper]
	if !ok || blk.Use != 2000 {
		t.Fatalf("helper executed %v times, want 2000", blk)
	}
}

func TestScaleReducesWork(t *testing.T) {
	b := ByName("vortex")
	img, tape, err := b.Build("ref", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	small, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	img, tape, err = b.Build("ref", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.Instructions) / float64(small.Instructions)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("instruction ratio %v for 2x scale, want ~2", ratio)
	}
}

func TestTargetAdapter(t *testing.T) {
	tgt := ByName("swim").Target(0.0005)
	if tgt.Name != "swim" {
		t.Fatalf("target name %q", tgt.Name)
	}
	img, tape, err := tgt.Build("ref")
	if err != nil || img == nil || tape == nil {
		t.Fatalf("target build failed: %v", err)
	}
}

var sinkTape interp.Tape

func BenchmarkBuildMcf(b *testing.B) {
	bench := ByName("mcf")
	for i := 0; i < b.N; i++ {
		_, tape, err := bench.Build("ref", 0.001)
		if err != nil {
			b.Fatal(err)
		}
		sinkTape = tape
	}
}
