package spec

// The synthetic SPEC CPU2000 suite. Every benchmark's behaviour model
// encodes the phenomenon the paper reports for its namesake (section 4):
//
//	gzip     high mismatch (>40%) for T <= 500 from a short initial
//	         phase, dropping to a persistent ~20% from straddling a
//	         mid-run behaviour flip around a bucket boundary
//	vpr      loop trip counts flip low->high: trip-count class wrong
//	         until T ~ 80k
//	gcc      like vpr, plus moderate branch divergence
//	mcf      phase changes around 5k-10k and late in the run; BP poorly
//	         predicted at every T; initial loops look high-trip but are
//	         low-trip on average (LP classes wrong until T ~ 10k)
//	crafty   ~18% mismatch, flat across thresholds (half-run flip)
//	parser   multi-phase with diminishing divergence: improves with T
//	eon      stationary ref, divergent train: INIP beats train from 100
//	perlbmk  stationary ref, wildly divergent train (~50% mismatch)
//	gap      like parser
//	vortex   stationary, train close: everything accurate
//	bzip2    stationary, train modestly off: INIP beats train
//	twolf    stationary, train off: INIP beats train
//
//	wupwise  one branch flips late: ~20% mismatch until T ~ 1M
//	lucas    stationary ref, train badly off (~25%)
//	apsi     stationary ref, train off (~20%)
//	swim/mgrid/applu/galgel/facerec/sixtrack
//	         stationary high-trip loops: accurate from tiny thresholds
//	mesa     branchier FP member, stable
//	art      mild trip drift within the high class
//	equake   stable median-trip loops
//	ammp     stable loops
//	fma3d    stable mixed loops
//
// Thresholds are NOT scaled away: the default study runs the paper's
// actual ladder 100..4M, so the small-threshold sampling noise matches
// the paper's. What shrinks instead is total run length (driver
// iterations), which only compresses the high end of the ladder: for
// benchmarks whose hot blocks never reach 2T, INIP(T) simply equals
// AVEP, the correct limit. The poster-child benchmarks for late-phase
// effects (mcf, wupwise) get longer runs so their stories stay visible
// at the top of the ladder.
//
// INT benchmarks use a 9-site layout, FP a 7-site layout, so parameter
// rows read positionally; see intSites/fpSites for the ordering.

// intSites is the INT layout:
//
//	0..3  branches   4  diamond   5  counted loop (trip)
//	6     geo loop   7  call      8  switch
func intSites() []Site {
	return []Site{
		{Kind: SiteBranch, Body: 2},
		{Kind: SiteBranch, Body: 2},
		{Kind: SiteBranch, Body: 2},
		{Kind: SiteBranch, Body: 1},
		{Kind: SiteDiamond, Body: 2},
		{Kind: SiteCountedLoop, Body: 1},
		{Kind: SiteGeoLoop, Body: 1},
		{Kind: SiteCall},
		{Kind: SiteSwitch, Body: 1},
	}
}

// perlbmkSites is the INT layout with large block bodies: perlbmk's
// translated code is dominated by big dispatch blocks, which is what
// makes region scheduling quality matter so much for it (Figure 17).
func perlbmkSites() []Site {
	return []Site{
		{Kind: SiteBranch, Body: 6},
		{Kind: SiteBranch, Body: 6},
		{Kind: SiteBranch, Body: 5},
		{Kind: SiteBranch, Body: 5},
		{Kind: SiteDiamond, Body: 5},
		{Kind: SiteCountedLoop, Body: 4},
		{Kind: SiteGeoLoop, Body: 5},
		{Kind: SiteCall},
		{Kind: SiteSwitch, Body: 4},
		// ~2000 blocks of rarely-executed code (the interpreter's cold
		// opcode handlers): visited ~700 times per run, so a
		// retranslation threshold of 1k or more never optimizes it.
		{Kind: SiteColdCode, Body: 2000},
	}
}

// fpSites is the FP layout:
//
//	0..1  geo loops   2..3  counted loops (trips)
//	4..5  branches    6     call
func fpSites() []Site {
	return []Site{
		{Kind: SiteGeoLoop, Body: 1, Float: true},
		{Kind: SiteGeoLoop, Body: 1, Float: true},
		{Kind: SiteCountedLoop, Body: 1, Float: true},
		{Kind: SiteCountedLoop, Body: 1, Float: true},
		{Kind: SiteBranch, Body: 2},
		{Kind: SiteBranch, Body: 1},
		{Kind: SiteCall},
	}
}

// stationary builds a single-phase behaviour.
func stationary(params []float64) Behavior {
	return Behavior{Params: [][]float64{params}}
}

// phased builds a multi-phase behaviour.
func phased(bounds []float64, rows ...[]float64) Behavior {
	return Behavior{Bounds: bounds, Params: rows}
}

// Standard run lengths (driver iterations). See the package comment for
// why these are shorter than SPEC's while thresholds stay full-size.
const (
	intIters = 600e3
	fpIters  = 30e3
)

// Suite returns all 26 benchmarks, INT first.
func Suite() []*Benchmark {
	out := make([]*Benchmark, 0, 26)
	out = append(out, INTSuite()...)
	return append(out, FPSuite()...)
}

// ByName returns the named benchmark or nil.
func ByName(name string) *Benchmark {
	for _, b := range Suite() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// INTSuite returns the 12 SPECint2000 stand-ins.
//
// Weight accounting (per driver iteration, approximate branch-block
// executions): phase selectors 3, branch sites 4, diamond 1, counted
// loop back-branch trip+3.5, geo back-branch 1/(1-p), helper 1, switch
// 1, driver tail 1. Behaviour flips are placed on unit-weight branch
// sites so a flip of k sites moves ~k/23 of the benchmark's branch
// weight; loop parameters stay stable across mid-run flips except where
// a trip-count (LP) story requires otherwise.
func INTSuite() []*Benchmark {
	return []*Benchmark{
		{
			Name: "gzip", Class: INT, Iters: intIters, Sites: intSites(),
			// A short wild initial phase (first 700 iterations), then a
			// mid-run flip of four branch sites across bucket
			// boundaries: ~40%+ mismatch for T <= 500, a persistent
			// ~20% afterwards.
			Ref: phased([]float64{700, 300e3},
				[]float64{0.10, 0.95, 0.15, 0.85, 0.5, 12, 0.50, 0, 0.30},
				[]float64{0.55, 0.25, 0.60, 0.20, 0.5, 5, 0.55, 0, 0.80},
				[]float64{0.95, 0.65, 0.95, 0.50, 0.5, 5, 0.55, 0, 0.80}),
			Train: stationary([]float64{0.73, 0.43, 0.75, 0.33, 0.5, 5, 0.56, 0, 0.81}),
		},
		{
			Name: "vpr", Class: INT, Iters: 250e3, Sites: intSites(),
			// Loop trip counts flip low -> high after a short prologue.
			// Because profiling counters accumulate from first
			// execution, the early low-trip samples contaminate the
			// frozen estimate: the trip-count class reads median, not
			// high, until the window grows to T ~ 80k.
			Ref: phased([]float64{250},
				[]float64{0.85, 0.20, 0.75, 0.60, 0.5, 3, 0.60, 0, 0.85},
				[]float64{0.85, 0.20, 0.75, 0.60, 0.5, 90, 0.60, 0, 0.85}),
			Train: stationary([]float64{0.83, 0.22, 0.77, 0.58, 0.5, 86, 0.61, 0, 0.84}),
		},
		{
			Name: "gcc", Class: INT, Iters: 250e3, Sites: intSites(),
			// Like vpr for loops (class wrong until T ~ 80k) plus a
			// moderate branch divergence in the first 9k iterations.
			Ref: phased([]float64{350, 9e3},
				[]float64{0.60, 0.35, 0.88, 0.45, 0.45, 4, 0.65, 0, 0.75},
				[]float64{0.60, 0.35, 0.88, 0.45, 0.45, 80, 0.65, 0, 0.75},
				[]float64{0.78, 0.42, 0.88, 0.52, 0.45, 80, 0.65, 0, 0.75}),
			Train: stationary([]float64{0.75, 0.40, 0.86, 0.50, 0.45, 76, 0.66, 0, 0.76}),
		},
		{
			Name: "mcf", Class: INT, Iters: 8.5e6, Sites: intSites(),
			// A tiny initial phase with high-trip loops (the paper's
			// prefetching anecdote), a BP phase change straddled by the
			// 5k..10k windows, and a late change at 2.8M. The phase-2
			// and phase-3 branch values sit in different buckets than
			// their mix, so the profile is wrong at EVERY threshold.
			Ref: phased([]float64{170, 11e3, 2.8e6},
				[]float64{0.95, 0.10, 0.85, 0.90, 0.25, 60, 0.99, 0, 0.90},
				[]float64{0.60, 0.42, 0.62, 0.52, 0.50, 3, 0.60, 0, 0.70},
				[]float64{0.20, 0.85, 0.95, 0.15, 0.25, 3, 0.50, 0, 0.90},
				[]float64{0.80, 0.25, 0.35, 0.75, 0.62, 5, 0.65, 0, 0.55}),
			Train: stationary([]float64{0.58, 0.47, 0.56, 0.53, 0.5, 4, 0.62, 0, 0.68}),
		},
		{
			Name: "crafty", Class: INT, Iters: intIters, Sites: intSites(),
			// A half-run flip of four branch sites across the bucket
			// boundaries: ~18% mismatch, flat for every finite window.
			Ref: phased([]float64{300e3},
				[]float64{0.55, 0.25, 0.60, 0.20, 0.5, 6, 0.65, 0, 0.88},
				[]float64{0.95, 0.65, 0.95, 0.50, 0.5, 6, 0.65, 0, 0.88}),
			Train: stationary([]float64{0.74, 0.44, 0.76, 0.34, 0.5, 6, 0.66, 0, 0.87}),
		},
		{
			Name: "parser", Class: INT, Iters: intIters, Sites: intSites(),
			// Diminishing divergence: early phases differ a lot, later
			// phases settle near the average.
			Ref: phased([]float64{5e3, 40e3},
				[]float64{0.45, 0.78, 0.60, 0.66, 0.5, 4, 0.77, 0, 0.86},
				[]float64{0.60, 0.68, 0.68, 0.60, 0.5, 4, 0.77, 0, 0.86},
				[]float64{0.76, 0.54, 0.82, 0.51, 0.5, 4, 0.78, 0, 0.86}),
			Train: stationary([]float64{0.71, 0.59, 0.79, 0.53, 0.5, 4, 0.77, 0, 0.85}),
		},
		{
			Name: "eon", Class: INT, Iters: intIters, Sites: intSites(),
			// Stationary reference; the training input behaves quite
			// differently, so INIP beats train at every threshold.
			Ref:   stationary([]float64{0.88, 0.15, 0.75, 0.60, 0.5, 7, 0.78, 0, 0.90}),
			Train: stationary([]float64{0.60, 0.40, 0.45, 0.80, 0.5, 10, 0.66, 0, 0.74}),
		},
		{
			Name: "perlbmk", Class: INT, Iters: intIters, Sites: perlbmkSites(),
			// The paper's standout: the training input predicts the
			// reference run terribly (~50% mismatch) while even a
			// 100-sample initial profile nails it, and the performance
			// gap between profile-guided regions and T=1 regions is the
			// suite's largest: the branch biases sit just past the
			// region former's 0.7 minimum probability, so one-sample
			// region formation regularly picks wrong directions, and
			// the large block bodies make on-trace scheduling matter.
			Ref:   stationary([]float64{0.78, 0.22, 0.78, 0.22, 0.5, 6, 0.78, 0, 0.78, 0.0012}),
			Train: stationary([]float64{0.25, 0.78, 0.22, 0.82, 0.5, 40, 0.35, 0, 0.32, 0.0012}),
		},
		{
			Name: "gap", Class: INT, Iters: intIters, Sites: intSites(),
			Ref: phased([]float64{8e3, 60e3},
				[]float64{0.50, 0.75, 0.55, 0.80, 0.5, 5, 0.76, 0, 0.84},
				[]float64{0.62, 0.66, 0.66, 0.72, 0.5, 5, 0.76, 0, 0.84},
				[]float64{0.78, 0.52, 0.78, 0.66, 0.5, 5, 0.77, 0, 0.84}),
			Train: stationary([]float64{0.74, 0.56, 0.76, 0.65, 0.5, 5, 0.77, 0, 0.83}),
		},
		{
			Name: "vortex", Class: INT, Iters: intIters, Sites: intSites(),
			Ref:   stationary([]float64{0.85, 0.20, 0.90, 0.45, 0.5, 7, 0.76, 0, 0.90}),
			Train: stationary([]float64{0.84, 0.21, 0.89, 0.46, 0.5, 7, 0.75, 0, 0.89}),
		},
		{
			Name: "bzip2", Class: INT, Iters: intIters, Sites: intSites(),
			Ref:   stationary([]float64{0.80, 0.30, 0.85, 0.55, 0.5, 6, 0.72, 0, 0.88}),
			Train: stationary([]float64{0.68, 0.37, 0.76, 0.62, 0.5, 8, 0.67, 0, 0.81}),
		},
		{
			Name: "twolf", Class: INT, Iters: intIters, Sites: intSites(),
			Ref:   stationary([]float64{0.92, 0.12, 0.78, 0.62, 0.5, 8, 0.74, 0, 0.91}),
			Train: stationary([]float64{0.80, 0.24, 0.66, 0.73, 0.5, 10, 0.68, 0, 0.84}),
		},
	}
}

// FPSuite returns the 14 SPECfp2000 stand-ins.
func FPSuite() []*Benchmark {
	return []*Benchmark{
		{
			Name: "wupwise", Class: FP, Iters: 800e3, Sites: fpSites(),
			// The dominant geometric loop flips its continuation
			// probability at half-run: ~20% of branch weight stays
			// mispredicted until the freeze window passes the boundary
			// near the top of the ladder (the paper's "until 1M").
			Ref: phased([]float64{400e3},
				[]float64{0.55, 0.85, 14, 12, 0.25, 0.90, 0},
				[]float64{0.95, 0.85, 14, 12, 0.85, 0.90, 0}),
			Train: stationary([]float64{0.76, 0.85, 14, 12, 0.66, 0.89, 0}),
		},
		{
			Name: "swim", Class: FP, Iters: fpIters, Sites: fpSites(),
			Ref:   stationary([]float64{0.985, 0.98, 60, 30, 0.92, 0.85, 0}),
			Train: stationary([]float64{0.983, 0.977, 56, 32, 0.89, 0.87, 0}),
		},
		{
			Name: "mgrid", Class: FP, Iters: fpIters, Sites: fpSites(),
			Ref:   stationary([]float64{0.985, 0.99, 55, 28, 0.88, 0.93, 0}),
			Train: stationary([]float64{0.983, 0.988, 52, 30, 0.86, 0.91, 0}),
		},
		{
			Name: "applu", Class: FP, Iters: fpIters, Sites: fpSites(),
			Ref:   stationary([]float64{0.98, 0.985, 58, 35, 0.90, 0.88, 0}),
			Train: stationary([]float64{0.978, 0.983, 60, 33, 0.88, 0.86, 0}),
		},
		{
			Name: "mesa", Class: FP, Iters: fpIters, Sites: fpSites(),
			Ref:   stationary([]float64{0.96, 0.95, 25, 18, 0.80, 0.75, 0}),
			Train: stationary([]float64{0.955, 0.945, 27, 19, 0.78, 0.77, 0}),
		},
		{
			Name: "galgel", Class: FP, Iters: fpIters, Sites: fpSites(),
			Ref:   stationary([]float64{0.99, 0.985, 65, 40, 0.93, 0.91, 0}),
			Train: stationary([]float64{0.988, 0.983, 62, 42, 0.91, 0.90, 0}),
		},
		{
			Name: "art", Class: FP, Iters: fpIters, Sites: fpSites(),
			// A drift inside the high-trip class: visible in Sd.LP but
			// not in the class mismatch.
			Ref: phased([]float64{5e3},
				[]float64{0.985, 0.98, 60, 35, 0.90, 0.85, 0},
				[]float64{0.992, 0.987, 75, 30, 0.90, 0.85, 0}),
			Train: stationary([]float64{0.991, 0.986, 72, 31, 0.89, 0.85, 0}),
		},
		{
			Name: "equake", Class: FP, Iters: fpIters, Sites: fpSites(),
			Ref:   stationary([]float64{0.96, 0.95, 30, 20, 0.86, 0.82, 0}),
			Train: stationary([]float64{0.957, 0.947, 32, 21, 0.84, 0.84, 0}),
		},
		{
			Name: "facerec", Class: FP, Iters: fpIters, Sites: fpSites(),
			Ref:   stationary([]float64{0.988, 0.986, 62, 38, 0.91, 0.88, 0}),
			Train: stationary([]float64{0.986, 0.984, 59, 40, 0.89, 0.86, 0}),
		},
		{
			Name: "ammp", Class: FP, Iters: fpIters, Sites: fpSites(),
			Ref:   stationary([]float64{0.975, 0.97, 40, 28, 0.84, 0.80, 0}),
			Train: stationary([]float64{0.972, 0.967, 42, 29, 0.82, 0.82, 0}),
		},
		{
			Name: "lucas", Class: FP, Iters: fpIters, Sites: fpSites(),
			// Stationary ref; train badly off (paper: ~25% mismatch),
			// including the dominant loop crossing the high/median
			// class boundary.
			Ref:   stationary([]float64{0.985, 0.98, 55, 35, 0.90, 0.20, 0}),
			Train: stationary([]float64{0.955, 0.94, 18, 12, 0.45, 0.75, 0}),
		},
		{
			Name: "fma3d", Class: FP, Iters: fpIters, Sites: fpSites(),
			Ref:   stationary([]float64{0.98, 0.975, 56, 33, 0.87, 0.84, 0}),
			Train: stationary([]float64{0.977, 0.972, 58, 31, 0.85, 0.82, 0}),
		},
		{
			Name: "sixtrack", Class: FP, Iters: fpIters, Sites: fpSites(),
			Ref:   stationary([]float64{0.987, 0.984, 58, 36, 0.89, 0.86, 0}),
			Train: stationary([]float64{0.985, 0.982, 55, 38, 0.87, 0.84, 0}),
		},
		{
			Name: "apsi", Class: FP, Iters: fpIters, Sites: fpSites(),
			// Stationary ref; train off (paper: ~20% mismatch).
			Ref:   stationary([]float64{0.985, 0.975, 58, 34, 0.85, 0.90, 0}),
			Train: stationary([]float64{0.945, 0.96, 17, 11, 0.40, 0.60, 0}),
		},
	}
}
