// Package spec provides the synthetic SPEC CPU2000 stand-in suite: 12
// INT and 14 FP benchmark programs expressed as parameterized guest-code
// generators.
//
// The paper's phenomena are properties of program *behaviour* — whether
// branch biases and loop trip counts are stationary over the run,
// whether they shift in phases, and how the training input's behaviour
// relates to the reference input's. Each synthetic benchmark therefore
// declares a behaviour model:
//
//   - a set of sites (biased branches, unbiased diamonds, geometric
//     loops, counted loops, calls, indirect switches) that the generated
//     code instantiates;
//   - per input ("ref", "train"), a phase schedule (boundaries in
//     driver iterations) and per-phase parameter values for every site.
//
// Parameters are baked into the image's data segment, never into code,
// so the code layout — and with it every block address — is identical
// across inputs, exactly as for a real binary run on two inputs. The
// running program selects its current phase by comparing the iteration
// counter against boundary registers and indexing the parameter table,
// so phase changes are ordinary program behaviour, visible to the
// translator only through the branches it profiles.
//
// All quantities that correspond to the paper's x-axis (retranslation
// thresholds) and run lengths are expressed in "paper units" and scaled
// uniformly by the caller (see Scale in package study), preserving every
// ratio the figures report.
package spec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/interp"
)

// Class labels a benchmark as SPECint or SPECfp.
type Class int

const (
	// INT marks the integer suite (control-intensive).
	INT Class = iota
	// FP marks the floating-point suite (loop-intensive).
	FP
)

// String returns "INT" or "FP".
func (c Class) String() string {
	if c == FP {
		return "FP"
	}
	return "INT"
}

// SiteKind enumerates the code shapes a benchmark can instantiate.
type SiteKind int

const (
	// SiteBranch is a tape-driven two-way branch whose taken
	// probability is the site parameter.
	SiteBranch SiteKind = iota
	// SiteDiamond is an if/else whose both arms jump to a common merge
	// block; the parameter is the taken probability. Near-0.5 values
	// make the optimizer absorb the diamond whole (hyperblock shape).
	SiteDiamond
	// SiteGeoLoop is a do-while loop that continues with the site
	// parameter's probability: loop-back probability equals the
	// parameter directly.
	SiteGeoLoop
	// SiteCountedLoop runs a counted inner loop; the parameter is the
	// trip count (plus a small tape-driven jitter of 0..7).
	SiteCountedLoop
	// SiteCall invokes a shared helper procedure (parameter unused).
	SiteCall
	// SiteSwitch is a register-indirect dispatch: with the parameter's
	// probability it jumps to a hot target, otherwise to one of two
	// cold targets chosen by the tape.
	SiteSwitch
	// SiteColdCode is a chain of Body straight-line blocks guarded by a
	// branch taken with the (tiny) parameter probability: a stand-in
	// for a large, rarely-executed code footprint. Its role is the
	// performance study: a T=1 translator optimizes the whole chain
	// (paying the optimizer for cold code), while any realistic
	// threshold leaves it in quick-translated form.
	SiteColdCode
)

// Site is one code shape instance in a benchmark.
type Site struct {
	Kind SiteKind
	// Body is the number of filler ALU instructions per arm or loop
	// body, giving blocks realistic sizes and costs. For SiteColdCode
	// it is the number of cold blocks in the chain.
	Body int
	// Float selects floating-point filler (FP benchmarks).
	Float bool
}

// Behavior is one input's behaviour model.
type Behavior struct {
	// Bounds are ascending phase boundaries in paper-unit driver
	// iterations; len(Bounds)+1 phases result. At most 3 boundaries.
	Bounds []float64
	// Params[phase][site] is the per-phase parameter of each site:
	// a probability in [0,1] for branch/diamond/geo/switch sites, a
	// trip count >= 1 for counted loops, ignored for calls.
	Params [][]float64
}

// phases returns the number of phases.
func (b *Behavior) phases() int { return len(b.Bounds) + 1 }

// Benchmark is one synthetic SPEC2000 member.
type Benchmark struct {
	Name  string
	Class Class
	// Iters is the driver iteration count in paper units.
	Iters float64
	Sites []Site
	Ref   Behavior
	Train Behavior
}

// Validate checks structural consistency of the behaviour models.
func (b *Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("spec: benchmark without name")
	}
	if b.Iters < 1 {
		return fmt.Errorf("spec: %s: iters %v < 1", b.Name, b.Iters)
	}
	if len(b.Sites) == 0 {
		return fmt.Errorf("spec: %s: no sites", b.Name)
	}
	for _, in := range []struct {
		name string
		bh   *Behavior
	}{{"ref", &b.Ref}, {"train", &b.Train}} {
		if len(in.bh.Bounds) > 3 {
			return fmt.Errorf("spec: %s/%s: more than 3 phase bounds", b.Name, in.name)
		}
		prev := 0.0
		for _, bound := range in.bh.Bounds {
			if bound <= prev {
				return fmt.Errorf("spec: %s/%s: bounds not ascending", b.Name, in.name)
			}
			if bound >= b.Iters {
				return fmt.Errorf("spec: %s/%s: bound %v beyond iters %v", b.Name, in.name, bound, b.Iters)
			}
			prev = bound
		}
		if len(in.bh.Params) != in.bh.phases() {
			return fmt.Errorf("spec: %s/%s: %d param rows for %d phases", b.Name, in.name, len(in.bh.Params), in.bh.phases())
		}
		for p, row := range in.bh.Params {
			if len(row) != len(b.Sites) {
				return fmt.Errorf("spec: %s/%s: phase %d has %d params for %d sites", b.Name, in.name, p, len(row), len(b.Sites))
			}
			for s, v := range row {
				switch b.Sites[s].Kind {
				case SiteCountedLoop:
					if v < 1 || v > 1<<20 {
						return fmt.Errorf("spec: %s/%s: phase %d site %d: trip %v out of range", b.Name, in.name, p, s, v)
					}
				case SiteCall:
					// unused
				default:
					if v < 0 || v > 1 {
						return fmt.Errorf("spec: %s/%s: phase %d site %d: probability %v out of [0,1]", b.Name, in.name, p, s, v)
					}
				}
			}
		}
	}
	return nil
}

// Build generates the guest image and tape for the named input at the
// given scale. Scale multiplies iteration counts and phase boundaries;
// thresholds must be scaled identically by the caller.
func (b *Benchmark) Build(input string, scale float64) (*guest.Image, interp.Tape, error) {
	if err := b.Validate(); err != nil {
		return nil, nil, err
	}
	var bh *Behavior
	switch input {
	case "ref":
		bh = &b.Ref
	case "train":
		bh = &b.Train
	default:
		return nil, nil, fmt.Errorf("spec: %s: unknown input %q", b.Name, input)
	}
	img, err := generate(b, bh, scale)
	if err != nil {
		return nil, nil, err
	}
	tape := interp.NewUniformTape(b.Name + "/" + input)
	return img, tape, nil
}

// Target adapts the benchmark to the core experiment pipeline at a fixed
// scale.
func (b *Benchmark) Target(scale float64) core.Target {
	return core.Target{
		Name: b.Name,
		Build: func(input string) (*guest.Image, interp.Tape, error) {
			return b.Build(input, scale)
		},
		NewTape: func(input string) (interp.Tape, error) {
			if input != "ref" && input != "train" {
				return nil, fmt.Errorf("spec: %s: unknown input %q", b.Name, input)
			}
			return interp.NewUniformTape(b.Name + "/" + input), nil
		},
		// The tape is fully determined by its seed string, so the seed
		// is its cache identity. Scale is not part of it: scale changes
		// the image (parameters are baked into the data segment), which
		// the image hash already covers.
		TapeID: func(input string) string {
			return "uniform:" + b.Name + "/" + input
		},
	}
}
