package spec

import (
	"testing"

	"repro/internal/dbt"
	"repro/internal/interp"
)

func BenchmarkMcfAVEP(b *testing.B) {
	img, _, err := ByName("mcf").Build("ref", 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := dbt.Run(img, interp.NewUniformTape("mcf/ref"), dbt.Config{Optimize: false})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.Instructions), "instrs")
	}
}
