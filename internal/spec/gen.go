package spec

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/isa"
)

// Register conventions of generated code. Sites may clobber r1..r6;
// the helper procedure uses r4/r5; filler uses r13/r12.
const (
	regZero   = 0  // always 0
	regIter   = 14 // driver iteration counter
	regLimit  = 10 // driver iteration limit
	regPhase  = 15 // current phase's parameter-table base
	regFillA  = 13 // filler scratch
	regFillB  = 12 // filler scratch
	regBound0 = 11 // phase boundary registers
	regBound1 = 9
	regBound2 = 8
)

// scaleCount converts a paper-unit count to an effective count at the
// given scale, never below 1.
func scaleCount(x, scale float64) int32 {
	v := x * scale
	if v < 1 {
		return 1
	}
	const maxCount = 1 << 30
	if v > maxCount {
		return maxCount
	}
	return int32(v + 0.5)
}

// probParam converts a probability to the tape-comparison constant.
func probParam(p float64) uint32 {
	v := int(p*interp.ProbScale + 0.5)
	if v < 0 {
		v = 0
	}
	if v > interp.ProbScale-1 {
		v = interp.ProbScale - 1
	}
	return uint32(v)
}

// maxPhases is the fixed phase capacity of generated programs. Every
// behaviour is padded to this many phases so that the emitted code — and
// with it every block address — is identical across inputs regardless of
// how many phases each input actually uses.
const maxPhases = 4

// wideLoad emits a fixed three-instruction constant load so that code
// length never depends on the constant's magnitude (which differs
// between inputs).
func wideLoad(gb *guest.Builder, rd uint8, v int32) {
	u := uint32(v)
	gb.Emit(isa.Inst{Op: isa.OpLoadi, Rd: rd, Imm: int32(u >> 26)})
	gb.Emit(isa.Inst{Op: isa.OpLuhi, Rd: rd, Imm: int32(u >> 13 & 0x1FFF)})
	gb.Emit(isa.Inst{Op: isa.OpLuhi, Rd: rd, Imm: int32(u & 0x1FFF)})
}

// generate emits the benchmark program for one behaviour model.
func generate(b *Benchmark, bh *Behavior, scale float64) (*guest.Image, error) {
	nSites := len(b.Sites)
	gb := guest.NewBuilder(b.Name)

	// Canonical 4-phase schedule: unused trailing bounds sit beyond the
	// iteration limit so their phases never activate, and their param
	// rows repeat the last real row.
	const neverBound = int32(1 << 30)
	bounds := [maxPhases - 1]int32{neverBound, neverBound, neverBound}
	for i, bound := range bh.Bounds {
		bounds[i] = scaleCount(bound, scale)
	}
	rows := make([][]float64, maxPhases)
	for p := 0; p < maxPhases; p++ {
		if p < len(bh.Params) {
			rows[p] = bh.Params[p]
		} else {
			rows[p] = bh.Params[len(bh.Params)-1]
		}
	}

	// Data layout: parameter table, then the three phase-boundary
	// words, then any switch jump tables. Boundaries are input data, so
	// they live in the data segment (like a real program's input-derived
	// state), keeping the code segment bit-identical across inputs.
	paramsSize := maxPhases * nSites
	boundsOff := paramsSize

	main := gb.Here("main")
	gb.SetEntry(main)
	gb.LoadImm(regZero, 0)
	gb.LoadImm(regIter, 0)
	wideLoad(gb, regLimit, scaleCount(b.Iters, scale))
	boundRegs := []uint8{regBound0, regBound1, regBound2}
	for i, reg := range boundRegs {
		gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: reg, Rs: regZero, Imm: int32(boundsOff + i)})
	}
	gb.LoadImm(regFillA, 0x1234)
	gb.LoadImm(regFillB, 0x5e37)

	driverTop := gb.Here("driver_top")
	sites := gb.NewLabel("sites")

	// Phase selection: compare the iteration counter against the
	// boundary registers and set regPhase to phase*nSites.
	sel := make([]guest.Label, maxPhases-1)
	for i := range sel {
		sel[i] = gb.NewLabel(fmt.Sprintf("phase%d", i))
	}
	for i := 0; i < maxPhases-1; i++ {
		gb.Branch(isa.OpBlt, regIter, boundRegs[i], sel[i])
	}
	gb.Emit(isa.Inst{Op: isa.OpLoadi, Rd: regPhase, Imm: int32((maxPhases - 1) * nSites)})
	gb.Jump(sites)
	for i := maxPhases - 2; i >= 0; i-- {
		gb.Bind(sel[i])
		gb.Emit(isa.Inst{Op: isa.OpLoadi, Rd: regPhase, Imm: int32(i * nSites)})
		gb.Jump(sites)
	}
	gb.Bind(sites)
	phases := maxPhases

	// Site bodies.
	var helper guest.Label
	needHelper := false
	for _, s := range b.Sites {
		if s.Kind == SiteCall {
			needHelper = true
		}
	}
	if needHelper {
		helper = gb.NewLabel("helper")
	}
	// Switch jump tables live after the boundary words in data memory.
	type swPatch struct {
		off     int      // data offset of this table
		targets []string // symbol names of the targets
	}
	type coldChain struct {
		start  guest.Label
		ret    guest.Label
		tblOff int
		blocks int
	}
	var patches []swPatch
	var coldChains []coldChain
	nextTbl := boundsOff + len(boundRegs)

	filler := func(n int, float bool) {
		if float {
			gb.FloatNops(n)
		} else {
			gb.Nops(n)
		}
	}

	for i, s := range b.Sites {
		off := int32(i)
		switch s.Kind {
		case SiteBranch:
			taken := gb.NewLabel(fmt.Sprintf("s%d_taken", i))
			next := gb.NewLabel(fmt.Sprintf("s%d_next", i))
			gb.In(1)
			gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: 6, Rs: regPhase, Imm: off})
			gb.Branch(isa.OpBlt, 1, 6, taken)
			filler(s.Body, s.Float)
			gb.Jump(next)
			gb.Bind(taken)
			filler(s.Body, s.Float)
			gb.Bind(next)
		case SiteDiamond:
			takenArm := gb.NewLabel(fmt.Sprintf("s%d_t", i))
			merge := gb.NewLabel(fmt.Sprintf("s%d_m", i))
			gb.In(1)
			gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: 6, Rs: regPhase, Imm: off})
			gb.Branch(isa.OpBlt, 1, 6, takenArm)
			filler(s.Body, s.Float)
			gb.Jump(merge)
			gb.Bind(takenArm)
			filler(s.Body, s.Float)
			gb.Jump(merge)
			gb.Bind(merge)
		case SiteGeoLoop:
			gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: 6, Rs: regPhase, Imm: off})
			top := gb.Here(fmt.Sprintf("s%d_top", i))
			filler(s.Body, s.Float)
			gb.In(1)
			gb.Branch(isa.OpBlt, 1, 6, top)
		case SiteCountedLoop:
			gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: 2, Rs: regPhase, Imm: off})
			gb.In(1)
			gb.Emit(isa.Inst{Op: isa.OpLoadi, Rd: 3, Imm: 7})
			gb.Emit(isa.Inst{Op: isa.OpAnd, Rd: 1, Rs: 1, Rt: 3})
			gb.Emit(isa.Inst{Op: isa.OpAdd, Rd: 2, Rs: 2, Rt: 1})
			top := gb.Here(fmt.Sprintf("s%d_top", i))
			filler(s.Body, s.Float)
			gb.Addi(2, 2, -1)
			gb.Branch(isa.OpBne, 2, regZero, top)
		case SiteCall:
			gb.Call(helper)
		case SiteColdCode:
			// The chain is far too large for PC-relative branches, so
			// entry and exit go through register-indirect jumps whose
			// targets live in the data segment (patched after layout,
			// like the switch tables). The chain itself is emitted
			// after the driver (see coldChains below).
			enter := gb.NewLabel(fmt.Sprintf("s%d_enter", i))
			next := gb.NewLabel(fmt.Sprintf("s%d_next", i))
			chainStart := fmt.Sprintf("s%d_cold", i)
			myTbl := nextTbl
			nextTbl += 2
			patches = append(patches, swPatch{off: myTbl, targets: []string{chainStart, fmt.Sprintf("s%d_next", i)}})
			gb.In(1)
			gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: 6, Rs: regPhase, Imm: off})
			gb.Branch(isa.OpBlt, 1, 6, enter)
			gb.Jump(next)
			gb.Bind(enter)
			gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: 2, Rs: regZero, Imm: int32(myTbl)})
			chainLbl := gb.NewLabel(chainStart)
			gb.JumpIndirect(2, chainLbl)
			gb.Bind(next)
			coldChains = append(coldChains, coldChain{
				start:  chainLbl,
				ret:    next,
				tblOff: myTbl,
				blocks: s.Body,
			})
		case SiteSwitch:
			hot := gb.NewLabel(fmt.Sprintf("s%d_hot", i))
			next := gb.NewLabel(fmt.Sprintf("s%d_next", i))
			tNames := make([]string, 3)
			targets := make([]guest.Label, 3)
			for j := range targets {
				tNames[j] = fmt.Sprintf("s%d_case%d", i, j)
				targets[j] = gb.NewLabel(tNames[j])
			}
			myTbl := nextTbl
			nextTbl += 3
			patches = append(patches, swPatch{off: myTbl, targets: tNames})

			gb.In(1)
			gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: 6, Rs: regPhase, Imm: off})
			gb.Branch(isa.OpBlt, 1, 6, hot)
			// Cold path: pick case 1 or 2 by tape parity.
			gb.In(1)
			gb.Emit(isa.Inst{Op: isa.OpLoadi, Rd: 3, Imm: 1})
			gb.Emit(isa.Inst{Op: isa.OpAnd, Rd: 1, Rs: 1, Rt: 3})
			gb.Addi(1, 1, int32(myTbl+1))
			gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: 2, Rs: 1, Imm: 0})
			gb.JumpIndirect(2, targets...)
			gb.Bind(hot)
			gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: 2, Rs: regZero, Imm: int32(myTbl)})
			gb.JumpIndirect(2, targets...)
			for j := range targets {
				gb.Bind(targets[j])
				filler(s.Body, s.Float)
				gb.Jump(next)
			}
			gb.Bind(next)
		default:
			return nil, fmt.Errorf("spec: %s: unknown site kind %d", b.Name, s.Kind)
		}
	}

	// Driver tail.
	gb.Addi(regIter, regIter, 1)
	gb.Branch(isa.OpBlt, regIter, regLimit, driverTop)
	gb.Emit(isa.Inst{Op: isa.OpHalt})

	// Shared helper: a stable 50/50 tape-driven branch plus filler.
	if needHelper {
		gb.Bind(helper)
		gb.In(4)
		gb.Emit(isa.Inst{Op: isa.OpLoadi, Rd: 5, Imm: interp.ProbScale / 2})
		h1 := gb.NewLabel("helper_t")
		gb.Branch(isa.OpBlt, 4, 5, h1)
		gb.Nops(2)
		gb.Ret()
		gb.Bind(h1)
		gb.Nops(2)
		gb.Ret()
	}

	// Cold code chains, after everything the hot path touches. Each is
	// a run of straight-line blocks separated by direct jumps (so the
	// translator discovers each block individually), ending in an
	// indirect jump back to the driver.
	for _, cc := range coldChains {
		gb.Bind(cc.start)
		blocks := cc.blocks
		if blocks < 1 {
			blocks = 1
		}
		for j := 0; j < blocks; j++ {
			gb.Nops(12)
			step := gb.NewLabel("")
			gb.Jump(step)
			gb.Bind(step)
		}
		gb.Emit(isa.Inst{Op: isa.OpLoad, Rd: 2, Rs: regZero, Imm: int32(cc.tblOff + 1)})
		gb.JumpIndirect(2, cc.ret)
	}

	// Parameter table, boundary words, jump tables.
	data := make([]uint32, nextTbl)
	for i := range boundRegs {
		data[boundsOff+i] = uint32(bounds[i])
	}
	for p := 0; p < phases; p++ {
		for i, s := range b.Sites {
			v := rows[p][i]
			switch s.Kind {
			case SiteCountedLoop:
				data[p*nSites+i] = uint32(v + 0.5)
			case SiteCall:
				data[p*nSites+i] = 0
			default:
				data[p*nSites+i] = probParam(v)
			}
		}
	}
	gb.SetInitData(data)
	gb.ReserveData(nextTbl + 8)

	img, err := gb.Build()
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", b.Name, err)
	}
	// Patch switch tables with the resolved target addresses.
	for _, p := range patches {
		for j, name := range p.targets {
			addr, ok := img.Symbols[name]
			if !ok {
				return nil, fmt.Errorf("spec: %s: switch target %q unresolved", b.Name, name)
			}
			img.InitData[p.off+j] = uint32(addr)
		}
	}
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("spec: %s: %w", b.Name, err)
	}
	return img, nil
}
