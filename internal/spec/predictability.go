package spec

// Branch-predictability classification of the behaviour models, the
// grouping axis the predictor-zoo figures report mispredict rates
// under. The classes follow the workload-characterization literature:
// a benchmark whose conditional branches are all heavily biased is
// easy for any history-based scheme; one whose branch probabilities
// move between phases stresses predictor retraining; everything in
// between is mixed.
//
// The classification is static — derived from the declarative Ref
// behaviour model, not from an execution — so it is a fixed property
// of the suite and never depends on scale, ladder or run mode.

// Predictability is a benchmark's branch-predictability class.
type Predictability string

const (
	// PredBiased: every branch-like site keeps a strongly biased
	// direction (probability <= 0.3 or >= 0.7, the BP-bucket edges) in
	// every phase.
	PredBiased Predictability = "biased"
	// PredMixed: at least one branch-like site sits in the middle of
	// the probability range, but no site's bias moves across phases.
	PredMixed Predictability = "mixed"
	// PredPhaseChanging: some branch-like site's parameter moves by
	// more than 0.1 between phases, so a predictor's trained state goes
	// stale mid-run.
	PredPhaseChanging Predictability = "phase-changing"
)

// PredictabilityClasses lists the classes in canonical report order.
func PredictabilityClasses() []Predictability {
	return []Predictability{PredBiased, PredMixed, PredPhaseChanging}
}

// branchLike reports whether a site kind contributes conditional
// branches whose direction its parameter controls. Counted loops and
// calls branch too, but perfectly regularly — their parameter is a
// trip count or unused, not a direction bias.
func branchLike(k SiteKind) bool {
	switch k {
	case SiteBranch, SiteDiamond, SiteGeoLoop, SiteSwitch, SiteColdCode:
		return true
	}
	return false
}

// Predictability classifies the benchmark's reference behaviour.
func (b *Benchmark) Predictability() Predictability {
	const phaseDelta = 0.1
	if b.Ref.phases() > 1 {
		for s, site := range b.Sites {
			if !branchLike(site.Kind) {
				continue
			}
			for p := 1; p < len(b.Ref.Params); p++ {
				d := b.Ref.Params[p][s] - b.Ref.Params[0][s]
				if d > phaseDelta || d < -phaseDelta {
					return PredPhaseChanging
				}
			}
		}
	}
	for s, site := range b.Sites {
		if !branchLike(site.Kind) {
			continue
		}
		for _, row := range b.Ref.Params {
			if p := row[s]; p > 0.3 && p < 0.7 {
				return PredMixed
			}
		}
	}
	return PredBiased
}
