package spec

import (
	"bytes"
	"testing"

	"repro/internal/cfg"
	"repro/internal/dbt"
	"repro/internal/interp"
	"repro/internal/profile"
)

func TestSnapshotSurvivesSaveLoadPipeline(t *testing.T) {
	// The dbtrun -> profcmp pipeline: a snapshot dumped to JSON and
	// reloaded must compare identically to the in-memory original.
	b := ByName("gcc")
	img, tape, err := b.Build("ref", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := dbt.Run(img, tape, dbt.Config{Optimize: true, Threshold: 100, RegisterTwice: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := profile.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(loaded.Blocks) != len(snap.Blocks) || len(loaded.Regions) != len(snap.Regions) {
		t.Fatalf("round trip changed shapes: %d/%d blocks, %d/%d regions",
			len(loaded.Blocks), len(snap.Blocks), len(loaded.Regions), len(snap.Regions))
	}
	for i, r := range snap.Regions {
		lr := loaded.Regions[i]
		if lr.Kind != r.Kind || lr.Entry != r.Entry || len(lr.Blocks) != len(r.Blocks) {
			t.Fatalf("region %d changed in round trip", i)
		}
	}
}

func TestSwitchHeavyProgramUnderTranslation(t *testing.T) {
	// The jr-based dispatch must work under full optimization: the
	// engine treats indirect targets as region boundaries.
	b := &Benchmark{
		Name: "swheavy", Class: INT, Iters: 30000,
		Sites: []Site{
			{Kind: SiteSwitch, Body: 2},
			{Kind: SiteSwitch, Body: 2},
			{Kind: SiteBranch, Body: 2},
		},
		Ref:   Behavior{Params: [][]float64{{0.8, 0.6, 0.9}}},
		Train: Behavior{Params: [][]float64{{0.8, 0.6, 0.9}}},
	}
	img, tape, err := b.Build("ref", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	snap, stats, err := dbt.Run(img, tape, dbt.Config{Optimize: true, Threshold: 200, RegisterTwice: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OptimizationWaves == 0 {
		t.Fatal("no optimization on a hot program")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	// No region may contain an indirect jump mid-region: jr blocks must
	// always be region tails (the former stops at TermOther).
	for _, r := range snap.Regions {
		for i := range r.Blocks {
			rb := &r.Blocks[i]
			if rb.TakenNext != -1 && !rb.HasBranch && rb.TakenTarget < 0 {
				t.Fatalf("region %d continues through an indirect transfer at %d", r.ID, rb.Addr)
			}
		}
	}
}

// TestDynamicLoopRegionsMatchStaticLoops cross-checks the translator's
// dynamic loop-region formation against static natural-loop analysis:
// every loop region's entry must lie inside some static natural loop
// (the dynamic optimizer cannot invent cycles the CFG does not have).
func TestDynamicLoopRegionsMatchStaticLoops(t *testing.T) {
	for _, name := range []string{"vortex", "swim", "mcf"} {
		b := ByName(name)
		img, tape, err := b.Build("ref", 0.01)
		if err != nil {
			t.Fatal(err)
		}
		g, err := cfg.Build(img)
		if err != nil {
			t.Fatal(err)
		}
		inLoop := map[int]bool{}
		for _, l := range g.NaturalLoops() {
			for addr := range l.Body {
				blk := g.Blocks[addr]
				for pc := blk.Start; pc <= blk.End; pc++ {
					inLoop[pc] = true
				}
			}
		}
		snap, _, err := dbt.Run(img, tape, dbt.Config{Optimize: true, Threshold: 50, RegisterTwice: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range snap.Regions {
			if r.Kind != profile.RegionLoop {
				continue
			}
			entry := r.EntryBlock().Addr
			if !inLoop[entry] {
				t.Errorf("%s: dynamic loop region entry %d outside every static natural loop", name, entry)
			}
		}
	}
}

// TestTranslatorMatchesInterpreterState is the strongest equivalence
// check between the two execution engines: for several benchmarks, the
// final guest registers and data memory after a full run must be
// bit-identical between the reference interpreter and the translator
// (with and without optimization — translation must never change guest
// semantics).
func TestTranslatorMatchesInterpreterState(t *testing.T) {
	for _, name := range []string{"vortex", "swim", "gzip"} {
		img, _, err := ByName(name).Build("ref", 0.005)
		if err != nil {
			t.Fatal(err)
		}
		m, err := interp.NewMachine(img, interp.NewUniformTape(name+"/ref"))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		for _, threshold := range []uint64{0, 50} {
			e, err := dbt.New(img, interp.NewUniformTape(name+"/ref"), dbt.Config{
				Optimize: threshold > 0, Threshold: threshold, RegisterTwice: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if e.State().Regs != m.State().Regs {
				t.Fatalf("%s T=%d: final registers differ:\n dbt    %v\n interp %v",
					name, threshold, e.State().Regs, m.State().Regs)
			}
			for i := range m.State().Mem {
				if e.State().Mem[i] != m.State().Mem[i] {
					t.Fatalf("%s T=%d: memory word %d differs", name, threshold, i)
				}
			}
		}
	}
}
