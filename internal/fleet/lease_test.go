package fleet

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resultcache"
	"repro/internal/study"
)

// fakeClock is a manual coordinator clock for deterministic lease
// state-machine tests (TickEvery < 0 disables the background scanner,
// so nothing reads it concurrently).
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time { return f.t }
func (f *fakeClock) advance(d time.Duration) time.Time {
	f.t = f.t.Add(d)
	return f.t
}

func manualCoordinator(t *testing.T, maxAttempts int, backoff time.Duration) (*Coordinator, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	c, err := NewCoordinator(Config{
		Study:        testStudy(t),
		LeaseTTL:     10 * time.Second,
		MaxAttempts:  maxAttempts,
		RetryBackoff: backoff,
		TickEvery:    -1, // manual Tick only
		Now:          clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, clk
}

func unitState(c *Coordinator, bench string) StatusUnit {
	for _, u := range c.StatusSnapshot().Units {
		if u.Bench == bench {
			return u
		}
	}
	return StatusUnit{}
}

// TestLeaseStateMachine walks one unit through the full lease protocol
// under a manual clock: grant exclusivity, heartbeat extension, expiry
// with backoff, reassignment, late completion from the dead lease
// revoking the live one, and duplicate suppression.
func TestLeaseStateMachine(t *testing.T) {
	c, clk := manualCoordinator(t, 5, time.Second)
	c.enqueue("gzip")

	// Grant is exclusive: the second ask waits.
	g1, _ := c.grant("w1", clk.t)
	if g1 == nil || g1.Attempt != 1 || g1.Unit.Bench != "gzip" {
		t.Fatalf("first grant = %+v", g1)
	}
	if g1.TTLMS != 10_000 {
		t.Fatalf("lease TTL = %dms, want 10000", g1.TTLMS)
	}
	if g, _ := c.grant("w2", clk.t); g != nil {
		t.Fatalf("second grant while leased = %+v, want nil", g)
	}

	// A heartbeat 3s in extends the deadline to beat+TTL.
	clk.advance(3 * time.Second)
	if ttl, ok := c.heartbeat(g1.ID, clk.t); !ok || ttl != 10*time.Second {
		t.Fatalf("heartbeat = (%v, %v)", ttl, ok)
	}
	if _, ok := c.heartbeat("L999999", clk.t); ok {
		t.Fatal("heartbeat on an unknown lease succeeded")
	}
	c.Tick(clk.advance(9 * time.Second)) // 12s after grant, 9s after beat: still alive
	if m := c.Counters(); m.Expiries != 0 {
		t.Fatalf("lease expired despite heartbeat extension: %+v", m)
	}
	if m := c.Counters(); m.MaxHeartbeatLag != 3*time.Second {
		t.Fatalf("max heartbeat lag = %v, want 3s", m.MaxHeartbeatLag)
	}

	// Silence past the extended deadline expires the lease; the unit
	// re-queues behind the retry backoff.
	c.Tick(clk.advance(2 * time.Second))
	if m := c.Counters(); m.Expiries != 1 {
		t.Fatalf("expiries = %d, want 1", m.Expiries)
	}
	if st := unitState(c, "gzip"); st.State != "pending" || st.Attempts != 1 {
		t.Fatalf("after expiry: %+v", st)
	}
	if _, ok := c.heartbeat(g1.ID, clk.t); ok {
		t.Fatal("heartbeat on an expired lease succeeded")
	}
	g, wait := c.grant("w2", clk.t)
	if g != nil || wait != time.Second {
		t.Fatalf("grant during backoff = (%+v, %v), want (nil, 1s)", g, wait)
	}

	// After the backoff the unit is re-leased: a reassignment.
	g2, _ := c.grant("w2", clk.advance(time.Second))
	if g2 == nil || g2.Attempt != 2 {
		t.Fatalf("re-grant = %+v, want attempt 2", g2)
	}
	if m := c.Counters(); m.Reassignments != 1 {
		t.Fatalf("reassignments = %d, want 1", m.Reassignments)
	}

	// The dead worker's completion arrives anyway (publish raced its
	// expiry): determinism makes it the truth, so it settles — late —
	// and revokes w2's live lease.
	resp, err := c.complete(&CompleteRequest{
		LeaseID: g1.ID, Worker: "w1", Bench: "gzip",
		Series: &study.BenchmarkSeries{Name: "gzip"},
	}, clk.t)
	if err != nil || resp.Status != StatusLate {
		t.Fatalf("late completion = (%+v, %v), want StatusLate", resp, err)
	}
	if st := unitState(c, "gzip"); st.State != "settled" {
		t.Fatalf("after late completion: %+v", st)
	}
	if _, ok := c.heartbeat(g2.ID, clk.t); ok {
		t.Fatal("superseded live lease survived the settle")
	}

	// w2's own completion is now a duplicate; a much later Tick finds
	// nothing to expire or conclude.
	resp, err = c.complete(&CompleteRequest{
		LeaseID: g2.ID, Worker: "w2", Bench: "gzip",
		Series: &study.BenchmarkSeries{Name: "gzip"},
	}, clk.t)
	if err != nil || resp.Status != StatusDuplicate {
		t.Fatalf("duplicate completion = (%+v, %v)", resp, err)
	}
	c.Tick(clk.advance(time.Hour))
	m := c.Counters()
	if m.Expiries != 1 || m.Completions != 1 || m.Late != 1 || m.Duplicates != 1 {
		t.Fatalf("final counters: %+v", m)
	}
	if st := unitState(c, "gzip"); st.State != "settled" {
		t.Fatalf("settled unit regressed: %+v", st)
	}

	// Unknown units are rejected.
	if _, err := c.complete(&CompleteRequest{Bench: "nonesuch"}, clk.t); err == nil {
		t.Fatal("completion for an unknown unit succeeded")
	}
}

// TestLeaseErrorAttemptsAndExhaustion: worker-reported errors conclude
// attempts (with retry), and a unit that loses every lease fails with
// a structured UnitFailure carrying the full attempt history.
func TestLeaseErrorAttemptsAndExhaustion(t *testing.T) {
	c, clk := manualCoordinator(t, 2, 0)
	c.enqueue("swim")

	// Attempt 1 reports a hard error: concluded, retryable.
	g1, _ := c.grant("w1", clk.t)
	resp, err := c.complete(&CompleteRequest{
		LeaseID: g1.ID, Worker: "w1", Bench: "swim", Error: "exec format error",
	}, clk.t)
	if err != nil || resp.Status != StatusRetry {
		t.Fatalf("errored completion = (%+v, %v), want StatusRetry", resp, err)
	}
	if m := c.Counters(); m.AttemptFailures != 1 {
		t.Fatalf("attempt failures = %d, want 1", m.AttemptFailures)
	}

	// Attempt 2 expires: the budget is spent, the unit fails for good
	// with both attempts in its history.
	if g2, _ := c.grant("w2", clk.t); g2 == nil {
		t.Fatal("no re-grant after errored attempt")
	}
	c.Tick(clk.advance(11 * time.Second))
	st := unitState(c, "swim")
	if st.State != "failed" || st.Attempts != 2 {
		t.Fatalf("after exhaustion: %+v", st)
	}
	m := c.Counters()
	if m.UnitsFailed != 1 {
		t.Fatalf("units failed = %d, want 1", m.UnitsFailed)
	}
	c.mu.Lock()
	f := c.units["swim"].failure
	c.mu.Unlock()
	if f == nil || f.Attempts != 2 {
		t.Fatalf("failure = %+v", f)
	}
	for _, needle := range []string{"exec format error", "expired", "attempt 1", "attempt 2"} {
		if !strings.Contains(f.Err, needle) {
			t.Fatalf("failure err %q missing %q", f.Err, needle)
		}
	}

	// A straggler completion for the failed unit is dropped as a
	// duplicate, not resurrected.
	resp, err = c.complete(&CompleteRequest{
		LeaseID: g1.ID, Worker: "w1", Bench: "swim",
		Series: &study.BenchmarkSeries{Name: "swim"},
	}, clk.t)
	if err != nil || resp.Status != StatusDuplicate {
		t.Fatalf("post-failure completion = (%+v, %v)", resp, err)
	}
}

// TestFleetSharedCacheNoDoubleExecution pins the zero-double-execution
// acceptance criterion with resultcache accounting: a 3-worker fleet
// over one shared store executes each unit exactly once (stores match a
// local cold run, zero hits), and a local warm run over the fleet's
// store replays everything without a single miss, byte-identical.
func TestFleetSharedCacheNoDoubleExecution(t *testing.T) {
	openStore := func(name string) *resultcache.Store {
		s, err := resultcache.Open(filepath.Join(t.TempDir(), name))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Baseline: a local cold run populating a fresh store.
	localStore := openStore("local")
	localCfg := testStudy(t)
	localCfg.Cache = localStore
	local, err := study.Run(localCfg)
	if err != nil {
		t.Fatal(err)
	}
	coldStores := localStore.Counters().Stores
	if coldStores == 0 {
		t.Fatal("local cold run stored nothing")
	}
	// A local warm replay sets the baseline counter shape (some unit
	// lookups miss by design even on a fully warm store).
	localWarm, err := study.Run(localCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The fleet run: three workers, one shared store.
	shared := openStore("shared")
	wcfgs := make([]WorkerConfig, 3)
	for i := range wcfgs {
		wcfgs[i] = WorkerConfig{Workers: 2, Cache: shared}
	}
	h := startFleet(t, Config{Study: testStudy(t), LeaseTTL: 5 * time.Second}, wcfgs)
	res, err := h.run(t)
	if err != nil {
		t.Fatal(err)
	}
	if got := figJSON(t, res); !bytes.Equal(got, figJSON(t, local)) {
		t.Fatal("fleet figures differ from the cached local run")
	}
	sc := shared.Counters()
	if sc.Stores != coldStores || sc.Hits != 0 {
		t.Fatalf("shared store = %+v, want %d stores and 0 hits (each unit executed exactly once)", sc, coldStores)
	}

	// Warm replay over the fleet's store: all hits, no misses, same bytes.
	warmCfg := testStudy(t)
	warmCfg.Cache = shared
	warm, err := study.Run(warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Perf.ResultCacheHits != localWarm.Perf.ResultCacheHits || warm.Perf.ResultCacheMisses != localWarm.Perf.ResultCacheMisses {
		t.Fatalf("warm replay over the fleet store: hits=%d misses=%d, want the local-warm shape hits=%d misses=%d",
			warm.Perf.ResultCacheHits, warm.Perf.ResultCacheMisses,
			localWarm.Perf.ResultCacheHits, localWarm.Perf.ResultCacheMisses)
	}
	if got := figJSON(t, warm); !bytes.Equal(got, figJSON(t, res)) {
		t.Fatal("warm replay of the fleet's cache differs from the fleet run")
	}
}

// TestFleetCoordinatorResume: a coordinator stopped mid-study (its
// checkpoint holding the settled units) restarts, resumes from the
// checkpoint, re-executes nothing already settled, and emits figures
// byte-identical to an uninterrupted run.
func TestFleetCoordinatorResume(t *testing.T) {
	local, err := study.Run(testStudy(t))
	if err != nil {
		t.Fatal(err)
	}
	state := t.TempDir()

	// Phase 1: one worker, stop after the first settled unit.
	cfg1 := Config{Study: testStudy(t), LeaseTTL: 5 * time.Second, StateDir: state}
	cfg1.Study.StopAfter = 1
	h1 := startFleet(t, cfg1, []WorkerConfig{{ID: "w1", Workers: 2}})
	_, err = h1.run(t)
	if !errors.Is(err, core.ErrStopped) {
		t.Fatalf("stopped run returned %v, want ErrStopped", err)
	}
	settled := h1.c.Counters().Completions
	if settled == 0 {
		t.Fatal("nothing settled before the stop")
	}
	if _, err := os.Stat(filepath.Join(state, "study.ckpt.jsonl")); err != nil {
		t.Fatalf("no checkpoint in the state dir: %v", err)
	}

	// Phase 2: a fresh coordinator over the same state dir resumes.
	cfg2 := Config{Study: testStudy(t), LeaseTTL: 5 * time.Second, StateDir: state}
	cfg2.Study.Resume = true
	h2 := startFleet(t, cfg2, []WorkerConfig{{ID: "w2", Workers: 2}})
	res, err := h2.run(t)
	if err != nil {
		t.Fatal(err)
	}
	if got := figJSON(t, res); !bytes.Equal(got, figJSON(t, local)) {
		t.Fatal("resumed fleet figures differ from an uninterrupted run")
	}
	if got := uint64(res.Perf.ResumedSeries); got != settled {
		t.Fatalf("resumed series = %d, want %d (settled units must not re-execute)", got, settled)
	}
	if got := h2.c.Counters().Completions; got != 3-settled {
		t.Fatalf("second run completions = %d, want %d", got, 3-settled)
	}
	// The lease journal accumulated both coordinators' grant records.
	if data, err := os.ReadFile(filepath.Join(state, "lease.journal.jsonl")); err != nil || !bytes.Contains(data, []byte(`"ev":"grant"`)) {
		t.Fatalf("lease journal missing grant records (err=%v)", err)
	}
}

// TestFleetHTTPEndpoints exercises the read-only surface after a run:
// status reports done with settled units, metrics exposes the fleet
// counters in Prometheus text format, and healthz answers.
func TestFleetHTTPEndpoints(t *testing.T) {
	h := startFleet(t, Config{Study: testStudy(t), LeaseTTL: 5 * time.Second}, []WorkerConfig{{Workers: 2}})
	if _, err := h.run(t); err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get(h.srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	status := get("/v1/fleet/status")
	for _, needle := range []string{`"done":true`, `"state":"settled"`, `"completions":3`} {
		if !strings.Contains(status, needle) {
			t.Fatalf("status %s missing %q", status, needle)
		}
	}
	metrics := get("/v1/fleet/metrics")
	for _, needle := range []string{
		"fleet_lease_grants_total 3",
		"fleet_completions_total 3",
		"fleet_lease_expiries_total 0",
		`fleet_units{state="settled"} 3`,
		"fleet_workers 1",
	} {
		if !strings.Contains(metrics, needle) {
			t.Fatalf("metrics missing %q:\n%s", needle, metrics)
		}
	}
	if !strings.Contains(get("/healthz"), "ok") {
		t.Fatal("healthz did not answer ok")
	}
}
