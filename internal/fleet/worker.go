package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/spec"
	"repro/internal/study"
)

// WorkerConfig shapes a fleet worker.
type WorkerConfig struct {
	// ID names this worker in leases, journals and status reports.
	// Default "w-<pid>".
	ID string
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Workers sizes the local execution pool (default GOMAXPROCS).
	Workers int
	// Policy is the local unit-failure policy. Degrade (the default)
	// absorbs unit failures into the published series — the benchmark
	// settles degraded, exactly as in-process. FailFast turns them
	// into failed attempts the coordinator retries.
	Policy core.FailurePolicy
	// MaxAttempts and RetryBackoff bound local per-unit retry, as in
	// study.Config.
	MaxAttempts  int
	RetryBackoff time.Duration
	// Cache is the shared content-addressed result store. Workers on
	// one host (or a shared filesystem) point at the same directory,
	// which is what makes reassigned units warm.
	Cache *resultcache.Store
	// Trace receives this worker's pipeline events.
	Trace *obs.Recorder
	// Faults arms deterministic fault injection: unit entries
	// (slow/trap/panic/build) apply to local execution — note any
	// armed plan disables result caching, as everywhere — and net
	// entries apply to this worker's protocol calls.
	Faults *faultinject.Plan
	// PollInterval paces lease polling when there is no work.
	// Default 200ms.
	PollInterval time.Duration
	// MaxOffline bounds how long the coordinator may stay unreachable
	// before Run gives up with an error. Crossing a coordinator
	// restart (kill-and-resume) relies on this being generous.
	// Default 2m.
	MaxOffline time.Duration
	// MaxUnits, when positive, exits Run after that many settled
	// completions (a deterministic test hook).
	MaxUnits int
	// ScratchDir, when non-empty, is this worker's state directory:
	// swept for orphaned temps on open, then stamped with a
	// worker.json marker.
	ScratchDir string
}

// WorkerStats counts what a worker did, for logs and tests.
type WorkerStats struct {
	UnitsSettled   uint64 // completions the coordinator accepted (incl. late)
	UnitsAbandoned uint64 // leases dropped after revocation or shutdown
	AttemptErrors  uint64 // completions published as failed attempts
	Heartbeats     uint64 // heartbeats acknowledged
}

// Worker pulls unit leases from a coordinator, executes them on a
// local scheduler through the same options-building path study.Run
// uses, heartbeats while executing, and publishes results. It
// tolerates coordinator unavailability (retry with MaxOffline budget)
// and lease revocation (abandon, poll again).
type Worker struct {
	cfg    WorkerConfig
	client *Client
	timing core.Timing

	unitsSettled   atomic.Uint64
	unitsAbandoned atomic.Uint64
	attemptErrors  atomic.Uint64
	heartbeats     atomic.Uint64
}

// NewWorker validates the configuration and opens the scratch
// directory.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if cfg.ID == "" {
		cfg.ID = fmt.Sprintf("w-%d", os.Getpid())
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.MaxOffline <= 0 {
		cfg.MaxOffline = 2 * time.Minute
	}
	w := &Worker{cfg: cfg, client: NewClient(cfg.Coordinator, cfg.Faults)}
	if dir := cfg.ScratchDir; dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: scratch dir: %w", err)
		}
		if _, err := atomicio.SweepTemps(dir); err != nil {
			return nil, fmt.Errorf("fleet: scratch sweep: %w", err)
		}
		marker, err := json.Marshal(map[string]any{
			"worker":      cfg.ID,
			"coordinator": cfg.Coordinator,
			"pid":         os.Getpid(),
		})
		if err == nil {
			err = atomicio.WriteFile(filepath.Join(dir, "worker.json"), append(marker, '\n'), 0o644)
		}
		if err != nil {
			return nil, fmt.Errorf("fleet: scratch marker: %w", err)
		}
	}
	return w, nil
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		UnitsSettled:   w.unitsSettled.Load(),
		UnitsAbandoned: w.unitsAbandoned.Load(),
		AttemptErrors:  w.attemptErrors.Load(),
		Heartbeats:     w.heartbeats.Load(),
	}
}

// Run polls for leases until the coordinator reports the study done
// (clean exit), the context is cancelled (clean exit: shutting down a
// worker is an expected fleet event), or the coordinator stays
// unreachable past MaxOffline.
func (w *Worker) Run(ctx context.Context) error {
	lastContact := time.Now()
	for {
		if ctx.Err() != nil {
			return nil
		}
		var lr LeaseResponse
		err := w.client.Post(ctx, EndpointLease, LeaseRequest{Worker: w.cfg.ID}, &lr)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if off := time.Since(lastContact); off > w.cfg.MaxOffline {
				return fmt.Errorf("fleet: coordinator unreachable for %v: %w", off.Round(time.Second), err)
			}
			if !w.sleep(ctx, w.cfg.PollInterval) {
				return nil
			}
			continue
		}
		lastContact = time.Now()
		if lr.Done {
			return nil
		}
		if lr.Lease == nil {
			wait := time.Duration(lr.WaitMS) * time.Millisecond
			if wait <= 0 || wait > w.cfg.PollInterval {
				wait = w.cfg.PollInterval
			}
			if !w.sleep(ctx, wait) {
				return nil
			}
			continue
		}
		w.execute(ctx, lr.Lease)
		if n := w.cfg.MaxUnits; n > 0 && w.unitsSettled.Load() >= uint64(n) {
			return nil
		}
	}
}

// execute runs one leased unit to completion: local execution on a
// fresh per-unit scheduler (so a revocation cancels only this unit),
// heartbeats on a TTL/3 ticker, and an idempotent completion publish.
func (w *Worker) execute(ctx context.Context, g *LeaseGrant) {
	u := g.Unit
	var out *core.BenchmarkResult
	var execErr error
	var revoked atomic.Bool
	b := spec.ByName(u.Bench)
	if b == nil {
		execErr = fmt.Errorf("unknown benchmark %q", u.Bench)
	} else {
		// Rebuild the exact (Target, Options) pair the in-process
		// study would run, through the same shared helpers.
		scfg := study.Config{
			Scale:           u.Scale,
			Thresholds:      u.PaperT,
			PoolTrigger:     u.PoolTrigger,
			IndependentRuns: u.IndependentRuns,
			Predictors:      u.Predictors,
			MaxAttempts:     w.cfg.MaxAttempts,
			RetryBackoff:    w.cfg.RetryBackoff,
			Faults:          w.cfg.Faults,
			Trace:           w.cfg.Trace,
			Cache:           w.cfg.Cache,
		}
		_, ladder := study.EffectiveLadder(u.PaperT, u.Scale)
		opts := scfg.UnitOptions(ladder, &w.timing)
		sched := core.NewSchedulerPolicy(w.cfg.Workers, w.cfg.Policy)
		hbStop := make(chan struct{})
		hbDone := make(chan struct{})
		go func() {
			defer close(hbDone)
			w.heartbeatLoop(ctx, g, sched, &revoked, hbStop)
		}()
		out, execErr = (&core.LocalExecutor{S: sched}).ExecuteUnit(b.Target(u.Scale), opts, ctx.Done())
		if ctx.Err() != nil {
			// Shutdown mid-unit (the in-process analogue of a killed
			// worker): stop the pool so in-flight guest runs and
			// injected delays unblock instead of lingering.
			sched.Stop()
		}
		close(hbStop)
		<-hbDone
	}
	switch {
	case revoked.Load() || ctx.Err() != nil:
		// The coordinator gave the unit away (or we are shutting
		// down): the result is no longer wanted here. If execution
		// finished anyway, publish it — late completions are valid —
		// otherwise abandon.
		if out == nil || execErr != nil {
			w.unitsAbandoned.Add(1)
			return
		}
		w.publish(ctx, g, &CompleteRequest{
			LeaseID: g.ID, Worker: w.cfg.ID, Bench: u.Bench,
			Series: seriesPtr(study.SeriesFromResult(b, out)),
		})
	case execErr != nil:
		if errors.Is(execErr, core.ErrStopped) {
			w.unitsAbandoned.Add(1)
			return
		}
		w.attemptErrors.Add(1)
		w.publish(ctx, g, &CompleteRequest{
			LeaseID: g.ID, Worker: w.cfg.ID, Bench: u.Bench, Error: execErr.Error(),
		})
	default:
		w.publish(ctx, g, &CompleteRequest{
			LeaseID: g.ID, Worker: w.cfg.ID, Bench: u.Bench,
			Series: seriesPtr(study.SeriesFromResult(b, out)),
		})
	}
}

func seriesPtr(s study.BenchmarkSeries) *study.BenchmarkSeries { return &s }

// publish posts a completion with bounded retry: a dropped response
// means the coordinator may already have applied the result, and the
// retry leans on completion idempotency (the repeat is counted as a
// duplicate and dropped).
func (w *Worker) publish(ctx context.Context, g *LeaseGrant, req *CompleteRequest) {
	var resp CompleteResponse
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 && !w.sleep(ctx, 25*time.Millisecond) {
			break
		}
		if err := w.client.Post(ctx, EndpointComplete, req, &resp); err != nil {
			continue
		}
		switch resp.Status {
		case StatusAccepted, StatusLate, StatusDuplicate:
			if req.Error == "" {
				w.unitsSettled.Add(1)
			}
		}
		return
	}
	// The coordinator never acknowledged; its lease expiry owns the
	// unit's fate now.
	w.unitsAbandoned.Add(1)
}

// heartbeatLoop extends the lease on a TTL/3 cadence until the unit
// finishes or the lease is revoked (ErrLeaseGone), which cancels the
// local scheduler so the guest stops promptly. Transport errors are
// tolerated: the lease may still be extended by a later beat, and if
// not, expiry-plus-late-completion keeps the protocol correct.
func (w *Worker) heartbeatLoop(ctx context.Context, g *LeaseGrant, sched *core.Scheduler, revoked *atomic.Bool, stop <-chan struct{}) {
	every := time.Duration(g.TTLMS) * time.Millisecond / 3
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var resp HeartbeatResponse
		err := w.client.Post(ctx, EndpointHeartbeat, HeartbeatRequest{LeaseID: g.ID}, &resp)
		if errors.Is(err, ErrLeaseGone) {
			revoked.Store(true)
			sched.Stop()
			return
		}
		if err == nil {
			w.heartbeats.Add(1)
		}
	}
}

// sleep waits d or until the context is cancelled; it reports whether
// the full wait elapsed.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
