package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/study"
)

// Config shapes a coordinator.
type Config struct {
	// Study is the study to distribute. Its Executor field is owned by
	// the coordinator; its Checkpoint defaults into StateDir so a
	// restarted coordinator resumes without re-leasing settled units.
	// Study.Faults must be nil — fault plans are worker-local (a unit
	// fault belongs to the process executing the unit).
	Study study.Config
	// LeaseTTL is the deadline budget of one lease; a worker that
	// neither completes nor heartbeats within it loses the unit.
	// Default 10s.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many leases a unit gets before it is
	// failed with a structured UnitFailure. Default 3.
	MaxAttempts int
	// RetryBackoff delays re-leasing after an expiry or failed
	// attempt, doubling per attempt. Default 0 (immediate).
	RetryBackoff time.Duration
	// StateDir holds the lease journal and the default checkpoint.
	// Opened with an orphaned-temp sweep, like every other state
	// directory in the pipeline. Empty disables both.
	StateDir string
	// Trace receives lease-lifecycle events (obs.UnitLease*).
	Trace *obs.Recorder
	// TickEvery is the lease-expiry scan period. Default LeaseTTL/4
	// (clamped to [10ms, 1s]); negative disables the background
	// scanner so tests drive Tick with a manual clock.
	TickEvery time.Duration
	// Now is the coordinator clock, for deterministic tests.
	// Default time.Now.
	Now func() time.Time
}

// Unit lease states, as reported by /v1/fleet/status.
const (
	unitPending = "pending"
	unitLeased  = "leased"
	unitSettled = "settled"
	unitFailed  = "failed"
)

// unit is one benchmark's lease-protocol state machine:
//
//	pending -> leased -> settled
//	   ^         |   \-> failed   (attempts exhausted)
//	   \---------/                (lease expired / attempt failed)
type unit struct {
	seq        int
	spec       UnitSpec
	state      string
	attempts   int
	history    []string // one line per concluded attempt
	eligibleAt time.Time
	lease      *lease // active lease while leased
	series     *study.BenchmarkSeries
	failure    *core.UnitFailure
	done       chan struct{} // closed on settle/fail
}

// lease is one revocable assignment of a unit to a worker.
type lease struct {
	id       string
	worker   string
	unit     *unit
	deadline time.Time
	lastBeat time.Time
	beats    int
	granted  time.Time
}

// counters are the coordinator's protocol metrics (Prometheus names in
// handleMetrics).
type counters struct {
	grants        atomic.Uint64
	expiries      atomic.Uint64
	reassignments atomic.Uint64
	heartbeats    atomic.Uint64
	maxBeatLagNS  atomic.Int64
	completions   atomic.Uint64
	late          atomic.Uint64
	duplicates    atomic.Uint64
	attemptFails  atomic.Uint64
	unitsFailed   atomic.Uint64
}

// Coordinator shards a study's benchmark units across fleet workers as
// revocable leases. It implements core.UnitExecutor; Run wires it into
// study.Run, so checkpointing, resume, figures and failure policy are
// exactly the single-process study's.
type Coordinator struct {
	cfg     Config
	mux     *http.ServeMux
	doneCh  chan struct{} // closed when the study finished cleanly
	stopped atomic.Bool   // study cancelled: stop granting

	mu      sync.Mutex
	seq     int
	leaseID int
	units   map[string]*unit
	leases  map[string]*lease // active leases only
	workers map[string]time.Time

	jmu     sync.Mutex
	journal *os.File

	m counters
}

// NewCoordinator validates the configuration and opens the state
// directory (sweeping orphaned temps, like resultcache and checkpoint
// opens do).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Study.Faults != nil {
		return nil, fmt.Errorf("fleet: study fault plans are worker-local; arm the plan on workers instead")
	}
	if cfg.Study.Executor != nil {
		return nil, fmt.Errorf("fleet: the coordinator owns the study executor")
	}
	// Resolve defaults now: unit specs serialize ladder, scale and
	// predictors from this config, and they must be the values Run
	// will use, not zero placeholders.
	cfg.Study.Normalize()
	if cfg.StateDir != "" && cfg.Study.Checkpoint == "" {
		cfg.Study.Checkpoint = filepath.Join(cfg.StateDir, "study.ckpt.jsonl")
	}
	if err := cfg.Study.Validate(); err != nil {
		return nil, err
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("fleet: invalid retry backoff %v", cfg.RetryBackoff)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.TickEvery == 0 {
		cfg.TickEvery = cfg.LeaseTTL / 4
		if cfg.TickEvery < 10*time.Millisecond {
			cfg.TickEvery = 10 * time.Millisecond
		}
		if cfg.TickEvery > time.Second {
			cfg.TickEvery = time.Second
		}
	}
	c := &Coordinator{
		cfg:     cfg,
		doneCh:  make(chan struct{}),
		units:   make(map[string]*unit),
		leases:  make(map[string]*lease),
		workers: make(map[string]time.Time),
	}
	if dir := cfg.StateDir; dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: state dir: %w", err)
		}
		if _, err := atomicio.SweepTemps(dir); err != nil {
			return nil, fmt.Errorf("fleet: state dir sweep: %w", err)
		}
		j, err := os.OpenFile(filepath.Join(dir, "lease.journal.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("fleet: lease journal: %w", err)
		}
		c.journal = j
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/fleet/lease", c.handleLease)
	c.mux.HandleFunc("POST /v1/fleet/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /v1/fleet/complete", c.handleComplete)
	c.mux.HandleFunc("GET /v1/fleet/status", c.handleStatus)
	c.mux.HandleFunc("GET /v1/fleet/metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return c, nil
}

// Handler returns the coordinator's HTTP surface (/v1/fleet/*).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Counters is a point-in-time snapshot of the protocol metrics, for
// tests and reports.
type Counters struct {
	Grants, Expiries, Reassignments uint64
	Heartbeats                      uint64
	Completions, Late, Duplicates   uint64
	AttemptFailures, UnitsFailed    uint64
	MaxHeartbeatLag                 time.Duration
}

// Counters snapshots the protocol metrics.
func (c *Coordinator) Counters() Counters {
	return Counters{
		Grants:          c.m.grants.Load(),
		Expiries:        c.m.expiries.Load(),
		Reassignments:   c.m.reassignments.Load(),
		Heartbeats:      c.m.heartbeats.Load(),
		Completions:     c.m.completions.Load(),
		Late:            c.m.late.Load(),
		Duplicates:      c.m.duplicates.Load(),
		AttemptFailures: c.m.attemptFails.Load(),
		UnitsFailed:     c.m.unitsFailed.Load(),
		MaxHeartbeatLag: time.Duration(c.m.maxBeatLagNS.Load()),
	}
}

// Run executes the study with this coordinator as its unit executor,
// blocking until it completes, fails, or stops. The expiry scanner
// runs for the duration; the done signal (workers' exit cue) is only
// raised on clean completion — a stopped coordinator leaves workers
// polling for its successor.
func (c *Coordinator) Run() (*study.Results, error) {
	cfg := c.cfg.Study
	cfg.Executor = c
	stopTick := make(chan struct{})
	defer close(stopTick)
	if c.cfg.TickEvery > 0 {
		go func() {
			t := time.NewTicker(c.cfg.TickEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					c.Tick(c.cfg.Now())
				case <-stopTick:
					return
				}
			}
		}()
	}
	res, err := study.Run(cfg)
	if err == nil {
		close(c.doneCh)
	} else {
		c.stopped.Store(true)
	}
	return res, err
}

// Close releases the lease journal.
func (c *Coordinator) Close() error {
	if c.journal == nil {
		return nil
	}
	c.jmu.Lock()
	defer c.jmu.Unlock()
	err := c.journal.Close()
	c.journal = nil
	return err
}

// ExecuteUnit implements core.UnitExecutor: the unit is enqueued for
// leasing and the call blocks until a completion settles it, the
// attempt budget fails it, or the study cancels.
func (c *Coordinator) ExecuteUnit(t core.Target, _ core.Options, cancel <-chan struct{}) (*core.BenchmarkResult, error) {
	u := c.enqueue(t.Name)
	select {
	case <-u.done:
	case <-cancel:
		// The study is cancelling (stop or fail-fast): grant nothing
		// more; in-flight workers discover the revocation through
		// heartbeats against a gone coordinator.
		c.stopped.Store(true)
		return nil, core.ErrStopped
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if u.failure != nil {
		if c.cfg.Study.Policy == core.Degrade {
			return &core.BenchmarkResult{Name: u.spec.Bench, Failures: []core.UnitFailure{*u.failure}}, nil
		}
		return nil, fmt.Errorf("fleet: %s: %s", u.spec.Bench, u.failure.Err)
	}
	return resultFromSeries(u.series), nil
}

// resultFromSeries lifts a wire series back into the unit result shape
// study.Run records. SeriesFromResult∘resultFromSeries is the
// identity, so a series that crossed the wire lands byte-identical.
func resultFromSeries(s *study.BenchmarkSeries) *core.BenchmarkResult {
	return &core.BenchmarkResult{
		Name:         s.Name,
		Train:        s.Train,
		TrainRegions: s.TrainRegions,
		TrainOps:     s.TrainOps,
		AVEPCycles:   s.AVEPCycles,
		Results:      s.PerT,
		Failures:     s.Failures,
		Predictors:   s.Predictors,
	}
}

// enqueue registers one pending unit for the benchmark.
func (c *Coordinator) enqueue(bench string) *unit {
	scfg := &c.cfg.Study
	c.mu.Lock()
	defer c.mu.Unlock()
	u := &unit{
		seq: c.seq,
		spec: UnitSpec{
			Bench:           bench,
			Scale:           scfg.Scale,
			PaperT:          scfg.Thresholds,
			PoolTrigger:     scfg.PoolTrigger,
			IndependentRuns: scfg.IndependentRuns,
			Predictors:      scfg.Predictors,
		},
		state:      unitPending,
		eligibleAt: c.cfg.Now(),
		done:       make(chan struct{}),
	}
	c.seq++
	c.units[bench] = u
	return u
}

// Tick scans for expired leases: each is revoked, its attempt recorded
// in the unit's history, and the unit re-queued with backoff — or
// failed with the full history once its attempt budget is exhausted.
// Exported so tests drive expiry with a manual clock.
func (c *Coordinator) Tick(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(c.leases, id)
		u := l.unit
		if u.state != unitLeased || u.lease != l {
			// A superseded lease of an already-settled or re-leased unit:
			// dropping it is the whole cleanup, there is no attempt to
			// conclude.
			continue
		}
		u.lease = nil
		u.history = append(u.history, fmt.Sprintf("attempt %d: lease %s to %s expired after %v (%d heartbeats)",
			u.attempts, l.id, l.worker, now.Sub(l.granted).Round(time.Millisecond), l.beats))
		c.m.expiries.Add(1)
		c.event(obs.UnitLeaseExpire, u, l.granted, now.Sub(l.granted), l.worker)
		c.log("expire", u, l.id, l.worker, "")
		c.concludeAttemptLocked(u, now)
	}
}

// concludeAttemptLocked re-queues a unit after a lost attempt, or
// fails it once the budget is spent. Caller holds c.mu.
func (c *Coordinator) concludeAttemptLocked(u *unit, now time.Time) {
	if u.attempts >= c.cfg.MaxAttempts {
		u.state = unitFailed
		u.failure = &core.UnitFailure{
			Bench:    u.spec.Bench,
			Unit:     obs.UnitLeaseGrant,
			Attempts: u.attempts,
			Err: fmt.Sprintf("fleet: unit lost on every lease (%d attempts): %s",
				u.attempts, strings.Join(u.history, "; ")),
		}
		c.m.unitsFailed.Add(1)
		c.event(obs.UnitFleetFail, u, now, 0, u.failure.Err)
		c.log("fail", u, "", "", u.failure.Err)
		close(u.done)
		return
	}
	u.state = unitPending
	if b := c.cfg.RetryBackoff; b > 0 {
		u.eligibleAt = now.Add(b << (u.attempts - 1))
	} else {
		u.eligibleAt = now
	}
}

// grant leases the oldest eligible pending unit to the worker. With no
// eligible unit it returns a wait hint: the delay until the next
// backoff expires, or the poll default.
func (c *Coordinator) grant(workerID string, now time.Time) (*LeaseGrant, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[workerID] = now
	var pick *unit
	wait := c.cfg.LeaseTTL / 4
	for _, u := range c.units {
		if u.state != unitPending {
			continue
		}
		if u.eligibleAt.After(now) {
			if d := u.eligibleAt.Sub(now); d < wait {
				wait = d
			}
			continue
		}
		if pick == nil || u.seq < pick.seq {
			pick = u
		}
	}
	if pick == nil {
		return nil, wait
	}
	c.leaseID++
	l := &lease{
		id:       fmt.Sprintf("L%06d", c.leaseID),
		worker:   workerID,
		unit:     pick,
		deadline: now.Add(c.cfg.LeaseTTL),
		lastBeat: now,
		granted:  now,
	}
	pick.state = unitLeased
	pick.attempts++
	pick.lease = l
	c.leases[l.id] = l
	c.m.grants.Add(1)
	if pick.attempts > 1 {
		c.m.reassignments.Add(1)
	}
	c.event(obs.UnitLeaseGrant, pick, now, 0, l.worker)
	c.log("grant", pick, l.id, l.worker, "")
	return &LeaseGrant{
		ID:      l.id,
		Unit:    pick.spec,
		TTLMS:   c.cfg.LeaseTTL.Milliseconds(),
		Attempt: pick.attempts,
	}, 0
}

// complete applies one published result. See the package comment for
// the idempotency argument: first valid completion wins, late ones are
// welcome, repeats are counted and dropped.
func (c *Coordinator) complete(req *CompleteRequest, now time.Time) (*CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Worker != "" {
		c.workers[req.Worker] = now
	}
	u := c.units[req.Bench]
	if l := c.leases[req.LeaseID]; l != nil && u == nil {
		u = l.unit
	}
	if u == nil {
		return nil, fmt.Errorf("unknown unit %q", req.Bench)
	}
	if u.state == unitSettled || u.state == unitFailed {
		c.m.duplicates.Add(1)
		c.event(obs.UnitLeaseReject, u, now, 0, req.Worker)
		c.log("duplicate", u, req.LeaseID, req.Worker, "")
		return &CompleteResponse{Status: StatusDuplicate}, nil
	}
	// The completing lease may have expired (or even been superseded
	// by a reassignment): the result is still the deterministic truth
	// for this unit, so it settles — late — rather than being thrown
	// away and re-executed.
	l := c.leases[req.LeaseID]
	late := l == nil || l.unit != u
	if l != nil && l.unit == u {
		delete(c.leases, req.LeaseID)
		u.lease = nil
	}
	if req.Error != "" || req.Series == nil || req.Series.Name != req.Bench {
		detail := req.Error
		if detail == "" {
			detail = "malformed completion"
		}
		u.history = append(u.history, fmt.Sprintf("attempt %d: %s reported: %s", u.attempts, req.Worker, detail))
		c.m.attemptFails.Add(1)
		if late {
			// An expired attempt already concluded via Tick; a failure
			// report from it changes nothing.
			return &CompleteResponse{Status: StatusRetry}, nil
		}
		c.concludeAttemptLocked(u, now)
		if u.state == unitFailed {
			return &CompleteResponse{Status: StatusFailed}, nil
		}
		return &CompleteResponse{Status: StatusRetry}, nil
	}
	u.series = req.Series
	u.state = unitSettled
	if u.lease != nil {
		// A late completion can land while a reassigned lease is still
		// active; the settle revokes it (its worker's heartbeats will see
		// 410 and stop).
		delete(c.leases, u.lease.id)
		u.lease = nil
	}
	c.m.completions.Add(1)
	status := StatusAccepted
	if late {
		c.m.late.Add(1)
		status = StatusLate
	}
	c.event(obs.UnitLeaseComplete, u, now, 0, req.Worker)
	c.log("settle", u, req.LeaseID, req.Worker, "")
	close(u.done)
	return &CompleteResponse{Status: status}, nil
}

// heartbeat extends an active lease; a revoked lease answers
// ErrLeaseGone (HTTP 410) so the worker abandons the unit.
func (c *Coordinator) heartbeat(leaseID string, now time.Time) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[leaseID]
	if l == nil {
		return 0, false
	}
	if lag := now.Sub(l.lastBeat); lag > 0 {
		for {
			cur := c.m.maxBeatLagNS.Load()
			if int64(lag) <= cur || c.m.maxBeatLagNS.CompareAndSwap(cur, int64(lag)) {
				break
			}
		}
	}
	l.lastBeat = now
	l.beats++
	l.deadline = now.Add(c.cfg.LeaseTTL)
	c.workers[l.worker] = now
	c.m.heartbeats.Add(1)
	return c.cfg.LeaseTTL, true
}

// event emits a lease-lifecycle span to the flight recorder. detail
// lands in the Err field — the only free-form slot in the schema — for
// grants/completions it names the remote worker.
func (c *Coordinator) event(kind string, u *unit, start time.Time, dur time.Duration, detail string) {
	if c.cfg.Trace == nil {
		return
	}
	var err error
	if detail != "" {
		err = fmt.Errorf("%s", detail)
	}
	c.cfg.Trace.Record(u.spec.Bench, kind, 0, 0, start, dur, 0, err)
}

// log appends one JSONL record to the lease journal. The journal is
// advisory observability (the checkpoint is the recovery source), so
// write errors are deliberately dropped.
func (c *Coordinator) log(ev string, u *unit, leaseID, worker, detail string) {
	if c.journal == nil {
		return
	}
	rec := struct {
		TS      int64  `json:"ts_ms"`
		Ev      string `json:"ev"`
		Bench   string `json:"bench"`
		Lease   string `json:"lease,omitempty"`
		Worker  string `json:"worker,omitempty"`
		Attempt int    `json:"attempt,omitempty"`
		Detail  string `json:"detail,omitempty"`
	}{c.cfg.Now().UnixMilli(), ev, u.spec.Bench, leaseID, worker, u.attempts, detail}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	c.jmu.Lock()
	if c.journal != nil {
		c.journal.Write(append(data, '\n'))
	}
	c.jmu.Unlock()
}

// --- HTTP handlers ---

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "missing worker id")
		return
	}
	select {
	case <-c.doneCh:
		writeJSON(w, LeaseResponse{Done: true})
		return
	default:
	}
	if c.stopped.Load() {
		// Cancelled, not done: workers keep polling for a restarted
		// coordinator rather than exiting.
		writeJSON(w, LeaseResponse{WaitMS: c.cfg.LeaseTTL.Milliseconds() / 4})
		return
	}
	g, wait := c.grant(req.Worker, c.cfg.Now())
	if g == nil {
		writeJSON(w, LeaseResponse{WaitMS: wait.Milliseconds()})
		return
	}
	writeJSON(w, LeaseResponse{Lease: g})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	ttl, ok := c.heartbeat(req.LeaseID, c.cfg.Now())
	if !ok {
		httpError(w, http.StatusGone, "lease gone")
		return
	}
	writeJSON(w, HeartbeatResponse{TTLMS: ttl.Milliseconds()})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := c.complete(&req, c.cfg.Now())
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, resp)
}

// StatusUnit is one unit's row in the fleet status report.
type StatusUnit struct {
	Bench    string   `json:"bench"`
	State    string   `json:"state"`
	Attempts int      `json:"attempts"`
	Worker   string   `json:"worker,omitempty"`
	Lease    string   `json:"lease,omitempty"`
	History  []string `json:"history,omitempty"`
}

// Status is the /v1/fleet/status document.
type Status struct {
	Done     bool              `json:"done"`
	Units    []StatusUnit      `json:"units"`
	Workers  map[string]string `json:"workers,omitempty"` // id -> last-seen timestamp
	Counters map[string]uint64 `json:"counters"`
}

// StatusSnapshot builds the status document (also used by tests).
func (c *Coordinator) StatusSnapshot() Status {
	c.mu.Lock()
	units := make([]StatusUnit, 0, len(c.units))
	for _, u := range c.units {
		row := StatusUnit{
			Bench:    u.spec.Bench,
			State:    u.state,
			Attempts: u.attempts,
			History:  append([]string(nil), u.history...),
		}
		if u.lease != nil {
			row.Worker = u.lease.worker
			row.Lease = u.lease.id
		}
		units = append(units, row)
	}
	workers := make(map[string]string, len(c.workers))
	for id, seen := range c.workers {
		workers[id] = seen.UTC().Format(time.RFC3339Nano)
	}
	c.mu.Unlock()
	sort.Slice(units, func(i, j int) bool { return units[i].Bench < units[j].Bench })
	done := false
	select {
	case <-c.doneCh:
		done = true
	default:
	}
	m := c.Counters()
	return Status{
		Done:    done,
		Units:   units,
		Workers: workers,
		Counters: map[string]uint64{
			"grants":           m.Grants,
			"expiries":         m.Expiries,
			"reassignments":    m.Reassignments,
			"heartbeats":       m.Heartbeats,
			"completions":      m.Completions,
			"late_completions": m.Late,
			"duplicates":       m.Duplicates,
			"attempt_failures": m.AttemptFailures,
			"units_failed":     m.UnitsFailed,
		},
	}
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.StatusSnapshot())
}

// handleMetrics renders the fleet counters in the Prometheus text
// exposition format, mirroring internal/serve's metric idiom.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	m := c.Counters()
	counter("fleet_lease_grants_total", "unit leases granted to workers", m.Grants)
	counter("fleet_lease_expiries_total", "leases revoked past their deadline", m.Expiries)
	counter("fleet_lease_reassignments_total", "grants of units that already lost at least one lease", m.Reassignments)
	counter("fleet_heartbeats_total", "lease heartbeats accepted", m.Heartbeats)
	gauge("fleet_heartbeat_lag_max_seconds", "largest observed gap between heartbeats of a live lease", fmt.Sprintf("%.3f", m.MaxHeartbeatLag.Seconds()))
	counter("fleet_completions_total", "unit completions that settled their unit", m.Completions)
	counter("fleet_late_completions_total", "settling completions that arrived after their lease expired", m.Late)
	counter("fleet_duplicate_completions_total", "completions dropped because the unit was already settled", m.Duplicates)
	counter("fleet_attempt_failures_total", "worker-reported failed attempts", m.AttemptFailures)
	counter("fleet_units_failed_total", "units failed after exhausting their lease attempts", m.UnitsFailed)

	c.mu.Lock()
	states := map[string]int{}
	for _, u := range c.units {
		states[u.state]++
	}
	nworkers := len(c.workers)
	c.mu.Unlock()
	fmt.Fprintf(&b, "# HELP fleet_units units by lease state\n# TYPE fleet_units gauge\n")
	keys := make([]string, 0, len(states))
	for st := range states {
		keys = append(keys, st)
	}
	sort.Strings(keys)
	for _, st := range keys {
		fmt.Fprintf(&b, "fleet_units{state=%q} %d\n", st, states[st])
	}
	gauge("fleet_workers", "distinct workers seen by this coordinator", nworkers)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// --- small HTTP helpers ---

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
