package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/faultinject"
)

// Client speaks the fleet protocol to a coordinator, consulting the
// deterministic network fault plan once per call: sever fails the call
// before it is sent, delay stalls it, dup sends the request twice
// (exercising completion idempotency), and drop delivers the request
// but loses the response — the caller sees an error for work the
// coordinator already applied.
type Client struct {
	base   string // coordinator base URL, no trailing slash
	hc     *http.Client
	faults *faultinject.Plan
}

// NewClient returns a client for the coordinator at base
// (e.g. "http://127.0.0.1:9090"). faults may be nil.
func NewClient(base string, faults *faultinject.Plan) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: &http.Client{}, faults: faults}
}

// Post issues one fleet protocol call and decodes the JSON reply into
// out. A 410 maps to ErrLeaseGone; other non-2xx statuses become
// errors carrying the server's message.
func (c *Client) Post(ctx context.Context, endpoint string, in, out any) error {
	v := c.faults.NetCall(endpoint)
	if v.Sever {
		return fmt.Errorf("fleet: %s: connection severed (injected)", endpoint)
	}
	if v.Delay > 0 {
		t := time.NewTimer(v.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", endpoint, err)
	}
	do := func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/fleet/"+endpoint, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return c.hc.Do(req)
	}
	resp, err := do()
	if v.Duplicate {
		// Model a duplicated request on the wire: both copies reach the
		// server; the caller observes the second reply.
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		resp, err = do()
	}
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", endpoint, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("fleet: %s: read reply: %w", endpoint, err)
	}
	if v.Drop {
		return fmt.Errorf("fleet: %s: response dropped (injected)", endpoint)
	}
	if resp.StatusCode == http.StatusGone {
		return ErrLeaseGone
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &e)
		if e.Error == "" {
			e.Error = string(bytes.TrimSpace(data))
		}
		return fmt.Errorf("fleet: %s: %s: %s", endpoint, resp.Status, e.Error)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("fleet: %s: decode reply: %w", endpoint, err)
	}
	return nil
}
