package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/spec"
	"repro/internal/study"
)

// testStudy is the reduced configuration every fleet test distributes:
// three benchmarks, a short ladder, the smallest scale.
func testStudy(t *testing.T, benches ...string) study.Config {
	t.Helper()
	if len(benches) == 0 {
		benches = []string{"gzip", "swim", "mcf"}
	}
	var bs []*spec.Benchmark
	for _, n := range benches {
		b := spec.ByName(n)
		if b == nil {
			t.Fatalf("unknown benchmark %q", n)
		}
		bs = append(bs, b)
	}
	return study.Config{
		Scale:      0.001,
		Thresholds: []float64{1, 100, 1e4},
		Benchmarks: bs,
		Policy:     core.Degrade,
	}
}

// figJSON renders the figure corpus for byte comparison.
func figJSON(t *testing.T, res *study.Results) []byte {
	t.Helper()
	data, err := json.MarshalIndent(res.Figures(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// fleetHarness runs a coordinator behind an httptest server plus a set
// of in-process workers.
type fleetHarness struct {
	c       *Coordinator
	srv     *httptest.Server
	workers []*Worker
	cancels []context.CancelFunc
	wg      sync.WaitGroup
	errs    []error
	mu      sync.Mutex
}

// startFleet builds the harness: the coordinator is served over real
// HTTP, and each worker config (Coordinator filled in here) runs in
// its own goroutine with its own cancel.
func startFleet(t *testing.T, cfg Config, wcfgs []WorkerConfig) *fleetHarness {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &fleetHarness{c: c, srv: httptest.NewServer(c.Handler())}
	for _, wc := range wcfgs {
		h.addWorker(t, wc)
	}
	t.Cleanup(func() {
		h.cancelAll()
		h.wg.Wait()
		h.srv.Close()
		h.c.Close()
	})
	return h
}

// addWorker starts one more worker against the harness coordinator and
// returns its index (usable with cancel/workerErr). Safe to call while
// the fleet is running.
func (h *fleetHarness) addWorker(t *testing.T, wc WorkerConfig) int {
	t.Helper()
	wc.Coordinator = h.srv.URL
	if wc.PollInterval == 0 {
		wc.PollInterval = 10 * time.Millisecond
	}
	if wc.MaxOffline == 0 {
		wc.MaxOffline = 10 * time.Second
	}
	w, err := NewWorker(wc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h.mu.Lock()
	i := len(h.workers)
	h.workers = append(h.workers, w)
	h.cancels = append(h.cancels, cancel)
	h.errs = append(h.errs, nil)
	h.mu.Unlock()
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		err := w.Run(ctx)
		h.mu.Lock()
		h.errs[i] = err
		h.mu.Unlock()
	}()
	return i
}

// cancel stops worker i; cancelAll stops every worker started so far.
func (h *fleetHarness) cancel(i int) {
	h.mu.Lock()
	c := h.cancels[i]
	h.mu.Unlock()
	c()
}

func (h *fleetHarness) cancelAll() {
	h.mu.Lock()
	cancels := append([]context.CancelFunc(nil), h.cancels...)
	h.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// run drives the coordinator's study to its end and shuts the workers
// down.
func (h *fleetHarness) run(t *testing.T) (*study.Results, error) {
	t.Helper()
	res, err := h.c.Run()
	h.cancelAll()
	h.wg.Wait()
	return res, err
}

// workerErr returns what worker i's Run returned.
func (h *fleetHarness) workerErr(i int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.errs[i]
}

// waitLeased polls the coordinator until at least n units are leased.
func (h *fleetHarness) waitLeased(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		leased := 0
		for _, u := range h.c.StatusSnapshot().Units {
			if u.State == "leased" {
				leased++
			}
		}
		if leased >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d leased units", n)
}

// TestFleetByteIdenticalAcrossWorkerCounts is the tentpole determinism
// claim: a 1-worker fleet, a 3-worker fleet and the in-process study
// all emit byte-identical figures (and deep-equal series).
func TestFleetByteIdenticalAcrossWorkerCounts(t *testing.T) {
	local, err := study.Run(testStudy(t))
	if err != nil {
		t.Fatal(err)
	}
	want := figJSON(t, local)

	for _, n := range []int{1, 3} {
		wcfgs := make([]WorkerConfig, n)
		for i := range wcfgs {
			wcfgs[i] = WorkerConfig{Workers: 2}
		}
		h := startFleet(t, Config{Study: testStudy(t), LeaseTTL: 5 * time.Second}, wcfgs)
		res, err := h.run(t)
		if err != nil {
			t.Fatalf("%d workers: %v", n, err)
		}
		if got := figJSON(t, res); !bytes.Equal(got, want) {
			t.Fatalf("%d-worker fleet figures differ from the in-process study", n)
		}
		if len(res.Failures) != 0 {
			t.Fatalf("%d workers: unexpected failures: %v", n, res.Failures)
		}
		m := h.c.Counters()
		if m.Completions != 3 {
			t.Fatalf("%d workers: completions = %d, want 3 (settled exactly once each)", n, m.Completions)
		}
	}
}

// TestFleetWorkerKilledMidRun: a worker whose unit stalls (injected
// 1h delay) is killed mid-study; its lease expires once its heartbeats
// stop, the unit is reassigned to a surviving worker, and the figures
// are byte-identical to a clean run.
func TestFleetWorkerKilledMidRun(t *testing.T) {
	local, err := study.Run(testStudy(t))
	if err != nil {
		t.Fatal(err)
	}
	stall, err := faultinject.Parse("slow:*/ref:1h")
	if err != nil {
		t.Fatal(err)
	}
	// The stalled worker starts alone so it is guaranteed to hold a
	// lease; the healthy workers join only after it is killed. While
	// alive it heartbeats, so the lease stays legitimately held — death
	// is what stops the heartbeats and lets expiry reassign.
	h := startFleet(t, Config{Study: testStudy(t), LeaseTTL: 300 * time.Millisecond, MaxAttempts: 5}, []WorkerConfig{
		{ID: "stalled", Workers: 2, Faults: stall},
	})
	go func() {
		h.waitLeased(t, 1)
		h.cancel(0)
		h.addWorker(t, WorkerConfig{ID: "healthy-1", Workers: 2})
		h.addWorker(t, WorkerConfig{ID: "healthy-2", Workers: 2})
	}()
	res, err := h.run(t)
	if err != nil {
		t.Fatal(err)
	}
	if got := figJSON(t, res); !bytes.Equal(got, figJSON(t, local)) {
		t.Fatal("fleet figures differ from the in-process study after worker loss")
	}
	m := h.c.Counters()
	if m.Expiries < 1 || m.Reassignments < 1 {
		t.Fatalf("expected lease expiry and reassignment, got %+v", m)
	}
}

// TestFleetRepeatedLossSurfacesUnitFailure (the Degrade robustness
// satellite): a unit whose worker dies on every lease exhausts
// MaxAttempts and surfaces a structured UnitFailure carrying the
// attempt history, while the surviving benchmarks' figures stay
// byte-identical to a clean run of the survivors.
func TestFleetRepeatedLossSurfacesUnitFailure(t *testing.T) {
	// Both workers stall on gzip's reference run and have their
	// heartbeats severed, so each lease of gzip expires; every other
	// benchmark completes before its (never-extended) deadline.
	plan := func() *faultinject.Plan {
		p, err := faultinject.Parse("slow:gzip/ref:1h,net:sever:heartbeat")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	h := startFleet(t, Config{
		Study:       testStudy(t),
		LeaseTTL:    400 * time.Millisecond,
		MaxAttempts: 2,
	}, []WorkerConfig{
		{ID: "doomed-1", Workers: 2, Faults: plan()},
		{ID: "doomed-2", Workers: 2, Faults: plan()},
	})
	res, err := h.run(t)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly one (gzip)", res.Failures)
	}
	f := res.Failures[0]
	if f.Bench != "gzip" || f.Attempts != 2 {
		t.Fatalf("failure = %+v, want gzip after 2 attempts", f)
	}
	for _, needle := range []string{"attempt 1", "attempt 2", "expired"} {
		if !strings.Contains(f.Err, needle) {
			t.Fatalf("failure err %q missing attempt history marker %q", f.Err, needle)
		}
	}
	// Survivors byte-identical to a clean study of the survivors.
	clean, err := study.Run(testStudy(t, "swim", "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"swim", "mcf"} {
		got, want := res.ByName(name), clean.ByName(name)
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("surviving series %s differs from a clean run", name)
		}
	}
	if h.c.Counters().UnitsFailed != 1 {
		t.Fatalf("units_failed = %d, want 1", h.c.Counters().UnitsFailed)
	}
}

// TestFleetNetworkFaultMatrix drives the drop/delay/dup paths through
// one worker: a dropped completion response forces a retry against an
// already-settled unit, a duplicated request delivers twice, and both
// are absorbed by completion idempotency — every unit settles exactly
// once and the figures are untouched.
func TestFleetNetworkFaultMatrix(t *testing.T) {
	local, err := study.Run(testStudy(t))
	if err != nil {
		t.Fatal(err)
	}
	p, err := faultinject.Parse("net:delay:lease:20ms*2,net:drop:complete@1*1,net:dup:complete@2*1")
	if err != nil {
		t.Fatal(err)
	}
	h := startFleet(t, Config{Study: testStudy(t), LeaseTTL: 5 * time.Second}, []WorkerConfig{
		{ID: "flaky-net", Workers: 2, Faults: p},
	})
	res, err := h.run(t)
	if err != nil {
		t.Fatal(err)
	}
	if got := figJSON(t, res); !bytes.Equal(got, figJSON(t, local)) {
		t.Fatal("figures differ under network faults")
	}
	m := h.c.Counters()
	if m.Completions != 3 {
		t.Fatalf("completions = %d, want 3: dropped/duplicated responses must not double-settle", m.Completions)
	}
	if m.Duplicates < 1 {
		t.Fatalf("duplicates = %d, want >= 1 (drop forces an idempotent retry)", m.Duplicates)
	}
	if err := h.workerErr(0); err != nil {
		t.Fatalf("worker: %v", err)
	}
}

// TestFleetSeveredWorkerExitsOffline: a worker whose every call is
// severed gives up with an unreachable error after its MaxOffline
// budget instead of spinning forever.
func TestFleetSeveredWorkerExitsOffline(t *testing.T) {
	p, err := faultinject.Parse("net:sever:*")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerConfig{
		Coordinator:  "http://127.0.0.1:1", // never reached: sever fires first
		Faults:       p,
		PollInterval: 5 * time.Millisecond,
		MaxOffline:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("severed worker returned %v, want unreachable error", err)
	}
}
