// Package fleet distributes a study across worker processes, designed
// failure-first: workers are expected to crash, hang and partition,
// and the figures must come out byte-identical anyway.
//
// The coordinator is a core.UnitExecutor: study.Run hands it one unit
// per benchmark, and instead of scheduling locally it offers the unit
// as a revocable lease over HTTP/JSON. Workers pull leases
// (POST /v1/fleet/lease), extend them with heartbeats
// (POST /v1/fleet/heartbeat) while executing, and publish the finished
// series (POST /v1/fleet/complete). A lease that outlives its deadline
// is revoked and the unit reassigned with bounded attempts and
// backoff; a unit that exhausts its attempts surfaces as a structured
// core.UnitFailure carrying the attempt history, which under the
// Degrade policy isolates the benchmark exactly like a local unit
// failure.
//
// Correctness under races leans on one invariant: unit execution is
// deterministic, so any two completions of the same unit carry
// identical bytes. The first valid completion settles a unit — even
// one arriving after its lease expired, since the work is no less
// valid for being late — and every later completion is counted and
// dropped. Workers share the content-addressed resultcache as the
// artifact store, so a reassigned unit replays settled sub-results
// from cache instead of re-executing guest blocks, and a restarted
// coordinator resumes from the study checkpoint without re-leasing
// settled benchmarks.
//
// Every protocol call consults the deterministic network fault plan
// (internal/faultinject net: entries) on the worker side, so the
// failure matrix — drop, delay, duplicate, sever — is exercised by
// reproducible tests rather than reasoned about.
package fleet

import (
	"errors"

	"repro/internal/study"
)

// Fleet protocol endpoint names: the HTTP path tails under /v1/fleet/,
// and the endpoint keys of faultinject net: entries.
const (
	EndpointLease     = "lease"
	EndpointHeartbeat = "heartbeat"
	EndpointComplete  = "complete"
)

// ErrLeaseGone is returned by a heartbeat whose lease the coordinator
// has revoked (expired and reassigned, or settled by someone else).
// The worker abandons the unit: its result is no longer wanted.
var ErrLeaseGone = errors.New("fleet: lease gone")

// UnitSpec names one distributable unit of work — a whole benchmark's
// sweep — with everything a worker needs to rebuild the exact
// (Target, Options) pair the in-process study would run. Thresholds
// travel in paper units; the worker derives the effective ladder with
// study.EffectiveLadder, the same helper study.Run uses.
type UnitSpec struct {
	Bench           string    `json:"bench"`
	Scale           float64   `json:"scale"`
	PaperT          []float64 `json:"paper_t"`
	PoolTrigger     int       `json:"pool_trigger,omitempty"`
	IndependentRuns bool      `json:"independent_runs,omitempty"`
	Predictors      []string  `json:"predictors,omitempty"`
}

// LeaseRequest asks for work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse carries a grant, a wait hint, or the study-done
// signal (workers exit cleanly on Done).
type LeaseResponse struct {
	Done   bool        `json:"done,omitempty"`
	Lease  *LeaseGrant `json:"lease,omitempty"`
	WaitMS int64       `json:"wait_ms,omitempty"`
}

// LeaseGrant is one revocable assignment: the unit, the lease identity
// completions and heartbeats refer to, and the deadline budget.
type LeaseGrant struct {
	ID      string   `json:"id"`
	Unit    UnitSpec `json:"unit"`
	TTLMS   int64    `json:"ttl_ms"`
	Attempt int      `json:"attempt"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// HeartbeatResponse confirms the extension.
type HeartbeatResponse struct {
	TTLMS int64 `json:"ttl_ms"`
}

// CompleteRequest publishes a unit result: a finished series, or an
// execution error (a failed attempt, retried under the unit's
// attempt budget).
type CompleteRequest struct {
	LeaseID string                 `json:"lease_id"`
	Worker  string                 `json:"worker"`
	Bench   string                 `json:"bench"`
	Series  *study.BenchmarkSeries `json:"series,omitempty"`
	Error   string                 `json:"error,omitempty"`
}

// Completion statuses, in CompleteResponse.Status.
const (
	StatusAccepted  = "accepted"  // first valid completion: the unit is settled
	StatusLate      = "late"      // valid completion from an expired lease: settled anyway
	StatusDuplicate = "duplicate" // the unit was already settled; dropped
	StatusRetry     = "retry"     // failed attempt recorded; the unit will be re-leased
	StatusFailed    = "failed"    // failed attempt exhausted the unit's budget
)

// CompleteResponse reports what the coordinator did with the result.
type CompleteResponse struct {
	Status string `json:"status"`
}
