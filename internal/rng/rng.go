// Package rng provides deterministic pseudo-random number generation for
// the synthetic workloads and behaviour models.
//
// Reproducibility is a hard requirement of the study: INIP(T), AVEP and
// INIP(train) runs of the same benchmark must see exactly the same input
// stream, so every source of randomness is derived from an explicit
// 64-bit seed, and seeds themselves are derived from stable strings
// (benchmark name, input name) via an FNV-style hash. The package has no
// dependency on math/rand so that the stream is stable across Go releases.
package rng

import "math"

// splitmix64 advances the given state and returns the next 64-bit output.
// It is the standard SplitMix64 generator, used both directly for seed
// derivation and to seed the main xoshiro generator.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256** pseudo-random generator.
// The zero value is not usable; construct with New or NewFromString.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from the given 64-bit seed. Distinct seeds
// yield statistically independent streams.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// NewFromString returns a Source seeded from a stable hash of s.
func NewFromString(s string) *Source {
	return New(HashString(s))
}

// HashString maps a string to a 64-bit seed using the FNV-1a hash followed
// by a SplitMix64 finalizer to spread low-entropy inputs.
func HashString(s string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return splitmix64(&h)
}

// Reseed resets the generator state from seed, as if freshly constructed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro must not start from the all-zero state; with splitmix64
	// outputs that is astronomically unlikely, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 bits of the stream.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 bits of the stream.
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, i.e. a sample from the geometric distribution with support
// {0, 1, 2, ...}. For p <= 0 it returns maxGeometric; for p >= 1 it
// returns 0. The return value is capped to keep pathological parameters
// from producing unbounded loop trip counts.
func (r *Source) Geometric(p float64) int {
	const maxGeometric = 1 << 24
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return maxGeometric
	}
	// Inverse-CDF sampling would need math.Log; a direct loop is exact
	// and fast for the p values used by the workloads (p >= 1e-4).
	n := 0
	for !r.Bernoulli(p) {
		n++
		if n >= maxGeometric {
			break
		}
	}
	return n
}

// NormalApprox returns an approximately standard-normal sample using the
// sum of 12 uniforms (Irwin–Hall). Exact normality is irrelevant for the
// workloads; determinism and boundedness (|x| <= 6) are what matter.
func (r *Source) NormalApprox() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += r.Float64()
	}
	return sum - 6.0
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples from a Zipf-like distribution over [0, n) with skew s > 0,
// using inverse-CDF over precomputed weights. Use NewZipf for repeated
// sampling; this helper is for one-off draws.
func (r *Source) Zipf(n int, s float64) int {
	z := NewZipf(n, s)
	return z.Sample(r)
}

// Zipf is a sampler for a Zipf-like distribution over [0, n): element i
// has weight 1/(i+1)^s. Construction is O(n); sampling is O(log n).
type Zipf struct {
	cum []float64 // cumulative weights, cum[n-1] == total
}

// NewZipf builds a Zipf sampler over [0, n) with skew s. It panics if
// n <= 0. Negative s is treated as 0 (uniform).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s < 0 {
		s = 0
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / powf(float64(i+1), s)
		cum[i] = total
	}
	return &Zipf{cum: cum}
}

// Sample draws one element using randomness from r.
func (z *Zipf) Sample(r *Source) int {
	target := r.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// powf computes x**y for the Zipf weights. Integer exponents take an
// exact fast path; the rest defers to math.Pow.
func powf(x, y float64) float64 {
	if y == float64(int(y)) && y >= 0 && y < 64 {
		out := 1.0
		for i := 0; i < int(y); i++ {
			out *= x
		}
		return out
	}
	return math.Pow(x, y)
}
