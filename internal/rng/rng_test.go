package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %x vs %x", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs out of 100", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, output %d = %x, want %x", i, got, first[i])
		}
	}
}

func TestHashStringStable(t *testing.T) {
	// Golden values pin the hash so workload seeds never drift between
	// revisions (that would silently change every experiment).
	if h1, h2 := HashString("mcf/ref"), HashString("mcf/ref"); h1 != h2 {
		t.Fatalf("HashString not deterministic: %x vs %x", h1, h2)
	}
	if HashString("mcf/ref") == HashString("mcf/train") {
		t.Fatal("distinct inputs must hash differently")
	}
	if HashString("") == HashString("a") {
		t.Fatal("empty and non-empty strings must hash differently")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(123)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(8)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(7)] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values in 1000 draws, want 7", len(seen))
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(77)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		rate := float64(hits) / n
		if math.Abs(rate-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) rate = %v", p, rate)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	// E[Geometric(p)] = (1-p)/p.
	for _, p := range []float64{0.5, 0.2, 0.1} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Geometric(p)
		}
		mean := float64(sum) / n
		want := (1 - p) / p
		if math.Abs(mean-want) > want*0.1+0.05 {
			t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
		}
	}
}

func TestGeometricExtremes(t *testing.T) {
	r := New(2)
	if g := r.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
	if g := r.Geometric(0); g != 1<<24 {
		t.Fatalf("Geometric(0) = %d, want cap", g)
	}
}

func TestNormalApproxMoments(t *testing.T) {
	r := New(13)
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormalApprox()
		if x < -6 || x > 6 {
			t.Fatalf("NormalApprox out of [-6,6]: %v", x)
		}
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormalApprox mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormalApprox variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfSkewOrdersFrequencies(t *testing.T) {
	r := New(31)
	z := NewZipf(10, 1.5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	// With skew 1.5, rank 0 must dominate rank 5 clearly.
	if counts[0] <= counts[5]*3 {
		t.Fatalf("Zipf skew not apparent: counts=%v", counts)
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("Zipf never produced rank %d", i)
		}
	}
}

func TestZipfUniformWhenSkewZero(t *testing.T) {
	r := New(41)
	z := NewZipf(4, 0)
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/n-0.25) > 0.01 {
			t.Fatalf("Zipf(skew=0) rank %d rate %v, want ~0.25", i, float64(c)/n)
		}
	}
}

func TestZipfPanicsOnNonPositiveN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}

// Property: Intn output is always within range for arbitrary seeds and n.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the same seed always reproduces the same prefix.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: HashString is stable and collision-free across small edits.
func TestQuickHashDistinguishesSuffix(t *testing.T) {
	f := func(s string) bool {
		return HashString(s) == HashString(s) && HashString(s+"x") != HashString(s+"y")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkBernoulli(b *testing.B) {
	r := New(1)
	hits := 0
	for i := 0; i < b.N; i++ {
		if r.Bernoulli(0.7) {
			hits++
		}
	}
	_ = hits
}
