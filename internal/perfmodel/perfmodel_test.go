package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsOrdering(t *testing.T) {
	p := DefaultParams()
	if p.OptFactor >= p.QuickFactor {
		t.Fatal("optimized code must be faster than quick-translated code")
	}
	if p.OptFactor >= p.OffTraceFactor {
		t.Fatal("on-trace execution must beat off-trace execution")
	}
	if p.OptPerInst <= p.ColdPerInst {
		t.Fatal("optimization must cost more than quick translation")
	}
	if p.SideExitPenalty <= 0 || p.ProfOverhead <= 0 {
		t.Fatal("penalties must be positive")
	}
}

func TestChargesAccumulate(t *testing.T) {
	p := Params{
		ColdPerInst: 10, OptPerInst: 100, QuickFactor: 2,
		ProfOverhead: 3, OptFactor: 1, OffTraceFactor: 1.5, SideExitPenalty: 7,
	}
	a := NewAccumulator(p)
	a.ChargeTranslate(5)      // 50
	a.ChargeOptimize(4)       // 400
	a.ChargeQuickBlock(10)    // 20 + 3
	a.ChargeOptimizedBlock(8) // 8
	a.ChargeOffTraceBlock(8)  // 12
	a.ChargeSideExit()        // 7
	want := 50.0 + 400 + 23 + 8 + 12 + 7
	if math.Abs(a.Cycles-want) > 1e-9 {
		t.Fatalf("Cycles = %v, want %v", a.Cycles, want)
	}
	if a.TranslateCycles != 50 || a.OptimizeCycles != 400 {
		t.Fatalf("one-time breakdown wrong: %+v", a)
	}
	if a.QuickCycles != 20 || a.ProfileCycles != 3 {
		t.Fatalf("quick breakdown wrong: %+v", a)
	}
	if a.OptimizedCycles != 8 || a.OffTraceCycles != 12 || a.PenaltyCycles != 7 {
		t.Fatalf("optimized breakdown wrong: %+v", a)
	}
}

func TestParamsAccessor(t *testing.T) {
	p := DefaultParams()
	a := NewAccumulator(p)
	if a.Params() != p {
		t.Fatal("Params() does not round-trip")
	}
}

// Property: total cycles always equal the sum of the breakdown terms.
func TestQuickBreakdownSums(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewAccumulator(DefaultParams())
		for _, op := range ops {
			cost := int(op%16) + 1
			switch op % 6 {
			case 0:
				a.ChargeTranslate(cost)
			case 1:
				a.ChargeOptimize(cost)
			case 2:
				a.ChargeQuickBlock(cost)
			case 3:
				a.ChargeOptimizedBlock(cost)
			case 4:
				a.ChargeOffTraceBlock(cost)
			case 5:
				a.ChargeSideExit()
			}
		}
		sum := a.TranslateCycles + a.OptimizeCycles + a.QuickCycles +
			a.ProfileCycles + a.OptimizedCycles + a.OffTraceCycles + a.PenaltyCycles
		return math.Abs(sum-a.Cycles) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: charges are monotone: more work never reduces cycles.
func TestQuickMonotone(t *testing.T) {
	f := func(costs []uint8) bool {
		a := NewAccumulator(DefaultParams())
		prev := 0.0
		for _, c := range costs {
			a.ChargeQuickBlock(int(c%32) + 1)
			if a.Cycles < prev {
				return false
			}
			prev = a.Cycles
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
