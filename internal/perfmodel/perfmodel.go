// Package perfmodel is the cycle-cost model behind the paper's Figure 17
// (performance impact of initial profiles).
//
// The paper measures wall-clock SPEC2000 performance under IA32EL on an
// Itanium 2. That hardware pipeline is out of scope; what Figure 17
// actually demonstrates is the interaction of four cost terms, which the
// model makes explicit:
//
//  1. quick-translated code is slower than optimized code and pays a
//     per-execution profiling overhead, so a high retranslation
//     threshold keeps the program in slow code too long;
//  2. translation and optimization are one-time costs, so optimizing
//     everything immediately (T=1) wastes work on cold code;
//  3. optimized regions formed from an unrepresentative initial profile
//     take side exits, each costing a penalty, so optimizing too early
//     can produce slow "optimized" code;
//  4. on-trace execution of well-formed regions is the payoff.
//
// The defaults are loosely calibrated to the ratios reported for IA32EL
// (translation overhead small relative to execution, optimized code
// roughly 1.5-2x faster than quick-translated code).
package perfmodel

// Params are the model's cost coefficients, in abstract cycles.
type Params struct {
	// ColdPerInst is the one-time cost of quick-translating one guest
	// instruction.
	ColdPerInst float64
	// OptPerInst is the one-time cost of optimizing one instruction of
	// a region (region formation, scheduling, code generation).
	OptPerInst float64
	// QuickFactor multiplies guest instruction cost in quick-translated
	// (profiling) code.
	QuickFactor float64
	// ProfOverhead is the per-block-execution cost of the use/taken
	// counter updates.
	ProfOverhead float64
	// OptFactor multiplies guest instruction cost when executing inside
	// an optimized region on its expected path: the payoff of region
	// scheduling.
	OptFactor float64
	// OffTraceFactor multiplies guest instruction cost for optimized
	// (retranslated) blocks executed outside any region context:
	// region formation optimized some other path, so this code runs
	// without profiling but also without scheduling benefit.
	OffTraceFactor float64
	// SideExitPenalty is charged whenever execution leaves an optimized
	// region off its expected path (branch repair, register
	// reshuffling, returning to the dispatcher).
	SideExitPenalty float64
}

// DefaultParams returns the reference calibration.
func DefaultParams() Params {
	return Params{
		ColdPerInst:     60,
		OptPerInst:      4500,
		QuickFactor:     1.35,
		ProfOverhead:    1.5,
		OptFactor:       0.85,
		OffTraceFactor:  1.12,
		SideExitPenalty: 8,
	}
}

// Accumulator tallies the simulated cycles of one run.
type Accumulator struct {
	p Params
	// Cycles is the running total.
	Cycles float64
	// Breakdown for reporting and the ablation benches.
	TranslateCycles float64
	OptimizeCycles  float64
	QuickCycles     float64
	ProfileCycles   float64
	OptimizedCycles float64
	OffTraceCycles  float64
	PenaltyCycles   float64
}

// NewAccumulator returns an accumulator using the given parameters.
func NewAccumulator(p Params) *Accumulator {
	return &Accumulator{p: p}
}

// Params returns the parameters in use.
func (a *Accumulator) Params() Params { return a.p }

// ChargeTranslate records the one-time quick translation of a block of n
// instructions.
func (a *Accumulator) ChargeTranslate(n int) {
	c := a.p.ColdPerInst * float64(n)
	a.TranslateCycles += c
	a.Cycles += c
}

// ChargeOptimize records the one-time optimization of a region totalling
// n instructions.
func (a *Accumulator) ChargeOptimize(n int) {
	c := a.p.OptPerInst * float64(n)
	a.OptimizeCycles += c
	a.Cycles += c
}

// ChargeQuickBlock records one execution of a profiling-mode block whose
// instructions sum to cost guest cycles.
func (a *Accumulator) ChargeQuickBlock(cost int) {
	q := a.p.QuickFactor * float64(cost)
	a.QuickCycles += q
	a.ProfileCycles += a.p.ProfOverhead
	a.Cycles += q + a.p.ProfOverhead
}

// ChargeQuickBlockUnprofiled records one execution of a profiling-mode
// block on an event the sampled-profiling stride skipped: the quick
// translation still runs at QuickFactor, but no counter update happens,
// so the per-execution ProfOverhead is not paid. This is the cost side
// of the sampling frontier (dbt.Config.SamplePeriod).
func (a *Accumulator) ChargeQuickBlockUnprofiled(cost int) {
	q := a.p.QuickFactor * float64(cost)
	a.QuickCycles += q
	a.Cycles += q
}

// ChargeOptimizedBlock records one execution of an optimized block on
// its region's expected path.
func (a *Accumulator) ChargeOptimizedBlock(cost int) {
	c := a.p.OptFactor * float64(cost)
	a.OptimizedCycles += c
	a.Cycles += c
}

// ChargeOffTraceBlock records one execution of a retranslated block
// outside any region context.
func (a *Accumulator) ChargeOffTraceBlock(cost int) {
	c := a.p.OffTraceFactor * float64(cost)
	a.OffTraceCycles += c
	a.Cycles += c
}

// ChargeSideExit records one off-trace exit from an optimized region.
func (a *Accumulator) ChargeSideExit() {
	a.PenaltyCycles += a.p.SideExitPenalty
	a.Cycles += a.p.SideExitPenalty
}
