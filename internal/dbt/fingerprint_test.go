package dbt

import (
	"strings"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/region"
)

func TestFingerprintSeparatesSemanticFields(t *testing.T) {
	base := Config{Input: "ref", Threshold: 5, Optimize: true, PoolTrigger: 8, RegisterTwice: true}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"input", func(c *Config) { c.Input = "train" }},
		{"threshold", func(c *Config) { c.Threshold = 7 }},
		{"optimize", func(c *Config) { c.Optimize = false }},
		{"pool", func(c *Config) { c.PoolTrigger = 16 }},
		{"reg2", func(c *Config) { c.RegisterTwice = false }},
		{"freeze", func(c *Config) { c.DisableFreeze = true }},
		{"region", func(c *Config) { c.Region = region.Config{MinProb: 0.9} }},
		{"perf", func(c *Config) { c.Perf = perfmodel.NewAccumulator(perfmodel.DefaultParams()) }},
		{"maxexec", func(c *Config) { c.MaxBlockExecs = 100 }},
		{"trap", func(c *Config) { c.TrapAfter = 500 }},
		{"adaptive", func(c *Config) { c.Adaptive = true }},
		{"adaptive-rate", func(c *Config) { c.AdaptiveSideExitRate = 0.5 }},
		{"adaptive-min", func(c *Config) { c.AdaptiveMinEntries = 10 }},
		{"trip", func(c *Config) { c.ContinuousTripCount = true }},
		{"converge", func(c *Config) { c.ConvergeRegister = true }},
		{"converge-eps", func(c *Config) { c.ConvergeEpsilon = 0.05 }},
		{"converge-min", func(c *Config) { c.ConvergeMinUse = 64 }},
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for _, m := range mutations {
		c := base
		m.mut(&c)
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q collides with %q: %s", m.name, prev, fp)
		}
		seen[fp] = m.name
	}
}

func TestFingerprintExcludesNonSemanticFields(t *testing.T) {
	base := Config{Input: "ref", Threshold: 5, Optimize: true}
	withInterrupt := base
	withInterrupt.Interrupt = make(chan struct{})
	if base.Fingerprint() != withInterrupt.Fingerprint() {
		t.Error("Interrupt changed the fingerprint; interrupted runs are never cached, so it must not")
	}
	withSlowPath := base
	withSlowPath.DisableFastPath = true
	if base.Fingerprint() != withSlowPath.Fingerprint() {
		t.Error("DisableFastPath changed the fingerprint; the paths are result-equivalent")
	}
}

func TestFingerprintPerfParamsMatter(t *testing.T) {
	p := perfmodel.DefaultParams()
	a := Config{Perf: perfmodel.NewAccumulator(p)}
	p.QuickFactor *= 2
	b := Config{Perf: perfmodel.NewAccumulator(p)}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different perf params share a fingerprint; cached Cycles would be wrong")
	}
	if !strings.Contains(a.Fingerprint(), "perf=") {
		t.Errorf("fingerprint %q lacks a perf component", a.Fingerprint())
	}
}
