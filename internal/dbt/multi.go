// Shared-trace execution: because profiling state (counters, frozen
// flags, regions, perf charges) never feeds back into guest execution,
// every run of the same image over the same tape follows the identical
// block trace regardless of its threshold or optimization settings.
// RunMulti exploits this: it executes the guest once and replays each
// architectural outcome through any number of independent profiling
// engines, so an AVEP run and a whole INIP(T) ladder cost one execution
// plus N bookkeeping passes instead of N full runs.
//
// Each follower engine steps through exactly the code path a serial run
// would (preExec, postExec), with its own code cache, counters, region
// former and perf accumulator, so its snapshot, statistics and cycle
// totals are bit-for-bit what a serial Run with the same Config would
// have produced. Tests cross-validate this for every configuration
// class.
//
// Replay is batched: the driver records (nextPC, halted) outcomes into
// a fixed buffer of replayBatch entries, and each follower then drains
// the whole batch in one tight specialized loop (drainBatch) that
// reproduces the exact serial per-entry sequence (preExec, then
// postExec), so nothing observable changes versus per-block
// interleaving — counters, wave timing and interrupt-poll cadence are
// all driven by each engine's own block count. What changes is locality: one follower's caches, counters and
// region state stay hot across thousands of entries instead of 1+N
// engines evicting each other every block. The only semantic skew is
// error ordering across engines — the driver executes up to replayBatch
// blocks ahead, so a driver-side fault at block k+j can surface before
// a follower's budget/trap error at block k. Errored RunMulti results
// are discarded wholesale by every caller, and in practice all configs
// share TrapAfter/MaxBlockExecs, so the first error wins identically.
package dbt

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/profile"
)

// replayBatch is the outcome-buffer size of RunMulti's batched replay,
// aligned with the interrupt-poll period so the driver's poll cadence
// bounds how far execution runs ahead of follower bookkeeping.
const replayBatch = interruptCheckMask + 1

// outcome is one recorded architectural block outcome: everything a
// follower needs to advance its profiling state machine past one block.
type outcome struct {
	nextPC int32
	halted bool
}

// RunMulti executes the guest once and produces one profile snapshot
// and one statistics record per configuration, as if each configuration
// had been run serially with Run over an identical tape. The first
// configuration drives execution: its Input, DisableFastPath, Interrupt
// and MaxBlockExecs settings govern the shared trace, and the tape is
// consumed by it alone. All configurations must agree on what the guest
// does — they may differ in profiling settings (Threshold, Optimize,
// Perf, adaptive/convergence knobs) but not in anything architectural.
func RunMulti(img *guest.Image, tape interp.Tape, cfgs []Config) ([]*profile.Snapshot, []*RunStats, error) {
	return runMulti(img, tape, cfgs, nil)
}

// runMulti is the shared body of RunMulti and RunMultiObserved. With
// observers, each filled batch is additionally walked for resolved
// conditional branches (see observe.go) before the followers drain it;
// the walk reads only recorded outcomes and static block properties, so
// execution, profiling and statistics are untouched by it.
func runMulti(img *guest.Image, tape interp.Tape, cfgs []Config, observers []TraceObserver) ([]*profile.Snapshot, []*RunStats, error) {
	if len(cfgs) == 0 {
		return nil, nil, fmt.Errorf("dbt: RunMulti needs at least one config")
	}
	engines := make([]*Engine, len(cfgs))
	for i, cfg := range cfgs {
		var tp interp.Tape
		if i == 0 {
			tp = tape
		} else {
			// Followers never execute guest instructions, so they need
			// no tape and must not poll the interrupt channel (the
			// driver already does).
			cfg.Interrupt = nil
		}
		e, err := New(img, tp, cfg)
		if err != nil {
			return nil, nil, err
		}
		engines[i] = e
	}
	driver := engines[0]
	for _, e := range engines {
		if err := e.start(); err != nil {
			return nil, nil, err
		}
	}
	followers := engines[1:]
	buf := make([]outcome, 0, replayBatch)
	var events []BranchEvent
	if len(observers) > 0 {
		events = make([]BranchEvent, 0, replayBatch)
	}
	done := false
	for !done {
		// Fill one batch: the driver's budget/interrupt check runs
		// before each block, exactly as in a serial run. The batch's
		// first block is the driver's cursor, which the observer walk
		// needs before fillBatch advances it.
		startPC := driver.cur.addr
		var batch []outcome
		var err error
		batch, done, err = driver.fillBatch(buf[:0])
		if err != nil {
			return nil, nil, err
		}
		if len(observers) > 0 {
			events = appendBranchEvents(events[:0], driver, startPC, batch)
			for _, o := range observers {
				o.ObserveBranches(events)
			}
		}
		// Drain it through each follower: per entry the exact serial
		// accounting + bookkeeping sequence, over thousands of entries
		// per engine switch.
		for _, e := range followers {
			if err := e.drainBatch(batch); err != nil {
				return nil, nil, err
			}
		}
	}
	snaps := make([]*profile.Snapshot, len(engines))
	statss := make([]*RunStats, len(engines))
	for i, e := range engines {
		snaps[i], statss[i], _ = e.finish()
	}
	return snaps, statss, nil
}

// fillBatch executes the guest until the appended outcome batch reaches
// its capacity, the guest halts (done=true), or the engine stops with an
// error. It is the execution twin of drainBatch: the per-block
// preExec / exec / postExec sequence of the serial run loop, inlined so
// the block count, poll tick, sum counters and the block/region cursors
// live in registers across the batch and are written back once. Both
// the serial Run loop and RunMulti's driver use it — the serial caller
// just discards the recorded outcomes.
//
// Any behavioural edit to preExec or postExec MUST be mirrored here and
// in drainBatch; the serial-vs-follower equivalence tests and
// FuzzExecPaths pin the contract bit-for-bit.
func (e *Engine) fillBatch(batch []outcome) ([]outcome, bool, error) {
	count := e.stats.BlocksExecuted
	var instr, fastN, genN, polls uint64
	budget, trapAfter, interrupt := e.budget, e.trapAfter, e.interrupt
	fastPath, optimize, conv := e.fastPath, e.optimize, e.converge
	samplePeriod, gap := e.samplePeriod, e.sampleGap
	perf := e.perf
	cur := e.cur
	curRegion, curNode := e.curRegion, e.curNode
	done := false
	kind := 0 // 0 clean, 1 budget, 2 trap, 3 raw error
	var retErr error

	for len(batch) < cap(batch) {
		// preExec, inlined: count first, budget before trap, poll tick
		// before the channel read — erroring paths flush the count they
		// already incremented but never reach the later checks.
		count++
		if budget > 0 && count > budget {
			kind = 1
			break
		}
		if trapAfter > 0 && count >= trapAfter {
			kind = 2
			break
		}
		if count&interruptCheckMask == 0 {
			polls++
			if interrupt != nil {
				if err := e.pollInterrupt(); err != nil {
					kind, retErr = 3, err
					break
				}
			}
		}

		tb := cur
		var (
			nextPC int
			halted bool
			err    error
		)
		if fastPath && tb.lowered {
			nextPC, halted, err = e.execBlock(tb)
		} else {
			nextPC, halted, err = e.execBlockGeneric(tb)
		}
		if err != nil {
			kind, retErr = 3, err
			break
		}

		// postExec, inlined (same body as drainBatch's replay loop).
		instr += uint64(tb.ninsts)
		if fastPath && tb.lowered {
			fastN++
		} else {
			genN++
		}
		takenEdge := !tb.hasBranch || nextPC == tb.takenTarget
		sampledEvent := true
		if samplePeriod > 1 {
			gap--
			if gap == 0 {
				gap = samplePeriod
			} else {
				sampledEvent = false
			}
		}
		if !tb.frozen && sampledEvent {
			tb.use++
			e.profOps++
			if tb.hasBranch && takenEdge {
				tb.taken++
				e.profOps++
			}
			if optimize {
				var ready bool
				if conv {
					ready = e.shouldRegister(tb)
				} else if tb.use == tb.nextRegister {
					ready = true
					tb.nextRegister += e.regThreshold
				}
				if ready && e.register(tb) {
					e.optimizeWave()
				}
			}
		}
		var next *tblock
		if takenEdge {
			if nb := tb.takenBlk; nb != nil && nb.addr == nextPC {
				next = nb
			}
		} else if nb := tb.fallBlk; nb != nil && nb.addr == nextPC {
			next = nb
		}
		if next == nil && tb.itab != nil {
			if nb := tb.itab[nextPC&(indirectWays-1)]; nb != nil && nb.addr == nextPC {
				next = nb
				tb.takenBlk = nb
			}
		}
		if next == nil {
			if next = e.lookup(nextPC); next != nil {
				e.chain(tb, takenEdge, next)
			}
		}
		if perf != nil {
			switch {
			case tb.frozen && curNode != nil && curNode.addr == tb.addr:
				perf.ChargeOptimizedBlock(int(tb.costSum))
			case tb.frozen:
				perf.ChargeOffTraceBlock(int(tb.costSum))
			case sampledEvent:
				perf.ChargeQuickBlock(int(tb.costSum))
			default:
				perf.ChargeQuickBlockUnprofiled(int(tb.costSum))
			}
		}
		if optimize {
			if rt := curRegion; rt != nil {
				node := curNode
				if node == nil || node.addr != tb.addr {
					e.curRegion = rt
					e.leaveRegion(false)
					curRegion, curNode = nil, nil
				} else {
					var nn *rtNode
					if takenEdge {
						nn = node.taken
					} else {
						nn = node.fall
					}
					switch {
					case nn == nil:
						e.curRegion = rt
						e.leaveRegion(rt.r.Kind == profile.RegionTrace && node == rt.last)
						curRegion, curNode = nil, nil
					case nn == rt.entry:
						e.stats.RegionLoopBacks++
						rt.loopBacks++
						curNode = nn
					default:
						curNode = nn
					}
				}
			}
			if next != nil && curRegion == nil && next.regionEntry != nil {
				curRegion = next.regionEntry
				curRegion.entries++
				curNode = curRegion.entry
				e.stats.RegionEntries++
			}
		}

		batch = append(batch, outcome{nextPC: int32(nextPC), halted: halted})
		if halted {
			e.halted = true
			done = true
			break
		}
		if next == nil {
			next, err = e.translate(nextPC)
			if err != nil {
				kind, retErr = 3, err
				break
			}
			e.chain(tb, takenEdge, next)
		}
		cur = next
	}

	// Flush, then materialize any stop error: trapped() formats the
	// flushed block count into its message.
	e.cur = cur
	e.curRegion, e.curNode = curRegion, curNode
	e.sampleGap = gap
	e.stats.BlocksExecuted = count
	e.stats.InterruptPolls += polls
	e.stats.Instructions += instr
	e.stats.FastDispatches += fastN
	e.stats.GenericDispatches += genN
	switch kind {
	case 1:
		return batch, false, e.budgetExhausted()
	case 2:
		return batch, false, e.trapped()
	case 3:
		return batch, false, retErr
	}
	return batch, done, nil
}

// drainBatch replays one recorded batch through a follower engine,
// producing exactly the state the per-entry preExec/postExec sequence
// would. It is the study's hottest loop — one call per follower per
// 4096 blocks instead of two calls per follower per block — so the
// serial code path is restructured, never changed:
//
//   - budget/trap checks compare the block count against fixed values,
//     so the first entry (if any) whose preExec would error is computed
//     up front, in the serial order (count first, budget before trap);
//   - the interrupt-poll counter ticks on 4096-boundary crossings of
//     the block count, so a batch's ticks are pure arithmetic (follower
//     channels are stripped by RunMulti, so there is nothing to poll —
//     an engine with a live channel takes the per-entry path instead);
//   - the pure-sum counters (instructions, dispatch split, block count)
//     accumulate in locals flushed on every exit path, and the postExec
//     state machine is inlined so engine-invariant fields stay in
//     registers across the batch.
//
// Any behavioural edit to preExec or postExec MUST be mirrored here;
// the serial-vs-follower equivalence tests and FuzzExecPaths pin the
// contract bit-for-bit.
func (e *Engine) drainBatch(batch []outcome) error {
	if e.interrupt != nil {
		for _, o := range batch {
			if err := e.preExec(); err != nil {
				return err
			}
			if err := e.postExec(int(o.nextPC), o.halted); err != nil {
				return err
			}
		}
		return nil
	}

	start := e.stats.BlocksExecuted
	n := uint64(len(batch))
	stop, errKind := n, 0 // errKind: 0 clean, 1 budget, 2 trap
	if e.budget > 0 && start+n > e.budget {
		stop, errKind = e.budget-start, 1
	}
	if e.trapAfter > 0 {
		var at uint64
		if e.trapAfter > start {
			at = e.trapAfter - start - 1
		}
		if at < stop {
			stop, errKind = at, 2
		}
	}

	// The sum counters accumulate in locals and the cursor stays in a
	// register; both are written back in the single flush block below.
	// No closure: captured accumulators would be forced into memory and
	// cost a load/store per entry.
	var instr, fastN, genN uint64
	processed := stop
	var retErr error
	fastPath, optimize, conv := e.fastPath, e.optimize, e.converge
	samplePeriod, gap := e.samplePeriod, e.sampleGap
	perf := e.perf
	cur := e.cur
	// The region cursor also lives in locals across the batch: it is read
	// on every entry (the perf charge class tests it) but leaves a region
	// rarely. leaveRegion is the one callee that touches the engine
	// fields, so the cold paths sync e.curRegion before the call and null
	// the locals after; the flush writes the final cursor back.
	curRegion, curNode := e.curRegion, e.curNode
	for i := uint64(0); i < stop; i++ {
		o := batch[i]
		nextPC := int(o.nextPC)
		tb := cur
		instr += uint64(tb.ninsts)
		if fastPath && tb.lowered {
			fastN++
		} else {
			genN++
		}

		takenEdge := !tb.hasBranch || nextPC == tb.takenTarget

		sampledEvent := true
		if samplePeriod > 1 {
			gap--
			if gap == 0 {
				gap = samplePeriod
			} else {
				sampledEvent = false
			}
		}
		if !tb.frozen && sampledEvent {
			tb.use++
			e.profOps++
			if tb.hasBranch && takenEdge {
				tb.taken++
				e.profOps++
			}
			if optimize {
				var ready bool
				if conv {
					ready = e.shouldRegister(tb)
				} else if tb.use == tb.nextRegister {
					ready = true
					tb.nextRegister += e.regThreshold
				}
				if ready && e.register(tb) {
					e.optimizeWave()
				}
			}
		}

		var next *tblock
		if takenEdge {
			if nb := tb.takenBlk; nb != nil && nb.addr == nextPC {
				next = nb
			}
		} else if nb := tb.fallBlk; nb != nil && nb.addr == nextPC {
			next = nb
		}
		if next == nil && tb.itab != nil {
			if nb := tb.itab[nextPC&(indirectWays-1)]; nb != nil && nb.addr == nextPC {
				next = nb
				tb.takenBlk = nb
			}
		}
		if next == nil {
			if next = e.lookup(nextPC); next != nil {
				e.chain(tb, takenEdge, next)
			}
		}

		if perf != nil {
			switch {
			case tb.frozen && curNode != nil && curNode.addr == tb.addr:
				perf.ChargeOptimizedBlock(int(tb.costSum))
			case tb.frozen:
				perf.ChargeOffTraceBlock(int(tb.costSum))
			case sampledEvent:
				perf.ChargeQuickBlock(int(tb.costSum))
			default:
				perf.ChargeQuickBlockUnprofiled(int(tb.costSum))
			}
		}
		if optimize {
			if rt := curRegion; rt != nil {
				// trackRegion, inlined: advance the cursor along the
				// fired edge; leaving the region is the cold path.
				node := curNode
				if node == nil || node.addr != tb.addr {
					e.curRegion = rt
					e.leaveRegion(false)
					curRegion, curNode = nil, nil
				} else {
					var nn *rtNode
					if takenEdge {
						nn = node.taken
					} else {
						nn = node.fall
					}
					switch {
					case nn == nil:
						e.curRegion = rt
						e.leaveRegion(rt.r.Kind == profile.RegionTrace && node == rt.last)
						curRegion, curNode = nil, nil
					case nn == rt.entry:
						e.stats.RegionLoopBacks++
						rt.loopBacks++
						curNode = nn
					default:
						curNode = nn
					}
				}
			}
			if next != nil && curRegion == nil && next.regionEntry != nil {
				curRegion = next.regionEntry
				curRegion.entries++
				curNode = curRegion.entry
				e.stats.RegionEntries++
			}
		}

		if o.halted {
			// A halt is always the batch's final entry, so no budget or
			// trap stop can sit beyond it: fall through to the flush.
			e.halted = true
			processed = i + 1
			break
		}
		if next == nil {
			var err error
			next, err = e.translate(nextPC)
			if err != nil {
				processed, retErr = i+1, err
				break
			}
			e.chain(tb, takenEdge, next)
		}
		cur = next
	}
	// Flush: processed entries are the fully pre-counted blocks; an
	// erroring preExec increments the block count afterwards but never
	// reaches the poll tick, exactly like preExec's early returns.
	const period = uint64(interruptCheckMask + 1)
	e.cur = cur
	e.curRegion, e.curNode = curRegion, curNode
	e.sampleGap = gap
	e.stats.Instructions += instr
	e.stats.FastDispatches += fastN
	e.stats.GenericDispatches += genN
	e.stats.BlocksExecuted = start + processed
	e.stats.InterruptPolls += (start+processed)/period - start/period
	if retErr != nil {
		return retErr
	}
	if processed == stop {
		switch errKind {
		case 1:
			e.stats.BlocksExecuted++
			return e.budgetExhausted()
		case 2:
			e.stats.BlocksExecuted++
			return e.trapped()
		}
	}
	return nil
}
