// Shared-trace execution: because profiling state (counters, frozen
// flags, regions, perf charges) never feeds back into guest execution,
// every run of the same image over the same tape follows the identical
// block trace regardless of its threshold or optimization settings.
// RunMulti exploits this: it executes the guest once and replays each
// architectural outcome through any number of independent profiling
// engines, so an AVEP run and a whole INIP(T) ladder cost one execution
// plus N bookkeeping passes instead of N full runs.
//
// Each follower engine steps through exactly the code path a serial run
// would (preExec, postExec), with its own code cache, counters, region
// former and perf accumulator, so its snapshot, statistics and cycle
// totals are bit-for-bit what a serial Run with the same Config would
// have produced. Tests cross-validate this for every configuration
// class.
package dbt

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/profile"
)

// RunMulti executes the guest once and produces one profile snapshot
// and one statistics record per configuration, as if each configuration
// had been run serially with Run over an identical tape. The first
// configuration drives execution: its Input, DisableFastPath, Interrupt
// and MaxBlockExecs settings govern the shared trace, and the tape is
// consumed by it alone. All configurations must agree on what the guest
// does — they may differ in profiling settings (Threshold, Optimize,
// Perf, adaptive/convergence knobs) but not in anything architectural.
func RunMulti(img *guest.Image, tape interp.Tape, cfgs []Config) ([]*profile.Snapshot, []*RunStats, error) {
	if len(cfgs) == 0 {
		return nil, nil, fmt.Errorf("dbt: RunMulti needs at least one config")
	}
	engines := make([]*Engine, len(cfgs))
	for i, cfg := range cfgs {
		var tp interp.Tape
		if i == 0 {
			tp = tape
		} else {
			// Followers never execute guest instructions, so they need
			// no tape and must not poll the interrupt channel (the
			// driver already does).
			cfg.Interrupt = nil
		}
		e, err := New(img, tp, cfg)
		if err != nil {
			return nil, nil, err
		}
		engines[i] = e
	}
	driver := engines[0]
	fast := driver.fastPath
	for _, e := range engines {
		if err := e.start(); err != nil {
			return nil, nil, err
		}
	}
	followers := engines[1:]
	for {
		// The driver's budget/interrupt check runs before the block
		// does, exactly as in a serial run; each follower then advances
		// through the identical accounting + bookkeeping sequence.
		if err := driver.preExec(); err != nil {
			return nil, nil, err
		}
		tb := driver.cur
		var (
			nextPC int
			halted bool
			err    error
		)
		if fast && tb.lowered {
			nextPC, halted, err = driver.execBlock(tb)
		} else {
			nextPC, halted, err = driver.execBlockGeneric(tb)
		}
		if err != nil {
			return nil, nil, err
		}
		if err := driver.postExec(nextPC, halted); err != nil {
			return nil, nil, err
		}
		for _, e := range followers {
			if err := e.preExec(); err != nil {
				return nil, nil, err
			}
			if err := e.postExec(nextPC, halted); err != nil {
				return nil, nil, err
			}
		}
		if halted {
			break
		}
	}
	snaps := make([]*profile.Snapshot, len(engines))
	statss := make([]*RunStats, len(engines))
	for i, e := range engines {
		snaps[i], statss[i], _ = e.finish()
	}
	return snaps, statss, nil
}
