// Trace observation: RunMultiObserved extends the shared-trace
// execution with read-only observers of the architectural branch
// stream. Observers ride the driver's recorded outcome batches — the
// guest still executes exactly once — and see each resolved conditional
// branch (block address, direction) in architectural order.
//
// The branch walk is a pure function of the outcome trace plus the
// static block properties (hasBranch, takenTarget), so the event stream
// is bit-identical across follower counts, fast vs generic dispatch,
// and any profiling configuration: exactly the determinism dynamic
// branch predictors need. The walk reads the driver's translation
// cache directly instead of going through lookup(), which counts
// probes — observation must not perturb any deterministic RunStats
// counter.
package dbt

import (
	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/profile"
)

// BranchEvent is one resolved conditional branch of the driver's
// architectural trace: the branch block's entry address and the
// direction it went.
type BranchEvent struct {
	PC    int32
	Taken bool
}

// TraceObserver receives the branch stream batch-wise, in architectural
// order. Calls are serial (one goroutine); the events slice is reused
// across calls, so implementations must not retain it.
type TraceObserver interface {
	ObserveBranches([]BranchEvent)
}

// RunMultiObserved is RunMulti with trace observers: the guest executes
// once, every configuration replays the shared trace, and each observer
// additionally sees the resolved conditional branches of that trace.
// Observers never feed back into execution or profiling — snapshots and
// statistics are bit-identical to a plain RunMulti.
func RunMultiObserved(img *guest.Image, tape interp.Tape, cfgs []Config, observers []TraceObserver) ([]*profile.Snapshot, []*RunStats, error) {
	return runMulti(img, tape, cfgs, observers)
}

// appendBranchEvents walks one outcome batch from the block the driver
// was about to execute when the batch began, resolving each executed
// block through the driver's translation cache (blocks are never
// evicted, so every executed address is present). Branch blocks emit
// one event; the taken edge is the architectural comparison the
// exec loops use: nextPC == takenTarget.
func appendBranchEvents(dst []BranchEvent, e *Engine, pc int, batch []outcome) []BranchEvent {
	cache := e.cache
	for _, o := range batch {
		tb := cache[pc]
		if tb.hasBranch {
			dst = append(dst, BranchEvent{PC: int32(pc), Taken: int(o.nextPC) == tb.takenTarget})
		}
		if o.halted {
			break
		}
		pc = int(o.nextPC)
	}
	return dst
}
