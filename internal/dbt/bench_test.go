package dbt

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/interp"
)

// Hot-loop microbenchmarks: the block dispatch paths (arena fast path
// vs generic interp.Exec) and RunMulti's batched follower replay, over
// two guest shapes — loop-heavy (long straight-line bodies, dispatch
// cost amortized over many instructions per block) and branch-heavy
// (short blocks, dispatch and successor resolution dominate). They make
// hot-loop wins measurable in seconds instead of a full-suite study:
//
//	go test ./internal/dbt -run '^$' -bench 'Exec|RunMulti' -benchtime 2s
//
// All of them report blocks/s, the study's headline throughput metric.

// buildLoopHeavy returns a guest spending its time in one long
// straight-line loop body: 16 ALU instructions per iteration and a
// single backward conditional.
func buildLoopHeavy(tb testing.TB, iters int32) *guest.Image {
	tb.Helper()
	src := `
.entry main
main:
	loadi r0, 0
	loadi r14, 0
	loadi r10, ` + itoa(iters) + `
loop:
	addi r1, r1, 1
	addi r2, r2, 3
	add r3, r1, r2
	sub r4, r3, r1
	xor r5, r3, r4
	and r6, r5, r3
	or r7, r6, r1
	addi r7, r7, 5
	shl r8, r1, r0
	shr r9, r3, r0
	mul r11, r1, r2
	add r12, r11, r7
	sub r12, r12, r9
	xor r13, r12, r8
	addi r13, r13, 9
	add r15, r13, r5
	addi r14, r14, 1
	blt r14, r10, loop
	halt
`
	img, err := guest.Assemble(src)
	if err != nil {
		tb.Fatalf("Assemble: %v", err)
	}
	return img
}

// buildBranchHeavy returns a guest spending its time bouncing between
// tiny blocks: a tape-driven diamond plus a call/return pair per
// iteration, so block dispatch, successor chaining and the indirect
// return path all stay on the critical path.
func buildBranchHeavy(tb testing.TB, iters int32) *guest.Image {
	tb.Helper()
	src := `
.entry main
main:
	loadi r14, 0
	loadi r6, 4096
	loadi r10, ` + itoa(iters) + `
loop:
	in r1
	blt r1, r6, taken
	addi r2, r2, 1
	jmp join
taken:
	addi r3, r3, 1
join:
	call leaf
	addi r14, r14, 1
	blt r14, r10, loop
	halt
leaf:
	addi r4, r4, 1
	ret
`
	img, err := guest.Assemble(src)
	if err != nil {
		tb.Fatalf("Assemble: %v", err)
	}
	return img
}

// benchRunOne measures serial Run throughput for one guest and path.
func benchRunOne(b *testing.B, img *guest.Image, disableFast bool) {
	b.ReportAllocs()
	var blocks uint64
	for i := 0; i < b.N; i++ {
		_, stats, err := Run(img, interp.NewUniformTape("bench/ref"), Config{
			Optimize:        true,
			Threshold:       4096,
			DisableFastPath: disableFast,
		})
		if err != nil {
			b.Fatal(err)
		}
		blocks += stats.BlocksExecuted
	}
	b.ReportMetric(float64(blocks)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkExecBlock exercises the arena fast path (execBlock).
func BenchmarkExecBlock(b *testing.B) {
	b.Run("loop_heavy", func(b *testing.B) { benchRunOne(b, buildLoopHeavy(b, 200_000), false) })
	b.Run("branch_heavy", func(b *testing.B) { benchRunOne(b, buildBranchHeavy(b, 100_000), false) })
}

// BenchmarkExecGeneric forces the generic interp.Exec dispatch
// (DisableFastPath), the reference the fast path is measured against.
func BenchmarkExecGeneric(b *testing.B) {
	b.Run("loop_heavy", func(b *testing.B) { benchRunOne(b, buildLoopHeavy(b, 200_000), true) })
	b.Run("branch_heavy", func(b *testing.B) { benchRunOne(b, buildBranchHeavy(b, 100_000), true) })
}

// benchRunMulti measures shared-trace throughput with one driver plus
// followers at a ladder of thresholds, the study's actual execution
// shape. Reported blocks/s sums over every profiling context advanced
// (driver + followers), matching how the study's Perf aggregates.
func benchRunMulti(b *testing.B, img *guest.Image, followers int) {
	b.ReportAllocs()
	cfgs := make([]Config, 1+followers)
	cfgs[0] = Config{Optimize: false} // AVEP driver
	for i := 1; i < len(cfgs); i++ {
		cfgs[i] = Config{Optimize: true, Threshold: uint64(64 << (uint(i-1) % 8))}
	}
	var blocks uint64
	for i := 0; i < b.N; i++ {
		_, statss, err := RunMulti(img, interp.NewUniformTape("bench/ref"), cfgs)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range statss {
			blocks += st.BlocksExecuted
		}
	}
	b.ReportMetric(float64(blocks)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkRunMulti measures batched follower replay at the follower
// counts the ISSUE tracks: 1, 4 and 16 profiling contexts behind one
// driver, for both guest shapes.
func BenchmarkRunMulti(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		n := n
		b.Run("loop_heavy/followers_"+itoa(int32(n)), func(b *testing.B) {
			benchRunMulti(b, buildLoopHeavy(b, 50_000), n)
		})
		b.Run("branch_heavy/followers_"+itoa(int32(n)), func(b *testing.B) {
			benchRunMulti(b, buildBranchHeavy(b, 25_000), n)
		})
	}
}
