package dbt

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/isa"
)

func TestEngineFaultsOnJrToInvalidTarget(t *testing.T) {
	// jr through a register holding an out-of-range address must surface
	// as an error, not a crash or silent wrap.
	img, err := guest.Assemble(`
.entry main
main:
	loadi r1, 2
	jr r1, [a]
a:
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	// Patch r1's constant beyond the code segment.
	in, err := img.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	in.Imm = 8000
	img.Code[0] = isa.Encode(in)
	if _, _, err := Run(img, interp.NewSliceTape(nil), Config{Optimize: false}); err == nil {
		t.Fatal("jr to invalid target did not fault")
	}
}

func TestEngineFaultsOnGuestMemoryViolation(t *testing.T) {
	img, err := guest.Assemble(`
.entry main
.data 2
main:
	loadi r1, 100
	store r1, 0(r1)
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(img, interp.NewSliceTape(nil), Config{Optimize: false}); err == nil {
		t.Fatal("store out of bounds did not fault")
	}
}

func TestZeroLengthProgramRejected(t *testing.T) {
	img := &guest.Image{Name: "empty"}
	if _, err := New(img, interp.NewSliceTape(nil), Config{}); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestProfilingOpsMatchCounterSemantics(t *testing.T) {
	// ProfilingOps must equal the sum of all use counts plus all taken
	// counts for an unoptimized run (each counter update is one op).
	img := buildLooper(t, 5000, 6144)
	snap, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, b := range snap.Blocks {
		want += b.Use + b.Taken
	}
	if snap.ProfilingOps != want {
		t.Fatalf("ProfilingOps = %d, counters sum to %d", snap.ProfilingOps, want)
	}
}
