// Pre-lowered block execution: at translate time every decoded
// isa.Inst is lowered into a compact operation record, and the engine's
// hot loop executes those records through a dbt-local dispatch instead
// of re-entering interp.Exec's generic decode-switch for every dynamic
// instruction. Block bodies carry no control flow, so the lowered body
// loop needs no per-instruction pc bookkeeping, next-pc tuple or halt
// flag; the terminator is lowered separately with its targets resolved
// once at translate time.
//
// Lowered code is arena-flattened: all blocks of an engine share one
// contiguous []lop arena, and each block's execution-hot state — its
// arena span, terminator kind, branch registers and resolved targets —
// lives in a packed record of the engine's flat block table (hot),
// dense in translation order. Steady-state dispatch therefore walks two
// dense arrays instead of pointer-chasing per-block heap objects: one
// hot record plus the block's arena span, which for consecutively
// translated (≈ consecutively executed) blocks are adjacent in memory.
// Spans are {off,len} indexes, so arena growth (append reallocation)
// never invalidates them, and translated blocks are never replaced, so
// the arena only grows.
//
// The fast path is required to be bit-for-bit equivalent to the
// reference interpreter. Semantics are copied verbatim from interp.Exec,
// and every fault (memory bounds, call-stack depth, empty return stack)
// is reported by re-executing the faulting instruction through
// interp.Exec so the error value is exactly the interpreter's. The
// generic path survives behind Config.DisableFastPath and is
// cross-validated against the fast path by test (equivalence suite plus
// the FuzzExecPaths random-program fuzzer).
package dbt

import (
	"fmt"
	"math"

	"repro/internal/interp"
	"repro/internal/isa"
)

// lkind is the lowered opcode of a block-body instruction. Body
// instructions never transfer control, so control ops have no lkind.
type lkind uint8

const (
	lNop lkind = iota
	lAdd
	lSub
	lMul
	lAnd
	lOr
	lXor
	lShl
	lShr
	lAddi
	lLoadi
	lLuhi
	lMov
	lLoad
	lStore
	lIn
	lFadd
	lFmul
	lFdiv
)

// lop is one lowered body instruction.
type lop struct {
	kind       lkind
	rd, rs, rt uint8
	imm        int32
}

// tkind is the lowered terminator class.
type tkind uint8

const (
	tHalt tkind = iota
	tBeq
	tBne
	tBlt
	tBge
	tJmp
	tJr
	tCall
	tRet
)

// hotrec is one row of the engine's flat block table: every field the
// lowered dispatch reads per block execution, packed into 24 bytes so
// two blocks share a cache line. It is a packed record rather than
// strict per-field columns because a dispatch reads every field of
// exactly one block — splitting the fields across parallel arrays would
// turn one cache-line touch into six.
type hotrec struct {
	off   uint32 // arena span start
	n     uint32 // arena span length (body instructions)
	taken int32  // resolved taken/jump/call target (-1 none)
	fall  int32  // resolved fall-through target (-1 none)
	end   int32  // terminator pc (halt result; call pushes end+1)
	tkind tkind
	brs   uint8 // terminator source registers, pre-masked by the decoder
	brt   uint8
}

// lowerBodyKind maps a non-control opcode to its lowered form.
func lowerBodyKind(op isa.Op) (lkind, bool) {
	switch op {
	case isa.OpNop:
		return lNop, true
	case isa.OpAdd:
		return lAdd, true
	case isa.OpSub:
		return lSub, true
	case isa.OpMul:
		return lMul, true
	case isa.OpAnd:
		return lAnd, true
	case isa.OpOr:
		return lOr, true
	case isa.OpXor:
		return lXor, true
	case isa.OpShl:
		return lShl, true
	case isa.OpShr:
		return lShr, true
	case isa.OpAddi:
		return lAddi, true
	case isa.OpLoadi:
		return lLoadi, true
	case isa.OpLuhi:
		return lLuhi, true
	case isa.OpMov:
		return lMov, true
	case isa.OpLoad:
		return lLoad, true
	case isa.OpStore:
		return lStore, true
	case isa.OpIn:
		return lIn, true
	case isa.OpFadd:
		return lFadd, true
	case isa.OpFmul:
		return lFmul, true
	case isa.OpFdiv:
		return lFdiv, true
	}
	return 0, false
}

// lowerTermKind maps a terminator opcode to its lowered class.
func lowerTermKind(op isa.Op) (tkind, bool) {
	switch op {
	case isa.OpHalt:
		return tHalt, true
	case isa.OpBeq:
		return tBeq, true
	case isa.OpBne:
		return tBne, true
	case isa.OpBlt:
		return tBlt, true
	case isa.OpBge:
		return tBge, true
	case isa.OpJmp:
		return tJmp, true
	case isa.OpJr:
		return tJr, true
	case isa.OpCall:
		return tCall, true
	case isa.OpRet:
		return tRet, true
	}
	return 0, false
}

// lower appends the block's body to the engine's lowered-op arena and
// fills its row of the flat block table, reporting success. A block
// that cannot be lowered (an opcode unknown to the lowerer) leaves the
// arena untouched and its table row zeroed; it stays on the generic
// interp.Exec path.
func (e *Engine) lower(tb *tblock) bool {
	term := tb.insts[len(tb.insts)-1]
	tk, ok := lowerTermKind(term.Op)
	if !ok {
		return false
	}
	body := tb.insts[:len(tb.insts)-1]
	start := len(e.arena)
	for _, in := range body {
		k, ok := lowerBodyKind(in.Op)
		if !ok {
			e.arena = e.arena[:start]
			return false
		}
		e.arena = append(e.arena, lop{kind: k, rd: in.Rd, rs: in.Rs, rt: in.Rt, imm: in.Imm})
	}
	e.hot[tb.id] = hotrec{
		off:   uint32(start),
		n:     uint32(len(body)),
		taken: int32(tb.takenTarget),
		fall:  int32(tb.fallTarget),
		end:   int32(tb.end),
		tkind: tk,
		brs:   term.Rs,
		brt:   term.Rt,
	}
	return true
}

// faultAt reproduces the fault of instruction i of tb by re-executing it
// through the reference interpreter, so the fast path returns exactly
// the error interp.Exec would have.
func (e *Engine) faultAt(tb *tblock, i int) error {
	_, _, err := interp.Exec(e.st, tb.addr+i, tb.insts[i])
	if err == nil {
		// The fast path saw a fault condition the interpreter does not:
		// a lowering bug, not a guest bug.
		return fmt.Errorf("dbt: internal: fast path faulted at pc %d but interpreter did not", tb.addr+i)
	}
	return err
}

// execBlock executes the block body and terminator through the
// pre-lowered fast path: one flat-table row load, then a walk of the
// block's contiguous arena span. Its contract matches running
// interp.Exec over every instruction of the block: it returns the
// interpreter's next pc and halt flag, and fault errors are the
// interpreter's own.
func (e *Engine) execBlock(tb *tblock) (nextPC int, halted bool, err error) {
	h := &e.hot[tb.id]
	st := e.st
	r := &st.Regs
	body := e.arena[h.off : h.off+h.n : h.off+h.n]
	// Register fields come from a 4-bit encoding, so masking with 15 is
	// a no-op semantically and lets the compiler elide the array bounds
	// checks in the hot loop.
	for i := 0; i < len(body); i++ {
		op := body[i]
		switch op.kind {
		case lNop:
		case lAdd:
			r[op.rd&15] = r[op.rs&15] + r[op.rt&15]
		case lSub:
			r[op.rd&15] = r[op.rs&15] - r[op.rt&15]
		case lMul:
			r[op.rd&15] = r[op.rs&15] * r[op.rt&15]
		case lAnd:
			r[op.rd&15] = r[op.rs&15] & r[op.rt&15]
		case lOr:
			r[op.rd&15] = r[op.rs&15] | r[op.rt&15]
		case lXor:
			r[op.rd&15] = r[op.rs&15] ^ r[op.rt&15]
		case lShl:
			r[op.rd&15] = r[op.rs&15] << (r[op.rt&15] & 31)
		case lShr:
			r[op.rd&15] = r[op.rs&15] >> (r[op.rt&15] & 31)
		case lAddi:
			r[op.rd&15] = r[op.rs&15] + uint32(op.imm)
		case lLoadi:
			r[op.rd&15] = uint32(op.imm)
		case lLuhi:
			r[op.rd&15] = r[op.rd&15]<<13 | uint32(op.imm)&0x1FFF
		case lMov:
			r[op.rd&15] = r[op.rs&15]
		case lLoad:
			addr := int(int32(r[op.rs&15]) + op.imm)
			if uint(addr) >= uint(len(st.Mem)) {
				return 0, false, e.faultAt(tb, i)
			}
			r[op.rd&15] = st.Mem[addr]
		case lStore:
			addr := int(int32(r[op.rs&15]) + op.imm)
			if uint(addr) >= uint(len(st.Mem)) {
				return 0, false, e.faultAt(tb, i)
			}
			st.Mem[addr] = r[op.rt&15]
		case lIn:
			r[op.rd&15] = st.Tape.Next()
		case lFadd:
			r[op.rd&15] = math.Float32bits(math.Float32frombits(r[op.rs&15]) + math.Float32frombits(r[op.rt&15]))
		case lFmul:
			r[op.rd&15] = math.Float32bits(math.Float32frombits(r[op.rs&15]) * math.Float32frombits(r[op.rt&15]))
		case lFdiv:
			r[op.rd&15] = math.Float32bits(math.Float32frombits(r[op.rs&15]) / math.Float32frombits(r[op.rt&15]))
		}
	}
	switch h.tkind {
	case tBeq:
		if r[h.brs&15] == r[h.brt&15] {
			return int(h.taken), false, nil
		}
		return int(h.fall), false, nil
	case tBne:
		if r[h.brs&15] != r[h.brt&15] {
			return int(h.taken), false, nil
		}
		return int(h.fall), false, nil
	case tBlt:
		if int32(r[h.brs&15]) < int32(r[h.brt&15]) {
			return int(h.taken), false, nil
		}
		return int(h.fall), false, nil
	case tBge:
		if int32(r[h.brs&15]) >= int32(r[h.brt&15]) {
			return int(h.taken), false, nil
		}
		return int(h.fall), false, nil
	case tJmp:
		return int(h.taken), false, nil
	case tJr:
		return int(r[h.brs&15]), false, nil
	case tCall:
		if len(st.Ret) >= interp.MaxCallDepth {
			return 0, false, e.faultAt(tb, int(h.n))
		}
		st.Ret = append(st.Ret, int(h.end)+1)
		return int(h.taken), false, nil
	case tRet:
		n := len(st.Ret)
		if n == 0 {
			return 0, false, e.faultAt(tb, int(h.n))
		}
		nextPC = st.Ret[n-1]
		st.Ret = st.Ret[:n-1]
		return nextPC, false, nil
	default: // tHalt
		return int(h.end), true, nil
	}
}

// execBlockGeneric executes the block through the shared semantic core,
// one interp.Exec call per instruction. It is the reference the fast
// path is validated against (Config.DisableFastPath) and the fallback
// for blocks the lowerer declined.
func (e *Engine) execBlockGeneric(tb *tblock) (nextPC int, halted bool, err error) {
	base := tb.addr
	for i, in := range tb.insts {
		nextPC, halted, err = interp.Exec(e.st, base+i, in)
		if err != nil {
			return 0, false, err
		}
	}
	return nextPC, halted, nil
}
