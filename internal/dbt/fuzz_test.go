package dbt

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/isa"
)

// Differential testing of the two dispatch paths: random small guest
// programs run through both the arena fast path and the generic
// interp.Exec dispatch, which must agree on everything — architectural
// state, profile snapshot, run statistics and faults. FuzzExecPaths
// explores the program space under the fuzzer; TestExecPathsRandom
// pins 300 seeded programs of the same generator as a deterministic
// regression suite.

// progGen derives program-construction decisions from a byte stream,
// yielding zeros once the stream is exhausted (which steers every
// terminator to halt, so generation always ends).
type progGen struct {
	data []byte
	i    int
}

func (g *progGen) next() byte {
	if g.i >= len(g.data) {
		return 0
	}
	b := g.data[g.i]
	g.i++
	return b
}

// buildFuzzProgram turns a byte stream into a valid SG32 image: a
// handful of labeled segments with data-driven bodies (ALU, memory,
// tape input, floats) and terminators covering every lowered class —
// conditional branches, jumps, calls, returns, indirect jumps through
// already-bound labels, and halt. Faulting programs (out-of-bounds
// memory, stray ret, jr into nowhere, infinite loops hitting the block
// budget) are deliberately reachable: both dispatch paths must report
// the identical fault. Returns nil if the builder rejects the program
// (branch offset overflow), which the callers skip.
func buildFuzzProgram(data []byte) *guest.Image {
	g := &progGen{data: data}
	b := guest.NewBuilder("fuzz")
	nseg := 2 + int(g.next()%5)
	labels := make([]guest.Label, nseg)
	for i := range labels {
		labels[i] = b.NewLabel("seg")
	}
	b.ReserveData(16)
	b.SetEntry(labels[0])
	starts := make([]int, nseg)

	aluOps := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpShl, isa.OpShr}
	brOps := []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge}

	for s := 0; s < nseg; s++ {
		starts[s] = b.PC()
		b.Bind(labels[s])
		for n := int(g.next() % 7); n > 0; n-- {
			sel := g.next()
			rd, rs, rt := g.next()&15, g.next()&15, g.next()&15
			switch sel % 8 {
			case 0, 1, 2:
				b.Emit(isa.Inst{Op: aluOps[int(sel)%len(aluOps)], Rd: rd, Rs: rs, Rt: rt})
			case 3:
				b.Emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Rs: rs, Imm: int32(int8(g.next()))})
			case 4:
				b.Emit(isa.Inst{Op: isa.OpLoadi, Rd: rd, Imm: int32(int8(g.next()))})
			case 5:
				// Offsets straddle the 16-word data segment so some
				// accesses fault; the fault must match across paths.
				op := isa.OpLoad
				if sel&8 != 0 {
					op = isa.OpStore
				}
				b.Emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt, Imm: int32(g.next()%24) - 4})
			case 6:
				b.In(rd)
			case 7:
				fops := []isa.Op{isa.OpFadd, isa.OpFmul, isa.OpFdiv, isa.OpNop, isa.OpMov, isa.OpLuhi}
				b.Emit(isa.Inst{Op: fops[int(g.next())%len(fops)], Rd: rd, Rs: rs, Rt: rt})
			}
		}
		tgt := labels[int(g.next())%nseg]
		switch g.next() % 8 {
		case 0, 1:
			b.Branch(brOps[int(g.next())%len(brOps)], g.next()&15, g.next()&15, tgt)
		case 2:
			b.Jump(tgt)
		case 3:
			b.Call(tgt)
		case 4:
			b.Ret()
		case 5:
			// Indirect jump to an already-bound segment: the target
			// address is known, so it can be materialized for jr.
			t := int(g.next()) % (s + 1)
			b.LoadImm(9, int32(starts[t]))
			b.JumpIndirect(9, labels[t])
		default:
			b.Emit(isa.Inst{Op: isa.OpHalt})
		}
	}
	b.Emit(isa.Inst{Op: isa.OpHalt})
	img, err := b.Build()
	if err != nil {
		return nil
	}
	return img
}

// runPath executes the image under one dispatch path with a tight
// optimization configuration (low threshold and pool trigger, so waves,
// freezing and region tracking all fire even in tiny programs) and a
// block budget bounding divergent programs.
func runPath(tb testing.TB, img *guest.Image, disableFast bool) (*Engine, string) {
	tb.Helper()
	e, err := New(img, interp.NewUniformTape("fuzz/ref"), Config{
		Optimize:        true,
		Threshold:       8,
		PoolTrigger:     2,
		RegisterTwice:   true,
		MaxBlockExecs:   20_000,
		DisableFastPath: disableFast,
	})
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	_, _, rerr := e.Run()
	msg := ""
	if rerr != nil {
		msg = rerr.Error()
	}
	return e, msg
}

// checkExecPaths runs the program both ways and asserts full agreement.
func checkExecPaths(t *testing.T, data []byte) {
	img := buildFuzzProgram(data)
	if img == nil {
		return
	}
	fast, fastErr := runPath(t, img, false)
	gen, genErr := runPath(t, img, true)

	if fastErr != genErr {
		t.Fatalf("fault mismatch:\nfast: %q\ngeneric: %q\nprogram:\n%s", fastErr, genErr, img.Disassemble())
	}
	fs, gs := fast.State(), gen.State()
	if fs.Regs != gs.Regs {
		t.Fatalf("register mismatch:\nfast: %v\ngeneric: %v\nprogram:\n%s", fs.Regs, gs.Regs, img.Disassemble())
	}
	if !reflect.DeepEqual(fs.Mem, gs.Mem) {
		t.Fatalf("memory mismatch:\nfast: %v\ngeneric: %v\nprogram:\n%s", fs.Mem, gs.Mem, img.Disassemble())
	}
	if !reflect.DeepEqual(fs.Ret, gs.Ret) {
		t.Fatalf("return-stack mismatch:\nfast: %v\ngeneric: %v\nprogram:\n%s", fs.Ret, gs.Ret, img.Disassemble())
	}
	if fastErr != "" {
		return // errored runs publish no snapshot or stats
	}

	fstats, gstats := fast.stats, gen.stats
	if fstats.GenericDispatches != 0 {
		t.Fatalf("fast path took %d generic dispatches on a fully lowerable program", fstats.GenericDispatches)
	}
	if gstats.FastDispatches != 0 {
		t.Fatalf("generic path took %d fast dispatches", gstats.FastDispatches)
	}
	// The dispatch split is the only permitted difference.
	fstats.FastDispatches, fstats.GenericDispatches = 0, 0
	gstats.FastDispatches, gstats.GenericDispatches = 0, 0
	if !reflect.DeepEqual(fstats, gstats) {
		t.Fatalf("stats mismatch:\nfast: %+v\ngeneric: %+v\nprogram:\n%s", fstats, gstats, img.Disassemble())
	}
	if !reflect.DeepEqual(fast.snapshot(), gen.snapshot()) {
		t.Fatalf("snapshot mismatch\nprogram:\n%s", img.Disassemble())
	}
}

// FuzzExecPaths is the fuzz entry: any byte stream builds some program,
// and both dispatch paths must agree on it exactly.
func FuzzExecPaths(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{3, 5, 0, 1, 2, 3, 4, 5, 6, 7, 250, 1, 9, 9, 30, 40})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		seed := make([]byte, 8+rng.Intn(56))
		rng.Read(seed)
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		checkExecPaths(t, data)
	})
}

// TestExecPathsRandom pins the differential check on 300 seeded random
// programs, so the cross-validation runs in every plain `go test`, not
// only under the fuzzer.
func TestExecPathsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		data := make([]byte, 4+rng.Intn(120))
		rng.Read(data)
		checkExecPaths(t, data)
	}
}

// branchLog records the observed branch stream (what predictors
// consume) for differential comparison across dispatch paths.
type branchLog struct {
	events []BranchEvent
}

func (l *branchLog) ObserveBranches(evs []BranchEvent) {
	l.events = append(l.events, evs...)
}

// checkPredictReplay runs one random program under both dispatch paths
// with a trace observer attached and asserts the observed branch
// streams are identical — the determinism contract every dynamic
// predictor's tallies rest on. The observed run must also leave
// snapshots and stats exactly as an unobserved run would.
func checkPredictReplay(t *testing.T, data []byte) {
	img := buildFuzzProgram(data)
	if img == nil {
		return
	}
	run := func(disableFast, observed bool) (*branchLog, []*RunStats, string) {
		cfg := Config{
			Input:           "ref",
			Optimize:        true,
			Threshold:       8,
			PoolTrigger:     2,
			RegisterTwice:   true,
			MaxBlockExecs:   20_000,
			DisableFastPath: disableFast,
		}
		log := &branchLog{}
		var obs []TraceObserver
		if observed {
			obs = []TraceObserver{log}
		}
		_, stats, err := RunMultiObserved(img, interp.NewUniformTape("fuzz/ref"), []Config{cfg}, obs)
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		return log, stats, msg
	}

	fastLog, fastStats, fastErr := run(false, true)
	genLog, _, genErr := run(true, true)
	if fastErr != genErr {
		t.Fatalf("fault mismatch:\nfast: %q\ngeneric: %q\nprogram:\n%s", fastErr, genErr, img.Disassemble())
	}
	if !reflect.DeepEqual(fastLog.events, genLog.events) {
		t.Fatalf("branch streams diverge between dispatch paths (%d vs %d events)\nprogram:\n%s",
			len(fastLog.events), len(genLog.events), img.Disassemble())
	}

	// Observation must be invisible: an unobserved run of the same
	// program reports identical stats.
	_, plainStats, plainErr := run(false, false)
	if plainErr != fastErr {
		t.Fatalf("observer changed the run's fault: %q vs %q", plainErr, fastErr)
	}
	if fastErr == "" && !reflect.DeepEqual(fastStats, plainStats) {
		t.Fatalf("observer perturbed run stats:\nobserved: %+v\nplain: %+v", fastStats[0], plainStats[0])
	}
	if fastErr != "" {
		return
	}

	// Every observed event must reference a branch block, and the
	// stream must be consistent with the run's block count.
	if n := fastStats[0].BlocksExecuted; uint64(len(fastLog.events)) > n {
		t.Fatalf("%d branch events exceed %d executed blocks", len(fastLog.events), n)
	}
}

// FuzzPredictReplay is the differential fuzz target for the predictor
// observation layer, alongside FuzzExecPaths: any byte stream builds
// some program, and the branch stream predictors consume must be
// bit-identical across dispatch paths and invisible to the run itself.
func FuzzPredictReplay(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{3, 5, 0, 1, 2, 3, 4, 5, 6, 7, 250, 1, 9, 9, 30, 40})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8; i++ {
		seed := make([]byte, 8+rng.Intn(56))
		rng.Read(seed)
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		checkPredictReplay(t, data)
	})
}

// TestPredictReplayRandom pins the replay differential on 300 seeded
// random programs in every plain `go test`.
func TestPredictReplayRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 300; i++ {
		data := make([]byte, 4+rng.Intn(120))
		rng.Read(data)
		checkPredictReplay(t, data)
	}
}
