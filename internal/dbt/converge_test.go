package dbt

import (
	"testing"

	"repro/internal/interp"
)

// TestConvergeRegistersStableBranchEarly: on a stationary, strongly
// biased program, convergence mode freezes hot blocks well before the
// fixed-threshold cap, saving profiling work at similar accuracy.
func TestConvergeRegistersStableBranchEarly(t *testing.T) {
	img := buildLooper(t, 100000, 7372) // stationary p = 0.9
	const cap = 50000

	fixed, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: cap, RegisterTwice: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	conv, convStats, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: cap, RegisterTwice: true,
		ConvergeRegister: true, ConvergeEpsilon: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if convStats.OptimizationWaves == 0 {
		t.Fatal("convergence mode never optimized")
	}
	if conv.ProfilingOps*2 > fixed.ProfilingOps {
		t.Fatalf("convergence ops %d not well below fixed-cap ops %d", conv.ProfilingOps, fixed.ProfilingOps)
	}
	// Frozen estimates still accurate: the hot loop branch froze with
	// p within epsilon-ish of 0.9.
	found := false
	for _, r := range conv.Regions {
		for i := range r.Blocks {
			rb := &r.Blocks[i]
			if rb.HasBranch && rb.Use >= 32 {
				p := rb.BranchProb()
				if p > 0.85 && p < 0.95 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no converged region block carries the expected probability")
	}
}

// TestConvergeKeepsNoisyBranchProfiling: a 50/50 branch needs far more
// samples to converge than a 95/5 branch at the same epsilon.
func TestConvergeKeepsNoisyBranchProfiling(t *testing.T) {
	run := func(bias int32) uint64 {
		img := buildLooper(t, 200000, bias)
		snap, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
			Optimize: true, Threshold: 1 << 40, // cap never reached
			RegisterTwice:    true,
			ConvergeRegister: true, ConvergeEpsilon: 0.015,
			PoolTrigger: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return snap.ProfilingOps
	}
	// The biased branch converges after ~800 samples and stops costing
	// profiling work; the 50/50 branch cannot converge before the
	// (unreachable) cap, so it keeps paying counter updates all run.
	biased := run(7782) // p = 0.95: sigma shrinks fast
	noisy := run(4096)  // p = 0.50: needs ~4300 samples at eps 0.015
	if noisy <= biased*2 {
		t.Fatalf("noisy ops %d not well above biased ops %d: convergence should spend more on noise", noisy, biased)
	}
}

// TestConvergeCapStillApplies: the fixed threshold remains the upper
// bound on profiling in convergence mode.
func TestConvergeCapStillApplies(t *testing.T) {
	img := buildLooper(t, 50000, 4096) // 50/50, hard to converge
	const cap = 200
	snap, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: cap, RegisterTwice: true,
		ConvergeRegister: true, ConvergeEpsilon: 0.001, // unreachable
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range snap.Regions {
		for i := range r.Blocks {
			if r.Blocks[i].Use > 2*cap {
				t.Fatalf("block frozen at use %d beyond the 2x cap %d", r.Blocks[i].Use, 2*cap)
			}
		}
	}
}
