package dbt

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/perfmodel"
	"repro/internal/profile"
)

// multiConfigs is a configuration spread covering every profiling mode
// RunMulti must replay faithfully: AVEP, a threshold ladder, freezing
// off, register-twice off, adaptive dissolution, continuous trip counts
// and convergence-based registration.
func multiConfigs(perf bool) []Config {
	cfgs := []Config{
		{Input: "ref", Optimize: false},
		{Input: "ref", Optimize: true, Threshold: 5, RegisterTwice: true},
		{Input: "ref", Optimize: true, Threshold: 40, RegisterTwice: true},
		{Input: "ref", Optimize: true, Threshold: 200, RegisterTwice: true},
		{Input: "ref", Optimize: true, Threshold: 40},
		{Input: "ref", Optimize: true, Threshold: 40, RegisterTwice: true, DisableFreeze: true},
		{Input: "ref", Optimize: true, Threshold: 25, RegisterTwice: true, Adaptive: true, AdaptiveMinEntries: 16},
		{Input: "ref", Optimize: true, Threshold: 25, RegisterTwice: true, ContinuousTripCount: true},
		{Input: "ref", Optimize: true, Threshold: 500, RegisterTwice: true, ConvergeRegister: true},
	}
	if perf {
		for i := range cfgs {
			cfgs[i].Perf = perfmodel.NewAccumulator(perfmodel.DefaultParams())
		}
	}
	return cfgs
}

func snapEqual(t *testing.T, label string, got, want *profile.Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: RunMulti snapshot differs from serial run\n got: %+v\nwant: %+v", label, got, want)
	}
}

// TestRunMultiMatchesSerialRuns is the core contract: each follower of a
// shared-trace run must produce bit-for-bit the snapshot, statistics and
// cycle totals of a serial run with the same configuration over an
// identical tape.
func TestRunMultiMatchesSerialRuns(t *testing.T) {
	img := buildLooper(t, 4000, 2400)
	cfgs := multiConfigs(true)

	snaps, stats, err := RunMulti(img, interp.NewUniformTape("multi/ref"), cfgs)
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	for i, cfg := range multiConfigs(true) {
		wantSnap, wantStats, err := Run(img, interp.NewUniformTape("multi/ref"), cfg)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		snapEqual(t, cfg.Input, snaps[i], wantSnap)
		if !reflect.DeepEqual(stats[i], wantStats) {
			t.Errorf("config %d: stats differ\n got: %+v\nwant: %+v", i, stats[i], wantStats)
		}
		if math.Abs(stats[i].Cycles-wantStats.Cycles) != 0 {
			t.Errorf("config %d: cycles %v != %v", i, stats[i].Cycles, wantStats.Cycles)
		}
	}
}

// TestRunMultiDriverPathsAgree cross-validates the two execution paths
// of the shared trace: a fast-path driver and a generic-dispatch driver
// must hand every follower the same outcomes.
func TestRunMultiDriverPathsAgree(t *testing.T) {
	img := buildLooper(t, 2000, 4000)
	fastSnaps, _, err := RunMulti(img, interp.NewUniformTape("multi/x"), multiConfigs(false))
	if err != nil {
		t.Fatalf("fast RunMulti: %v", err)
	}
	slowCfgs := multiConfigs(false)
	slowCfgs[0].DisableFastPath = true
	slowSnaps, _, err := RunMulti(img, interp.NewUniformTape("multi/x"), slowCfgs)
	if err != nil {
		t.Fatalf("generic RunMulti: %v", err)
	}
	for i := range fastSnaps {
		snapEqual(t, "driver-path", fastSnaps[i], slowSnaps[i])
	}
}

// TestRunMultiBudget: a follower's block budget aborts the whole shared
// run, matching the serial behaviour of that configuration.
func TestRunMultiBudget(t *testing.T) {
	img := buildLooper(t, 1000, 4000)
	cfgs := []Config{
		{Input: "ref"},
		{Input: "ref", Optimize: true, Threshold: 10, RegisterTwice: true, MaxBlockExecs: 50},
	}
	_, _, err := RunMulti(img, interp.NewUniformTape("multi/b"), cfgs)
	if err == nil {
		t.Fatalf("RunMulti ignored follower block budget")
	}
}

func TestRunMultiRejectsEmptyConfigs(t *testing.T) {
	img := buildLooper(t, 10, 10)
	if _, _, err := RunMulti(img, interp.NewUniformTape("x"), nil); err == nil {
		t.Fatalf("RunMulti accepted empty config list")
	}
}
