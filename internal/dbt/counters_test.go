package dbt

import (
	"testing"

	"repro/internal/interp"
)

// TestEngineCounters: the observability counters must be internally
// consistent — dispatch split sums to the execution volume, freezes and
// retranslations appear when the optimizer runs, and interrupt
// checkpoints track the 4096-block cadence.
func TestEngineCounters(t *testing.T) {
	img := buildLooper(t, 4000, 2400)
	cfg := Config{Input: "ref", Optimize: true, Threshold: 40, RegisterTwice: true}

	_, st, err := Run(img, interp.NewUniformTape("ctr/ref"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.FastDispatches == 0 {
		t.Fatal("fast path never dispatched on a fully lowerable program")
	}
	if st.FastDispatches+st.GenericDispatches != st.BlocksExecuted {
		t.Fatalf("dispatch split %d+%d != %d blocks executed",
			st.FastDispatches, st.GenericDispatches, st.BlocksExecuted)
	}
	if st.OptimizationWaves == 0 || st.Retranslations == 0 || st.FreezeEvents == 0 {
		t.Fatalf("optimizer counters empty despite waves: %+v", st)
	}
	if st.Retranslations < st.RegionsFormed {
		t.Fatalf("retranslations %d < regions formed %d", st.Retranslations, st.RegionsFormed)
	}
	if st.CacheLookups == 0 {
		t.Fatal("no cache lookups recorded")
	}
	wantPolls := st.BlocksExecuted / (interruptCheckMask + 1)
	if st.InterruptPolls != wantPolls {
		t.Fatalf("interrupt polls = %d, want %d for %d blocks",
			st.InterruptPolls, wantPolls, st.BlocksExecuted)
	}

	// The generic path books every dispatch on the other side; the
	// execution volume itself must not change.
	slow := cfg
	slow.DisableFastPath = true
	_, sst, err := Run(img, interp.NewUniformTape("ctr/ref"), slow)
	if err != nil {
		t.Fatal(err)
	}
	if sst.FastDispatches != 0 {
		t.Fatalf("DisableFastPath run recorded %d fast dispatches", sst.FastDispatches)
	}
	if sst.GenericDispatches != st.BlocksExecuted || sst.BlocksExecuted != st.BlocksExecuted {
		t.Fatalf("generic run volume differs: %d blocks / %d generic, want %d",
			sst.BlocksExecuted, sst.GenericDispatches, st.BlocksExecuted)
	}
}

// TestCountersMatchAcrossSharedTrace: RunMulti followers must report
// the same counter block a serial run does — covered in aggregate by
// TestRunMultiMatchesSerialRuns's DeepEqual, asserted here field-wise
// for the counters so a future stats split cannot silently exempt them.
func TestCountersMatchAcrossSharedTrace(t *testing.T) {
	img := buildLooper(t, 3000, 1800)
	cfgs := []Config{
		{Input: "ref", Optimize: false},
		{Input: "ref", Optimize: true, Threshold: 30, RegisterTwice: true},
		{Input: "ref", Optimize: true, Threshold: 30, RegisterTwice: true, DisableFastPath: true},
	}
	_, multi, err := RunMulti(img, interp.NewUniformTape("ctr/m"), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		_, serial, err := Run(img, interp.NewUniformTape("ctr/m"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, s := multi[i], serial
		if m.FastDispatches != s.FastDispatches ||
			m.GenericDispatches != s.GenericDispatches ||
			m.CacheLookups != s.CacheLookups ||
			m.InterruptPolls != s.InterruptPolls ||
			m.FreezeEvents != s.FreezeEvents ||
			m.Retranslations != s.Retranslations {
			t.Fatalf("config %d: follower counters differ from serial\n got: %+v\nwant: %+v", i, m, s)
		}
	}
}
