// Sampled profiling (Config.SamplePeriod): the deterministic stride
// that decides which block events update profiling counters, and the
// unit conversions between sampled and full counts.
//
// The stride is a countdown over the engine's own dynamic block-event
// sequence: event k (1-indexed) is sampled iff k ≡ phase+1 (mod P),
// where P is the period and phase is derived from SampleSeed. Nothing
// else feeds it — not wall clock, not scheduling, not which blocks are
// frozen — so the set of sampled events is a pure function of (image,
// tape, Config). That is the determinism argument: a follower replaying
// the shared trace sees the identical event sequence a serial run
// would, so its sampled counters, registration timing, optimization
// waves, and snapshot are bit-for-bit reproducible across repeat runs,
// worker counts, follower counts, and the fast/generic dispatch paths.
//
// Counters stay in sampled units inside the engine (a sampled block
// event increments use by one); they are scaled by the period at the
// two consumption boundaries — region formation (Engine.Info) and the
// profile snapshot — so downstream consumers see unbiased estimates of
// the full counts and the region former's MinUse gate behaves as under
// full instrumentation. Thresholds move the other way: registration
// triggers at ceil(Threshold/P) sampled hits, approximating the
// paper's "register at T uses" with the information sampling retains.
package dbt

// samplePhase derives the stride phase in [0, SamplePeriod) from the
// seed. A seeded hash (splitmix64's finalizer) rather than the raw seed
// keeps nearby seeds from yielding nearby phases.
func samplePhase(cfg Config) uint64 {
	if cfg.SamplePeriod <= 1 {
		return 0
	}
	return splitmix64(cfg.SampleSeed) % cfg.SamplePeriod
}

// sampleRegThreshold converts the registration threshold into sampled
// units: ceil(Threshold/SamplePeriod), floored at one sampled hit so
// huge periods still let hot blocks register. Full instrumentation
// (period 0 or 1) keeps the threshold verbatim.
func sampleRegThreshold(cfg Config) uint64 {
	if cfg.SamplePeriod <= 1 {
		return cfg.Threshold
	}
	rt := (cfg.Threshold + cfg.SamplePeriod - 1) / cfg.SamplePeriod
	if rt == 0 {
		rt = 1
	}
	return rt
}

// sampleScale is the factor sampled counters are multiplied by at the
// consumption boundaries: the period when sampling, 1 otherwise.
func (e *Engine) sampleScale() uint64 {
	if e.samplePeriod <= 1 {
		return 1
	}
	return e.samplePeriod
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// hash with no state beyond its input.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
