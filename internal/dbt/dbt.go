// Package dbt implements the two-phase dynamic binary translator whose
// profiling behaviour the paper studies.
//
// The engine mirrors the IA32EL structure described in the paper's
// introduction:
//
//   - Phase 1 (profiling): each guest block is quickly translated the
//     first time control reaches it and instrumented to collect a "use"
//     count (visits) and a "taken" count (conditional branch taken).
//
//   - When a block's use count reaches the retranslation threshold T it
//     is registered in a pool of candidate blocks. When the pool holds
//     enough blocks — or when a block is registered twice, i.e. its use
//     count reaches 2T while it is still unoptimized — the optimization
//     phase runs.
//
//   - Phase 2 (optimization): candidate blocks are grouped into trace
//     and loop regions using the taken/use ratios as branch
//     probabilities (see package region). Optimized blocks stop
//     profiling: their counters freeze, which is why all blocks of an
//     INIP(T) snapshot carry use counts in [T, 2T).
//
// Running with Optimize=false yields the paper's AVEP / INIP(train)
// profiles: no regions form and every counter runs to program end.
package dbt

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/perfmodel"
	"repro/internal/profile"
	"repro/internal/region"
)

// ErrInterrupted reports that a run was stopped through Config.Interrupt
// before the guest halted.
var ErrInterrupted = errors.New("dbt: run interrupted")

// Config controls one translator run.
type Config struct {
	// Input names the input tape for the snapshot ("ref", "train").
	Input string
	// Threshold is the retranslation threshold T. It must be >= 1 when
	// Optimize is set.
	Threshold uint64
	// Optimize enables the optimization phase. When false the run
	// produces an average (AVEP-style) profile.
	Optimize bool
	// PoolTrigger is the candidate-pool size that triggers an
	// optimization wave (default 8).
	PoolTrigger int
	// RegisterTwice enables the paper's second trigger: a block whose
	// use count reaches 2T while still unoptimized starts a wave
	// immediately (default on; the ablation bench turns it off).
	RegisterTwice bool
	// DisableFreeze keeps profiling counters running after a block is
	// optimized. The paper's IA32EL freezes them; the ablation bench
	// uses this switch to isolate the effect.
	DisableFreeze bool
	// Region overrides the region former configuration; the zero value
	// selects region.DefaultConfig(Threshold).
	Region region.Config
	// Perf, when non-nil, accumulates the simulated cycle cost of the
	// run.
	Perf *perfmodel.Accumulator
	// MaxBlockExecs aborts the run after this many dynamic block
	// executions (0 = unlimited). The synthetic benchmarks halt on
	// their own; this is a safety net.
	MaxBlockExecs uint64

	// Interrupt, when non-nil, is polled periodically by the run loop;
	// once it is closed the run stops with ErrInterrupted. The study
	// scheduler uses it for fail-fast cancellation, so one failing
	// benchmark does not let the rest run to completion.
	Interrupt <-chan struct{}

	// TrapAfter, when non-zero, aborts the run with an injected guest
	// trap once this many blocks have executed. It exists for the
	// deterministic fault-injection harness (internal/faultinject):
	// every mid-run abort path of the study executor can be forced at
	// an exact, reproducible point. Production runs leave it zero.
	TrapAfter uint64

	// DisableFastPath forces block execution through the generic
	// interp.Exec dispatch instead of the pre-lowered records. It exists
	// for cross-validation (the equivalence tests run both paths) and
	// debugging; production runs leave it off.
	DisableFastPath bool

	// Adaptive enables the paper's section-5 proposal of monitoring
	// region side exits: a region whose side-exit rate exceeds
	// AdaptiveSideExitRate (after at least AdaptiveMinEntries entries)
	// is dissolved, its blocks resume profiling with fresh counters,
	// and they may re-register and be re-optimized with phase-current
	// probabilities.
	Adaptive             bool
	AdaptiveSideExitRate float64 // default 0.6
	AdaptiveMinEntries   uint64  // default 64

	// ContinuousTripCount keeps lightweight loop-back instrumentation
	// alive inside optimized loop regions (the paper's reference [21]):
	// snapshot loop regions then carry a continuously-updated loop-back
	// probability alongside their frozen counters.
	ContinuousTripCount bool

	// ConvergeRegister implements the paper's section-5 call for
	// threshold-selection heuristics: instead of registering a block
	// after exactly Threshold visits, register it as soon as its branch
	// probability estimate has converged — the 95% confidence interval
	// half-width 1.96*sqrt(p(1-p)/n) drops below ConvergeEpsilon — with
	// Threshold acting as the cap for branches that refuse to converge.
	// Stable branches freeze early (cheap), noisy ones profile longer,
	// up to the cap. Convergence is checked every convergeCheckEvery
	// visits once ConvergeMinUse samples have accumulated.
	ConvergeRegister bool
	ConvergeEpsilon  float64 // default 0.02
	ConvergeMinUse   uint64  // default 32

	// SamplePeriod enables sampled profiling: the use/taken counters of
	// unfrozen blocks update only on every SamplePeriod-th dynamic block
	// event of this engine (an LBR-style deterministic stride), instead
	// of on every execution. 0 (the default) and 1 both mean full
	// instrumentation; 0 keeps today's code paths and fingerprint
	// byte-identical, 1 exercises the sampling machinery and is proven
	// equal to 0 by the determinism tests. Sampled counters are held in
	// sampled units internally and scaled by the period wherever full
	// counts are consumed (region formation, snapshots), so the
	// profile → region → threshold pipeline sees estimates of the full
	// counts; the registration threshold is likewise rescaled to
	// ceil(Threshold/SamplePeriod) sampled hits. ProfilingOps counts the
	// counter updates actually performed — the real profiling cost the
	// sampling frontier measures. The stride depends only on the
	// engine's own block-event count, so snapshots are bit-reproducible
	// across serial runs, shared-trace replay, worker counts, and the
	// fast/generic dispatch paths.
	SamplePeriod uint64
	// SampleSeed seeds the stride's deterministic phase (which of the
	// first SamplePeriod events is sampled first). The same seed always
	// yields the same phase; different seeds decorrelate the stride from
	// periodic program behaviour.
	SampleSeed uint64
}

// convergeCheckEvery bounds how often the convergence test (a sqrt) runs
// per block.
const convergeCheckEvery = 32

// tblock is a translated block in the code cache. Field order is
// deliberate: everything postExec touches per dynamic execution sits at
// the front so the per-block working set is one or two cache lines;
// translate-time and snapshot-only fields trail. The lowered execution
// records themselves live off-struct, in the engine's arena and flat
// block table (see lower.go), indexed by id.
type tblock struct {
	// First 64 bytes: every field the replay loop reads for a frozen
	// steady-state block, all read-mostly, so the profiling-counter
	// writes below never dirty this line and the 17-engine working set
	// of a shared-trace run stays cache-resident.

	addr        int
	takenTarget int
	// takenBlk/fallBlk chain this block to the translated blocks its
	// terminator edges last reached, so steady-state execution skips the
	// code-cache lookup. Entries are validated against the actual next
	// pc before use (indirect terminators can change targets) and cache
	// pointers stay valid for the engine's lifetime: translated blocks
	// are never replaced, only their counters change.
	takenBlk *tblock
	fallBlk  *tblock
	// itab is the per-block indirect-target table (jr/ret terminators
	// only, allocated lazily on the first chained successor): a small
	// direct-mapped cache keyed by the low bits of the successor
	// address, behind takenBlk's single most-recent entry. A return
	// block bouncing between a few call sites then resolves every
	// successor without a code-cache lookup.
	itab *[indirectWays]*tblock
	// regionEntry points at the runtime info of the region this block
	// is the entry of, if any.
	regionEntry *regionRT
	// costSum sums guest instruction costs for the perf model; int32
	// keeps it on the hot line (block costs are tiny).
	costSum int32
	// ninsts mirrors len(insts) so the instruction accounting does not
	// touch the cold slice header.
	ninsts uint32
	// id is the block's row in the engine's flat block table (and the
	// owner of its arena span); dense in translation order.
	id        int32
	hasBranch bool
	frozen    bool
	// lowered is false for blocks the lowerer declined, which then run
	// through the generic interp.Exec path.
	lowered bool
	// indirect marks jr/ret terminators: the successor is data-driven,
	// so chaining maintains itab instead of a single edge pointer.
	indirect bool

	// Write-hot profiling counters (touched only while unfrozen).

	use uint64
	// taken counts conditional-branch taken edges while profiling.
	taken uint64
	// nextRegister is the use count at which the block next becomes a
	// registration candidate (the next multiple of the threshold),
	// letting the hot loop test equality instead of dividing.
	nextRegister uint64

	// Cold fields: translate-time and snapshot-only.

	fallTarget int
	end        int
	// insts is the decoded body including the terminator.
	insts []isa.Inst
	// term classifies the terminator for the region former.
	term region.TermKind
	// registrations counts how many times the block entered the
	// candidate pool.
	registrations int
}

// indirectWays sizes tblock.itab. Indirect blocks in the benchmark
// suite are returns shared by a handful of call sites, so a small
// direct-mapped table resolves nearly all of them; misses fall back to
// the code-cache lookup and replace.
const indirectWays = 16

// regionRT is the execution-time view of an optimized region. Member
// successors are resolved to node pointers once at formation time, so
// following the region cursor costs two pointer loads per block instead
// of a map access on the copy ID.
type regionRT struct {
	r     *profile.Region
	nodes []rtNode
	entry *rtNode
	last  *rtNode // final block (trace completion target)

	// Per-region execution statistics, used by the adaptive mode and
	// by continuous trip-count profiling.
	entries     uint64
	loopBacks   uint64
	sideExits   uint64
	completions uint64
	dissolved   bool
}

// rtNode is one region member with its in-region successors pre-linked;
// a nil successor is a region exit.
type rtNode struct {
	rb    *profile.RegionBlock
	taken *rtNode
	fall  *rtNode
	// addr caches rb.Addr: the region cursor compares it against the
	// executed block on every region step, and the direct field spares
	// the rb pointer chase in the replay loop.
	addr int
}

// newRegionRT links the region's members into an execution-time node
// graph.
func newRegionRT(r *profile.Region) *regionRT {
	rt := &regionRT{r: r, nodes: make([]rtNode, len(r.Blocks))}
	idx := make(map[int]int, len(r.Blocks))
	for i := range r.Blocks {
		rt.nodes[i].rb = &r.Blocks[i]
		rt.nodes[i].addr = r.Blocks[i].Addr
		idx[r.Blocks[i].ID] = i
	}
	for i := range rt.nodes {
		rb := rt.nodes[i].rb
		if j, ok := idx[rb.TakenNext]; ok && rb.TakenNext != -1 {
			rt.nodes[i].taken = &rt.nodes[j]
		}
		if j, ok := idx[rb.FallNext]; ok && rb.FallNext != -1 {
			rt.nodes[i].fall = &rt.nodes[j]
		}
	}
	rt.entry = &rt.nodes[idx[r.Entry]]
	rt.last = &rt.nodes[len(rt.nodes)-1]
	return rt
}

// continuousLP is the continuously-collected loop-back probability: of
// all visits to the loop head, the fraction that came back around.
func (rt *regionRT) continuousLP() (float64, bool) {
	visits := rt.loopBacks + rt.sideExits + rt.completions
	if rt.r.Kind != profile.RegionLoop || visits == 0 {
		return 0, false
	}
	return float64(rt.loopBacks) / float64(visits), true
}

// RunStats reports what happened during a run, beyond the profile
// snapshot itself.
//
// Every field is deterministic for a given (image, tape, Config): the
// shared-trace followers of RunMulti report bit-for-bit the statistics
// a serial Run would have, which the equivalence tests assert by
// reflect.DeepEqual over this whole struct.
type RunStats struct {
	BlocksExecuted    uint64
	Instructions      uint64
	BlocksTranslated  int
	OptimizationWaves int
	RegionsFormed     int
	RegionEntries     uint64
	RegionCompletions uint64
	RegionLoopBacks   uint64
	RegionSideExits   uint64
	// RegionsDissolved counts regions torn down by the adaptive mode.
	RegionsDissolved int
	Cycles           float64

	// Engine counters (the observability layer). Kept cheap: plain
	// increments on engine-local state, no atomics, no branches beyond
	// what the run loop already pays.

	// Retranslations counts blocks handed to the optimizer by waves
	// (candidate-pool members; the paper's "retranslation" of a block
	// into optimized code).
	Retranslations int
	// FastDispatches/GenericDispatches split dynamic block executions
	// by execution path: pre-lowered records vs the generic interp.Exec
	// dispatch (DisableFastPath, or a block the lowerer declined). They
	// sum to BlocksExecuted.
	FastDispatches    uint64
	GenericDispatches uint64
	// CacheLookups counts translation-cache probes (hot-loop successor
	// chaining exists precisely to keep this far below BlocksExecuted).
	CacheLookups uint64
	// InterruptPolls counts interrupt checkpoints reached (every 4096th
	// block execution). Engines without an interrupt channel count
	// checkpoints too, so shared-trace followers match serial runs.
	InterruptPolls uint64
	// FreezeEvents counts profiling counters frozen at optimization
	// (transitions only; adaptive dissolution may unfreeze and refreeze).
	FreezeEvents uint64
}

// Engine is a two-phase DBT instance bound to one guest image and tape.
type Engine struct {
	cfg Config
	img *guest.Image
	st  *interp.State
	// cache is indexed by block entry address (dense: code segments are
	// small and block starts are code addresses), keeping the per-block
	// dispatch off the map path.
	cache []*tblock
	// arena is the engine's lowered-code arena: the bodies of all
	// lowered blocks, contiguous in translation order. hot is the flat
	// block table, one packed row per translated block (indexed by
	// tblock.id) holding the arena span and terminator record the fast
	// path reads. See lower.go.
	arena  []lop
	hot    []hotrec
	pool   []int
	inPool map[int]bool
	former *region.Former

	regions []*profile.Region
	rts     map[*profile.Region]*regionRT
	stats   RunStats
	profOps uint64

	// region execution cursor
	curRegion *regionRT
	curNode   *rtNode

	// Stepping state: cur is the block about to execute, halted reports
	// that the guest has stopped. The fields below cache hot-loop config
	// reads (see Run and RunMulti).
	cur       *tblock
	halted    bool
	budget    uint64
	trapAfter uint64
	interrupt <-chan struct{}
	optimize  bool
	converge  bool
	fastPath  bool
	perf      *perfmodel.Accumulator

	// Sampled-profiling state (Config.SamplePeriod > 1; see sampling.go).
	// samplePeriod caches the period, sampleGap is the countdown to the
	// next sampled event (decremented on every block event, reset to the
	// period when it hits zero), and regThreshold is the registration
	// threshold in sampled units — ceil(Threshold/SamplePeriod), the
	// plain Threshold when sampling is off. Every use-count comparison
	// in the engine is against regThreshold: sampled counters advance
	// once per sampled event, so thresholds live in sampled units too.
	samplePeriod uint64
	sampleGap    uint64
	regThreshold uint64
}

// New prepares an engine. The image is validated; the tape supplies
// guest input.
func New(img *guest.Image, tape interp.Tape, cfg Config) (*Engine, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if cfg.Optimize && cfg.Threshold == 0 {
		return nil, fmt.Errorf("dbt: Optimize requires Threshold >= 1")
	}
	if cfg.PoolTrigger <= 0 {
		cfg.PoolTrigger = 8
	}
	rcfg := cfg.Region
	if rcfg == (region.Config{}) {
		rcfg = region.DefaultConfig(cfg.Threshold)
		if cfg.ConvergeRegister {
			// Blocks may freeze long before the cap; gate region
			// membership on the convergence floor instead.
			rcfg.MinUse = cfg.ConvergeMinUse
			if rcfg.MinUse == 0 {
				rcfg.MinUse = 32
			}
		}
	}
	return &Engine{
		cfg:          cfg,
		img:          img,
		st:           interp.NewState(img, tape),
		cache:        make([]*tblock, len(img.Code)),
		inPool:       make(map[int]bool),
		former:       region.NewFormer(rcfg),
		rts:          make(map[*profile.Region]*regionRT),
		budget:       cfg.MaxBlockExecs,
		trapAfter:    cfg.TrapAfter,
		interrupt:    cfg.Interrupt,
		optimize:     cfg.Optimize,
		converge:     cfg.ConvergeRegister,
		fastPath:     !cfg.DisableFastPath,
		perf:         cfg.Perf,
		samplePeriod: cfg.SamplePeriod,
		sampleGap:    samplePhase(cfg) + 1,
		regThreshold: sampleRegThreshold(cfg),
	}, nil
}

// State exposes the guest architectural state, letting tests
// cross-validate the translator against the reference interpreter.
func (e *Engine) State() *interp.State { return e.st }

// lookup returns the cached block at addr, or nil.
func (e *Engine) lookup(addr int) *tblock {
	e.stats.CacheLookups++
	if addr < 0 || addr >= len(e.cache) {
		return nil
	}
	return e.cache[addr]
}

// Info implements region.Provider over the code cache.
func (e *Engine) Info(addr int) (region.BlockInfo, bool) {
	tb := e.lookup(addr)
	if tb == nil {
		return region.BlockInfo{}, false
	}
	// In convergence mode regions may only absorb blocks whose
	// estimates have stabilized: an unconverged probability would bake
	// noise into the region.
	if e.cfg.ConvergeRegister && tb.registrations == 0 && !tb.frozen {
		return region.BlockInfo{}, false
	}
	// Sampled counters are scaled to full-count estimates here, so the
	// region former's MinUse gate (threshold/2 under the default config)
	// admits the same hotness tier it would under full instrumentation.
	scale := e.sampleScale()
	return region.BlockInfo{
		Addr:        tb.addr,
		End:         tb.end,
		Use:         tb.use * scale,
		Taken:       tb.taken * scale,
		Term:        tb.term,
		TakenTarget: tb.takenTarget,
		FallTarget:  tb.fallTarget,
	}, true
}

// maxBlockLen caps a single translated block; synthetic blocks are far
// shorter, so hitting the cap indicates a malformed image.
const maxBlockLen = 4096

// translate decodes the block starting at addr into the cache.
func (e *Engine) translate(addr int) (*tblock, error) {
	tb := &tblock{addr: addr, takenTarget: -1, fallTarget: -1}
	pc := addr
	for {
		if pc < 0 || pc >= len(e.img.Code) {
			return nil, fmt.Errorf("dbt: block at %d runs off the code segment", addr)
		}
		in, err := isa.Decode(e.img.Code[pc])
		if err != nil {
			return nil, fmt.Errorf("dbt: translating block at %d: %w", addr, err)
		}
		tb.insts = append(tb.insts, in)
		tb.costSum += int32(in.Op.Cost())
		if in.Op.EndsBlock() {
			tb.end = pc
			switch {
			case in.Op.IsCondBranch():
				tb.term = region.TermBranch
				tb.hasBranch = true
				tb.takenTarget = pc + int(in.Imm)
				tb.fallTarget = pc + 1
			case in.Op == isa.OpJmp:
				tb.term = region.TermJump
				tb.takenTarget = pc + int(in.Imm)
			case in.Op == isa.OpCall:
				tb.term = region.TermOther
				tb.takenTarget = pc + int(in.Imm)
				tb.fallTarget = pc + 1
			default: // jr, ret, halt
				tb.term = region.TermOther
				tb.indirect = in.Op == isa.OpJr || in.Op == isa.OpRet
			}
			break
		}
		if len(tb.insts) >= maxBlockLen {
			return nil, fmt.Errorf("dbt: block at %d exceeds %d instructions", addr, maxBlockLen)
		}
		pc++
	}
	tb.ninsts = uint32(len(tb.insts))
	tb.id = int32(len(e.hot))
	e.hot = append(e.hot, hotrec{})
	tb.lowered = e.lower(tb)
	tb.nextRegister = e.regThreshold
	e.cache[addr] = tb
	e.stats.BlocksTranslated++
	if e.cfg.Perf != nil {
		e.cfg.Perf.ChargeTranslate(len(tb.insts))
	}
	return tb, nil
}

// shouldRegister decides whether the block's profile is ready for the
// candidate pool: at multiples of the fixed threshold (in sampled
// units when sampling), or — in convergence mode — as soon as the
// branch probability estimate has stabilized.
func (e *Engine) shouldRegister(tb *tblock) bool {
	if tb.use >= e.regThreshold && tb.use%e.regThreshold == 0 {
		return true
	}
	if !e.cfg.ConvergeRegister {
		return false
	}
	if tb.registrations > 0 {
		// Already in the pool: re-register occasionally so a stalled
		// pool (fewer candidates than the trigger) still flushes via
		// the register-twice rule instead of profiling to program end.
		return tb.use%1024 == 0
	}
	minUse := e.cfg.ConvergeMinUse
	if minUse == 0 {
		minUse = 32
	}
	if tb.use < minUse || tb.use%convergeCheckEvery != 0 {
		return false
	}
	if !tb.hasBranch {
		// Nothing to converge: a non-branch block is ready once it has
		// shown it is warm.
		return true
	}
	eps := e.cfg.ConvergeEpsilon
	if eps <= 0 {
		eps = 0.02
	}
	p := float64(tb.taken) / float64(tb.use)
	half := 1.96 * math.Sqrt(p*(1-p)/float64(tb.use))
	return half < eps
}

// register adds a block to the candidate pool and reports whether an
// optimization wave should start.
func (e *Engine) register(tb *tblock) bool {
	tb.registrations++
	if tb.registrations >= 2 && e.cfg.RegisterTwice {
		return true
	}
	if !e.inPool[tb.addr] {
		e.inPool[tb.addr] = true
		e.pool = append(e.pool, tb.addr)
	}
	return len(e.pool) >= e.cfg.PoolTrigger
}

// optimizeWave runs one optimization wave over the current candidate
// pool.
func (e *Engine) optimizeWave() {
	e.stats.OptimizationWaves++
	e.stats.Retranslations += len(e.pool)
	formed := e.former.Form(e, e.pool)
	for _, r := range formed {
		rt := newRegionRT(r)
		instTotal := 0
		for i := range r.Blocks {
			if tb := e.lookup(r.Blocks[i].Addr); tb != nil {
				instTotal += len(tb.insts)
			}
		}
		e.rts[r] = rt
		entryAddr := r.EntryBlock().Addr
		if tb := e.lookup(entryAddr); tb != nil && tb.regionEntry == nil {
			tb.regionEntry = rt
		}
		if e.cfg.Perf != nil {
			e.cfg.Perf.ChargeOptimize(instTotal)
		}
		e.regions = append(e.regions, r)
	}
	e.stats.RegionsFormed += len(formed)
	// Every candidate was retranslated by this wave, so profiling stops
	// for all of them (frozen counters), not only for region members.
	if !e.cfg.DisableFreeze {
		for _, addr := range e.pool {
			if tb := e.lookup(addr); tb != nil && !tb.frozen {
				tb.frozen = true
				e.stats.FreezeEvents++
			}
		}
		// Region members that were absorbed without being candidates
		// freeze too: they were rebuilt into region code.
		for _, r := range formed {
			for i := range r.Blocks {
				if tb := e.lookup(r.Blocks[i].Addr); tb != nil && !tb.frozen {
					tb.frozen = true
					e.stats.FreezeEvents++
				}
			}
		}
	}
	e.pool = e.pool[:0]
	for addr := range e.inPool {
		delete(e.inPool, addr)
	}
}

// trackRegion advances the region execution cursor given that the block
// at tb was just executed and control moves to nextPC (takenEdge tells
// which terminator edge fired). It also feeds the perf model's side-exit
// accounting.
func (e *Engine) trackRegion(tb *tblock, takenEdge bool) {
	if e.curRegion != nil {
		node := e.curNode
		if node == nil || node.addr != tb.addr {
			// The cursor went stale (should not happen); treat as exit.
			e.leaveRegion(false)
			return
		}
		var next *rtNode
		if takenEdge {
			next = node.taken
		} else {
			next = node.fall
		}
		switch {
		case next == nil:
			completed := e.curRegion.r.Kind == profile.RegionTrace && node == e.curRegion.last
			e.leaveRegion(completed)
		case next == e.curRegion.entry:
			e.stats.RegionLoopBacks++
			e.curRegion.loopBacks++
			e.curNode = next
		default:
			e.curNode = next
		}
	}
}

// leaveRegion closes out the current region execution and, in adaptive
// mode, dissolves regions whose side-exit rate shows the profile they
// were built from no longer describes the program.
func (e *Engine) leaveRegion(completed bool) {
	rt := e.curRegion
	if completed {
		e.stats.RegionCompletions++
		rt.completions++
	} else {
		e.stats.RegionSideExits++
		rt.sideExits++
		if e.cfg.Perf != nil {
			e.cfg.Perf.ChargeSideExit()
		}
	}
	e.curRegion = nil
	e.curNode = nil
	if e.cfg.Adaptive && !completed {
		e.maybeDissolve(rt)
	}
}

// maybeDissolve tears a misbehaving region down: its blocks lose their
// frozen counters and resume profiling from scratch, so a later
// optimization wave rebuilds regions from phase-current behaviour.
func (e *Engine) maybeDissolve(rt *regionRT) {
	if rt.dissolved {
		return
	}
	minEntries := e.cfg.AdaptiveMinEntries
	if minEntries == 0 {
		minEntries = 64
	}
	rate := e.cfg.AdaptiveSideExitRate
	if rate <= 0 {
		rate = 0.6
	}
	// For loop regions a side exit per entry is normal (the loop must
	// end); judge them by iterations per entry instead: a healthy loop
	// loops back far more often than it exits.
	var misbehaving bool
	if rt.r.Kind == profile.RegionLoop {
		visits := rt.loopBacks + rt.sideExits
		misbehaving = visits >= minEntries && float64(rt.sideExits)/float64(visits) > rate
	} else {
		total := rt.completions + rt.sideExits
		misbehaving = total >= minEntries && float64(rt.sideExits)/float64(total) > rate
	}
	if !misbehaving {
		return
	}
	rt.dissolved = true
	e.stats.RegionsDissolved++
	for i := range rt.r.Blocks {
		addr := rt.r.Blocks[i].Addr
		tb := e.lookup(addr)
		if tb == nil {
			continue
		}
		if tb.regionEntry == rt {
			tb.regionEntry = nil
		}
		// Fresh profile: the block re-enters the profiling phase as if
		// newly translated, so its next freeze reflects the current
		// phase.
		tb.frozen = false
		tb.use = 0
		tb.taken = 0
		tb.registrations = 0
		tb.nextRegister = e.regThreshold
		e.former.Unplace(addr)
	}
	// Drop the dissolved region from the run's output.
	for i, r := range e.regions {
		if r == rt.r {
			e.regions = append(e.regions[:i], e.regions[i+1:]...)
			break
		}
	}
}

// interruptCheckMask throttles the Interrupt poll to every 4096 block
// executions; a channel select per block would be measurable.
const interruptCheckMask = 1<<12 - 1

// start prepares the engine for stepping: the entry block is translated
// and becomes the execution cursor.
func (e *Engine) start() error {
	if e.cur != nil || e.halted {
		return fmt.Errorf("dbt: engine already ran")
	}
	tb := e.lookup(e.img.Entry)
	if tb == nil {
		var err error
		tb, err = e.translate(e.img.Entry)
		if err != nil {
			return err
		}
	}
	e.cur = tb
	return nil
}

// preExec accounts for the upcoming execution of the cursor block and
// enforces the budget and interrupt checks, exactly where the serial
// loop always performed them: before the block runs. The cold paths are
// outlined so the check itself inlines into the run loops.
func (e *Engine) preExec() error {
	e.stats.BlocksExecuted++
	if e.budget > 0 && e.stats.BlocksExecuted > e.budget {
		return e.budgetExhausted()
	}
	if e.trapAfter > 0 && e.stats.BlocksExecuted >= e.trapAfter {
		return e.trapped()
	}
	if e.stats.BlocksExecuted&interruptCheckMask == 0 {
		// Checkpoints count on every engine — with or without an
		// interrupt channel — so shared-trace followers (whose channel
		// is stripped; the driver polls for them) report the same
		// counter a serial run would.
		e.stats.InterruptPolls++
		if e.interrupt != nil {
			return e.pollInterrupt()
		}
	}
	return nil
}

//go:noinline
func (e *Engine) budgetExhausted() error {
	return fmt.Errorf("dbt: block execution budget %d exhausted", e.budget)
}

//go:noinline
func (e *Engine) trapped() error {
	return fmt.Errorf("dbt: injected guest trap at block %d", e.stats.BlocksExecuted)
}

//go:noinline
func (e *Engine) pollInterrupt() error {
	select {
	case <-e.interrupt:
		return ErrInterrupted
	default:
	}
	return nil
}

// postExec advances the profiling state machine past the cursor block,
// given the architectural outcome of executing it (the next pc and the
// halt flag). It performs everything a run does besides executing guest
// instructions — counters, registration, optimization waves, perf
// charges and region tracking — and moves the cursor to the successor
// block. Because profiling never feeds back into guest execution, the
// outcome may equally come from this engine's own execBlock or from a
// different engine that executed the same trace (see RunMulti).
//
// drainBatch (multi.go) inlines this body together with preExec's into
// the follower replay loop; any behavioural change here must be
// mirrored there.
func (e *Engine) postExec(nextPC int, halted bool) error {
	tb := e.cur
	e.stats.Instructions += uint64(tb.ninsts)
	// Dispatch accounting mirrors the run loops' path choice. Followers
	// never execute guest code themselves, but counting here — from the
	// follower's own cache and config — keeps their statistics
	// bit-identical to a serial run's.
	if e.fastPath && tb.lowered {
		e.stats.FastDispatches++
	} else {
		e.stats.GenericDispatches++
	}

	takenEdge := tb.hasBranch && nextPC == tb.takenTarget
	if !tb.hasBranch {
		takenEdge = true // unconditional transfers use the taken edge
	}

	// Sampling stride: the countdown ticks on every block event (frozen
	// or not), so the sampled-event set depends only on the engine's own
	// event count — the determinism contract of sampling.go.
	sampledEvent := true
	if e.samplePeriod > 1 {
		e.sampleGap--
		if e.sampleGap == 0 {
			e.sampleGap = e.samplePeriod
		} else {
			sampledEvent = false
		}
	}

	// Profiling phase instrumentation.
	if !tb.frozen && sampledEvent {
		tb.use++
		e.profOps++
		if tb.hasBranch && takenEdge {
			tb.taken++
			e.profOps++
		}
		if e.optimize {
			// Fixed-threshold registration reduces to an equality
			// test against the precomputed next multiple; the
			// convergence heuristic keeps the full check.
			var ready bool
			if e.converge {
				ready = e.shouldRegister(tb)
			} else if tb.use == tb.nextRegister {
				ready = true
				tb.nextRegister += e.regThreshold
			}
			if ready {
				if e.register(tb) {
					e.optimizeWave()
				}
			}
		}
	}

	// Resolve the successor block through the chained edge pointers —
	// most-recent edge first, then the indirect-target table — falling
	// back to the code-cache lookup (translation of a new block waits
	// until after the region bookkeeping, matching the cache state the
	// region-entry check always observed).
	var next *tblock
	if takenEdge {
		if nb := tb.takenBlk; nb != nil && nb.addr == nextPC {
			next = nb
		}
	} else if nb := tb.fallBlk; nb != nil && nb.addr == nextPC {
		next = nb
	}
	if next == nil && tb.itab != nil {
		if nb := tb.itab[nextPC&(indirectWays-1)]; nb != nil && nb.addr == nextPC {
			next = nb
			tb.takenBlk = nb // refresh the most-recent entry
		}
	}
	if next == nil {
		if next = e.lookup(nextPC); next != nil {
			e.chain(tb, takenEdge, next)
		}
	}

	// Perf accounting and region tracking. A frozen block executes
	// at full optimized speed only when control is following one of
	// its regions' expected paths (the cursor is on it); frozen
	// code reached outside a region context was retranslated for a
	// different path and gets no scheduling benefit.
	if e.perf != nil {
		switch {
		case tb.frozen && e.curNode != nil && e.curNode.addr == tb.addr:
			e.perf.ChargeOptimizedBlock(int(tb.costSum))
		case tb.frozen:
			e.perf.ChargeOffTraceBlock(int(tb.costSum))
		case sampledEvent:
			e.perf.ChargeQuickBlock(int(tb.costSum))
		default:
			// Unfrozen block on an unsampled event: quick-translated
			// execution without the counter-update overhead — the cost
			// saving sampling exists to buy.
			e.perf.ChargeQuickBlockUnprofiled(int(tb.costSum))
		}
	}
	if e.optimize {
		if e.curRegion != nil {
			e.trackRegion(tb, takenEdge)
		}
		// If control is about to arrive at a region entry while no
		// region is active, open it.
		if next != nil && e.curRegion == nil && next.regionEntry != nil {
			e.curRegion = next.regionEntry
			e.curRegion.entries++
			e.curNode = next.regionEntry.entry
			e.stats.RegionEntries++
		}
	}

	if halted {
		e.halted = true
		return nil
	}
	if next == nil {
		var err error
		next, err = e.translate(nextPC)
		if err != nil {
			return err
		}
		e.chain(tb, takenEdge, next)
	}
	e.cur = next
	return nil
}

// chain records next as the successor tb's fired edge reached, so the
// next resolution of the same transfer skips the code-cache lookup.
// Indirect terminators additionally file the target in their itab:
// their single edge pointer churns whenever the data-driven target
// alternates, and the table catches what the pointer evicts.
func (e *Engine) chain(tb *tblock, takenEdge bool, next *tblock) {
	if takenEdge {
		tb.takenBlk = next
	} else {
		tb.fallBlk = next
	}
	if tb.indirect {
		if tb.itab == nil {
			tb.itab = new([indirectWays]*tblock)
		}
		tb.itab[next.addr&(indirectWays-1)] = next
	}
}

// finish packages the snapshot and statistics of a completed run.
func (e *Engine) finish() (*profile.Snapshot, *RunStats, error) {
	snap := e.snapshot()
	if e.perf != nil {
		e.stats.Cycles = e.perf.Cycles
		snap.Cycles = uint64(e.perf.Cycles)
	}
	stats := e.stats
	return snap, &stats, nil
}

// Run executes the guest to completion and returns the profile snapshot
// and run statistics. Execution goes through the same specialized
// batched loop RunMulti's driver uses (fillBatch in multi.go): the
// fast/generic path choice is per block inside it, and the recorded
// outcomes are simply discarded. Bit-for-bit equivalent to the
// per-block preExec / exec / postExec sequence.
func (e *Engine) Run() (*profile.Snapshot, *RunStats, error) {
	if err := e.start(); err != nil {
		return nil, nil, err
	}
	buf := make([]outcome, 0, replayBatch)
	for {
		_, done, err := e.fillBatch(buf[:0])
		if err != nil {
			return nil, nil, err
		}
		if done {
			break
		}
	}
	return e.finish()
}

// snapshot builds the INIP/AVEP profile of the finished run.
func (e *Engine) snapshot() *profile.Snapshot {
	input := e.cfg.Input
	if input == "" {
		input = "ref"
	}
	snap := profile.NewSnapshot(e.img.Name, input, e.cfg.Threshold, e.cfg.Optimize)
	if !e.cfg.Optimize {
		snap.Threshold = 0
	}
	// Sampled counters leave the engine scaled to full-count estimates,
	// exactly as region formation saw them (Engine.Info), so snapshot
	// consumers — navep averaging, mismatch metrics, the threshold
	// pipeline — need no sampling awareness.
	scale := e.sampleScale()
	for addr, tb := range e.cache {
		if tb == nil {
			continue // address was never a block entry
		}
		if e.former.Placed(addr) {
			continue // reported inside a region with frozen counters
		}
		snap.Blocks[addr] = &profile.Block{
			Addr:        tb.addr,
			End:         tb.end,
			Use:         tb.use * scale,
			Taken:       tb.taken * scale,
			HasBranch:   tb.hasBranch,
			TakenTarget: tb.takenTarget,
			FallTarget:  tb.fallTarget,
		}
	}
	snap.Regions = e.regions
	if e.cfg.ContinuousTripCount {
		for _, r := range snap.Regions {
			if rt := e.rts[r]; rt != nil {
				if lp, ok := rt.continuousLP(); ok {
					r.ContinuousLP = lp
					r.HasContinuousLP = true
				}
			}
		}
	}
	snap.ProfilingOps = e.profOps
	snap.BlocksExecuted = e.stats.BlocksExecuted
	snap.Instructions = e.stats.Instructions
	return snap
}

// Run is a convenience wrapper: build an engine, run it, return the
// snapshot and stats.
func Run(img *guest.Image, tape interp.Tape, cfg Config) (*profile.Snapshot, *RunStats, error) {
	e, err := New(img, tape, cfg)
	if err != nil {
		return nil, nil, err
	}
	return e.Run()
}
