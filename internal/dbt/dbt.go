// Package dbt implements the two-phase dynamic binary translator whose
// profiling behaviour the paper studies.
//
// The engine mirrors the IA32EL structure described in the paper's
// introduction:
//
//   - Phase 1 (profiling): each guest block is quickly translated the
//     first time control reaches it and instrumented to collect a "use"
//     count (visits) and a "taken" count (conditional branch taken).
//
//   - When a block's use count reaches the retranslation threshold T it
//     is registered in a pool of candidate blocks. When the pool holds
//     enough blocks — or when a block is registered twice, i.e. its use
//     count reaches 2T while it is still unoptimized — the optimization
//     phase runs.
//
//   - Phase 2 (optimization): candidate blocks are grouped into trace
//     and loop regions using the taken/use ratios as branch
//     probabilities (see package region). Optimized blocks stop
//     profiling: their counters freeze, which is why all blocks of an
//     INIP(T) snapshot carry use counts in [T, 2T).
//
// Running with Optimize=false yields the paper's AVEP / INIP(train)
// profiles: no regions form and every counter runs to program end.
package dbt

import (
	"fmt"
	"math"

	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/perfmodel"
	"repro/internal/profile"
	"repro/internal/region"
)

// Config controls one translator run.
type Config struct {
	// Input names the input tape for the snapshot ("ref", "train").
	Input string
	// Threshold is the retranslation threshold T. It must be >= 1 when
	// Optimize is set.
	Threshold uint64
	// Optimize enables the optimization phase. When false the run
	// produces an average (AVEP-style) profile.
	Optimize bool
	// PoolTrigger is the candidate-pool size that triggers an
	// optimization wave (default 8).
	PoolTrigger int
	// RegisterTwice enables the paper's second trigger: a block whose
	// use count reaches 2T while still unoptimized starts a wave
	// immediately (default on; the ablation bench turns it off).
	RegisterTwice bool
	// DisableFreeze keeps profiling counters running after a block is
	// optimized. The paper's IA32EL freezes them; the ablation bench
	// uses this switch to isolate the effect.
	DisableFreeze bool
	// Region overrides the region former configuration; the zero value
	// selects region.DefaultConfig(Threshold).
	Region region.Config
	// Perf, when non-nil, accumulates the simulated cycle cost of the
	// run.
	Perf *perfmodel.Accumulator
	// MaxBlockExecs aborts the run after this many dynamic block
	// executions (0 = unlimited). The synthetic benchmarks halt on
	// their own; this is a safety net.
	MaxBlockExecs uint64

	// Adaptive enables the paper's section-5 proposal of monitoring
	// region side exits: a region whose side-exit rate exceeds
	// AdaptiveSideExitRate (after at least AdaptiveMinEntries entries)
	// is dissolved, its blocks resume profiling with fresh counters,
	// and they may re-register and be re-optimized with phase-current
	// probabilities.
	Adaptive             bool
	AdaptiveSideExitRate float64 // default 0.6
	AdaptiveMinEntries   uint64  // default 64

	// ContinuousTripCount keeps lightweight loop-back instrumentation
	// alive inside optimized loop regions (the paper's reference [21]):
	// snapshot loop regions then carry a continuously-updated loop-back
	// probability alongside their frozen counters.
	ContinuousTripCount bool

	// ConvergeRegister implements the paper's section-5 call for
	// threshold-selection heuristics: instead of registering a block
	// after exactly Threshold visits, register it as soon as its branch
	// probability estimate has converged — the 95% confidence interval
	// half-width 1.96*sqrt(p(1-p)/n) drops below ConvergeEpsilon — with
	// Threshold acting as the cap for branches that refuse to converge.
	// Stable branches freeze early (cheap), noisy ones profile longer,
	// up to the cap. Convergence is checked every convergeCheckEvery
	// visits once ConvergeMinUse samples have accumulated.
	ConvergeRegister bool
	ConvergeEpsilon  float64 // default 0.02
	ConvergeMinUse   uint64  // default 32
}

// convergeCheckEvery bounds how often the convergence test (a sqrt) runs
// per block.
const convergeCheckEvery = 32

// tblock is a translated block in the code cache.
type tblock struct {
	addr int
	end  int
	// insts is the decoded body including the terminator.
	insts []isa.Inst
	// term classifies the terminator for the region former.
	term        region.TermKind
	takenTarget int
	fallTarget  int
	hasBranch   bool
	costSum     int // sum of guest instruction costs, for the perf model

	use    uint64
	taken  uint64
	frozen bool
	// registrations counts how many times the block entered the
	// candidate pool.
	registrations int
	// regionEntry points at the runtime info of the region this block
	// is the entry of, if any.
	regionEntry *regionRT
}

// regionRT is the execution-time view of an optimized region.
type regionRT struct {
	r    *profile.Region
	byID map[int]*profile.RegionBlock
	last int // ID of the final block (trace completion target)

	// Per-region execution statistics, used by the adaptive mode and
	// by continuous trip-count profiling.
	entries     uint64
	loopBacks   uint64
	sideExits   uint64
	completions uint64
	dissolved   bool
}

// continuousLP is the continuously-collected loop-back probability: of
// all visits to the loop head, the fraction that came back around.
func (rt *regionRT) continuousLP() (float64, bool) {
	visits := rt.loopBacks + rt.sideExits + rt.completions
	if rt.r.Kind != profile.RegionLoop || visits == 0 {
		return 0, false
	}
	return float64(rt.loopBacks) / float64(visits), true
}

// RunStats reports what happened during a run, beyond the profile
// snapshot itself.
type RunStats struct {
	BlocksExecuted    uint64
	Instructions      uint64
	BlocksTranslated  int
	OptimizationWaves int
	RegionsFormed     int
	RegionEntries     uint64
	RegionCompletions uint64
	RegionLoopBacks   uint64
	RegionSideExits   uint64
	// RegionsDissolved counts regions torn down by the adaptive mode.
	RegionsDissolved int
	Cycles           float64
}

// Engine is a two-phase DBT instance bound to one guest image and tape.
type Engine struct {
	cfg Config
	img *guest.Image
	st  *interp.State
	// cache is indexed by block entry address (dense: code segments are
	// small and block starts are code addresses), keeping the per-block
	// dispatch off the map path.
	cache  []*tblock
	pool   []int
	inPool map[int]bool
	former *region.Former

	regions []*profile.Region
	rts     map[*profile.Region]*regionRT
	stats   RunStats
	profOps uint64

	// region execution cursor
	curRegion *regionRT
	curCopy   *profile.RegionBlock
}

// New prepares an engine. The image is validated; the tape supplies
// guest input.
func New(img *guest.Image, tape interp.Tape, cfg Config) (*Engine, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if cfg.Optimize && cfg.Threshold == 0 {
		return nil, fmt.Errorf("dbt: Optimize requires Threshold >= 1")
	}
	if cfg.PoolTrigger <= 0 {
		cfg.PoolTrigger = 8
	}
	rcfg := cfg.Region
	if rcfg == (region.Config{}) {
		rcfg = region.DefaultConfig(cfg.Threshold)
		if cfg.ConvergeRegister {
			// Blocks may freeze long before the cap; gate region
			// membership on the convergence floor instead.
			rcfg.MinUse = cfg.ConvergeMinUse
			if rcfg.MinUse == 0 {
				rcfg.MinUse = 32
			}
		}
	}
	return &Engine{
		cfg:    cfg,
		img:    img,
		st:     interp.NewState(img, tape),
		cache:  make([]*tblock, len(img.Code)),
		inPool: make(map[int]bool),
		former: region.NewFormer(rcfg),
		rts:    make(map[*profile.Region]*regionRT),
	}, nil
}

// State exposes the guest architectural state, letting tests
// cross-validate the translator against the reference interpreter.
func (e *Engine) State() *interp.State { return e.st }

// lookup returns the cached block at addr, or nil.
func (e *Engine) lookup(addr int) *tblock {
	if addr < 0 || addr >= len(e.cache) {
		return nil
	}
	return e.cache[addr]
}

// Info implements region.Provider over the code cache.
func (e *Engine) Info(addr int) (region.BlockInfo, bool) {
	tb := e.lookup(addr)
	if tb == nil {
		return region.BlockInfo{}, false
	}
	// In convergence mode regions may only absorb blocks whose
	// estimates have stabilized: an unconverged probability would bake
	// noise into the region.
	if e.cfg.ConvergeRegister && tb.registrations == 0 && !tb.frozen {
		return region.BlockInfo{}, false
	}
	return region.BlockInfo{
		Addr:        tb.addr,
		End:         tb.end,
		Use:         tb.use,
		Taken:       tb.taken,
		Term:        tb.term,
		TakenTarget: tb.takenTarget,
		FallTarget:  tb.fallTarget,
	}, true
}

// maxBlockLen caps a single translated block; synthetic blocks are far
// shorter, so hitting the cap indicates a malformed image.
const maxBlockLen = 4096

// translate decodes the block starting at addr into the cache.
func (e *Engine) translate(addr int) (*tblock, error) {
	tb := &tblock{addr: addr, takenTarget: -1, fallTarget: -1}
	pc := addr
	for {
		if pc < 0 || pc >= len(e.img.Code) {
			return nil, fmt.Errorf("dbt: block at %d runs off the code segment", addr)
		}
		in, err := isa.Decode(e.img.Code[pc])
		if err != nil {
			return nil, fmt.Errorf("dbt: translating block at %d: %w", addr, err)
		}
		tb.insts = append(tb.insts, in)
		tb.costSum += in.Op.Cost()
		if in.Op.EndsBlock() {
			tb.end = pc
			switch {
			case in.Op.IsCondBranch():
				tb.term = region.TermBranch
				tb.hasBranch = true
				tb.takenTarget = pc + int(in.Imm)
				tb.fallTarget = pc + 1
			case in.Op == isa.OpJmp:
				tb.term = region.TermJump
				tb.takenTarget = pc + int(in.Imm)
			case in.Op == isa.OpCall:
				tb.term = region.TermOther
				tb.takenTarget = pc + int(in.Imm)
				tb.fallTarget = pc + 1
			default: // jr, ret, halt
				tb.term = region.TermOther
			}
			break
		}
		if len(tb.insts) >= maxBlockLen {
			return nil, fmt.Errorf("dbt: block at %d exceeds %d instructions", addr, maxBlockLen)
		}
		pc++
	}
	e.cache[addr] = tb
	e.stats.BlocksTranslated++
	if e.cfg.Perf != nil {
		e.cfg.Perf.ChargeTranslate(len(tb.insts))
	}
	return tb, nil
}

// shouldRegister decides whether the block's profile is ready for the
// candidate pool: at multiples of the fixed threshold, or — in
// convergence mode — as soon as the branch probability estimate has
// stabilized.
func (e *Engine) shouldRegister(tb *tblock) bool {
	if tb.use >= e.cfg.Threshold && tb.use%e.cfg.Threshold == 0 {
		return true
	}
	if !e.cfg.ConvergeRegister {
		return false
	}
	if tb.registrations > 0 {
		// Already in the pool: re-register occasionally so a stalled
		// pool (fewer candidates than the trigger) still flushes via
		// the register-twice rule instead of profiling to program end.
		return tb.use%1024 == 0
	}
	minUse := e.cfg.ConvergeMinUse
	if minUse == 0 {
		minUse = 32
	}
	if tb.use < minUse || tb.use%convergeCheckEvery != 0 {
		return false
	}
	if !tb.hasBranch {
		// Nothing to converge: a non-branch block is ready once it has
		// shown it is warm.
		return true
	}
	eps := e.cfg.ConvergeEpsilon
	if eps <= 0 {
		eps = 0.02
	}
	p := float64(tb.taken) / float64(tb.use)
	half := 1.96 * math.Sqrt(p*(1-p)/float64(tb.use))
	return half < eps
}

// register adds a block to the candidate pool and reports whether an
// optimization wave should start.
func (e *Engine) register(tb *tblock) bool {
	tb.registrations++
	if tb.registrations >= 2 && e.cfg.RegisterTwice {
		return true
	}
	if !e.inPool[tb.addr] {
		e.inPool[tb.addr] = true
		e.pool = append(e.pool, tb.addr)
	}
	return len(e.pool) >= e.cfg.PoolTrigger
}

// optimize runs one optimization wave over the current candidate pool.
func (e *Engine) optimize() {
	e.stats.OptimizationWaves++
	formed := e.former.Form(e, e.pool)
	for _, r := range formed {
		rt := &regionRT{r: r, byID: make(map[int]*profile.RegionBlock, len(r.Blocks))}
		instTotal := 0
		for i := range r.Blocks {
			rb := &r.Blocks[i]
			rt.byID[rb.ID] = rb
			if tb := e.lookup(rb.Addr); tb != nil {
				instTotal += len(tb.insts)
			}
		}
		rt.last = r.Blocks[len(r.Blocks)-1].ID
		e.rts[r] = rt
		entryAddr := r.EntryBlock().Addr
		if tb := e.lookup(entryAddr); tb != nil && tb.regionEntry == nil {
			tb.regionEntry = rt
		}
		if e.cfg.Perf != nil {
			e.cfg.Perf.ChargeOptimize(instTotal)
		}
		e.regions = append(e.regions, r)
	}
	e.stats.RegionsFormed += len(formed)
	// Every candidate was retranslated by this wave, so profiling stops
	// for all of them (frozen counters), not only for region members.
	if !e.cfg.DisableFreeze {
		for _, addr := range e.pool {
			if tb := e.lookup(addr); tb != nil {
				tb.frozen = true
			}
		}
		// Region members that were absorbed without being candidates
		// freeze too: they were rebuilt into region code.
		for _, r := range formed {
			for i := range r.Blocks {
				if tb := e.lookup(r.Blocks[i].Addr); tb != nil {
					tb.frozen = true
				}
			}
		}
	}
	e.pool = e.pool[:0]
	for addr := range e.inPool {
		delete(e.inPool, addr)
	}
}

// trackRegion advances the region execution cursor given that the block
// at tb was just executed and control moves to nextPC (takenEdge tells
// which terminator edge fired). It also feeds the perf model's side-exit
// accounting.
func (e *Engine) trackRegion(tb *tblock, takenEdge bool) {
	if e.curRegion != nil {
		rb := e.curCopy
		if rb == nil || rb.Addr != tb.addr {
			// The cursor went stale (should not happen); treat as exit.
			e.leaveRegion(false)
		} else {
			var nextID int
			if takenEdge {
				nextID = rb.TakenNext
			} else {
				nextID = rb.FallNext
			}
			switch {
			case nextID == -1:
				completed := e.curRegion.r.Kind == profile.RegionTrace && rb.ID == e.curRegion.last
				e.leaveRegion(completed)
			case nextID == e.curRegion.r.Entry:
				e.stats.RegionLoopBacks++
				e.curRegion.loopBacks++
				e.curCopy = e.curRegion.byID[nextID]
				return
			default:
				e.curCopy = e.curRegion.byID[nextID]
				return
			}
		}
	}
}

// leaveRegion closes out the current region execution and, in adaptive
// mode, dissolves regions whose side-exit rate shows the profile they
// were built from no longer describes the program.
func (e *Engine) leaveRegion(completed bool) {
	rt := e.curRegion
	if completed {
		e.stats.RegionCompletions++
		rt.completions++
	} else {
		e.stats.RegionSideExits++
		rt.sideExits++
		if e.cfg.Perf != nil {
			e.cfg.Perf.ChargeSideExit()
		}
	}
	e.curRegion = nil
	e.curCopy = nil
	if e.cfg.Adaptive && !completed {
		e.maybeDissolve(rt)
	}
}

// maybeDissolve tears a misbehaving region down: its blocks lose their
// frozen counters and resume profiling from scratch, so a later
// optimization wave rebuilds regions from phase-current behaviour.
func (e *Engine) maybeDissolve(rt *regionRT) {
	if rt.dissolved {
		return
	}
	minEntries := e.cfg.AdaptiveMinEntries
	if minEntries == 0 {
		minEntries = 64
	}
	rate := e.cfg.AdaptiveSideExitRate
	if rate <= 0 {
		rate = 0.6
	}
	// For loop regions a side exit per entry is normal (the loop must
	// end); judge them by iterations per entry instead: a healthy loop
	// loops back far more often than it exits.
	var misbehaving bool
	if rt.r.Kind == profile.RegionLoop {
		visits := rt.loopBacks + rt.sideExits
		misbehaving = visits >= minEntries && float64(rt.sideExits)/float64(visits) > rate
	} else {
		total := rt.completions + rt.sideExits
		misbehaving = total >= minEntries && float64(rt.sideExits)/float64(total) > rate
	}
	if !misbehaving {
		return
	}
	rt.dissolved = true
	e.stats.RegionsDissolved++
	for i := range rt.r.Blocks {
		addr := rt.r.Blocks[i].Addr
		tb := e.lookup(addr)
		if tb == nil {
			continue
		}
		if tb.regionEntry == rt {
			tb.regionEntry = nil
		}
		// Fresh profile: the block re-enters the profiling phase as if
		// newly translated, so its next freeze reflects the current
		// phase.
		tb.frozen = false
		tb.use = 0
		tb.taken = 0
		tb.registrations = 0
		e.former.Unplace(addr)
	}
	// Drop the dissolved region from the run's output.
	for i, r := range e.regions {
		if r == rt.r {
			e.regions = append(e.regions[:i], e.regions[i+1:]...)
			break
		}
	}
}

// Run executes the guest to completion and returns the profile snapshot
// and run statistics.
func (e *Engine) Run() (*profile.Snapshot, *RunStats, error) {
	pc := e.img.Entry
	for {
		tb := e.lookup(pc)
		if tb == nil {
			var err error
			tb, err = e.translate(pc)
			if err != nil {
				return nil, nil, err
			}
		}
		e.stats.BlocksExecuted++
		if e.cfg.MaxBlockExecs > 0 && e.stats.BlocksExecuted > e.cfg.MaxBlockExecs {
			return nil, nil, fmt.Errorf("dbt: block execution budget %d exhausted", e.cfg.MaxBlockExecs)
		}

		// Execute the block body through the shared semantic core.
		var (
			nextPC int
			halted bool
			err    error
		)
		base := tb.addr
		for i, in := range tb.insts {
			nextPC, halted, err = interp.Exec(e.st, base+i, in)
			if err != nil {
				return nil, nil, err
			}
		}
		e.stats.Instructions += uint64(len(tb.insts))

		takenEdge := tb.hasBranch && nextPC == tb.takenTarget
		if !tb.hasBranch {
			takenEdge = true // unconditional transfers use the taken edge
		}

		// Profiling phase instrumentation.
		if !tb.frozen {
			tb.use++
			e.profOps++
			if tb.hasBranch && takenEdge {
				tb.taken++
				e.profOps++
			}
			if e.cfg.Optimize {
				if e.shouldRegister(tb) {
					if e.register(tb) {
						e.optimize()
					}
				}
			}
		}

		// Perf accounting and region tracking. A frozen block executes
		// at full optimized speed only when control is following one of
		// its regions' expected paths (the cursor is on it); frozen
		// code reached outside a region context was retranslated for a
		// different path and gets no scheduling benefit.
		if e.cfg.Perf != nil {
			switch {
			case tb.frozen && e.curCopy != nil && e.curCopy.Addr == tb.addr:
				e.cfg.Perf.ChargeOptimizedBlock(tb.costSum)
			case tb.frozen:
				e.cfg.Perf.ChargeOffTraceBlock(tb.costSum)
			default:
				e.cfg.Perf.ChargeQuickBlock(tb.costSum)
			}
		}
		if e.cfg.Optimize {
			e.trackRegion(tb, takenEdge)
			// If control is about to arrive at a region entry while no
			// region is active, open it.
			if next := e.lookup(nextPC); next != nil && e.curRegion == nil && next.regionEntry != nil {
				e.curRegion = next.regionEntry
				e.curRegion.entries++
				e.curCopy = next.regionEntry.r.EntryBlock()
				e.stats.RegionEntries++
			}
		}

		if halted {
			break
		}
		pc = nextPC
	}
	snap := e.snapshot()
	if e.cfg.Perf != nil {
		e.stats.Cycles = e.cfg.Perf.Cycles
		snap.Cycles = uint64(e.cfg.Perf.Cycles)
	}
	stats := e.stats
	return snap, &stats, nil
}

// snapshot builds the INIP/AVEP profile of the finished run.
func (e *Engine) snapshot() *profile.Snapshot {
	input := e.cfg.Input
	if input == "" {
		input = "ref"
	}
	snap := profile.NewSnapshot(e.img.Name, input, e.cfg.Threshold, e.cfg.Optimize)
	if !e.cfg.Optimize {
		snap.Threshold = 0
	}
	for addr, tb := range e.cache {
		if tb == nil {
			continue // address was never a block entry
		}
		if e.former.Placed(addr) {
			continue // reported inside a region with frozen counters
		}
		snap.Blocks[addr] = &profile.Block{
			Addr:        tb.addr,
			End:         tb.end,
			Use:         tb.use,
			Taken:       tb.taken,
			HasBranch:   tb.hasBranch,
			TakenTarget: tb.takenTarget,
			FallTarget:  tb.fallTarget,
		}
	}
	snap.Regions = e.regions
	if e.cfg.ContinuousTripCount {
		for _, r := range snap.Regions {
			if rt := e.rts[r]; rt != nil {
				if lp, ok := rt.continuousLP(); ok {
					r.ContinuousLP = lp
					r.HasContinuousLP = true
				}
			}
		}
	}
	snap.ProfilingOps = e.profOps
	snap.BlocksExecuted = e.stats.BlocksExecuted
	snap.Instructions = e.stats.Instructions
	return snap
}

// Run is a convenience wrapper: build an engine, run it, return the
// snapshot and stats.
func Run(img *guest.Image, tape interp.Tape, cfg Config) (*profile.Snapshot, *RunStats, error) {
	e, err := New(img, tape, cfg)
	if err != nil {
		return nil, nil, err
	}
	return e.Run()
}
