package dbt

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/perfmodel"
	"repro/internal/profile"
	"repro/internal/region"
)

// buildLooper returns a program that runs `iters` iterations of a loop
// containing one tape-driven branch with taken probability
// bias/interp.ProbScale.
func buildLooper(t testing.TB, iters, bias int32) *guest.Image {
	t.Helper()
	src := `
.entry main
main:
	loadi r0, 0
	loadi r14, 0
	loadi r6, ` + itoa(bias) + `
	loadi r10, ` + itoa(iters) + `
loop:
	in r1
	blt r1, r6, taken
	addi r2, r2, 1
	jmp next
taken:
	addi r3, r3, 1
next:
	addi r14, r14, 1
	blt r14, r10, loop
	halt
`
	img, err := guest.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return img
}

func itoa(v int32) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestAVEPMatchesReferenceInterpreter(t *testing.T) {
	img := buildLooper(t, 500, 2048)
	// Reference interpreter counts block entries per address.
	m, err := interp.NewMachine(img, interp.NewUniformTape("looper/ref"))
	if err != nil {
		t.Fatal(err)
	}
	refCounts := make(map[int]uint64)
	m.BlockHook = func(pc int) { refCounts[pc]++ }
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	snap, stats, err := Run(img, interp.NewUniformTape("looper/ref"), Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Optimized || snap.Threshold != 0 {
		t.Fatalf("AVEP snapshot flags wrong: %+v", snap)
	}
	if len(snap.Regions) != 0 {
		t.Fatalf("AVEP must have no regions, got %d", len(snap.Regions))
	}
	if stats.BlocksExecuted != m.Blocks() {
		t.Fatalf("block executions: dbt %d vs interp %d", stats.BlocksExecuted, m.Blocks())
	}
	if stats.Instructions != m.Steps() {
		t.Fatalf("instructions: dbt %d vs interp %d", stats.Instructions, m.Steps())
	}
	for addr, want := range refCounts {
		blk, ok := snap.Blocks[addr]
		if !ok {
			t.Fatalf("dbt missing block %d", addr)
		}
		if blk.Use != want {
			t.Fatalf("block %d use = %d, interp saw %d", addr, blk.Use, want)
		}
	}
	if len(snap.Blocks) != len(refCounts) {
		t.Fatalf("block sets differ: dbt %d vs interp %d", len(snap.Blocks), len(refCounts))
	}
}

func TestAVEPBranchProbabilityMatchesBias(t *testing.T) {
	img := buildLooper(t, 5000, 2048) // p = 0.25
	snap, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	// Find the block ending in the tape-driven branch: it is the block
	// whose terminator's taken target is the 'taken' label.
	// Several cache blocks can end at the same branch (the entry block
	// falls through into the loop body), so take the hottest one.
	takenAddr := img.Symbols["taken"]
	var bp float64
	var best uint64
	found := false
	for _, blk := range snap.Blocks {
		if blk.HasBranch && blk.TakenTarget == takenAddr && blk.Use > best {
			best = blk.Use
			bp = blk.BranchProb()
			found = true
		}
	}
	if !found {
		t.Fatal("tape-driven branch block not found")
	}
	if bp < 0.22 || bp > 0.28 {
		t.Fatalf("branch probability %v, want ~0.25", bp)
	}
}

func TestINIPFreezesCountersInThresholdWindow(t *testing.T) {
	img := buildLooper(t, 5000, 7372) // p = 0.9: biased, forms regions
	const T = 50
	snap, stats, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: T, PoolTrigger: 4, RegisterTwice: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OptimizationWaves == 0 {
		t.Fatal("no optimization wave ran")
	}
	if len(snap.Regions) == 0 {
		t.Fatal("no regions formed")
	}
	// The paper: "all the blocks in INIP(T) have similar execution
	// frequencies (i.e. the use counts) between T and 2*T". The
	// register-twice trigger fires exactly at 2T, so 2T is inclusive.
	for _, r := range snap.Regions {
		for i := range r.Blocks {
			rb := &r.Blocks[i]
			if rb.Use < T || rb.Use > 2*T {
				t.Fatalf("region block at %d frozen use %d outside [T, 2T] = [%d, %d]", rb.Addr, rb.Use, T, 2*T)
			}
		}
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
}

func TestINIPWithHugeThresholdEqualsAVEP(t *testing.T) {
	img := buildLooper(t, 2000, 4096)
	avep, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	inip, stats, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OptimizationWaves != 0 || len(inip.Regions) != 0 {
		t.Fatal("huge threshold must never trigger optimization")
	}
	if len(inip.Blocks) != len(avep.Blocks) {
		t.Fatalf("block sets differ: %d vs %d", len(inip.Blocks), len(avep.Blocks))
	}
	for addr, a := range avep.Blocks {
		b := inip.Blocks[addr]
		if b == nil || b.Use != a.Use || b.Taken != a.Taken {
			t.Fatalf("block %d: inip %+v vs avep %+v", addr, b, a)
		}
	}
}

func TestRegisterTwiceTriggersWithoutPool(t *testing.T) {
	img := buildLooper(t, 3000, 7372)
	// Pool trigger set impossibly high: only the register-twice rule
	// can start a wave.
	snap, stats, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: 100, PoolTrigger: 1 << 30, RegisterTwice: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OptimizationWaves == 0 {
		t.Fatal("register-twice did not trigger optimization")
	}
	if len(snap.Regions) == 0 {
		t.Fatal("no regions formed")
	}
}

func TestNoRegisterTwiceNoHugePoolNeverOptimizes(t *testing.T) {
	img := buildLooper(t, 3000, 7372)
	_, stats, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: 100, PoolTrigger: 1 << 30, RegisterTwice: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OptimizationWaves != 0 {
		t.Fatal("optimization ran despite disabled triggers")
	}
}

func TestLoopRegionFormedWithPlausibleLP(t *testing.T) {
	img := buildLooper(t, 5000, 7782) // p(taken)=0.95
	snap, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: 100, PoolTrigger: 4, RegisterTwice: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var loops int
	for _, r := range snap.Regions {
		if r.Kind == profile.RegionLoop {
			loops++
			lp, err := region.LoopBackProb(r, region.FrozenProb)
			if err != nil {
				t.Fatal(err)
			}
			if lp < 0.5 || lp > 1 {
				t.Fatalf("loop LP = %v, implausible", lp)
			}
		}
	}
	if loops == 0 {
		t.Fatal("no loop region formed from a hot loop")
	}
}

func TestProfilingOpsShrinkWithSmallThreshold(t *testing.T) {
	img := buildLooper(t, 20000, 6144)
	avep, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	inip, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: 50, PoolTrigger: 4, RegisterTwice: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inip.ProfilingOps*10 > avep.ProfilingOps {
		t.Fatalf("INIP(50) profiling ops %d not well below AVEP's %d", inip.ProfilingOps, avep.ProfilingOps)
	}
}

func TestDeterministicSnapshots(t *testing.T) {
	img := buildLooper(t, 2000, 5000)
	cfg := Config{Optimize: true, Threshold: 50, PoolTrigger: 4, RegisterTwice: true}
	s1, _, err := Run(img, interp.NewUniformTape("looper/ref"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Run(img, interp.NewUniformTape("looper/ref"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.ProfilingOps != s2.ProfilingOps || s1.BlocksExecuted != s2.BlocksExecuted || len(s1.Regions) != len(s2.Regions) {
		t.Fatal("repeated runs diverged")
	}
	for addr, b1 := range s1.Blocks {
		b2 := s2.Blocks[addr]
		if b2 == nil || b1.Use != b2.Use || b1.Taken != b2.Taken {
			t.Fatalf("block %d diverged between runs", addr)
		}
	}
}

func TestPerfModelChargesAndRegionsTrack(t *testing.T) {
	img := buildLooper(t, 5000, 7782)
	acc := perfmodel.NewAccumulator(perfmodel.DefaultParams())
	snap, stats, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: 50, PoolTrigger: 4, RegisterTwice: true, Perf: acc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Cycles <= 0 || snap.Cycles == 0 {
		t.Fatal("perf model accumulated nothing")
	}
	if acc.TranslateCycles <= 0 || acc.OptimizeCycles <= 0 || acc.QuickCycles <= 0 || acc.OptimizedCycles <= 0 {
		t.Fatalf("perf breakdown incomplete: %+v", acc)
	}
	if stats.RegionEntries == 0 {
		t.Fatal("region execution never entered a region")
	}
	if stats.RegionLoopBacks == 0 {
		t.Fatal("loop region never looped back")
	}
	if stats.RegionLoopBacks+stats.RegionCompletions+stats.RegionSideExits == 0 {
		t.Fatal("region outcomes not tracked")
	}
}

func TestOptimizedRunFasterThanNeverOptimized(t *testing.T) {
	// With a well-predicted loop, optimizing at a modest threshold must
	// beat both never optimizing (stuck in quick code).
	img := buildLooper(t, 30000, 7782)
	run := func(cfg Config) float64 {
		acc := perfmodel.NewAccumulator(perfmodel.DefaultParams())
		cfg.Perf = acc
		if _, _, err := Run(img, interp.NewUniformTape("looper/ref"), cfg); err != nil {
			t.Fatal(err)
		}
		return acc.Cycles
	}
	never := run(Config{Optimize: false})
	opt := run(Config{Optimize: true, Threshold: 100, PoolTrigger: 4, RegisterTwice: true})
	if opt >= never {
		t.Fatalf("optimized run (%v cycles) not faster than unoptimized (%v)", opt, never)
	}
}

func TestConfigValidation(t *testing.T) {
	img := buildLooper(t, 10, 100)
	if _, err := New(img, interp.NewUniformTape("x"), Config{Optimize: true}); err == nil {
		t.Fatal("New accepted Optimize without Threshold")
	}
}

func TestMaxBlockExecsAborts(t *testing.T) {
	img := buildLooper(t, 1<<30, 100)
	_, _, err := Run(img, interp.NewUniformTape("x"), Config{Optimize: false, MaxBlockExecs: 1000})
	if err == nil {
		t.Fatal("MaxBlockExecs did not abort")
	}
}

func TestDisableFreezeKeepsCounting(t *testing.T) {
	img := buildLooper(t, 5000, 7782)
	snap, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: 50, PoolTrigger: 4, RegisterTwice: true, DisableFreeze: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With freezing disabled the hot loop block's end-of-run count far
	// exceeds 2T. Placed blocks are still excluded from Blocks, so look
	// at total profiling ops instead: they should approach the AVEP
	// level.
	avep, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ProfilingOps*2 < avep.ProfilingOps {
		t.Fatalf("DisableFreeze ops %d, want close to AVEP %d", snap.ProfilingOps, avep.ProfilingOps)
	}
}

func BenchmarkDBTLoop(b *testing.B) {
	img := buildLooper(b, 10000, 7372)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
			Optimize: true, Threshold: 100, PoolTrigger: 4, RegisterTwice: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
