package dbt

import (
	"strings"
	"testing"

	"repro/internal/interp"
)

// TestTrapAfterAbortsDeterministically: an injected trap must abort the
// run at exactly the configured block count, with a diagnostic naming
// it, and runs without the knob must be untouched.
func TestTrapAfterAbortsDeterministically(t *testing.T) {
	img := buildLooper(t, 500, interp.ProbScale/2)
	cfg := Config{Input: "ref", Optimize: true, Threshold: 10, RegisterTwice: true, TrapAfter: 100}

	for i := 0; i < 2; i++ {
		_, _, err := Run(img, interp.NewUniformTape("trap"), cfg)
		if err == nil {
			t.Fatal("trapped run succeeded")
		}
		if want := "dbt: injected guest trap at block 100"; err.Error() != want {
			t.Fatalf("err = %q, want %q", err.Error(), want)
		}
	}

	clean := cfg
	clean.TrapAfter = 0
	if _, _, err := Run(img, interp.NewUniformTape("trap"), clean); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
}

// TestTrapAfterInRunMulti: the shared-trace driver enforces the trap
// before any follower advances, so the whole batch aborts with the
// driver's diagnostic.
func TestTrapAfterInRunMulti(t *testing.T) {
	img := buildLooper(t, 500, interp.ProbScale/2)
	cfgs := []Config{
		{Input: "ref", TrapAfter: 64},
		{Input: "ref", Optimize: true, Threshold: 10, RegisterTwice: true, TrapAfter: 64},
	}
	_, _, err := RunMulti(img, interp.NewUniformTape("trap"), cfgs)
	if err == nil || !strings.Contains(err.Error(), "injected guest trap at block 64") {
		t.Fatalf("err = %v", err)
	}
}
