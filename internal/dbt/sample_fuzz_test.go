package dbt

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/profile"
)

// Differential testing of sampled profiling: random small guest
// programs run under full instrumentation and under every stride phase
// of a random sampling period. With optimization off nothing feeds the
// counters back into execution, so the block-event stream is identical
// across all of them and the sampled counters must be an exact
// decimation of the full-instrumentation counts: each event lands in
// exactly one phase class, so the per-block raw counts summed over all
// phases reproduce the full counts — no slack, no rounding.
// FuzzSampledReplay explores the program × period space under the
// fuzzer; TestSampledReplayRandom pins seeded programs of the same
// generator as a deterministic regression suite.

// runSampled executes the image with the given config and returns the
// engine, its snapshot (nil on fault) and the fault message.
func runSampled(tb testing.TB, img *guest.Image, cfg Config) (*Engine, *profile.Snapshot, string) {
	tb.Helper()
	e, err := New(img, interp.NewUniformTape("fuzz/ref"), cfg)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	snap, _, rerr := e.Run()
	msg := ""
	if rerr != nil {
		msg = rerr.Error()
	}
	return e, snap, msg
}

// phaseSeeds finds, deterministically, one SampleSeed per stride phase
// in [0, period): the phase is splitmix64(seed) % period, so a short
// scan of small seeds covers every class.
func phaseSeeds(t *testing.T, period uint64) []uint64 {
	t.Helper()
	seeds := make([]uint64, period)
	found := make([]bool, period)
	n := uint64(0)
	for seed := uint64(0); n < period && seed < 1024; seed++ {
		ph := splitmix64(seed) % period
		if !found[ph] {
			found[ph] = true
			seeds[ph] = seed
			n++
		}
	}
	if n < period {
		t.Fatalf("no seeds found for all %d phases", period)
	}
	return seeds
}

// checkSampledReplay runs one random program at one sampling period and
// asserts the decimation identity plus the surrounding invariants:
// sampling never changes execution (faults, architectural state, run
// stats), scaled counters are exact multiples of the period, the
// phase-partitioned raw counts sum to the full-instrumentation counts,
// period 1 is bit-identical to period 0, and the sampled snapshot does
// not depend on the dispatch path.
func checkSampledReplay(t *testing.T, data []byte, period uint64) {
	img := buildFuzzProgram(data)
	if img == nil {
		return
	}
	base := Config{Input: "ref", MaxBlockExecs: 20_000}

	fullEng, fullSnap, fullErr := runSampled(t, img, base)

	// Period 1 must be bit-identical to period 0: the sampling guard
	// treats both as full instrumentation.
	oneCfg := base
	oneCfg.SamplePeriod = 1
	oneCfg.SampleSeed = 12345
	_, oneSnap, oneErr := runSampled(t, img, oneCfg)
	if oneErr != fullErr {
		t.Fatalf("period-1 fault %q, full %q\nprogram:\n%s", oneErr, fullErr, img.Disassemble())
	}
	if fullErr == "" && !reflect.DeepEqual(oneSnap, fullSnap) {
		t.Fatalf("period-1 snapshot differs from full instrumentation\nprogram:\n%s", img.Disassemble())
	}

	sumUse := map[int]uint64{}
	sumTaken := map[int]uint64{}
	var sumOps uint64
	for ph, seed := range phaseSeeds(t, period) {
		cfg := base
		cfg.SamplePeriod = period
		cfg.SampleSeed = seed
		eng, snap, errMsg := runSampled(t, img, cfg)

		// Sampling must be invisible to execution: same fault, same
		// architectural state, same run stats.
		if errMsg != fullErr {
			t.Fatalf("phase %d: fault %q, full %q\nprogram:\n%s", ph, errMsg, fullErr, img.Disassemble())
		}
		fs, gs := fullEng.State(), eng.State()
		if fs.Regs != gs.Regs || !reflect.DeepEqual(fs.Mem, gs.Mem) {
			t.Fatalf("phase %d: architectural state diverged under sampling\nprogram:\n%s", ph, img.Disassemble())
		}
		if fullErr != "" {
			continue // errored runs publish no snapshot
		}
		if !reflect.DeepEqual(eng.stats, fullEng.stats) {
			t.Fatalf("phase %d: run stats diverged under sampling:\nsampled: %+v\nfull: %+v\nprogram:\n%s",
				ph, eng.stats, fullEng.stats, img.Disassemble())
		}

		// Same seed, same everything: the snapshot is a pure function
		// of (image, tape, Config) — and not of the dispatch path.
		slowCfg := cfg
		slowCfg.DisableFastPath = true
		_, slowSnap, slowErr := runSampled(t, img, slowCfg)
		if slowErr != errMsg || !reflect.DeepEqual(slowSnap, snap) {
			t.Fatalf("phase %d: sampled snapshot depends on the dispatch path\nprogram:\n%s", ph, img.Disassemble())
		}

		// Scaled counters are raw counts times the period, exactly.
		if len(snap.Blocks) != len(fullSnap.Blocks) {
			t.Fatalf("phase %d: %d blocks, full run has %d\nprogram:\n%s",
				ph, len(snap.Blocks), len(fullSnap.Blocks), img.Disassemble())
		}
		for addr, blk := range snap.Blocks {
			if blk.Use%period != 0 || blk.Taken%period != 0 {
				t.Fatalf("phase %d: block %d counters (%d, %d) not multiples of period %d\nprogram:\n%s",
					ph, addr, blk.Use, blk.Taken, period, img.Disassemble())
			}
			sumUse[addr] += blk.Use / period
			sumTaken[addr] += blk.Taken / period
		}
		if snap.ProfilingOps > fullSnap.ProfilingOps {
			t.Fatalf("phase %d: sampled run performed %d profiling ops, full run only %d\nprogram:\n%s",
				ph, snap.ProfilingOps, fullSnap.ProfilingOps, img.Disassemble())
		}
		sumOps += snap.ProfilingOps
	}
	if fullErr != "" {
		return
	}

	// The decimation identity: every block event lands in exactly one
	// phase class, so the raw sampled counts summed over all phases are
	// the full-instrumentation counts — for every block, both counters,
	// and the total counter-update cost.
	for addr, blk := range fullSnap.Blocks {
		if sumUse[addr] != blk.Use || sumTaken[addr] != blk.Taken {
			t.Fatalf("decimation mismatch at block %d: phases sum to (%d, %d), full counts (%d, %d)\nprogram:\n%s",
				addr, sumUse[addr], sumTaken[addr], blk.Use, blk.Taken, img.Disassemble())
		}
	}
	if sumOps != fullSnap.ProfilingOps {
		t.Fatalf("decimation mismatch: phases performed %d profiling ops, full run %d\nprogram:\n%s",
			sumOps, fullSnap.ProfilingOps, img.Disassemble())
	}

	// With optimization on, sampling may legitimately move registration
	// and freezing — but execution semantics must survive: same fault,
	// same architectural state.
	optFull := Config{Input: "ref", Optimize: true, Threshold: 8, PoolTrigger: 2,
		RegisterTwice: true, MaxBlockExecs: 20_000}
	optSampled := optFull
	optSampled.SamplePeriod = period
	fe, _, ferr := runSampled(t, img, optFull)
	se, _, serr := runSampled(t, img, optSampled)
	if ferr != serr {
		t.Fatalf("optimized fault mismatch: full %q, sampled %q\nprogram:\n%s", ferr, serr, img.Disassemble())
	}
	if fs, ss := fe.State(), se.State(); fs.Regs != ss.Regs || !reflect.DeepEqual(fs.Mem, ss.Mem) {
		t.Fatalf("optimized architectural state diverged under sampling\nprogram:\n%s", img.Disassemble())
	}
}

// fuzzPeriod derives a sampling period in [2, 9] from the byte stream,
// so the fuzzer explores periods alongside programs.
func fuzzPeriod(data []byte) uint64 {
	var b byte
	if len(data) > 0 {
		b = data[len(data)-1]
	}
	return 2 + uint64(b%8)
}

// FuzzSampledReplay is the differential fuzz target for sampled
// profiling: any byte stream builds some program and period, and the
// sampled counters must be an exact phase-decimation of the
// full-instrumentation counts without perturbing execution.
func FuzzSampledReplay(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{3, 5, 0, 1, 2, 3, 4, 5, 6, 7, 250, 1, 9, 9, 30, 40})
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 8; i++ {
		seed := make([]byte, 8+rng.Intn(56))
		rng.Read(seed)
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		checkSampledReplay(t, data, fuzzPeriod(data))
	})
}

// TestSampledReplayRandom pins the decimation differential on seeded
// random programs in every plain `go test`, cycling the period through
// the whole fuzzed range.
func TestSampledReplayRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 150; i++ {
		data := make([]byte, 4+rng.Intn(120))
		rng.Read(data)
		checkSampledReplay(t, data, 2+uint64(i%8))
	}
}
