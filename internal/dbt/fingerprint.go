package dbt

import (
	"fmt"
	"strings"
)

// Fingerprint renders every Config field that can influence a run's
// observable result — snapshot, stats, cycles — as a canonical string
// for result-cache keying (internal/resultcache). Two configs with the
// same fingerprint must produce identical results on the same image and
// tape; any semantic knob added to Config MUST be added here, which is
// why the rendering enumerates fields explicitly instead of reflecting
// over the struct (reflection would silently fold new fields into old
// fingerprints... backwards).
//
// Deliberately excluded, because they cannot change a *completed* run's
// result:
//
//   - Interrupt: an interrupted run is never cached at all;
//   - DisableFastPath: the generic dispatch path is defined (and
//     tested) to be result-equivalent to the lowered fast path.
//
// Perf participates only through its Params — the accumulator itself is
// an output channel, but its coefficients determine the Cycles value.
func (c Config) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "input=%s;t=%d;opt=%t;pool=%d;reg2=%t;nofreeze=%t",
		c.Input, c.Threshold, c.Optimize, c.PoolTrigger, c.RegisterTwice, c.DisableFreeze)
	fmt.Fprintf(&b, ";region=%g,%d,%d,%t",
		c.Region.MinProb, c.Region.MaxBlocks, c.Region.MinUse, c.Region.Diamonds)
	if c.Perf != nil {
		p := c.Perf.Params()
		fmt.Fprintf(&b, ";perf=%g,%g,%g,%g,%g,%g,%g",
			p.ColdPerInst, p.OptPerInst, p.QuickFactor, p.ProfOverhead,
			p.OptFactor, p.OffTraceFactor, p.SideExitPenalty)
	} else {
		b.WriteString(";perf=off")
	}
	fmt.Fprintf(&b, ";maxexec=%d;trap=%d", c.MaxBlockExecs, c.TrapAfter)
	fmt.Fprintf(&b, ";adaptive=%t,%g,%d", c.Adaptive, c.AdaptiveSideExitRate, c.AdaptiveMinEntries)
	fmt.Fprintf(&b, ";trip=%t", c.ContinuousTripCount)
	fmt.Fprintf(&b, ";converge=%t,%g,%d", c.ConvergeRegister, c.ConvergeEpsilon, c.ConvergeMinUse)
	// Sampled profiling is appended only when enabled, so every
	// fingerprint written before the knob existed — and thus every
	// result-cache key of a full-instrumentation run — stays
	// byte-identical. SampleSeed shifts the stride phase, which moves
	// counters, so it is part of the key.
	if c.SamplePeriod > 0 {
		fmt.Fprintf(&b, ";sample=%d,%d", c.SamplePeriod, c.SampleSeed)
	}
	return b.String()
}
