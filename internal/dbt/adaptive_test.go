package dbt

import (
	"math"
	"testing"

	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/perfmodel"
	"repro/internal/profile"
)

// phasedLooper builds a program whose single hot branch flips its bias
// at the given iteration: the scenario the adaptive mode exists for.
func phasedLooper(t testing.TB, iters, boundary, earlyBias, lateBias int32) func(cfg Config) (*profile.Snapshot, *RunStats) {
	t.Helper()
	src := `
.entry main
main:
	loadi r0, 0
	loadi r14, 0
	loadi r7, ` + itoa(earlyBias) + `
	loadi r8, ` + itoa(lateBias) + `
	loadi r9, ` + itoa(boundary) + `
	loadi r10, ` + itoa(iters) + `
loop:
	blt r14, r9, early
	mov r6, r8
	jmp body
early:
	mov r6, r7
body:
	in r1
	blt r1, r6, taken
	addi r2, r2, 1
	jmp next
taken:
	addi r3, r3, 1
next:
	addi r14, r14, 1
	blt r14, r10, loop
	halt
`
	image, err := guest.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return func(cfg Config) (*profile.Snapshot, *RunStats) {
		snap, stats, err := Run(image, interp.NewUniformTape("adaptive/ref"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return snap, stats
	}
}

func TestAdaptiveDissolvesMisbehavingRegions(t *testing.T) {
	run := phasedLooper(t, 60000, 5000, 7782, 410) // p 0.95 -> 0.05
	fixedCfg := Config{Optimize: true, Threshold: 200, RegisterTwice: true}
	_, fixedStats := run(fixedCfg)
	if fixedStats.RegionsDissolved != 0 {
		t.Fatal("fixed mode must never dissolve regions")
	}

	adaptiveCfg := fixedCfg
	adaptiveCfg.Adaptive = true
	snap, stats := run(adaptiveCfg)
	if stats.RegionsDissolved == 0 {
		t.Fatal("adaptive mode never dissolved a region despite a phase flip")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	// Re-optimization must have happened: regions exist at the end.
	if len(snap.Regions) == 0 {
		t.Fatal("adaptive mode ended with no regions")
	}
}

func TestAdaptiveReducesSideExits(t *testing.T) {
	run := phasedLooper(t, 80000, 4000, 7782, 410)
	base := Config{Optimize: true, Threshold: 200, RegisterTwice: true}
	_, fixedStats := run(base)
	adaptive := base
	adaptive.Adaptive = true
	_, adaptiveStats := run(adaptive)
	// After the flip, the fixed translator's region exits sideways on
	// ~95% of entries forever; the adaptive translator rebuilds and
	// recovers.
	fixedRate := float64(fixedStats.RegionSideExits) / float64(fixedStats.RegionEntries+1)
	adaptiveRate := float64(adaptiveStats.RegionSideExits) / float64(adaptiveStats.RegionEntries+1)
	if adaptiveRate >= fixedRate {
		t.Fatalf("adaptive side-exit rate %.3f not below fixed %.3f", adaptiveRate, fixedRate)
	}
}

func TestAdaptiveImprovesPerformanceOnPhasedProgram(t *testing.T) {
	run := phasedLooper(t, 120000, 4000, 7782, 410)
	cycles := func(adaptive bool) float64 {
		cfg := Config{Optimize: true, Threshold: 200, RegisterTwice: true,
			Perf: perfmodel.NewAccumulator(perfmodel.DefaultParams())}
		cfg.Adaptive = adaptive
		_, stats := run(cfg)
		return stats.Cycles
	}
	fixed := cycles(false)
	adapt := cycles(true)
	if adapt >= fixed {
		t.Fatalf("adaptive cycles %v not below fixed %v on a phased program", adapt, fixed)
	}
}

func TestAdaptiveLeavesStationaryProgramsAlone(t *testing.T) {
	img := buildLooper(t, 50000, 7372) // stationary p=0.9
	snap, stats, err := Run(img, interp.NewUniformTape("looper/ref"), Config{
		Optimize: true, Threshold: 200, RegisterTwice: true, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RegionsDissolved != 0 {
		t.Fatalf("adaptive dissolved %d regions of a stationary program", stats.RegionsDissolved)
	}
	if len(snap.Regions) == 0 {
		t.Fatal("no regions on stationary program")
	}
}

func TestContinuousTripCountTracksAverage(t *testing.T) {
	// A geometric loop whose continuation probability flips 0.95 ->
	// 0.40 early: frozen counters predict 0.95, continuous collection
	// must land near the run average.
	src := `
.entry main
main:
	loadi r0, 0
	loadi r14, 0
	loadi r7, 7782
	loadi r8, 3277
	loadi r9, 3000
	loadi r10, 30000
loop:
	blt r14, r9, early
	mov r6, r8
	jmp body
early:
	mov r6, r7
body:
	in r1
	blt r1, r6, body
	addi r14, r14, 1
	blt r14, r10, loop
	halt
`
	img, err := guest.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(continuous bool) *profile.Snapshot {
		snap, _, err := Run(img, interp.NewUniformTape("ctc/ref"), Config{
			Optimize: true, Threshold: 100, RegisterTwice: true,
			ContinuousTripCount: continuous,
		})
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	frozen := run(false)
	cont := run(true)

	lpOf := func(s *profile.Snapshot) (float64, bool) {
		for _, r := range s.Regions {
			if r.Kind == profile.RegionLoop {
				if r.HasContinuousLP {
					return r.ContinuousLP, true
				}
				// Frozen single-block loop: LP = taken/use of entry.
				eb := r.EntryBlock()
				if eb.Use > 0 {
					return float64(eb.Taken) / float64(eb.Use), true
				}
			}
		}
		return 0, false
	}
	frozenLP, ok := lpOf(frozen)
	if !ok {
		t.Fatal("no loop region in frozen run")
	}
	contLP, ok := lpOf(cont)
	if !ok {
		t.Fatal("no continuous LP in continuous run")
	}
	if frozenLP < 0.9 {
		t.Fatalf("frozen LP = %v, expected the early phase's ~0.95", frozenLP)
	}
	// Average LP over the run sits well below the early-phase value the
	// frozen counters predict (early head visits dominate the count but
	// the late phase pulls the mix down).
	if contLP >= frozenLP-0.1 {
		t.Fatalf("continuous LP = %v, want visibly below frozen %v", contLP, frozenLP)
	}
	if math.IsNaN(contLP) || contLP < 0.4 {
		t.Fatalf("continuous LP = %v, implausible for this mix", contLP)
	}
}
