// Package profile defines the profile data model shared by the
// translator, the normalizer and the metrics: per-block use/taken
// counters, optimized-region records, and whole-run snapshots (INIP(T),
// AVEP, INIP(train)) with serialization for the offline analysis tool.
//
// Terminology follows the paper:
//
//   - use count: how many times a block was entered.
//   - taken count: how many times its terminating conditional branch was
//     taken.
//   - INIP(T): the snapshot produced by a run with retranslation
//     threshold T — region blocks carry counters frozen at optimization
//     time, non-region blocks carry end-of-run counters.
//   - AVEP: the snapshot of a run with optimization disabled — every
//     block carries end-of-run counters and there are no regions.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Block holds the profiling counters of one static basic block.
type Block struct {
	// Addr is the guest address of the block's first instruction.
	Addr int `json:"addr"`
	// End is the guest address of the block's terminator.
	End int `json:"end"`
	// Use is the number of times the block was entered while its
	// counters were live.
	Use uint64 `json:"use"`
	// Taken is the number of times the terminating conditional branch
	// was taken. It stays zero for blocks that do not end in a
	// conditional branch.
	Taken uint64 `json:"taken,omitempty"`
	// HasBranch records whether the terminator is a conditional branch.
	HasBranch bool `json:"has_branch,omitempty"`
	// TakenTarget and FallTarget are the successor addresses. For
	// blocks ending in unconditional or indirect transfers, FallTarget
	// is -1 and TakenTarget is the static target or -1 if unknown.
	TakenTarget int `json:"taken_target"`
	FallTarget  int `json:"fall_target"`
}

// BranchProb returns the block's branch probability taken/use. Blocks
// that were never executed or have no conditional branch report 0.
func (b *Block) BranchProb() float64 {
	if !b.HasBranch || b.Use == 0 {
		return 0
	}
	return float64(b.Taken) / float64(b.Use)
}

// RegionKind distinguishes the two region shapes the optimizer forms.
type RegionKind int

const (
	// RegionTrace is a non-loop region: a superblock of blocks expected
	// to execute from entry to the last block.
	RegionTrace RegionKind = iota
	// RegionLoop is a loop region whose back edges return to the entry.
	RegionLoop
)

// String returns "trace" or "loop".
func (k RegionKind) String() string {
	if k == RegionLoop {
		return "loop"
	}
	return "trace"
}

// RegionBlock is a block instance inside a region. Because the optimizer
// may tail-duplicate, the same guest address may appear in several
// regions (or twice in one); ID disambiguates instances within a
// snapshot.
type RegionBlock struct {
	// ID is the snapshot-unique identifier of this instance.
	ID int `json:"id"`
	// Addr is the guest address of the original block.
	Addr int `json:"addr"`
	// Use and Taken are the profiling counters frozen when the region
	// was optimized.
	Use   uint64 `json:"use"`
	Taken uint64 `json:"taken,omitempty"`
	// HasBranch mirrors Block.HasBranch.
	HasBranch bool `json:"has_branch,omitempty"`
	// TakenNext and FallNext are the IDs of the in-region successors
	// reached on the taken and fall-through edges, or -1 when the edge
	// leaves the region (a side exit or the region's natural end).
	TakenNext int `json:"taken_next"`
	FallNext  int `json:"fall_next"`
	// TakenTarget and FallTarget are the guest addresses those edges
	// lead to (useful when the edge exits the region).
	TakenTarget int `json:"taken_target"`
	FallTarget  int `json:"fall_target"`
}

// BranchProb returns taken/use for the frozen counters.
func (b *RegionBlock) BranchProb() float64 {
	if !b.HasBranch || b.Use == 0 {
		return 0
	}
	return float64(b.Taken) / float64(b.Use)
}

// Region is an optimized region dumped into an INIP snapshot: its kind,
// entry, member blocks and (implicitly, via -1 successors) its exits.
type Region struct {
	ID     int           `json:"id"`
	Kind   RegionKind    `json:"kind"`
	Entry  int           `json:"entry"` // ID of the entry RegionBlock
	Blocks []RegionBlock `json:"blocks"`
	// ContinuousLP, when HasContinuousLP is set, is the loop-back
	// probability collected continuously by lightweight instrumentation
	// in the optimized code (the extension of the paper's reference
	// [21]); it supersedes the frozen-counter estimate for loop
	// regions.
	ContinuousLP    float64 `json:"continuous_lp,omitempty"`
	HasContinuousLP bool    `json:"has_continuous_lp,omitempty"`
}

// EntryBlock returns the entry block instance.
func (r *Region) EntryBlock() *RegionBlock {
	for i := range r.Blocks {
		if r.Blocks[i].ID == r.Entry {
			return &r.Blocks[i]
		}
	}
	return nil
}

// BlockByID returns the member with the given ID, or nil.
func (r *Region) BlockByID(id int) *RegionBlock {
	for i := range r.Blocks {
		if r.Blocks[i].ID == id {
			return &r.Blocks[i]
		}
	}
	return nil
}

// Snapshot is the complete profile output of one run.
type Snapshot struct {
	// Program and Input identify the benchmark binary and which input
	// tape it ran with (e.g. "ref", "train").
	Program string `json:"program"`
	Input   string `json:"input"`
	// Threshold is the retranslation threshold T for INIP(T) runs and
	// 0 for unoptimized (AVEP / train) runs.
	Threshold uint64 `json:"threshold"`
	// Optimized reports whether the optimization phase was enabled.
	Optimized bool `json:"optimized"`
	// Blocks holds per-address counters: end-of-run counters for
	// blocks never placed in a region (and for every block of an
	// unoptimized run).
	Blocks map[int]*Block `json:"blocks"`
	// Regions holds the optimized regions with frozen counters, in
	// formation order. Empty for unoptimized runs.
	Regions []*Region `json:"regions,omitempty"`
	// ProfilingOps is the total number of profiling counter updates
	// performed (the quantity of the paper's Figure 18).
	ProfilingOps uint64 `json:"profiling_ops"`
	// BlocksExecuted is the total number of dynamic block entries.
	BlocksExecuted uint64 `json:"blocks_executed"`
	// Instructions is the total number of guest instructions executed.
	Instructions uint64 `json:"instructions"`
	// Cycles is the simulated cost of the run under the performance
	// model (0 when the model is disabled).
	Cycles uint64 `json:"cycles,omitempty"`
}

// NewSnapshot returns an empty snapshot for the given run identity.
func NewSnapshot(program, input string, threshold uint64, optimized bool) *Snapshot {
	return &Snapshot{
		Program:   program,
		Input:     input,
		Threshold: threshold,
		Optimized: optimized,
		Blocks:    make(map[int]*Block),
	}
}

// BlockAddrs returns the sorted addresses present in Blocks.
func (s *Snapshot) BlockAddrs() []int {
	addrs := make([]int, 0, len(s.Blocks))
	for a := range s.Blocks {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	return addrs
}

// LookupUse returns the end-of-run use count of the block at addr, or 0.
func (s *Snapshot) LookupUse(addr int) uint64 {
	if b, ok := s.Blocks[addr]; ok {
		return b.Use
	}
	return 0
}

// TotalUse sums use counts over all blocks (the denominator of several
// normalized figures).
func (s *Snapshot) TotalUse() uint64 {
	var total uint64
	for _, b := range s.Blocks {
		total += b.Use
	}
	for _, r := range s.Regions {
		for i := range r.Blocks {
			total += r.Blocks[i].Use
		}
	}
	return total
}

// Save writes the snapshot as JSON.
func (s *Snapshot) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// LoadSnapshot reads a snapshot written by Save.
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("profile: decode snapshot: %w", err)
	}
	if s.Blocks == nil {
		s.Blocks = make(map[int]*Block)
	}
	return &s, nil
}

// Dump renders a human-readable listing, for the offline tool and
// debugging.
func (s *Snapshot) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s input %s threshold %d optimized %v\n", s.Program, s.Input, s.Threshold, s.Optimized)
	fmt.Fprintf(&b, "blocks executed %d, instructions %d, profiling ops %d\n", s.BlocksExecuted, s.Instructions, s.ProfilingOps)
	for _, addr := range s.BlockAddrs() {
		blk := s.Blocks[addr]
		if blk.HasBranch {
			fmt.Fprintf(&b, "block %6d use %10d taken %10d bp %.4f\n", addr, blk.Use, blk.Taken, blk.BranchProb())
		} else {
			fmt.Fprintf(&b, "block %6d use %10d\n", addr, blk.Use)
		}
	}
	for _, r := range s.Regions {
		fmt.Fprintf(&b, "region %d kind %s entry %d\n", r.ID, r.Kind, r.Entry)
		for i := range r.Blocks {
			rb := &r.Blocks[i]
			fmt.Fprintf(&b, "  id %4d addr %6d use %8d taken %8d next(t=%d f=%d)\n",
				rb.ID, rb.Addr, rb.Use, rb.Taken, rb.TakenNext, rb.FallNext)
		}
	}
	return b.String()
}

// Validate checks snapshot invariants: region entries resolve, successor
// IDs stay within their region, and unoptimized snapshots carry no
// regions.
func (s *Snapshot) Validate() error {
	if !s.Optimized && len(s.Regions) > 0 {
		return fmt.Errorf("profile: unoptimized snapshot has %d regions", len(s.Regions))
	}
	for _, r := range s.Regions {
		if r.EntryBlock() == nil {
			return fmt.Errorf("profile: region %d entry %d not among members", r.ID, r.Entry)
		}
		ids := make(map[int]bool, len(r.Blocks))
		for i := range r.Blocks {
			if ids[r.Blocks[i].ID] {
				return fmt.Errorf("profile: region %d has duplicate member id %d", r.ID, r.Blocks[i].ID)
			}
			ids[r.Blocks[i].ID] = true
		}
		for i := range r.Blocks {
			rb := &r.Blocks[i]
			if rb.TakenNext != -1 && !ids[rb.TakenNext] {
				return fmt.Errorf("profile: region %d block %d taken successor %d not a member", r.ID, rb.ID, rb.TakenNext)
			}
			if rb.FallNext != -1 && !ids[rb.FallNext] {
				return fmt.Errorf("profile: region %d block %d fall successor %d not a member", r.ID, rb.ID, rb.FallNext)
			}
		}
	}
	return nil
}
