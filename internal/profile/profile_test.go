package profile

import (
	"bytes"
	"strings"
	"testing"
)

func sampleSnapshot() *Snapshot {
	s := NewSnapshot("demo", "ref", 500, true)
	s.Blocks[10] = &Block{Addr: 10, End: 12, Use: 100, Taken: 70, HasBranch: true, TakenTarget: 20, FallTarget: 13}
	s.Blocks[20] = &Block{Addr: 20, End: 21, Use: 30, TakenTarget: -1, FallTarget: -1}
	s.Regions = []*Region{
		{
			ID:    0,
			Kind:  RegionLoop,
			Entry: 1,
			Blocks: []RegionBlock{
				{ID: 1, Addr: 30, Use: 500, Taken: 450, HasBranch: true, TakenNext: 2, FallNext: -1, TakenTarget: 40, FallTarget: 33},
				{ID: 2, Addr: 40, Use: 450, Taken: 400, HasBranch: true, TakenNext: 1, FallNext: -1, TakenTarget: 30, FallTarget: 43},
			},
		},
	}
	s.ProfilingOps = 1234
	s.BlocksExecuted = 5000
	s.Instructions = 40000
	return s
}

func TestBranchProb(t *testing.T) {
	b := &Block{Use: 200, Taken: 50, HasBranch: true}
	if got := b.BranchProb(); got != 0.25 {
		t.Fatalf("BranchProb = %v, want 0.25", got)
	}
	if (&Block{Use: 0, HasBranch: true}).BranchProb() != 0 {
		t.Fatal("unexecuted block must report 0")
	}
	if (&Block{Use: 10, Taken: 5}).BranchProb() != 0 {
		t.Fatal("non-branch block must report 0")
	}
	rb := &RegionBlock{Use: 10, Taken: 4, HasBranch: true}
	if rb.BranchProb() != 0.4 {
		t.Fatalf("RegionBlock.BranchProb = %v", rb.BranchProb())
	}
}

func TestRegionLookups(t *testing.T) {
	s := sampleSnapshot()
	r := s.Regions[0]
	if e := r.EntryBlock(); e == nil || e.Addr != 30 {
		t.Fatalf("EntryBlock = %+v", e)
	}
	if b := r.BlockByID(2); b == nil || b.Addr != 40 {
		t.Fatalf("BlockByID(2) = %+v", b)
	}
	if r.BlockByID(99) != nil {
		t.Fatal("BlockByID(99) should be nil")
	}
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Program != s.Program || got.Input != s.Input || got.Threshold != s.Threshold || !got.Optimized {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Blocks) != 2 || got.Blocks[10].Taken != 70 || got.Blocks[20].Use != 30 {
		t.Fatalf("blocks mismatch: %+v", got.Blocks)
	}
	if len(got.Regions) != 1 || len(got.Regions[0].Blocks) != 2 {
		t.Fatalf("regions mismatch: %+v", got.Regions)
	}
	if got.Regions[0].Kind != RegionLoop || got.Regions[0].Blocks[1].TakenNext != 1 {
		t.Fatalf("region content mismatch: %+v", got.Regions[0])
	}
	if got.ProfilingOps != 1234 || got.BlocksExecuted != 5000 {
		t.Fatalf("counters mismatch: %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate after round trip: %v", err)
	}
}

func TestLoadSnapshotGarbage(t *testing.T) {
	if _, err := LoadSnapshot(strings.NewReader("not json")); err == nil {
		t.Fatal("LoadSnapshot accepted garbage")
	}
}

func TestLoadSnapshotNilBlocks(t *testing.T) {
	got, err := LoadSnapshot(strings.NewReader(`{"program":"p","input":"ref","threshold":0,"optimized":false}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Blocks == nil {
		t.Fatal("Blocks must be non-nil after load")
	}
}

func TestValidateCatchesBadEntry(t *testing.T) {
	s := sampleSnapshot()
	s.Regions[0].Entry = 99
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted dangling region entry")
	}
}

func TestValidateCatchesBadSuccessor(t *testing.T) {
	s := sampleSnapshot()
	s.Regions[0].Blocks[0].TakenNext = 77
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted dangling successor")
	}
}

func TestValidateCatchesDuplicateIDs(t *testing.T) {
	s := sampleSnapshot()
	s.Regions[0].Blocks[1].ID = 1
	s.Regions[0].Blocks[1].TakenNext = -1
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate member IDs")
	}
}

func TestValidateRejectsRegionsOnUnoptimized(t *testing.T) {
	s := sampleSnapshot()
	s.Optimized = false
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted regions in unoptimized snapshot")
	}
}

func TestTotalUseIncludesRegions(t *testing.T) {
	s := sampleSnapshot()
	// 100 + 30 (blocks) + 500 + 450 (region members).
	if got := s.TotalUse(); got != 1080 {
		t.Fatalf("TotalUse = %d, want 1080", got)
	}
}

func TestBlockAddrsSorted(t *testing.T) {
	s := sampleSnapshot()
	addrs := s.BlockAddrs()
	if len(addrs) != 2 || addrs[0] != 10 || addrs[1] != 20 {
		t.Fatalf("BlockAddrs = %v", addrs)
	}
}

func TestLookupUse(t *testing.T) {
	s := sampleSnapshot()
	if s.LookupUse(10) != 100 || s.LookupUse(999) != 0 {
		t.Fatal("LookupUse wrong")
	}
}

func TestDumpMentionsEverything(t *testing.T) {
	text := sampleSnapshot().Dump()
	for _, want := range []string{"program demo", "threshold 500", "block", "bp 0.7000", "region 0 kind loop", "addr     40"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Dump missing %q:\n%s", want, text)
		}
	}
}

func TestRegionKindString(t *testing.T) {
	if RegionTrace.String() != "trace" || RegionLoop.String() != "loop" {
		t.Fatal("RegionKind.String wrong")
	}
}
