// Package interp executes SG32 guest programs.
//
// It provides two layers:
//
//   - State + Exec: the single-instruction execution core. Both the
//     reference interpreter and the dynamic binary translator's
//     translated code execute through Exec, so guest semantics cannot
//     drift between the two engines.
//
//   - Machine: a straightforward fetch-decode-execute interpreter over a
//     guest image, with an optional per-block hook. It is the oracle the
//     DBT engine is cross-validated against, and the vehicle for the
//     examples.
//
// Guest programs obtain input through the `in` instruction, which reads
// the next word from a Tape. Tapes are deterministic; the INIP(T), AVEP
// and INIP(train) runs of a benchmark replay identical tapes, which is
// what makes the paper's three-way comparison meaningful.
package interp

import (
	"fmt"
	"math"

	"repro/internal/guest"
	"repro/internal/isa"
	"repro/internal/rng"
)

// ProbScale is the resolution of tape-driven branch probabilities: a
// uniform tape yields words in [0, ProbScale), so comparing against a
// constant K realizes a branch probability of K/ProbScale. 13 bits keeps
// the constant within a single loadi immediate.
const ProbScale = 8192

// Tape is a deterministic source of guest input words.
type Tape interface {
	Next() uint32
}

// UniformTape yields uniform words in [0, ProbScale) from a seeded
// deterministic generator.
type UniformTape struct {
	src *rng.Source
}

// NewUniformTape returns a tape seeded from the given string, typically
// "<benchmark>/<input>".
func NewUniformTape(seed string) *UniformTape {
	return &UniformTape{src: rng.NewFromString(seed)}
}

// Next returns the next input word.
func (t *UniformTape) Next() uint32 { return uint32(t.src.Uint64() % ProbScale) }

// SliceTape replays a fixed sequence, then yields zeros. It is intended
// for tests that need exact control over guest input.
type SliceTape struct {
	words []uint32
	pos   int
}

// NewSliceTape returns a tape that replays words.
func NewSliceTape(words []uint32) *SliceTape {
	return &SliceTape{words: append([]uint32(nil), words...)}
}

// Next returns the next word, or 0 once the sequence is exhausted.
func (t *SliceTape) Next() uint32 {
	if t.pos >= len(t.words) {
		return 0
	}
	w := t.words[t.pos]
	t.pos++
	return w
}

// State is the architectural state of a running guest: registers, data
// memory, the return-address stack and the input tape.
type State struct {
	Regs [isa.NumRegs]uint32
	Mem  []uint32
	Ret  []int
	Tape Tape
}

// NewState allocates state sized for the image and applies its initial
// data.
func NewState(img *guest.Image, tape Tape) *State {
	st := &State{
		Mem:  make([]uint32, img.DataWords),
		Ret:  make([]int, 0, 64),
		Tape: tape,
	}
	copy(st.Mem, img.InitData)
	return st
}

// Execution faults. These indicate a malformed guest program (or a
// translator bug), not an I/O condition, so they carry the pc.
type Fault struct {
	PC   int
	Msg  string
	Inst isa.Inst
}

func (f *Fault) Error() string {
	return fmt.Sprintf("interp: fault at pc %d (%s): %s", f.PC, f.Inst, f.Msg)
}

func fault(pc int, in isa.Inst, format string, args ...any) error {
	return &Fault{PC: pc, Inst: in, Msg: fmt.Sprintf(format, args...)}
}

// Exec executes a single decoded instruction at pc against st and
// returns the next pc. halted reports OpHalt. The caller is responsible
// for bounds-checking nextPC against the code segment (Machine does; the
// DBT's block cache does it structurally).
func Exec(st *State, pc int, in isa.Inst) (nextPC int, halted bool, err error) {
	r := &st.Regs
	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		return pc, true, nil
	case isa.OpAdd:
		r[in.Rd] = r[in.Rs] + r[in.Rt]
	case isa.OpSub:
		r[in.Rd] = r[in.Rs] - r[in.Rt]
	case isa.OpMul:
		r[in.Rd] = r[in.Rs] * r[in.Rt]
	case isa.OpAnd:
		r[in.Rd] = r[in.Rs] & r[in.Rt]
	case isa.OpOr:
		r[in.Rd] = r[in.Rs] | r[in.Rt]
	case isa.OpXor:
		r[in.Rd] = r[in.Rs] ^ r[in.Rt]
	case isa.OpShl:
		r[in.Rd] = r[in.Rs] << (r[in.Rt] & 31)
	case isa.OpShr:
		r[in.Rd] = r[in.Rs] >> (r[in.Rt] & 31)
	case isa.OpAddi:
		r[in.Rd] = r[in.Rs] + uint32(in.Imm)
	case isa.OpLoadi:
		r[in.Rd] = uint32(in.Imm)
	case isa.OpLuhi:
		r[in.Rd] = r[in.Rd]<<13 | uint32(in.Imm)&0x1FFF
	case isa.OpMov:
		r[in.Rd] = r[in.Rs]
	case isa.OpLoad:
		addr := int(int32(r[in.Rs]) + in.Imm)
		if addr < 0 || addr >= len(st.Mem) {
			return 0, false, fault(pc, in, "load address %d outside memory [0,%d)", addr, len(st.Mem))
		}
		r[in.Rd] = st.Mem[addr]
	case isa.OpStore:
		addr := int(int32(r[in.Rs]) + in.Imm)
		if addr < 0 || addr >= len(st.Mem) {
			return 0, false, fault(pc, in, "store address %d outside memory [0,%d)", addr, len(st.Mem))
		}
		st.Mem[addr] = r[in.Rt]
	case isa.OpIn:
		r[in.Rd] = st.Tape.Next()
	case isa.OpFadd:
		r[in.Rd] = math.Float32bits(math.Float32frombits(r[in.Rs]) + math.Float32frombits(r[in.Rt]))
	case isa.OpFmul:
		r[in.Rd] = math.Float32bits(math.Float32frombits(r[in.Rs]) * math.Float32frombits(r[in.Rt]))
	case isa.OpFdiv:
		r[in.Rd] = math.Float32bits(math.Float32frombits(r[in.Rs]) / math.Float32frombits(r[in.Rt]))
	case isa.OpBeq:
		if r[in.Rs] == r[in.Rt] {
			return pc + int(in.Imm), false, nil
		}
	case isa.OpBne:
		if r[in.Rs] != r[in.Rt] {
			return pc + int(in.Imm), false, nil
		}
	case isa.OpBlt:
		if int32(r[in.Rs]) < int32(r[in.Rt]) {
			return pc + int(in.Imm), false, nil
		}
	case isa.OpBge:
		if int32(r[in.Rs]) >= int32(r[in.Rt]) {
			return pc + int(in.Imm), false, nil
		}
	case isa.OpJmp:
		return pc + int(in.Imm), false, nil
	case isa.OpJr:
		return int(r[in.Rs]), false, nil
	case isa.OpCall:
		if len(st.Ret) >= MaxCallDepth {
			return 0, false, fault(pc, in, "call stack overflow (depth %d)", len(st.Ret))
		}
		st.Ret = append(st.Ret, pc+1)
		return pc + int(in.Imm), false, nil
	case isa.OpRet:
		if len(st.Ret) == 0 {
			return 0, false, fault(pc, in, "ret with empty call stack")
		}
		nextPC = st.Ret[len(st.Ret)-1]
		st.Ret = st.Ret[:len(st.Ret)-1]
		return nextPC, false, nil
	default:
		return 0, false, fault(pc, in, "unimplemented opcode")
	}
	return pc + 1, false, nil
}

// MaxCallDepth bounds the guest return stack; synthetic programs never
// recurse deeply, so hitting it means a generator bug. It is exported so
// that pre-lowered execution paths (package dbt) can enforce the same
// limit the reference interpreter does.
const MaxCallDepth = 1 << 16

// Machine is the reference interpreter.
type Machine struct {
	img  *guest.Image
	code []isa.Inst // predecoded
	st   *State
	pc   int

	halted bool
	steps  uint64
	blocks uint64

	// BlockHook, when set, is invoked with the address of every basic
	// block the interpreter enters (the entry and each control-transfer
	// target or fall-through after a block-ending instruction).
	BlockHook func(pc int)
	// MaxSteps aborts the run after this many instructions when > 0.
	MaxSteps uint64
}

// NewMachine predecodes the image and prepares a machine starting at its
// entry point.
func NewMachine(img *guest.Image, tape Tape) (*Machine, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	code := make([]isa.Inst, len(img.Code))
	for pc, w := range img.Code {
		in, err := isa.Decode(w)
		if err != nil {
			return nil, err
		}
		code[pc] = in
	}
	return &Machine{img: img, code: code, st: NewState(img, tape), pc: img.Entry}, nil
}

// State exposes the architectural state, for tests and examples.
func (m *Machine) State() *State { return m.st }

// PC returns the current program counter.
func (m *Machine) PC() int { return m.pc }

// Halted reports whether the program has executed halt.
func (m *Machine) Halted() bool { return m.halted }

// Steps returns the number of instructions executed so far.
func (m *Machine) Steps() uint64 { return m.steps }

// Blocks returns the number of basic-block entries observed so far.
func (m *Machine) Blocks() uint64 { return m.blocks }

// Run executes until halt, a fault, or MaxSteps. It returns nil on a
// clean halt and an ErrMaxSteps sentinel error when the step budget is
// exhausted first.
func (m *Machine) Run() error {
	if m.halted {
		return nil
	}
	atBlockStart := true
	for {
		if atBlockStart {
			m.blocks++
			if m.BlockHook != nil {
				m.BlockHook(m.pc)
			}
			atBlockStart = false
		}
		if m.pc < 0 || m.pc >= len(m.code) {
			return fault(m.pc, isa.Inst{}, "pc outside code segment")
		}
		in := m.code[m.pc]
		next, halted, err := Exec(m.st, m.pc, in)
		if err != nil {
			return err
		}
		m.steps++
		if halted {
			m.halted = true
			return nil
		}
		if in.Op.EndsBlock() {
			atBlockStart = true
		}
		m.pc = next
		if m.MaxSteps > 0 && m.steps >= m.MaxSteps {
			return ErrMaxSteps
		}
	}
}

// ErrMaxSteps reports that Run stopped because the step budget was
// exhausted rather than because the guest halted.
var ErrMaxSteps = fmt.Errorf("interp: step budget exhausted")
