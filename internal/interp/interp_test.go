package interp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/guest"
	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *guest.Image {
	t.Helper()
	img, err := guest.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return img
}

func run(t *testing.T, src string, tape Tape) *Machine {
	t.Helper()
	img := mustAssemble(t, src)
	m, err := NewMachine(img, tape)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestCountedLoop(t *testing.T) {
	m := run(t, `
.entry main
main:
	loadi r1, 10
	loadi r2, 0
	loadi r3, 0
loop:
	addi r3, r3, 1
	addi r1, r1, -1
	bne r1, r2, loop
	halt
`, NewSliceTape(nil))
	if got := m.State().Regs[3]; got != 10 {
		t.Fatalf("loop body executed %d times, want 10", got)
	}
	if !m.Halted() {
		t.Fatal("machine did not halt")
	}
}

func TestArithmeticOps(t *testing.T) {
	m := run(t, `
.entry main
main:
	loadi r1, 6
	loadi r2, 7
	mul r3, r1, r2
	add r4, r3, r1
	sub r5, r3, r2
	and r6, r1, r2
	or r7, r1, r2
	xor r8, r1, r2
	loadi r9, 2
	shl r10, r1, r9
	shr r11, r3, r9
	halt
`, NewSliceTape(nil))
	r := m.State().Regs
	checks := map[int]uint32{3: 42, 4: 48, 5: 35, 6: 6, 7: 7, 8: 1, 10: 24, 11: 10}
	for reg, want := range checks {
		if r[reg] != want {
			t.Errorf("r%d = %d, want %d", reg, r[reg], want)
		}
	}
}

func TestMemoryAndTape(t *testing.T) {
	m := run(t, `
.entry main
.data 8
main:
	in r1
	in r2
	loadi r3, 0
	store r1, 0(r3)
	store r2, 1(r3)
	load r4, 0(r3)
	load r5, 1(r3)
	halt
`, NewSliceTape([]uint32{111, 222}))
	r := m.State().Regs
	if r[4] != 111 || r[5] != 222 {
		t.Fatalf("memory round trip failed: r4=%d r5=%d", r[4], r[5])
	}
}

func TestCallRet(t *testing.T) {
	m := run(t, `
.entry main
main:
	loadi r1, 5
	call double
	call double
	halt
double:
	add r1, r1, r1
	ret
`, NewSliceTape(nil))
	if got := m.State().Regs[1]; got != 20 {
		t.Fatalf("r1 = %d, want 20", got)
	}
}

func TestIndirectJump(t *testing.T) {
	// Jump to label 'b' via a register holding its address; the symbol
	// table gives us the address to load.
	img := mustAssemble(t, `
.entry main
main:
	loadi r1, 0
	loadi r2, 6
	jr r2, [a, b]
a:
	loadi r3, 1
	halt
b:
	loadi r3, 2
	halt
`)
	addrB := img.Symbols["b"]
	// Patch r2's constant to b's address (the literal 6 above is a
	// placeholder; recompute to be robust to layout changes).
	in, err := img.Decode(1)
	if err != nil {
		t.Fatal(err)
	}
	in.Imm = int32(addrB)
	img.Code[1] = isa.Encode(in)
	m, err := NewMachine(img, NewSliceTape(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.State().Regs[3]; got != 2 {
		t.Fatalf("r3 = %d, want 2 (jumped to b)", got)
	}
}

func TestFloatOps(t *testing.T) {
	img := mustAssemble(t, `
.entry main
main:
	fadd r3, r1, r2
	fmul r4, r1, r2
	fdiv r5, r1, r2
	halt
`)
	m, err := NewMachine(img, NewSliceTape(nil))
	if err != nil {
		t.Fatal(err)
	}
	m.State().Regs[1] = math.Float32bits(6)
	m.State().Regs[2] = math.Float32bits(1.5)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	r := m.State().Regs
	if got := math.Float32frombits(r[3]); got != 7.5 {
		t.Errorf("fadd = %v, want 7.5", got)
	}
	if got := math.Float32frombits(r[4]); got != 9 {
		t.Errorf("fmul = %v, want 9", got)
	}
	if got := math.Float32frombits(r[5]); got != 4 {
		t.Errorf("fdiv = %v, want 4", got)
	}
}

func TestBranchConditions(t *testing.T) {
	// Each branch kind with both outcomes, via signed comparisons.
	m := run(t, `
.entry main
main:
	loadi r1, -1
	loadi r2, 1
	loadi r9, 0
	blt r1, r2, t1   ; signed: -1 < 1, taken
	halt
t1:
	addi r9, r9, 1
	bge r2, r1, t2   ; 1 >= -1, taken
	halt
t2:
	addi r9, r9, 1
	blt r2, r1, bad  ; not taken
	addi r9, r9, 1
	beq r1, r1, t3   ; taken
bad:
	halt
t3:
	addi r9, r9, 1
	bne r1, r1, bad  ; not taken
	addi r9, r9, 1
	halt
`, NewSliceTape(nil))
	if got := m.State().Regs[9]; got != 5 {
		t.Fatalf("r9 = %d, want 5", got)
	}
}

func TestFaultOnBadLoad(t *testing.T) {
	img := mustAssemble(t, `
.entry main
.data 4
main:
	loadi r1, 100
	load r2, 0(r1)
	halt
`)
	m, err := NewMachine(img, NewSliceTape(nil))
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("Run = %v, want Fault", err)
	}
	if f.PC != img.Symbols["main"]+1 {
		t.Fatalf("fault pc = %d", f.PC)
	}
}

func TestFaultOnRetWithEmptyStack(t *testing.T) {
	img := mustAssemble(t, ".entry main\nmain:\nret\n")
	m, err := NewMachine(img, NewSliceTape(nil))
	if err != nil {
		t.Fatal(err)
	}
	var f *Fault
	if err := m.Run(); !errors.As(err, &f) {
		t.Fatalf("Run = %v, want Fault", err)
	}
}

func TestMaxStepsStopsRunaway(t *testing.T) {
	img := mustAssemble(t, ".entry main\nmain:\nloop:\njmp loop\n")
	m, err := NewMachine(img, NewSliceTape(nil))
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1000
	if err := m.Run(); !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("Run = %v, want ErrMaxSteps", err)
	}
	if m.Steps() != 1000 {
		t.Fatalf("steps = %d, want 1000", m.Steps())
	}
}

func TestBlockHookSeesBlockEntries(t *testing.T) {
	img := mustAssemble(t, `
.entry main
main:
	loadi r1, 3
	loadi r2, 0
loop:
	addi r1, r1, -1
	bne r1, r2, loop
	halt
`)
	m, err := NewMachine(img, NewSliceTape(nil))
	if err != nil {
		t.Fatal(err)
	}
	var entries []int
	m.BlockHook = func(pc int) { entries = append(entries, pc) }
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	loop := img.Symbols["loop"]
	// The entry block runs from main through the bne (the loop label is
	// reached by fall-through, which does not start a new dynamic
	// block); the two taken back edges re-enter at loop; the final
	// not-taken branch falls through to the halt block.
	want := []int{img.Entry, loop, loop, loop + 2}
	if len(entries) != len(want) {
		t.Fatalf("block entries = %v, want %v", entries, want)
	}
	for i := range want {
		if entries[i] != want[i] {
			t.Fatalf("block entries = %v, want %v", entries, want)
		}
	}
	if m.Blocks() != uint64(len(want)) {
		t.Fatalf("Blocks() = %d, want %d", m.Blocks(), len(want))
	}
}

func TestTapeDrivenBranchProbability(t *testing.T) {
	// in r1; blt r1, r6, taken realizes p = K/ProbScale within
	// statistical tolerance when the tape is uniform.
	img := mustAssemble(t, `
.entry main
main:
	loadi r5, 2000   ; iterations
	loadi r6, 2048   ; K -> p = 0.25
	loadi r7, 0      ; taken counter
	loadi r8, 0
loop:
	in r1
	blt r1, r6, taken
	jmp next
taken:
	addi r7, r7, 1
next:
	addi r5, r5, -1
	bne r5, r8, loop
	halt
`)
	m, err := NewMachine(img, NewUniformTape("test/branch"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	p := float64(m.State().Regs[7]) / 2000
	if p < 0.2 || p > 0.3 {
		t.Fatalf("observed taken rate %v, want ~0.25", p)
	}
}

func TestUniformTapeRange(t *testing.T) {
	tape := NewUniformTape("x")
	for i := 0; i < 10000; i++ {
		if w := tape.Next(); w >= ProbScale {
			t.Fatalf("tape word %d out of range", w)
		}
	}
}

func TestUniformTapeDeterminism(t *testing.T) {
	a, b := NewUniformTape("mcf/ref"), NewUniformTape("mcf/ref")
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed tapes diverged")
		}
	}
	c := NewUniformTape("mcf/train")
	same := true
	a2 := NewUniformTape("mcf/ref")
	for i := 0; i < 100; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("ref and train tapes identical")
	}
}

func TestSliceTapeExhaustion(t *testing.T) {
	tape := NewSliceTape([]uint32{5})
	if tape.Next() != 5 || tape.Next() != 0 || tape.Next() != 0 {
		t.Fatal("SliceTape exhaustion semantics wrong")
	}
}

// Property: Exec on pure ALU ops never faults and never moves pc by
// anything but +1.
func TestQuickALUAdvancesPC(t *testing.T) {
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpMov, isa.OpLoadi, isa.OpAddi}
	f := func(opIdx, rd, rs, rt uint8, imm int16, a, b uint32) bool {
		st := &State{Tape: NewSliceTape(nil)}
		st.Regs[rs%isa.NumRegs] = a
		st.Regs[rt%isa.NumRegs] = b
		in := isa.Inst{
			Op:  ops[int(opIdx)%len(ops)],
			Rd:  rd % isa.NumRegs,
			Rs:  rs % isa.NumRegs,
			Rt:  rt % isa.NumRegs,
			Imm: int32(imm) % (isa.MaxImm + 1),
		}
		next, halted, err := Exec(st, 40, in)
		return err == nil && !halted && next == 41
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInterpLoop(b *testing.B) {
	img, err := guest.Assemble(`
.entry main
main:
	loadi r2, 0
loop:
	in r1
	addi r3, r3, 1
	bne r1, r2, loop
	halt
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(img, NewUniformTape("bench"))
		if err != nil {
			b.Fatal(err)
		}
		m.MaxSteps = 10000
		if err := m.Run(); err != nil && !errors.Is(err, ErrMaxSteps) {
			b.Fatal(err)
		}
	}
}
