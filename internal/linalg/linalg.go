// Package linalg provides the linear-equation solvers used to propagate
// block frequencies through normalized control-flow graphs.
//
// The paper's offline analysis tool uses Intel's Math Kernel Library to
// solve the flow-conservation systems that arise when AVEP is normalized
// to INIP(T)'s duplicated CFG ("Markov Modelling of Control Flow",
// Wagner et al., PLDI'94). This package is the stdlib-only substitution:
// a dense LU solver with partial pivoting for exact solutions, and a
// Gauss–Seidel iteration that exploits the near-triangular structure of
// flow systems for speed on larger graphs.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when elimination encounters a pivot too small
// to divide by, i.e. the system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return y
}

// SolveDense solves A·x = b by Gaussian elimination with partial
// pivoting, destroying neither input. It returns ErrSingular when no
// unique solution exists.
func SolveDense(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: SolveDense needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), n)
	}
	// Work on copies; callers reuse their matrices across experiments.
	m := a.Clone()
	x := append([]float64(nil), b...)
	const pivotEps = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivoting: find the largest magnitude in this column.
		pivotRow := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best = v
				pivotRow = r
			}
		}
		if best < pivotEps {
			return nil, ErrSingular
		}
		if pivotRow != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivotRow*n+j] = m.Data[pivotRow*n+j], m.Data[col*n+j]
			}
			x[col], x[pivotRow] = x[pivotRow], x[col]
		}
		pivot := m.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := m.At(r, col) / pivot
			if factor == 0 {
				continue
			}
			m.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				m.Add(r, j, -factor*m.At(col, j))
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// Sparse is a square sparse matrix in per-row coordinate form, suited to
// the flow systems (a handful of non-zeros per row).
type Sparse struct {
	N    int
	rows [][]entry
}

type entry struct {
	col int
	val float64
}

// NewSparse allocates an n×n zero sparse matrix.
func NewSparse(n int) *Sparse {
	if n < 0 {
		panic("linalg: negative dimension")
	}
	return &Sparse{N: n, rows: make([][]entry, n)}
}

// Add adds v to element (i, j), merging with an existing entry if
// present.
func (s *Sparse) Add(i, j int, v float64) {
	for k := range s.rows[i] {
		if s.rows[i][k].col == j {
			s.rows[i][k].val += v
			return
		}
	}
	s.rows[i] = append(s.rows[i], entry{col: j, val: v})
}

// At returns element (i, j).
func (s *Sparse) At(i, j int) float64 {
	for _, e := range s.rows[i] {
		if e.col == j {
			return e.val
		}
	}
	return 0
}

// MulVec returns s·x.
func (s *Sparse) MulVec(x []float64) []float64 {
	y := make([]float64, s.N)
	for i, row := range s.rows {
		sum := 0.0
		for _, e := range row {
			sum += e.val * x[e.col]
		}
		y[i] = sum
	}
	return y
}

// Dense converts to a dense matrix (for fallback solving and tests).
func (s *Sparse) Dense() *Matrix {
	m := NewMatrix(s.N, s.N)
	for i, row := range s.rows {
		for _, e := range row {
			m.Add(i, e.col, e.val)
		}
	}
	return m
}

// GaussSeidelOptions tunes the iterative solver.
type GaussSeidelOptions struct {
	// MaxIters bounds the number of sweeps (default 10000).
	MaxIters int
	// Tol is the max-norm change below which iteration stops
	// (default 1e-12).
	Tol float64
}

// SolveGaussSeidel solves A·x = b iteratively. It requires non-zero
// diagonal entries and converges for the diagonally dominant /
// substochastic systems produced by flow conservation. When convergence
// stalls it returns the best iterate along with a wrapped error so
// callers can fall back to the dense solver.
func SolveGaussSeidel(a *Sparse, b []float64, opts GaussSeidelOptions) ([]float64, error) {
	n := a.N
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), n)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 10000
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-12
	}
	diag := make([]float64, n)
	for i, row := range a.rows {
		for _, e := range row {
			if e.col == i {
				diag[i] = e.val
			}
		}
		if diag[i] == 0 {
			return nil, fmt.Errorf("linalg: zero diagonal at row %d: %w", i, ErrSingular)
		}
	}
	x := make([]float64, n)
	for iter := 0; iter < opts.MaxIters; iter++ {
		maxDelta := 0.0
		for i, row := range a.rows {
			sum := b[i]
			for _, e := range row {
				if e.col != i {
					sum -= e.val * x[e.col]
				}
			}
			next := sum / diag[i]
			if d := math.Abs(next - x[i]); d > maxDelta {
				maxDelta = d
			}
			x[i] = next
		}
		if maxDelta < opts.Tol {
			return x, nil
		}
	}
	return x, fmt.Errorf("linalg: Gauss–Seidel did not converge in %d iterations", opts.MaxIters)
}

// SolveFlow solves a flow-conservation system, preferring Gauss–Seidel
// and falling back to dense LU when iteration fails (e.g. for systems
// with cyclic dependencies that are not diagonally dominant).
func SolveFlow(a *Sparse, b []float64) ([]float64, error) {
	if x, err := SolveGaussSeidel(a, b, GaussSeidelOptions{}); err == nil {
		return x, nil
	}
	return SolveDense(a.Dense(), b)
}

// Residual returns the max-norm of A·x - b, a convenience for tests and
// verification passes.
func Residual(mul func([]float64) []float64, x, b []float64) float64 {
	ax := mul(x)
	worst := 0.0
	for i := range b {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
