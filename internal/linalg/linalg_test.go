package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSolveDenseKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveDense(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveDenseIdentity(t *testing.T) {
	n := 5
	a := NewMatrix(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		b[i] = float64(i * i)
	}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("identity solve x = %v", x)
		}
	}
}

func TestSolveDenseNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveDense(a, []float64{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 9 || x[1] != 7 {
		t.Fatalf("x = %v, want [9 7]", x)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveDense(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDenseRejectsShapes(t *testing.T) {
	if _, err := SolveDense(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("accepted non-square matrix")
	}
	if _, err := SolveDense(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Fatal("accepted mismatched rhs")
	}
}

func TestSolveDenseDoesNotMutateInputs(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	b := []float64{5, 10}
	orig := a.Clone()
	if _, err := SolveDense(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatal("SolveDense mutated its matrix")
		}
	}
	if b[0] != 5 || b[1] != 10 {
		t.Fatal("SolveDense mutated its rhs")
	}
}

// randomDominant builds a strictly diagonally dominant system, which is
// guaranteed non-singular and Gauss–Seidel-convergent.
func randomDominant(r *rng.Source, n int) (*Matrix, *Sparse, []float64) {
	dense := NewMatrix(n, n)
	sparse := NewSparse(n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if r.Float64() < 0.3 {
				v := r.Float64()*2 - 1
				dense.Set(i, j, v)
				sparse.Add(i, j, v)
				rowSum += math.Abs(v)
			}
		}
		d := rowSum + 1 + r.Float64()
		dense.Set(i, i, d)
		sparse.Add(i, i, d)
		b[i] = r.Float64() * 10
	}
	return dense, sparse, b
}

func TestQuickDenseSolveSatisfiesSystem(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		r := rng.New(seed)
		a, _, b := randomDominant(r, n)
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		return Residual(a.MulVec, x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussSeidelMatchesDense(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(30)
		dense, sparse, b := randomDominant(r, n)
		want, err := SolveDense(dense, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveGaussSeidel(sparse, b, GaussSeidelOptions{})
		if err != nil {
			t.Fatalf("Gauss–Seidel failed on dominant system: %v", err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestGaussSeidelZeroDiagonal(t *testing.T) {
	s := NewSparse(2)
	s.Add(0, 1, 1)
	s.Add(1, 0, 1)
	s.Add(1, 1, 1)
	if _, err := SolveGaussSeidel(s, []float64{1, 1}, GaussSeidelOptions{}); err == nil {
		t.Fatal("accepted zero diagonal")
	}
}

func TestSolveFlowFallsBackToDense(t *testing.T) {
	// An anti-diagonal permutation system: Gauss–Seidel cannot run
	// (zero diagonal), the dense path must solve it.
	s := NewSparse(2)
	s.Add(0, 1, 1)
	s.Add(1, 0, 1)
	x, err := SolveFlow(s, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [4 3]", x)
	}
}

func TestSolveFlowTypicalFlowSystem(t *testing.T) {
	// The paper's Figure 4 system: three copies of block b2 with
	// frequencies x0, x1, x2 determined by flows from fixed blocks:
	//   x0 = 1000 (flow from b1)
	//   x1 = 0.9 * 44000 (loop back into b2')
	//   x2 = 0.1 * 44000 + ... see navep tests for the full model; here
	// just check a chained system solves exactly.
	s := NewSparse(3)
	s.Add(0, 0, 1)
	s.Add(1, 1, 1)
	s.Add(1, 0, -0.5) // x1 = 0.5*x0 + 10
	s.Add(2, 2, 1)
	s.Add(2, 1, -2) // x2 = 2*x1
	b := []float64{1000, 10, 0}
	x, err := SolveFlow(s, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1000, 510, 1020}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSparseAtAndMerge(t *testing.T) {
	s := NewSparse(3)
	s.Add(0, 1, 2)
	s.Add(0, 1, 3)
	if got := s.At(0, 1); got != 5 {
		t.Fatalf("merged entry = %v, want 5", got)
	}
	if got := s.At(2, 2); got != 0 {
		t.Fatalf("missing entry = %v, want 0", got)
	}
}

func TestSparseDenseConversion(t *testing.T) {
	s := NewSparse(2)
	s.Add(0, 0, 1)
	s.Add(1, 0, 2)
	s.Add(1, 1, 3)
	d := s.Dense()
	if d.At(0, 0) != 1 || d.At(1, 0) != 2 || d.At(1, 1) != 3 || d.At(0, 1) != 0 {
		t.Fatalf("dense conversion wrong: %+v", d)
	}
}

func TestMulVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong length did not panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func BenchmarkSolveDense50(b *testing.B) {
	r := rng.New(3)
	a, _, rhs := randomDominant(r, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDense(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGaussSeidel200(b *testing.B) {
	r := rng.New(3)
	_, s, rhs := randomDominant(r, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveGaussSeidel(s, rhs, GaussSeidelOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
