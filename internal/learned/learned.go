// Package learned implements a profile-free static branch predictor:
// a small model trained on static per-branch-site features (opcode mix,
// loop structure from internal/cfg, displacement shape, operand
// provenance) that predicts a conditional branch's likely direction
// with zero profiling runs.
//
// The paper compares INIP(T) initial profiles against a training-input
// profile; both need at least one prior execution. This package adds
// the third point the 2004 study could not explore: what accuracy is
// available from the binary alone? Following Rotem & Cummins
// ("Profile Guided Optimization without Profiles"), the model is fit
// across the benchmark suite with leave-one-benchmark-out cross
// validation, so every reported number is held out — the model never
// sees any profile of the benchmark it is scored on.
//
// Everything here is deterministic by construction: the feature order
// is fixed, training iterates benchmarks in caller order and sites in
// ascending PC order, model arithmetic is plain float64 in a fixed
// evaluation order, and no code path iterates a Go map. Equal inputs
// produce bit-equal models, predictions and serialized results.
package learned

import (
	"fmt"
	"math"
)

// Model kinds accepted by Config.Model.
const (
	ModelLogReg = "logreg"
	ModelTree   = "tree"
)

// Config selects the model family and its hyperparameters. The zero
// value is not usable directly; withDefaults fills the canonical
// settings, and Fingerprint identifies the fully defaulted config.
type Config struct {
	// Model is the model family: "logreg" (logistic regression trained
	// by batch gradient descent) or "tree" (depth-bounded CART decision
	// tree).
	Model string `json:"model"`
	// Epochs is the number of full gradient-descent passes (logreg).
	Epochs int `json:"epochs,omitempty"`
	// LearnRate is the gradient-descent step size (logreg).
	LearnRate float64 `json:"learn_rate,omitempty"`
	// L2 is the ridge penalty applied to non-bias weights (logreg).
	L2 float64 `json:"l2,omitempty"`
	// TreeDepth bounds the decision tree's depth (tree).
	TreeDepth int `json:"tree_depth,omitempty"`
}

// Default hyperparameters. They are part of the model fingerprint:
// changing them invalidates cached learned results and checkpoints.
const (
	defaultEpochs    = 200
	defaultLearnRate = 2.0
	defaultL2        = 1e-3
	defaultTreeDepth = 8
)

// DefaultConfig returns the canonical learned-model configuration.
func DefaultConfig() Config {
	return Config{}.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.Model == "" {
		c.Model = ModelLogReg
	}
	if c.Epochs == 0 {
		c.Epochs = defaultEpochs
	}
	if c.LearnRate == 0 {
		c.LearnRate = defaultLearnRate
	}
	if c.L2 == 0 {
		c.L2 = defaultL2
	}
	if c.TreeDepth == 0 {
		c.TreeDepth = defaultTreeDepth
	}
	return c
}

// Validate rejects configurations the trainer cannot honor.
func (c Config) Validate() error {
	d := c.withDefaults()
	switch d.Model {
	case ModelLogReg, ModelTree:
	default:
		return fmt.Errorf("learned: unknown model %q (have %s, %s)", d.Model, ModelLogReg, ModelTree)
	}
	if d.Epochs < 1 {
		return fmt.Errorf("learned: epochs %d < 1", d.Epochs)
	}
	if d.LearnRate <= 0 || math.IsNaN(d.LearnRate) || math.IsInf(d.LearnRate, 0) {
		return fmt.Errorf("learned: learn rate %v not positive and finite", d.LearnRate)
	}
	if d.L2 < 0 || math.IsNaN(d.L2) || math.IsInf(d.L2, 0) {
		return fmt.Errorf("learned: l2 %v negative or not finite", d.L2)
	}
	if d.TreeDepth < 1 || d.TreeDepth > 16 {
		return fmt.Errorf("learned: tree depth %d outside [1,16]", d.TreeDepth)
	}
	return nil
}

// featureVersion names the feature extractor's schema. Bump it whenever
// the feature set, order or scaling changes: the version is part of
// Fingerprint, which keys cache entries and checkpoint headers.
const featureVersion = 1

// Fingerprint identifies the model configuration plus the feature
// schema. Equal fingerprints guarantee bit-equal training results on
// equal data; it keys the `ls` result-cache entries, the study
// checkpoint header, and the daemon's request-coalescing flight keys.
func (c Config) Fingerprint() string {
	d := c.withDefaults()
	switch d.Model {
	case ModelTree:
		return fmt.Sprintf("learned-f%d:tree:d%d", featureVersion, d.TreeDepth)
	default:
		return fmt.Sprintf("learned-f%d:%s:e%d:lr%g:l2%g", featureVersion, d.Model, d.Epochs, d.LearnRate, d.L2)
	}
}

// featureNames is the fixed feature order. Index 0 is the bias term.
// All features are scaled into [0,1]; see features.go for definitions.
var featureNames = []string{
	"bias",
	"backward",        // taken target at or before the branch pc
	"disp_mag",        // log-scaled |displacement|
	"taken_loop_head", // taken target heads a natural loop
	"loop_depth",      // loop-nesting depth of the branch block
	"taken_exits_loop",
	"fall_exits_loop",
	"op_beq", "op_bne", "op_blt", "op_bge",
	"frac_mem", "frac_float", "frac_in",
	"block_len",
	"taken_ret", "fall_ret", // successor path ends in ret/halt
	"taken_join", "fall_join", // successor is a static join point
	"cmp_def_loadi", "cmp_def_in",
	"cmp_off_0", "cmp_off_1", "cmp_off_2", "cmp_off_3", "cmp_off_4",
	"cmp_off_5", "cmp_off_6", "cmp_off_7", "cmp_off_8", "cmp_off_9",
	"cmp_off_other",
	"cmp_def_none",
}

// NumFeatures is the length of every feature vector.
func NumFeatures() int { return len(featureNames) }

// FeatureNames returns the feature order as a fresh slice.
func FeatureNames() []string {
	return append([]string(nil), featureNames...)
}

// Site is one conditional-branch site of a benchmark: the dynamic-block
// entry address the observer rail reports branches under, its static
// feature vector, and the execution tallies collected off the shared
// reference trace.
type Site struct {
	// PC is the entry address of the dynamic block ending in the branch.
	PC int32 `json:"pc"`
	// X is the feature vector in FeatureNames order.
	X []float64 `json:"x"`
	// Count and Taken tally the site's resolved branches and taken
	// outcomes on the reference input.
	Count uint64 `json:"count,omitempty"`
	Taken uint64 `json:"taken,omitempty"`
}

// BenchData is one benchmark's training/evaluation data: every static
// branch site (ascending PC) with its reference-trace tallies. It is
// the payload of the `ls` result-cache entry kind and rides the study
// checkpoint, so it must marshal deterministically — it does: fixed
// slice orders, no maps.
type BenchData struct {
	Bench string `json:"bench"`
	Sites []Site `json:"sites"`
	// Unknown counts observed branch events at addresses the static
	// extractor did not enumerate. Always zero for well-formed images;
	// kept as a tripwire.
	Unknown uint64 `json:"unknown,omitempty"`
}

// Branches is the total resolved conditional branches of the trace.
func (b *BenchData) Branches() uint64 {
	var n uint64
	for i := range b.Sites {
		n += b.Sites[i].Count
	}
	return n
}
