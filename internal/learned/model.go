// Models: logistic regression trained by batch gradient descent, and a
// depth-bounded CART decision tree baseline. Both are trained on
// weighted soft-labeled examples — one example per executed branch
// site, label = observed taken fraction, weighted so every training
// benchmark contributes total weight 1 regardless of its dynamic
// branch volume.
//
// Determinism: examples are assembled in caller benchmark order and
// ascending site-PC order, gradient sums and split sweeps run in that
// fixed order, and all arithmetic is plain float64 — no randomness, no
// map iteration. Equal (config, data) pairs produce bit-equal models.
package learned

import (
	"fmt"
	"math"
	"sort"
)

// Model predicts a branch direction from a static feature vector.
type Model interface {
	// PredictTaken returns the predicted direction for the site.
	PredictTaken(x []float64) bool
	// Importances returns a per-feature importance score in
	// FeatureNames order (non-negative; scale is model-specific).
	Importances() []float64
}

// example is one weighted soft-labeled training point.
type example struct {
	x []float64
	w float64 // benchmark-normalized weight, > 0
	y float64 // observed taken fraction in [0,1]
}

// assemble flattens BenchData into the deterministic example list.
// Sites that never executed carry no evidence and are skipped.
func assemble(data []BenchData) []example {
	var out []example
	for bi := range data {
		b := &data[bi]
		total := b.Branches()
		if total == 0 {
			continue
		}
		for si := range b.Sites {
			s := &b.Sites[si]
			if s.Count == 0 {
				continue
			}
			out = append(out, example{
				x: s.X,
				w: float64(s.Count) / float64(total),
				y: float64(s.Taken) / float64(s.Count),
			})
		}
	}
	return out
}

// Train fits the configured model on the given benchmarks' data.
func Train(cfg Config, data []BenchData) (Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.withDefaults()
	ex := assemble(data)
	switch d.Model {
	case ModelTree:
		return trainTree(d, ex), nil
	default:
		return trainLogReg(d, ex), nil
	}
}

// LogReg is a logistic-regression model: predict taken iff
// sigmoid(W·x) >= 1/2, i.e. W·x >= 0.
type LogReg struct {
	W []float64 `json:"w"` // FeatureNames order; W[0] is the bias
}

func sigmoid(z float64) float64 {
	if z > 30 {
		return 1
	}
	if z < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

func dot(w, x []float64) float64 {
	var z float64
	for j := range w {
		z += w[j] * x[j]
	}
	return z
}

// PredictTaken implements Model.
func (m *LogReg) PredictTaken(x []float64) bool { return dot(m.W, x) >= 0 }

// Importances implements Model: |weight| per feature. Features share
// the [0,1] scale, so magnitudes are comparable.
func (m *LogReg) Importances() []float64 {
	out := make([]float64, len(m.W))
	for j, w := range m.W {
		out[j] = math.Abs(w)
	}
	return out
}

func trainLogReg(cfg Config, ex []example) *LogReg {
	nf := len(featureNames)
	w := make([]float64, nf)
	grad := make([]float64, nf)
	var totalW float64
	for i := range ex {
		totalW += ex[i].w
	}
	if totalW == 0 {
		return &LogReg{W: w}
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		for i := range ex {
			e := &ex[i]
			g := (sigmoid(dot(w, e.x)) - e.y) * e.w
			for j := range grad {
				grad[j] += g * e.x[j]
			}
		}
		inv := cfg.LearnRate / totalW
		for j := range w {
			p := grad[j] * inv
			if j > 0 { // no ridge on the bias
				p += cfg.LearnRate * cfg.L2 * w[j]
			}
			w[j] -= p
		}
	}
	return &LogReg{W: w}
}

// Tree is a depth-bounded CART decision tree over the feature vector.
type Tree struct {
	Root *TreeNode `json:"root"`
	gain []float64
}

// TreeNode is one tree node. Internal nodes route x[Feature] < Thresh
// to Left, else Right; leaves predict Taken with confidence P (the
// leaf's weighted taken fraction).
type TreeNode struct {
	Feature int       `json:"feature,omitempty"`
	Thresh  float64   `json:"thresh,omitempty"`
	Left    *TreeNode `json:"left,omitempty"`
	Right   *TreeNode `json:"right,omitempty"`
	Leaf    bool      `json:"leaf,omitempty"`
	Taken   bool      `json:"taken,omitempty"`
	P       float64   `json:"p,omitempty"`
}

// PredictTaken implements Model.
func (t *Tree) PredictTaken(x []float64) bool {
	n := t.Root
	for !n.Leaf {
		if x[n.Feature] < n.Thresh {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Taken
}

// Importances implements Model: total weighted impurity decrease
// contributed by splits on each feature.
func (t *Tree) Importances() []float64 {
	return append([]float64(nil), t.gain...)
}

// split accumulators: wT/wN are the weighted taken / not-taken masses.
type mass struct{ wT, wN float64 }

func (m mass) total() float64 { return m.wT + m.wN }

// score is the weighted Gini impurity times the node mass (up to the
// constant factor 2): minimizing the sum over children maximizes the
// split's purity gain.
func (m mass) score() float64 {
	t := m.total()
	if t == 0 {
		return 0
	}
	return m.wT * m.wN / t
}

func nodeMass(ex []example) mass {
	var m mass
	for i := range ex {
		m.wT += ex[i].w * ex[i].y
		m.wN += ex[i].w * (1 - ex[i].y)
	}
	return m
}

func leaf(m mass) *TreeNode {
	n := &TreeNode{Leaf: true, Taken: m.wT >= m.wN}
	if t := m.total(); t > 0 {
		n.P = m.wT / t
	}
	return n
}

func trainTree(cfg Config, ex []example) *Tree {
	t := &Tree{gain: make([]float64, len(featureNames))}
	t.Root = t.build(ex, cfg.TreeDepth)
	return t
}

func (t *Tree) build(ex []example, depth int) *TreeNode {
	m := nodeMass(ex)
	if depth == 0 || len(ex) < 2 || m.score() == 0 {
		return leaf(m)
	}
	// Best split: lowest child-score sum; ties break on the lowest
	// feature index, then the lowest threshold, for determinism.
	best := m.score()
	bestFeat, bestThresh := -1, 0.0
	order := make([]int, len(ex))
	for f := 1; f < len(featureNames); f++ { // 0 is the constant bias
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return ex[order[a]].x[f] < ex[order[b]].x[f]
		})
		var left mass
		right := m
		for k := 0; k+1 < len(order); k++ {
			e := &ex[order[k]]
			left.wT += e.w * e.y
			left.wN += e.w * (1 - e.y)
			right.wT -= e.w * e.y
			right.wN -= e.w * (1 - e.y)
			v, next := e.x[f], ex[order[k+1]].x[f]
			if v == next {
				continue
			}
			if s := left.score() + right.score(); s < best {
				best = s
				bestFeat = f
				bestThresh = (v + next) / 2
			}
		}
	}
	if bestFeat < 0 {
		return leaf(m)
	}
	t.gain[bestFeat] += m.score() - best
	var lo, hi []example
	for i := range ex {
		if ex[i].x[bestFeat] < bestThresh {
			lo = append(lo, ex[i])
		} else {
			hi = append(hi, ex[i])
		}
	}
	return &TreeNode{
		Feature: bestFeat,
		Thresh:  bestThresh,
		Left:    t.build(lo, depth-1),
		Right:   t.build(hi, depth-1),
	}
}

// Describe renders a short human-readable model summary for logs.
func Describe(m Model) string {
	switch m := m.(type) {
	case *LogReg:
		return fmt.Sprintf("logreg over %d features", len(m.W))
	case *Tree:
		n := 0
		var walk func(*TreeNode)
		walk = func(t *TreeNode) {
			if t == nil {
				return
			}
			n++
			walk(t.Left)
			walk(t.Right)
		}
		walk(m.Root)
		return fmt.Sprintf("tree with %d nodes", n)
	}
	return "unknown model"
}
