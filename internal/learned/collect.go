// Trace collection: a read-only observer that tallies per-site branch
// outcomes off the shared reference trace. The guest executes once; the
// collector rides dbt.RunMultiObserved next to the dynamic-predictor
// suite and perturbs nothing. Tallies are a pure function of the
// architectural branch stream, so they are bit-identical across worker
// counts, dispatch paths and profiling configurations.
package learned

import "repro/internal/dbt"

// Collector tallies branch outcomes per enumerated site. Not safe for
// concurrent use: the branch stream is architectural order, which is
// inherently serial.
type Collector struct {
	sites   []Site
	index   map[int32]int
	count   []uint64
	taken   []uint64
	unknown uint64
}

// NewCollector builds a collector over the extracted site table.
func NewCollector(sites []Site) *Collector {
	c := &Collector{
		sites: sites,
		index: make(map[int32]int, len(sites)),
		count: make([]uint64, len(sites)),
		taken: make([]uint64, len(sites)),
	}
	for i := range sites {
		c.index[sites[i].PC] = i
	}
	return c
}

// ObserveBranches implements dbt.TraceObserver.
func (c *Collector) ObserveBranches(evs []dbt.BranchEvent) {
	for _, ev := range evs {
		i, ok := c.index[ev.PC]
		if !ok {
			c.unknown++
			continue
		}
		c.count[i]++
		if ev.Taken {
			c.taken[i]++
		}
	}
}

// BenchData assembles the benchmark's training/evaluation record:
// the static site table annotated with the collected tallies.
func (c *Collector) BenchData(bench string) BenchData {
	out := BenchData{Bench: bench, Unknown: c.unknown}
	out.Sites = make([]Site, len(c.sites))
	for i := range c.sites {
		s := c.sites[i]
		s.Count = c.count[i]
		s.Taken = c.taken[i]
		out.Sites[i] = s
	}
	return out
}
