// External test package: the learned package must stay importable from
// internal/core (so tests reach spec through core without a cycle).
package learned_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/dbt"
	"repro/internal/learned"
	"repro/internal/spec"
)

const testScale = 0.001

// collect runs one benchmark's cheap collection pass: extract sites,
// execute the reference input once, tally branches.
func collect(t *testing.T, name string) learned.BenchData {
	t.Helper()
	b := spec.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	img, tape, err := b.Build("ref", testScale)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := learned.ExtractSites(img)
	if err != nil {
		t.Fatal(err)
	}
	col := learned.NewCollector(sites)
	if _, _, err := dbt.RunMultiObserved(img, tape, []dbt.Config{{}}, []dbt.TraceObserver{col}); err != nil {
		t.Fatal(err)
	}
	return col.BenchData(b.Name)
}

func suiteData(t *testing.T) []learned.BenchData {
	t.Helper()
	var data []learned.BenchData
	for _, b := range spec.Suite() {
		data = append(data, collect(t, b.Name))
	}
	return data
}

func TestFingerprintCoversConfig(t *testing.T) {
	base := learned.DefaultConfig().Fingerprint()
	if base == "" {
		t.Fatal("empty fingerprint")
	}
	if (learned.Config{}).Fingerprint() != base {
		t.Fatal("zero config must default to the canonical fingerprint")
	}
	variants := []learned.Config{
		{Model: learned.ModelTree},
		{Epochs: 7},
		{LearnRate: 0.25},
		{L2: 0.5},
		{Model: learned.ModelTree, TreeDepth: 5},
	}
	seen := map[string]bool{base: true}
	for _, v := range variants {
		fp := v.Fingerprint()
		if seen[fp] {
			t.Fatalf("fingerprint collision for %+v: %s", v, fp)
		}
		seen[fp] = true
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (learned.Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate (defaults): %v", err)
	}
	bad := []learned.Config{
		{Model: "forest"},
		{Epochs: -1},
		{LearnRate: -0.5},
		{L2: -1},
		{Model: learned.ModelTree, TreeDepth: 99},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v must be rejected", c)
		}
	}
}

func TestExtractSitesDeterministicAndComplete(t *testing.T) {
	b := spec.ByName("vortex")
	img, _, err := b.Build("ref", testScale)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := learned.ExtractSites(img)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := learned.ExtractSites(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("repeated extraction differs")
	}
	if len(s1) == 0 {
		t.Fatal("no branch sites extracted")
	}
	for i := 1; i < len(s1); i++ {
		if s1[i].PC <= s1[i-1].PC {
			t.Fatalf("sites not PC-ascending at %d", i)
		}
	}
	for _, s := range s1 {
		if len(s.X) != learned.NumFeatures() {
			t.Fatalf("site %d: %d features, want %d", s.PC, len(s.X), learned.NumFeatures())
		}
		if s.X[0] != 1 {
			t.Fatalf("site %d: bias feature = %v", s.PC, s.X[0])
		}
		for j, v := range s.X {
			if v < 0 || v > 1 {
				t.Fatalf("site %d: feature %s = %v outside [0,1]", s.PC, learned.FeatureNames()[j], v)
			}
		}
	}
}

// Every observed branch event must land on an enumerated site: the
// static closure is a superset of dynamic discovery.
func TestCollectorSeesNoUnknownSites(t *testing.T) {
	for _, name := range []string{"gzip", "swim", "perlbmk", "vortex"} {
		data := collect(t, name)
		if data.Unknown != 0 {
			t.Fatalf("%s: %d branch events at unenumerated sites", name, data.Unknown)
		}
		if data.Branches() == 0 {
			t.Fatalf("%s: no branches observed", name)
		}
	}
}

func TestCollectDeterministicAcrossRuns(t *testing.T) {
	d1 := collect(t, "gzip")
	d2 := collect(t, "gzip")
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("repeated collection differs")
	}
	j1, err := json.Marshal(d1)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(d2)
	if string(j1) != string(j2) {
		t.Fatal("serialized collection differs")
	}
}

func TestTrainingIsDeterministic(t *testing.T) {
	data := []learned.BenchData{collect(t, "gzip"), collect(t, "swim"), collect(t, "art")}
	for _, cfg := range []learned.Config{{}, {Model: learned.ModelTree}} {
		r1, err := learned.CrossValidate(cfg, data)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := learned.CrossValidate(cfg, data)
		if err != nil {
			t.Fatal(err)
		}
		j1, _ := json.Marshal(r1)
		j2, _ := json.Marshal(r2)
		if string(j1) != string(j2) {
			t.Fatalf("%s: repeated cross validation differs", cfg.Fingerprint())
		}
	}
}

// The acceptance gate: held-out (leave-one-benchmark-out) learned
// prediction must beat the always-taken baseline over the full
// 26-benchmark suite.
func TestHeldOutBeatsAlwaysTaken(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite collection in -short mode")
	}
	data := suiteData(t)
	for _, cfg := range []learned.Config{{}, {Model: learned.ModelTree}} {
		res, err := learned.CrossValidate(cfg, data)
		if err != nil {
			t.Fatal(err)
		}
		branches, mis, takenMis := res.Totals()
		t.Logf("%s: held-out rate %.4f vs always-taken %.4f over %d branches",
			cfg.Fingerprint(), res.Rate(), res.TakenRate(), branches)
		for _, f := range res.Folds {
			t.Logf("  %-10s learned %.4f taken %.4f (%d branches)", f.Bench, f.Rate(), f.TakenRate(), f.Branches)
		}
		if mis >= takenMis {
			t.Errorf("%s: held-out mispredicts %d not better than always-taken %d",
				cfg.Fingerprint(), mis, takenMis)
		}
	}
}
