// Leave-one-benchmark-out cross validation. Every reported number is
// held out: fold i trains on all benchmarks except i and scores the
// model on benchmark i's reference-trace tallies. Evaluation is
// analytic — a static prediction per site, scored against the site's
// tallies — so it needs no replay and is exact.
package learned

import "fmt"

// FoldEval is one benchmark's held-out evaluation.
type FoldEval struct {
	Bench string `json:"bench"`
	// Branches is the benchmark's resolved conditional-branch volume.
	Branches uint64 `json:"branches"`
	// Mispredicts counts branches the held-out model got wrong.
	Mispredicts uint64 `json:"mispredicts"`
	// TakenMispredicts is the always-taken baseline on the same stream.
	TakenMispredicts uint64 `json:"taken_mispredicts"`
}

// Rate is the held-out mispredict rate (0 on an empty stream).
func (f FoldEval) Rate() float64 {
	if f.Branches == 0 {
		return 0
	}
	return float64(f.Mispredicts) / float64(f.Branches)
}

// TakenRate is the always-taken mispredict rate on the same stream.
func (f FoldEval) TakenRate() float64 {
	if f.Branches == 0 {
		return 0
	}
	return float64(f.TakenMispredicts) / float64(f.Branches)
}

// Eval scores a model's static predictions against a benchmark's
// tallies. A site predicted taken contributes its not-taken count as
// mispredicts, and vice versa.
func Eval(m Model, b *BenchData) FoldEval {
	out := FoldEval{Bench: b.Bench}
	for i := range b.Sites {
		s := &b.Sites[i]
		if s.Count == 0 {
			continue
		}
		out.Branches += s.Count
		out.TakenMispredicts += s.Count - s.Taken
		if m.PredictTaken(s.X) {
			out.Mispredicts += s.Count - s.Taken
		} else {
			out.Mispredicts += s.Taken
		}
	}
	return out
}

// CVResult is the full cross-validation outcome plus the model fit on
// every benchmark (the deployable artifact the JSON dump reports).
type CVResult struct {
	// Fingerprint identifies the config + feature schema that produced
	// this result.
	Fingerprint string `json:"fingerprint"`
	// Model is the configured model family.
	Model string `json:"model"`
	// FeatureNames is the feature order of Weights/Importances.
	FeatureNames []string `json:"feature_names"`
	// Folds holds one held-out evaluation per benchmark, in input
	// order.
	Folds []FoldEval `json:"folds"`
	// Weights is the full-fit logistic-regression weight vector
	// (logreg only).
	Weights []float64 `json:"weights,omitempty"`
	// Tree is the full-fit decision tree (tree only).
	Tree *TreeNode `json:"tree,omitempty"`
	// Importances is the full-fit model's per-feature importance.
	Importances []float64 `json:"importances"`
}

// Totals sums the folds' branch and mispredict counts.
func (r *CVResult) Totals() (branches, mispredicts, takenMispredicts uint64) {
	for _, f := range r.Folds {
		branches += f.Branches
		mispredicts += f.Mispredicts
		takenMispredicts += f.TakenMispredicts
	}
	return
}

// Rate is the suite-wide held-out mispredict rate.
func (r *CVResult) Rate() float64 {
	b, m, _ := r.Totals()
	if b == 0 {
		return 0
	}
	return float64(m) / float64(b)
}

// TakenRate is the suite-wide always-taken mispredict rate.
func (r *CVResult) TakenRate() float64 {
	b, _, t := r.Totals()
	if b == 0 {
		return 0
	}
	return float64(t) / float64(b)
}

// FoldFor returns the named benchmark's held-out evaluation.
func (r *CVResult) FoldFor(bench string) (FoldEval, bool) {
	for _, f := range r.Folds {
		if f.Bench == bench {
			return f, true
		}
	}
	return FoldEval{}, false
}

// CrossValidate runs leave-one-benchmark-out cross validation over the
// given benchmark data (caller order is preserved and part of the
// deterministic contract — pass benchmarks in suite order) and fits
// the final model on all of it.
func CrossValidate(cfg Config, data []BenchData) (*CVResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(data) < 2 {
		return nil, fmt.Errorf("learned: cross validation needs >= 2 benchmarks, have %d", len(data))
	}
	d := cfg.withDefaults()
	res := &CVResult{
		Fingerprint:  d.Fingerprint(),
		Model:        d.Model,
		FeatureNames: FeatureNames(),
	}
	train := make([]BenchData, 0, len(data)-1)
	for i := range data {
		train = train[:0]
		for j := range data {
			if j != i {
				train = append(train, data[j])
			}
		}
		m, err := Train(d, train)
		if err != nil {
			return nil, err
		}
		res.Folds = append(res.Folds, Eval(m, &data[i]))
	}
	full, err := Train(d, data)
	if err != nil {
		return nil, err
	}
	res.Importances = full.Importances()
	switch m := full.(type) {
	case *LogReg:
		res.Weights = m.W
	case *Tree:
		res.Tree = m.Root
	}
	return res, nil
}
