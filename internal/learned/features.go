// Static feature extraction. ExtractSites enumerates every
// conditional-branch site the translator can discover at run time and
// computes its feature vector from the image alone — no execution, no
// profile.
//
// Site identity matches the observer rail exactly: dbt.BranchEvent.PC
// is the entry address of the *dynamic* block ending in the branch, and
// dynamic blocks run from their entry to the first block-ending
// instruction regardless of static leaders. The extractor therefore
// replays the translator's discovery rule as a static closure: start
// from the image entry, scan each block to its terminator, and follow
// every statically known successor (branch targets, fall-throughs,
// call targets and return sites, jump-table targets). The resulting
// site set is a superset of what any execution can observe, so every
// observed event maps to exactly one enumerated site.
//
// Loop-shape features come from internal/cfg's dominator and
// natural-loop analyses over the static CFG; sites map into that graph
// by the block containing their terminator.
package learned

import (
	"math"
	"sort"

	"repro/internal/cfg"
	"repro/internal/guest"
	"repro/internal/isa"
)

// maxBlockLen mirrors the translator's block-length cap.
const maxBlockLen = 4096

// writesRd reports whether the opcode writes its Rd register.
func writesRd(op isa.Op) bool {
	switch op {
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpAddi, isa.OpLoadi, isa.OpLuhi,
		isa.OpMov, isa.OpLoad, isa.OpIn, isa.OpFadd, isa.OpFmul, isa.OpFdiv:
		return true
	}
	return false
}

// ExtractSites enumerates the image's conditional-branch sites in
// ascending PC order with their feature vectors. The walk is a pure
// function of the image bytes, so equal images yield bit-equal
// feature tables.
func ExtractSites(img *guest.Image) ([]Site, error) {
	g, err := cfg.Build(img)
	if err != nil {
		return nil, err
	}
	code := make([]isa.Inst, len(img.Code))
	for pc, w := range img.Code {
		in, err := isa.Decode(w)
		if err != nil {
			return nil, err
		}
		code[pc] = in
	}
	loops := g.NaturalLoops()
	loopHead := make(map[int]bool, len(loops))
	for _, l := range loops {
		loopHead[l.Head] = true
	}
	// containing maps every covered address to the start of the static
	// block containing it, for loop-membership lookups.
	containing := make(map[int]int, len(img.Code))
	for _, start := range g.Starts() {
		b := g.Blocks[start]
		for pc := b.Start; pc <= b.End; pc++ {
			containing[pc] = start
		}
	}

	// Closure over the translator's dynamic block discovery.
	entries := []int{img.Entry}
	seen := map[int]bool{img.Entry: true}
	push := func(pc int) {
		if pc >= 0 && pc < len(code) && !seen[pc] {
			seen[pc] = true
			entries = append(entries, pc)
		}
	}
	type dynBlock struct {
		entry int
		term  int // terminator address; -1 if the scan ran off the image
	}
	var blocks []dynBlock
	for i := 0; i < len(entries); i++ {
		entry := entries[i]
		term := -1
		for pc := entry; pc < len(code) && pc-entry < maxBlockLen; pc++ {
			if code[pc].Op.EndsBlock() {
				term = pc
				break
			}
		}
		blocks = append(blocks, dynBlock{entry: entry, term: term})
		if term < 0 {
			continue // malformed path: the translator would fault here
		}
		in := code[term]
		switch {
		case in.Op.IsCondBranch():
			push(term + int(in.Imm))
			push(term + 1)
		case in.Op == isa.OpJmp:
			push(term + int(in.Imm))
		case in.Op == isa.OpCall:
			push(term + int(in.Imm))
			push(term + 1)
		case in.Op == isa.OpJr:
			for _, t := range img.JumpTables[term] {
				push(t)
			}
		}
	}

	// pathEndsRet: the successor path from pc reaches ret/halt before
	// any other control transfer.
	pathEndsRet := func(pc int) bool {
		for n := 0; pc >= 0 && pc < len(code) && n < maxBlockLen; n++ {
			op := code[pc].Op
			if op.EndsBlock() {
				return op == isa.OpRet || op == isa.OpHalt
			}
			pc++
		}
		return false
	}
	isJoin := func(pc int) bool {
		return len(g.Preds[pc]) >= 2
	}
	inLoopBody := func(l cfg.Loop, pc int) bool {
		start, ok := containing[pc]
		return ok && l.Body[start]
	}

	var sites []Site
	for _, db := range blocks {
		if db.term < 0 || !code[db.term].Op.IsCondBranch() {
			continue
		}
		br := code[db.term]
		takenPC := db.term + int(br.Imm)
		fallPC := db.term + 1
		x := make([]float64, len(featureNames))
		set := func(name string, v float64) {
			for j, n := range featureNames {
				if n == name {
					x[j] = v
					return
				}
			}
			panic("learned: unknown feature " + name)
		}
		x[0] = 1 // bias
		if br.Imm <= 0 {
			set("backward", 1)
		}
		mag := math.Log2(1+math.Abs(float64(br.Imm))) / float64(isa.ImmBits)
		set("disp_mag", math.Min(mag, 1))
		if loopHead[takenPC] {
			set("taken_loop_head", 1)
		}
		depth := 0
		takenExits, fallExits := false, false
		if start, ok := containing[db.term]; ok {
			for _, l := range loops {
				if !l.Body[start] {
					continue
				}
				depth++
				if !inLoopBody(l, takenPC) {
					takenExits = true
				}
				if !inLoopBody(l, fallPC) {
					fallExits = true
				}
			}
		}
		set("loop_depth", math.Min(float64(depth)/4, 1))
		if takenExits {
			set("taken_exits_loop", 1)
		}
		if fallExits {
			set("fall_exits_loop", 1)
		}
		switch br.Op {
		case isa.OpBeq:
			set("op_beq", 1)
		case isa.OpBne:
			set("op_bne", 1)
		case isa.OpBlt:
			set("op_blt", 1)
		case isa.OpBge:
			set("op_bge", 1)
		}
		var mem, flt, in float64
		n := float64(db.term - db.entry + 1)
		for pc := db.entry; pc <= db.term; pc++ {
			op := code[pc].Op
			switch {
			case op.IsMemory():
				mem++
			case op.IsFloat():
				flt++
			case op == isa.OpIn:
				in++
			}
		}
		set("frac_mem", mem/n)
		set("frac_float", flt/n)
		set("frac_in", in/n)
		set("block_len", math.Min(math.Log2(1+n)/8, 1))
		if pathEndsRet(takenPC) {
			set("taken_ret", 1)
		}
		if pathEndsRet(fallPC) {
			set("fall_ret", 1)
		}
		if isJoin(takenPC) {
			set("taken_join", 1)
		}
		if isJoin(fallPC) {
			set("fall_join", 1)
		}
		// Operand provenance: the most recent in-block definition of
		// either compared register. A load at a small constant offset is
		// the strongest signal in parameterized code — it separates
		// branch sites that are otherwise statically identical.
		defFound := false
		for pc := db.term - 1; pc >= db.entry; pc-- {
			def := code[pc]
			if !writesRd(def.Op) || (def.Rd != br.Rs && def.Rd != br.Rt) {
				continue
			}
			defFound = true
			switch def.Op {
			case isa.OpLoadi:
				set("cmp_def_loadi", 1)
			case isa.OpIn:
				set("cmp_def_in", 1)
			case isa.OpLoad:
				if def.Imm >= 0 && def.Imm <= 9 {
					x[featureIndex("cmp_off_0")+int(def.Imm)] = 1
				} else {
					set("cmp_off_other", 1)
				}
			}
			break
		}
		if !defFound {
			set("cmp_def_none", 1)
		}
		sites = append(sites, Site{PC: int32(db.entry), X: x})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].PC < sites[j].PC })
	return sites, nil
}

// featureIndex returns the index of a named feature; it panics on an
// unknown name (a programming error, not an input error).
func featureIndex(name string) int {
	for j, n := range featureNames {
		if n == name {
			return j
		}
	}
	panic("learned: unknown feature " + name)
}
