package study

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/learned"
	"repro/internal/resultcache"
	"repro/internal/spec"
)

// learnedConfig runs the full spec suite with the learned class on. One
// threshold suffices: the collected tallies are a property of the
// reference trace, which no ladder shapes.
func learnedConfig(parallelism int, independent bool) Config {
	return Config{
		Scale:           0.001,
		Thresholds:      []float64{100},
		Parallelism:     parallelism,
		IndependentRuns: independent,
		Learned:         &learned.Config{Model: learned.ModelLogReg},
	}
}

// learnedArtifacts serializes everything the learned class reports —
// the cross-validated fit and the two appended figures — for
// byte-identity comparison.
func learnedArtifacts(t *testing.T, res *Results) []byte {
	t.Helper()
	if res.Learned == nil {
		t.Fatal("study produced no learned fit")
	}
	out, err := json.Marshal(struct {
		CV   *learned.CVResult
		Figs []Figure
	}{res.Learned, res.learnedFigures()})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLearnedDeterminismAcrossWorkersAndModes is the satellite
// determinism requirement: the cross-validated fit and figl1/figl2 are
// byte-identical between repeat runs, between a 1-worker and a
// GOMAXPROCS-worker run, and between shared-trace and independent-runs
// mode.
func TestLearnedDeterminismAcrossWorkersAndModes(t *testing.T) {
	ref, err := Run(learnedConfig(1, false))
	if err != nil {
		t.Fatal(err)
	}
	refBytes := learnedArtifacts(t, ref)
	if len(ref.Learned.Folds) != len(ref.Series) {
		t.Fatalf("%d folds for %d benchmarks", len(ref.Learned.Folds), len(ref.Series))
	}
	for i := range ref.Series {
		s := &ref.Series[i]
		if s.Learned == nil || s.Learned.Branches() == 0 {
			t.Fatalf("%s: no learned collection", s.Name)
		}
		if s.Learned.Unknown != 0 {
			t.Fatalf("%s: %d branch events at unextracted sites", s.Name, s.Learned.Unknown)
		}
	}
	for _, alt := range []struct {
		name string
		cfg  Config
	}{
		{"repeat run", learnedConfig(1, false)},
		{"maxprocs workers", learnedConfig(runtime.GOMAXPROCS(0), false)},
		{"independent runs", learnedConfig(runtime.GOMAXPROCS(0), true)},
	} {
		got, err := Run(alt.cfg)
		if err != nil {
			t.Fatalf("%s: %v", alt.name, err)
		}
		if !reflect.DeepEqual(learnedArtifacts(t, got), refBytes) {
			t.Errorf("%s: learned fit or figures diverge from the reference run", alt.name)
		}
	}
}

// TestLearnedHeldOutBeatsAlwaysTaken is the acceptance gate at study
// level: over the full suite, the leave-one-benchmark-out mispredict
// rate must be strictly better than the always-taken baseline.
func TestLearnedHeldOutBeatsAlwaysTaken(t *testing.T) {
	res, err := Run(learnedConfig(0, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Learned == nil {
		t.Fatal("no learned fit")
	}
	if got, base := res.Learned.Rate(), res.Learned.TakenRate(); got >= base {
		t.Fatalf("held-out learned rate %.4f does not beat always-taken %.4f", got, base)
	}
}

// TestLearnedDoesNotPerturbStudyResults pins the read-only-observer
// contract: a study with the learned class reports the exact
// measurement data of one without, and only appends figures — the
// legacy figure set stays byte-identical.
func TestLearnedDoesNotPerturbStudyResults(t *testing.T) {
	plainRes, err := Run(goldenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	withLearned := goldenConfig(t)
	withLearned.Learned = &learned.Config{Model: learned.ModelLogReg}
	learnedRes, err := Run(withLearned)
	if err != nil {
		t.Fatal(err)
	}

	for i := range plainRes.Series {
		p, q := plainRes.Series[i], learnedRes.Series[i]
		q.Learned = nil
		if !reflect.DeepEqual(p, q) {
			t.Errorf("%s: measurement data changed when the learned class observes", p.Name)
		}
	}

	plainFigs, learnedFigs := plainRes.Figures(), learnedRes.Figures()
	if len(learnedFigs) != len(plainFigs)+2 {
		t.Fatalf("learned run has %d figures, want %d (+figl1/figl2)", len(learnedFigs), len(plainFigs))
	}
	a, err := json.Marshal(plainFigs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(learnedFigs[:len(plainFigs)])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("paper figures are not byte-identical when the learned class observes")
	}
	if learnedFigs[len(plainFigs)].ID != "figl1" || learnedFigs[len(plainFigs)+1].ID != "figl2" {
		t.Errorf("appended figures are %q, %q; want figl1, figl2",
			learnedFigs[len(plainFigs)].ID, learnedFigs[len(plainFigs)+1].ID)
	}
}

// TestLearnedCacheWarmRerun extends the warm-rerun guarantee to the
// `ls` entry kind: a warm rerun with the same model executes zero guest
// blocks and replays identical collections, a changed model fingerprint
// re-executes, and -cacheverify recomputes everything over the warmed
// store without divergence.
func TestLearnedCacheWarmRerun(t *testing.T) {
	dir := t.TempDir()
	withLearned := func(model string, verify bool) Config {
		cfg := goldenConfig(t)
		store, err := resultcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = store
		cfg.CacheVerify = verify
		cfg.Learned = &learned.Config{Model: model}
		return cfg
	}

	coldRes, err := Run(withLearned(learned.ModelLogReg, false))
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.Perf.BlocksExecuted == 0 {
		t.Fatal("cold study executed no guest blocks")
	}

	warmRes, err := Run(withLearned(learned.ModelLogReg, false))
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Perf.BlocksExecuted != 0 {
		t.Fatalf("warm rerun executed %d guest blocks, want 0 (ls entry should replay)", warmRes.Perf.BlocksExecuted)
	}
	if !reflect.DeepEqual(coldRes.Series, warmRes.Series) {
		t.Fatal("warm series (including learned collections) differ from cold")
	}
	if !reflect.DeepEqual(learnedArtifacts(t, coldRes), learnedArtifacts(t, warmRes)) {
		t.Fatal("warm learned fit/figures are not byte-identical to cold")
	}

	// The tree model shares features and tallies but carries a different
	// fingerprint, so its collection is not in the store: the reference
	// trace re-executes, and the collected data still matches.
	altRes, err := Run(withLearned(learned.ModelTree, false))
	if err != nil {
		t.Fatal(err)
	}
	if altRes.Perf.BlocksExecuted == 0 {
		t.Fatal("changed model fingerprint must re-execute the reference trace")
	}
	for i := range altRes.Series {
		if !reflect.DeepEqual(altRes.Series[i].Learned, coldRes.Series[i].Learned) {
			t.Errorf("%s: collected data changed across model fingerprints", altRes.Series[i].Name)
		}
	}

	// Differential verify over the warmed store: everything re-executes
	// and every cached ls entry must match the recomputed collection.
	vres, err := Run(withLearned(learned.ModelLogReg, true))
	if err != nil {
		t.Fatal(err)
	}
	if vres.Perf.BlocksExecuted == 0 {
		t.Fatal("verify mode must execute for real")
	}
	if vres.Perf.ResultCacheHits == 0 {
		t.Fatal("verify run saw no cache hits over a warmed store")
	}
	if !reflect.DeepEqual(coldRes.Series, vres.Series) {
		t.Fatal("verify-mode series differ from cold series")
	}
}

// TestLearnedCheckpointCompatibility: learned runs checkpoint and
// resume like any other, and a checkpoint written with one model
// fingerprint refuses to resume a run with another — the per-site
// feature vectors it carries are only meaningful under the fingerprint
// that produced them.
func TestLearnedCheckpointCompatibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	cfg := goldenConfig(t)
	cfg.Learned = &learned.Config{Model: learned.ModelLogReg}
	cfg.Checkpoint = path
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	resumeCfg := goldenConfig(t)
	resumeCfg.Learned = &learned.Config{Model: learned.ModelLogReg}
	resumeCfg.Checkpoint = path
	resumeCfg.Resume = true
	resumed, err := Run(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Perf.ResumedSeries != len(resumed.Series) {
		t.Fatalf("resumed %d of %d series", resumed.Perf.ResumedSeries, len(resumed.Series))
	}
	if !reflect.DeepEqual(first.Series, resumed.Series) {
		t.Fatal("resumed series (including learned collections) differ")
	}
	if !reflect.DeepEqual(learnedArtifacts(t, first), learnedArtifacts(t, resumed)) {
		t.Fatal("resumed learned fit differs from the original run")
	}

	for name, alt := range map[string]*learned.Config{
		"different model": {Model: learned.ModelTree},
		"learned off":     nil,
	} {
		mismatch := goldenConfig(t)
		mismatch.Learned = alt
		mismatch.Checkpoint = path
		mismatch.Resume = true
		if _, err := Run(mismatch); err == nil {
			t.Errorf("resume with %s must be rejected", name)
		}
	}
}

// TestValidateRejectsBadLearned covers the config-level gate.
func TestValidateRejectsBadLearned(t *testing.T) {
	for _, lc := range []learned.Config{
		{Model: "bogus"},
		{Model: learned.ModelLogReg, Epochs: -1},
		{Model: learned.ModelTree, TreeDepth: 99},
	} {
		lc := lc
		cfg := Config{Scale: 1, Thresholds: []float64{100}, Benchmarks: []*spec.Benchmark{spec.ByName("gzip")}, Learned: &lc}
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted learned config %+v", lc)
		}
	}
}

// TestGoldenLearnedFigures pins the learned corpus: the frozen golden
// configuration with the default logreg model must render figl1/figl2
// byte-identically to the committed file. The paper figures of that run
// are covered transitively by the read-only-observer test above.
func TestGoldenLearnedFigures(t *testing.T) {
	cfg := goldenConfig(t)
	cfg.Learned = &learned.Config{Model: learned.ModelLogReg}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	figs := res.Figures()
	if len(figs) < 2 {
		t.Fatalf("only %d figures", len(figs))
	}
	lfigs := figs[len(figs)-2:]
	if lfigs[0].ID != "figl1" || lfigs[1].ID != "figl2" {
		t.Fatalf("trailing figures are %q, %q; want figl1, figl2", lfigs[0].ID, lfigs[1].ID)
	}
	got, err := json.MarshalIndent(lfigs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_learned.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("golden_learned.json drifted from the committed corpus (regenerate with -update if intended)")
	}
}
