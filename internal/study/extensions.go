package study

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/spec"
)

// ExtensionRow is one benchmark's fixed-vs-adaptive comparison in the
// section-5 extension experiment.
type ExtensionRow struct {
	Name  string
	Class spec.Class
	// Side-exit rate per region entry, fixed vs adaptive translator.
	FixedSideExitRate    float64
	AdaptiveSideExitRate float64
	// Dissolved regions in the adaptive run.
	Dissolved int
	// Simulated relative performance: fixed cycles / adaptive cycles
	// (above 1 means adaptation pays off).
	AdaptiveSpeedup float64
	// Loop-back mismatch against AVEP with frozen counters vs with
	// continuous trip-count collection.
	FrozenLPMismatch     float64
	ContinuousLPMismatch float64
}

// ExtensionResults holds the extension experiment's rows.
type ExtensionResults struct {
	Threshold uint64
	Rows      []ExtensionRow
}

// RunExtensions executes the paper's section-5 proposals on the given
// benchmarks (default: the phased members plus a stationary control) at
// one retranslation threshold:
//
//   - adaptive retranslation: regions whose side-exit rate shows a
//     behaviour change are dissolved and rebuilt from fresh profiles;
//   - continuous trip-count profiling: loop regions keep lightweight
//     loop-back instrumentation alive, replacing the frozen trip-count
//     prediction.
func RunExtensions(benchNames []string, scale float64, paperT float64) (*ExtensionResults, error) {
	if len(benchNames) == 0 {
		benchNames = []string{"mcf", "gzip", "crafty", "wupwise", "vortex"}
	}
	if scale <= 0 {
		scale = 1.0
	}
	if paperT <= 0 {
		paperT = 2000
	}
	threshold := EffectiveThreshold(paperT, scale)
	out := &ExtensionResults{Threshold: threshold}
	for _, name := range benchNames {
		b := spec.ByName(name)
		if b == nil {
			return nil, fmt.Errorf("study: unknown benchmark %q", name)
		}
		row := ExtensionRow{Name: b.Name, Class: b.Class}

		img, tape, err := b.Build("ref", scale)
		if err != nil {
			return nil, err
		}
		avep, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
		if err != nil {
			return nil, err
		}

		type variant struct {
			adaptive   bool
			continuous bool
		}
		run := func(v variant) (metrics.Summary, *dbt.RunStats, error) {
			img, tape, err := b.Build("ref", scale)
			if err != nil {
				return metrics.Summary{}, nil, err
			}
			cfg := dbt.Config{
				Optimize: true, Threshold: threshold, RegisterTwice: true,
				Adaptive:            v.adaptive,
				ContinuousTripCount: v.continuous,
				Perf:                perfmodel.NewAccumulator(perfmodel.DefaultParams()),
			}
			snap, stats, err := dbt.Run(img, tape, cfg)
			if err != nil {
				return metrics.Summary{}, nil, err
			}
			sum, _, err := core.Compare(snap, avep)
			return sum, stats, err
		}

		fixedSum, fixedStats, err := run(variant{})
		if err != nil {
			return nil, fmt.Errorf("study: %s fixed: %w", name, err)
		}
		_, adaptStats, err := run(variant{adaptive: true})
		if err != nil {
			return nil, fmt.Errorf("study: %s adaptive: %w", name, err)
		}
		contSum, _, err := run(variant{continuous: true})
		if err != nil {
			return nil, fmt.Errorf("study: %s continuous: %w", name, err)
		}

		if fixedStats.RegionEntries > 0 {
			row.FixedSideExitRate = float64(fixedStats.RegionSideExits) / float64(fixedStats.RegionEntries)
		}
		if adaptStats.RegionEntries > 0 {
			row.AdaptiveSideExitRate = float64(adaptStats.RegionSideExits) / float64(adaptStats.RegionEntries)
		}
		row.Dissolved = adaptStats.RegionsDissolved
		if adaptStats.Cycles > 0 {
			row.AdaptiveSpeedup = fixedStats.Cycles / adaptStats.Cycles
		}
		row.FrozenLPMismatch = fixedSum.LPMismatch
		row.ContinuousLPMismatch = contSum.LPMismatch
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the extension results as a text table.
func (e *ExtensionResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "section-5 extensions at T=%d: adaptive retranslation and continuous trip counts\n", e.Threshold)
	fmt.Fprintf(&b, "%-10s %-6s %14s %14s %10s %9s %12s %12s\n",
		"bench", "class", "sideExit(fix)", "sideExit(ada)", "dissolved", "speedup", "lpMis(froz)", "lpMis(cont)")
	for _, r := range e.Rows {
		fmt.Fprintf(&b, "%-10s %-6s %14.3f %14.3f %10d %9.3f %12.1f%% %12.1f%%\n",
			r.Name, r.Class, r.FixedSideExitRate, r.AdaptiveSideExitRate,
			r.Dissolved, r.AdaptiveSpeedup,
			r.FrozenLPMismatch*100, r.ContinuousLPMismatch*100)
	}
	return b.String()
}
