package study

import (
	"fmt"
	"strings"

	"repro/internal/textplot"
)

// MarkdownReport renders every figure of the results as a markdown
// section with a table (the format EXPERIMENTS.md embeds).
func (r *Results) MarkdownReport() string {
	var b strings.Builder
	for _, f := range r.Figures() {
		b.WriteString(f.Markdown())
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders one figure as a markdown table with its notes.
func (f Figure) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", f.ID, f.Title)
	b.WriteString("| T |")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %s |", s.Label)
	}
	b.WriteByte('\n')
	b.WriteString("|---|")
	for range f.Series {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&b, "| %s |", formatThreshold(x))
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %.4f |", s.Y[i])
			} else {
				b.WriteString(" - |")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	for _, g := range f.Gaps {
		fmt.Fprintf(&b, "\n*%s*\n", g)
	}
	return b.String()
}

// formatThreshold renders a paper-unit threshold compactly.
func formatThreshold(x float64) string {
	switch {
	case x >= 1e6 && x == float64(int64(x/1e6))*1e6:
		return fmt.Sprintf("%gM", x/1e6)
	case x >= 1e3 && x == float64(int64(x/1e3))*1e3:
		return fmt.Sprintf("%gk", x/1e3)
	default:
		return fmt.Sprintf("%g", x)
	}
}

// TextReport renders every figure as a plain-text table (and chart when
// charts is set), the cmd/inipstudy default output.
func (r *Results) TextReport(charts bool) string {
	var b strings.Builder
	for _, f := range r.Figures() {
		fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
		series := make([]textplot.Series, len(f.Series))
		for i, s := range f.Series {
			series[i] = textplot.Series{Label: s.Label, Y: s.Y}
		}
		b.WriteString(textplot.Table("T", f.X, series))
		if charts {
			b.WriteString(textplot.Chart(f.X, series, 72, 18))
		}
		for _, n := range f.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
		for _, g := range f.Gaps {
			fmt.Fprintf(&b, "%s\n", g)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
