package study

import (
	"strings"
	"testing"
)

func TestRunExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extension runs take seconds")
	}
	res, err := RunExtensions([]string{"mcf", "vortex"}, 0.1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var mcf, vortex *ExtensionRow
	for i := range res.Rows {
		switch res.Rows[i].Name {
		case "mcf":
			mcf = &res.Rows[i]
		case "vortex":
			vortex = &res.Rows[i]
		}
	}
	if mcf == nil || vortex == nil {
		t.Fatalf("rows: %+v", res.Rows)
	}
	// mcf is phased: adaptation must trigger and help, and continuous
	// trip counting must repair the loop classification.
	if mcf.Dissolved == 0 {
		t.Error("mcf: adaptive mode never dissolved a region")
	}
	if mcf.AdaptiveSpeedup <= 1.0 {
		t.Errorf("mcf: adaptive speedup %v, want > 1", mcf.AdaptiveSpeedup)
	}
	if mcf.ContinuousLPMismatch >= mcf.FrozenLPMismatch && mcf.FrozenLPMismatch > 0 {
		t.Errorf("mcf: continuous LP mismatch %v not below frozen %v",
			mcf.ContinuousLPMismatch, mcf.FrozenLPMismatch)
	}
	// vortex is stationary: adaptation must not fire.
	if vortex.Dissolved != 0 {
		t.Errorf("vortex: %d regions dissolved on a stationary benchmark", vortex.Dissolved)
	}
	text := res.Render()
	for _, want := range []string{"mcf", "vortex", "speedup", "dissolved"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func TestRunExtensionsUnknownBenchmark(t *testing.T) {
	if _, err := RunExtensions([]string{"nope"}, 0.1, 2000); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
