package study

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/spec"
)

// Series is one line of a figure: Y values over the figure's X axis.
type Series struct {
	Label string
	Y     []float64
}

// Figure is the data behind one of the paper's evaluation figures.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// X holds the paper-unit thresholds of each column.
	X []float64
	// Series holds one entry per plotted line.
	Series []Series
	// Notes carry reproduction caveats.
	Notes []string
	// Gaps name data this figure is missing because benchmarks were
	// excluded after absorbed unit failures (Degrade policy). They are
	// rendered in reports but excluded from JSON output, so a degraded
	// run's figures stay byte-identical to a clean run over the
	// surviving benchmarks.
	Gaps []string `json:"-"`
}

// accuracyIndexes returns ladder indexes for the accuracy figures
// (T >= 100, the paper's x-axis).
func (r *Results) accuracyIndexes() []int {
	var keep []int
	for i, t := range r.PaperT {
		if t >= 100 {
			keep = append(keep, i)
		}
	}
	return keep
}

func (r *Results) xValues(keep []int) []float64 {
	x := make([]float64, len(keep))
	for i, ti := range keep {
		x[i] = r.PaperT[ti]
	}
	return x
}

// constSeries builds a reference line with a constant value.
func constSeries(label string, v float64, n int) Series {
	y := make([]float64, n)
	for i := range y {
		y[i] = v
	}
	return Series{Label: label, Y: y}
}

// perBenchSeries builds one series per surviving benchmark of the
// class (failed benchmarks are annotated in Gaps instead of plotted).
func (r *Results) perBenchSeries(c spec.Class, keep []int, f func(*core.ThresholdResult, *BenchmarkSeries) float64) []Series {
	var out []Series
	for bi := range r.Series {
		s := &r.Series[bi]
		if s.Class != c || !s.ok() {
			continue
		}
		y := make([]float64, len(keep))
		for k, ti := range keep {
			y[k] = f(&s.PerT[ti], s)
		}
		out = append(out, Series{Label: s.Name, Y: y})
	}
	return out
}

func sdBP(tr *core.ThresholdResult, _ *BenchmarkSeries) float64 { return tr.Summary.SdBP }
func bpMis(tr *core.ThresholdResult, _ *BenchmarkSeries) float64 {
	return tr.Summary.BPMismatch
}
func sdCP(tr *core.ThresholdResult, _ *BenchmarkSeries) float64 { return tr.Summary.SdCP }
func sdLP(tr *core.ThresholdResult, _ *BenchmarkSeries) float64 { return tr.Summary.SdLP }
func lpMis(tr *core.ThresholdResult, _ *BenchmarkSeries) float64 {
	return tr.Summary.LPMismatch
}

// Figure8 reproduces "Standard deviations of branch probabilities":
// suite-average Sd.BP(T) for INT and FP with the Sd.BP(train) reference
// lines.
func (r *Results) Figure8() Figure {
	keep := r.accuracyIndexes()
	return Figure{
		ID: "fig8", Title: "Standard deviations of branch probabilities",
		XLabel: "retranslation threshold", YLabel: "Sd.BP",
		X: r.xValues(keep),
		Series: []Series{
			{Label: "int", Y: r.avgOver(spec.INT, keep, sdBP)},
			{Label: "fp", Y: r.avgOver(spec.FP, keep, sdBP)},
			constSeries("int train", r.avgTrain(spec.INT, func(s metrics.Summary) float64 { return s.SdBP }), len(keep)),
			constSeries("fp train", r.avgTrain(spec.FP, func(s metrics.Summary) float64 { return s.SdBP }), len(keep)),
		},
	}
}

// Figure9 reproduces the per-benchmark Sd.BP for SPEC2000 INT.
func (r *Results) Figure9() Figure {
	keep := r.accuracyIndexes()
	return Figure{
		ID: "fig9", Title: "Standard deviations of branch probabilities (INT benchmarks)",
		XLabel: "retranslation threshold", YLabel: "Sd.BP",
		X:      r.xValues(keep),
		Series: r.perBenchSeries(spec.INT, keep, sdBP),
	}
}

// Figure10 reproduces "Branch probability mismatch rates" (suite
// averages with train references).
func (r *Results) Figure10() Figure {
	keep := r.accuracyIndexes()
	return Figure{
		ID: "fig10", Title: "Branch probability mismatch rates",
		XLabel: "retranslation threshold", YLabel: "mismatch rate",
		X: r.xValues(keep),
		Series: []Series{
			{Label: "int", Y: r.avgOver(spec.INT, keep, bpMis)},
			{Label: "fp", Y: r.avgOver(spec.FP, keep, bpMis)},
			constSeries("int train", r.avgTrain(spec.INT, func(s metrics.Summary) float64 { return s.BPMismatch }), len(keep)),
			constSeries("fp train", r.avgTrain(spec.FP, func(s metrics.Summary) float64 { return s.BPMismatch }), len(keep)),
		},
	}
}

// Figure11 reproduces per-benchmark BP mismatch rates for INT.
func (r *Results) Figure11() Figure {
	keep := r.accuracyIndexes()
	return Figure{
		ID: "fig11", Title: "Branch probability mismatch rates (INT benchmarks)",
		XLabel: "retranslation threshold", YLabel: "mismatch rate",
		X:      r.xValues(keep),
		Series: r.perBenchSeries(spec.INT, keep, bpMis),
	}
}

// Figure12 reproduces per-benchmark BP mismatch rates for FP.
func (r *Results) Figure12() Figure {
	keep := r.accuracyIndexes()
	return Figure{
		ID: "fig12", Title: "Branch probability mismatch rates (FP benchmarks)",
		XLabel: "retranslation threshold", YLabel: "mismatch rate",
		X:      r.xValues(keep),
		Series: r.perBenchSeries(spec.FP, keep, bpMis),
	}
}

// Figure13 reproduces "Standard deviation of completion probabilities".
func (r *Results) Figure13() Figure {
	keep := r.accuracyIndexes()
	return Figure{
		ID: "fig13", Title: "Standard deviation of completion probabilities",
		XLabel: "retranslation threshold", YLabel: "Sd.CP",
		X: r.xValues(keep),
		Series: []Series{
			{Label: "int", Y: r.avgOver(spec.INT, keep, sdCP)},
			{Label: "fp", Y: r.avgOver(spec.FP, keep, sdCP)},
			constSeries("int train*", r.avgTrainRegions(spec.INT, func(s metrics.Summary) float64 { return s.SdCP }), len(keep)),
			constSeries("fp train*", r.avgTrainRegions(spec.FP, func(s metrics.Summary) float64 { return s.SdCP }), len(keep)),
		},
		Notes: []string{
			"The paper does not compute Sd.CP(train): unoptimized runs form no regions (section 2.3).",
			"train* realizes the paper's section-5 proposal: regions formed offline over the training profile (threshold 2000).",
		},
	}
}

// Figure14 reproduces "Standard deviation of loop-back probabilities".
func (r *Results) Figure14() Figure {
	keep := r.accuracyIndexes()
	return Figure{
		ID: "fig14", Title: "Standard deviation of loop-back probabilities",
		XLabel: "retranslation threshold", YLabel: "Sd.LP",
		X: r.xValues(keep),
		Series: []Series{
			{Label: "int", Y: r.avgOver(spec.INT, keep, sdLP)},
			{Label: "fp", Y: r.avgOver(spec.FP, keep, sdLP)},
			constSeries("int train*", r.avgTrainRegions(spec.INT, func(s metrics.Summary) float64 { return s.SdLP }), len(keep)),
			constSeries("fp train*", r.avgTrainRegions(spec.FP, func(s metrics.Summary) float64 { return s.SdLP }), len(keep)),
		},
		Notes: []string{
			"The paper does not compute Sd.LP(train): unoptimized runs form no regions (section 2.3).",
			"train* realizes the paper's section-5 proposal: regions formed offline over the training profile (threshold 2000).",
		},
	}
}

// Figure15 reproduces "Loop-back probability mismatch rate" (suite
// averages over the trip-count classes).
func (r *Results) Figure15() Figure {
	keep := r.accuracyIndexes()
	return Figure{
		ID: "fig15", Title: "Loop-back probability mismatch rate",
		XLabel: "retranslation threshold", YLabel: "mismatch rate",
		X: r.xValues(keep),
		Series: []Series{
			{Label: "int", Y: r.avgOver(spec.INT, keep, lpMis)},
			{Label: "fp", Y: r.avgOver(spec.FP, keep, lpMis)},
		},
	}
}

// Figure16 reproduces per-benchmark LP mismatch rates for INT.
func (r *Results) Figure16() Figure {
	keep := r.accuracyIndexes()
	return Figure{
		ID: "fig16", Title: "Loop-back probability mismatch rate (INT benchmarks)",
		XLabel: "retranslation threshold", YLabel: "mismatch rate",
		X:      r.xValues(keep),
		Series: r.perBenchSeries(spec.INT, keep, lpMis),
	}
}

// Figure17 reproduces "Performance impact of initial profiles": cycles
// at the base threshold T=1 divided by cycles at T (higher is better).
func (r *Results) Figure17() Figure {
	baseIdx := r.tIndex(1)
	var keep []int
	for i := range r.PaperT {
		if r.PaperT[i] >= 1 {
			keep = append(keep, i)
		}
	}
	rel := func(class spec.Class, skip string) []float64 {
		out := make([]float64, len(keep))
		for k, ti := range keep {
			sum, n := 0.0, 0
			for bi := range r.Series {
				s := &r.Series[bi]
				if s.Class != class || s.Name == skip || !s.ok() {
					continue
				}
				base := s.PerT[baseIdx].Cycles
				cur := s.PerT[ti].Cycles
				if base > 0 && cur > 0 {
					sum += base / cur
					n++
				}
			}
			if n > 0 {
				out[k] = sum / float64(n)
			}
		}
		return out
	}
	fig := Figure{
		ID: "fig17", Title: "Performance impact of initial profiles (relative to threshold 1)",
		XLabel: "retranslation threshold", YLabel: "relative performance",
		X: r.xValues(keep),
		Series: []Series{
			{Label: "int", Y: rel(spec.INT, "")},
			{Label: "int no perl", Y: rel(spec.INT, "perlbmk")},
			{Label: "fp", Y: rel(spec.FP, "")},
		},
		Notes: []string{"Simulated cycle model (see internal/perfmodel); the paper measured wall clock on Itanium 2."},
	}
	if baseIdx < 0 {
		fig.Notes = append(fig.Notes, "WARNING: ladder lacks T=1; relative performance undefined.")
	}
	return fig
}

// Figure18 reproduces "Profiling operations required for training run
// and for initial profiles" (normalized so the training run is 1).
func (r *Results) Figure18() Figure {
	keep := r.accuracyIndexes()
	norm := func(class spec.Class) []float64 {
		out := make([]float64, len(keep))
		for k, ti := range keep {
			sum, n := 0.0, 0
			for bi := range r.Series {
				s := &r.Series[bi]
				if s.Class != class || s.TrainOps == 0 || !s.ok() {
					continue
				}
				sum += float64(s.PerT[ti].ProfilingOps) / float64(s.TrainOps)
				n++
			}
			if n > 0 {
				out[k] = sum / float64(n)
			}
		}
		return out
	}
	return Figure{
		ID: "fig18", Title: "Profiling operations (training run = 1)",
		XLabel: "retranslation threshold", YLabel: "normalized profiling ops",
		X: r.xValues(keep),
		Series: []Series{
			{Label: "int", Y: norm(spec.INT)},
			{Label: "fp", Y: norm(spec.FP)},
			constSeries("train", 1, len(keep)),
		},
	}
}

// gapNotes describes every benchmark a degraded run excluded from the
// figures, one line per recorded failure, in suite order (failures
// within a benchmark are already sorted by unit and threshold).
func (r *Results) gapNotes() []string {
	var out []string
	for i := range r.Series {
		s := &r.Series[i]
		for _, f := range s.Failures {
			site := f.Unit
			if f.T != 0 {
				site = fmt.Sprintf("%s@T=%d", f.Unit, f.T)
			}
			out = append(out, fmt.Sprintf("gap: %s excluded — %s failed after %d attempt(s): %s",
				f.Bench, site, f.Attempts, f.Err))
		}
	}
	return out
}

// Figures returns all evaluation figures in paper order, each
// annotated with the gaps a degraded run left.
func (r *Results) Figures() []Figure {
	figs := []Figure{
		r.Figure8(), r.Figure9(), r.Figure10(), r.Figure11(), r.Figure12(),
		r.Figure13(), r.Figure14(), r.Figure15(), r.Figure16(),
		r.Figure17(), r.Figure18(),
	}
	figs = append(figs, r.predictorFigures()...)
	figs = append(figs, r.sampleFigures()...)
	figs = append(figs, r.learnedFigures()...)
	if gaps := r.gapNotes(); len(gaps) > 0 {
		for i := range figs {
			figs[i].Gaps = gaps
		}
	}
	return figs
}

// FigureByID returns the named figure ("fig8".."fig18", plus
// "figp1"/"figp2" when the study ran predictors, "figs1"/"figs2" when
// it swept sampled-profiling periods, and "figl1"/"figl2" when it fit
// the learned static model), or false.
func (r *Results) FigureByID(id string) (Figure, bool) {
	for _, f := range r.Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// String renders a one-line summary of a figure for logs.
func (f Figure) String() string {
	return fmt.Sprintf("%s: %s (%d series over %d thresholds)", f.ID, f.Title, len(f.Series), len(f.X))
}
