// Package study orchestrates the full reproduction: it sweeps the
// retranslation-threshold ladder over the synthetic SPEC2000 suite and
// derives the data behind every figure of the paper's evaluation
// (Figures 8-18).
//
// All thresholds are specified in paper units and scaled — together with
// benchmark lengths and phase boundaries — by a single Scale factor.
// Because every reported quantity is a probability, a normalized count,
// or a ratio of cycle totals, uniform scaling preserves the figures'
// shapes while keeping runs laptop-sized.
package study

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/spec"
)

// PaperThresholds is the threshold ladder of the accuracy figures
// (Figures 8-16, 18), in paper units.
var PaperThresholds = []float64{100, 200, 500, 1e3, 2e3, 5e3, 1e4, 2e4, 4e4, 8e4, 16e4, 1e6, 4e6}

// AllThresholds extends the ladder with the small values of the
// performance figure (Figure 17), whose base is T=1.
var AllThresholds = append([]float64{1, 50}, PaperThresholds...)

// Config controls a study run.
type Config struct {
	// Scale multiplies paper-unit thresholds, run lengths and phase
	// boundaries. The default of 1.0 runs the paper's actual threshold
	// ladder (benchmark run lengths are already laptop-sized, see
	// package spec); smaller values trade sampling fidelity at the
	// bottom of the ladder for speed.
	Scale float64
	// Thresholds is the paper-unit ladder (default AllThresholds).
	Thresholds []float64
	// Benchmarks selects the suite subset (default spec.Suite()).
	Benchmarks []*spec.Benchmark
	// PoolTrigger passes through to the translator.
	PoolTrigger int
	// Parallelism bounds concurrently-running work units (default
	// GOMAXPROCS, matching the scheduler's own default — unlike NumCPU
	// it respects cgroup quotas and GOMAXPROCS overrides). Units are
	// finer than benchmarks: each benchmark's reference execution,
	// training run and per-threshold comparisons schedule
	// independently, so small Parallelism values still make progress on
	// wide suites.
	Parallelism int
	// Progress, when non-nil, receives one line per completed
	// benchmark. Write failures do not stop the study; they are counted
	// in Perf.ProgressWriteErrors.
	Progress io.Writer
	// IndependentRuns disables the shared-trace reference execution:
	// every INIP(T) run executes the guest itself, as a cross-check
	// (results are identical) and for machines with more cores than
	// thresholds.
	IndependentRuns bool
	// Trace, when non-nil, receives one flight-recorder event per
	// completed pipeline span (see internal/obs). Tracing never alters
	// results: figure output is byte-identical with it on or off.
	Trace *obs.Recorder
}

func (c *Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = AllThresholds
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = spec.Suite()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// EffectiveThreshold converts a paper-unit threshold to the scaled value
// actually passed to the translator (minimum 1).
func EffectiveThreshold(paperT, scale float64) uint64 {
	v := paperT * scale
	if v < 1 {
		return 1
	}
	return uint64(v + 0.5)
}

// BenchmarkSeries is one benchmark's complete sweep.
type BenchmarkSeries struct {
	Name  string
	Class spec.Class
	// Train is the INIP(train)-vs-AVEP comparison.
	Train metrics.Summary
	// TrainRegions adds offline-formed regions to the training profile
	// (section-5 future work): Sd.CP(train)/Sd.LP(train) references.
	TrainRegions metrics.Summary
	// TrainOps is the training run's profiling-operation total.
	TrainOps uint64
	// AVEPCycles is the cycle cost with optimization disabled.
	AVEPCycles float64
	// PerT is indexed like Results.PaperT.
	PerT []core.ThresholdResult
}

// Results is the study output.
type Results struct {
	Scale  float64
	PaperT []float64
	Series []BenchmarkSeries
	// Perf reports where the study's wall-clock went.
	Perf Perf
}

// Perf summarizes a study run's execution profile. Phase seconds are
// summed across concurrent units, so they exceed WallSeconds whenever
// the pool kept more than one core busy.
type Perf struct {
	WallSeconds    float64 `json:"wall_seconds"`
	BuildSeconds   float64 `json:"build_seconds"`
	RefRunSeconds  float64 `json:"ref_run_seconds"`
	TrainSeconds   float64 `json:"train_run_seconds"`
	CompareSeconds float64 `json:"compare_seconds"`
	// BlocksExecuted totals dynamic block executions across every run
	// unit (each profiling context counts its pass over the trace).
	BlocksExecuted uint64  `json:"blocks_executed"`
	BlocksPerSec   float64 `json:"blocks_per_sec"`
	// Workers is the scheduler's resolved pool size — what actually
	// ran, not the requested Parallelism (which may be zero = default).
	Workers int `json:"workers"`

	// Engine-counter aggregates, summed over every profiling context of
	// every run unit (see dbt.RunStats for per-counter semantics).
	Translations      int64  `json:"blocks_translated"`
	Retranslations    int64  `json:"retranslations"`
	OptimizationWaves int64  `json:"optimization_waves"`
	RegionsFormed     int64  `json:"regions_formed"`
	RegionsDissolved  int64  `json:"regions_dissolved"`
	FastDispatches    uint64 `json:"fast_dispatches"`
	GenericDispatches uint64 `json:"generic_dispatches"`
	CacheLookups      uint64 `json:"cache_lookups"`
	InterruptPolls    uint64 `json:"interrupt_polls"`
	FreezeEvents      uint64 `json:"freeze_events"`

	// Observability-pipeline health: progress lines whose write failed
	// and flight-recorder events dropped on queue overflow.
	ProgressWriteErrors uint64 `json:"progress_write_errors,omitempty"`
	TraceEventsDropped  uint64 `json:"trace_events_dropped,omitempty"`
}

// Run executes the study: every benchmark is decomposed into run units
// (reference execution, training run, per-threshold comparisons) on one
// shared worker pool with fail-fast cancellation.
func Run(cfg Config) (*Results, error) {
	cfg.defaults()
	paperT := append([]float64(nil), cfg.Thresholds...)
	sort.Float64s(paperT)
	thresholds := make([]uint64, len(paperT))
	for i, pt := range paperT {
		thresholds[i] = EffectiveThreshold(pt, cfg.Scale)
	}

	res := &Results{Scale: cfg.Scale, PaperT: paperT, Series: make([]BenchmarkSeries, len(cfg.Benchmarks))}
	var timing core.Timing
	var progressErrs atomic.Uint64
	start := time.Now()
	sched := core.NewScheduler(cfg.Parallelism)
	// progressMu serializes Progress writes only; result recording is
	// lock-free (each benchmark owns its series slot), so a slow writer
	// never stalls the pool.
	var progressMu sync.Mutex
	for i, b := range cfg.Benchmarks {
		i, b := i, b
		opts := core.Options{
			Thresholds:      thresholds,
			PoolTrigger:     cfg.PoolTrigger,
			Perf:            true,
			IndependentRuns: cfg.IndependentRuns,
			Timing:          &timing,
			Trace:           cfg.Trace,
		}
		core.ScheduleBenchmark(sched, b.Target(cfg.Scale), opts, func(out *core.BenchmarkResult) {
			res.Series[i] = BenchmarkSeries{
				Name:         b.Name,
				Class:        b.Class,
				Train:        out.Train,
				TrainRegions: out.TrainRegions,
				TrainOps:     out.TrainOps,
				AVEPCycles:   out.AVEPCycles,
				PerT:         out.Results,
			}
			if cfg.Progress != nil {
				line := fmt.Sprintf("done %-8s (%s): train Sd.BP=%.3f mismatch=%.1f%%\n",
					b.Name, b.Class, out.Train.SdBP, out.Train.BPMismatch*100)
				progressMu.Lock()
				_, werr := io.WriteString(cfg.Progress, line)
				progressMu.Unlock()
				if werr != nil {
					// A broken progress sink must not abort (or skew) a
					// multi-minute study, but it must not vanish either:
					// count the dropped line and surface it in Perf.
					progressErrs.Add(1)
				}
			}
		})
	}
	if err := sched.Wait(); err != nil {
		return nil, fmt.Errorf("study: %w", err)
	}
	wall := time.Since(start)
	res.Perf = Perf{
		WallSeconds:    wall.Seconds(),
		BuildSeconds:   time.Duration(timing.Build.Load()).Seconds(),
		RefRunSeconds:  time.Duration(timing.RefRuns.Load()).Seconds(),
		TrainSeconds:   time.Duration(timing.TrainRuns.Load()).Seconds(),
		CompareSeconds: time.Duration(timing.Compare.Load()).Seconds(),
		BlocksExecuted: timing.BlocksExecuted.Load(),
		Workers:        sched.Workers(),

		Translations:      timing.Translations.Load(),
		Retranslations:    timing.Retranslations.Load(),
		OptimizationWaves: timing.OptimizationWaves.Load(),
		RegionsFormed:     timing.RegionsFormed.Load(),
		RegionsDissolved:  timing.RegionsDissolved.Load(),
		FastDispatches:    timing.FastDispatches.Load(),
		GenericDispatches: timing.GenericDispatches.Load(),
		CacheLookups:      timing.CacheLookups.Load(),
		InterruptPolls:    timing.InterruptPolls.Load(),
		FreezeEvents:      timing.FreezeEvents.Load(),

		ProgressWriteErrors: progressErrs.Load(),
		// Exact here: every emitter finished when Wait returned.
		TraceEventsDropped: cfg.Trace.Dropped(),
	}
	if wall > 0 {
		res.Perf.BlocksPerSec = float64(res.Perf.BlocksExecuted) / wall.Seconds()
	}
	return res, nil
}

// ByName returns the series of the named benchmark, or nil.
func (r *Results) ByName(name string) *BenchmarkSeries {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// classIndexes returns the series indexes belonging to the class.
func (r *Results) classIndexes(c spec.Class) []int {
	var out []int
	for i := range r.Series {
		if r.Series[i].Class == c {
			out = append(out, i)
		}
	}
	return out
}

// tIndex locates a paper threshold in the ladder, or -1.
func (r *Results) tIndex(paperT float64) int {
	for i, t := range r.PaperT {
		if t == paperT {
			return i
		}
	}
	return -1
}

// avgOver averages f over the class's benchmarks at each threshold
// index in keep.
func (r *Results) avgOver(c spec.Class, keep []int, f func(*core.ThresholdResult, *BenchmarkSeries) float64) []float64 {
	idxs := r.classIndexes(c)
	out := make([]float64, len(keep))
	for k, ti := range keep {
		sum := 0.0
		for _, bi := range idxs {
			s := &r.Series[bi]
			sum += f(&s.PerT[ti], s)
		}
		if len(idxs) > 0 {
			out[k] = sum / float64(len(idxs))
		}
	}
	return out
}

// avgTrain averages a train-summary metric over the class.
func (r *Results) avgTrain(c spec.Class, f func(metrics.Summary) float64) float64 {
	idxs := r.classIndexes(c)
	if len(idxs) == 0 {
		return 0
	}
	sum := 0.0
	for _, bi := range idxs {
		sum += f(r.Series[bi].Train)
	}
	return sum / float64(len(idxs))
}

// avgTrainRegions averages a metric of the offline-region train
// comparison (Sd.CP(train)/Sd.LP(train)) over the class.
func (r *Results) avgTrainRegions(c spec.Class, f func(metrics.Summary) float64) float64 {
	idxs := r.classIndexes(c)
	if len(idxs) == 0 {
		return 0
	}
	sum := 0.0
	for _, bi := range idxs {
		sum += f(r.Series[bi].TrainRegions)
	}
	return sum / float64(len(idxs))
}
