// Package study orchestrates the full reproduction: it sweeps the
// retranslation-threshold ladder over the synthetic SPEC2000 suite and
// derives the data behind every figure of the paper's evaluation
// (Figures 8-18).
//
// All thresholds are specified in paper units and scaled — together with
// benchmark lengths and phase boundaries — by a single Scale factor.
// Because every reported quantity is a probability, a normalized count,
// or a ratio of cycle totals, uniform scaling preserves the figures'
// shapes while keeping runs laptop-sized.
package study

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/learned"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/resultcache"
	"repro/internal/spec"
)

// PaperThresholds is the threshold ladder of the accuracy figures
// (Figures 8-16, 18), in paper units.
var PaperThresholds = []float64{100, 200, 500, 1e3, 2e3, 5e3, 1e4, 2e4, 4e4, 8e4, 16e4, 1e6, 4e6}

// AllThresholds extends the ladder with the small values of the
// performance figure (Figure 17), whose base is T=1.
var AllThresholds = append([]float64{1, 50}, PaperThresholds...)

// Config controls a study run.
type Config struct {
	// Scale multiplies paper-unit thresholds, run lengths and phase
	// boundaries. The default of 1.0 runs the paper's actual threshold
	// ladder (benchmark run lengths are already laptop-sized, see
	// package spec); smaller values trade sampling fidelity at the
	// bottom of the ladder for speed.
	Scale float64
	// Thresholds is the paper-unit ladder (default AllThresholds).
	Thresholds []float64
	// Benchmarks selects the suite subset (default spec.Suite()).
	Benchmarks []*spec.Benchmark
	// PoolTrigger passes through to the translator.
	PoolTrigger int
	// Parallelism bounds concurrently-running work units (default
	// GOMAXPROCS, matching the scheduler's own default — unlike NumCPU
	// it respects cgroup quotas and GOMAXPROCS overrides). Units are
	// finer than benchmarks: each benchmark's reference execution,
	// training run and per-threshold comparisons schedule
	// independently, so small Parallelism values still make progress on
	// wide suites.
	Parallelism int
	// Progress, when non-nil, receives one line per completed
	// benchmark. Write failures do not stop the study; they are counted
	// in Perf.ProgressWriteErrors.
	Progress io.Writer
	// IndependentRuns disables the shared-trace reference execution:
	// every INIP(T) run executes the guest itself, as a cross-check
	// (results are identical) and for machines with more cores than
	// thresholds.
	IndependentRuns bool
	// Trace, when non-nil, receives one flight-recorder event per
	// completed pipeline span (see internal/obs). Tracing never alters
	// results: figure output is byte-identical with it on or off.
	Trace *obs.Recorder
	// Policy selects what a unit failure does to the study: cancel it
	// (core.FailFast, the default) or isolate the failing benchmark and
	// let the rest complete (core.Degrade). Degraded results carry the
	// failures in Results.Failures and exclude the failed benchmarks
	// from every figure.
	Policy core.FailurePolicy
	// MaxAttempts and RetryBackoff bound per-unit retry (see
	// core.Options); the defaults (0) run every unit once.
	MaxAttempts  int
	RetryBackoff time.Duration
	// Faults is the armed fault-injection plan, nil for none. Faults
	// are consulted at fixed pipeline sites, so a given plan fails the
	// same way on every run.
	Faults *faultinject.Plan
	// Checkpoint, when non-empty, persists every completed benchmark
	// series to this file (versioned JSONL, atomically rewritten on
	// each completion), so an interrupted study can resume instead of
	// rerunning finished work. Benchmarks with absorbed failures are
	// not checkpointed — a resumed run retries them.
	Checkpoint string
	// Resume loads Checkpoint before running and schedules only the
	// benchmarks without a stored series. The checkpoint must match
	// this config's scale, ladder, run mode and benchmark set.
	Resume bool
	// Cache, when non-nil, memoizes expensive unit outputs in an
	// on-disk content-addressed store keyed by image hash, tape
	// identity, engine fingerprint, effective threshold and scale. A
	// warm rerun of an unchanged study executes zero guest blocks and
	// produces byte-identical figures. Fault-injected runs never touch
	// the cache (their results are deliberately perturbed).
	Cache *resultcache.Store
	// CacheVerify turns every cache hit into a differential self-check:
	// units execute anyway and a divergence between computed and cached
	// values is a hard unit error (subject to Policy like any other
	// failure). Requires Cache.
	CacheVerify bool
	// Predictors names the dynamic branch predictors (internal/predict)
	// to drive off each benchmark's reference trace as read-only
	// observers. The guest still executes exactly once per benchmark;
	// mispredict tallies are threshold-independent and identical across
	// Parallelism values and dispatch paths. Empty (the default) runs
	// no predictors and leaves every figure byte-identical.
	Predictors []string
	// SamplePeriods is the ladder of sampled-profiling periods to sweep
	// (dbt.Config.SamplePeriod): each period reruns the whole threshold
	// ladder with counters updated only every Nth block event, feeding
	// the accuracy-vs-cost frontier figures (figs1/figs2). In the
	// default shared-trace mode the sampled runs replay the reference
	// trace, so each benchmark's guest still executes exactly once.
	// Empty (the default) runs no sampled ladders and leaves every
	// figure byte-identical. Periods of 1 exercise the sampling
	// machinery but are full instrumentation by definition.
	SamplePeriods []uint64
	// Learned, when non-nil, adds the profile-free learned static
	// branch model as a third predictor class: per-benchmark static
	// features and reference-trace tallies are collected off the shared
	// trace (the guest still executes once per benchmark), then the
	// model is fit suite-wide with leave-one-benchmark-out cross
	// validation after every benchmark completes — each benchmark's
	// reported accuracy comes from a model that never saw any profile
	// of it. Fills Results.Learned and the figl1/figl2 figures; every
	// legacy figure stays byte-identical. The config's Fingerprint is
	// pinned in checkpoint headers — resuming under a different model
	// config is refused.
	Learned *learned.Config
	// Executor, when non-nil, runs each benchmark unit through it
	// instead of scheduling directly on the study's pool — the seam the
	// distributed fleet plugs into (internal/fleet's coordinator is a
	// UnitExecutor). A *core.LocalExecutor with a nil scheduler is
	// bound to the study's own shared pool, which reproduces the
	// default path's concurrency structure exactly and is pinned
	// byte-identical by TestLocalExecutorEquivalence.
	Executor core.UnitExecutor
	// Stop, when non-nil, triggers a graceful drain when it is closed:
	// in-flight guest runs are interrupted, completed series stay
	// checkpointed, and Run returns the partial results with ErrStopped.
	Stop <-chan struct{}
	// StopAfter, when positive, stops the study after that many
	// benchmark completions — a deterministic stand-in for Stop in
	// tests and the kill-and-resume CI smoke.
	StopAfter int
}

func (c *Config) defaults() {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = AllThresholds
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = spec.Suite()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Normalize applies the configuration defaults in place without
// running. Callers that lower the config into another form before Run
// sees it — the fleet coordinator serializing unit specs — use it so
// derived values match what Run will resolve.
func (c *Config) Normalize() { c.defaults() }

// ErrStopped re-exports the scheduler's cooperative-stop sentinel:
// Run returns it (wrapped) together with the partial results when the
// study was drained through Stop or StopAfter.
var ErrStopped = core.ErrStopped

// Validate rejects configurations that would run garbage rather than
// fail up front, naming the offending value. Run calls it after
// applying defaults; commands call it directly to report flag errors
// before any work starts.
func (c *Config) Validate() error {
	if math.IsNaN(c.Scale) || math.IsInf(c.Scale, 0) || c.Scale <= 0 {
		return fmt.Errorf("study: invalid scale %v (want a positive factor)", c.Scale)
	}
	seen := make(map[float64]bool, len(c.Thresholds))
	for _, t := range c.Thresholds {
		if math.IsNaN(t) || math.IsInf(t, 0) || t <= 0 {
			return fmt.Errorf("study: invalid threshold %v (want a positive paper-unit value)", t)
		}
		if seen[t] {
			return fmt.Errorf("study: duplicate threshold %v in ladder", t)
		}
		seen[t] = true
	}
	names := make(map[string]bool, len(c.Benchmarks))
	for i, b := range c.Benchmarks {
		if b == nil {
			return fmt.Errorf("study: benchmark %d is nil", i)
		}
		if names[b.Name] {
			return fmt.Errorf("study: benchmark %q selected twice", b.Name)
		}
		names[b.Name] = true
	}
	if c.MaxAttempts < 0 {
		return fmt.Errorf("study: invalid max attempts %d", c.MaxAttempts)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("study: invalid retry backoff %v", c.RetryBackoff)
	}
	if c.StopAfter < 0 {
		return fmt.Errorf("study: invalid stop-after count %d", c.StopAfter)
	}
	if c.Resume && c.Checkpoint == "" {
		return errors.New("study: resume requested without a checkpoint path")
	}
	if c.CacheVerify && c.Cache == nil {
		return errors.New("study: cache verification requested without a cache")
	}
	spSeen := make(map[uint64]bool, len(c.SamplePeriods))
	for _, p := range c.SamplePeriods {
		if p < 1 {
			return fmt.Errorf("study: invalid sample period %d (want >= 1)", p)
		}
		if spSeen[p] {
			return fmt.Errorf("study: duplicate sample period %d", p)
		}
		spSeen[p] = true
	}
	predSeen := make(map[string]bool, len(c.Predictors))
	for _, name := range c.Predictors {
		if _, err := predict.New(name); err != nil {
			return fmt.Errorf("study: %w", err)
		}
		if predSeen[name] {
			return fmt.Errorf("study: predictor %q selected twice", name)
		}
		predSeen[name] = true
	}
	if c.Learned != nil {
		if err := c.Learned.Validate(); err != nil {
			return fmt.Errorf("study: %w", err)
		}
	}
	return nil
}

// EffectiveThreshold converts a paper-unit threshold to the scaled value
// actually passed to the translator (minimum 1).
func EffectiveThreshold(paperT, scale float64) uint64 {
	v := paperT * scale
	if v < 1 {
		return 1
	}
	return uint64(v + 0.5)
}

// EffectiveLadder sorts a paper-unit threshold ladder and converts it
// to the effective values passed to the translator. Run and the fleet
// worker both build their ladders here, so a distributed unit executes
// with exactly the thresholds the in-process study would use.
func EffectiveLadder(paperT []float64, scale float64) (sorted []float64, effective []uint64) {
	sorted = append([]float64(nil), paperT...)
	sort.Float64s(sorted)
	effective = make([]uint64, len(sorted))
	for i, pt := range sorted {
		effective[i] = EffectiveThreshold(pt, scale)
	}
	return sorted, effective
}

// UnitOptions builds the core.Options one benchmark unit of this study
// runs with. It is the single place study configuration is lowered to
// unit configuration — shared by Run and the fleet worker so that a
// unit executed on a remote worker is bit-exact with the local path.
func (c *Config) UnitOptions(thresholds []uint64, timing *core.Timing) core.Options {
	return core.Options{
		Thresholds:      thresholds,
		PoolTrigger:     c.PoolTrigger,
		Perf:            true,
		IndependentRuns: c.IndependentRuns,
		Timing:          timing,
		Trace:           c.Trace,
		Faults:          c.Faults,
		MaxAttempts:     c.MaxAttempts,
		RetryBackoff:    c.RetryBackoff,
		Cache:           c.Cache,
		CacheVerify:     c.CacheVerify,
		Predictors:      c.Predictors,
		SamplePeriods:   c.SamplePeriods,
		Learned:         c.Learned,
		// Scale is the one study parameter that shapes results
		// without being visible in image, tape or engine config
		// (it clamps the effective ladder), so it anchors the key
		// context. %g is canonical for a given float64.
		CacheContext: fmt.Sprintf("scale=%g", c.Scale),
	}
}

// BenchmarkSeries is one benchmark's complete sweep.
type BenchmarkSeries struct {
	Name  string
	Class spec.Class
	// Train is the INIP(train)-vs-AVEP comparison.
	Train metrics.Summary
	// TrainRegions adds offline-formed regions to the training profile
	// (section-5 future work): Sd.CP(train)/Sd.LP(train) references.
	TrainRegions metrics.Summary
	// TrainOps is the training run's profiling-operation total.
	TrainOps uint64
	// AVEPCycles is the cycle cost with optimization disabled.
	AVEPCycles float64
	// PerT is indexed like Results.PaperT.
	PerT []core.ThresholdResult
	// Failures lists the units of this benchmark that failed permanently
	// under the Degrade policy, sorted by unit and threshold. A series
	// with failures carries incomplete data and is excluded from every
	// figure (the exclusion is annotated in Figure.Gaps).
	Failures []core.UnitFailure `json:",omitempty"`
	// Predictors holds the dynamic-predictor tallies over this
	// benchmark's reference trace, in Config.Predictors order; absent
	// (and omitted from checkpoints) when no predictors were requested.
	Predictors []predict.Result `json:",omitempty"`
	// Sampling holds the sampled-profiling rerun ladders, one per
	// Config.SamplePeriods entry; absent (and omitted from checkpoints)
	// when no periods were requested.
	Sampling []core.SamplePeriodResult `json:",omitempty"`
	// Learned holds this benchmark's learned-predictor collection
	// (static site features + reference-trace tallies); absent (and
	// omitted from checkpoints) when Config.Learned was nil. The
	// suite-level fit consumes these after every benchmark completes.
	Learned *learned.BenchData `json:",omitempty"`
}

// SeriesFromResult converts one benchmark's completed unit result into
// its study series, sorting absorbed failures into their deterministic
// order. Run's completion callback and the fleet worker share this
// conversion, so a series that crossed the wire is byte-identical to
// one recorded in-process.
func SeriesFromResult(b *spec.Benchmark, out *core.BenchmarkResult) BenchmarkSeries {
	sortFailures(out.Failures)
	return BenchmarkSeries{
		Name:         b.Name,
		Class:        b.Class,
		Train:        out.Train,
		TrainRegions: out.TrainRegions,
		TrainOps:     out.TrainOps,
		AVEPCycles:   out.AVEPCycles,
		PerT:         out.Results,
		Failures:     out.Failures,
		Predictors:   out.Predictors,
		Sampling:     out.Sampling,
		Learned:      out.Learned,
	}
}

// ok reports whether the series carries complete measurement data: the
// benchmark finished (a stopped study leaves unfinished series with an
// empty name) and none of its units failed.
func (s *BenchmarkSeries) ok() bool {
	return s.Name != "" && len(s.Failures) == 0
}

// Results is the study output.
type Results struct {
	Scale  float64
	PaperT []float64
	Series []BenchmarkSeries
	// Failures flattens every absorbed unit failure across the suite,
	// sorted by benchmark, unit and threshold — the study-level record
	// of what a degraded run is missing.
	Failures []core.UnitFailure `json:",omitempty"`
	// Learned is the suite-level leave-one-benchmark-out fit of the
	// learned static branch model, present when Config.Learned was set
	// and at least two benchmarks completed cleanly. It is recomputed
	// from the per-benchmark series on every Run — including resumed
	// ones, where the series come out of the checkpoint — so it is a
	// pure function of Series and the model config.
	Learned *learned.CVResult `json:",omitempty"`
	// Perf reports where the study's wall-clock went.
	Perf Perf
}

// Perf summarizes a study run's execution profile. Phase seconds are
// summed across concurrent units, so they exceed WallSeconds whenever
// the pool kept more than one core busy.
type Perf struct {
	WallSeconds    float64 `json:"wall_seconds"`
	BuildSeconds   float64 `json:"build_seconds"`
	RefRunSeconds  float64 `json:"ref_run_seconds"`
	TrainSeconds   float64 `json:"train_run_seconds"`
	CompareSeconds float64 `json:"compare_seconds"`
	// BlocksExecuted totals dynamic block executions across every run
	// unit (each profiling context counts its pass over the trace).
	BlocksExecuted uint64  `json:"blocks_executed"`
	BlocksPerSec   float64 `json:"blocks_per_sec"`
	// Sampled-profiling accounting (Config.SamplePeriods), all zero —
	// and omitted — when no periods were requested or every sampled
	// ladder replayed from the cache. SampledProfilingOps counts actual
	// counter updates of the sampled contexts (sampled units, not
	// period-scaled estimates), so it is directly comparable to the
	// full-instrumentation rungs' ProfilingOps; the rate is guarded so a
	// zero-duration or fully-warm run reports 0, never NaN or Inf.
	SampledUnits        int64   `json:"sampled_units,omitempty"`
	SampledProfilingOps uint64  `json:"sampled_profiling_ops,omitempty"`
	SampledOpsPerSec    float64 `json:"sampled_ops_per_sec,omitempty"`
	// Workers is the scheduler's resolved pool size — what actually
	// ran, not the requested Parallelism (which may be zero = default).
	Workers int `json:"workers"`

	// Engine-counter aggregates, summed over every profiling context of
	// every run unit (see dbt.RunStats for per-counter semantics).
	Translations      int64  `json:"blocks_translated"`
	Retranslations    int64  `json:"retranslations"`
	OptimizationWaves int64  `json:"optimization_waves"`
	RegionsFormed     int64  `json:"regions_formed"`
	RegionsDissolved  int64  `json:"regions_dissolved"`
	FastDispatches    uint64 `json:"fast_dispatches"`
	GenericDispatches uint64 `json:"generic_dispatches"`
	CacheLookups      uint64 `json:"cache_lookups"`
	InterruptPolls    uint64 `json:"interrupt_polls"`
	FreezeEvents      uint64 `json:"freeze_events"`

	// Observability-pipeline health: progress lines whose write failed
	// and flight-recorder events dropped on queue overflow.
	ProgressWriteErrors uint64 `json:"progress_write_errors,omitempty"`
	TraceEventsDropped  uint64 `json:"trace_events_dropped,omitempty"`

	// Robustness accounting (all zero on a clean fail-fast run, so the
	// report shape is unchanged when the machinery is idle): permanent
	// unit failures absorbed by Degrade, failed attempts that were
	// retried, series restored from a checkpoint instead of re-run, and
	// checkpoint writes (with how many of them failed).
	UnitFailures          int    `json:"unit_failures,omitempty"`
	UnitRetries           int64  `json:"unit_retries,omitempty"`
	ResumedSeries         int    `json:"resumed_series,omitempty"`
	CheckpointWrites      uint64 `json:"checkpoint_writes,omitempty"`
	CheckpointWriteErrors uint64 `json:"checkpoint_write_errors,omitempty"`

	// Result-cache accounting (all zero — and omitted — when no cache
	// is configured, so the report shape is unchanged): validated hits,
	// misses, entry writes, and corrupt-entry rejections plus failed
	// writes.
	ResultCacheHits   uint64 `json:"result_cache_hits,omitempty"`
	ResultCacheMisses uint64 `json:"result_cache_misses,omitempty"`
	ResultCacheStores uint64 `json:"result_cache_stores,omitempty"`
	ResultCacheErrors uint64 `json:"result_cache_errors,omitempty"`
	// ResultCacheHealFailures counts entry writes demoted to no-ops
	// after the store latched read-only (unwritable cache directory).
	ResultCacheHealFailures uint64 `json:"result_cache_heal_failures,omitempty"`
}

// Run executes the study: every benchmark is decomposed into run units
// (reference execution, training run, per-threshold comparisons) on one
// shared worker pool. The failure policy decides whether a unit error
// cancels the study (fail-fast, the default) or only its benchmark
// (degrade); with a checkpoint configured, completed benchmarks are
// persisted as they finish and a resumed run re-executes only the
// missing ones. On a graceful stop Run returns the partial results
// together with a wrapped ErrStopped.
func Run(cfg Config) (*Results, error) {
	cfg.defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	paperT, thresholds := EffectiveLadder(cfg.Thresholds, cfg.Scale)

	res := &Results{Scale: cfg.Scale, PaperT: paperT, Series: make([]BenchmarkSeries, len(cfg.Benchmarks))}
	ckpt, resumed, err := openCheckpoint(&cfg, paperT)
	if err != nil {
		return nil, err
	}

	var timing core.Timing
	var progressErrs atomic.Uint64
	start := time.Now()
	sched := core.NewSchedulerPolicy(cfg.Parallelism, cfg.Policy)
	if cfg.Stop != nil {
		go func() {
			select {
			case <-cfg.Stop:
				sched.Stop()
			case <-sched.Done():
			}
		}()
	}
	// progressMu serializes Progress writes only; result recording is
	// lock-free (each benchmark owns its series slot), so a slow writer
	// never stalls the pool.
	var progressMu sync.Mutex
	progress := func(line string) {
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		_, werr := io.WriteString(cfg.Progress, line)
		progressMu.Unlock()
		if werr != nil {
			// A broken progress sink must not abort (or skew) a
			// multi-minute study, but it must not vanish either:
			// count the dropped line and surface it in Perf.
			progressErrs.Add(1)
		}
	}
	// An executor-mode study routes each benchmark through the
	// configured UnitExecutor instead of scheduling directly; a
	// LocalExecutor with no pool of its own is bound to this study's
	// shared scheduler, making the two paths structurally identical.
	executor := cfg.Executor
	if le, ok := executor.(*core.LocalExecutor); ok && le.S == nil {
		executor = &core.LocalExecutor{S: sched}
	}
	var execWG sync.WaitGroup
	var completions atomic.Int64
	for i, b := range cfg.Benchmarks {
		i, b := i, b
		if s, ok := resumed[b.Name]; ok {
			res.Series[i] = s
			ckpt.keep(s)
			progress(fmt.Sprintf("skip %-8s (%s): restored from checkpoint\n", b.Name, b.Class))
			continue
		}
		opts := cfg.UnitOptions(thresholds, &timing)
		record := func(out *core.BenchmarkResult) {
			res.Series[i] = SeriesFromResult(b, out)
			if len(out.Failures) == 0 {
				ckpt.commit(res.Series[i], cfg.Trace)
				progress(fmt.Sprintf("done %-8s (%s): train Sd.BP=%.3f mismatch=%.1f%%\n",
					b.Name, b.Class, out.Train.SdBP, out.Train.BPMismatch*100))
			} else {
				progress(fmt.Sprintf("FAIL %-8s (%s): %d unit failure(s), first: %s\n",
					b.Name, b.Class, len(out.Failures), out.Failures[0].Err))
			}
			if n := cfg.StopAfter; n > 0 && completions.Add(1) == int64(n) {
				sched.Stop()
			}
		}
		if executor == nil {
			core.ScheduleBenchmark(sched, b.Target(cfg.Scale), opts, record)
			continue
		}
		execWG.Add(1)
		go func() {
			defer execWG.Done()
			out, err := executor.ExecuteUnit(b.Target(cfg.Scale), opts, sched.Done())
			if err != nil {
				// A cancelled unit is the expected shape of a study
				// stop or another unit's fail-fast error — not a new
				// failure. Anything else cancels the pool (first
				// error wins, like a direct unit failure).
				if !errors.Is(err, core.ErrStopped) {
					sched.Fail(fmt.Errorf("executor: %s: %w", b.Name, err))
				}
				return
			}
			record(out)
		}()
	}
	execWG.Wait()
	werr := sched.Wait()
	if werr != nil && !errors.Is(werr, core.ErrStopped) {
		return nil, fmt.Errorf("study: %w", werr)
	}

	for i := range res.Series {
		res.Failures = append(res.Failures, res.Series[i].Failures...)
	}
	sortFailures(res.Failures)

	// Suite-level learned fit: leave-one-benchmark-out cross validation
	// over every cleanly completed series. It runs on resumed and
	// stopped studies too (the collections ride the checkpoint), so
	// Results.Learned is always a pure function of Series and the model
	// config. A fit error on an otherwise clean study is a study error;
	// on a stopped study the stop sentinel wins.
	if cfg.Learned != nil {
		if ferr := res.fitLearned(*cfg.Learned, cfg.Trace); ferr != nil && werr == nil {
			return nil, fmt.Errorf("study: %w", ferr)
		}
	}

	wall := time.Since(start)
	res.Perf = Perf{
		WallSeconds:    wall.Seconds(),
		BuildSeconds:   time.Duration(timing.Build.Load()).Seconds(),
		RefRunSeconds:  time.Duration(timing.RefRuns.Load()).Seconds(),
		TrainSeconds:   time.Duration(timing.TrainRuns.Load()).Seconds(),
		CompareSeconds: time.Duration(timing.Compare.Load()).Seconds(),
		BlocksExecuted: timing.BlocksExecuted.Load(),
		Workers:        sched.Workers(),

		Translations:      timing.Translations.Load(),
		Retranslations:    timing.Retranslations.Load(),
		OptimizationWaves: timing.OptimizationWaves.Load(),
		RegionsFormed:     timing.RegionsFormed.Load(),
		RegionsDissolved:  timing.RegionsDissolved.Load(),
		FastDispatches:    timing.FastDispatches.Load(),
		GenericDispatches: timing.GenericDispatches.Load(),
		CacheLookups:      timing.CacheLookups.Load(),
		InterruptPolls:    timing.InterruptPolls.Load(),
		FreezeEvents:      timing.FreezeEvents.Load(),

		ProgressWriteErrors: progressErrs.Load(),
		// Exact here: every emitter finished when Wait returned.
		TraceEventsDropped: cfg.Trace.Dropped(),

		UnitFailures:          len(res.Failures),
		UnitRetries:           timing.Retries.Load(),
		ResumedSeries:         len(resumed),
		CheckpointWrites:      ckpt.writes(),
		CheckpointWriteErrors: ckpt.writeErrors(),
	}
	// Counters accumulate over the store's lifetime; a store shared
	// across Run calls reports the cumulative totals here.
	cacheCounters := cfg.Cache.Counters()
	res.Perf.ResultCacheHits = cacheCounters.Hits
	res.Perf.ResultCacheMisses = cacheCounters.Misses
	res.Perf.ResultCacheStores = cacheCounters.Stores
	res.Perf.ResultCacheErrors = cacheCounters.Errors
	res.Perf.ResultCacheHealFailures = cacheCounters.HealFailures
	res.Perf.SampledUnits = timing.SampledUnits.Load()
	res.Perf.SampledProfilingOps = timing.SampledProfilingOps.Load()
	if wall > 0 {
		res.Perf.BlocksPerSec = float64(res.Perf.BlocksExecuted) / wall.Seconds()
		res.Perf.SampledOpsPerSec = float64(res.Perf.SampledProfilingOps) / wall.Seconds()
	}
	if werr != nil {
		// Graceful stop: the caller gets everything that completed (and
		// was checkpointed) plus the sentinel to tell this apart from
		// success or failure.
		return res, fmt.Errorf("study: %w", werr)
	}
	return res, nil
}

// sortFailures orders failures deterministically: by benchmark, unit,
// then threshold (unit completion order is scheduling-dependent).
func sortFailures(fs []core.UnitFailure) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Bench != fs[j].Bench {
			return fs[i].Bench < fs[j].Bench
		}
		if fs[i].Unit != fs[j].Unit {
			return fs[i].Unit < fs[j].Unit
		}
		return fs[i].T < fs[j].T
	})
}

// ByName returns the series of the named benchmark, or nil.
func (r *Results) ByName(name string) *BenchmarkSeries {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// classIndexes returns the series indexes belonging to the class.
// Failed or unfinished series are excluded here — the single chokepoint
// every aggregation goes through — so a degraded study's figures are
// computed exactly as if the failed benchmarks had not been selected.
func (r *Results) classIndexes(c spec.Class) []int {
	var out []int
	for i := range r.Series {
		if r.Series[i].Class == c && r.Series[i].ok() {
			out = append(out, i)
		}
	}
	return out
}

// tIndex locates a paper threshold in the ladder, or -1.
func (r *Results) tIndex(paperT float64) int {
	for i, t := range r.PaperT {
		if t == paperT {
			return i
		}
	}
	return -1
}

// avgOver averages f over the class's benchmarks at each threshold
// index in keep.
func (r *Results) avgOver(c spec.Class, keep []int, f func(*core.ThresholdResult, *BenchmarkSeries) float64) []float64 {
	idxs := r.classIndexes(c)
	out := make([]float64, len(keep))
	for k, ti := range keep {
		sum := 0.0
		for _, bi := range idxs {
			s := &r.Series[bi]
			sum += f(&s.PerT[ti], s)
		}
		if len(idxs) > 0 {
			out[k] = sum / float64(len(idxs))
		}
	}
	return out
}

// avgTrain averages a train-summary metric over the class.
func (r *Results) avgTrain(c spec.Class, f func(metrics.Summary) float64) float64 {
	idxs := r.classIndexes(c)
	if len(idxs) == 0 {
		return 0
	}
	sum := 0.0
	for _, bi := range idxs {
		sum += f(r.Series[bi].Train)
	}
	return sum / float64(len(idxs))
}

// avgTrainRegions averages a metric of the offline-region train
// comparison (Sd.CP(train)/Sd.LP(train)) over the class.
func (r *Results) avgTrainRegions(c spec.Class, f func(metrics.Summary) float64) float64 {
	idxs := r.classIndexes(c)
	if len(idxs) == 0 {
		return 0
	}
	sum := 0.0
	for _, bi := range idxs {
		sum += f(r.Series[bi].TrainRegions)
	}
	return sum / float64(len(idxs))
}
