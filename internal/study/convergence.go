package study

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/spec"
)

// ConvergenceRow is one (benchmark, registration policy) evaluation:
// how much profiling the policy spent and how accurate the resulting
// initial profile is.
type ConvergenceRow struct {
	Name   string
	Policy string
	// OpsVsTrain normalizes profiling operations to the training run
	// (the currency of Figure 18).
	OpsVsTrain float64
	SdBP       float64
	BPMismatch float64
}

// ConvergenceResults holds the accuracy-per-profiling-cost comparison
// between fixed retranslation thresholds and convergence-based
// registration (the paper's section-5 threshold-selection heuristics).
type ConvergenceResults struct {
	Rows []ConvergenceRow
}

// RunConvergence evaluates fixed thresholds against convergence-based
// registration on the given benchmarks (default: a stationary, a noisy
// and a phased member).
func RunConvergence(benchNames []string, scale float64) (*ConvergenceResults, error) {
	if len(benchNames) == 0 {
		benchNames = []string{"vortex", "crafty", "gzip"}
	}
	if scale <= 0 {
		scale = 1.0
	}
	type policy struct {
		label string
		cfg   func() dbt.Config
	}
	fixed := func(paperT float64) policy {
		return policy{
			label: fmt.Sprintf("fixed T=%s", trimFloat(paperT)),
			cfg: func() dbt.Config {
				return dbt.Config{
					Optimize: true, Threshold: EffectiveThreshold(paperT, scale), RegisterTwice: true,
				}
			},
		}
	}
	converge := func(eps float64, capT float64) policy {
		return policy{
			label: fmt.Sprintf("converge eps=%g cap=%s", eps, trimFloat(capT)),
			cfg: func() dbt.Config {
				return dbt.Config{
					Optimize: true, Threshold: EffectiveThreshold(capT, scale), RegisterTwice: true,
					ConvergeRegister: true, ConvergeEpsilon: eps,
				}
			},
		}
	}
	policies := []policy{
		fixed(500), fixed(2000), fixed(10000),
		converge(0.03, 40000), converge(0.015, 40000),
	}

	out := &ConvergenceResults{}
	for _, name := range benchNames {
		b := spec.ByName(name)
		if b == nil {
			return nil, fmt.Errorf("study: unknown benchmark %q", name)
		}
		img, tape, err := b.Build("ref", scale)
		if err != nil {
			return nil, err
		}
		avep, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
		if err != nil {
			return nil, err
		}
		imgT, tapeT, err := b.Build("train", scale)
		if err != nil {
			return nil, err
		}
		train, _, err := dbt.Run(imgT, tapeT, dbt.Config{Optimize: false, Input: "train"})
		if err != nil {
			return nil, err
		}
		for _, p := range policies {
			img, tape, err := b.Build("ref", scale)
			if err != nil {
				return nil, err
			}
			snap, _, err := dbt.Run(img, tape, p.cfg())
			if err != nil {
				return nil, fmt.Errorf("study: %s %s: %w", name, p.label, err)
			}
			sum, _, err := core.Compare(snap, avep)
			if err != nil {
				return nil, err
			}
			row := ConvergenceRow{
				Name: name, Policy: p.label,
				SdBP: sum.SdBP, BPMismatch: sum.BPMismatch,
			}
			if train.ProfilingOps > 0 {
				row.OpsVsTrain = float64(snap.ProfilingOps) / float64(train.ProfilingOps)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func trimFloat(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%gk", v/1e3)
	default:
		return fmt.Sprintf("%g", v)
	}
}

// Render formats the convergence results as a text table.
func (c *ConvergenceResults) Render() string {
	var b strings.Builder
	b.WriteString("threshold-selection heuristics: accuracy per unit of profiling work\n")
	fmt.Fprintf(&b, "%-10s %-26s %12s %9s %10s\n", "bench", "policy", "ops/train", "Sd.BP", "mismatch")
	prev := ""
	for _, r := range c.Rows {
		name := r.Name
		if name == prev {
			name = ""
		} else if prev != "" {
			b.WriteString("\n")
		}
		prev = r.Name
		fmt.Fprintf(&b, "%-10s %-26s %12.4f %9.4f %9.1f%%\n",
			name, r.Policy, r.OpsVsTrain, r.SdBP, r.BPMismatch*100)
	}
	return b.String()
}
