package study

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/spec"
)

// runDeterminism executes a reduced study with the given knobs.
func runDeterminism(t *testing.T, parallelism int, independent bool) *Results {
	t.Helper()
	res, err := Run(Config{
		Scale:           0.001,
		Thresholds:      []float64{1, 100, 1e3, 1e5},
		Benchmarks:      []*spec.Benchmark{spec.ByName("gzip"), spec.ByName("mesa"), spec.ByName("vpr")},
		Parallelism:     parallelism,
		IndependentRuns: independent,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunDeterministicAcrossParallelism: the run-level scheduler must
// not change any result — every series is identical whatever the worker
// count and whether INIP runs share the reference trace or execute
// independently.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	ref := runDeterminism(t, 1, false)
	for _, parallelism := range []int{2, 8} {
		for _, independent := range []bool{false, true} {
			got := runDeterminism(t, parallelism, independent)
			if !reflect.DeepEqual(got.Series, ref.Series) {
				t.Fatalf("parallelism=%d independent=%v: series differ from serial shared-trace run",
					parallelism, independent)
			}
		}
	}
}

// TestRunProgressLines: progress reporting must emit one line per
// benchmark (formatted outside the result lock).
func TestRunProgressLines(t *testing.T) {
	var buf bytes.Buffer
	_, err := Run(Config{
		Scale:       0.001,
		Thresholds:  []float64{100},
		Benchmarks:  []*spec.Benchmark{spec.ByName("gzip"), spec.ByName("swim")},
		Parallelism: 4,
		Progress:    &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("progress lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "done ") {
			t.Fatalf("malformed progress line %q", l)
		}
	}
}

// TestRunReportsPerf: the perf summary must carry wall-clock and run
// volume for the benchjson emitter.
func TestRunReportsPerf(t *testing.T) {
	res := runDeterminism(t, 2, false)
	p := res.Perf
	if p.WallSeconds <= 0 || p.BlocksExecuted == 0 || p.BlocksPerSec <= 0 {
		t.Fatalf("perf summary incomplete: %+v", p)
	}
	if p.RefRunSeconds <= 0 || p.TrainSeconds <= 0 {
		t.Fatalf("phase timing missing: %+v", p)
	}
	if p.Workers != 2 {
		t.Fatalf("workers = %d, want 2", p.Workers)
	}
}
