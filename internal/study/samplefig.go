package study

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/spec"
)

// Sampled-profiling frontier figures: what LBR-style sampled profiling
// (dbt.Config.SamplePeriod) costs in initial-prediction accuracy, and
// what it buys in profiling overhead, on the very same benchmarks and
// threshold ladder the accuracy figures measure. They exist only when
// the study ran with Config.SamplePeriods — a sampling-less study's
// figure list (and thus every golden artifact) is byte-identical to
// builds without this file.

// samplePeriodLadder returns the period column order, taken from the
// first complete series carrying sampled ladders (all series share the
// Config.SamplePeriods order). Empty when the study ran no sampling.
func (r *Results) samplePeriodLadder() []uint64 {
	for i := range r.Series {
		s := &r.Series[i]
		if !s.ok() || len(s.Sampling) == 0 {
			continue
		}
		periods := make([]uint64, len(s.Sampling))
		for j, sp := range s.Sampling {
			periods[j] = sp.Period
		}
		return periods
	}
	return nil
}

// avgSampleDelta averages, over the class's benchmarks and the accuracy
// ladder indexes in keep, the sampled-minus-full difference of one
// summary metric at period index pi. Positive values mean sampling
// degraded the initial prediction.
func (r *Results) avgSampleDelta(c spec.Class, pi int, keep []int, f func(metrics.Summary) float64) float64 {
	sum, n := 0.0, 0
	for _, bi := range r.classIndexes(c) {
		s := &r.Series[bi]
		if pi >= len(s.Sampling) {
			continue
		}
		for _, ti := range keep {
			sum += f(s.Sampling[pi].PerT[ti].Summary) - f(s.PerT[ti].Summary)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// avgSampleCost averages the measured profiling-cost ratio of period
// index pi over the class: each benchmark contributes its sampled
// ProfilingOps total divided by its full-instrumentation total across
// the kept ladder indexes. Benchmarks whose full ladder performed no
// profiling operations are skipped (no denominator, no ratio), so the
// result is always finite.
func (r *Results) avgSampleCost(c spec.Class, pi int, keep []int) float64 {
	sum, n := 0.0, 0
	for _, bi := range r.classIndexes(c) {
		s := &r.Series[bi]
		if pi >= len(s.Sampling) {
			continue
		}
		var sampled, full uint64
		for _, ti := range keep {
			sampled += s.Sampling[pi].PerT[ti].ProfilingOps
			full += s.PerT[ti].ProfilingOps
		}
		if full == 0 {
			continue
		}
		sum += float64(sampled) / float64(full)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FigureS1 plots initial-prediction accuracy degradation against the
// sampling period: the class-average sampled-minus-full difference of
// Sd.BP and Sd.LP, averaged over the accuracy ladder (T >= 100). A
// period of 1 is full instrumentation by definition, so its deltas are
// exactly zero — the determinism tests pin this.
func (r *Results) FigureS1() Figure {
	periods := r.samplePeriodLadder()
	keep := r.accuracyIndexes()
	x := make([]float64, len(periods))
	for i, p := range periods {
		x[i] = float64(p)
	}
	fig := Figure{
		ID: "figs1", Title: "Initial-prediction accuracy degradation vs sampling period",
		XLabel: "sampling period", YLabel: "sampled minus full (Sd units)",
		X: x,
		Notes: []string{
			"Deltas are averaged over the accuracy ladder (T >= 100) and the class's benchmarks.",
			"Period 1 is full instrumentation by definition: its deltas are exactly zero.",
		},
	}
	sdBPOf := func(s metrics.Summary) float64 { return s.SdBP }
	sdLPOf := func(s metrics.Summary) float64 { return s.SdLP }
	for _, cl := range []spec.Class{spec.INT, spec.FP} {
		dbp := make([]float64, len(periods))
		dlp := make([]float64, len(periods))
		for pi := range periods {
			dbp[pi] = r.avgSampleDelta(cl, pi, keep, sdBPOf)
			dlp[pi] = r.avgSampleDelta(cl, pi, keep, sdLPOf)
		}
		fig.Series = append(fig.Series,
			Series{Label: fmt.Sprintf("%s dSd.BP", cl), Y: dbp},
			Series{Label: fmt.Sprintf("%s dSd.LP", cl), Y: dlp})
	}
	return fig
}

// FigureS2 is the overhead-vs-accuracy frontier: the measured profiling
// cost ratio (sampled / full counter updates) per class against the
// 1/period cost model, with the Sd.BP degradation of FigureS1 alongside
// so one figure shows what each period buys and what it costs.
func (r *Results) FigureS2() Figure {
	periods := r.samplePeriodLadder()
	keep := r.accuracyIndexes()
	x := make([]float64, len(periods))
	model := make([]float64, len(periods))
	for i, p := range periods {
		x[i] = float64(p)
		model[i] = 1 / float64(p)
	}
	fig := Figure{
		ID: "figs2", Title: "Profiling overhead vs accuracy frontier of sampled profiling",
		XLabel: "sampling period", YLabel: "cost ratio / Sd.BP delta",
		X: x,
		Series: []Series{
			{Label: "model 1/period", Y: model},
		},
		Notes: []string{
			"Cost ratio is measured counter updates of the sampled ladder over the full ladder's, averaged per class.",
			"The 1/period line is the ideal stride-sampling cost model the measurement is compared against.",
			"dSd.BP repeats FigureS1's branch-probability degradation: the accuracy price of each period.",
		},
	}
	sdBPOf := func(s metrics.Summary) float64 { return s.SdBP }
	for _, cl := range []spec.Class{spec.INT, spec.FP} {
		cost := make([]float64, len(periods))
		dbp := make([]float64, len(periods))
		for pi := range periods {
			cost[pi] = r.avgSampleCost(cl, pi, keep)
			dbp[pi] = r.avgSampleDelta(cl, pi, keep, sdBPOf)
		}
		fig.Series = append(fig.Series,
			Series{Label: fmt.Sprintf("%s cost ratio", cl), Y: cost},
			Series{Label: fmt.Sprintf("%s dSd.BP", cl), Y: dbp})
	}
	return fig
}

// sampleFigures returns the sampling-frontier figures, or nil when the
// study ran no sampled ladders — keeping the default figure list (and
// every golden artifact) byte-identical.
func (r *Results) sampleFigures() []Figure {
	if len(r.samplePeriodLadder()) == 0 {
		return nil
	}
	return []Figure{r.FigureS1(), r.FigureS2()}
}
