package study

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/atomicio"
	"repro/internal/learned"
	"repro/internal/obs"
)

// checkpointVersion is bumped whenever the on-disk schema changes; a
// version mismatch is a hard resume error, never a silent reinterpret.
const checkpointVersion = 1

// checkpointHeader is the first line of a checkpoint file: the
// fingerprint of the study configuration that produced it. A resumed
// run must match it exactly — mixing series from different scales,
// ladders, run modes or suite selections would corrupt the figures
// silently, which is worse than rerunning.
type checkpointHeader struct {
	Version         int       `json:"version"`
	Scale           float64   `json:"scale"`
	PaperT          []float64 `json:"paper_t"`
	IndependentRuns bool      `json:"independent_runs"`
	Benchmarks      []string  `json:"benchmarks"`
	// Predictors is the requested dynamic-predictor list; omitted when
	// empty so predictor-less checkpoints are byte-identical to files
	// written before the field existed (strict unmarshal keeps reading
	// them).
	Predictors []string `json:"predictors,omitempty"`
	// SamplePeriods is the requested sampled-profiling period ladder;
	// omitted when empty for the same backwards compatibility.
	SamplePeriods []uint64 `json:"sample_periods,omitempty"`
	// Learned is the learned-model fingerprint (config + feature-schema
	// version); omitted when the study ran no learned collection. A
	// mismatch refuses the resume: series carry per-site feature vectors
	// whose meaning the fingerprint pins.
	Learned string `json:"learned,omitempty"`
}

// checkpointer persists completed benchmark series. Every commit
// atomically rewrites the whole file (header plus one JSONL line per
// completed series, in suite order) — a study is at most a few dozen
// small series, and full rewrites keep the file valid after any crash:
// either the old set or the new set, never a torn line. All methods
// are safe on a nil receiver (checkpointing off).
type checkpointer struct {
	path   string
	header checkpointHeader
	order  map[string]int // benchmark name -> suite position

	mu      sync.Mutex
	done    map[string]BenchmarkSeries
	nWrites uint64
	nErrors uint64
}

// openCheckpoint wires up checkpointing for the run: it returns the
// writer (nil when no path is configured) and, when resuming, the
// series restored from the existing file. A missing file on resume is
// a fresh start — the study may have been interrupted before the first
// benchmark completed — but an unreadable or mismatching file is an
// error.
func openCheckpoint(cfg *Config, paperT []float64) (*checkpointer, map[string]BenchmarkSeries, error) {
	if cfg.Checkpoint == "" {
		return nil, nil, nil
	}
	names := make([]string, len(cfg.Benchmarks))
	order := make(map[string]int, len(cfg.Benchmarks))
	for i, b := range cfg.Benchmarks {
		names[i] = b.Name
		order[b.Name] = i
	}
	c := &checkpointer{
		path: cfg.Checkpoint,
		header: checkpointHeader{
			Version:         checkpointVersion,
			Scale:           cfg.Scale,
			PaperT:          paperT,
			IndependentRuns: cfg.IndependentRuns,
			Benchmarks:      names,
			Predictors:      cfg.Predictors,
			SamplePeriods:   cfg.SamplePeriods,
			Learned:         learnedFingerprint(cfg.Learned),
		},
		order: order,
		done:  make(map[string]BenchmarkSeries),
	}
	// A kill mid-publication orphans a checkpoint temp file next to the
	// destination; sweep it before any write of this run is in flight.
	// Scoped to this checkpoint's basename so per-job checkpoints can
	// share a state directory with live writers.
	atomicio.SweepTempsFor(cfg.Checkpoint)
	if !cfg.Resume {
		return c, nil, nil
	}
	f, err := os.Open(cfg.Checkpoint)
	if errors.Is(err, os.ErrNotExist) {
		return c, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("study: resume: %w", err)
	}
	defer f.Close()
	resumed, err := readCheckpoint(f, c.header)
	if err != nil {
		return nil, nil, fmt.Errorf("study: resume %s: %w", cfg.Checkpoint, err)
	}
	return c, resumed, nil
}

// learnedFingerprint is the header form of the learned config: empty
// when the class is off, the model fingerprint otherwise.
func learnedFingerprint(c *learned.Config) string {
	if c == nil {
		return ""
	}
	return c.Fingerprint()
}

// readCheckpoint parses and validates a checkpoint stream against the
// current run's fingerprint.
func readCheckpoint(r io.Reader, want checkpointHeader) (map[string]BenchmarkSeries, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("empty checkpoint (no header)")
	}
	var h checkpointHeader
	if err := strictUnmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if err := matchHeader(h, want); err != nil {
		return nil, err
	}
	valid := make(map[string]bool, len(want.Benchmarks))
	for _, n := range want.Benchmarks {
		valid[n] = true
	}
	out := make(map[string]BenchmarkSeries)
	for line := 2; sc.Scan(); line++ {
		var s BenchmarkSeries
		if err := strictUnmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		switch {
		case !valid[s.Name]:
			return nil, fmt.Errorf("line %d: series for %q, which is not in this run's benchmark set", line, s.Name)
		case len(s.PerT) != len(want.PaperT):
			return nil, fmt.Errorf("line %d: series %q has %d ladder entries, ladder has %d", line, s.Name, len(s.PerT), len(want.PaperT))
		case len(s.Failures) != 0:
			return nil, fmt.Errorf("line %d: series %q was checkpointed with failures", line, s.Name)
		}
		if _, dup := out[s.Name]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", line, s.Name)
		}
		out[s.Name] = s
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// strictUnmarshal decodes one JSON value rejecting unknown fields, so
// schema drift surfaces as a clear error instead of dropped data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// matchHeader verifies the stored fingerprint against this run's,
// naming the first difference.
func matchHeader(got, want checkpointHeader) error {
	if got.Version != want.Version {
		return fmt.Errorf("checkpoint version %d, this build writes %d", got.Version, want.Version)
	}
	if got.Scale != want.Scale {
		return fmt.Errorf("checkpoint scale %v, this run uses %v", got.Scale, want.Scale)
	}
	if !equalFloats(got.PaperT, want.PaperT) {
		return fmt.Errorf("checkpoint ladder %v, this run uses %v", got.PaperT, want.PaperT)
	}
	if got.IndependentRuns != want.IndependentRuns {
		return fmt.Errorf("checkpoint independent_runs=%v, this run uses %v", got.IndependentRuns, want.IndependentRuns)
	}
	if !equalStrings(got.Benchmarks, want.Benchmarks) {
		return fmt.Errorf("checkpoint benchmarks %v, this run selects %v", got.Benchmarks, want.Benchmarks)
	}
	if !equalStrings(got.Predictors, want.Predictors) {
		return fmt.Errorf("checkpoint predictors %v, this run selects %v", got.Predictors, want.Predictors)
	}
	if !equalUints(got.SamplePeriods, want.SamplePeriods) {
		return fmt.Errorf("checkpoint sample periods %v, this run selects %v", got.SamplePeriods, want.SamplePeriods)
	}
	if got.Learned != want.Learned {
		return fmt.Errorf("checkpoint learned model %q, this run uses %q", got.Learned, want.Learned)
	}
	return nil
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalUints(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// keep registers a series already present in the file (restored on
// resume) so later rewrites retain it.
func (c *checkpointer) keep(s BenchmarkSeries) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.done[s.Name] = s
	c.mu.Unlock()
}

// commit adds one completed series and rewrites the checkpoint
// atomically. A write failure is counted and traced, never fatal: the
// study's in-memory results are unaffected, only resumability of this
// benchmark is lost.
func (c *checkpointer) commit(s BenchmarkSeries, trace *obs.Recorder) {
	if c == nil {
		return
	}
	start := time.Now()
	c.mu.Lock()
	c.done[s.Name] = s
	data, err := c.renderLocked()
	if err == nil {
		err = atomicio.WriteFile(c.path, data, 0o644)
	}
	c.nWrites++
	if err != nil {
		c.nErrors++
	}
	c.mu.Unlock()
	trace.Record(s.Name, obs.UnitCheckpoint, 0, 0, start, time.Since(start), 0, err)
}

// renderLocked serializes header plus completed series in suite order.
func (c *checkpointer) renderLocked() ([]byte, error) {
	names := make([]string, 0, len(c.done))
	for n := range c.done {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return c.order[names[i]] < c.order[names[j]] })
	var out []byte
	hdr, err := json.Marshal(c.header)
	if err != nil {
		return nil, err
	}
	out = append(out, hdr...)
	out = append(out, '\n')
	for _, n := range names {
		line, err := json.Marshal(c.done[n])
		if err != nil {
			return nil, err
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out, nil
}

func (c *checkpointer) writes() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nWrites
}

func (c *checkpointer) writeErrors() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nErrors
}
