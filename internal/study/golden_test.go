package study

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/predict"
	"repro/internal/resultcache"
	"repro/internal/spec"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure corpus")

// goldenConfig is the frozen study configuration behind the golden
// corpus: two benchmarks (one INT, one FP) over the full paper ladder at
// the smallest scale the suite uses. Changing it invalidates the golden
// files — regenerate with `go test ./internal/study -run Golden -update`.
func goldenConfig(t *testing.T) Config {
	t.Helper()
	var benches []*spec.Benchmark
	for _, n := range []string{"gzip", "swim"} {
		b := spec.ByName(n)
		if b == nil {
			t.Fatalf("unknown benchmark %q", n)
		}
		benches = append(benches, b)
	}
	return Config{
		Scale:      0.001,
		Thresholds: []float64{1, 100, 1e3, 1e4, 1e6},
		Benchmarks: benches,
	}
}

// renderCorpus produces the two golden artifacts: the markdown report
// and the indented JSON of every figure.
func renderCorpus(t *testing.T, res *Results) (report, figures []byte) {
	t.Helper()
	figJSON, err := json.MarshalIndent(res.Figures(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return []byte(res.MarkdownReport()), append(figJSON, '\n')
}

// TestGoldenFigures byte-compares the full figure set of the frozen
// configuration against the committed corpus, pinning every number the
// figures report. Any change to the guest generators, the translator,
// the profile comparison or the figure rendering shows up here as a
// diff that must be regenerated deliberately.
func TestGoldenFigures(t *testing.T) {
	res, err := Run(goldenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	report, figures := renderCorpus(t, res)
	for _, g := range []struct {
		name string
		got  []byte
	}{
		{"golden_report.md", report},
		{"golden_figures.json", figures},
	} {
		path := filepath.Join("testdata", g.name)
		if *updateGolden {
			if err := os.WriteFile(path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		if !reflect.DeepEqual(g.got, want) {
			t.Errorf("%s drifted from the committed corpus (regenerate with -update if intended)", g.name)
		}
	}
}

// TestStudyCacheColdWarmDeterminism is the end-to-end determinism check
// for the result cache: a cold study populates the store, a warm rerun
// must reproduce the exact series and byte-identical figures without
// executing a single guest block, and disabling the cache must change
// nothing about a cold run's results.
func TestStudyCacheColdWarmDeterminism(t *testing.T) {
	dir := t.TempDir()
	open := func() *resultcache.Store {
		store, err := resultcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return store
	}

	cold := goldenConfig(t)
	cold.Cache = open()
	coldRes, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.Perf.ResultCacheStores == 0 || coldRes.Perf.ResultCacheHits != 0 {
		t.Fatalf("cold cache counters %+v, want stores and no hits", coldRes.Perf)
	}
	if coldRes.Perf.BlocksExecuted == 0 {
		t.Fatal("cold study executed no guest blocks")
	}

	warm := goldenConfig(t)
	warm.Cache = open()
	warmRes, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Perf.BlocksExecuted != 0 {
		t.Fatalf("warm study executed %d guest blocks, want 0", warmRes.Perf.BlocksExecuted)
	}
	if warmRes.Perf.ResultCacheHits == 0 || warmRes.Perf.ResultCacheMisses != 0 {
		t.Fatalf("warm cache counters %+v, want only hits", warmRes.Perf)
	}
	if !reflect.DeepEqual(coldRes.Series, warmRes.Series) {
		t.Fatal("warm series differ from cold series")
	}
	coldReport, coldFigs := renderCorpus(t, coldRes)
	warmReport, warmFigs := renderCorpus(t, warmRes)
	if !reflect.DeepEqual(coldReport, warmReport) || !reflect.DeepEqual(coldFigs, warmFigs) {
		t.Fatal("warm figures are not byte-identical to cold figures")
	}

	// A cache must never perturb results: an uncached run of the same
	// configuration produces the same series.
	plainRes, err := Run(goldenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainRes.Series, coldRes.Series) {
		t.Fatal("cached cold run differs from an uncached run")
	}
}

// TestStudyCacheVerifyMode runs the differential verify pass over a
// warmed store: everything re-executes, every hit is compared against
// the recomputed value, and a clean store passes.
func TestStudyCacheVerifyMode(t *testing.T) {
	dir := t.TempDir()
	store, err := resultcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig(t)
	cfg.Cache = store
	coldRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	vcfg := goldenConfig(t)
	if vcfg.Cache, err = resultcache.Open(dir); err != nil {
		t.Fatal(err)
	}
	vcfg.CacheVerify = true
	vres, err := Run(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if vres.Perf.BlocksExecuted == 0 {
		t.Fatal("verify mode must execute for real")
	}
	if vres.Perf.ResultCacheHits == 0 {
		t.Fatal("verify run saw no cache hits over a warmed store")
	}
	if !reflect.DeepEqual(coldRes.Series, vres.Series) {
		t.Fatal("verify-mode series differ from cold series")
	}
}

// TestGoldenPredictorFigures pins the predictor corpus: the same frozen
// configuration with every registered predictor observing must render
// figp1/figp2 byte-identically to the committed files. The paper
// figures of that run are covered transitively — the read-only-observer
// test proves them equal to the predictor-less corpus above.
func TestGoldenPredictorFigures(t *testing.T) {
	cfg := goldenConfig(t)
	cfg.Predictors = predict.Names()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	figs := res.Figures()
	if len(figs) < 2 {
		t.Fatalf("only %d figures", len(figs))
	}
	predFigs := figs[len(figs)-2:]
	if predFigs[0].ID != "figp1" || predFigs[1].ID != "figp2" {
		t.Fatalf("trailing figures are %q, %q; want figp1, figp2", predFigs[0].ID, predFigs[1].ID)
	}
	got, err := json.MarshalIndent(predFigs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_predictors.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("golden_predictors.json drifted from the committed corpus (regenerate with -update if intended)")
	}
}
