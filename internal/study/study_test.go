package study

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

// tinyStudy runs a reduced study (few benchmarks, short ladder, small
// scale) shared across tests.
func tinyStudy(t *testing.T, names ...string) *Results {
	t.Helper()
	var benches []*spec.Benchmark
	for _, n := range names {
		b := spec.ByName(n)
		if b == nil {
			t.Fatalf("unknown benchmark %q", n)
		}
		benches = append(benches, b)
	}
	res, err := Run(Config{
		Scale:      0.001,
		Thresholds: []float64{1, 100, 1e3, 1e4, 1e6},
		Benchmarks: benches,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesAlignedSeries(t *testing.T) {
	res := tinyStudy(t, "vortex", "swim")
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if len(res.PaperT) != 5 {
		t.Fatalf("paperT = %v", res.PaperT)
	}
	for _, s := range res.Series {
		if len(s.PerT) != len(res.PaperT) {
			t.Fatalf("%s: %d results for %d thresholds", s.Name, len(s.PerT), len(res.PaperT))
		}
		if s.TrainOps == 0 {
			t.Fatalf("%s: no train ops", s.Name)
		}
		if s.AVEPCycles <= 0 {
			t.Fatalf("%s: no AVEP cycles", s.Name)
		}
		for i, tr := range s.PerT {
			if tr.Cycles <= 0 {
				t.Fatalf("%s @%v: no cycles", s.Name, res.PaperT[i])
			}
		}
	}
	if res.ByName("vortex") == nil || res.ByName("nope") != nil {
		t.Fatal("ByName broken")
	}
}

func TestEffectiveThresholdClamps(t *testing.T) {
	if EffectiveThreshold(100, 0.001) != 1 {
		t.Fatal("sub-1 threshold must clamp to 1")
	}
	if EffectiveThreshold(1e6, 0.01) != 10000 {
		t.Fatal("scaling wrong")
	}
}

func TestFiguresComplete(t *testing.T) {
	res := tinyStudy(t, "vortex", "swim")
	figs := res.Figures()
	if len(figs) != 11 {
		t.Fatalf("figures = %d, want 11 (Figures 8-18)", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Fatalf("duplicate figure %s", f.ID)
		}
		seen[f.ID] = true
		if len(f.X) == 0 {
			t.Fatalf("%s has empty x axis", f.ID)
		}
		for _, s := range f.Series {
			if len(s.Y) != len(f.X) {
				t.Fatalf("%s series %q: %d points for %d x", f.ID, s.Label, len(s.Y), len(f.X))
			}
		}
		if f.String() == "" {
			t.Fatalf("%s has no string form", f.ID)
		}
	}
	for _, id := range []string{"fig8", "fig17", "fig18"} {
		if _, ok := res.FigureByID(id); !ok {
			t.Fatalf("FigureByID(%s) missed", id)
		}
	}
	if _, ok := res.FigureByID("fig99"); ok {
		t.Fatal("FigureByID invented a figure")
	}
}

func TestAccuracyFiguresExcludeSmallThresholds(t *testing.T) {
	res := tinyStudy(t, "vortex")
	f8 := res.Figure8()
	for _, x := range f8.X {
		if x < 100 {
			t.Fatalf("fig8 includes T=%v < 100", x)
		}
	}
	f17 := res.Figure17()
	if f17.X[0] != 1 {
		t.Fatalf("fig17 must start at the base threshold 1, got %v", f17.X[0])
	}
}

func TestFigure17BaseIsOne(t *testing.T) {
	res := tinyStudy(t, "vortex", "swim")
	f := res.Figure17()
	for _, s := range f.Series {
		if s.Label == "fp" || s.Label == "int" {
			if s.Y[0] < 0.999 || s.Y[0] > 1.001 {
				t.Fatalf("fig17 %s at base = %v, want 1.0", s.Label, s.Y[0])
			}
		}
	}
}

func TestFigure18TrainNormalization(t *testing.T) {
	res := tinyStudy(t, "vortex", "swim")
	f := res.Figure18()
	// Small thresholds must need a tiny fraction of the training ops;
	// the largest threshold approaches (or equals) the training level.
	var intSeries, fpSeries Series
	for _, s := range f.Series {
		switch s.Label {
		case "int":
			intSeries = s
		case "fp":
			fpSeries = s
		}
	}
	for _, s := range []Series{intSeries, fpSeries} {
		if s.Y[0] > 0.25 {
			t.Fatalf("normalized ops at T=100: %v, want small", s.Y[0])
		}
		last := s.Y[len(s.Y)-1]
		if last < s.Y[0] {
			t.Fatalf("normalized ops decreased with T: %v", s.Y)
		}
	}
}

func TestPerBenchFiguresLabelled(t *testing.T) {
	res := tinyStudy(t, "vortex", "gzip", "swim")
	f9 := res.Figure9()
	labels := map[string]bool{}
	for _, s := range f9.Series {
		labels[s.Label] = true
	}
	if !labels["vortex"] || !labels["gzip"] || labels["swim"] {
		t.Fatalf("fig9 labels wrong: %v", labels)
	}
	f12 := res.Figure12()
	if len(f12.Series) != 1 || f12.Series[0].Label != "swim" {
		t.Fatalf("fig12 should hold only FP benchmarks: %+v", f12.Series)
	}
}

func TestProgressOutput(t *testing.T) {
	var sb strings.Builder
	_, err := Run(Config{
		Scale:      0.001,
		Thresholds: []float64{100},
		Benchmarks: []*spec.Benchmark{spec.ByName("vortex")},
		Progress:   &sb,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "vortex") {
		t.Fatalf("progress output missing benchmark: %q", sb.String())
	}
}

func TestFigures13And14CarryTrainReferences(t *testing.T) {
	res := tinyStudy(t, "vortex", "swim")
	for _, fig := range []Figure{res.Figure13(), res.Figure14()} {
		labels := map[string]bool{}
		for _, s := range fig.Series {
			labels[s.Label] = true
		}
		if !labels["int train*"] || !labels["fp train*"] {
			t.Fatalf("%s lacks offline-region train references: %v", fig.ID, labels)
		}
		if len(fig.Notes) == 0 {
			t.Fatalf("%s lacks the explanatory note", fig.ID)
		}
	}
}

func TestTrainRegionsSummaryPopulated(t *testing.T) {
	res := tinyStudy(t, "vortex")
	s := res.ByName("vortex")
	if !s.TrainRegions.HasRegions {
		t.Fatal("offline train regions not formed")
	}
	if s.TrainRegions.Loops == 0 && s.TrainRegions.Traces == 0 {
		t.Fatal("offline train comparison has no regions at all")
	}
}
