package study

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzCheckpointDecode checks the checkpoint reader over arbitrary byte
// streams against a fixed run fingerprint: readCheckpoint never panics,
// and any stream it accepts survives a render/re-read round trip with
// deeply equal series (the resume path is a fixed point, so a resumed
// run re-commits exactly what it read).
func FuzzCheckpointDecode(f *testing.F) {
	want := checkpointHeader{
		Version:    checkpointVersion,
		Scale:      0.001,
		PaperT:     []float64{100, 200},
		Benchmarks: []string{"gzip", "swim"},
	}
	order := map[string]int{"gzip": 0, "swim": 1}

	hdr := `{"version":1,"scale":0.001,"paper_t":[100,200],"independent_runs":false,"benchmarks":["gzip","swim"]}`
	f.Add([]byte(nil))
	f.Add([]byte(hdr))
	f.Add([]byte(hdr + "\n"))
	f.Add([]byte(hdr + "\n" + `{"Name":"gzip","PerT":[{"T":100},{"T":200}]}` + "\n"))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte("not json at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readCheckpoint(bytes.NewReader(data), want)
		if err != nil {
			return
		}
		c := &checkpointer{header: want, order: order, done: got}
		rendered, err := c.renderLocked()
		if err != nil {
			t.Fatalf("accepted checkpoint does not re-render: %v", err)
		}
		again, err := readCheckpoint(bytes.NewReader(rendered), want)
		if err != nil {
			t.Fatalf("re-rendered checkpoint does not re-read: %v", err)
		}
		if !reflect.DeepEqual(got, again) {
			t.Fatalf("checkpoint round trip changed series:\nfirst  %+v\nsecond %+v", got, again)
		}
	})
}
