package study

import (
	"strings"
	"testing"
)

func TestRunConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence runs take seconds")
	}
	res, err := RunConvergence([]string{"vortex"}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 policies", len(res.Rows))
	}
	byPolicy := map[string]ConvergenceRow{}
	for _, r := range res.Rows {
		byPolicy[r.Policy] = r
		if r.OpsVsTrain <= 0 {
			t.Fatalf("policy %q has no profiling cost", r.Policy)
		}
	}
	fixedBig := byPolicy["fixed T=10k"]
	conv := byPolicy["converge eps=0.03 cap=40k"]
	if fixedBig.Policy == "" || conv.Policy == "" {
		t.Fatalf("policies missing: %+v", byPolicy)
	}
	// The heuristic's selling point on a stationary benchmark: fixed-
	// large-threshold accuracy at a fraction of the profiling work.
	if conv.OpsVsTrain >= fixedBig.OpsVsTrain {
		t.Fatalf("convergence ops %v not below fixed 10k ops %v", conv.OpsVsTrain, fixedBig.OpsVsTrain)
	}
	if conv.SdBP > fixedBig.SdBP*1.8 {
		t.Fatalf("convergence Sd.BP %v much worse than fixed 10k %v", conv.SdBP, fixedBig.SdBP)
	}
	text := res.Render()
	for _, want := range []string{"vortex", "converge", "fixed", "ops/train"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func TestRunConvergenceUnknownBenchmark(t *testing.T) {
	if _, err := RunConvergence([]string{"nope"}, 0.1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
