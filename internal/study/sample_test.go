package study

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/resultcache"
	"repro/internal/spec"
)

// samplingConfig is the small fixed configuration the sampling
// determinism tests run: two benchmarks (one INT, one FP) over a short
// accuracy ladder with the given sampled-profiling periods.
func samplingConfig(parallelism int, independent bool, periods []uint64) Config {
	var benches []*spec.Benchmark
	for _, n := range []string{"gzip", "swim"} {
		benches = append(benches, spec.ByName(n))
	}
	return Config{
		Scale:           0.001,
		Thresholds:      []float64{100, 1e3},
		Benchmarks:      benches,
		Parallelism:     parallelism,
		IndependentRuns: independent,
		SamplePeriods:   periods,
	}
}

// sampleFigBytes renders the figs1/figs2 pair as JSON for byte
// comparison. The figures are rendered directly — the short ladders
// these tests run are not enough thresholds for the full paper figure
// set, which the golden tests cover on the frozen configuration.
func sampleFigBytes(t *testing.T, res *Results) []byte {
	t.Helper()
	figs := res.sampleFigures()
	if len(figs) != 2 || figs[0].ID != "figs1" || figs[1].ID != "figs2" {
		t.Fatalf("sampleFigures did not yield figs1/figs2")
	}
	b, err := json.Marshal(figs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSamplingDoesNotPerturbStudyResults pins the tentpole's
// compatibility contract end to end: a study with sampled ladders
// reports the exact measurement data of one without, and only appends
// figures — the paper figure set stays byte-identical.
func TestSamplingDoesNotPerturbStudyResults(t *testing.T) {
	plainRes, err := Run(goldenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if plainRes.Perf.SampledUnits != 0 || plainRes.Perf.SampledProfilingOps != 0 {
		t.Fatalf("sampling-less run reports sampled work: %+v", plainRes.Perf)
	}

	sampled := goldenConfig(t)
	sampled.SamplePeriods = []uint64{1, 4, 16}
	sampledRes, err := Run(sampled)
	if err != nil {
		t.Fatal(err)
	}

	for i := range plainRes.Series {
		p, q := plainRes.Series[i], sampledRes.Series[i]
		if len(q.Sampling) != 3 {
			t.Fatalf("%s: %d sampled ladders, want 3", q.Name, len(q.Sampling))
		}
		q.Sampling = nil
		if !reflect.DeepEqual(p, q) {
			t.Errorf("%s: measurement data changed when sampled ladders ride along", p.Name)
		}
	}

	plainFigs, sampledFigs := plainRes.Figures(), sampledRes.Figures()
	if len(sampledFigs) != len(plainFigs)+2 {
		t.Fatalf("sampled run has %d figures, want %d (+figs1/figs2)", len(sampledFigs), len(plainFigs))
	}
	a, err := json.Marshal(plainFigs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(sampledFigs[:len(plainFigs)])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("paper figures are not byte-identical when sampled ladders ride along")
	}
	if sampledFigs[len(plainFigs)].ID != "figs1" || sampledFigs[len(plainFigs)+1].ID != "figs2" {
		t.Errorf("appended figures are %q, %q; want figs1, figs2",
			sampledFigs[len(plainFigs)].ID, sampledFigs[len(plainFigs)+1].ID)
	}
}

// TestSamplingDeterminismAcrossWorkersAndModes is the satellite
// determinism requirement at the study level: the same periods produce
// byte-identical figs1/figs2 across repeat runs, worker counts, and the
// shared-trace vs independent-runs execution modes — the sampling
// stride depends only on each engine's own block-event count, which
// none of those knobs shape.
func TestSamplingDeterminismAcrossWorkersAndModes(t *testing.T) {
	periods := []uint64{1, 4, 16}
	ref, err := Run(samplingConfig(1, false, periods))
	if err != nil {
		t.Fatal(err)
	}
	refFigs := sampleFigBytes(t, ref)
	for _, alt := range []struct {
		name string
		cfg  Config
	}{
		{"repeat run", samplingConfig(1, false, periods)},
		{"maxprocs workers", samplingConfig(runtime.GOMAXPROCS(0), false, periods)},
		{"independent runs", samplingConfig(runtime.GOMAXPROCS(0), true, periods)},
	} {
		got, err := Run(alt.cfg)
		if err != nil {
			t.Fatalf("%s: %v", alt.name, err)
		}
		for i := range ref.Series {
			if !reflect.DeepEqual(got.Series[i].Sampling, ref.Series[i].Sampling) {
				t.Errorf("%s: %s sampled ladders diverge", alt.name, ref.Series[i].Name)
			}
		}
		if gotFigs := sampleFigBytes(t, got); !reflect.DeepEqual(gotFigs, refFigs) {
			t.Errorf("%s: figs1/figs2 are not byte-identical", alt.name)
		}
	}

	// Follower-count variation: in shared-trace mode every period adds
	// followers to the one reference execution, so running period 4
	// alone and running it inside a larger ladder are different
	// follower counts over the same trace. The period's results must
	// not notice.
	alone, err := Run(samplingConfig(runtime.GOMAXPROCS(0), false, []uint64{4}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Series {
		if !reflect.DeepEqual(alone.Series[i].Sampling[0], ref.Series[i].Sampling[1]) {
			t.Errorf("%s: period-4 ladder differs between follower-count variations", ref.Series[i].Name)
		}
	}
}

// TestSamplePeriodOneEqualsFull proves period 1 byte-equal to full
// instrumentation end to end: every rung of the period-1 ladder carries
// the exact summary, profiling-op count and model cycles of the
// full-instrumentation rung it shadows.
func TestSamplePeriodOneEqualsFull(t *testing.T) {
	cfg := samplingConfig(0, false, []uint64{1, 16})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Series {
		s := &res.Series[i]
		one := s.Sampling[0]
		if one.Period != 1 {
			t.Fatalf("%s: first ladder has period %d, want 1", s.Name, one.Period)
		}
		for ti, sp := range one.PerT {
			full := s.PerT[ti]
			if !reflect.DeepEqual(sp.Summary, full.Summary) {
				t.Errorf("%s T=%d: period-1 summary differs from full instrumentation", s.Name, full.T)
			}
			if sp.ProfilingOps != full.ProfilingOps {
				t.Errorf("%s T=%d: period-1 profiling ops %d, full %d", s.Name, full.T, sp.ProfilingOps, full.ProfilingOps)
			}
			if sp.Cycles != full.Cycles {
				t.Errorf("%s T=%d: period-1 cycles %v, full %v", s.Name, full.T, sp.Cycles, full.Cycles)
			}
		}
		// And a period > 1 must actually shed profiling work, or the
		// frontier measures nothing.
		var sampled, full uint64
		for ti, sp := range s.Sampling[1].PerT {
			sampled += sp.ProfilingOps
			full += s.PerT[ti].ProfilingOps
		}
		if sampled >= full {
			t.Errorf("%s: period-16 ladder performed %d profiling ops, full %d — sampling saved nothing", s.Name, sampled, full)
		}
	}
}

// TestSampledPerfCounters is the satellite regression test for
// study.Perf: sampled units report their sampled (not raw) counter
// updates, and every derived rate is finite at the period boundaries.
func TestSampledPerfCounters(t *testing.T) {
	res, err := Run(samplingConfig(0, false, []uint64{1, 16}))
	if err != nil {
		t.Fatal(err)
	}
	p := res.Perf
	// 2 benchmarks × 2 periods × 1 distinct rung: at scale 0.001 both
	// paper thresholds clamp to the same effective threshold, so each
	// period executes one deduplicated run per benchmark.
	if p.SampledUnits != 4 {
		t.Errorf("SampledUnits = %d, want 4", p.SampledUnits)
	}
	if p.SampledProfilingOps == 0 {
		t.Error("SampledProfilingOps = 0 after sampled ladders ran")
	}
	// The sampled total counts actual counter updates, so it must be
	// strictly smaller than charging every unit at full instrumentation
	// would be — the period-16 ladders shed most of their updates.
	var fullTwice uint64
	for i := range res.Series {
		for _, tr := range res.Series[i].PerT {
			fullTwice += 2 * tr.ProfilingOps
		}
	}
	if p.SampledProfilingOps >= fullTwice {
		t.Errorf("SampledProfilingOps = %d, not below the full-instrumentation bound %d (raw counts leaked through?)",
			p.SampledProfilingOps, fullTwice)
	}
	for _, v := range []float64{p.SampledOpsPerSec, p.BlocksPerSec} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite rate in Perf: %+v", p)
		}
	}
	if p.SampledOpsPerSec <= 0 {
		t.Errorf("SampledOpsPerSec = %v, want > 0 for a timed run with sampled work", p.SampledOpsPerSec)
	}
}

// TestGoldenSamplingFigures pins the sampling corpus: the frozen golden
// configuration with a period ladder must render figs1/figs2
// byte-identically to the committed file. The paper figures of that run
// are covered transitively — the perturbation test proves them equal to
// the sampling-less corpus.
func TestGoldenSamplingFigures(t *testing.T) {
	cfg := goldenConfig(t)
	cfg.SamplePeriods = []uint64{1, 4, 16, 64}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	figs := res.Figures()
	if len(figs) < 2 {
		t.Fatalf("only %d figures", len(figs))
	}
	spFigs := figs[len(figs)-2:]
	if spFigs[0].ID != "figs1" || spFigs[1].ID != "figs2" {
		t.Fatalf("trailing figures are %q, %q; want figs1, figs2", spFigs[0].ID, spFigs[1].ID)
	}
	got, err := json.MarshalIndent(spFigs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_sampling.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("golden_sampling.json drifted from the committed corpus (regenerate with -update if intended)")
	}
}

// TestSamplingCacheWarmRerun extends the warm-rerun guarantee to the sp
// entry kind: a warm rerun with the same period ladder executes zero
// guest blocks (and zero sampled units) while replaying identical
// ladders, a changed ladder re-executes, and the differential verify
// pass covers sp entries.
func TestSamplingCacheWarmRerun(t *testing.T) {
	dir := t.TempDir()
	withCache := func(periods []uint64) Config {
		cfg := samplingConfig(0, false, periods)
		store, err := resultcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = store
		return cfg
	}

	coldRes, err := Run(withCache([]uint64{1, 16}))
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.Perf.BlocksExecuted == 0 || coldRes.Perf.SampledUnits == 0 {
		t.Fatalf("cold study executed nothing: %+v", coldRes.Perf)
	}

	warmRes, err := Run(withCache([]uint64{1, 16}))
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Perf.BlocksExecuted != 0 {
		t.Fatalf("warm rerun executed %d guest blocks, want 0 (sp entries should replay)", warmRes.Perf.BlocksExecuted)
	}
	if warmRes.Perf.SampledUnits != 0 || warmRes.Perf.SampledProfilingOps != 0 {
		t.Fatalf("warm rerun reports sampled execution: %+v", warmRes.Perf)
	}
	if !reflect.DeepEqual(coldRes.Series, warmRes.Series) {
		t.Fatal("warm series (including sampled ladders) differ from cold")
	}

	// A different period ladder misses the sp entry: the reference
	// trace re-executes to feed it, and the shared period's ladder
	// agrees with the cold run's.
	altRes, err := Run(withCache([]uint64{16, 64}))
	if err != nil {
		t.Fatal(err)
	}
	if altRes.Perf.BlocksExecuted == 0 {
		t.Fatal("changed period ladder must re-execute")
	}
	for i := range altRes.Series {
		got, want := altRes.Series[i].Sampling[0], coldRes.Series[i].Sampling[1]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: period-16 ladder changed across period selections", altRes.Series[i].Name)
		}
	}

	// -cacheverify covers sp entries: everything re-executes against
	// the warmed store and must agree with it.
	vcfg := withCache([]uint64{1, 16})
	vcfg.CacheVerify = true
	vres, err := Run(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if vres.Perf.BlocksExecuted == 0 || vres.Perf.SampledUnits == 0 {
		t.Fatal("verify mode must re-execute the sampled ladders for real")
	}
	if vres.Perf.ResultCacheHits == 0 {
		t.Fatal("verify run saw no cache hits over a warmed store")
	}
	if !reflect.DeepEqual(coldRes.Series, vres.Series) {
		t.Fatal("verify-mode series differ from cold series")
	}
}

// TestSamplingCheckpointCompatibility: sampled studies checkpoint and
// resume like any other, and a checkpoint written with one period
// ladder refuses to resume a run with another — mixing them would
// silently drop or fabricate sampled figures.
func TestSamplingCheckpointCompatibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	cfg := samplingConfig(0, false, []uint64{1, 16})
	cfg.Checkpoint = path
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	resumeCfg := samplingConfig(0, false, []uint64{1, 16})
	resumeCfg.Checkpoint = path
	resumeCfg.Resume = true
	resumed, err := Run(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Perf.ResumedSeries != len(resumed.Series) {
		t.Fatalf("resumed %d of %d series", resumed.Perf.ResumedSeries, len(resumed.Series))
	}
	if !reflect.DeepEqual(first.Series, resumed.Series) {
		t.Fatal("resumed series (including sampled ladders) differ")
	}
	if !reflect.DeepEqual(sampleFigBytes(t, first), sampleFigBytes(t, resumed)) {
		t.Fatal("figs1/figs2 are not byte-identical across kill-and-resume")
	}

	mismatch := samplingConfig(0, false, []uint64{4})
	mismatch.Checkpoint = path
	mismatch.Resume = true
	if _, err := Run(mismatch); err == nil {
		t.Fatal("resume with a different period ladder must be rejected")
	}
}

// TestValidateRejectsBadSamplePeriods covers the config-level gate.
func TestValidateRejectsBadSamplePeriods(t *testing.T) {
	for _, periods := range [][]uint64{{0}, {16, 16}} {
		cfg := Config{Scale: 1, Thresholds: []float64{100}, Benchmarks: []*spec.Benchmark{spec.ByName("gzip")}, SamplePeriods: periods}
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted sample periods %v", periods)
		}
	}
}
