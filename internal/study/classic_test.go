package study

import (
	"testing"

	"repro/internal/dbt"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/spec"
)

// useWeights extracts per-address execution weights from a snapshot
// (region frozen counts included), the inputs of the classical
// comparators.
func useWeights(s *profile.Snapshot) map[int]float64 {
	w := make(map[int]float64, len(s.Blocks))
	for addr, b := range s.Blocks {
		w[addr] += float64(b.Use)
	}
	for _, r := range s.Regions {
		for i := range r.Blocks {
			w[r.Blocks[i].Addr] += float64(r.Blocks[i].Use)
		}
	}
	return w
}

// TestClassicalComparatorsDegradeOnINIP validates the paper's section-2
// argument for *why* it introduces the Sd metrics: the well-known
// profile comparators that rely on relative execution order (Wall's
// weight/key match, the overlapping percentage) cannot rank INIP(T)
// blocks meaningfully, because every optimized block's count is frozen
// in the narrow window [T, 2T] — while the same comparators consider the
// training profile (whose counts ran to completion) an excellent
// predictor.
func TestClassicalComparatorsDegradeOnINIP(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark runs")
	}
	b := spec.ByName("vortex")
	scale := 0.1
	img, tape, err := b.Build("ref", scale)
	if err != nil {
		t.Fatal(err)
	}
	avep, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	imgT, tapeT, err := b.Build("train", scale)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := dbt.Run(imgT, tapeT, dbt.Config{Optimize: false, Input: "train"})
	if err != nil {
		t.Fatal(err)
	}
	img2, tape2, err := b.Build("ref", scale)
	if err != nil {
		t.Fatal(err)
	}
	inip, _, err := dbt.Run(img2, tape2, dbt.Config{Optimize: true, Threshold: 200, RegisterTwice: true})
	if err != nil {
		t.Fatal(err)
	}

	act := useWeights(avep)
	trainW := useWeights(train)
	inipW := useWeights(inip)

	const topN = 8
	trainWeight := metrics.WeightMatch(trainW, act, topN)
	inipWeight := metrics.WeightMatch(inipW, act, topN)
	trainOverlap := metrics.OverlapPercentage(trainW, act)
	inipOverlap := metrics.OverlapPercentage(inipW, act)

	// The training profile ran to completion on a near-identical input:
	// classical comparators adore it.
	if trainWeight < 0.95 {
		t.Fatalf("train weight match = %v, want ~1", trainWeight)
	}
	if trainOverlap < 0.9 {
		t.Fatalf("train overlap = %v, want high", trainOverlap)
	}
	// INIP counts are compressed into [T, 2T]: a large share of the
	// distribution mass is misplaced even though INIP predicts branch
	// probabilities well.
	if inipOverlap > trainOverlap-0.2 {
		t.Fatalf("INIP overlap %v not clearly degraded vs train %v (the paper's inapplicability argument)",
			inipOverlap, trainOverlap)
	}
	// And yet the Sd-based view shows INIP(200) predicting fine — that
	// contrast is the reason the paper defines Sd.BP.
	if inipWeight >= trainWeight && inipOverlap >= trainOverlap {
		t.Fatal("classical comparators unexpectedly favour the initial profile")
	}
}
