package study

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/predict"
	"repro/internal/resultcache"
	"repro/internal/spec"
)

// predictorConfig runs the full spec suite with every registered
// predictor observing. One threshold suffices: predictor tallies are a
// property of the reference trace, which no ladder shapes.
func predictorConfig(parallelism int, independent bool) Config {
	return Config{
		Scale:           0.001,
		Thresholds:      []float64{100},
		Parallelism:     parallelism,
		IndependentRuns: independent,
		Predictors:      predict.Names(),
	}
}

// TestPredictorDeterminismAcrossWorkersAndModes is the satellite
// determinism requirement: per-predictor mispredict counts over the
// full spec suite are identical between a 1-worker and a
// GOMAXPROCS-worker run, and between shared-trace and independent-runs
// mode — the branch stream is the reference trace, which none of those
// knobs shape.
func TestPredictorDeterminismAcrossWorkersAndModes(t *testing.T) {
	ref, err := Run(predictorConfig(1, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Series {
		s := &ref.Series[i]
		if len(s.Predictors) != len(predict.Names()) {
			t.Fatalf("%s: %d predictor tallies, want %d", s.Name, len(s.Predictors), len(predict.Names()))
		}
		if s.Predictors[0].Branches == 0 {
			t.Fatalf("%s: predictors observed no branches", s.Name)
		}
	}
	for _, alt := range []struct {
		name string
		cfg  Config
	}{
		{"maxprocs workers", predictorConfig(runtime.GOMAXPROCS(0), false)},
		{"independent runs", predictorConfig(runtime.GOMAXPROCS(0), true)},
	} {
		got, err := Run(alt.cfg)
		if err != nil {
			t.Fatalf("%s: %v", alt.name, err)
		}
		for i := range ref.Series {
			if !reflect.DeepEqual(got.Series[i].Predictors, ref.Series[i].Predictors) {
				t.Errorf("%s: %s predictor tallies diverge:\nref: %+v\ngot: %+v",
					alt.name, ref.Series[i].Name, ref.Series[i].Predictors, got.Series[i].Predictors)
			}
		}
	}
}

// TestPredictorsDoNotPerturbStudyResults pins the tentpole's
// read-only-observer contract end to end: a study with predictors
// reports the exact measurement data of one without, and only appends
// figures — the paper figure set stays byte-identical.
func TestPredictorsDoNotPerturbStudyResults(t *testing.T) {
	plain := goldenConfig(t)
	plainRes, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	withPreds := goldenConfig(t)
	withPreds.Predictors = predict.Names()
	predRes, err := Run(withPreds)
	if err != nil {
		t.Fatal(err)
	}

	for i := range plainRes.Series {
		p, q := plainRes.Series[i], predRes.Series[i]
		q.Predictors = nil
		if !reflect.DeepEqual(p, q) {
			t.Errorf("%s: measurement data changed when predictors observe", p.Name)
		}
	}

	plainFigs, predFigs := plainRes.Figures(), predRes.Figures()
	if len(predFigs) != len(plainFigs)+2 {
		t.Fatalf("predictor run has %d figures, want %d (+figp1/figp2)", len(predFigs), len(plainFigs))
	}
	a, err := json.Marshal(plainFigs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(predFigs[:len(plainFigs)])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("paper figures are not byte-identical when predictors observe")
	}
	if predFigs[len(plainFigs)].ID != "figp1" || predFigs[len(plainFigs)+1].ID != "figp2" {
		t.Errorf("appended figures are %q, %q; want figp1, figp2",
			predFigs[len(plainFigs)].ID, predFigs[len(plainFigs)+1].ID)
	}
}

// TestPredictorCacheWarmRerun extends the warm-rerun guarantee to the
// predictor entry kind: a warm rerun with the same predictor list
// executes zero guest blocks and replays identical tallies, while a
// changed predictor list re-executes the reference trace (its tallies
// are not in the store) without disturbing the legacy entries.
func TestPredictorCacheWarmRerun(t *testing.T) {
	dir := t.TempDir()
	open := func() *resultcache.Store {
		store, err := resultcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return store
	}
	withPreds := func(names []string) Config {
		cfg := goldenConfig(t)
		cfg.Cache = open()
		cfg.Predictors = names
		return cfg
	}

	coldRes, err := Run(withPreds(predict.Names()))
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.Perf.BlocksExecuted == 0 {
		t.Fatal("cold study executed no guest blocks")
	}

	warmRes, err := Run(withPreds(predict.Names()))
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Perf.BlocksExecuted != 0 {
		t.Fatalf("warm rerun executed %d guest blocks, want 0 (bp entry should replay)", warmRes.Perf.BlocksExecuted)
	}
	if !reflect.DeepEqual(coldRes.Series, warmRes.Series) {
		t.Fatal("warm series (including predictor tallies) differ from cold")
	}

	// A different predictor list misses the bp entry: the reference
	// trace re-executes to feed the new predictors, and the fresh
	// tallies agree with the cold run's on the shared predictors.
	altRes, err := Run(withPreds([]string{"2bit"}))
	if err != nil {
		t.Fatal(err)
	}
	if altRes.Perf.BlocksExecuted == 0 {
		t.Fatal("changed predictor list must re-execute the reference trace")
	}
	for i := range altRes.Series {
		got := altRes.Series[i].Predictors
		if len(got) != 1 || got[0].Predictor != "2bit" {
			t.Fatalf("%s: tallies %+v, want exactly 2bit", altRes.Series[i].Name, got)
		}
		for _, p := range coldRes.Series[i].Predictors {
			if p.Predictor == "2bit" && !reflect.DeepEqual(p, got[0]) {
				t.Errorf("%s: 2bit tally changed across predictor selections: %+v vs %+v",
					altRes.Series[i].Name, p, got[0])
			}
		}
	}
}

// TestPredictorCheckpointCompatibility: predictor runs checkpoint and
// resume like any other, and a checkpoint written with one predictor
// selection refuses to resume a run with another — mixing them would
// silently drop or fabricate tallies.
func TestPredictorCheckpointCompatibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	cfg := goldenConfig(t)
	cfg.Predictors = predict.Names()
	cfg.Checkpoint = path
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	resumeCfg := goldenConfig(t)
	resumeCfg.Predictors = predict.Names()
	resumeCfg.Checkpoint = path
	resumeCfg.Resume = true
	resumed, err := Run(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Perf.ResumedSeries != len(resumed.Series) {
		t.Fatalf("resumed %d of %d series", resumed.Perf.ResumedSeries, len(resumed.Series))
	}
	if !reflect.DeepEqual(first.Series, resumed.Series) {
		t.Fatal("resumed series (including predictor tallies) differ")
	}

	mismatch := goldenConfig(t)
	mismatch.Predictors = []string{"2bit"}
	mismatch.Checkpoint = path
	mismatch.Resume = true
	if _, err := Run(mismatch); err == nil {
		t.Fatal("resume with a different predictor selection must be rejected")
	}
}

// TestValidateRejectsBadPredictors covers the config-level gate.
func TestValidateRejectsBadPredictors(t *testing.T) {
	for _, preds := range [][]string{{"bogus"}, {"2bit", "2bit"}} {
		cfg := Config{Scale: 1, Thresholds: []float64{100}, Benchmarks: []*spec.Benchmark{spec.ByName("gzip")}, Predictors: preds}
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted predictors %v", preds)
		}
	}
}
