package study

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/spec"
)

// robustConfig is the reduced study configuration the robustness tests
// share: two benchmarks, short ladder, tiny scale.
func robustConfig(names ...string) Config {
	var benches []*spec.Benchmark
	for _, n := range names {
		benches = append(benches, spec.ByName(n))
	}
	return Config{
		Scale:      0.001,
		Thresholds: []float64{1, 100, 1e3, 1e6},
		Benchmarks: benches,
	}
}

func plan(t *testing.T, spec string) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// figureJSON is the byte-exact figure fingerprint the acceptance
// criteria compare (Gaps are json:"-" and so excluded by design).
func figureJSON(t *testing.T, r *Results) string {
	t.Helper()
	data, err := json.Marshal(r.Figures())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDegradeStudyCompletes is the headline acceptance test: with the
// Degrade policy and one injected failing benchmark the study must
// complete, list exactly one UnitFailure, and produce figure rows
// byte-identical to a fault-free run over the surviving benchmarks.
func TestDegradeStudyCompletes(t *testing.T) {
	clean, err := Run(robustConfig("swim"))
	if err != nil {
		t.Fatal(err)
	}

	cfg := robustConfig("gzip", "swim")
	cfg.Policy = core.Degrade
	cfg.Faults = plan(t, "trap:gzip/ref@500")
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("degraded study failed outright: %v", err)
	}

	if len(res.Failures) != 1 {
		t.Fatalf("Failures = %+v, want exactly one", res.Failures)
	}
	f := res.Failures[0]
	if f.Bench != "gzip" || f.Unit != obs.UnitRef {
		t.Fatalf("failure misattributed: %+v", f)
	}
	if !strings.Contains(f.Err, "injected guest trap at block 500") {
		t.Fatalf("failure lost the trap diagnostic: %q", f.Err)
	}
	if res.Perf.UnitFailures != 1 {
		t.Fatalf("Perf.UnitFailures = %d, want 1", res.Perf.UnitFailures)
	}

	if got, want := figureJSON(t, res), figureJSON(t, clean); got != want {
		t.Fatal("degraded figures are not byte-identical to the fault-free survivor run")
	}

	// The exclusion must be visible, not silent: every figure carries
	// the gap annotation and the reports render it.
	figs := res.Figures()
	if len(figs[0].Gaps) != 1 || !strings.Contains(figs[0].Gaps[0], "gzip excluded") {
		t.Fatalf("Gaps = %v, want one gzip exclusion", figs[0].Gaps)
	}
	if md := res.MarkdownReport(); !strings.Contains(md, "gzip excluded") {
		t.Fatal("markdown report hides the gap")
	}
	if txt := res.TextReport(false); !strings.Contains(txt, "gzip excluded") {
		t.Fatal("text report hides the gap")
	}
}

// TestFailFastUnchangedByDefault: the zero-value policy must keep the
// historical behavior — first unit error cancels the study.
func TestFailFastUnchangedByDefault(t *testing.T) {
	cfg := robustConfig("gzip", "swim")
	cfg.Faults = plan(t, "build:gzip/ref")
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "faultinject: build failure") {
		t.Fatalf("fail-fast study did not surface the injected failure: %v", err)
	}
}

// TestCheckpointResumeByteIdentical is the resume acceptance test: a
// study stopped mid-run and resumed must produce byte-identical
// figures while re-executing only the unfinished benchmarks.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	full, err := Run(robustConfig("gzip", "swim"))
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "state.jsonl")
	first := robustConfig("gzip", "swim")
	first.Checkpoint = ckpt
	first.StopAfter = 1
	partial, err := Run(first)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped study returned %v, want ErrStopped", err)
	}
	if partial == nil {
		t.Fatal("stopped study returned no partial results")
	}

	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("no checkpoint written before stop: %v", err)
	}
	stored := strings.Count(strings.TrimSpace(string(data)), "\n") // header + series
	if stored < 1 {
		t.Fatalf("checkpoint holds no series:\n%s", data)
	}

	second := robustConfig("gzip", "swim")
	second.Checkpoint = ckpt
	second.Resume = true
	res, err := Run(second)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if res.Perf.ResumedSeries != stored {
		t.Fatalf("ResumedSeries = %d, checkpoint held %d", res.Perf.ResumedSeries, stored)
	}
	if got, want := figureJSON(t, res), figureJSON(t, full); got != want {
		t.Fatal("resumed figures are not byte-identical to the uninterrupted run")
	}

	// A second resume restores everything and re-executes nothing.
	third := robustConfig("gzip", "swim")
	third.Checkpoint = ckpt
	third.Resume = true
	res3, err := Run(third)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Perf.ResumedSeries != 2 || res3.Perf.BlocksExecuted != 0 {
		t.Fatalf("full resume still executed work: resumed=%d blocks=%d",
			res3.Perf.ResumedSeries, res3.Perf.BlocksExecuted)
	}
	if got, want := figureJSON(t, res3), figureJSON(t, full); got != want {
		t.Fatal("fully-resumed figures are not byte-identical to the uninterrupted run")
	}
}

// TestResumeRetriesFailedBenchmark: a degraded benchmark is not
// checkpointed, so a resumed run (without the fault) completes it and
// converges to the clean result.
func TestResumeRetriesFailedBenchmark(t *testing.T) {
	full, err := Run(robustConfig("gzip", "swim"))
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "state.jsonl")
	first := robustConfig("gzip", "swim")
	first.Checkpoint = ckpt
	first.Policy = core.Degrade
	first.Faults = plan(t, "build:gzip/ref")
	if _, err := Run(first); err != nil {
		t.Fatal(err)
	}
	second := robustConfig("gzip", "swim")
	second.Checkpoint = ckpt
	second.Resume = true
	res, err := Run(second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Perf.ResumedSeries != 1 {
		t.Fatalf("ResumedSeries = %d, want 1 (swim only)", res.Perf.ResumedSeries)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("failures survived the resume: %+v", res.Failures)
	}
	if got, want := figureJSON(t, res), figureJSON(t, full); got != want {
		t.Fatal("resume-after-degrade figures differ from the clean run")
	}
}

// TestResumeRejectsMismatchedFingerprint: resuming under a different
// scale, ladder or benchmark set must fail with an error naming the
// difference, never silently mix results.
func TestResumeRejectsMismatchedFingerprint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.jsonl")
	base := robustConfig("gzip", "swim")
	base.Checkpoint = ckpt
	if _, err := Run(base); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"scale", func(c *Config) { c.Scale = 0.002 }, "scale"},
		{"ladder", func(c *Config) { c.Thresholds = []float64{1, 100} }, "ladder"},
		{"benchmarks", func(c *Config) { c.Benchmarks = c.Benchmarks[:1] }, "benchmarks"},
		{"runmode", func(c *Config) { c.IndependentRuns = true }, "independent_runs"},
	}
	for _, tc := range cases {
		cfg := robustConfig("gzip", "swim")
		cfg.Checkpoint = ckpt
		cfg.Resume = true
		tc.mutate(&cfg)
		_, err := Run(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s mismatch: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Corruption must be a hard error too.
	if err := os.WriteFile(ckpt, []byte("{\"version\":1 garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := robustConfig("gzip", "swim")
	cfg.Checkpoint = ckpt
	cfg.Resume = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}

// TestResumeWithMissingFileStartsFresh: a kill before the first
// completion leaves no checkpoint; resume must run the whole study.
func TestResumeWithMissingFileStartsFresh(t *testing.T) {
	cfg := robustConfig("swim")
	cfg.Checkpoint = filepath.Join(t.TempDir(), "never-written.jsonl")
	cfg.Resume = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Perf.ResumedSeries != 0 || res.Perf.CheckpointWrites != 1 {
		t.Fatalf("resumed=%d writes=%d, want 0 and 1", res.Perf.ResumedSeries, res.Perf.CheckpointWrites)
	}
}

// TestValidateNamesTheBadValue: every rejected configuration names the
// offending value.
func TestValidateNamesTheBadValue(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"nan scale", func(c *Config) { c.Scale = math.NaN() }, "scale"},
		{"negative scale", func(c *Config) { c.Scale = -2 }, "-2"},
		{"zero threshold", func(c *Config) { c.Thresholds = []float64{0, 100} }, "threshold 0"},
		{"nan threshold", func(c *Config) { c.Thresholds = []float64{math.NaN()} }, "threshold"},
		{"dup threshold", func(c *Config) { c.Thresholds = []float64{100, 100} }, "duplicate threshold 100"},
		{"nil bench", func(c *Config) { c.Benchmarks = []*spec.Benchmark{nil} }, "benchmark 0"},
		{"dup bench", func(c *Config) { c.Benchmarks = append(c.Benchmarks, c.Benchmarks[0]) }, "twice"},
		{"negative attempts", func(c *Config) { c.MaxAttempts = -1 }, "max attempts"},
		{"negative backoff", func(c *Config) { c.RetryBackoff = -1 }, "backoff"},
		{"negative stopafter", func(c *Config) { c.StopAfter = -1 }, "stop-after"},
		{"resume sans checkpoint", func(c *Config) { c.Resume = true }, "resume"},
	}
	for _, tc := range cases {
		cfg := robustConfig("gzip")
		tc.mutate(&cfg)
		_, err := Run(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestStopChannelDrains: closing Stop ends the study with ErrStopped
// and partial results.
func TestStopChannelDrains(t *testing.T) {
	stop := make(chan struct{})
	close(stop) // stop immediately: nothing should run
	cfg := robustConfig("gzip", "swim")
	cfg.Stop = stop
	res, err := Run(cfg)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if res == nil {
		t.Fatal("no partial results returned")
	}
	if res.Perf.Workers == 0 {
		t.Fatal("partial results carry no Perf")
	}
}
