package study

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/spec"
)

// TestWorkersDefaultIsGOMAXPROCS: with Parallelism unset, Perf must
// report the scheduler's actual pool size — GOMAXPROCS, the same default
// the scheduler itself resolves to (the study used to claim NumCPU while
// the pool ran at GOMAXPROCS).
func TestWorkersDefaultIsGOMAXPROCS(t *testing.T) {
	res, err := Run(Config{
		Scale:      0.001,
		Thresholds: []float64{100},
		Benchmarks: []*spec.Benchmark{spec.ByName("gzip")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); res.Perf.Workers != want {
		t.Fatalf("Perf.Workers = %d, want GOMAXPROCS = %d", res.Perf.Workers, want)
	}
}

// failWriter fails every write after the first n bytes-worth of calls.
type failWriter struct{ fails int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.fails++
	return 0, errors.New("sink closed")
}

// TestProgressWriteErrorsCounted: a broken progress sink must not abort
// the study, and every dropped line must be counted in Perf.
func TestProgressWriteErrorsCounted(t *testing.T) {
	sink := &failWriter{}
	res, err := Run(Config{
		Scale:      0.001,
		Thresholds: []float64{100},
		Benchmarks: []*spec.Benchmark{spec.ByName("gzip"), spec.ByName("swim")},
		Progress:   sink,
	})
	if err != nil {
		t.Fatalf("broken progress sink aborted the study: %v", err)
	}
	if res.Perf.ProgressWriteErrors != 2 {
		t.Fatalf("ProgressWriteErrors = %d, want 2", res.Perf.ProgressWriteErrors)
	}
	if sink.fails != 2 {
		t.Fatalf("writer saw %d writes, want 2", sink.fails)
	}
	for _, s := range res.Series {
		if s.Name == "" || len(s.PerT) == 0 {
			t.Fatalf("series incomplete despite write errors: %+v", s)
		}
	}
}

// TestLadderCollapseAtSmallScale: at Scale 1e-4 the paper-unit rungs
// 1, 100 and 1e3 all clamp to effective threshold 1. The study must run
// one follower for the three of them (same block volume as the
// two-rung ladder) while reporting each under its own paper label.
func TestLadderCollapseAtSmallScale(t *testing.T) {
	base := Config{
		Scale:      1e-4,
		Benchmarks: []*spec.Benchmark{spec.ByName("gzip")},
	}
	full := base
	full.Thresholds = []float64{1, 100, 1e3, 1e5}
	wide, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	two := base
	two.Thresholds = []float64{1, 1e5}
	narrow, err := Run(two)
	if err != nil {
		t.Fatal(err)
	}

	if got := EffectiveThreshold(1e3, 1e-4); got != 1 {
		t.Fatalf("EffectiveThreshold(1e3, 1e-4) = %d, want 1 (test premise)", got)
	}
	if !reflect.DeepEqual(wide.PaperT, []float64{1, 100, 1e3, 1e5}) {
		t.Fatalf("paper labels lost: %v", wide.PaperT)
	}
	s := wide.Series[0]
	for i := 1; i < 3; i++ {
		if !reflect.DeepEqual(s.PerT[0], s.PerT[i]) {
			t.Fatalf("collapsed rungs 0 and %d differ", i)
		}
	}
	if !reflect.DeepEqual(s.PerT[0], narrow.Series[0].PerT[0]) ||
		!reflect.DeepEqual(s.PerT[3], narrow.Series[0].PerT[1]) {
		t.Fatal("collapsed ladder results differ from the two-rung ladder")
	}
	if wide.Perf.BlocksExecuted != narrow.Perf.BlocksExecuted {
		t.Fatalf("collapsed ladder executed %d blocks, two-rung ladder %d — dedup not applied",
			wide.Perf.BlocksExecuted, narrow.Perf.BlocksExecuted)
	}
}

// TestTraceDoesNotPerturbResults: running with a flight recorder
// attached must leave the series untouched and produce a parseable
// event stream covering every pipeline phase.
func TestTraceDoesNotPerturbResults(t *testing.T) {
	cfg := Config{
		Scale:      0.001,
		Thresholds: []float64{1, 100, 1e3},
		Benchmarks: []*spec.Benchmark{spec.ByName("gzip"), spec.ByName("swim")},
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	traced := cfg
	traced.Trace = obs.NewRecorder(&buf)
	res, err := Run(traced)
	if dropped, cerr := traced.Trace.Close(); cerr != nil || dropped != 0 {
		t.Fatalf("recorder close: dropped=%d err=%v", dropped, cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Series, plain.Series) {
		t.Fatal("series differ with tracing enabled")
	}
	if res.Perf.TraceEventsDropped != 0 {
		t.Fatalf("TraceEventsDropped = %d, want 0", res.Perf.TraceEventsDropped)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("trace stream invalid: %v", err)
	}
	units := map[string]int{}
	for _, ev := range events {
		units[ev.Unit]++
	}
	for _, unit := range []string{obs.UnitBuild, obs.UnitRef, obs.UnitTrain, obs.UnitCompare, obs.UnitTrainCompare} {
		if units[unit] == 0 {
			t.Fatalf("no %s events in trace: %v", unit, units)
		}
	}
	// One compare event per distinct effective threshold per benchmark,
	// one train comparison per benchmark.
	if units[obs.UnitTrainCompare] != len(cfg.Benchmarks) {
		t.Fatalf("train_compare events = %d, want %d", units[obs.UnitTrainCompare], len(cfg.Benchmarks))
	}
}
