package study

import (
	"strings"
	"testing"
)

func TestMarkdownReport(t *testing.T) {
	res := tinyStudy(t, "vortex", "swim")
	md := res.MarkdownReport()
	for _, want := range []string{
		"### fig8:", "### fig17:", "### fig18:",
		"| T |", "| 1k |", "|---|",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown report missing %q", want)
		}
	}
	// Every figure section present exactly once.
	for _, id := range []string{"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18"} {
		if got := strings.Count(md, "### "+id+":"); got != 1 {
			t.Fatalf("figure %s appears %d times", id, got)
		}
	}
}

func TestTextReport(t *testing.T) {
	res := tinyStudy(t, "vortex")
	text := res.TextReport(false)
	if !strings.Contains(text, "== fig8:") || !strings.Contains(text, "note:") {
		t.Fatalf("text report incomplete:\n%.400s", text)
	}
	withCharts := res.TextReport(true)
	if len(withCharts) <= len(text) {
		t.Fatal("charts did not add output")
	}
}

func TestFormatThreshold(t *testing.T) {
	cases := map[float64]string{100: "100", 2000: "2k", 4e6: "4M", 160000: "160k", 50: "50"}
	for in, want := range cases {
		if got := formatThreshold(in); got != want {
			t.Fatalf("formatThreshold(%v) = %q, want %q", in, got, want)
		}
	}
}
