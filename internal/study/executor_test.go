package study

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
)

// TestLocalExecutorEquivalence pins the UnitExecutor extraction as a
// pure refactor: a study routed through a LocalExecutor bound to the
// study's own pool must produce byte-identical figures — and
// deep-equal series — to the direct scheduling path, over the full
// spec suite.
func TestLocalExecutorEquivalence(t *testing.T) {
	run := func(exec core.UnitExecutor) (*Results, []byte) {
		t.Helper()
		res, err := Run(Config{
			Scale:      0.001,
			Thresholds: []float64{1, 100, 1e4, 1e6},
			Executor:   exec,
		})
		if err != nil {
			t.Fatal(err)
		}
		fig, err := json.MarshalIndent(res.Figures(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return res, fig
	}
	ref, refFig := run(nil)
	got, gotFig := run(&core.LocalExecutor{})
	if !reflect.DeepEqual(got.Series, ref.Series) {
		t.Fatal("executor-mode series differ from the direct scheduling path")
	}
	if !reflect.DeepEqual(gotFig, refFig) {
		t.Fatal("executor-mode figures are not byte-identical to the direct scheduling path")
	}
}

// TestExecutorStopAfter: the deterministic stop knob must drain an
// executor-mode study the same way it drains the direct path — pending
// ExecuteUnit calls unblock on the pool's cancellation instead of
// hanging the run.
func TestExecutorStopAfter(t *testing.T) {
	res, err := Run(Config{
		Scale:      0.001,
		Thresholds: []float64{100},
		Benchmarks: []*spec.Benchmark{spec.ByName("gzip"), spec.ByName("swim"), spec.ByName("mcf")},
		Executor:   &core.LocalExecutor{},
		StopAfter:  1,
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	done := 0
	for _, s := range res.Series {
		if s.Name != "" {
			done++
		}
	}
	if done < 1 || done == len(res.Series) {
		t.Fatalf("stopped study completed %d/%d series, want a strict partial", done, len(res.Series))
	}
}

// TestExecutorHardErrorFailsStudy: a non-stop executor error must
// cancel the study like a fail-fast unit failure, not vanish.
func TestExecutorHardErrorFailsStudy(t *testing.T) {
	_, err := Run(Config{
		Scale:      0.001,
		Thresholds: []float64{100},
		Benchmarks: []*spec.Benchmark{spec.ByName("gzip")},
		Executor:   failingExecutor{},
	})
	if err == nil || !errors.Is(err, errExecutorBroken) {
		t.Fatalf("err = %v, want wrapped errExecutorBroken", err)
	}
}

var errExecutorBroken = errors.New("executor transport broken")

type failingExecutor struct{}

func (failingExecutor) ExecuteUnit(core.Target, core.Options, <-chan struct{}) (*core.BenchmarkResult, error) {
	return nil, errExecutorBroken
}
