package study

import (
	"testing"

	"repro/internal/spec"
)

// TestPaperShapes asserts the paper's qualitative stories on a reduced
// study: the trends that Figures 8-18 exist to show. It runs a subset
// of the suite at scale 0.05, which keeps the stories' mechanisms
// intact (phase boundaries, freeze windows and run lengths shrink
// together) at reduced resolution.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced study still takes tens of seconds")
	}
	names := []string{"gzip", "mcf", "vortex", "perlbmk", "swim", "wupwise", "lucas"}
	var benches []*spec.Benchmark
	for _, n := range names {
		benches = append(benches, spec.ByName(n))
	}
	res, err := Run(Config{Scale: 0.05, Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}

	last := len(res.PaperT) - 1

	t.Run("stationary benchmarks predict well at small T", func(t *testing.T) {
		// At scale 0.05 a paper threshold of 2000 means 100 actual
		// samples, the paper's smallest window; below that the reduced
		// scale inflates sampling noise beyond anything the paper saw.
		for _, name := range []string{"vortex", "swim"} {
			s := res.ByName(name)
			first := s.PerT[res.tIndex(2000)]
			if first.Summary.SdBP > 0.08 {
				t.Errorf("%s Sd.BP(2000) = %v, want small (stationary)", name, first.Summary.SdBP)
			}
		}
	})

	t.Run("mcf is poorly predicted at every threshold", func(t *testing.T) {
		s := res.ByName("mcf")
		for i, tr := range s.PerT {
			if res.PaperT[i] >= 100 && res.PaperT[i] <= 160000 {
				if tr.Summary.SdBP < 0.1 {
					t.Errorf("mcf Sd.BP(%v) = %v, want persistently high", res.PaperT[i], tr.Summary.SdBP)
				}
			}
		}
		if s.Train.SdBP > s.PerT[res.tIndex(100)].Summary.SdBP {
			t.Error("mcf train profile should beat its initial profile")
		}
	})

	t.Run("perlbmk train input predicts terribly, INIP well", func(t *testing.T) {
		s := res.ByName("perlbmk")
		if s.Train.BPMismatch < 0.3 {
			t.Errorf("perlbmk train mismatch = %v, want ~50%%", s.Train.BPMismatch)
		}
		inip := s.PerT[res.tIndex(200)]
		if inip.Summary.BPMismatch > 0.1 {
			t.Errorf("perlbmk INIP(200) mismatch = %v, want tiny", inip.Summary.BPMismatch)
		}
	})

	t.Run("gzip mismatch drops after the early phase", func(t *testing.T) {
		s := res.ByName("gzip")
		early := s.PerT[res.tIndex(100)].Summary.BPMismatch
		late := s.PerT[res.tIndex(20000)].Summary.BPMismatch
		if early <= late {
			t.Errorf("gzip mismatch: early %v vs late %v, want early > late", early, late)
		}
	})

	t.Run("wupwise mispredicted until its late flip", func(t *testing.T) {
		s := res.ByName("wupwise")
		mid := s.PerT[res.tIndex(5000)].Summary.BPMismatch
		end := s.PerT[last].Summary.BPMismatch
		if mid < 0.1 {
			t.Errorf("wupwise mismatch at 5k = %v, want high", mid)
		}
		if end > mid/2 {
			t.Errorf("wupwise mismatch at top of ladder = %v, want resolved (mid %v)", end, mid)
		}
	})

	t.Run("profiling ops grow with T and undercut the training run", func(t *testing.T) {
		fig := res.Figure18()
		for _, series := range fig.Series {
			if series.Label == "train" {
				continue
			}
			if series.Y[0] > 0.3 {
				t.Errorf("%s normalized ops at smallest T = %v, want far below train", series.Label, series.Y[0])
			}
			for i := 1; i < len(series.Y); i++ {
				if series.Y[i]+1e-9 < series.Y[i-1] {
					t.Errorf("%s normalized ops not monotone: %v", series.Label, series.Y)
					break
				}
			}
		}
	})

	t.Run("performance peaks at an intermediate threshold", func(t *testing.T) {
		fig := res.Figure17()
		var intSeries Series
		for _, s := range fig.Series {
			if s.Label == "int" {
				intSeries = s
			}
		}
		if intSeries.Y[0] != 1 {
			t.Fatalf("fig17 base not 1: %v", intSeries.Y[0])
		}
		best, bestIdx := 0.0, 0
		for i, v := range intSeries.Y {
			if v > best {
				best, bestIdx = v, i
			}
		}
		if bestIdx == 0 || bestIdx == len(intSeries.Y)-1 {
			t.Errorf("fig17 int peak at edge (idx %d): %v", bestIdx, intSeries.Y)
		}
		if last := intSeries.Y[len(intSeries.Y)-1]; last >= best {
			t.Errorf("fig17: very large thresholds should be worse than the peak (%v vs %v)", last, best)
		}
	})

	t.Run("loop regions and traces actually form", func(t *testing.T) {
		s := res.ByName("mcf")
		tr := s.PerT[res.tIndex(1000)]
		if tr.Summary.Loops == 0 || tr.Summary.Traces == 0 {
			t.Errorf("mcf INIP(1000) has %d loops, %d traces; want both > 0", tr.Summary.Loops, tr.Summary.Traces)
		}
	})
}
