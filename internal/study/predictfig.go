package study

import (
	"fmt"

	"repro/internal/predict"
	"repro/internal/spec"
)

// Predictor-zoo figures: what hardware-style dynamic branch predictors
// achieve on the very same branch streams the INIP(T) accuracy figures
// are measured over. They exist only when the study ran with
// Config.Predictors — a predictor-less study's figure list (and thus
// every golden artifact) is byte-identical to builds without this file.

// predictorNames returns the predictor column order, taken from the
// first complete series carrying tallies (all series share the
// Config.Predictors order). Empty when the study ran no predictors.
func (r *Results) predictorNames() []string {
	for i := range r.Series {
		s := &r.Series[i]
		if !s.ok() || len(s.Predictors) == 0 {
			continue
		}
		names := make([]string, len(s.Predictors))
		for j, p := range s.Predictors {
			names[j] = p.Predictor
		}
		return names
	}
	return nil
}

// predictorRate returns a series' mispredict rate for the named
// predictor (0 when absent, which excluded series never reach).
func predictorRate(s *BenchmarkSeries, name string) float64 {
	for _, p := range s.Predictors {
		if p.Predictor == name {
			return p.MispredictRate()
		}
	}
	return 0
}

// avgPredictor averages a predictor's mispredict rate over the
// benchmark class.
func (r *Results) avgPredictor(c spec.Class, name string) float64 {
	idxs := r.classIndexes(c)
	if len(idxs) == 0 {
		return 0
	}
	sum := 0.0
	for _, bi := range idxs {
		sum += predictorRate(&r.Series[bi], name)
	}
	return sum / float64(len(idxs))
}

// FigureP1 plots per-predictor mispredict rates against the INIP(T) BP
// mismatch curves of Figure 10: the dynamic-prediction baseline the
// paper's initial-profile accuracy can be compared to. Predictor lines
// are constant over the ladder — the predictors observe the reference
// trace, which no threshold shapes.
func (r *Results) FigureP1() Figure {
	keep := r.accuracyIndexes()
	names := r.predictorNames()
	fig := Figure{
		ID: "figp1", Title: "Dynamic predictor mispredict rates vs INIP branch mismatch",
		XLabel: "retranslation threshold", YLabel: "mispredict / mismatch rate",
		X: r.xValues(keep),
		Series: []Series{
			{Label: "int inip", Y: r.avgOver(spec.INT, keep, bpMis)},
			{Label: "fp inip", Y: r.avgOver(spec.FP, keep, bpMis)},
		},
		Notes: []string{
			"Predictor lines are threshold-independent: predictors observe the reference trace.",
			"INIP lines repeat Figure 10's BP mismatch rates for comparison.",
		},
	}
	for _, name := range names {
		fig.Series = append(fig.Series,
			constSeries("int "+name, r.avgPredictor(spec.INT, name), len(keep)),
			constSeries("fp "+name, r.avgPredictor(spec.FP, name), len(keep)))
	}
	return fig
}

// FigureP2 breaks mispredict rates down by branch-predictability class
// (biased / mixed / phase-changing, classified statically from the
// spec behaviour models). X carries predictor ordinals; the note maps
// them back to names and records each benchmark's class.
func (r *Results) FigureP2() Figure {
	names := r.predictorNames()
	x := make([]float64, len(names))
	for i := range x {
		x[i] = float64(i + 1)
	}
	classOf := func(s *BenchmarkSeries) (spec.Predictability, bool) {
		b := spec.ByName(s.Name)
		if b == nil {
			return "", false
		}
		return b.Predictability(), true
	}
	fig := Figure{
		ID: "figp2", Title: "Dynamic predictor mispredict rates by branch-predictability class",
		XLabel: "predictor", YLabel: "mispredict rate",
		X: x,
	}
	for i, name := range names {
		fig.Notes = append(fig.Notes, fmt.Sprintf("x=%d: %s", i+1, name))
	}
	for _, pc := range spec.PredictabilityClasses() {
		y := make([]float64, len(names))
		n := 0
		var members []string
		for bi := range r.Series {
			s := &r.Series[bi]
			if !s.ok() || len(s.Predictors) == 0 {
				continue
			}
			c, known := classOf(s)
			if !known || c != pc {
				continue
			}
			for j, name := range names {
				y[j] += predictorRate(s, name)
			}
			n++
			members = append(members, s.Name)
		}
		if n == 0 {
			continue
		}
		for j := range y {
			y[j] /= float64(n)
		}
		fig.Series = append(fig.Series, Series{Label: string(pc), Y: y})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %s", pc, joinNames(members)))
	}
	return fig
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// predictorFigures returns the predictor-zoo figures, or nil when the
// study ran no predictors — keeping the default figure list (and every
// golden artifact) byte-identical.
func (r *Results) predictorFigures() []Figure {
	if len(r.predictorNames()) == 0 {
		return nil
	}
	return []Figure{r.FigureP1(), r.FigureP2()}
}

// PredictorResults aggregates the per-benchmark tallies into one
// suite-level table row per predictor, in column order — the "Sd.BP
// versus BP(predictor)" view reports render.
func (r *Results) PredictorResults() []predict.Result {
	names := r.predictorNames()
	out := make([]predict.Result, len(names))
	for i, name := range names {
		out[i].Predictor = name
		for bi := range r.Series {
			s := &r.Series[bi]
			if !s.ok() {
				continue
			}
			for _, p := range s.Predictors {
				if p.Predictor == name {
					out[i].Branches += p.Branches
					out[i].Mispredicts += p.Mispredicts
				}
			}
		}
	}
	return out
}
