package study

import (
	"fmt"
	"time"

	"repro/internal/learned"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/spec"
)

// Learned-predictor figures: what a profile-free static model achieves
// on the very same branch streams the INIP(T) accuracy figures are
// measured over. They exist only when the study ran with Config.Learned
// — a learned-less study's figure list (and thus every golden artifact)
// is byte-identical to builds without this file.

// fitLearned runs the suite-level leave-one-benchmark-out fit over
// every cleanly completed series, in suite order. Fewer than two clean
// collections (a single-benchmark study, or a stop/degrade shrank the
// suite) leave Results.Learned nil rather than fit a model with no
// held-out fold; an actual training failure is returned.
func (r *Results) fitLearned(lcfg learned.Config, trace *obs.Recorder) error {
	var data []learned.BenchData
	for i := range r.Series {
		s := &r.Series[i]
		if s.ok() && s.Learned != nil {
			data = append(data, *s.Learned)
		}
	}
	if len(data) < 2 {
		return nil
	}
	start := time.Now()
	cv, err := learned.CrossValidate(lcfg, data)
	trace.Record("suite", obs.UnitLearnedFit, 0, 0, start, time.Since(start), 0, err)
	if err != nil {
		return err
	}
	r.Learned = cv
	return nil
}

// learnedFoldRate returns the named benchmark's held-out mispredict
// rate (learned model or always-taken baseline), or false when the
// benchmark contributed no fold.
func (r *Results) learnedFoldRate(bench string, taken bool) (float64, bool) {
	if r.Learned == nil {
		return 0, false
	}
	f, ok := r.Learned.FoldFor(bench)
	if !ok {
		return 0, false
	}
	if taken {
		return f.TakenRate(), true
	}
	return f.Rate(), true
}

// FigureL1 plots the learned model's held-out mispredict rate against
// the INIP(T) BP mismatch ladder of Figure 10, the training-profile
// references, and the always-taken baseline. The learned and baseline
// lines are constant over the ladder: the model is static, so no
// threshold shapes it.
func (r *Results) FigureL1() Figure {
	keep := r.accuracyIndexes()
	branches, _, _ := r.Learned.Totals()
	return Figure{
		ID: "figl1", Title: "Learned static model vs INIP branch mismatch",
		XLabel: "retranslation threshold", YLabel: "mispredict / mismatch rate",
		X: r.xValues(keep),
		Series: []Series{
			{Label: "int inip", Y: r.avgOver(spec.INT, keep, bpMis)},
			{Label: "fp inip", Y: r.avgOver(spec.FP, keep, bpMis)},
			constSeries("int train", r.avgTrain(spec.INT, trainBPMismatch), len(keep)),
			constSeries("fp train", r.avgTrain(spec.FP, trainBPMismatch), len(keep)),
			constSeries("learned (held-out)", r.Learned.Rate(), len(keep)),
			constSeries("always taken", r.Learned.TakenRate(), len(keep)),
		},
		Notes: []string{
			"Learned line is leave-one-benchmark-out: each benchmark is scored by a model that never saw any profile of it.",
			"Learned/taken lines are branch-level mispredict rates; INIP/train lines repeat Figure 10's range-based mismatch rates for comparison.",
			fmt.Sprintf("Model %s over %d held-out branches.", r.Learned.Fingerprint, branches),
		},
	}
}

// FigureL2 breaks the held-out accuracy down by branch-predictability
// class (biased / mixed / phase-changing, classified statically from
// the spec behaviour models), learned model next to the always-taken
// baseline. X carries class ordinals; the notes map them back to names
// and members.
func (r *Results) FigureL2() Figure {
	classes := spec.PredictabilityClasses()
	x := make([]float64, len(classes))
	for i := range x {
		x[i] = float64(i + 1)
	}
	fig := Figure{
		ID: "figl2", Title: "Learned static model accuracy by branch-predictability class",
		XLabel: "predictability class", YLabel: "mispredict rate",
		X: x,
	}
	learnedY := make([]float64, len(classes))
	takenY := make([]float64, len(classes))
	for ci, pc := range classes {
		fig.Notes = append(fig.Notes, fmt.Sprintf("x=%d: %s", ci+1, pc))
		n := 0
		var members []string
		for bi := range r.Series {
			s := &r.Series[bi]
			if !s.ok() {
				continue
			}
			b := spec.ByName(s.Name)
			if b == nil || b.Predictability() != pc {
				continue
			}
			lr, ok := r.learnedFoldRate(s.Name, false)
			if !ok {
				continue
			}
			tr, _ := r.learnedFoldRate(s.Name, true)
			learnedY[ci] += lr
			takenY[ci] += tr
			n++
			members = append(members, s.Name)
		}
		if n > 0 {
			learnedY[ci] /= float64(n)
			takenY[ci] /= float64(n)
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %s", pc, joinNames(members)))
	}
	fig.Series = append(fig.Series,
		Series{Label: "learned (held-out)", Y: learnedY},
		Series{Label: "always taken", Y: takenY})
	return fig
}

func trainBPMismatch(s metrics.Summary) float64 { return s.BPMismatch }

// learnedFigures returns the learned-model figures, or nil when the
// study ran no learned fit — keeping the default figure list (and every
// golden artifact) byte-identical.
func (r *Results) learnedFigures() []Figure {
	if r.Learned == nil {
		return nil
	}
	return []Figure{r.FigureL1(), r.FigureL2()}
}
