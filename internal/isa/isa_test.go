package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpAddi, Rd: 15, Rs: 14, Imm: MaxImm},
		{Op: OpAddi, Rd: 0, Rs: 0, Imm: MinImm},
		{Op: OpLoadi, Rd: 7, Imm: -1},
		{Op: OpBeq, Rs: 3, Rt: 4, Imm: -100},
		{Op: OpJmp, Imm: 4000},
		{Op: OpCall, Imm: -4000},
		{Op: OpRet},
		{Op: OpJr, Rs: 9},
		{Op: OpLoad, Rd: 2, Rs: 5, Imm: 40},
		{Op: OpStore, Rs: 5, Rt: 2, Imm: 40},
		{Op: OpIn, Rd: 11},
		{Op: OpFdiv, Rd: 1, Rs: 1, Rt: 1},
	}
	for _, in := range cases {
		got, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)): %v", in, err)
		}
		if got != in {
			t.Fatalf("round trip %+v -> %+v", in, got)
		}
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs, rt uint8, imm int16) bool {
		in := Inst{
			Op:  Op(int(op) % NumOps),
			Rd:  rd % NumRegs,
			Rs:  rs % NumRegs,
			Rt:  rt % NumRegs,
			Imm: int32(imm) % (MaxImm + 1),
		}
		got, err := Decode(Encode(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	bad := uint32(uint32(NumOps) << 26)
	if _, err := Decode(bad); err == nil {
		t.Fatal("Decode of invalid opcode succeeded")
	} else if !strings.Contains(err.Error(), "invalid instruction") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

func TestEncodePanicsOutOfRange(t *testing.T) {
	cases := []Inst{
		{Op: Op(200)},
		{Op: OpAdd, Rd: 16},
		{Op: OpAddi, Imm: MaxImm + 1},
		{Op: OpAddi, Imm: MinImm - 1},
	}
	for _, in := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Encode(%+v) did not panic", in)
				}
			}()
			Encode(in)
		}()
	}
}

func TestOpClassification(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		cond := op.IsCondBranch()
		uncond := op.IsUncondJump()
		ind := op.IsIndirect()
		n := 0
		if cond {
			n++
		}
		if uncond {
			n++
		}
		if ind {
			n++
		}
		if n > 1 {
			t.Fatalf("%v claims multiple control-transfer classes", op)
		}
		if cond && !op.EndsBlock() {
			t.Fatalf("%v is a branch but does not end a block", op)
		}
		if cond && !op.HasFallthrough() {
			t.Fatalf("conditional branch %v must have a fall-through", op)
		}
	}
	if OpJmp.HasFallthrough() || OpRet.HasFallthrough() || OpHalt.HasFallthrough() || OpJr.HasFallthrough() {
		t.Fatal("unconditional transfers must not fall through")
	}
	if !OpAdd.HasFallthrough() || !OpCall.HasFallthrough() {
		t.Fatal("add and call must fall through (call returns)")
	}
	if !OpHalt.EndsBlock() {
		t.Fatal("halt must end a block")
	}
	if OpAdd.EndsBlock() {
		t.Fatal("add must not end a block")
	}
}

func TestOpNamesComplete(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		name := op.String()
		if strings.HasPrefix(name, "op(") {
			t.Fatalf("opcode %d has no mnemonic", op)
		}
		back, ok := OpByName(name)
		if !ok || back != op {
			t.Fatalf("OpByName(%q) = %v, %v; want %v", name, back, ok, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Fatal("OpByName accepted an unknown mnemonic")
	}
}

func TestCostsPositive(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if op.Cost() <= 0 {
			t.Fatalf("%v has non-positive cost", op)
		}
	}
	if OpFdiv.Cost() <= OpAdd.Cost() {
		t.Fatal("fdiv should cost more than add")
	}
	if OpLoad.Cost() <= OpNop.Cost() {
		t.Fatal("load should cost more than nop")
	}
}

func TestDisassembleFormats(t *testing.T) {
	cases := map[string]Inst{
		"add r1, r2, r3":   {Op: OpAdd, Rd: 1, Rs: 2, Rt: 3},
		"addi r5, r5, -3":  {Op: OpAddi, Rd: 5, Rs: 5, Imm: -3},
		"loadi r2, 77":     {Op: OpLoadi, Rd: 2, Imm: 77},
		"mov r3, r9":       {Op: OpMov, Rd: 3, Rs: 9},
		"load r1, 8(r2)":   {Op: OpLoad, Rd: 1, Rs: 2, Imm: 8},
		"store r4, -4(r6)": {Op: OpStore, Rt: 4, Rs: 6, Imm: -4},
		"in r8":            {Op: OpIn, Rd: 8},
		"beq r1, r2, +5":   {Op: OpBeq, Rs: 1, Rt: 2, Imm: 5},
		"blt r1, r2, -9":   {Op: OpBlt, Rs: 1, Rt: 2, Imm: -9},
		"jmp +100":         {Op: OpJmp, Imm: 100},
		"call -7":          {Op: OpCall, Imm: -7},
		"jr r12":           {Op: OpJr, Rs: 12},
		"ret":              {Op: OpRet},
		"halt":             {Op: OpHalt},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}

func TestDisassembleListing(t *testing.T) {
	code := []uint32{
		Encode(Inst{Op: OpLoadi, Rd: 1, Imm: 10}),
		Encode(Inst{Op: OpHalt}),
		0xFFFFFFFF, // invalid
	}
	text := Disassemble(code, 100)
	for _, want := range []string{"100: loadi r1, 10", "101: halt", "102: .word", "invalid"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	w := Encode(Inst{Op: OpBeq, Rs: 1, Rt: 2, Imm: -100})
	for i := 0; i < b.N; i++ {
		if _, err := Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}
