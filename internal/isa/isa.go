// Package isa defines SG32, the synthetic 32-bit guest instruction set
// that the dynamic binary translator executes.
//
// SG32 stands in for IA-32 in the reproduction: the study's statistics
// depend only on the control-flow behaviour of guest code (conditional
// branches, loops, calls), not on the guest ISA's encoding details, so
// SG32 is a small fixed-width RISC-style ISA that is cheap to decode but
// still forces the translator to do real work: instructions are stored as
// encoded 32-bit words in a code image, and the translator must decode
// them, discover basic-block boundaries, and classify control transfers.
//
// Encoding (fixed 32-bit word):
//
//	bits 31..26  opcode
//	bits 25..22  rd
//	bits 21..18  rs
//	bits 17..14  rt
//	bits 13..0   imm14 (two's-complement signed)
//
// Control transfers are PC-relative in units of instruction words.
package isa

import (
	"fmt"
	"strings"
)

// NumRegs is the number of general-purpose guest registers r0..r15.
const NumRegs = 16

// Op is an SG32 opcode.
type Op uint8

// Opcode space. The comment after each opcode gives its semantics;
// rd/rs/rt are register indices and imm the signed 14-bit immediate.
const (
	OpNop   Op = iota // no operation
	OpHalt            // stop the guest program
	OpAdd             // rd = rs + rt
	OpSub             // rd = rs - rt
	OpMul             // rd = rs * rt
	OpAnd             // rd = rs & rt
	OpOr              // rd = rs | rt
	OpXor             // rd = rs ^ rt
	OpShl             // rd = rs << (rt & 31)
	OpShr             // rd = rs >> (rt & 31) (logical)
	OpAddi            // rd = rs + imm
	OpLoadi           // rd = imm (sign-extended)
	OpLuhi            // rd = rd<<13 | (imm & 0x1FFF) (shift in a 13-bit chunk)
	OpMov             // rd = rs
	OpLoad            // rd = mem[rs + imm]
	OpStore           // mem[rs + imm] = rt
	OpIn              // rd = next word of the input tape
	OpFadd            // rd = f32(rs) + f32(rt), float32 bit pattern
	OpFmul            // rd = f32(rs) * f32(rt)
	OpFdiv            // rd = f32(rs) / f32(rt)
	OpBeq             // if rs == rt: pc += imm
	OpBne             // if rs != rt: pc += imm
	OpBlt             // if int32(rs) < int32(rt): pc += imm
	OpBge             // if int32(rs) >= int32(rt): pc += imm
	OpJmp             // pc += imm (unconditional)
	OpJr              // pc = rs (absolute, register-indirect)
	OpCall            // push return pc; pc += imm
	OpRet             // pc = pop return pc
	opCount           // sentinel
)

// NumOps is the number of defined opcodes.
const NumOps = int(opCount)

var opNames = [...]string{
	OpNop: "nop", OpHalt: "halt",
	OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr",
	OpAddi: "addi", OpLoadi: "loadi", OpLuhi: "luhi", OpMov: "mov",
	OpLoad: "load", OpStore: "store", OpIn: "in",
	OpFadd: "fadd", OpFmul: "fmul", OpFdiv: "fdiv",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJmp: "jmp", OpJr: "jr", OpCall: "call", OpRet: "ret",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpByName maps a mnemonic back to its opcode; ok is false for unknown
// mnemonics.
func OpByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return Op(op), true
		}
	}
	return 0, false
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return int(o) < NumOps }

// IsCondBranch reports whether o is a conditional branch (two-way control
// transfer with a fall-through successor). These are the instructions
// whose taken counts the profiling phase instruments.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsUncondJump reports whether o unconditionally transfers control to a
// statically known target (direct jump or call).
func (o Op) IsUncondJump() bool { return o == OpJmp || o == OpCall }

// IsIndirect reports whether o transfers control to a runtime-computed
// target.
func (o Op) IsIndirect() bool { return o == OpJr || o == OpRet }

// EndsBlock reports whether o terminates a basic block: any control
// transfer plus halt.
func (o Op) EndsBlock() bool {
	return o.IsCondBranch() || o.IsUncondJump() || o.IsIndirect() || o == OpHalt
}

// HasFallthrough reports whether control may continue at the next
// sequential instruction after o executes.
func (o Op) HasFallthrough() bool {
	return !(o == OpJmp || o == OpJr || o == OpRet || o == OpHalt)
}

// IsMemory reports whether o accesses guest data memory.
func (o Op) IsMemory() bool { return o == OpLoad || o == OpStore }

// IsFloat reports whether o is a floating-point arithmetic operation.
func (o Op) IsFloat() bool { return o == OpFadd || o == OpFmul || o == OpFdiv }

// Cost returns the nominal guest-machine cycle cost of the instruction,
// used by the performance model. The values follow a generic in-order
// core: FP and multiplies are slower, memory slower than ALU.
func (o Op) Cost() int {
	switch o {
	case OpNop:
		return 1
	case OpMul:
		return 3
	case OpLoad, OpStore:
		return 2
	case OpFadd, OpFmul:
		return 4
	case OpFdiv:
		return 12
	case OpIn:
		return 2
	case OpCall, OpRet, OpJr:
		return 2
	default:
		return 1
	}
}

// Instruction limits implied by the encoding.
const (
	ImmBits = 14
	MaxImm  = 1<<(ImmBits-1) - 1 // 8191
	MinImm  = -(1 << (ImmBits - 1))
)

// Inst is a decoded SG32 instruction.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs  uint8
	Rt  uint8
	Imm int32 // sign-extended 14-bit immediate
}

// ErrBadEncoding is returned by Decode for words whose opcode field does
// not name a defined instruction.
type ErrBadEncoding struct {
	Word uint32
}

func (e *ErrBadEncoding) Error() string {
	return fmt.Sprintf("isa: invalid instruction word %#08x (opcode %d)", e.Word, e.Word>>26)
}

// Encode packs the instruction into its 32-bit word. It panics if any
// field is out of range; instructions are produced by builders that must
// respect the encoding limits.
func Encode(in Inst) uint32 {
	if !in.Op.Valid() {
		panic(fmt.Sprintf("isa: encode of invalid opcode %d", in.Op))
	}
	if in.Rd >= NumRegs || in.Rs >= NumRegs || in.Rt >= NumRegs {
		panic(fmt.Sprintf("isa: encode with register out of range: %+v", in))
	}
	if in.Imm < MinImm || in.Imm > MaxImm {
		panic(fmt.Sprintf("isa: encode with immediate %d out of 14-bit range", in.Imm))
	}
	w := uint32(in.Op) << 26
	w |= uint32(in.Rd) << 22
	w |= uint32(in.Rs) << 18
	w |= uint32(in.Rt) << 14
	w |= uint32(in.Imm) & 0x3FFF
	return w
}

// Decode unpacks a 32-bit word into an instruction.
func Decode(word uint32) (Inst, error) {
	op := Op(word >> 26)
	if !op.Valid() {
		return Inst{}, &ErrBadEncoding{Word: word}
	}
	imm := int32(word & 0x3FFF)
	if imm&(1<<(ImmBits-1)) != 0 {
		imm -= 1 << ImmBits
	}
	return Inst{
		Op:  op,
		Rd:  uint8(word >> 22 & 0xF),
		Rs:  uint8(word >> 18 & 0xF),
		Rt:  uint8(word >> 14 & 0xF),
		Imm: imm,
	}, nil
}

// String disassembles the instruction into assembler syntax.
func (in Inst) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpRet:
		return in.Op.String()
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpFadd, OpFmul, OpFdiv:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs, in.Rt)
	case OpAddi:
		return fmt.Sprintf("addi r%d, r%d, %d", in.Rd, in.Rs, in.Imm)
	case OpLoadi, OpLuhi:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs)
	case OpLoad:
		return fmt.Sprintf("load r%d, %d(r%d)", in.Rd, in.Imm, in.Rs)
	case OpStore:
		return fmt.Sprintf("store r%d, %d(r%d)", in.Rt, in.Imm, in.Rs)
	case OpIn:
		return fmt.Sprintf("in r%d", in.Rd)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, %+d", in.Op, in.Rs, in.Rt, in.Imm)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %+d", in.Op, in.Imm)
	case OpJr:
		return fmt.Sprintf("jr r%d", in.Rs)
	default:
		return fmt.Sprintf("%s rd=%d rs=%d rt=%d imm=%d", in.Op, in.Rd, in.Rs, in.Rt, in.Imm)
	}
}

// Disassemble renders a code slice as one instruction per line, prefixed
// with the word index starting at base.
func Disassemble(code []uint32, base int) string {
	var b strings.Builder
	for i, w := range code {
		in, err := Decode(w)
		if err != nil {
			fmt.Fprintf(&b, "%6d: .word %#08x ; invalid\n", base+i, w)
			continue
		}
		fmt.Fprintf(&b, "%6d: %s\n", base+i, in)
	}
	return b.String()
}
