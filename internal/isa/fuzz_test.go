package isa

import (
	"errors"
	"testing"
)

// FuzzISADecode checks the decoder's contract over arbitrary words:
// Decode never panics, rejects only with *ErrBadEncoding, and every
// word it accepts re-encodes to exactly the bits it came from.
func FuzzISADecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	f.Add(Encode(Inst{Op: OpHalt}))
	f.Add(Encode(Inst{Op: OpLoadi, Rd: 3, Imm: -1}))
	f.Add(Encode(Inst{Op: OpBne, Rs: 1, Rt: 2, Imm: -4}))
	f.Add(Encode(Inst{Op: OpLoad, Rd: 15, Rs: 15, Rt: 15, Imm: 1<<13 - 1}))
	f.Add(uint32(opCount) << 26) // first invalid opcode
	f.Fuzz(func(t *testing.T, word uint32) {
		in, err := Decode(word)
		if err != nil {
			var bad *ErrBadEncoding
			if !errors.As(err, &bad) {
				t.Fatalf("Decode(%#08x): error %v is not *ErrBadEncoding", word, err)
			}
			return
		}
		_ = in.String() // must not panic on any decoded instruction
		if got := Encode(in); got != word {
			t.Fatalf("Encode(Decode(%#08x)) = %#08x", word, got)
		}
	})
}
