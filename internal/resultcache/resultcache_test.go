package resultcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

type payload struct {
	Name  string    `json:"name"`
	N     uint64    `json:"n"`
	Xs    []float64 `json:"xs"`
	Inner map[string]int
}

func testKey() Key {
	return Key{
		Kind: "run", Bench: "gzip", Context: "scale=0.001",
		Image: "deadbeef", Tape: "uniform:gzip/ref",
		Engine: "input=ref;threshold=5", T: 5,
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	want := payload{Name: "x", N: 42, Xs: []float64{1.5, 0.1 + 0.2}, Inner: map[string]int{"a": 1}}
	var miss payload
	if s.Lookup(k, &miss) {
		t.Fatal("lookup hit on empty store")
	}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Lookup(k, &got) {
		t.Fatal("lookup missed after put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Stores != 1 || c.Errors != 0 {
		t.Fatalf("counters %+v, want 1 hit, 1 miss, 1 store, 0 errors", c)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 entry", n, err)
	}
}

// TestUnwritableDirDemotesToReadOnly: when the cache directory stops
// accepting writes, exactly the first failed store surfaces an error;
// every later store — the per-lookup heals of corrupt entries included
// — is a silent counted no-op, and reads keep working. The regression
// scenario is a read-only -cache directory, simulated here by sweeping
// the directory away (root ignores permission bits, so a chmod-based
// simulation would silently pass under CI-as-root).
func TestUnwritableDirDemotesToReadOnly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(), payload{Name: "x"}); err == nil {
		t.Fatal("first write to an unwritable dir returned nil")
	}
	if !s.ReadOnly() {
		t.Fatal("store did not demote itself to read-only")
	}
	// Later writes (heal attempts) must be demoted, not surfaced.
	k2 := testKey()
	k2.T = 7
	for i := 0; i < 3; i++ {
		if err := s.Put(k2, payload{Name: "heal"}); err != nil {
			t.Fatalf("demoted write %d surfaced: %v", i, err)
		}
	}
	var v payload
	if s.Lookup(testKey(), &v) {
		t.Fatal("lookup hit in a swept-away store")
	}
	c := s.Counters()
	if c.HealFailures != 4 {
		t.Fatalf("HealFailures = %d, want 4", c.HealFailures)
	}
	if c.Errors != 1 {
		t.Fatalf("Errors = %d, want exactly the surfaced first failure", c.Errors)
	}
	if c.Stores != 0 {
		t.Fatalf("Stores = %d on an unwritable dir", c.Stores)
	}
}

// TestReadOnlyDirPermissions is the literal read-only-directory flavour
// of the demotion test. Permission bits do not bind root, so it skips
// where the sweep-based test above still covers the code path.
func TestReadOnlyDirPermissions(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A pre-populated entry stays readable after the dir goes read-only.
	k := testKey()
	if err := s.Put(k, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	var got payload
	if !s.Lookup(k, &got) || got.Name != "x" {
		t.Fatal("read-only dir broke lookups")
	}
	k2 := testKey()
	k2.T = 9
	if err := s.Put(k2, payload{Name: "y"}); err == nil {
		t.Fatal("first write to a read-only dir returned nil")
	}
	if err := s.Put(k2, payload{Name: "y"}); err != nil {
		t.Fatalf("second write not demoted: %v", err)
	}
	if c := s.Counters(); c.HealFailures != 2 || !s.ReadOnly() {
		t.Fatalf("counters %+v, ReadOnly=%v; want 2 heal failures on a read-only store", c, s.ReadOnly())
	}
}

// TestOpenSweepsStaleTemps: a temp file orphaned by a crash mid-store
// is removed when the store is reopened.
func TestOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".abc123.json.tmp456")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived Open: %v", err)
	}
}

func TestKeyComponentsSeparateEntries(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := testKey()
	if err := s.Put(base, payload{Name: "base"}); err != nil {
		t.Fatal(err)
	}
	variants := []Key{}
	for _, mut := range []func(*Key){
		func(k *Key) { k.Kind = "cmp" },
		func(k *Key) { k.Bench = "mcf" },
		func(k *Key) { k.Context = "scale=1" },
		func(k *Key) { k.Image = "cafebabe" },
		func(k *Key) { k.Tape = "uniform:gzip/train" },
		func(k *Key) { k.Engine = "input=ref;threshold=7" },
		func(k *Key) { k.T = 7 },
	} {
		k := base
		mut(&k)
		variants = append(variants, k)
	}
	for i, k := range variants {
		var v payload
		if s.Lookup(k, &v) {
			t.Errorf("variant %d (%s) aliased the base entry", i, k.Fingerprint())
		}
		if k.Hash() == base.Hash() {
			t.Errorf("variant %d has the base hash", i)
		}
	}
}

func TestNilStoreSafe(t *testing.T) {
	var s *Store
	var v payload
	if s.Lookup(testKey(), &v) {
		t.Fatal("nil store hit")
	}
	if err := s.Put(testKey(), payload{}); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters(); c != (Counters{}) {
		t.Fatalf("nil store counters %+v", c)
	}
	if s.Dir() != "" {
		t.Fatal("nil store has a dir")
	}
}

func TestIncompleteKeyRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key{Kind: "run"}, payload{}); err == nil {
		t.Fatal("put accepted a key without an image hash")
	}
	var v payload
	if s.Lookup(Key{Image: "x"}, &v) {
		t.Fatal("lookup hit on a kindless key")
	}
}

// entryPath locates the single entry file of a one-entry store.
func entryPath(t *testing.T, s *Store, k Key) string {
	t.Helper()
	p := filepath.Join(s.Dir(), k.Hash()+".json")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry file: %v", err)
	}
	return p
}

// Corruption matrix: every damaged shape must read as a miss (counted
// as an error), never a panic and never wrong data — and a subsequent
// Put must restore the entry.
func TestCorruptEntriesAreMisses(t *testing.T) {
	k := testKey()
	want := payload{Name: "x", N: 7, Xs: []float64{3.25}}

	corruptions := []struct {
		name string
		mut  func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"empty", func(d []byte) []byte { return nil }},
		{"garbage", func(d []byte) []byte { return []byte("not json at all") }},
		{"bitflip", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			// Flip a bit inside the value region: the envelope still
			// parses, only the checksum can catch it.
			i := strings.Index(string(out), `"value"`) + len(`"value"`) + 10
			out[i] ^= 0x01
			return out
		}},
		{"wrong-version", func(d []byte) []byte {
			cur := fmt.Sprintf(`{"schema":%d,`, SchemaVersion)
			return []byte(strings.Replace(string(d), cur, `{"schema":999,`, 1))
		}},
		{"wrong-key", func(d []byte) []byte {
			return []byte(strings.Replace(string(d), "bench=gzip", "bench=mcf", 1))
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(k, want); err != nil {
				t.Fatal(err)
			}
			p := entryPath(t, s, k)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			var got payload
			if s.Lookup(k, &got) {
				t.Fatalf("corrupt entry (%s) served as a hit: %+v", tc.name, got)
			}
			c := s.Counters()
			if c.Errors != 1 {
				t.Fatalf("counters %+v, want exactly 1 error", c)
			}
			// Re-execute-and-rewrite: the store must accept a fresh Put
			// over the damaged file and serve it again.
			if err := s.Put(k, want); err != nil {
				t.Fatalf("rewrite over corrupt entry: %v", err)
			}
			var again payload
			if !s.Lookup(k, &again) || !reflect.DeepEqual(again, want) {
				t.Fatalf("entry not restored after rewrite: %+v", again)
			}
		})
	}
}

// A forged entry with a *valid* checksum over wrong data is the one
// corruption the envelope cannot catch — that is exactly what the
// CacheVerify differential mode exists for (tested at the study
// level). Here we only pin down that such an entry does decode, so the
// verify test upstream is meaningful.
func TestForgedEntryWithValidSumDecodes(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := s.Put(k, payload{Name: "right"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, payload{Name: "forged"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Lookup(k, &got) || got.Name != "forged" {
		t.Fatalf("got %+v, want the overwritten entry", got)
	}
}

func TestFloat64RoundTripExact(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	// Values with no short decimal representation must survive the
	// JSON round trip bit-exactly — the cross-run DeepEqual contract
	// depends on it.
	want := payload{Xs: []float64{1.0 / 3.0, 0.1, 2.2250738585072014e-308, 1.7976931348623157e308}}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Lookup(k, &got) {
		t.Fatal("miss")
	}
	for i := range want.Xs {
		if got.Xs[i] != want.Xs[i] {
			t.Fatalf("float %d: %x != %x", i, got.Xs[i], want.Xs[i])
		}
	}
}

func TestEnvelopeShapeStable(t *testing.T) {
	// The envelope field names are part of the on-disk contract; a
	// rename would orphan every existing cache. Pin them.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := s.Put(k, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(entryPath(t, s, k))
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"schema", "key", "sum", "value"} {
		if _, ok := env[field]; !ok {
			t.Errorf("envelope lacks %q field", field)
		}
	}
}
