package resultcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

type payload struct {
	Name  string    `json:"name"`
	N     uint64    `json:"n"`
	Xs    []float64 `json:"xs"`
	Inner map[string]int
}

func testKey() Key {
	return Key{
		Kind: "run", Bench: "gzip", Context: "scale=0.001",
		Image: "deadbeef", Tape: "uniform:gzip/ref",
		Engine: "input=ref;threshold=5", T: 5,
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	want := payload{Name: "x", N: 42, Xs: []float64{1.5, 0.1 + 0.2}, Inner: map[string]int{"a": 1}}
	var miss payload
	if s.Lookup(k, &miss) {
		t.Fatal("lookup hit on empty store")
	}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Lookup(k, &got) {
		t.Fatal("lookup missed after put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Stores != 1 || c.Errors != 0 {
		t.Fatalf("counters %+v, want 1 hit, 1 miss, 1 store, 0 errors", c)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 entry", n, err)
	}
}

func TestKeyComponentsSeparateEntries(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := testKey()
	if err := s.Put(base, payload{Name: "base"}); err != nil {
		t.Fatal(err)
	}
	variants := []Key{}
	for _, mut := range []func(*Key){
		func(k *Key) { k.Kind = "cmp" },
		func(k *Key) { k.Bench = "mcf" },
		func(k *Key) { k.Context = "scale=1" },
		func(k *Key) { k.Image = "cafebabe" },
		func(k *Key) { k.Tape = "uniform:gzip/train" },
		func(k *Key) { k.Engine = "input=ref;threshold=7" },
		func(k *Key) { k.T = 7 },
	} {
		k := base
		mut(&k)
		variants = append(variants, k)
	}
	for i, k := range variants {
		var v payload
		if s.Lookup(k, &v) {
			t.Errorf("variant %d (%s) aliased the base entry", i, k.Fingerprint())
		}
		if k.Hash() == base.Hash() {
			t.Errorf("variant %d has the base hash", i)
		}
	}
}

func TestNilStoreSafe(t *testing.T) {
	var s *Store
	var v payload
	if s.Lookup(testKey(), &v) {
		t.Fatal("nil store hit")
	}
	if err := s.Put(testKey(), payload{}); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters(); c != (Counters{}) {
		t.Fatalf("nil store counters %+v", c)
	}
	if s.Dir() != "" {
		t.Fatal("nil store has a dir")
	}
}

func TestIncompleteKeyRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key{Kind: "run"}, payload{}); err == nil {
		t.Fatal("put accepted a key without an image hash")
	}
	var v payload
	if s.Lookup(Key{Image: "x"}, &v) {
		t.Fatal("lookup hit on a kindless key")
	}
}

// entryPath locates the single entry file of a one-entry store.
func entryPath(t *testing.T, s *Store, k Key) string {
	t.Helper()
	p := filepath.Join(s.Dir(), k.Hash()+".json")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry file: %v", err)
	}
	return p
}

// Corruption matrix: every damaged shape must read as a miss (counted
// as an error), never a panic and never wrong data — and a subsequent
// Put must restore the entry.
func TestCorruptEntriesAreMisses(t *testing.T) {
	k := testKey()
	want := payload{Name: "x", N: 7, Xs: []float64{3.25}}

	corruptions := []struct {
		name string
		mut  func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"empty", func(d []byte) []byte { return nil }},
		{"garbage", func(d []byte) []byte { return []byte("not json at all") }},
		{"bitflip", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			// Flip a bit inside the value region: the envelope still
			// parses, only the checksum can catch it.
			i := strings.Index(string(out), `"value"`) + len(`"value"`) + 10
			out[i] ^= 0x01
			return out
		}},
		{"wrong-version", func(d []byte) []byte {
			return []byte(strings.Replace(string(d), `{"schema":1,`, `{"schema":999,`, 1))
		}},
		{"wrong-key", func(d []byte) []byte {
			return []byte(strings.Replace(string(d), "bench=gzip", "bench=mcf", 1))
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(k, want); err != nil {
				t.Fatal(err)
			}
			p := entryPath(t, s, k)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			var got payload
			if s.Lookup(k, &got) {
				t.Fatalf("corrupt entry (%s) served as a hit: %+v", tc.name, got)
			}
			c := s.Counters()
			if c.Errors != 1 {
				t.Fatalf("counters %+v, want exactly 1 error", c)
			}
			// Re-execute-and-rewrite: the store must accept a fresh Put
			// over the damaged file and serve it again.
			if err := s.Put(k, want); err != nil {
				t.Fatalf("rewrite over corrupt entry: %v", err)
			}
			var again payload
			if !s.Lookup(k, &again) || !reflect.DeepEqual(again, want) {
				t.Fatalf("entry not restored after rewrite: %+v", again)
			}
		})
	}
}

// A forged entry with a *valid* checksum over wrong data is the one
// corruption the envelope cannot catch — that is exactly what the
// CacheVerify differential mode exists for (tested at the study
// level). Here we only pin down that such an entry does decode, so the
// verify test upstream is meaningful.
func TestForgedEntryWithValidSumDecodes(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := s.Put(k, payload{Name: "right"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, payload{Name: "forged"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Lookup(k, &got) || got.Name != "forged" {
		t.Fatalf("got %+v, want the overwritten entry", got)
	}
}

func TestFloat64RoundTripExact(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	// Values with no short decimal representation must survive the
	// JSON round trip bit-exactly — the cross-run DeepEqual contract
	// depends on it.
	want := payload{Xs: []float64{1.0 / 3.0, 0.1, 2.2250738585072014e-308, 1.7976931348623157e308}}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Lookup(k, &got) {
		t.Fatal("miss")
	}
	for i := range want.Xs {
		if got.Xs[i] != want.Xs[i] {
			t.Fatalf("float %d: %x != %x", i, got.Xs[i], want.Xs[i])
		}
	}
}

func TestEnvelopeShapeStable(t *testing.T) {
	// The envelope field names are part of the on-disk contract; a
	// rename would orphan every existing cache. Pin them.
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := s.Put(k, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(entryPath(t, s, k))
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"schema", "key", "sum", "value"} {
		if _, ok := env[field]; !ok {
			t.Errorf("envelope lacks %q field", field)
		}
	}
}
