// Package resultcache is an on-disk content-addressed store for the
// study pipeline's expensive unit outputs: reference AVEP/INIP(T)
// snapshot sets, training-run snapshots and comparison summaries.
//
// Entries are keyed by a canonical fingerprint of everything that
// determines a unit's result — the guest image's content hash, the
// input tape's identity, the translator configuration's engine
// fingerprint, the effective threshold, the study context (scale) and
// a cache schema version. Whatever is not provably part of that
// closure (fault-injected runs, targets without a declared tape
// identity) must simply not be cached; the store never guesses.
//
// The on-disk format is defensive in both directions:
//
//   - writes go through internal/atomicio, so a crash mid-store leaves
//     either the old entry or the new one, never a torn file;
//   - reads validate an integrity envelope — schema version, the full
//     key fingerprint (not just its hash) and a checksum over the
//     value bytes — so truncated, bit-flipped or stale-schema entries
//     are treated as misses (re-execute, rewrite), never as data.
//
// All methods are safe for concurrent use and safe on a nil *Store
// (caching off), so call sites need no guards.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/atomicio"
)

// SchemaVersion is bumped whenever the serialized shape — or the
// meaning — of any cached value changes. A version mismatch is a miss:
// the entry is ignored and rewritten by the re-executed unit, never
// reinterpreted.
//
// v2: RunStats.CacheLookups semantics changed (the indirect-target
// table resolves jr/ret successors without a code-cache probe), so v1
// entries' stats would fail -cacheverify against a fresh run.
const SchemaVersion = 2

// Key identifies one cached unit output. Every field participates in
// the canonical fingerprint; the zero value is not a usable key (Lookup
// and Put reject keys without a kind or image hash).
type Key struct {
	// Kind is the unit flavour: "ref" (shared-trace reference bundle),
	// "run" (one profiled execution), "cmp" (one INIP(T)-vs-AVEP
	// comparison), "traincmp" (the training comparison pair), "bp"
	// (dynamic-predictor tallies over the reference trace), "sp" (one
	// sampled-profiling ladder).
	Kind string
	// Bench is the benchmark name — informational for humans listing
	// the store, but also part of the fingerprint so two benchmarks
	// that happen to share code and tape never alias.
	Bench string
	// Context carries study-level parameters that are not visible in
	// the image or config (the study puts "scale=<v>" here).
	Context string
	// Image is the guest image content hash (guest.Image.ContentHash);
	// for pair entries the two hashes joined with "+".
	Image string
	// Tape is the deterministic input-tape identity (core.Target.TapeID);
	// for pair entries the two identities joined with "+".
	Tape string
	// Engine is the translator configuration fingerprint
	// (dbt.Config.Fingerprint); for multi-run entries the fingerprints
	// joined with "|".
	Engine string
	// T is the effective retranslation threshold for per-threshold
	// entries, 0 elsewhere.
	T uint64
}

// Fingerprint renders the key canonically. The rendering — not the
// caller's memory of what it meant — is what Lookup validates against
// the envelope, so two builds only ever share an entry when they agree
// on every component.
func (k Key) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|kind=%s|bench=%s|ctx=%s|img=%s|tape=%s|t=%d|engine=%s",
		SchemaVersion, k.Kind, k.Bench, k.Context, k.Image, k.Tape, k.T, k.Engine)
	return b.String()
}

// Hash returns the content address of the key: the hex SHA-256 of its
// fingerprint, which names the entry file.
func (k Key) Hash() string {
	sum := sha256.Sum256([]byte(k.Fingerprint()))
	return hex.EncodeToString(sum[:])
}

func (k Key) valid() bool { return k.Kind != "" && k.Image != "" }

// Counters is a snapshot of the store's accounting.
type Counters struct {
	// Hits counts lookups that returned a validated entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that found nothing usable (including the
	// corrupt entries counted separately in Errors).
	Misses uint64 `json:"misses"`
	// Stores counts successful entry writes.
	Stores uint64 `json:"stores"`
	// Errors counts entries rejected on read (truncated, checksum or
	// fingerprint mismatch, stale schema) plus failed writes. Every
	// read-side error is also a miss.
	Errors uint64 `json:"errors"`
	// HealFailures counts store/heal writes that could not land because
	// the cache directory is unwritable (read-only filesystem, removed
	// directory, permissions). The first failure is surfaced as an
	// error and demotes the store to read-only mode; every later write
	// is a counted no-op here rather than a fresh error per lookup.
	HealFailures uint64 `json:"heal_failures"`
}

// Store is an on-disk result cache rooted at one directory.
type Store struct {
	dir string

	hits      atomic.Uint64
	misses    atomic.Uint64
	stores    atomic.Uint64
	errs      atomic.Uint64
	healFails atomic.Uint64
	// readOnly latches after the first failed entry write: an
	// unwritable cache directory (read-only mount, swept-away dir)
	// does not heal itself, so retrying — and erroring — on every
	// subsequent lookup's rewrite would drown the run in noise. Reads
	// keep working; writes become counted no-ops.
	readOnly atomic.Bool
}

// Open returns a store rooted at dir, creating the directory if
// needed. Stale atomic-write temporaries from a previous process
// killed mid-store are swept here — the one moment no write of this
// process can be in flight.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	// Best-effort: a read-only pre-populated store is still usable.
	atomicio.SweepTemps(dir)
	return &Store{dir: dir}, nil
}

// ReadOnly reports whether the store has demoted itself to read-only
// mode after a failed write. Safe on nil (false).
func (s *Store) ReadOnly() bool {
	return s != nil && s.readOnly.Load()
}

// Dir returns the store's root directory ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Counters returns a snapshot of the store's accounting. Safe on nil
// (all zero).
func (s *Store) Counters() Counters {
	if s == nil {
		return Counters{}
	}
	return Counters{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Stores:       s.stores.Load(),
		Errors:       s.errs.Load(),
		HealFailures: s.healFails.Load(),
	}
}

// envelope is the on-disk entry wrapper: everything Lookup needs to
// decide whether the value bytes are trustworthy before decoding them.
type envelope struct {
	// Schema is the cache schema version the entry was written under.
	Schema int `json:"schema"`
	// Key is the full canonical fingerprint — stored verbatim so a
	// hash collision (or a mangled filename) can never serve a value
	// for the wrong key.
	Key string `json:"key"`
	// Sum is the hex SHA-256 over the exact Value bytes.
	Sum string `json:"sum"`
	// Value is the cached unit output, opaque to the store.
	Value json.RawMessage `json:"value"`
}

func (s *Store) path(k Key) string { return filepath.Join(s.dir, k.Hash()+".json") }

// Lookup loads the entry for k into v (a JSON-decodable pointer) and
// reports whether a validated entry was found. Anything wrong with the
// stored entry — unreadable, truncated, checksum or key mismatch,
// stale schema, undecodable value — is a miss (counted in Errors as
// well): the caller re-executes and rewrites. Lookup is safe on a nil
// store (always a miss, not counted).
func (s *Store) Lookup(k Key, v any) bool {
	if s == nil {
		return false
	}
	if !k.valid() {
		s.misses.Add(1)
		return false
	}
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		// A missing entry is the ordinary cold-cache miss; any other
		// read failure is an error worth counting.
		if !os.IsNotExist(err) {
			s.errs.Add(1)
		}
		s.misses.Add(1)
		return false
	}
	if err := decodeEntry(data, k, v); err != nil {
		s.errs.Add(1)
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// decodeEntry validates the envelope and decodes the value. Every
// failure mode collapses to an error — the caller treats them all as
// a miss — but the checks are ordered so the cheapest guards run
// first.
func decodeEntry(data []byte, k Key, v any) error {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("resultcache: entry %s: %w", k.Hash(), err)
	}
	if env.Schema != SchemaVersion {
		return fmt.Errorf("resultcache: entry %s: schema %d, want %d", k.Hash(), env.Schema, SchemaVersion)
	}
	if env.Key != k.Fingerprint() {
		return fmt.Errorf("resultcache: entry %s: key fingerprint mismatch", k.Hash())
	}
	sum := sha256.Sum256(env.Value)
	if hex.EncodeToString(sum[:]) != env.Sum {
		return fmt.Errorf("resultcache: entry %s: value checksum mismatch", k.Hash())
	}
	if err := json.Unmarshal(env.Value, v); err != nil {
		return fmt.Errorf("resultcache: entry %s: value: %w", k.Hash(), err)
	}
	return nil
}

// Put stores v under k, atomically replacing any previous entry. A
// failed write is counted and reported but must not fail the unit that
// produced v — the result is correct either way, only its reuse is
// lost. The first write that fails to land on disk demotes the store
// to read-only mode: it is surfaced (and counted in Errors) exactly
// once, and every later write — including the per-lookup heals of
// corrupt entries — becomes a silent no-op counted in HealFailures.
// Safe on a nil store (no-op).
func (s *Store) Put(k Key, v any) error {
	if s == nil {
		return nil
	}
	if !k.valid() {
		s.errs.Add(1)
		return fmt.Errorf("resultcache: refusing to store under incomplete key %+v", k)
	}
	if s.readOnly.Load() {
		s.healFails.Add(1)
		return nil
	}
	value, err := json.Marshal(v)
	if err != nil {
		s.errs.Add(1)
		return fmt.Errorf("resultcache: encode %s: %w", k.Hash(), err)
	}
	sum := sha256.Sum256(value)
	data, err := json.Marshal(envelope{
		Schema: SchemaVersion,
		Key:    k.Fingerprint(),
		Sum:    hex.EncodeToString(sum[:]),
		Value:  value,
	})
	if err != nil {
		s.errs.Add(1)
		return fmt.Errorf("resultcache: encode %s: %w", k.Hash(), err)
	}
	if err := atomicio.WriteFile(s.path(k), append(data, '\n'), 0o644); err != nil {
		s.healFails.Add(1)
		if s.readOnly.CompareAndSwap(false, true) {
			// First failure wins the race to report; latecomers that
			// slipped past the gate above are demoted like the rest.
			s.errs.Add(1)
			return fmt.Errorf("resultcache: store %s (cache now read-only): %w", k.Hash(), err)
		}
		return nil
	}
	s.stores.Add(1)
	return nil
}

// Len reports how many entries the store currently holds on disk
// (directory scan; used by tests and the CLI summary).
func (s *Store) Len() (int, error) {
	if s == nil {
		return 0, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("resultcache: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n, nil
}
