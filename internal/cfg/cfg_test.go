// Package cfg_test is an external test package: the suite cross-checks
// against spec, which (via core and the learned feature extractor)
// imports cfg — an in-package test would close an import cycle.
package cfg_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/dbt"
	"repro/internal/guest"
	"repro/internal/spec"
)

func mustAssemble(t *testing.T, src string) *guest.Image {
	t.Helper()
	img, err := guest.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return img
}

const loopSrc = `
.entry main
main:
	loadi r1, 10
	loadi r2, 0
loop:
	addi r1, r1, -1
	bne r1, r2, loop
	halt
`

func TestBuildBlocks(t *testing.T) {
	img := mustAssemble(t, loopSrc)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	loop := img.Symbols["loop"]
	if g.Blocks[g.Entry] == nil {
		t.Fatal("entry block missing")
	}
	// The entry block must stop at the 'loop' leader even though no
	// terminator precedes it (the label is a branch target).
	if g.Blocks[g.Entry].End >= loop {
		t.Fatalf("entry block [%d..%d] swallows the loop leader %d", g.Entry, g.Blocks[g.Entry].End, loop)
	}
	lb := g.Blocks[loop]
	if lb == nil {
		t.Fatal("loop block missing")
	}
	// Loop block: succ = itself and the halt block.
	if len(lb.Succs) != 2 {
		t.Fatalf("loop succs = %v", lb.Succs)
	}
	foundSelf := false
	for _, s := range lb.Succs {
		if s == loop {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Fatalf("loop block lacks its back edge: %v", lb.Succs)
	}
}

func TestPredsInverseOfSuccs(t *testing.T) {
	img := mustAssemble(t, loopSrc)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	for s, b := range g.Blocks {
		for _, succ := range b.Succs {
			found := false
			for _, p := range g.Preds[succ] {
				if p == s {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not mirrored in Preds", s, succ)
			}
		}
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	img := mustAssemble(t, loopSrc)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	rpo := g.ReversePostorder()
	if len(rpo) == 0 || rpo[0] != g.Entry {
		t.Fatalf("rpo = %v", rpo)
	}
	// Every reachable block appears exactly once.
	seen := map[int]bool{}
	for _, s := range rpo {
		if seen[s] {
			t.Fatalf("rpo repeats %d", s)
		}
		seen[s] = true
	}
}

func TestDominatorsOnDiamond(t *testing.T) {
	img := mustAssemble(t, `
.entry main
main:
	loadi r1, 1
	beq r1, r0, left
	nop
	jmp join
left:
	nop
	jmp join
join:
	halt
`)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	idom := g.Dominators()
	join := img.Symbols["join"]
	left := img.Symbols["left"]
	if idom[join] != g.Entry {
		t.Fatalf("idom(join) = %d, want entry %d", idom[join], g.Entry)
	}
	if !cfg.Dominates(idom, g.Entry, left) {
		t.Fatal("entry must dominate left arm")
	}
	if cfg.Dominates(idom, left, join) {
		t.Fatal("left arm must not dominate join")
	}
}

func TestNaturalLoopsFindLoop(t *testing.T) {
	img := mustAssemble(t, loopSrc)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %+v, want 1", loops)
	}
	if loops[0].Head != img.Symbols["loop"] {
		t.Fatalf("loop head = %d, want %d", loops[0].Head, img.Symbols["loop"])
	}
	if !loops[0].Body[loops[0].Head] {
		t.Fatal("loop body must contain its head")
	}
}

func TestNestedLoops(t *testing.T) {
	img := mustAssemble(t, `
.entry main
main:
	loadi r1, 10
	loadi r2, 0
outer:
	loadi r3, 5
inner:
	addi r3, r3, -1
	bne r3, r2, inner
	addi r1, r1, -1
	bne r1, r2, outer
	halt
`)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	loops := g.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("loops = %+v, want 2 (outer and inner)", loops)
	}
	inner := img.Symbols["inner"]
	outer := img.Symbols["outer"]
	var innerLoop, outerLoop *cfg.Loop
	for i := range loops {
		switch loops[i].Head {
		case inner:
			innerLoop = &loops[i]
		case outer:
			outerLoop = &loops[i]
		}
	}
	if innerLoop == nil || outerLoop == nil {
		t.Fatalf("loop heads = %+v", loops)
	}
	// The outer loop body contains the inner loop head.
	if !outerLoop.Body[inner] {
		t.Fatal("outer loop body must contain the inner loop")
	}
	if innerLoop.Body[outer] {
		t.Fatal("inner loop body must not contain the outer head")
	}
}

func TestIndirectJumpSuccessors(t *testing.T) {
	img := mustAssemble(t, `
.entry main
main:
	loadi r1, 4
	jr r1, [a, b]
a:
	halt
b:
	halt
`)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	// Find the jr block.
	var jrBlock *cfg.Block
	for _, b := range g.Blocks {
		if b.Term.Op.IsIndirect() {
			jrBlock = b
		}
	}
	if jrBlock == nil {
		t.Fatal("no jr block")
	}
	if len(jrBlock.Succs) != 2 {
		t.Fatalf("jr succs = %v, want both table targets", jrBlock.Succs)
	}
}

// TestDynamicBlocksAreStaticSuffixes cross-checks the translator's
// dynamic discovery against the static decomposition: every dynamic
// block entry must be a static leader or a former block split point,
// and its terminator must coincide with a static terminator.
func TestDynamicBlocksAreStaticConsistent(t *testing.T) {
	b := spec.ByName("vortex")
	img, tape, err := b.Build("ref", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	termAt := map[int]bool{}
	for _, blk := range g.Blocks {
		termAt[blk.End] = true
	}
	snap, _, err := dbt.Run(img, tape, dbt.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	for addr, blk := range snap.Blocks {
		if !termAt[blk.End] {
			t.Fatalf("dynamic block [%d..%d] ends at a non-terminator", addr, blk.End)
		}
	}
}

func TestStartsSorted(t *testing.T) {
	img := mustAssemble(t, loopSrc)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	starts := g.Starts()
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			t.Fatalf("starts not ascending: %v", starts)
		}
	}
}

func TestWholeSuiteBuildsCFGs(t *testing.T) {
	for _, b := range spec.Suite() {
		img, _, err := b.Build("ref", 0.001)
		if err != nil {
			t.Fatal(err)
		}
		g, err := cfg.Build(img)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(g.ReversePostorder()) < 5 {
			t.Fatalf("%s: suspiciously small reachable CFG", b.Name)
		}
		if len(g.NaturalLoops()) == 0 {
			t.Fatalf("%s: no natural loops (driver loop must exist)", b.Name)
		}
	}
}
