// Package cfg recovers a static control-flow graph from a guest image:
// basic blocks, successor edges, dominators and natural loops.
//
// The dynamic translator does not need this — it discovers blocks
// lazily at run time, like IA32EL — but the offline tooling does: the
// profile comparison tool annotates static structure, the disassembler
// prints block boundaries, and tests cross-check the translator's
// dynamic block discovery against the static decomposition.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/guest"
	"repro/internal/isa"
)

// Block is a static basic block [Start, End] (End is the terminator's
// address).
type Block struct {
	Start int
	End   int
	// Succs lists static successor block start addresses. Indirect
	// transfers contribute their jump-table targets; returns contribute
	// nothing (the callers' return sites are successors of call blocks
	// instead).
	Succs []int
	// Term is the terminating instruction.
	Term isa.Inst
}

// Graph is the static CFG of an image.
type Graph struct {
	Entry  int
	Blocks map[int]*Block
	// Preds maps a block start to its predecessors' starts.
	Preds map[int][]int
}

// Build recovers the static CFG of the image.
func Build(img *guest.Image) (*Graph, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	code := make([]isa.Inst, len(img.Code))
	for pc, w := range img.Code {
		in, err := isa.Decode(w)
		if err != nil {
			return nil, err
		}
		code[pc] = in
	}
	// Leaders: entry, control-transfer targets, fall-throughs after
	// block enders, call return sites, jump-table targets.
	leader := make([]bool, len(code))
	leader[img.Entry] = true
	for pc, in := range code {
		switch {
		case in.Op.IsCondBranch():
			leader[pc+int(in.Imm)] = true
			if pc+1 < len(code) {
				leader[pc+1] = true
			}
		case in.Op == isa.OpJmp:
			leader[pc+int(in.Imm)] = true
			if pc+1 < len(code) {
				leader[pc+1] = true
			}
		case in.Op == isa.OpCall:
			leader[pc+int(in.Imm)] = true
			if pc+1 < len(code) {
				leader[pc+1] = true
			}
		case in.Op == isa.OpJr:
			for _, t := range img.JumpTables[pc] {
				leader[t] = true
			}
			if pc+1 < len(code) {
				leader[pc+1] = true
			}
		case in.Op == isa.OpRet || in.Op == isa.OpHalt:
			if pc+1 < len(code) {
				leader[pc+1] = true
			}
		}
	}
	g := &Graph{Entry: img.Entry, Blocks: make(map[int]*Block), Preds: make(map[int][]int)}
	for start := 0; start < len(code); start++ {
		if !leader[start] && start != 0 {
			continue
		}
		// A block runs to the first terminator or next leader.
		end := start
		for end < len(code) {
			if code[end].Op.EndsBlock() {
				break
			}
			if end+1 < len(code) && leader[end+1] {
				break
			}
			end++
		}
		if end >= len(code) {
			return nil, fmt.Errorf("cfg: block at %d falls off the code segment", start)
		}
		b := &Block{Start: start, End: end, Term: code[end]}
		in := code[end]
		switch {
		case in.Op.IsCondBranch():
			b.Succs = append(b.Succs, end+int(in.Imm), end+1)
		case in.Op == isa.OpJmp:
			b.Succs = append(b.Succs, end+int(in.Imm))
		case in.Op == isa.OpCall:
			// Both the callee and the return site are reachable.
			b.Succs = append(b.Succs, end+int(in.Imm), end+1)
		case in.Op == isa.OpJr:
			b.Succs = append(b.Succs, img.JumpTables[end]...)
		case in.Op == isa.OpRet, in.Op == isa.OpHalt:
			// no static successors
		default:
			// Block split at a leader: falls through.
			b.Succs = append(b.Succs, end+1)
		}
		g.Blocks[start] = b
	}
	for start, b := range g.Blocks {
		for _, s := range b.Succs {
			g.Preds[s] = append(g.Preds[s], start)
		}
	}
	for _, preds := range g.Preds {
		sort.Ints(preds)
	}
	return g, nil
}

// Starts returns all block start addresses in ascending order.
func (g *Graph) Starts() []int {
	out := make([]int, 0, len(g.Blocks))
	for s := range g.Blocks {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// ReversePostorder returns block starts in reverse postorder from the
// entry; unreachable blocks are omitted.
func (g *Graph) ReversePostorder() []int {
	seen := make(map[int]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(s int) {
		if seen[s] || g.Blocks[s] == nil {
			return
		}
		seen[s] = true
		b := g.Blocks[s]
		for _, succ := range b.Succs {
			dfs(succ)
		}
		post = append(post, s)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate dominator of every reachable block
// (the entry dominates itself), using the Cooper–Harvey–Kennedy
// iterative algorithm over reverse postorder.
//
// Defined behavior on pathological graphs: blocks unreachable from the
// entry are absent from the result (they have no dominator), and
// irreducible graphs converge like any other — CHK iterates to the
// maximal fixed point and terminates because every intersection walks
// strictly down the already-computed RPO prefix. Callers holding a
// block start that is missing from the map must treat it as
// unreachable, not as an error.
func (g *Graph) Dominators() map[int]int {
	rpo := g.ReversePostorder()
	index := make(map[int]int, len(rpo))
	for i, s := range rpo {
		index[s] = i
	}
	idom := make(map[int]int, len(rpo))
	idom[g.Entry] = g.Entry
	intersect := func(a, b int) int {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, s := range rpo {
			if s == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Preds[s] {
				if _, ok := idom[p]; !ok {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom == -1 {
				continue
			}
			if cur, ok := idom[s]; !ok || cur != newIdom {
				idom[s] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the given idom map.
// For a block missing from the map (unreachable from the entry) the
// walk stops immediately, so the defined result degenerates to a == b:
// an unanalyzed block dominates only itself.
func Dominates(idom map[int]int, a, b int) bool {
	for {
		if a == b {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return a == b
		}
		b = next
	}
}

// Loop is a natural loop: a back edge tail->Head whose Head dominates
// the tail, with Body the set of blocks that reach the tail without
// passing through the head.
type Loop struct {
	Head int
	Body map[int]bool
}

// NaturalLoops finds all natural loops, merging loops that share a head.
//
// Defined behavior on pathological graphs: only back edges whose head
// dominates the tail form loops, so irreducible cycles (two-entry
// loops, where neither header dominates the other) simply contribute
// no Loop — the call terminates and returns the reducible subset.
// Blocks unreachable from the entry can neither head a loop nor join a
// body: the body walk is clamped to the dominator-analyzed region, so
// an unreachable block with an edge into a loop is skipped rather than
// absorbed.
func (g *Graph) NaturalLoops() []Loop {
	idom := g.Dominators()
	byHead := make(map[int]map[int]bool)
	for _, s := range g.ReversePostorder() {
		for _, succ := range g.Blocks[s].Succs {
			if Dominates(idom, succ, s) {
				// Back edge s -> succ.
				body := byHead[succ]
				if body == nil {
					body = map[int]bool{succ: true}
					byHead[succ] = body
				}
				// Walk predecessors from the tail, clamped to blocks the
				// dominator analysis reached: an unreachable predecessor
				// cannot be part of the loop.
				stack := []int{s}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if body[n] {
						continue
					}
					body[n] = true
					for _, p := range g.Preds[n] {
						if _, ok := idom[p]; ok {
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	heads := make([]int, 0, len(byHead))
	for h := range byHead {
		heads = append(heads, h)
	}
	sort.Ints(heads)
	out := make([]Loop, 0, len(heads))
	for _, h := range heads {
		out = append(out, Loop{Head: h, Body: byHead[h]})
	}
	return out
}
