package cfg_test

import (
	"testing"
	"time"

	"repro/internal/cfg"
)

// finishes guards against analysis livelock: the satellite contract is
// that dominators/loops on pathological graphs terminate, so a hang is
// a failure, not a timeout flake.
func finishes(t *testing.T, name string, f func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not terminate", name)
	}
}

// Unreachable code (after the halt, referenced by no one) jumps into
// the middle of a live loop. The loop body must not absorb it: an
// unreachable block is outside the dominator-analyzed region.
const unreachableIntoLoopSrc = `
.entry main
main:
	loadi r1, 10
loop:
	addi r1, r1, -1
body:
	bne r1, r0, loop
	halt
dead:
	nop
	jmp body
`

func TestNaturalLoopsSkipUnreachablePreds(t *testing.T) {
	img := mustAssemble(t, unreachableIntoLoopSrc)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	dead := img.Symbols["dead"]
	idom := g.Dominators()
	if _, ok := idom[dead]; ok {
		t.Fatalf("unreachable block %d must be absent from the dominator map", dead)
	}
	var loops []cfg.Loop
	finishes(t, "NaturalLoops", func() { loops = g.NaturalLoops() })
	if len(loops) != 1 {
		t.Fatalf("loops = %+v, want exactly the live loop", loops)
	}
	l := loops[0]
	if l.Head != img.Symbols["loop"] {
		t.Fatalf("loop head = %d, want %d", l.Head, img.Symbols["loop"])
	}
	if l.Body[dead] {
		t.Fatalf("loop body %v absorbed the unreachable block %d", l.Body, dead)
	}
	if !l.Body[img.Symbols["body"]] {
		t.Fatalf("loop body %v lost its reachable member", l.Body)
	}
}

func TestDominatesOnUnreachableBlocks(t *testing.T) {
	img := mustAssemble(t, unreachableIntoLoopSrc)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	idom := g.Dominators()
	dead := img.Symbols["dead"]
	// Defined degenerate result: an unanalyzed block dominates only
	// itself, and nothing else dominates it.
	if !cfg.Dominates(idom, dead, dead) {
		t.Fatal("a block must dominate itself even when unreachable")
	}
	if cfg.Dominates(idom, g.Entry, dead) {
		t.Fatal("the entry must not claim dominance over an unreachable block")
	}
	if cfg.Dominates(idom, dead, g.Entry) {
		t.Fatal("an unreachable block must not dominate the entry")
	}
}

// Irreducible CFG: the aa<->bb cycle has two entries (the branch's
// taken and fall-through arms), so neither header dominates the other.
// The analyses must terminate and report no natural loop for it.
func TestIrreducibleCycleTerminates(t *testing.T) {
	img := mustAssemble(t, `
.entry main
main:
	loadi r1, 1
	beq r1, r0, bb
aa:
	nop
	jmp bb
bb:
	nop
	jmp aa
`)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	var idom map[int]int
	finishes(t, "Dominators", func() { idom = g.Dominators() })
	aa, bb := img.Symbols["aa"], img.Symbols["bb"]
	// Both cycle members are reachable; their only common dominator is
	// the entry block.
	if cfg.Dominates(idom, aa, bb) || cfg.Dominates(idom, bb, aa) {
		t.Fatalf("irreducible cycle members must not dominate each other (idom=%v)", idom)
	}
	var loops []cfg.Loop
	finishes(t, "NaturalLoops", func() { loops = g.NaturalLoops() })
	if len(loops) != 0 {
		t.Fatalf("irreducible cycle produced natural loops: %+v", loops)
	}
}

func TestSelfLoopIsItsOwnBody(t *testing.T) {
	img := mustAssemble(t, `
.entry main
main:
	loadi r1, 10
loop:
	bne r1, r0, loop
	halt
`)
	g, err := cfg.Build(img)
	if err != nil {
		t.Fatal(err)
	}
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %+v, want the self-loop", loops)
	}
	l := loops[0]
	if l.Head != img.Symbols["loop"] || !l.Body[l.Head] || len(l.Body) != 1 {
		t.Fatalf("self-loop = %+v, want body exactly {head}", l)
	}
}

// Hand-built graphs (no image) exercise shapes the assembler cannot
// produce, including a dangling entry and an unreachable cycle.
func handGraph(entry int, edges map[int][]int) *cfg.Graph {
	g := &cfg.Graph{Entry: entry, Blocks: map[int]*cfg.Block{}, Preds: map[int][]int{}}
	for s, succs := range edges {
		g.Blocks[s] = &cfg.Block{Start: s, End: s, Succs: succs}
	}
	for s, b := range g.Blocks {
		for _, succ := range b.Succs {
			g.Preds[succ] = append(g.Preds[succ], s)
		}
	}
	return g
}

func TestHandBuiltUnreachableCycle(t *testing.T) {
	// 0 -> 1; unreachable cycle 10 <-> 11 feeding block 1.
	g := handGraph(0, map[int][]int{
		0:  {1},
		1:  {},
		10: {11, 1},
		11: {10},
	})
	var idom map[int]int
	finishes(t, "Dominators", func() { idom = g.Dominators() })
	if len(idom) != 2 {
		t.Fatalf("idom = %v, want only the two reachable blocks", idom)
	}
	var loops []cfg.Loop
	finishes(t, "NaturalLoops", func() { loops = g.NaturalLoops() })
	if len(loops) != 0 {
		t.Fatalf("unreachable cycle produced loops: %+v", loops)
	}
}

func TestHandBuiltDanglingEntry(t *testing.T) {
	// The entry names a block that does not exist; every analysis must
	// degrade to the empty result instead of panicking.
	g := handGraph(99, map[int][]int{0: {0}})
	finishes(t, "analyses", func() {
		if rpo := g.ReversePostorder(); len(rpo) != 0 {
			t.Errorf("rpo = %v, want empty", rpo)
		}
		g.Dominators()
		if loops := g.NaturalLoops(); len(loops) != 0 {
			t.Errorf("loops = %+v, want none", loops)
		}
	})
}
