package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseAndMatch(t *testing.T) {
	p, err := Parse("build:gzip/ref*1, trap:swim@5000, slow:mcf/compare@50:10ms, panic:vpr/train")
	if err != nil {
		t.Fatal(err)
	}

	// Bounded build fault: fires once, then disarms.
	if err := p.BuildError("gzip", "ref"); err == nil {
		t.Fatal("armed build fault did not fire")
	}
	if err := p.BuildError("gzip", "ref"); err != nil {
		t.Fatalf("*1 fault fired twice: %v", err)
	}
	// Input-qualified: the train build is untouched.
	if err := p.BuildError("gzip", "train"); err != nil {
		t.Fatalf("train build hit a ref-only fault: %v", err)
	}

	// Unbounded trap: fires repeatedly, only on the matching bench.
	for i := 0; i < 3; i++ {
		if n, ok := p.Trap("swim", "ref"); !ok || n != 5000 {
			t.Fatalf("trap fire %d: got (%d, %v)", i, n, ok)
		}
	}
	if _, ok := p.Trap("gzip", "ref"); ok {
		t.Fatal("trap fired for the wrong benchmark")
	}

	// Threshold-qualified slow fault.
	if d := p.Delay("mcf", "compare", 100); d != 0 {
		t.Fatalf("slow fault fired at wrong T: %v", d)
	}
	if d := p.Delay("mcf", "compare", 50); d != 10*time.Millisecond {
		t.Fatalf("Delay = %v, want 10ms", d)
	}

	if _, ok := p.PanicMessage("vpr", "ref", 0); ok {
		t.Fatal("panic fault fired for the wrong unit")
	}
	if msg, ok := p.PanicMessage("vpr", "train", 0); !ok || !strings.Contains(msg, "vpr/train") {
		t.Fatalf("PanicMessage = (%q, %v)", msg, ok)
	}
}

func TestWildcardBench(t *testing.T) {
	p, err := Parse("panic:*/compare")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.PanicMessage("anything", "compare", 42); !ok {
		t.Fatal("wildcard bench did not match")
	}
}

func TestSeededAutoTrap(t *testing.T) {
	parse := func(spec string) uint64 {
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		n, ok := p.Trap("gzip", "ref")
		if !ok {
			t.Fatal("auto trap not armed")
		}
		return n
	}
	a := parse("seed:7,trap:gzip@auto")
	b := parse("trap:gzip@auto,seed:7") // seed position must not matter
	c := parse("seed:8,trap:gzip@auto")
	if a == 0 || a > autoTrapRange {
		t.Fatalf("auto trap point %d out of range", a)
	}
	if a != b {
		t.Fatalf("same seed, different trap points: %d vs %d", a, b)
	}
	if a == c {
		t.Fatalf("different seeds, same trap point %d", a)
	}
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if err := p.BuildError("gzip", "ref"); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Trap("gzip", "ref"); ok {
		t.Fatal("nil plan trapped")
	}
	if d := p.Delay("gzip", "ref", 0); d != 0 {
		t.Fatal("nil plan delayed")
	}
	if _, ok := p.PanicMessage("gzip", "ref", 0); ok {
		t.Fatal("nil plan panicked")
	}
	if !p.Empty() {
		t.Fatal("nil plan not empty")
	}
	if p.String() != "" {
		t.Fatal("nil plan has a string")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"boom",               // no kind separator
		"jitter:gzip",        // unknown kind
		"build:",             // missing bench
		"build:gzip/warm",    // unknown input
		"build:gzip*0",       // zero repeat
		"trap:gzip",          // missing trap point
		"trap:gzip@0",        // zero trap point
		"trap:gzip@soon",     // bad trap point
		"slow:gzip/ref",      // missing duration
		"slow:gzip/ref:fast", // bad duration
		"panic:gzip",         // missing unit
		"panic:gzip/ref@0",   // zero threshold
		"seed:x",             // bad seed
		"build:*0/",          // "*" embedded in a bench name (fuzz find:
		//	its canonical String form "build:*0" re-parses the name's
		//	tail as a repeat count)
		"panic:gzip/u*nit@5", // "*" embedded in a unit name
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestStringRoundTripsArmedState(t *testing.T) {
	p, err := Parse("build:gzip/ref*2,slow:mcf/ref:5ms")
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"build:gzip/ref*2", "slow:mcf/ref:5ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if p.Empty() {
		t.Fatal("armed plan reported empty")
	}
	p.BuildError("gzip", "ref")
	p.BuildError("gzip", "ref")
	if p.Empty() {
		t.Fatal("slow fault still armed, plan reported empty")
	}
}
