package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseAndMatch(t *testing.T) {
	p, err := Parse("build:gzip/ref*1, trap:swim@5000, slow:mcf/compare@50:10ms, panic:vpr/train")
	if err != nil {
		t.Fatal(err)
	}

	// Bounded build fault: fires once, then disarms.
	if err := p.BuildError("gzip", "ref"); err == nil {
		t.Fatal("armed build fault did not fire")
	}
	if err := p.BuildError("gzip", "ref"); err != nil {
		t.Fatalf("*1 fault fired twice: %v", err)
	}
	// Input-qualified: the train build is untouched.
	if err := p.BuildError("gzip", "train"); err != nil {
		t.Fatalf("train build hit a ref-only fault: %v", err)
	}

	// Unbounded trap: fires repeatedly, only on the matching bench.
	for i := 0; i < 3; i++ {
		if n, ok := p.Trap("swim", "ref"); !ok || n != 5000 {
			t.Fatalf("trap fire %d: got (%d, %v)", i, n, ok)
		}
	}
	if _, ok := p.Trap("gzip", "ref"); ok {
		t.Fatal("trap fired for the wrong benchmark")
	}

	// Threshold-qualified slow fault.
	if d := p.Delay("mcf", "compare", 100); d != 0 {
		t.Fatalf("slow fault fired at wrong T: %v", d)
	}
	if d := p.Delay("mcf", "compare", 50); d != 10*time.Millisecond {
		t.Fatalf("Delay = %v, want 10ms", d)
	}

	if _, ok := p.PanicMessage("vpr", "ref", 0); ok {
		t.Fatal("panic fault fired for the wrong unit")
	}
	if msg, ok := p.PanicMessage("vpr", "train", 0); !ok || !strings.Contains(msg, "vpr/train") {
		t.Fatalf("PanicMessage = (%q, %v)", msg, ok)
	}
}

func TestWildcardBench(t *testing.T) {
	p, err := Parse("panic:*/compare")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.PanicMessage("anything", "compare", 42); !ok {
		t.Fatal("wildcard bench did not match")
	}
}

func TestSeededAutoTrap(t *testing.T) {
	parse := func(spec string) uint64 {
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		n, ok := p.Trap("gzip", "ref")
		if !ok {
			t.Fatal("auto trap not armed")
		}
		return n
	}
	a := parse("seed:7,trap:gzip@auto")
	b := parse("trap:gzip@auto,seed:7") // seed position must not matter
	c := parse("seed:8,trap:gzip@auto")
	if a == 0 || a > autoTrapRange {
		t.Fatalf("auto trap point %d out of range", a)
	}
	if a != b {
		t.Fatalf("same seed, different trap points: %d vs %d", a, b)
	}
	if a == c {
		t.Fatalf("different seeds, same trap point %d", a)
	}
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if err := p.BuildError("gzip", "ref"); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Trap("gzip", "ref"); ok {
		t.Fatal("nil plan trapped")
	}
	if d := p.Delay("gzip", "ref", 0); d != 0 {
		t.Fatal("nil plan delayed")
	}
	if _, ok := p.PanicMessage("gzip", "ref", 0); ok {
		t.Fatal("nil plan panicked")
	}
	if !p.Empty() {
		t.Fatal("nil plan not empty")
	}
	if p.String() != "" {
		t.Fatal("nil plan has a string")
	}
}

func TestNetFaults(t *testing.T) {
	p, err := Parse("net:drop:complete*1, net:delay:lease:50ms*2, net:dup:complete@2*1, net:sever:heartbeat@3")
	if err != nil {
		t.Fatal(err)
	}

	// Call 1 to complete: drop fires (first matching call), dup not yet
	// (armed at call 2).
	v := p.NetCall("complete")
	if !v.Drop || v.Duplicate || v.Sever || v.Delay != 0 {
		t.Fatalf("complete call 1: %+v", v)
	}
	// Call 2: drop exhausted, dup armed.
	v = p.NetCall("complete")
	if v.Drop || !v.Duplicate {
		t.Fatalf("complete call 2: %+v", v)
	}
	// Call 3: everything consumed.
	if v = p.NetCall("complete"); v != (NetVerdict{}) {
		t.Fatalf("complete call 3: %+v", v)
	}

	// Bounded delay: two calls, then clean.
	for i := 0; i < 2; i++ {
		if v = p.NetCall("lease"); v.Delay != 50*time.Millisecond {
			t.Fatalf("lease call %d: %+v", i+1, v)
		}
	}
	if v = p.NetCall("lease"); v.Delay != 0 {
		t.Fatalf("lease call 3: %+v", v)
	}

	// Sever is persistent from its armed point on.
	for i := 1; i <= 6; i++ {
		v = p.NetCall("heartbeat")
		if want := i >= 3; v.Sever != want {
			t.Fatalf("heartbeat call %d: sever = %v, want %v", i, v.Sever, want)
		}
	}
}

func TestNetFaultWildcardAndAuto(t *testing.T) {
	p, err := Parse("net:drop:*")
	if err != nil {
		t.Fatal(err)
	}
	if v := p.NetCall("anything"); !v.Drop {
		t.Fatal("wildcard endpoint did not match")
	}

	// @auto derives a stable, in-range call index from the seed.
	fire := func(spec string) int {
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= autoNetRange; i++ {
			if p.NetCall("lease").Sever {
				return i
			}
		}
		t.Fatalf("auto sever never fired: %s", spec)
		return 0
	}
	a := fire("seed:7,net:sever:lease@auto")
	b := fire("net:sever:lease@auto,seed:7")
	if a != b {
		t.Fatalf("same seed, different auto points: %d vs %d", a, b)
	}

	// A nil plan injects nothing.
	var nilPlan *Plan
	if v := nilPlan.NetCall("lease"); v != (NetVerdict{}) {
		t.Fatalf("nil plan: %+v", v)
	}
}

func TestNetFaultStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"net:drop:complete*1",
		"net:delay:lease:50ms*2",
		"net:dup:complete@2*1",
		"net:sever:heartbeat@3",
		"net:drop:*",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("String() = %q, want %q", got, spec)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"boom",               // no kind separator
		"jitter:gzip",        // unknown kind
		"build:",             // missing bench
		"build:gzip/warm",    // unknown input
		"build:gzip*0",       // zero repeat
		"trap:gzip",          // missing trap point
		"trap:gzip@0",        // zero trap point
		"trap:gzip@soon",     // bad trap point
		"slow:gzip/ref",      // missing duration
		"slow:gzip/ref:fast", // bad duration
		"panic:gzip",         // missing unit
		"panic:gzip/ref@0",   // zero threshold
		"seed:x",             // bad seed
		"build:*0/",          // "*" embedded in a bench name (fuzz find:
		//	its canonical String form "build:*0" re-parses the name's
		//	tail as a repeat count)
		"panic:gzip/u*nit@5",      // "*" embedded in a unit name
		"net:lease",               // missing net op
		"net:jam:lease",           // unknown net op
		"net:drop:",               // missing endpoint
		"net:drop:lease@0",        // zero call index
		"net:drop:lease@soon",     // bad call index
		"net:delay:lease",         // missing duration
		"net:delay:lease:fast",    // bad duration
		"net:drop:le*ase",         // "*" embedded in an endpoint name
		"net:sever:hea@rt@beat@2", // "@" embedded in an endpoint name
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestStringRoundTripsArmedState(t *testing.T) {
	p, err := Parse("build:gzip/ref*2,slow:mcf/ref:5ms")
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"build:gzip/ref*2", "slow:mcf/ref:5ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if p.Empty() {
		t.Fatal("armed plan reported empty")
	}
	p.BuildError("gzip", "ref")
	p.BuildError("gzip", "ref")
	if p.Empty() {
		t.Fatal("slow fault still armed, plan reported empty")
	}
}
