// Package faultinject provides deterministic fault injection for the
// study pipeline: a Plan of armed failure sites, parsed from a compact
// spec string, that the executor consults at well-defined points — the
// build cache before invoking a target builder, the translator config
// (a guest trap at the Nth dynamic block, see dbt.Config.TrapAfter),
// and the scheduler's unit wrapper (a delay or a panic at a chosen
// (bench, unit, T) site).
//
// Every fault is deterministic: it fires at an exact, configured point,
// the same way on every run, so the executor's failure paths — retry,
// degrade, checkpoint/resume — are exercised by reproducible tests
// instead of being trusted. A fault may be bounded ("*k": fire k times,
// then disarm), which is how transient failures are modelled for the
// retry machinery. The only randomness is the explicit seed entry,
// which derives unspecified trap points ("trap:gzip@auto") from a
// fixed-seed generator, keeping even "random" faults reproducible.
//
// Spec grammar (comma-separated entries):
//
//	build:<bench>[/<input>][*<k>]        fail the target build
//	trap:<bench>[/<input>]@<n|auto>[*<k>] guest trap at the Nth block
//	slow:<bench>/<unit>[@<T>]:<dur>[*<k>] delay the unit by <dur>
//	panic:<bench>/<unit>[@<T>][*<k>]     panic inside the unit
//	seed:<n>                             seed for @auto points
//
// <bench> is a benchmark name or "*" (any); <input> is "ref" or
// "train" (default: any); <unit> is a pipeline unit name (ref, train,
// compare, train_compare) or "*"; <T> is an effective retranslation
// threshold (default: any).
//
// Network faults target the fleet protocol's HTTP calls (see
// internal/fleet): the client consults the plan once per call, keyed
// by endpoint name (lease, heartbeat, complete, or "*"):
//
//	net:drop:<endpoint>[@<n|auto>][*<k>]      response lost after delivery
//	net:delay:<endpoint>[@<n|auto>]:<dur>[*<k>] delay the call by <dur>
//	net:dup:<endpoint>[@<n|auto>][*<k>]       send the request twice
//	net:sever:<endpoint>[@<n|auto>][*<k>]     partition: call never sent
//
// @<n> arms the fault at the Nth matching call (default: the first);
// @auto derives the point from the seed. drop models a lost response —
// the server processed the request, the caller sees a failure (the
// sharp case for completion idempotency); sever models a partition —
// the request is never delivered, persistently from its armed point on
// unless bounded with *<k>.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Kind enumerates the failure modes a fault can arm.
type Kind int

const (
	// KindBuild fails a target build in the build cache.
	KindBuild Kind = iota
	// KindTrap aborts guest execution at the Nth dynamic block.
	KindTrap
	// KindSlow delays a unit before its body runs.
	KindSlow
	// KindPanic panics inside a unit body.
	KindPanic
	// KindNetDrop loses the response of a fleet HTTP call after the
	// server has processed it.
	KindNetDrop
	// KindNetDelay delays a fleet HTTP call.
	KindNetDelay
	// KindNetDup sends a fleet HTTP request twice.
	KindNetDup
	// KindNetSever partitions an endpoint: calls are never delivered.
	KindNetSever
)

// netKind reports whether the kind is a fleet network fault.
func netKind(k Kind) bool {
	switch k {
	case KindNetDrop, KindNetDelay, KindNetDup, KindNetSever:
		return true
	}
	return false
}

// String names the kind as it appears in specs.
func (k Kind) String() string {
	switch k {
	case KindBuild:
		return "build"
	case KindTrap:
		return "trap"
	case KindSlow:
		return "slow"
	case KindPanic:
		return "panic"
	case KindNetDrop:
		return "net:drop"
	case KindNetDelay:
		return "net:delay"
	case KindNetDup:
		return "net:dup"
	case KindNetSever:
		return "net:sever"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one armed injection site.
type Fault struct {
	Kind Kind
	// Bench is the benchmark name the fault applies to ("*" = any).
	Bench string
	// Input restricts build/trap faults to one input ("" = any).
	Input string
	// Unit restricts slow/panic faults to one pipeline unit ("*" = any).
	Unit string
	// T restricts slow/panic faults to one effective threshold (0 = any).
	T uint64
	// Endpoint restricts net faults to one fleet endpoint ("*" = any).
	Endpoint string
	// N is the dynamic block count a trap fires at; for net faults it
	// is the 1-based matching-call index the fault arms at.
	N uint64
	// Delay is the slow/net-delay fault's injected latency.
	Delay time.Duration
	// Times is how many matches remain before the fault disarms
	// (negative = unlimited).
	Times int
	// calls counts matching fleet calls seen so far (net faults only),
	// so @<n> points fire at an exact call index.
	calls uint64
}

// autoTrapRange bounds @auto trap points: early enough to fire on
// tiny-scale runs, late enough that the run is demonstrably under way.
const autoTrapRange = 4096

// autoNetRange bounds @auto net fault points: fleet protocol calls per
// endpoint number in the handfuls, not the thousands.
const autoNetRange = 8

// Plan is a set of armed faults. All methods are safe for concurrent
// use and safe on a nil receiver (a nil *Plan injects nothing), so the
// executor needs no guards at its injection points.
type Plan struct {
	mu     sync.Mutex
	faults []*Fault
}

// Parse builds a plan from a spec string (see the package comment for
// the grammar). An empty spec yields an empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	seed := uint64(1)
	var autos, netAutos []*Fault
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, body, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: %q: want <kind>:<site>", entry)
		}
		if kind == "seed" {
			n, err := strconv.ParseUint(body, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: %q: bad seed: %v", entry, err)
			}
			seed = n
			continue
		}
		f := &Fault{Times: -1}
		// A trailing "*<digits>" bounds the fire count; a bare "*" is
		// the benchmark wildcard, so only an all-digit suffix counts.
		if head, times, ok := cutLast(body, "*"); ok && times != "" && !strings.ContainsFunc(times, func(r rune) bool { return r < '0' || r > '9' }) {
			k, err := strconv.Atoi(times)
			if err != nil || k < 1 {
				return nil, fmt.Errorf("faultinject: %q: bad repeat count %q", entry, times)
			}
			f.Times = k
			body = head
		}
		var err error
		switch kind {
		case "build":
			f.Kind = KindBuild
			err = parseBuildSite(f, body)
		case "trap":
			f.Kind = KindTrap
			var auto bool
			if auto, err = parseTrapSite(f, body); auto {
				autos = append(autos, f)
			}
		case "slow":
			f.Kind = KindSlow
			site, dur, ok := cutLast(body, ":")
			if !ok {
				err = fmt.Errorf("missing duration (want <site>:<dur>)")
				break
			}
			if f.Delay, err = time.ParseDuration(dur); err != nil {
				break
			}
			err = parseUnitSite(f, site)
		case "panic":
			f.Kind = KindPanic
			err = parseUnitSite(f, body)
		case "net":
			var auto bool
			if auto, err = parseNetSite(f, body); auto {
				netAutos = append(netAutos, f)
			}
		default:
			err = fmt.Errorf("unknown kind %q", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: %q: %v", entry, err)
		}
		p.faults = append(p.faults, f)
	}
	// Seeded auto points: derived after the whole spec is read so the
	// seed entry's position does not matter. Trap and net points draw
	// from separate streams so adding a net fault never shifts an
	// existing plan's trap points.
	src := rng.New(seed)
	for _, f := range autos {
		f.N = uint64(src.Intn(autoTrapRange)) + 1
	}
	netSrc := rng.New(seed + 1)
	for _, f := range netAutos {
		f.N = uint64(netSrc.Intn(autoNetRange)) + 1
	}
	return p, nil
}

// parseNetSite parses "<op>:<endpoint>[@<n|auto>][:<dur>]" (the repeat
// suffix is already cut) and reports whether the call index must be
// derived from the seed.
func parseNetSite(f *Fault, body string) (auto bool, err error) {
	op, site, ok := strings.Cut(body, ":")
	if !ok {
		return false, fmt.Errorf("want net:<op>:<endpoint>")
	}
	switch op {
	case "drop":
		f.Kind = KindNetDrop
	case "delay":
		f.Kind = KindNetDelay
		head, dur, ok := cutLast(site, ":")
		if !ok {
			return false, fmt.Errorf("missing duration (want net:delay:<endpoint>:<dur>)")
		}
		if f.Delay, err = time.ParseDuration(dur); err != nil {
			return false, err
		}
		site = head
	case "dup":
		f.Kind = KindNetDup
	case "sever":
		f.Kind = KindNetSever
	default:
		return false, fmt.Errorf("unknown net op %q (want drop, delay, dup or sever)", op)
	}
	f.N = 1
	if head, at, ok := cutLast(site, "@"); ok {
		site = head
		if at == "auto" {
			auto = true
		} else {
			n, err := strconv.ParseUint(at, 10, 64)
			if err != nil || n == 0 {
				return false, fmt.Errorf("bad call index %q (want a positive count or auto)", at)
			}
			f.N = n
		}
	}
	if site == "" {
		return false, fmt.Errorf("missing endpoint name")
	}
	if err := checkName("endpoint name", site); err != nil {
		return false, err
	}
	if strings.ContainsAny(site, ":@/") {
		return false, fmt.Errorf("endpoint name %q may not contain %q", site, ":@/")
	}
	f.Endpoint = site
	return auto, nil
}

// cutLast splits s around the final occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// parseBuildSite parses "<bench>[/<input>]".
// checkName rejects "*" embedded in a site component: a bare "*" is
// the wildcard, and any other "*" would collide with the repeat-count
// suffix when the plan's canonical String form is re-parsed (an
// optional component rendered away can expose a trailing "*<digits>"
// of the name to the repeat cutter).
func checkName(what, name string) error {
	if name != "*" && strings.Contains(name, "*") {
		return fmt.Errorf("%s %q may not contain %q (a bare %q matches any)", what, name, "*", "*")
	}
	return nil
}

func parseBuildSite(f *Fault, site string) error {
	f.Bench, f.Input, _ = strings.Cut(site, "/")
	if f.Bench == "" {
		return fmt.Errorf("missing benchmark name")
	}
	if err := checkName("benchmark name", f.Bench); err != nil {
		return err
	}
	if f.Input != "" && f.Input != "ref" && f.Input != "train" {
		return fmt.Errorf("unknown input %q (want ref or train)", f.Input)
	}
	return nil
}

// parseTrapSite parses "<bench>[/<input>]@<n|auto>" and reports whether
// the trap point must be derived from the seed.
func parseTrapSite(f *Fault, site string) (auto bool, err error) {
	site, at, ok := cutLast(site, "@")
	if !ok {
		return false, fmt.Errorf("missing trap point (want <bench>@<n>)")
	}
	if err := parseBuildSite(f, site); err != nil {
		return false, err
	}
	if at == "auto" {
		return true, nil
	}
	n, err := strconv.ParseUint(at, 10, 64)
	if err != nil || n == 0 {
		return false, fmt.Errorf("bad trap point %q (want a positive block count or auto)", at)
	}
	f.N = n
	return false, nil
}

// parseUnitSite parses "<bench>/<unit>[@<T>]".
func parseUnitSite(f *Fault, site string) error {
	if head, at, ok := cutLast(site, "@"); ok {
		t, err := strconv.ParseUint(at, 10, 64)
		if err != nil || t == 0 {
			return fmt.Errorf("bad threshold %q", at)
		}
		f.T = t
		site = head
	}
	bench, unit, ok := strings.Cut(site, "/")
	if !ok || bench == "" || unit == "" {
		return fmt.Errorf("want <bench>/<unit>")
	}
	if err := checkName("benchmark name", bench); err != nil {
		return err
	}
	if err := checkName("unit name", unit); err != nil {
		return err
	}
	f.Bench, f.Unit = bench, unit
	return nil
}

// String renders the armed faults for logs.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	parts := make([]string, 0, len(p.faults))
	for _, f := range p.faults {
		if netKind(f.Kind) {
			s := f.Kind.String() + ":" + f.Endpoint
			if f.N != 1 {
				s += fmt.Sprintf("@%d", f.N)
			}
			if f.Kind == KindNetDelay {
				s += ":" + f.Delay.String()
			}
			if f.Times >= 0 {
				s += fmt.Sprintf("*%d", f.Times)
			}
			parts = append(parts, s)
			continue
		}
		s := f.Kind.String() + ":" + f.Bench
		if f.Input != "" {
			s += "/" + f.Input
		}
		if f.Unit != "" {
			s += "/" + f.Unit
		}
		if f.T != 0 {
			s += fmt.Sprintf("@%d", f.T)
		}
		if f.Kind == KindTrap {
			s += fmt.Sprintf("@%d", f.N)
		}
		if f.Kind == KindSlow {
			s += ":" + f.Delay.String()
		}
		if f.Times >= 0 {
			s += fmt.Sprintf("*%d", f.Times)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ",")
}

// Empty reports whether the plan has no armed faults left.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.faults {
		if f.Times != 0 {
			return false
		}
	}
	return true
}

// match finds the first armed fault of the kind accepted by ok and
// consumes one fire from its budget.
func (p *Plan) match(kind Kind, ok func(*Fault) bool) *Fault {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.faults {
		if f.Kind != kind || f.Times == 0 || !ok(f) {
			continue
		}
		if f.Times > 0 {
			f.Times--
		}
		return f
	}
	return nil
}

func matchBench(f *Fault, bench string) bool { return f.Bench == "*" || f.Bench == bench }
func matchInput(f *Fault, input string) bool { return f.Input == "" || f.Input == input }
func matchUnit(f *Fault, unit string) bool   { return f.Unit == "*" || f.Unit == unit }
func matchT(f *Fault, t uint64) bool         { return f.T == 0 || f.T == t }

// BuildError returns the injected build failure for (bench, input), or
// nil. The build cache consults it before invoking the target builder.
func (p *Plan) BuildError(bench, input string) error {
	f := p.match(KindBuild, func(f *Fault) bool { return matchBench(f, bench) && matchInput(f, input) })
	if f == nil {
		return nil
	}
	return fmt.Errorf("faultinject: build failure for %s/%s", bench, input)
}

// Trap returns the injected guest-trap block count for a run of
// (bench, input), if one is armed. The value feeds dbt.Config.TrapAfter.
func (p *Plan) Trap(bench, input string) (uint64, bool) {
	f := p.match(KindTrap, func(f *Fault) bool { return matchBench(f, bench) && matchInput(f, input) })
	if f == nil {
		return 0, false
	}
	return f.N, true
}

// Delay returns the injected latency for a unit at (bench, unit, t),
// or zero.
func (p *Plan) Delay(bench, unit string, t uint64) time.Duration {
	f := p.match(KindSlow, func(f *Fault) bool {
		return matchBench(f, bench) && matchUnit(f, unit) && matchT(f, t)
	})
	if f == nil {
		return 0
	}
	return f.Delay
}

// NetVerdict is the injected behavior for one fleet HTTP call: the
// fields compose (a call can be delayed and duplicated and have its
// response dropped), and the zero value means the call proceeds
// untouched.
type NetVerdict struct {
	// Drop: deliver the request but lose the response — the caller
	// sees a transport error after the server has processed the call.
	Drop bool
	// Delay the call by this much before sending.
	Delay time.Duration
	// Duplicate: send the request twice.
	Duplicate bool
	// Sever: the request is never delivered (partition).
	Sever bool
}

// NetCall consults the plan for one call to the named fleet endpoint
// and returns the injected behavior. Each armed net fault keeps its
// own per-fault count of matching calls: a fault fires from its @<n>
// point on, bounded by its *<k> budget (sever defaults to persistent —
// a partition, not a blip).
func (p *Plan) NetCall(endpoint string) NetVerdict {
	var v NetVerdict
	if p == nil {
		return v
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.faults {
		if !netKind(f.Kind) || !(f.Endpoint == "*" || f.Endpoint == endpoint) {
			continue
		}
		f.calls++
		if f.calls < f.N || f.Times == 0 {
			continue
		}
		if f.Times > 0 {
			f.Times--
		}
		switch f.Kind {
		case KindNetDrop:
			v.Drop = true
		case KindNetDelay:
			v.Delay += f.Delay
		case KindNetDup:
			v.Duplicate = true
		case KindNetSever:
			v.Sever = true
		}
	}
	return v
}

// PanicMessage returns the message to panic with inside the unit at
// (bench, unit, t), if a panic fault is armed there.
func (p *Plan) PanicMessage(bench, unit string, t uint64) (string, bool) {
	f := p.match(KindPanic, func(f *Fault) bool {
		return matchBench(f, bench) && matchUnit(f, unit) && matchT(f, t)
	})
	if f == nil {
		return "", false
	}
	return fmt.Sprintf("faultinject: panic in %s/%s", bench, unit), true
}
