// Package faultinject provides deterministic fault injection for the
// study pipeline: a Plan of armed failure sites, parsed from a compact
// spec string, that the executor consults at well-defined points — the
// build cache before invoking a target builder, the translator config
// (a guest trap at the Nth dynamic block, see dbt.Config.TrapAfter),
// and the scheduler's unit wrapper (a delay or a panic at a chosen
// (bench, unit, T) site).
//
// Every fault is deterministic: it fires at an exact, configured point,
// the same way on every run, so the executor's failure paths — retry,
// degrade, checkpoint/resume — are exercised by reproducible tests
// instead of being trusted. A fault may be bounded ("*k": fire k times,
// then disarm), which is how transient failures are modelled for the
// retry machinery. The only randomness is the explicit seed entry,
// which derives unspecified trap points ("trap:gzip@auto") from a
// fixed-seed generator, keeping even "random" faults reproducible.
//
// Spec grammar (comma-separated entries):
//
//	build:<bench>[/<input>][*<k>]        fail the target build
//	trap:<bench>[/<input>]@<n|auto>[*<k>] guest trap at the Nth block
//	slow:<bench>/<unit>[@<T>]:<dur>[*<k>] delay the unit by <dur>
//	panic:<bench>/<unit>[@<T>][*<k>]     panic inside the unit
//	seed:<n>                             seed for @auto trap points
//
// <bench> is a benchmark name or "*" (any); <input> is "ref" or
// "train" (default: any); <unit> is a pipeline unit name (ref, train,
// compare, train_compare) or "*"; <T> is an effective retranslation
// threshold (default: any).
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Kind enumerates the failure modes a fault can arm.
type Kind int

const (
	// KindBuild fails a target build in the build cache.
	KindBuild Kind = iota
	// KindTrap aborts guest execution at the Nth dynamic block.
	KindTrap
	// KindSlow delays a unit before its body runs.
	KindSlow
	// KindPanic panics inside a unit body.
	KindPanic
)

// String names the kind as it appears in specs.
func (k Kind) String() string {
	switch k {
	case KindBuild:
		return "build"
	case KindTrap:
		return "trap"
	case KindSlow:
		return "slow"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one armed injection site.
type Fault struct {
	Kind Kind
	// Bench is the benchmark name the fault applies to ("*" = any).
	Bench string
	// Input restricts build/trap faults to one input ("" = any).
	Input string
	// Unit restricts slow/panic faults to one pipeline unit ("*" = any).
	Unit string
	// T restricts slow/panic faults to one effective threshold (0 = any).
	T uint64
	// N is the dynamic block count a trap fires at.
	N uint64
	// Delay is the slow fault's injected latency.
	Delay time.Duration
	// Times is how many matches remain before the fault disarms
	// (negative = unlimited).
	Times int
}

// autoTrapRange bounds @auto trap points: early enough to fire on
// tiny-scale runs, late enough that the run is demonstrably under way.
const autoTrapRange = 4096

// Plan is a set of armed faults. All methods are safe for concurrent
// use and safe on a nil receiver (a nil *Plan injects nothing), so the
// executor needs no guards at its injection points.
type Plan struct {
	mu     sync.Mutex
	faults []*Fault
}

// Parse builds a plan from a spec string (see the package comment for
// the grammar). An empty spec yields an empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	seed := uint64(1)
	var autos []*Fault
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, body, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: %q: want <kind>:<site>", entry)
		}
		if kind == "seed" {
			n, err := strconv.ParseUint(body, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: %q: bad seed: %v", entry, err)
			}
			seed = n
			continue
		}
		f := &Fault{Times: -1}
		// A trailing "*<digits>" bounds the fire count; a bare "*" is
		// the benchmark wildcard, so only an all-digit suffix counts.
		if head, times, ok := cutLast(body, "*"); ok && times != "" && !strings.ContainsFunc(times, func(r rune) bool { return r < '0' || r > '9' }) {
			k, err := strconv.Atoi(times)
			if err != nil || k < 1 {
				return nil, fmt.Errorf("faultinject: %q: bad repeat count %q", entry, times)
			}
			f.Times = k
			body = head
		}
		var err error
		switch kind {
		case "build":
			f.Kind = KindBuild
			err = parseBuildSite(f, body)
		case "trap":
			f.Kind = KindTrap
			var auto bool
			if auto, err = parseTrapSite(f, body); auto {
				autos = append(autos, f)
			}
		case "slow":
			f.Kind = KindSlow
			site, dur, ok := cutLast(body, ":")
			if !ok {
				err = fmt.Errorf("missing duration (want <site>:<dur>)")
				break
			}
			if f.Delay, err = time.ParseDuration(dur); err != nil {
				break
			}
			err = parseUnitSite(f, site)
		case "panic":
			f.Kind = KindPanic
			err = parseUnitSite(f, body)
		default:
			err = fmt.Errorf("unknown kind %q", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: %q: %v", entry, err)
		}
		p.faults = append(p.faults, f)
	}
	// Seeded auto trap points: derived after the whole spec is read so
	// the seed entry's position does not matter.
	src := rng.New(seed)
	for _, f := range autos {
		f.N = uint64(src.Intn(autoTrapRange)) + 1
	}
	return p, nil
}

// cutLast splits s around the final occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// parseBuildSite parses "<bench>[/<input>]".
// checkName rejects "*" embedded in a site component: a bare "*" is
// the wildcard, and any other "*" would collide with the repeat-count
// suffix when the plan's canonical String form is re-parsed (an
// optional component rendered away can expose a trailing "*<digits>"
// of the name to the repeat cutter).
func checkName(what, name string) error {
	if name != "*" && strings.Contains(name, "*") {
		return fmt.Errorf("%s %q may not contain %q (a bare %q matches any)", what, name, "*", "*")
	}
	return nil
}

func parseBuildSite(f *Fault, site string) error {
	f.Bench, f.Input, _ = strings.Cut(site, "/")
	if f.Bench == "" {
		return fmt.Errorf("missing benchmark name")
	}
	if err := checkName("benchmark name", f.Bench); err != nil {
		return err
	}
	if f.Input != "" && f.Input != "ref" && f.Input != "train" {
		return fmt.Errorf("unknown input %q (want ref or train)", f.Input)
	}
	return nil
}

// parseTrapSite parses "<bench>[/<input>]@<n|auto>" and reports whether
// the trap point must be derived from the seed.
func parseTrapSite(f *Fault, site string) (auto bool, err error) {
	site, at, ok := cutLast(site, "@")
	if !ok {
		return false, fmt.Errorf("missing trap point (want <bench>@<n>)")
	}
	if err := parseBuildSite(f, site); err != nil {
		return false, err
	}
	if at == "auto" {
		return true, nil
	}
	n, err := strconv.ParseUint(at, 10, 64)
	if err != nil || n == 0 {
		return false, fmt.Errorf("bad trap point %q (want a positive block count or auto)", at)
	}
	f.N = n
	return false, nil
}

// parseUnitSite parses "<bench>/<unit>[@<T>]".
func parseUnitSite(f *Fault, site string) error {
	if head, at, ok := cutLast(site, "@"); ok {
		t, err := strconv.ParseUint(at, 10, 64)
		if err != nil || t == 0 {
			return fmt.Errorf("bad threshold %q", at)
		}
		f.T = t
		site = head
	}
	bench, unit, ok := strings.Cut(site, "/")
	if !ok || bench == "" || unit == "" {
		return fmt.Errorf("want <bench>/<unit>")
	}
	if err := checkName("benchmark name", bench); err != nil {
		return err
	}
	if err := checkName("unit name", unit); err != nil {
		return err
	}
	f.Bench, f.Unit = bench, unit
	return nil
}

// String renders the armed faults for logs.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	parts := make([]string, 0, len(p.faults))
	for _, f := range p.faults {
		s := f.Kind.String() + ":" + f.Bench
		if f.Input != "" {
			s += "/" + f.Input
		}
		if f.Unit != "" {
			s += "/" + f.Unit
		}
		if f.T != 0 {
			s += fmt.Sprintf("@%d", f.T)
		}
		if f.Kind == KindTrap {
			s += fmt.Sprintf("@%d", f.N)
		}
		if f.Kind == KindSlow {
			s += ":" + f.Delay.String()
		}
		if f.Times >= 0 {
			s += fmt.Sprintf("*%d", f.Times)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ",")
}

// Empty reports whether the plan has no armed faults left.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.faults {
		if f.Times != 0 {
			return false
		}
	}
	return true
}

// match finds the first armed fault of the kind accepted by ok and
// consumes one fire from its budget.
func (p *Plan) match(kind Kind, ok func(*Fault) bool) *Fault {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.faults {
		if f.Kind != kind || f.Times == 0 || !ok(f) {
			continue
		}
		if f.Times > 0 {
			f.Times--
		}
		return f
	}
	return nil
}

func matchBench(f *Fault, bench string) bool { return f.Bench == "*" || f.Bench == bench }
func matchInput(f *Fault, input string) bool { return f.Input == "" || f.Input == input }
func matchUnit(f *Fault, unit string) bool   { return f.Unit == "*" || f.Unit == unit }
func matchT(f *Fault, t uint64) bool         { return f.T == 0 || f.T == t }

// BuildError returns the injected build failure for (bench, input), or
// nil. The build cache consults it before invoking the target builder.
func (p *Plan) BuildError(bench, input string) error {
	f := p.match(KindBuild, func(f *Fault) bool { return matchBench(f, bench) && matchInput(f, input) })
	if f == nil {
		return nil
	}
	return fmt.Errorf("faultinject: build failure for %s/%s", bench, input)
}

// Trap returns the injected guest-trap block count for a run of
// (bench, input), if one is armed. The value feeds dbt.Config.TrapAfter.
func (p *Plan) Trap(bench, input string) (uint64, bool) {
	f := p.match(KindTrap, func(f *Fault) bool { return matchBench(f, bench) && matchInput(f, input) })
	if f == nil {
		return 0, false
	}
	return f.N, true
}

// Delay returns the injected latency for a unit at (bench, unit, t),
// or zero.
func (p *Plan) Delay(bench, unit string, t uint64) time.Duration {
	f := p.match(KindSlow, func(f *Fault) bool {
		return matchBench(f, bench) && matchUnit(f, unit) && matchT(f, t)
	})
	if f == nil {
		return 0
	}
	return f.Delay
}

// PanicMessage returns the message to panic with inside the unit at
// (bench, unit, t), if a panic fault is armed there.
func (p *Plan) PanicMessage(bench, unit string, t uint64) (string, bool) {
	f := p.match(KindPanic, func(f *Fault) bool {
		return matchBench(f, bench) && matchUnit(f, unit) && matchT(f, t)
	})
	if f == nil {
		return "", false
	}
	return fmt.Sprintf("faultinject: panic in %s/%s", bench, unit), true
}
