package faultinject

import "testing"

// FuzzFaultSpec checks the fault-plan grammar over arbitrary strings:
// Parse never panics, and every spec it accepts renders to a canonical
// String that re-parses to the same plan (String is a fixed point of
// Parse∘String, so plans survive being logged and re-fed).
func FuzzFaultSpec(f *testing.F) {
	f.Add("")
	f.Add("build:gzip/ref")
	f.Add("trap:swim/ref/run@200")
	f.Add("trap:mcf@auto,seed:7")
	f.Add("slow:gzip/train/train:150ms*2")
	f.Add("panic:applu/ref/compare@100*1")
	f.Add("seed:41,trap:*@auto*3")
	f.Add("slow:a:1h2m3s")
	f.Add("build:x*00")
	f.Add("net:drop:complete*1")
	f.Add("net:delay:lease@2:50ms")
	f.Add("net:dup:*@auto,seed:9")
	f.Add("net:sever:heartbeat@3*4")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return
		}
		if p == nil {
			return // empty spec: no plan
		}
		s1 := p.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", s1, spec, err)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("String not a fixed point: %q -> %q -> %q", spec, s1, s2)
		}
	})
}
