package obs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecorderRoundTrip: events emitted concurrently must all land in
// the sink, parse back strictly, and carry the span data verbatim.
func TestRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(fmt.Sprintf("bench%d", w), UnitCompare, uint64(i+1), w,
					r.Start().Add(time.Duration(i)*time.Millisecond), time.Millisecond, 10, nil)
			}
		}()
	}
	wg.Wait()
	dropped, err := r.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if dropped != 0 {
		t.Fatalf("dropped %d events with an unbounded sink", dropped)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(evs) != workers*per {
		t.Fatalf("got %d events, want %d", len(evs), workers*per)
	}
	for _, ev := range evs {
		if ev.DurNS != time.Millisecond.Nanoseconds() || ev.Blocks != 10 || ev.T == 0 {
			t.Fatalf("event fields mangled: %+v", ev)
		}
	}
}

// TestRecorderErrVerbatim: a unit error must be carried through the
// trace unmodified.
func TestRecorderErrVerbatim(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Record("mcf", UnitTrain, 0, 3, r.Start(), time.Second, 0, errors.New("tape ran dry"))
	if _, err := r.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Err != "tape ran dry" || evs[0].Worker != 3 {
		t.Fatalf("event = %+v", evs[0])
	}
}

// blockingWriter blocks every Write until released, simulating a
// stalled trace sink.
type blockingWriter struct {
	release chan struct{}
	buf     bytes.Buffer
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	return w.buf.Write(p)
}

// TestRecorderOverflowDropsNotBlocks: with the sink stalled, a full
// queue must make Emit return immediately and count the overflow
// instead of stalling the worker. 2000 events overflow the encoder's
// 4k staging buffer many times over, so the encoder is guaranteed to
// block on the stalled sink and the queue (depth 1) to overflow, with
// no dependence on goroutine scheduling.
func TestRecorderOverflowDropsNotBlocks(t *testing.T) {
	const emitted = 2000
	w := &blockingWriter{release: make(chan struct{})}
	r := NewRecorderSize(w, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < emitted; i++ {
			r.Record("gzip", UnitRef, 0, 0, r.Start(), time.Millisecond, 1, nil)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Emit blocked on a stalled sink")
	}
	close(w.release)
	dropped, err := r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("stalled sink produced no drops")
	}
	evs, err := ReadEvents(&w.buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(evs))+dropped != emitted {
		t.Fatalf("%d written + %d dropped != %d emitted", len(evs), dropped, emitted)
	}
	// Close is idempotent.
	if d2, _ := r.Close(); d2 != dropped {
		t.Fatalf("second Close dropped = %d, want %d", d2, dropped)
	}
}

// TestEmitAfterCloseIsCountedNoop: a server-lifetime recorder outlives
// individual runs, so late emitters must neither panic on the closed
// channel nor vanish silently — every post-Close event is a counted
// drop, visible through Dropped at any time.
func TestEmitAfterCloseIsCountedNoop(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.Record("gzip", UnitRef, 0, 0, r.Start(), time.Millisecond, 1, nil)
	if _, err := r.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r.Record("gzip", UnitCompare, 100, 0, r.Start(), time.Millisecond, 0, nil)
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d after 3 post-Close emits, want 3", got)
	}
	// The second Close must report the same count and keep the sink
	// intact: exactly the pre-Close event is on disk.
	if d, err := r.Close(); d != 3 || err != nil {
		t.Fatalf("second Close = (%d, %v), want (3, nil)", d, err)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("sink holds %d events, want 1", len(evs))
	}
}

// TestEmitCloseRace hammers Emit from many goroutines while Close runs
// concurrently — the regression test for the send-on-closed-channel
// race a server-lifetime recorder is exposed to. Run under -race, it
// must stay silent; the accounting invariant written + dropped ==
// emitted must hold regardless of where Close lands.
func TestEmitCloseRace(t *testing.T) {
	const workers, per = 8, 200
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record("bench", UnitCompare, uint64(i+1), w, r.Start(), time.Microsecond, 0, nil)
			}
		}()
	}
	// Close lands somewhere in the middle of the emit storm.
	dropped, err := r.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	// Late emitters kept counting after Close returned its snapshot.
	final := r.Dropped()
	if final < dropped {
		t.Fatalf("Dropped went backwards: %d then %d", dropped, final)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if uint64(len(evs))+final != workers*per {
		t.Fatalf("%d written + %d dropped != %d emitted", len(evs), final, workers*per)
	}
}

// TestNilRecorderIsNoop: a nil recorder (tracing off) must accept every
// call.
func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Emit(Event{})
	r.Record("x", UnitBuild, 0, 0, time.Now(), 0, 0, nil)
	if r.Dropped() != 0 {
		t.Fatal("nil recorder dropped events")
	}
	if d, err := r.Close(); d != 0 || err != nil {
		t.Fatalf("nil Close = %d, %v", d, err)
	}
}

// TestReadEventsRejectsBadSchema: the strict reader is the schema
// validator, so each violation class must fail.
func TestReadEventsRejectsBadSchema(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"bench":"a","unit":"ref","worker":0,"start_ns":0,"dur_ns":1,"bogus":2}`,
		"unknown unit":  `{"bench":"a","unit":"warp","worker":0,"start_ns":0,"dur_ns":1}`,
		"missing bench": `{"unit":"ref","worker":0,"start_ns":0,"dur_ns":1}`,
		"negative dur":  `{"bench":"a","unit":"ref","worker":0,"start_ns":0,"dur_ns":-1}`,
		"bad worker":    `{"bench":"a","unit":"ref","worker":-2,"start_ns":0,"dur_ns":1}`,
		"not json":      `trace me`,
	}
	for name, line := range cases {
		if _, err := ReadEvents(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: ReadEvents accepted %q", name, line)
		}
	}
}

// TestRecorderReportsSinkError: an encoding failure surfaces at Close.
func TestRecorderReportsSinkError(t *testing.T) {
	r := NewRecorder(errWriter{})
	r.Record("a", UnitRef, 0, 0, r.Start(), time.Millisecond, 0, nil)
	if _, err := r.Close(); err == nil {
		t.Fatal("Close swallowed the sink error")
	}
}

type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// TestSummarize: phase/bench aggregation and the wall span.
func TestSummarize(t *testing.T) {
	sec := time.Second.Nanoseconds()
	evs := []Event{
		{Bench: "gzip", Unit: UnitBuild, Worker: 0, StartNS: 0, DurNS: sec / 10},
		{Bench: "gzip", Unit: UnitRef, Worker: 0, StartNS: sec / 10, DurNS: 2 * sec, Blocks: 1000},
		{Bench: "mcf", Unit: UnitRef, Worker: 1, StartNS: 0, DurNS: 3 * sec, Blocks: 2000},
		{Bench: "mcf", Unit: UnitCompare, Worker: 1, T: 50, StartNS: 3 * sec, DurNS: sec, Err: "boom"},
	}
	s := Summarize(evs)
	if s.Events != 4 || s.Workers != 2 {
		t.Fatalf("summary header wrong: %+v", s)
	}
	if s.Wall != 4*time.Second {
		t.Fatalf("wall = %v, want 4s", s.Wall)
	}
	if len(s.Phases) != 3 || s.Phases[0].Unit != UnitBuild || s.Phases[1].Unit != UnitRef {
		t.Fatalf("phase order wrong: %+v", s.Phases)
	}
	if s.Phases[1].Dur != 5*time.Second || s.Phases[1].Blocks != 3000 {
		t.Fatalf("ref phase aggregate wrong: %+v", s.Phases[1])
	}
	if s.Phases[2].Errs != 1 {
		t.Fatalf("compare errs = %d, want 1", s.Phases[2].Errs)
	}
	if s.Benches[0].Bench != "mcf" {
		t.Fatalf("bench order wrong: %+v", s.Benches)
	}
	out := Render(evs)
	for _, want := range []string{"per phase", "per benchmark", "busy workers", "mcf", "gzip"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

// TestOccupancyIntegratesToBusyTime: the occupancy series times bin
// width must sum to the total busy nanoseconds, whatever the
// resolution.
func TestOccupancyIntegratesToBusyTime(t *testing.T) {
	sec := time.Second.Nanoseconds()
	evs := []Event{
		{Bench: "a", Unit: UnitRef, Worker: 0, StartNS: 0, DurNS: 4 * sec},
		{Bench: "b", Unit: UnitRef, Worker: 1, StartNS: sec, DurNS: 2 * sec},
		{Bench: "c", Unit: UnitCompare, Worker: 2, StartNS: 3*sec + sec/2, DurNS: sec / 2},
	}
	for _, bins := range []int{1, 7, 64} {
		x, busy := Occupancy(evs, bins)
		if len(x) != bins || len(busy) != bins {
			t.Fatalf("bins=%d: got %d/%d points", bins, len(x), len(busy))
		}
		width := 4.0 / float64(bins) // seconds per bin over the 4s wall
		var integral float64
		for _, v := range busy {
			integral += v * width
		}
		if diff := integral - 6.5; diff < -1e-6 || diff > 1e-6 {
			t.Fatalf("bins=%d: occupancy integral = %v s, want 6.5", bins, integral)
		}
	}
}

// TestSummarizeZeroDurationHotSpans pins the warm-cache guard on the
// blocks-per-second gauge: a span that carries hot-loop counters but
// zero wall time (a cache-warm unit replayed instantly) must yield a
// throughput of exactly 0 — never NaN or Inf — and the rendered
// summary must stay finite.
func TestSummarizeZeroDurationHotSpans(t *testing.T) {
	evs := []Event{
		{Bench: "gzip", Unit: UnitRef, Worker: 0, StartNS: 0, DurNS: 0,
			Blocks: 5000, Fast: 4000, Generic: 1000, Lookups: 42},
	}
	s := Summarize(evs)
	if s.Hot.Blocks != 5000 || s.Hot.RunDur != 0 {
		t.Fatalf("hot aggregate wrong: %+v", s.Hot)
	}
	got := s.Hot.BlocksPerSec()
	if got != 0 {
		t.Fatalf("BlocksPerSec over zero-duration spans = %v, want 0", got)
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("BlocksPerSec leaked a non-finite value: %v", got)
	}
	out := Render(evs)
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("Render leaked %q into the summary:\n%s", bad, out)
		}
	}
}
