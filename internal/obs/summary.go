// Trace summarizer: turns a flight-recorder JSONL stream into the
// breakdowns a human asks of a run — where did the time go by phase and
// by benchmark, which units failed, and how busy the worker pool was
// over the run's lifetime (rendered with internal/textplot).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/textplot"
)

// PhaseTotal aggregates the events of one unit kind.
type PhaseTotal struct {
	Unit   string
	Events int
	Dur    time.Duration
	Blocks uint64
	Errs   int
}

// BenchTotal aggregates the events of one benchmark.
type BenchTotal struct {
	Bench  string
	Events int
	Dur    time.Duration
	Blocks uint64
	Errs   int
}

// HotLoop aggregates the engine hot-loop counters of executed run
// spans: the dynamic block volume against the wall-clock those spans
// spent, the fast/generic dispatch split, and translation-cache probes.
// All zero for traces recorded before the counters existed, or for a
// fully cache-warm study that executed nothing.
type HotLoop struct {
	Blocks  uint64
	RunDur  time.Duration // summed duration of counter-carrying spans
	Fast    uint64
	Generic uint64
	Lookups uint64
}

// BlocksPerSec is the hot-loop throughput over the counted run spans.
func (h HotLoop) BlocksPerSec() float64 {
	if h.RunDur <= 0 {
		return 0
	}
	return float64(h.Blocks) / h.RunDur.Seconds()
}

// Summary is the aggregate view of one trace.
type Summary struct {
	Events int
	// Wall spans the earliest start to the latest end on the recorder
	// timeline.
	Wall time.Duration
	// Workers is the number of distinct pool slots observed.
	Workers int
	Phases  []PhaseTotal // ladder order: build, ref, train, compare, train_compare, run
	Benches []BenchTotal // sorted by descending duration
	Hot     HotLoop
}

// phaseOrder fixes the rendering order of known units.
var phaseOrder = []string{UnitBuild, UnitRef, UnitTrain, UnitCompare, UnitTrainCompare, UnitRun, UnitRetry, UnitCheckpoint, UnitCacheHit, UnitCacheMiss, UnitCacheStore}

// Summarize aggregates a trace. Events must have passed ReadEvents
// validation.
func Summarize(events []Event) *Summary {
	s := &Summary{Events: len(events)}
	phases := make(map[string]*PhaseTotal)
	benches := make(map[string]*BenchTotal)
	workers := make(map[int]bool)
	var end int64
	for _, ev := range events {
		p := phases[ev.Unit]
		if p == nil {
			p = &PhaseTotal{Unit: ev.Unit}
			phases[ev.Unit] = p
		}
		b := benches[ev.Bench]
		if b == nil {
			b = &BenchTotal{Bench: ev.Bench}
			benches[ev.Bench] = b
		}
		p.Events++
		b.Events++
		p.Dur += time.Duration(ev.DurNS)
		b.Dur += time.Duration(ev.DurNS)
		p.Blocks += ev.Blocks
		b.Blocks += ev.Blocks
		if ev.Err != "" {
			p.Errs++
			b.Errs++
		}
		workers[ev.Worker] = true
		if ev.Fast > 0 || ev.Generic > 0 {
			s.Hot.Blocks += ev.Blocks
			s.Hot.RunDur += time.Duration(ev.DurNS)
			s.Hot.Fast += ev.Fast
			s.Hot.Generic += ev.Generic
			s.Hot.Lookups += ev.Lookups
		}
		if e := ev.StartNS + ev.DurNS; e > end {
			end = e
		}
	}
	s.Wall = time.Duration(end)
	s.Workers = len(workers)
	for _, unit := range phaseOrder {
		if p := phases[unit]; p != nil {
			s.Phases = append(s.Phases, *p)
		}
	}
	for _, b := range benches {
		s.Benches = append(s.Benches, *b)
	}
	sort.Slice(s.Benches, func(i, j int) bool {
		if s.Benches[i].Dur != s.Benches[j].Dur {
			return s.Benches[i].Dur > s.Benches[j].Dur
		}
		return s.Benches[i].Bench < s.Benches[j].Bench
	})
	return s
}

// occupancyBins is the timeline resolution of the worker-occupancy
// chart.
const occupancyBins = 72

// Occupancy computes the average number of busy workers per timeline
// bin: each event contributes its overlap with the bin, so the series
// integrates to total busy time regardless of resolution.
func Occupancy(events []Event, bins int) (x []float64, busy []float64) {
	if bins < 1 {
		bins = occupancyBins
	}
	var end int64
	for _, ev := range events {
		if e := ev.StartNS + ev.DurNS; e > end {
			end = e
		}
	}
	if end == 0 {
		return nil, nil
	}
	width := float64(end) / float64(bins)
	x = make([]float64, bins)
	busy = make([]float64, bins)
	for i := range x {
		x[i] = float64(i) * width / float64(time.Second)
	}
	for _, ev := range events {
		lo, hi := float64(ev.StartNS), float64(ev.StartNS+ev.DurNS)
		first := int(lo / width)
		last := int(hi / width)
		if last >= bins {
			last = bins - 1
		}
		for b := first; b <= last; b++ {
			binLo, binHi := float64(b)*width, float64(b+1)*width
			overlap := minf(hi, binHi) - maxf(lo, binLo)
			if overlap > 0 {
				busy[b] += overlap / width
			}
		}
	}
	return x, busy
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Render formats the summary plus the worker-occupancy chart of the
// trace the summary came from.
func Render(events []Event) string {
	s := Summarize(events)
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events, wall %.3fs, %d workers\n",
		s.Events, s.Wall.Seconds(), s.Workers)

	var total time.Duration
	for _, p := range s.Phases {
		total += p.Dur
	}
	b.WriteString("\n-- per phase --\n")
	fmt.Fprintf(&b, "%-14s %8s %12s %8s %16s %6s\n", "phase", "events", "seconds", "share", "blocks", "errs")
	for _, p := range s.Phases {
		share := 0.0
		if total > 0 {
			share = 100 * float64(p.Dur) / float64(total)
		}
		fmt.Fprintf(&b, "%-14s %8d %12.4f %7.1f%% %16d %6d\n",
			p.Unit, p.Events, p.Dur.Seconds(), share, p.Blocks, p.Errs)
	}

	if h := s.Hot; h.Fast+h.Generic > 0 {
		total := h.Fast + h.Generic
		b.WriteString("\n-- hot loop (executed run spans) --\n")
		fmt.Fprintf(&b, "blocks/s       %14.0f  (%d blocks over %.3fs of run spans)\n",
			h.BlocksPerSec(), h.Blocks, h.RunDur.Seconds())
		fmt.Fprintf(&b, "dispatch       %14d fast (%.2f%%), %d generic\n",
			h.Fast, 100*float64(h.Fast)/float64(total), h.Generic)
		fmt.Fprintf(&b, "cache lookups  %14d  (%.4f per block)\n",
			h.Lookups, float64(h.Lookups)/float64(total))
	}

	b.WriteString("\n-- per benchmark --\n")
	fmt.Fprintf(&b, "%-14s %8s %12s %16s %6s\n", "bench", "events", "seconds", "blocks", "errs")
	for _, t := range s.Benches {
		fmt.Fprintf(&b, "%-14s %8d %12.4f %16d %6d\n",
			t.Bench, t.Events, t.Dur.Seconds(), t.Blocks, t.Errs)
	}

	if x, busy := Occupancy(events, occupancyBins); x != nil {
		b.WriteString("\n-- worker occupancy (avg busy workers over run time, x in seconds) --\n")
		b.WriteString(textplot.Chart(x, []textplot.Series{{Label: "busy workers", Y: busy}}, 72, 12))
	}
	return b.String()
}
