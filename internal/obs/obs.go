// Package obs is the study pipeline's observability layer: a
// lightweight flight recorder for scheduler work units plus the schema
// and reader shared by the summarizer, the CI smoke test and offline
// tooling.
//
// The recorder is built for use under full pool parallelism: Emit is a
// single non-blocking channel send, encoding happens on one dedicated
// goroutine behind a bounded queue, and overflow is counted instead of
// blocking a worker — a slow or broken trace sink can never stall the
// study or reorder its results. Events are written as JSONL, one
// self-contained object per line, so a truncated file loses only its
// tail.
package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Unit names of the pipeline spans the study emits. cmd/dbtrun emits
// UnitRun for its single translator execution.
const (
	UnitBuild        = "build"         // image/tape construction (build cache miss)
	UnitRef          = "ref"           // reference-input execution (AVEP + shared INIP ladder)
	UnitTrain        = "train"         // training-input execution
	UnitCompare      = "compare"       // one INIP(T)-vs-AVEP normalization + metrics
	UnitTrainCompare = "train_compare" // the INIP(train)-vs-AVEP comparison
	UnitRun          = "run"           // a standalone translator run (cmd/dbtrun)
	UnitRetry        = "retry"         // a failed unit attempt about to be retried
	UnitCheckpoint   = "checkpoint"    // one checkpoint write (Err set when it failed)
	UnitCacheHit     = "cache_hit"     // a result-cache lookup that served a validated entry
	UnitCacheMiss    = "cache_miss"    // a result-cache lookup that found nothing usable
	UnitCacheStore   = "cache_store"   // a result-cache entry write (Err set when it failed)

	// Sampled-profiling spans (core.Options.SamplePeriods). T carries
	// the sample period, not a threshold.
	UnitSample        = "sample"         // an independent-mode sampled ladder execution
	UnitSampleCompare = "sample_compare" // one period's sampled-vs-AVEP comparison sweep

	// Learned-predictor spans (core.Options.Learned). Collection is
	// per-benchmark static feature extraction (the tallies ride the
	// reference run's own span); fitting is the study-level
	// cross-validated training pass, emitted under the pseudo-bench
	// "suite".
	UnitLearnedCollect = "learned_collect" // static branch-site feature extraction
	UnitLearnedFit     = "learned_fit"     // suite-level cross-validated training

	// Fleet-protocol spans (internal/fleet): the coordinator's lease
	// lifecycle. Worker is always 0 — leases belong to remote workers,
	// not pool slots — and Err names the remote worker or carries the
	// failure detail.
	UnitLeaseGrant    = "lease_grant"    // a unit leased to a worker
	UnitLeaseExpire   = "lease_expire"   // a lease passed its deadline and was revoked
	UnitLeaseComplete = "lease_complete" // a completion settled its unit
	UnitLeaseReject   = "lease_reject"   // a duplicate/stale completion was dropped
	UnitFleetFail     = "fleet_fail"     // a unit exhausted its lease attempts
)

// validUnits gates ReadEvents: an unknown unit name means the producer
// and consumer disagree about the schema.
var validUnits = map[string]bool{
	UnitBuild:        true,
	UnitRef:          true,
	UnitTrain:        true,
	UnitCompare:      true,
	UnitTrainCompare: true,
	UnitRun:          true,
	UnitRetry:        true,
	UnitCheckpoint:   true,
	UnitCacheHit:     true,
	UnitCacheMiss:    true,
	UnitCacheStore:   true,

	UnitSample:        true,
	UnitSampleCompare: true,

	UnitLearnedCollect: true,
	UnitLearnedFit:     true,

	UnitLeaseGrant:    true,
	UnitLeaseExpire:   true,
	UnitLeaseComplete: true,
	UnitLeaseReject:   true,
	UnitFleetFail:     true,
}

// Event is one flight-recorder record: a completed span of pipeline
// work. Timestamps are nanoseconds relative to the recorder's creation,
// so per-phase sums reconcile exactly with the study's Perf totals and
// worker-occupancy plots need no clock-epoch bookkeeping.
type Event struct {
	// Bench is the benchmark (or image) name the span belongs to.
	Bench string `json:"bench"`
	// Unit is the span kind (Unit* constants).
	Unit string `json:"unit"`
	// T is the effective retranslation threshold for compare/run spans,
	// 0 where not applicable.
	T uint64 `json:"t,omitempty"`
	// Worker is the scheduler pool slot the span ran on.
	Worker int `json:"worker"`
	// StartNS/DurNS place the span on the run's timeline.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Blocks is the dynamic block-execution volume of run spans
	// (summed over every profiling context the span advanced).
	Blocks uint64 `json:"blocks,omitempty"`
	// Hot-loop engine counters of executed run spans, summed like
	// Blocks: the fast/generic dispatch split and translation-cache
	// probes (see dbt.RunStats). Optional — cached or non-run spans
	// carry none, and traces recorded before these fields existed still
	// parse (absent means zero).
	Fast    uint64 `json:"fast,omitempty"`
	Generic uint64 `json:"generic,omitempty"`
	Lookups uint64 `json:"lookups,omitempty"`
	// Err carries the unit's error verbatim when it failed.
	Err string `json:"err,omitempty"`
}

// validate rejects records that do not match the schema.
func (ev *Event) validate() error {
	if ev.Bench == "" {
		return errors.New("missing bench")
	}
	if !validUnits[ev.Unit] {
		return fmt.Errorf("unknown unit %q", ev.Unit)
	}
	if ev.Worker < 0 {
		return fmt.Errorf("negative worker %d", ev.Worker)
	}
	if ev.StartNS < 0 || ev.DurNS < 0 {
		return fmt.Errorf("negative span [%d, +%d]", ev.StartNS, ev.DurNS)
	}
	return nil
}

// defaultBuffer is the recorder queue depth. At ~6 events per benchmark
// per study it is far above any sustained rate; overflow only happens
// when the sink stalls outright, and is then counted, not blocked on.
const defaultBuffer = 4096

// Recorder is the concurrent flight-recorder front end. All methods are
// safe for concurrent use and safe on a nil receiver (a nil *Recorder
// is "tracing off"), so call sites need no guards. The recorder is safe
// for a server lifetime: Emit racing with (or arriving after) Close is
// a counted no-op, never a send on a closed channel.
type Recorder struct {
	ch      chan Event
	flushed chan struct{}
	start   time.Time
	dropped atomic.Uint64
	// mu gates the channel against Close: Emit holds it shared for the
	// duration of the send attempt, Close holds it exclusively while
	// marking the recorder closed. Emitters therefore never observe a
	// closed channel, and a post-Close Emit lands in the closed branch.
	mu     sync.RWMutex
	closed bool
	err    error // encoder/flush error; read only after flushed closes
}

// NewRecorder starts a recorder writing JSONL to w. The caller must
// Close it to flush; w is not closed.
func NewRecorder(w io.Writer) *Recorder { return NewRecorderSize(w, defaultBuffer) }

// NewRecorderSize is NewRecorder with an explicit queue depth (tests
// exercise overflow with tiny queues).
func NewRecorderSize(w io.Writer, buffer int) *Recorder {
	if buffer < 1 {
		buffer = 1
	}
	r := &Recorder{
		ch:      make(chan Event, buffer),
		flushed: make(chan struct{}),
		start:   time.Now(),
	}
	go r.encode(w)
	return r
}

// encode is the single writer goroutine: it owns w for the recorder's
// lifetime, so no emitter ever takes an encoding or I/O hit.
func (r *Recorder) encode(w io.Writer) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for ev := range r.ch {
		if r.err == nil {
			r.err = enc.Encode(ev)
		}
	}
	if err := bw.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	close(r.flushed)
}

// Start is the recorder's epoch; Record computes StartNS against it.
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Emit queues one event without blocking. If the queue is full — or
// the recorder is already closed — the event is dropped and counted.
// Emit is safe to race with Close: late events are counted no-ops.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		r.dropped.Add(1)
		return
	}
	select {
	case r.ch <- ev:
	default:
		r.dropped.Add(1)
	}
	r.mu.RUnlock()
}

// Record emits a completed span, translating the absolute start time to
// the recorder's timeline. A non-nil unit error is carried verbatim.
func (r *Recorder) Record(bench, unit string, t uint64, worker int, start time.Time, dur time.Duration, blocks uint64, err error) {
	r.RecordEvent(Event{Bench: bench, Unit: unit, T: t, Worker: worker, Blocks: blocks}, start, dur, err)
}

// RecordEvent is Record for callers that fill optional Event fields
// (the hot-loop counters of run spans): the identity and counter fields
// of ev are taken as given, its timeline fields are computed from
// start/dur against the recorder's epoch, and a non-nil unit error is
// carried verbatim.
func (r *Recorder) RecordEvent(ev Event, start time.Time, dur time.Duration, err error) {
	if r == nil {
		return
	}
	startNS := start.Sub(r.start).Nanoseconds()
	if startNS < 0 {
		startNS = 0
	}
	ev.StartNS = startNS
	ev.DurNS = dur.Nanoseconds()
	if err != nil {
		ev.Err = err.Error()
	}
	r.Emit(ev)
}

// Dropped returns the drop count so far — queue overflows plus events
// emitted after Close. The counter is updated atomically at the moment
// each event is dropped, so the value is exact at any time, not just
// after Close.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Close drains the queue, flushes the sink and returns the drop count
// together with the first encoding error, if any. Close is idempotent,
// and emitters may still be running: their events after this point are
// counted as dropped instead of written.
func (r *Recorder) Close() (dropped uint64, err error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.ch)
	}
	r.mu.Unlock()
	<-r.flushed
	return r.dropped.Load(), r.err
}

// ReadEvents parses a JSONL trace strictly: unknown fields, malformed
// lines and schema violations are errors, so the reader doubles as the
// schema validator for tests and CI.
func ReadEvents(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var evs []Event
	for n := 1; ; n++ {
		var ev Event
		err := dec.Decode(&ev)
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", n, err)
		}
		if err := ev.validate(); err != nil {
			return nil, fmt.Errorf("obs: event %d: %v", n, err)
		}
		evs = append(evs, ev)
	}
}
